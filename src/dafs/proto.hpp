#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "fstore/types.hpp"

/// \file proto.hpp
/// The DAFS wire protocol, as exchanged over a session VI. Modelled on the
/// DAFS 1.0 protocol (itself derived from NFSv4): session-oriented, with
/// *inline* operations carrying data in the message and *direct* operations
/// where the server moves file data with RDMA against client-registered
/// buffers. Extensions beyond the spec are marked [ext] and documented in
/// DESIGN.md (named atomic counters backing MPI shared file pointers).
namespace dafs {

/// Protocol procedures.
enum class Proc : std::uint8_t {
  kConnect = 1,
  kDisconnect,
  kOpen,         // path [+ create/excl/trunc flags] -> ino + attrs
  kGetattr,
  kSetSize,
  kRemove,       // path
  kMkdir,        // path
  kRmdir,        // path
  kRename,       // payload: old-path \0 new-path
  kReaddir,      // cookie in `offset`; packed entries back
  kReadInline,   // data returned in the response message
  kWriteInline,  // data carried in the request message
  kReadDirect,   // server RDMA-writes into client segments
  kWriteDirect,  // server RDMA-reads from client segments
  kSync,
  kLock,         // byte-range lock; offset/len; aux bit0 = exclusive
  kUnlock,
  kFetchAdd,     // [ext] named atomic counter; name payload, delta in aux
  kSetCounter,   // [ext]
  kStatsQuery,   // [ext] live telemetry snapshot: WireStatsHeader + tables
                 // in the response payload. Served outside admission control
                 // and by fenced/follower members — the management plane
                 // must answer precisely when the data plane is refusing.
  kDelegRecall,  // [ext] delegation lease renewal / recall poll: `ino` names
                 // the delegated file, `deleg` the delegation id. A valid
                 // holder gets kOk with the renewed term (ns) in `aux`; when
                 // the server wants the delegation back the response carries
                 // kFlagDelegRecall — the client must flush and return it.
                 // An unknown or expired id answers kDelegExpired.
  kDelegReturn,  // [ext] voluntary delegation return (after flushing dirty
                 // state): `ino` + `deleg`. Always answers kOk — returning a
                 // delegation the server already revoked is a no-op, which
                 // also makes the op safely re-executable after a reconnect.
};

/// True when a procedure can safely be re-executed after a connection loss
/// left its outcome unknown. Everything else must go through the server's
/// replay cache so a retransmitted request is answered, not re-applied.
constexpr bool is_idempotent(Proc p) {
  switch (p) {
    case Proc::kGetattr:
    case Proc::kReaddir:
    case Proc::kReadInline:
    case Proc::kReadDirect:
    case Proc::kSync:
    case Proc::kStatsQuery:
    // Delegation leases are volatile leader state, never journaled: renewing
    // twice is harmless and returning an already-dropped delegation is kOk,
    // so neither needs the replay cache.
    case Proc::kDelegRecall:
    case Proc::kDelegReturn:
      return true;
    default:
      return false;
  }
}

/// Stable lowercase names, used as histogram-key suffixes ("dafs.rtt_ns.<proc>").
constexpr const char* proc_name(Proc p) {
  switch (p) {
    case Proc::kConnect: return "connect";
    case Proc::kDisconnect: return "disconnect";
    case Proc::kOpen: return "open";
    case Proc::kGetattr: return "getattr";
    case Proc::kSetSize: return "setsize";
    case Proc::kRemove: return "remove";
    case Proc::kMkdir: return "mkdir";
    case Proc::kRmdir: return "rmdir";
    case Proc::kRename: return "rename";
    case Proc::kReaddir: return "readdir";
    case Proc::kReadInline: return "read_inline";
    case Proc::kWriteInline: return "write_inline";
    case Proc::kReadDirect: return "read_direct";
    case Proc::kWriteDirect: return "write_direct";
    case Proc::kSync: return "sync";
    case Proc::kLock: return "lock";
    case Proc::kUnlock: return "unlock";
    case Proc::kFetchAdd: return "fetch_add";
    case Proc::kSetCounter: return "set_counter";
    case Proc::kStatsQuery: return "stats_query";
    case Proc::kDelegRecall: return "deleg_recall";
    case Proc::kDelegReturn: return "deleg_return";
  }
  return "?";
}

/// Protocol status codes.
enum class PStatus : std::uint8_t {
  kOk = 0,
  kNoEnt,
  kExists,
  kIsDir,
  kNotDir,
  kNotEmpty,
  kInval,
  kStale,
  kBadSession,
  kLockConflict,
  kProtoError,
  kConnLost,     // transport failed and recovery exhausted its retries
  kNoResource,   // server/NIC out of resources (e.g. memory registration)
  kIo,           // backend storage error
  kBusy,         // server shed the request (admission queue full / restart
                 // grace period); retry-after hint (virtual ns) in aux
  kFenced,       // server was deposed by a standby promotion and must not
                 // serve stale sessions; the client rotates to the next
                 // endpoint in its MountSpec
  kNotLeader,    // quorum follower (or deposed/stepped-down leader): only the
                 // group leader serves clients. aux carries a leader hint —
                 // 1 + the leader's member index when known, 0 when unknown —
                 // so the client jumps straight to the leader instead of
                 // probing the rotation blind
  kCorrupt,      // checksum mismatch: an at-rest block failed verification,
                 // or a wire payload arrived damaged. Never carries data; a
                 // client treats it like kBusy for reads (retry — a scrub
                 // repair may restore the block) and rewrites for writes
  kDelegExpired, // the request carried a delegation id the server does not
                 // hold live: the lease term lapsed, the delegation was
                 // revoked, or a failover produced a leader that never
                 // issued it. Writes are *fenced* (not applied) — the holder
                 // must discard its cache and revalidate before retrying
};

constexpr PStatus to_pstatus(fstore::Errc e) {
  switch (e) {
    case fstore::Errc::kOk: return PStatus::kOk;
    case fstore::Errc::kNoEnt: return PStatus::kNoEnt;
    case fstore::Errc::kExists: return PStatus::kExists;
    case fstore::Errc::kIsDir: return PStatus::kIsDir;
    case fstore::Errc::kNotDir: return PStatus::kNotDir;
    case fstore::Errc::kNotEmpty: return PStatus::kNotEmpty;
    case fstore::Errc::kInval: return PStatus::kInval;
    case fstore::Errc::kStale: return PStatus::kStale;
    case fstore::Errc::kIo: return PStatus::kIo;
    case fstore::Errc::kCorrupt: return PStatus::kCorrupt;
  }
  return PStatus::kProtoError;
}

constexpr fstore::Errc to_errc(PStatus s) {
  switch (s) {
    case PStatus::kOk: return fstore::Errc::kOk;
    case PStatus::kNoEnt: return fstore::Errc::kNoEnt;
    case PStatus::kExists: return fstore::Errc::kExists;
    case PStatus::kIsDir: return fstore::Errc::kIsDir;
    case PStatus::kNotDir: return fstore::Errc::kNotDir;
    case PStatus::kNotEmpty: return fstore::Errc::kNotEmpty;
    case PStatus::kInval: return fstore::Errc::kInval;
    case PStatus::kStale: return fstore::Errc::kStale;
    case PStatus::kIo: return fstore::Errc::kIo;
    case PStatus::kCorrupt: return fstore::Errc::kCorrupt;
    default: return fstore::Errc::kInval;
  }
}

constexpr const char* to_string(PStatus s) {
  switch (s) {
    case PStatus::kOk: return "ok";
    case PStatus::kNoEnt: return "no-entry";
    case PStatus::kExists: return "exists";
    case PStatus::kIsDir: return "is-directory";
    case PStatus::kNotDir: return "not-directory";
    case PStatus::kNotEmpty: return "not-empty";
    case PStatus::kInval: return "invalid";
    case PStatus::kStale: return "stale";
    case PStatus::kBadSession: return "bad-session";
    case PStatus::kLockConflict: return "lock-conflict";
    case PStatus::kProtoError: return "protocol-error";
    case PStatus::kConnLost: return "connection-lost";
    case PStatus::kNoResource: return "no-resource";
    case PStatus::kIo: return "io-error";
    case PStatus::kBusy: return "busy";
    case PStatus::kFenced: return "fenced";
    case PStatus::kNotLeader: return "not-leader";
    case PStatus::kCorrupt: return "corrupt";
    case PStatus::kDelegExpired: return "deleg-expired";
  }
  return "?";
}

/// Open flags (header.flags).
inline constexpr std::uint16_t kOpenCreate = 0x1;
inline constexpr std::uint16_t kOpenExcl = 0x2;
inline constexpr std::uint16_t kOpenTrunc = 0x4;
/// [ext] This open targets a striped subfile: the striped dafs::Client is
/// opening the per-data-server backing file of a layout, not the logical
/// file. Semantically identical to a plain open (the subfile stores its
/// stripes at the logical offsets, sparse); servers count these opens
/// ("dafs.data_opens") so striped traffic is visible in the stats.
inline constexpr std::uint16_t kOpenDataServer = 0x8;
/// [ext] The opener asks for a read delegation: if it is the only opener of
/// the file (and no other delegation is live), the server returns a
/// delegation id in the response's `deleg` field and the lease term (virtual
/// ns) in `aux` — until recall or expiry the holder may serve reads from a
/// local cache without revalidating.
inline constexpr std::uint16_t kOpenWantDeleg = 0x40;
/// [ext] Combined with kOpenWantDeleg: ask for a *write* delegation (the
/// response sets kFlagDelegWrite when granted). A write delegation
/// additionally permits local write-back: dirty extents are flushed on
/// recall, close, sync or term expiry, stamped with the delegation id.
inline constexpr std::uint16_t kOpenWantWriteDeleg = 0x80;

/// kConnect flags (header.flags): resume an existing session after a
/// transport failure instead of minting a new one. The old session id rides
/// in header.aux.
inline constexpr std::uint16_t kConnectResume = 0x1;

/// Integrity flags (header.flags on data procedures, [ext]):
/// `payload_crc` holds the CRC-32C of the message's data payload (inline
/// data bytes, or — for direct transfers — the file bytes the RDMA moved, in
/// segment order). Set by whichever side produced the bytes; the consumer
/// verifies before trusting them.
inline constexpr std::uint16_t kFlagPayloadCrc = 0x10;
/// The client asks the server to recompute at-rest block checksums on the
/// read path ("full" integrity mode) instead of trusting the stored bytes.
inline constexpr std::uint16_t kFlagVerifyStore = 0x20;

/// Delegation flags (header.flags, [ext]).
/// On an open response: the granted delegation is a write delegation.
inline constexpr std::uint16_t kFlagDelegWrite = 0x100;
/// On any response to a request that carried a live delegation id: the
/// server wants that delegation back. The holder must flush its dirty
/// extents (writes stamped with the id), then send kDelegReturn. While the
/// recall is pending, conflicting requests from other sessions are shed
/// with kBusy + a retry-after hint; if the holder's lease term lapses first
/// the server revokes unilaterally and fences stragglers (kDelegExpired).
inline constexpr std::uint16_t kFlagDelegRecall = 0x200;

/// Lock flags (header.aux bit 0).
inline constexpr std::uint64_t kLockExclusive = 0x1;
/// Lock flags (header.aux bit 1): this acquire *reclaims* a lock the client
/// already held before a server crash. Reclaims are admitted during the
/// post-restart grace period, while fresh acquires get kBusy — so surviving
/// clients can re-establish their state before new lock traffic races them.
inline constexpr std::uint64_t kLockReclaim = 0x2;

/// Fixed message header. The message body is: `name_len` bytes of name/path
/// payload, then either `data_len` bytes of inline data or `nseg` packed
/// DirectSeg records.
struct MsgHeader {
  Proc proc = Proc::kConnect;
  PStatus status = PStatus::kOk;
  std::uint16_t flags = 0;
  std::uint32_t request_id = 0;
  std::uint64_t session_id = 0;
  std::uint64_t ino = 0;
  std::uint64_t offset = 0;   // file offset / readdir cookie
  std::uint64_t len = 0;      // request length / bytes transferred
  std::uint64_t aux = 0;      // setsize target, lock mode, counter delta, ...
  std::uint32_t name_len = 0;
  std::uint32_t data_len = 0;
  std::uint32_t nseg = 0;
  std::uint32_t seq = 0;      // session sequence number (replay detection)
  /// Absolute virtual-time deadline (ns) for this request; 0 = none. Stamped
  /// by the client from the MPI-IO / session deadline and checked by the
  /// server at admission: an already-expired request is shed with kBusy
  /// rather than serviced into a void.
  std::uint64_t deadline = 0;
  /// Stable client identity surviving reconnects *and* server restarts
  /// (unlike session_id, which a crashed server forgets). Keys the server's
  /// durable duplicate filter for counter mutations.
  std::uint64_t client_id = 0;
  /// Cumulative acknowledgement: every response with seq <= ack_seq has been
  /// received by this client. The server may evict acknowledged entries from
  /// its replay cache — the piggybacked-ack bound on replay memory.
  std::uint32_t ack_seq = 0;
  /// CRC-32C of the data payload when kFlagPayloadCrc is set (see the flag
  /// for exactly which bytes it covers); 0 otherwise.
  std::uint32_t payload_crc = 0;
  /// Request-tracing identifiers (sim/trace.hpp): the root trace this
  /// request belongs to and the client span to parent server-side spans
  /// under. Zero when tracing is off. Retransmissions resend the original
  /// buffer, so a retried request keeps these ids and the server's spans
  /// for the retry link back to the original root.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Delegation id this request rides under ([ext]; 0 = none). Stamped by
  /// the holder on every request touching a delegated file — data I/O,
  /// subfile opens, renewals, the return. The server uses it two ways: a
  /// matching live id marks the request as the holder's own (renewing the
  /// lease instead of triggering a recall against itself), and a write
  /// carrying a dead id is fenced with kDelegExpired. On an open response it
  /// carries the granted delegation id (0 = not granted).
  std::uint64_t deleg = 0;
};
static_assert(sizeof(MsgHeader) == 112, "fixed wire header layout");

/// One client-buffer segment in a direct-I/O request. Each segment carries
/// its own file offset, so a single request can describe a scatter/gather
/// ("list I/O") access — which is what the MPI-IO noncontiguous driver
/// batches into.
struct DirectSeg {
  std::uint64_t file_off = 0;
  std::uint64_t addr = 0;  // client virtual address
  std::uint64_t mem = 0;   // client memory handle
  std::uint32_t len = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(DirectSeg) == 32);

/// ---- kStatsQuery snapshot wire format [ext] -------------------------------
/// The response payload is, in order:
///   1. one WireStatsHeader (`version` guards layout drift)
///   2. `nsessions` packed WireSessionStats records (per-client attribution)
///   3. `nkv` packed key/value records: WireStatsKv then `key_len` key bytes
///      (selected fabric counters and gauges, by dotted name)
/// The whole snapshot must fit one message buffer; when the session table or
/// kv section would overflow it, the server clips and sets `truncated`.

inline constexpr std::uint32_t kStatsVersion = 1;

struct WireStatsHeader {
  std::uint32_t version = kStatsVersion;
  std::uint32_t nsessions = 0;  // WireSessionStats records following
  std::uint32_t nkv = 0;        // WireStatsKv records after the table
  std::uint32_t truncated = 0;  // 1 = clipped to the message buffer
  std::uint32_t role = 0;       // dafs::Server::Role numeric value
  std::uint32_t pad = 0;
  std::uint64_t term = 0;       // fencing epoch / consensus term
  std::uint64_t now_ns = 0;     // server virtual clock at snapshot time
  std::uint64_t sessions_live = 0;
  std::uint64_t admission_queue_depth = 0;
  std::uint64_t admission_limit = 0;
  std::uint64_t replay_cache_bytes = 0;
  std::uint64_t requests_total = 0;     // "dafs.requests"
  std::uint64_t busy_sheds = 0;         // "dafs.busy_shed"
  std::uint64_t crash_count = 0;
  std::uint64_t scrub_passes = 0;       // completed whole-store passes
  std::uint64_t scrub_blocks = 0;       // blocks verified so far (progress)
  std::uint64_t resilver_bytes = 0;
  std::uint64_t commit_offset = 0;      // quorum majority-committed offset
};
static_assert(sizeof(WireStatsHeader) == 128);

/// Per-client accounting row, keyed by the stable client_id (survives
/// reconnects and server restarts, unlike session ids).
struct WireSessionStats {
  std::uint64_t client_id = 0;
  std::uint64_t bytes_in = 0;       // request wire bytes + RDMA-read payload
  std::uint64_t bytes_out = 0;      // response wire bytes + RDMA-written payload
  std::uint64_t ops_read = 0;       // kReadInline + kReadDirect
  std::uint64_t ops_write = 0;      // kWriteInline + kWriteDirect
  std::uint64_t ops_meta = 0;       // everything else this client sent
  std::uint64_t queue_wait_ns = 0;  // total NIC-completion -> worker pickup
  std::uint64_t service_ns = 0;     // total execution time of admitted ops
  std::uint64_t retransmits = 0;    // replay-cache hits (dup seq arrivals)
  std::uint64_t sheds = 0;          // kBusy sheds (overload or deadline)
};
static_assert(sizeof(WireSessionStats) == 80);

struct WireStatsKv {
  std::uint64_t value = 0;
  std::uint32_t key_len = 0;  // key bytes follow this record
  std::uint32_t pad = 0;
};
static_assert(sizeof(WireStatsKv) == 16);

/// Packed readdir entry: header then name bytes.
struct WireDirent {
  std::uint64_t ino = 0;
  std::uint8_t is_dir = 0;
  std::uint8_t pad[3] = {};
  std::uint32_t name_len = 0;
};

/// Helpers to build/parse messages in a flat buffer.
class MsgView {
 public:
  MsgView(std::byte* buf, std::size_t cap) : buf_(buf), cap_(cap) {}

  MsgHeader& header() { return *reinterpret_cast<MsgHeader*>(buf_); }
  const MsgHeader& header() const {
    return *reinterpret_cast<const MsgHeader*>(buf_);
  }

  std::byte* name_payload() { return buf_ + sizeof(MsgHeader); }
  const std::byte* name_payload() const { return buf_ + sizeof(MsgHeader); }
  std::byte* data_payload() {
    return buf_ + sizeof(MsgHeader) + header().name_len;
  }
  const std::byte* data_payload() const {
    return buf_ + sizeof(MsgHeader) + header().name_len;
  }

  std::string_view name() const {
    return {reinterpret_cast<const char*>(name_payload()), header().name_len};
  }

  void set_name(std::string_view s) {
    header().name_len = static_cast<std::uint32_t>(s.size());
    // An empty view may carry a null data() — UB to hand to memcpy.
    if (!s.empty()) std::memcpy(name_payload(), s.data(), s.size());
  }

  std::span<const DirectSeg> segs() const {
    return {reinterpret_cast<const DirectSeg*>(data_payload()), header().nseg};
  }
  void set_segs(std::span<const DirectSeg> segs) {
    header().nseg = static_cast<std::uint32_t>(segs.size());
    header().data_len =
        static_cast<std::uint32_t>(segs.size() * sizeof(DirectSeg));
    std::memcpy(data_payload(), segs.data(), segs.size_bytes());
  }

  std::size_t wire_size() const {
    return sizeof(MsgHeader) + header().name_len + header().data_len;
  }
  std::size_t capacity() const { return cap_; }
  std::byte* raw() { return buf_; }

  /// Bytes of inline data that fit after a name of `name_len` bytes.
  std::size_t inline_capacity(std::size_t name_len) const {
    const std::size_t used = sizeof(MsgHeader) + name_len;
    return used >= cap_ ? 0 : cap_ - used;
  }

 private:
  std::byte* buf_;
  std::size_t cap_;
};

/// Default session message-buffer size (limits inline transfer size).
inline constexpr std::size_t kMsgBufSize = 16 * 1024;

}  // namespace dafs
