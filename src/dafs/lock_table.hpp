#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dafs {

/// Server-side byte-range locks (DAFS lock operations). Shared locks are
/// compatible with each other; exclusive locks conflict with everything
/// overlapping. `len == 0` means "to end of file". Conflicting requests are
/// refused (the client retries), which keeps workers non-blocking.
class LockTable {
 public:
  bool try_acquire(std::uint64_t ino, std::uint64_t start, std::uint64_t len,
                   std::uint64_t owner, bool exclusive) {
    std::lock_guard lock(mu_);
    auto& v = locks_[ino];
    for (const auto& l : v) {
      if (!overlap(l.start, l.len, start, len)) continue;
      if (l.owner == owner) continue;  // owner may stack its own ranges
      if (l.exclusive || exclusive) return false;
    }
    v.push_back(Range{start, len, owner, exclusive});
    return true;
  }

  /// Release [start, start+len) (len 0 = to EOF) from `owner`'s locks on
  /// `ino`, POSIX-style: ranges wholly inside the request are dropped,
  /// partially covered ranges are trimmed, and a range that strictly
  /// contains the request is split in two. Returns true when any bytes were
  /// released.
  bool release(std::uint64_t ino, std::uint64_t start, std::uint64_t len,
               std::uint64_t owner) {
    std::lock_guard lock(mu_);
    auto it = locks_.find(ino);
    if (it == locks_.end()) return false;
    auto& v = it->second;
    const std::uint64_t rs = start;
    const std::uint64_t re = len == 0 ? UINT64_MAX : start + len;
    bool any = false;
    std::vector<Range> tails;  // split remainders, appended after the scan
    for (std::size_t i = 0; i < v.size();) {
      Range& l = v[i];
      const std::uint64_t ls = l.start;
      const std::uint64_t le = l.len == 0 ? UINT64_MAX : l.start + l.len;
      if (l.owner != owner || le <= rs || re <= ls) {
        ++i;
        continue;
      }
      any = true;
      const bool keeps_head = ls < rs;
      const bool keeps_tail = le > re;
      if (keeps_tail) {
        Range t = l;
        t.start = re;
        t.len = le == UINT64_MAX ? 0 : le - re;
        tails.push_back(t);
      }
      if (keeps_head) {
        l.len = rs - ls;
        ++i;
      } else {
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    v.insert(v.end(), tails.begin(), tails.end());
    if (v.empty()) locks_.erase(it);
    return any;
  }

  /// Drop everything a session held (session teardown).
  void release_owner(std::uint64_t owner) {
    std::lock_guard lock(mu_);
    for (auto it = locks_.begin(); it != locks_.end();) {
      auto& v = it->second;
      std::erase_if(v, [owner](const Range& r) { return r.owner == owner; });
      it = v.empty() ? locks_.erase(it) : std::next(it);
    }
  }

  /// Drop every lock on every inode — the table is volatile server state,
  /// and a server crash forgets it wholesale (clients reclaim via lease).
  void clear() {
    std::lock_guard lock(mu_);
    locks_.clear();
  }

  std::size_t held(std::uint64_t ino) const {
    std::lock_guard lock(mu_);
    auto it = locks_.find(ino);
    return it == locks_.end() ? 0 : it->second.size();
  }

  /// Ranges `owner` holds on `ino` (tests / lease-reclaim verification).
  std::size_t held_by(std::uint64_t ino, std::uint64_t owner) const {
    std::lock_guard lock(mu_);
    auto it = locks_.find(ino);
    if (it == locks_.end()) return 0;
    std::size_t n = 0;
    for (const auto& l : it->second) {
      if (l.owner == owner) ++n;
    }
    return n;
  }

 private:
  struct Range {
    std::uint64_t start;
    std::uint64_t len;  // 0 = to EOF
    std::uint64_t owner;
    bool exclusive;
  };

  static bool overlap(std::uint64_t s1, std::uint64_t l1, std::uint64_t s2,
                      std::uint64_t l2) {
    const std::uint64_t e1 = l1 == 0 ? UINT64_MAX : s1 + l1;
    const std::uint64_t e2 = l2 == 0 ? UINT64_MAX : s2 + l2;
    return s1 < e2 && s2 < e1;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Range>> locks_;
};

}  // namespace dafs
