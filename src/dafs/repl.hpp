#pragma once

#include <cstddef>
#include <cstdint>

/// \file repl.hpp
/// Wire format of the primary->standby replication channel: the primary
/// streams its FStoreJournal byte log (which already carries namespace ops,
/// synced data, counters, the durable duplicate filter and server-state
/// watermarks) to the standby over a dedicated VIA connection. Stop-and-wait:
/// each kRecords chunk is acknowledged with the standby's new journal size,
/// which doubles as the resume/resync offset. Epochs fence a deposed primary:
/// a standby that promoted answers every later hello with status=fenced and
/// its (higher) epoch.
namespace dafs {

enum class ReplOp : std::uint8_t {
  kHello = 1,  // primary -> standby: epoch; opens (or reopens) the stream
  kHelloAck,   // standby -> primary: offset = journal bytes already held;
               //   status=1 (fenced) when the receiver has promoted
  kRecords,    // primary -> standby: `len` journal bytes at `offset`
  kAck,        // standby -> primary: offset = new journal size
};

inline constexpr std::uint32_t kReplMagic = 0x5245504C;  // "REPL"

struct ReplHeader {
  std::uint32_t magic = kReplMagic;
  ReplOp op = ReplOp::kHello;
  std::uint8_t status = 0;  // 0 = ok, 1 = fenced
  std::uint16_t pad = 0;
  std::uint64_t epoch = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;  // payload bytes following the header (kRecords)
  std::uint32_t pad1 = 0;
};
static_assert(sizeof(ReplHeader) == 32, "fixed replication header layout");

/// Replication message buffer size: one header plus up to this many journal
/// bytes per kRecords chunk.
inline constexpr std::size_t kReplBufSize = 256 * 1024;

}  // namespace dafs
