#pragma once

#include <cstddef>
#include <cstdint>

/// \file repl.hpp
/// Wire format of the filer-to-filer replication channel. Two protocols
/// share the header:
///
/// Pair mode (PR 5, kHello..kAck): the primary streams its FStoreJournal
/// byte log to one standby over a dedicated VIA connection. Stop-and-wait:
/// each kRecords chunk is acknowledged with the standby's new journal size,
/// which doubles as the resume/resync offset. Epochs fence a deposed primary:
/// a standby that promoted answers every later hello with status=fenced and
/// its (higher) epoch.
///
/// Quorum mode (kVoteReq..kAppendResp): a Raft-style group of N >= 3 filers.
/// The byte offset into the shared journal is the log index; kTermMark
/// records embedded in the log carry term boundaries. A candidate solicits
/// votes with its (last_off, last_term); the leader ships journal bytes with
/// (prev_off, prev_term) matching and commits at majority ack. The fencing
/// epoch IS the consensus term, so a partitioned ex-leader can never
/// acknowledge a write the new leader does not have.
namespace dafs {

enum class ReplOp : std::uint8_t {
  kHello = 1,   // primary -> standby: epoch; opens (or reopens) the stream
  kHelloAck,    // standby -> primary: offset = journal bytes already held;
                //   status=1 (fenced) when the receiver has promoted
  kRecords,     // primary -> standby: `len` journal bytes at `offset`
  kAck,         // standby -> primary: offset = new journal size

  // ---- quorum protocol ----
  kVoteReq,     // candidate -> peer: term=candidate term, offset=last_off,
                //   prev_term=last_term, member=candidate index
  kVoteResp,    // peer -> candidate: status=1 granted, term=peer term
  kAppend,      // leader -> follower: term, offset=prev_off,
                //   prev_term=term at prev_off, commit=leader commit offset,
                //   member=leader index, len journal bytes follow
  kAppendResp,  // follower -> leader: status=1 ok (offset=match_off) or
                //   0 reject (term newer, or offset=conflict backoff hint)

  // ---- scrub repair (quorum only) ----
  kBlockFetch,  // scrubbing member -> peer: fetch a verified copy of one
                //   block. epoch=requester term, offset=file offset,
                //   len=bytes wanted (<= chunk size), commit=ino,
                //   member=requester index
  kBlockData,   // peer -> scrubber: status=1 + `len` payload bytes when the
                //   peer's copy verified clean; status=0, no payload when
                //   the peer's copy is missing or itself corrupt
};

inline constexpr std::uint32_t kReplMagic = 0x5245504C;  // "REPL"

struct ReplHeader {
  std::uint32_t magic = kReplMagic;
  ReplOp op = ReplOp::kHello;
  std::uint8_t status = 0;    // 0 = ok/denied, 1 = fenced/granted/accepted
  std::uint16_t pad = 0;
  std::uint64_t epoch = 0;    // pair: fencing epoch; quorum: term
  std::uint64_t offset = 0;   // pair: journal offset; quorum: prev/match/last
  std::uint32_t len = 0;      // payload bytes following the header
  std::uint32_t member = 0;   // quorum: sender's member index
  std::uint64_t prev_term = 0;  // quorum: term at `offset` (append/vote)
  std::uint64_t commit = 0;     // quorum: leader's commit offset
};
static_assert(sizeof(ReplHeader) == 48, "fixed replication header layout");

/// Replication message buffer size: one header plus up to this many journal
/// bytes per kRecords/kAppend chunk.
inline constexpr std::size_t kReplBufSize = 256 * 1024;

}  // namespace dafs
