#include "dafs/client.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <thread>

#include "fstore/journal.hpp"
#include "sim/actor.hpp"

namespace dafs {

using sim::Actor;
using sim::CostKind;

namespace {
using namespace std::chrono_literals;
constexpr auto kIoWait = std::chrono::milliseconds(10'000);
constexpr sim::Time kLockBackoffBase = 20'000;  // 20 us virtual, first retry
constexpr sim::Time kLockBackoffCap = 1'280'000;
constexpr int kLockRetries = 100'000;
/// request_id of the resume handshake. Out of range of any slot index, so
/// duplicate resume responses fall out of the normal path as stale.
constexpr OpId kResumeReqId = 0xFFFFFFFFu;
// Bound on how often one request may chase a restarting server through the
// kBadSession-response path (each pass runs a full recover()); repeated
// kBadSession beyond this means the server is crash-looping.
constexpr int kSlotReclaimRetries = 4;

/// Transport patience for one wait. With no deadline, the generous fixed
/// kIoWait; with one, the deadline budget translated ns -> real time and
/// floored so scheduling noise cannot starve a short-deadline request of its
/// one chance to complete.
std::chrono::milliseconds io_budget(std::uint64_t deadline_ns) {
  if (deadline_ns == 0) return kIoWait;
  return std::min(kIoWait, std::chrono::milliseconds(std::max<std::uint64_t>(
                               100, deadline_ns / 1'000'000)));
}
}  // namespace

namespace {
via::ViAttrs session_vi_attrs(via::ProtectionTag tag) {
  via::ViAttrs attrs;
  attrs.ptag = tag;  // inbound RDMA must match our registrations
  return attrs;
}
}  // namespace

Session::Session(via::Nic& nic, MountSpec spec)
    : nic_(nic),
      cfg_(std::move(spec.client)),
      eps_(std::move(spec.endpoints)),
      ptag_(nic.create_ptag()),
      vi_(std::make_unique<via::Vi>(nic, session_vi_attrs(ptag_))),
      backoff_rng_(1) {
  // Normalize: an empty endpoint list means one default endpoint at the
  // ClientConfig's service (also what the deprecated shim produces).
  if (eps_.empty()) eps_.push_back(Endpoint{cfg_.service, RetryPolicy{}});
  backoff_rng_ = sim::Rng(eps_[0].retry.jitter_seed);
  deadline_ns_ = eps_[0].retry.deadline_ns;
}

Result<std::unique_ptr<Session>> Session::connect(via::Nic& nic,
                                                  const MountSpec& spec) {
  auto s = std::unique_ptr<Session>(new Session(nic, spec));
  if (const PStatus st = s->do_connect(); st != PStatus::kOk) return st;
  return s;
}

void Session::advance_endpoint() {
  if (eps_.size() > 1) nic_.fabric().stats().add("dafs.endpoint_rotations");
  ep_ = (ep_ + 1) % eps_.size();
  ++rotations_;
  // Reseed the jitter RNG per rotation so two passes through the same
  // endpoint list do not replay the same backoff schedule.
  backoff_rng_ = sim::Rng(eps_[ep_].retry.jitter_seed ^
                          (0x9e3779b97f4a7c15ULL * rotations_));
}

void Session::demote_endpoint() {
  if (eps_.size() > 1) {
    nic_.fabric().stats().add("dafs.endpoint_demotions");
    // Physically move the refusing endpoint to the back of the list so a
    // later full sweep reprobes it last, then bind whatever slid into its
    // place (wrapping when it was already last).
    Endpoint demoted = std::move(eps_[ep_]);
    eps_.erase(eps_.begin() + static_cast<std::ptrdiff_t>(ep_));
    eps_.push_back(std::move(demoted));
    if (ep_ >= eps_.size() - 1) ep_ = 0;
  }
  ++rotations_;
  backoff_rng_ = sim::Rng(eps_[ep_].retry.jitter_seed ^
                          (0x9e3779b97f4a7c15ULL * rotations_));
}

bool Session::follow_leader_hint(std::uint64_t aux) {
  if (aux == 0) return false;
  const auto member = static_cast<std::uint32_t>(aux - 1);
  for (std::size_t i = 0; i < eps_.size(); ++i) {
    if (eps_[i].member != member) continue;
    if (i == ep_) return false;  // the hint names the endpoint we just tried
    ep_ = i;
    ++rotations_;
    backoff_rng_ = sim::Rng(eps_[ep_].retry.jitter_seed ^
                            (0x9e3779b97f4a7c15ULL * rotations_));
    nic_.fabric().stats().add("dafs.leader_hints_followed");
    return true;
  }
  return false;
}

PStatus Session::do_connect() {
  Actor* actor = Actor::current();
  assert(actor && "Session::connect outside an ActorScope");
  (void)actor;
  PStatus last = PStatus::kProtoError;
  // One pass per endpoint plus generous slack: a quorum group caught
  // mid-election answers kNotLeader everywhere with no hint until a leader
  // emerges, so passes that land in that window burn budget without
  // progress. The short sleep below spans an election timeout across one
  // sweep of the mount.
  for (std::size_t pass = 0; pass < eps_.size() + 8; ++pass) {
    last = connect_once();
    if (last != PStatus::kFenced && last != PStatus::kNotLeader) break;
    // The filer answered but refuses service: a deposed pair member fences
    // every request, a quorum follower redirects. Demote it behind the
    // rest of the rotation — unless the follower named the leader and that
    // endpoint is in the mount, in which case jump straight there. Either
    // way the next attempt needs a fresh VI.
    if (last != PStatus::kNotLeader || !follow_leader_hint(leader_hint_)) {
      demote_endpoint();
      if (last == PStatus::kNotLeader) std::this_thread::sleep_for(20ms);
    }
    vi_->disconnect();
    vi_ = std::make_unique<via::Vi>(nic_, session_vi_attrs(ptag_));
  }
  if (last != PStatus::kOk) return last;
  nic_.fabric().stats().add("dafs.client_sessions");
  return PStatus::kOk;
}

PStatus Session::connect_once() {
  // The service may still be coming up; retry name-service misses briefly.
  // With failover targets, alternate endpoints between probes: whichever
  // member of the pair is serving clients answers first.
  via::Status cst = via::Status::kNoMatchingListener;
  for (int attempt = 0; attempt < 200; ++attempt) {
    cst = nic_.connect(*vi_, active_service(), kIoWait);
    if (cst != via::Status::kNoMatchingListener) break;
    if (eps_.size() > 1) advance_endpoint();
    std::this_thread::sleep_for(10ms);
  }
  if (cst != via::Status::kSuccess) return PStatus::kProtoError;
  // Receive buffers must be posted before the first request leaves (credit
  // contract with the server). Allocation and registration happen once —
  // a second pass (fenced first endpoint) reuses them on the fresh VI.
  if (recv_bufs_.empty()) {
    recv_bufs_.resize(cfg_.credits);
    for (auto& rb : recv_bufs_) {
      rb.mem.resize(cfg_.msg_buf_size);
      rb.handle =
          nic_.register_memory(rb.mem.data(), rb.mem.size(), ptag_, {});
      if (rb.handle == via::kInvalidMemHandle) return PStatus::kNoResource;
    }
    slots_.resize(cfg_.credits);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      auto& sl = slots_[i];
      sl.send_buf.resize(cfg_.msg_buf_size);
      sl.send_handle = nic_.register_memory(sl.send_buf.data(),
                                            sl.send_buf.size(), ptag_, {});
      if (sl.send_handle == via::kInvalidMemHandle) {
        return PStatus::kNoResource;
      }
      free_slots_.push_back(static_cast<OpId>(i));
    }
    // Full-size: lease reclaim runs open/lock RPCs (with path names) through
    // this buffer while every regular slot is occupied by an in-flight
    // request.
    resume_buf_.resize(cfg_.msg_buf_size);
    resume_handle_ = nic_.register_memory(resume_buf_.data(),
                                          resume_buf_.size(), ptag_, {});
    if (resume_handle_ == via::kInvalidMemHandle) return PStatus::kNoResource;
  }
  for (auto& rb : recv_bufs_) {
    rb.desc = via::Descriptor{};
    rb.desc.segs = {via::DataSegment{
        rb.mem.data(), rb.handle, static_cast<std::uint32_t>(rb.mem.size())}};
    if (vi_->post_recv(rb.desc) != via::Status::kSuccess) {
      return PStatus::kProtoError;
    }
  }

  auto id = submit_simple(Proc::kConnect, {}, Fh{}, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  if (const PStatus st = wait_slot(id.value()); st != PStatus::kOk) {
    free_slot(id.value());
    return st;
  }
  session_id_ = slots_[id.value()].resp.aux;
  // Session ids are unique and never reused (they survive server restarts),
  // so the first one makes a stable client identity for the durable
  // duplicate filter unless the caller supplied its own.
  if (client_id_ == 0) {
    client_id_ = cfg_.client_id != 0 ? cfg_.client_id : session_id_;
  }
  free_slot(id.value());
  return PStatus::kOk;
}

Session::~Session() {
  if (!dead_ && session_id_ != 0) {
    // A failed farewell must not abort teardown, but it must not vanish
    // either: a filer that missed the disconnect keeps the session (and its
    // locks) alive until it expires.
    if (auto id = submit_simple(Proc::kDisconnect, {}, Fh{}, 0, 0, 0, 0);
        id.ok()) {
      if (const PStatus st = wait_slot(id.value()); st != PStatus::kOk) {
        nic_.fabric().stats().add("dafs.disconnect_errors");
      }
      free_slot(id.value());
    } else {
      nic_.fabric().stats().add("dafs.disconnect_errors");
    }
  }
  vi_->disconnect();
  // NIC registrations are dropped with the registry; explicit deregistration
  // here would charge an actor that may already be gone.
}

// ---------------------------------------------------------------------------
// Slot management & transport
// ---------------------------------------------------------------------------

Result<OpId> Session::alloc_slot() {
  if (dead_) return PStatus::kConnLost;
  if (free_slots_.empty()) return PStatus::kInval;  // credit limit exceeded
  const OpId id = free_slots_.back();
  free_slots_.pop_back();
  Slot& sl = slots_[id];
  sl.in_use = true;
  sl.done = false;
  sl.t_submit = 0;
  sl.busy_retries = 0;
  sl.reclaim_retries = 0;
  sl.trace_id = 0;
  sl.span_id = 0;
  sl.parent_span = 0;
  sl.user_buf = nullptr;
  sl.user_cap = 0;
  sl.verify_buf = nullptr;
  sl.payload.clear();
  sl.temp_handles.clear();
  return id;
}

void Session::free_slot(OpId id) {
  Slot& sl = slots_[id];
  if (!sl.temp_handles.empty()) {
    for (const via::MemHandle h : sl.temp_handles) {
      if (nic_.deregister_memory(h) != via::Status::kSuccess) {
        nic_.fabric().stats().add("via.dereg_failures");
      }
    }
    sl.temp_handles.clear();
  }
  sl.in_use = false;
  free_slots_.push_back(id);
}

PStatus Session::transmit(OpId id) {
  Actor* actor = Actor::current();
  assert(actor && "DAFS op outside an ActorScope");
  actor->charge(CostKind::kProtocol, nic_.cost().client_op);

  Slot& sl = slots_[id];
  MsgView msg(sl.send_buf.data(), sl.send_buf.size());
  msg.header().request_id = id;
  msg.header().session_id = session_id_;
  // Stamp the request with its session sequence number exactly once: a
  // retransmission after recovery must carry the same seq so the server's
  // replay cache can recognize it.
  sl.seq = next_seq_++;
  msg.header().seq = sl.seq;
  msg.header().client_id = client_id_;
  msg.header().deadline =
      deadline_ns_ == 0 ? 0 : actor->now() + deadline_ns_;
  // Piggybacked cumulative ack: every seq below the oldest still-outstanding
  // request has been answered, so the server may drop those replay entries.
  std::uint32_t ack = sl.seq - 1;
  for (const Slot& o : slots_) {
    if (&o != &sl && o.in_use && !o.done && o.seq != 0 && o.seq <= ack) {
      ack = o.seq - 1;
    }
  }
  msg.header().ack_seq = ack;
  // Trace identity, captured once per request from the span open on the
  // submitting thread (the MPI-IO op's root). Busy retries re-run this code
  // with the ids already set, and recovery retransmits the buffer verbatim,
  // so every retry of this request links back to the original root.
  if (sl.trace_id == 0) {
    sim::Tracer& tracer = nic_.fabric().trace();
    if (const sim::SpanContext ctx = sim::Tracer::current();
        tracer.enabled() && ctx.active()) {
      sl.trace_id = ctx.trace_id;
      sl.parent_span = ctx.span_id;
      sl.span_id = tracer.new_id();
    }
  }
  msg.header().trace_id = sl.trace_id;
  msg.header().parent_span_id = sl.span_id;
  sl.proc = msg.header().proc;
  sl.wire_len = msg.wire_size();
  // First transmission only: a busy/corrupt retry re-enters here, and the
  // request span (and end-to-end RTT) must keep covering the failed
  // attempts — re-stamping would start the span after the server-side spans
  // those attempts already recorded.
  if (sl.t_submit == 0) sl.t_submit = actor->now();

  sl.send_desc = via::Descriptor{};
  sl.send_desc.op = via::Opcode::kSend;
  sl.send_desc.segs = {
      via::DataSegment{sl.send_buf.data(), sl.send_handle,
                       static_cast<std::uint32_t>(sl.wire_len)}};
  via::Descriptor* done = nullptr;
  if (vi_->post_send(sl.send_desc) == via::Status::kSuccess &&
      vi_->send_wait(done, io_budget(deadline_ns_)) == via::Status::kSuccess &&
      done->status == via::DescStatus::kSuccess) {
    return PStatus::kOk;
  }
  // Transport failure. This slot is in flight (in_use, not done), so a
  // successful recovery has already retransmitted it.
  if (recover()) return PStatus::kOk;
  return PStatus::kConnLost;
}

bool Session::pump_one() {
  for (;;) {
    via::Descriptor* d = nullptr;
    if (vi_->recv_wait(d, io_budget(deadline_ns_)) != via::Status::kSuccess ||
        d->status != via::DescStatus::kSuccess) {
      // Connection died (or a fault flushed the receive ring). Recovery
      // retransmits everything in flight; responses arrive on the new VI.
      if (recover()) continue;
      return false;
    }
    // Find the buffer this descriptor scatters into.
    RecvBuf* rb = nullptr;
    for (auto& b : recv_bufs_) {
      if (&b.desc == d) {
        rb = &b;
        break;
      }
    }
    assert(rb != nullptr);
    process_response(*rb);
    return true;
  }
}

bool Session::process_response(RecvBuf& rb) {
  MsgView resp(rb.mem.data(), rb.mem.size());
  const MsgHeader h = resp.header();
  const OpId id = h.request_id;
  // A duplicated response, or one for a request that was already answered
  // before a retransmission, maps to no live slot: drop it.
  const bool live = id < slots_.size() && slots_[id].in_use &&
                    !slots_[id].done && slots_[id].seq == h.seq;
  if (live) {
    Slot& sl = slots_[id];
    sl.resp = h;
    // Wire-payload verification: the server stamped a CRC-32C over the data
    // it produced (inline payload bytes, or the direct bytes it RDMA-wrote
    // into our contiguous buffer). Verify before any byte reaches the
    // caller; a mismatch turns the response into kCorrupt so wait_slot
    // retries it instead of surfacing damaged data.
    bool rejected = false;
    if (h.status == PStatus::kOk && (h.flags & kFlagPayloadCrc) != 0) {
      std::span<const std::byte> covered;
      if (h.data_len > 0) {
        covered = {resp.data_payload(), h.data_len};
      } else if (sl.verify_buf != nullptr && h.len > 0) {
        covered = {sl.verify_buf, h.len};
      }
      if (!covered.empty()) {
        Actor::current()->charge(CostKind::kCopy,
                                 nic_.cost().copy_time(covered.size()));
        nic_.fabric().stats().add("dafs.integrity_crc_bytes", covered.size());
        if (fstore::crc32c(covered) != h.payload_crc) {
          nic_.fabric().stats().add("dafs.integrity_client_rejects");
          sl.resp.status = PStatus::kCorrupt;
          rejected = true;
        }
      }
    }
    if (h.data_len > 0 && !rejected) {
      Actor* actor = Actor::current();
      const std::uint32_t n = h.data_len;
      if (sl.user_buf != nullptr) {
        // Inline read payload: the copy the direct path avoids.
        const std::uint64_t take = std::min<std::uint64_t>(n, sl.user_cap);
        std::memcpy(sl.user_buf, resp.data_payload(), take);
        actor->charge(CostKind::kCopy, nic_.cost().copy_time(take));
        nic_.fabric().stats().add("dafs.client_copy_bytes", take);
      } else {
        sl.payload.assign(resp.data_payload(), resp.data_payload() + n);
        actor->charge(CostKind::kCopy, nic_.cost().copy_time(n));
      }
    }
    // Recall notification: the server piggybacks kFlagDelegRecall on any
    // response to a holder's request. Sticky until the cache owner services
    // it — a response flag alone would be lost on ops that discard flags.
    if ((h.flags & kFlagDelegRecall) != 0 &&
        sl.ino != fstore::kInvalidIno) {
      recalled_.insert(sl.ino);
    }
    sl.done = true;
    record_rtt(sl);
  } else {
    nic_.fabric().stats().add("dafs.stale_responses");
  }
  // Return the receive buffer to the pool. A repost failure means the
  // connection just died again; the next pump recovers and reposts the ring.
  rb.desc = via::Descriptor{};
  rb.desc.segs = {via::DataSegment{
      rb.mem.data(), rb.handle, static_cast<std::uint32_t>(rb.mem.size())}};
  if (vi_->post_recv(rb.desc) != via::Status::kSuccess) {
    nic_.fabric().stats().add("dafs.repost_failures");
  }
  return live;
}

PStatus Session::wait_slot(OpId id) {
  Slot& sl = slots_[id];
  for (;;) {
    while (!sl.done) {
      if (!pump_one()) return PStatus::kConnLost;
    }
    if (sl.resp.status == PStatus::kBadSession &&
        sl.reclaim_retries < kSlotReclaimRetries) {
      // A kBadSession *response* (not a transport failure) means the server
      // restarted but kept our idle VI alive: it forgot the session, not the
      // connection. Rebuild its state from our leases and retransmit — the
      // slot is marked un-done so recovery's replay includes it.
      ++sl.reclaim_retries;
      sl.done = false;
      if (recover()) continue;
      return PStatus::kConnLost;
    }
    if (sl.resp.status == PStatus::kFenced && session_id_ != 0 &&
        sl.reclaim_retries < kSlotReclaimRetries) {
      // The bound filer was deposed by a standby promotion and refuses all
      // stale-session traffic. Recovery's resume gets kFenced too and
      // rotates to the next endpoint, where resume/reclaim + retransmit
      // complete this request against the promoted standby.
      ++sl.reclaim_retries;
      sl.done = false;
      if (recover()) continue;
      return PStatus::kConnLost;
    }
    if (sl.resp.status == PStatus::kNotLeader) {
      // Remember the follower's leader hint even when we surface the error:
      // do_connect and recover() both consume it to jump straight to the
      // leader instead of sweeping the mount blind.
      leader_hint_ = sl.resp.aux;
      if (session_id_ != 0 && sl.reclaim_retries < kSlotReclaimRetries) {
        // A quorum follower answered a bound session's request: leadership
        // moved underneath us. Recovery follows the hint (resume against
        // the new leader, reclaim if it never saw us) and retransmits.
        ++sl.reclaim_retries;
        sl.done = false;
        if (recover()) continue;
        return PStatus::kConnLost;
      }
    }
    if (sl.resp.status == PStatus::kCorrupt) {
      // Damaged data, not damaged state: the server never executed (writes)
      // or can safely re-execute (reads) this request. Retry with backoff —
      // a wire flip is transient, and an at-rest flip may be repaired by a
      // scrub pass between attempts.
      if (corrupt_retry(id)) continue;
      return sl.resp.status;
    }
    if (sl.resp.status != PStatus::kBusy) return sl.resp.status;
    // Shed by the server: honor the retry-after hint and retransmit, up to
    // the slot's budget.
    if (!busy_retry(id)) return sl.resp.status;
  }
}

bool Session::busy_retry(OpId id) {
  Slot& sl = slots_[id];
  const std::uint64_t retry_ns = sl.resp.aux;
  // aux == 0 marks a deadline expiry, not overload: retrying cannot help.
  if (retry_ns == 0 || sl.busy_retries >= policy().max_busy_retries) {
    return false;
  }
  ++sl.busy_retries;
  nic_.fabric().stats().add("dafs.busy_retries");
  Actor* actor = Actor::current();
  // Jittered virtual backoff per the server's hint, plus a real-time yield
  // so the admission queue can actually drain before the retransmission.
  actor->advance(retry_ns / 2 + backoff_rng_.below(retry_ns / 2 + 1));
  std::this_thread::sleep_for(std::chrono::microseconds(500));
  sl.done = false;
  // A shed request never executed, so the fresh seq transmit() stamps is
  // safe — this is a new submission, not a replay-protected retransmission.
  if (transmit(id) == PStatus::kOk) return true;
  sl.resp.status = PStatus::kConnLost;
  sl.done = true;
  return false;
}

bool Session::corrupt_retry(OpId id) {
  Slot& sl = slots_[id];
  if (sl.busy_retries >= policy().max_busy_retries) return false;
  ++sl.busy_retries;
  nic_.fabric().stats().add("dafs.corrupt_retries");
  Actor* actor = Actor::current();
  // Jittered virtual backoff plus a real-time yield: the filer's scrubber
  // runs on real time, so the sleep is what gives a quorum repair a chance
  // to restore the block between attempts.
  const std::uint64_t base =
      std::max<std::uint64_t>(policy().backoff_ns, 100'000);
  actor->advance(base / 2 + backoff_rng_.below(base / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sl.done = false;
  // A kCorrupt answer is never replay-cached and never mutated state, so
  // the fresh seq transmit() stamps makes this a new submission, not a
  // replay-protected retransmission.
  if (transmit(id) == PStatus::kOk) return true;
  sl.resp.status = PStatus::kConnLost;
  sl.done = true;
  return false;
}

std::uint16_t Session::integrity_flags() const {
  switch (cfg_.integrity) {
    case IntegrityMode::kOff: return 0;
    case IntegrityMode::kWire: return kFlagPayloadCrc;
    case IntegrityMode::kFull: return kFlagPayloadCrc | kFlagVerifyStore;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Transport-failure recovery
// ---------------------------------------------------------------------------

bool Session::recover() {
  if (recovering_ || dead_) return false;
  recovering_ = true;
  // Whatever we reconnect to may be a different incarnation (restart,
  // failover, new leader) that never issued our delegations. The ids keep
  // fencing correctly end-to-end; this only tells caches to stop trusting
  // locally-held bytes until revalidated.
  ++recovery_epoch_;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{recovering_};

  Actor* actor = Actor::current();
  assert(actor && "recovery outside an ActorScope");
  auto& stats = nic_.fabric().stats();
  // Identify the starting endpoint by service, not index: demotion reorders
  // eps_, so after a fenced home is pushed to the back the survivor we land
  // on may occupy the very slot we started from.
  const std::string home = eps_[ep_].service;
  const sim::Time t_fail = actor->now();
  // Passes run the bound endpoint's retry budget; kFenced (or a dead
  // listener on a failover mount) cuts a pass short and rotates. A
  // single-endpoint mount gets one pass of long-polling through the outage;
  // a failover mount instead keeps sweeping the endpoint list — a takeover
  // is not instant, so the standby may answer only some sweeps later — and
  // spends its whole per-endpoint budget on short cross-endpoint probes.
  const std::size_t max_passes =
      eps_.size() == 1
          ? 1
          : eps_.size() *
                static_cast<std::size_t>(std::max(1, eps_[ep_].retry.attempts));
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    const Endpoint ep = eps_[ep_];  // by value: demotion reorders eps_
    sim::Time backoff = ep.retry.backoff_ns;
    bool rotate = false;
    // Set when the pass already repositioned ep_ itself (demotion or a
    // leader-hint jump); suppresses the blind advance at the pass end.
    bool moved = false;
    for (int attempt = 1; attempt <= ep.retry.attempts && !rotate;
         ++attempt) {
      stats.add("dafs.recovery_attempts");
      // Capped exponential backoff, jittered to [backoff/2, backoff] so a
      // herd of clients that died together does not reconnect in lockstep.
      actor->advance(backoff / 2 + backoff_rng_.below(backoff / 2 + 1));
      backoff = std::min<sim::Time>(backoff * 2, ep.retry.backoff_cap_ns);

      const sim::Time t0 = actor->now();
      // A VI that saw a transport failure is finished; replace the endpoint.
      // NIC memory registrations are independent of the VI and survive, so
      // the server can still RDMA against the same client buffers.
      vi_->disconnect();
      vi_ = std::make_unique<via::Vi>(nic_, session_vi_attrs(ptag_));
      // A crashed server takes its listener down for the whole (real-time)
      // restart delay. A single-endpoint mount has nowhere else to go, so
      // it polls through the outage; a failover mount probes briefly and
      // rotates to the standby instead — that is the point of the pair.
      const int polls = eps_.size() == 1 ? 400 : 8;
      const auto poll_sleep =
          eps_.size() == 1 ? std::chrono::milliseconds(5)
                           : std::chrono::milliseconds(1);
      via::Status cst = via::Status::kNoMatchingListener;
      for (int i = 0;
           i < polls && cst == via::Status::kNoMatchingListener; ++i) {
        cst = nic_.connect(*vi_, ep.service, kIoWait);
        if (cst == via::Status::kNoMatchingListener) {
          std::this_thread::sleep_for(poll_sleep);
        }
      }
      if (cst != via::Status::kSuccess) {
        if (eps_.size() > 1) rotate = true;
        continue;
      }
      bool armed = true;
      for (auto& rb : recv_bufs_) {
        rb.desc = via::Descriptor{};
        rb.desc.segs = {via::DataSegment{
            rb.mem.data(), rb.handle,
            static_cast<std::uint32_t>(rb.mem.size())}};
        if (vi_->post_recv(rb.desc) != via::Status::kSuccess) {
          armed = false;
          break;
        }
      }
      if (!armed) continue;
      const ResumeOutcome ro = resume_session();
      if (ro == ResumeOutcome::kFailed) continue;
      if (ro == ResumeOutcome::kFenced) {
        // Deposed filer: it will never serve this session again. Demote it
        // to the back of the rotation so later sweeps reprobe it last.
        demote_endpoint();
        moved = true;
        rotate = true;
        continue;
      }
      if (ro == ResumeOutcome::kNotLeader) {
        // Quorum follower: jump straight to the hinted leader when the
        // mount knows its endpoint; otherwise demote the follower and
        // sweep. Either way leadership is still settling (an election in
        // progress, or hints chasing a heartbeat behind), and that is a
        // real-time wait: pace the sweep instead of burning the whole pass
        // budget before a leader can possibly emerge.
        const bool jumped = follow_leader_hint(leader_hint_);
        if (!jumped) demote_endpoint();
        std::this_thread::sleep_for(std::chrono::milliseconds(jumped ? 2 : 10));
        moved = true;
        rotate = true;
        continue;
      }
      // kBadSession after a reconnect means the server restarted (or a
      // promoted standby never saw us): rebuild its state from our leases
      // before retransmitting.
      if (ro == ResumeOutcome::kLostState && !reclaim_session()) continue;
      if (!retransmit_inflight()) continue;
      nic_.fabric().histograms().record("dafs.reconnect_ns",
                                        actor->now() - t0);
      stats.add("dafs.recoveries");
      if (eps_[ep_].service != home) {
        ++failovers_;
        stats.add("dafs.failovers");
        nic_.fabric().histograms().record("dafs.failover_ns",
                                          actor->now() - t_fail);
      }
      return true;
    }
    if (!moved) advance_endpoint();
  }
  dead_ = true;
  stats.add("dafs.recovery_failures");
  return false;
}

Session::RawResp Session::raw_rpc() {
  RawResp r;
  MsgView msg(resume_buf_.data(), resume_buf_.size());
  msg.header().request_id = kResumeReqId;
  msg.header().session_id = session_id_;
  msg.header().seq = next_seq_++;
  msg.header().client_id = client_id_;

  resume_desc_ = via::Descriptor{};
  resume_desc_.op = via::Opcode::kSend;
  resume_desc_.segs = {
      via::DataSegment{resume_buf_.data(), resume_handle_,
                       static_cast<std::uint32_t>(msg.wire_size())}};
  via::Descriptor* sd = nullptr;
  if (vi_->post_send(resume_desc_) != via::Status::kSuccess ||
      vi_->send_wait(sd, kIoWait) != via::Status::kSuccess ||
      sd->status != via::DescStatus::kSuccess) {
    return r;
  }
  // This RPC is the only request outstanding on the fresh VI, so the next
  // response is its answer (anything else is treated as a failed attempt).
  via::Descriptor* d = nullptr;
  if (vi_->recv_wait(d, kIoWait) != via::Status::kSuccess ||
      d->status != via::DescStatus::kSuccess) {
    return r;
  }
  RecvBuf* rb = nullptr;
  for (auto& b : recv_bufs_) {
    if (&b.desc == d) {
      rb = &b;
      break;
    }
  }
  assert(rb != nullptr);
  MsgView resp(rb->mem.data(), rb->mem.size());
  if (resp.header().request_id == kResumeReqId) {
    r.transport_ok = true;
    r.hdr = resp.header();
    r.status = r.hdr.status;
    if (r.hdr.data_len >= sizeof(fstore::Attrs)) {
      std::memcpy(&r.attrs, resp.data_payload(), sizeof(r.attrs));
      r.have_attrs = true;
    }
  } else {
    nic_.fabric().stats().add("dafs.stale_responses");
  }
  rb->desc = via::Descriptor{};
  rb->desc.segs = {via::DataSegment{
      rb->mem.data(), rb->handle, static_cast<std::uint32_t>(rb->mem.size())}};
  if (vi_->post_recv(rb->desc) != via::Status::kSuccess) {
    r.transport_ok = false;
  }
  return r;
}

Session::ResumeOutcome Session::resume_session() {
  MsgView msg(resume_buf_.data(), resume_buf_.size());
  msg.header() = MsgHeader{};
  msg.header().proc = Proc::kConnect;
  msg.header().flags = kConnectResume;
  msg.header().aux = session_id_;  // the session we are reclaiming
  const RawResp r = raw_rpc();
  if (!r.transport_ok) return ResumeOutcome::kFailed;
  if (r.status == PStatus::kOk && r.hdr.aux == session_id_) {
    return ResumeOutcome::kResumed;
  }
  if (r.status == PStatus::kBadSession) return ResumeOutcome::kLostState;
  if (r.status == PStatus::kFenced) return ResumeOutcome::kFenced;
  if (r.status == PStatus::kNotLeader) {
    leader_hint_ = r.hdr.aux;
    return ResumeOutcome::kNotLeader;
  }
  return ResumeOutcome::kFailed;
}

bool Session::reclaim_session() {
  auto& stats = nic_.fabric().stats();
  Actor* actor = Actor::current();
  // 1. A fresh session: the old identity died with the server.
  {
    MsgView msg(resume_buf_.data(), resume_buf_.size());
    msg.header() = MsgHeader{};
    msg.header().proc = Proc::kConnect;
    const RawResp r = raw_rpc();
    if (!r.transport_ok || r.status != PStatus::kOk) return false;
    session_id_ = r.hdr.aux;
  }
  // 2. Re-open every leased path and validate that the handle still names
  // the same file incarnation. A plain open — never create/truncate — so
  // validation cannot destroy data.
  for (const OpenLease& lease : leases_) {
    if (stale_.count(lease.ino) != 0) continue;
    bool is_stale = false;
    for (int tries = 0;; ++tries) {
      MsgView msg(resume_buf_.data(), resume_buf_.size());
      msg.header() = MsgHeader{};
      msg.header().proc = Proc::kOpen;
      msg.set_name(lease.path);
      const RawResp r = raw_rpc();
      if (!r.transport_ok) return false;
      // A deposition (or quorum leadership change) mid-reclaim must not
      // condemn the handle as stale; abort the whole reclaim so recovery
      // rotates to whoever serves now.
      if (r.status == PStatus::kFenced) return false;
      if (r.status == PStatus::kNotLeader) {
        leader_hint_ = r.hdr.aux;
        return false;
      }
      if (r.status == PStatus::kBusy) {
        // Shed by the restarting server's admission control. Honor the
        // mount's busy-retry budget exactly like the normal request path
        // (aux == 0 marks a deadline shed — retrying cannot help). On
        // exhaustion abort the whole reclaim so recovery retries or rotates;
        // falling through here would condemn a live handle as stale.
        if (r.hdr.aux == 0 || tries >= policy().max_busy_retries) {
          return false;
        }
        stats.add("dafs.busy_retries");
        actor->advance(std::max<std::uint64_t>(r.hdr.aux, 1'000));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (r.status == PStatus::kOk && r.hdr.ino == lease.ino &&
          r.have_attrs && r.attrs.gen == lease.gen) {
        break;  // same file, same incarnation: the handle survives
      }
      // Gone, replaced, or unreadable: the handle is stale for good.
      is_stale = true;
      break;
    }
    if (!is_stale) continue;
    stale_.insert(lease.ino);
    stats.add("dafs.stale_handles");
    // In-flight requests against the stale handle complete locally with
    // kStale — the server-side file they targeted no longer exists.
    for (auto& sl : slots_) {
      if (!sl.in_use || sl.done) continue;
      MsgView m(sl.send_buf.data(), sl.send_buf.size());
      if (m.header().ino == lease.ino) {
        sl.resp = MsgHeader{};
        sl.resp.status = PStatus::kStale;
        sl.done = true;
      }
    }
    std::erase_if(lock_leases_, [&](const LockLease& l) {
      return l.ino == lease.ino;
    });
  }
  // 3. Re-acquire leased byte-range locks, flagged as reclaims so the
  // server's post-restart grace period admits them.
  for (auto it = lock_leases_.begin(); it != lock_leases_.end();) {
    const LockLease& l = *it;
    PStatus st = PStatus::kOk;
    int busy_tries = 0;
    int conflict_tries = 0;
    for (;;) {
      MsgView msg(resume_buf_.data(), resume_buf_.size());
      msg.header() = MsgHeader{};
      msg.header().proc = Proc::kLock;
      msg.header().ino = l.ino;
      msg.header().offset = l.start;
      msg.header().len = l.len;
      msg.header().aux =
          (l.exclusive ? kLockExclusive : 0) | kLockReclaim;
      const RawResp r = raw_rpc();
      if (!r.transport_ok) return false;
      st = r.status;
      // Deposed (or redirected) mid-reclaim: abort so recovery rotates
      // instead of treating the refusal as a lost lock.
      if (st == PStatus::kFenced) return false;
      if (st == PStatus::kNotLeader) {
        leader_hint_ = r.hdr.aux;
        return false;
      }
      if (st == PStatus::kBusy) {
        // Same policy-driven budget as the normal request path (aux == 0 is
        // a deadline shed: no retry); exhaustion aborts the reclaim so
        // recovery surfaces it instead of silently dropping the lease.
        if (r.hdr.aux == 0 || busy_tries >= policy().max_busy_retries) {
          return false;
        }
        ++busy_tries;
        stats.add("dafs.busy_retries");
        actor->advance(std::max<std::uint64_t>(r.hdr.aux, 20'000));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (st == PStatus::kLockConflict &&
          conflict_tries < policy().max_busy_retries) {
        // Another reclaimer holds the range right now; back off briefly.
        // Budget exhaustion falls through to the lease-lost path below.
        ++conflict_tries;
        actor->advance(std::max<std::uint64_t>(r.hdr.aux, 20'000));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      break;
    }
    if (st == PStatus::kOk) {
      ++it;
    } else {
      // The lock could not be re-established (another client raced into the
      // range). The lease is gone; surface it in stats rather than deadlock.
      stats.add("dafs.reclaim_lock_failures");
      it = lock_leases_.erase(it);
    }
  }
  // 4. Repoint still-pending requests at the new session before they are
  // retransmitted.
  for (auto& sl : slots_) {
    if (sl.in_use && !sl.done) {
      MsgView m(sl.send_buf.data(), sl.send_buf.size());
      m.header().session_id = session_id_;
    }
  }
  stats.add("dafs.session_reclaims");
  return true;
}

bool Session::retransmit_inflight() {
  // Replay every request whose response is still owed, oldest first, so the
  // server sees them in the original submission order.
  std::vector<OpId> pending;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].in_use && !slots_[i].done) {
      pending.push_back(static_cast<OpId>(i));
    }
  }
  std::sort(pending.begin(), pending.end(), [&](OpId a, OpId b) {
    return slots_[a].seq < slots_[b].seq;
  });
  for (const OpId id : pending) {
    Slot& sl = slots_[id];
    // Restamp the wire identity with the *current* session: a reclaim that
    // died partway (transport loss between the fresh connect and the lease
    // replay) leaves slots carrying the dead session's id, and a later
    // resume-only recovery would otherwise replay them verbatim into
    // kBadSession forever. The seq is deliberately left untouched — it is
    // the replay-protection key the server's dup filter matches on.
    MsgView m(sl.send_buf.data(), sl.send_buf.size());
    m.header().session_id = session_id_;
    sl.send_desc = via::Descriptor{};
    sl.send_desc.op = via::Opcode::kSend;
    sl.send_desc.segs = {
        via::DataSegment{sl.send_buf.data(), sl.send_handle,
                         static_cast<std::uint32_t>(sl.wire_len)}};
    via::Descriptor* done = nullptr;
    if (vi_->post_send(sl.send_desc) != via::Status::kSuccess ||
        vi_->send_wait(done, kIoWait) != via::Status::kSuccess ||
        done->status != via::DescStatus::kSuccess) {
      return false;
    }
    nic_.fabric().stats().add("dafs.retransmits");
  }
  return true;
}

void Session::record_rtt(const Slot& sl) {
  Actor* actor = Actor::current();
  if (actor == nullptr) return;
  const sim::Time now = actor->now();
  nic_.fabric().histograms().record(
      std::string("dafs.rtt_ns.") + proc_name(sl.proc),
      now > sl.t_submit ? now - sl.t_submit : 0);
  // Close the client-side request span (opened implicitly at transmit; submit
  // and completion are separate calls, so no RAII scope can span them).
  if (sl.trace_id != 0) {
    sim::Span s;
    s.trace_id = sl.trace_id;
    s.span_id = sl.span_id;
    s.parent_span_id = sl.parent_span;
    s.t_start = sl.t_submit;
    s.t_end = now;
    s.layer = "dafs.client";
    s.name = std::string("request.") + proc_name(sl.proc);
    char attrs[96];
    std::snprintf(attrs, sizeof(attrs), "\"seq\":%u,\"status\":%d", sl.seq,
                  static_cast<int>(sl.resp.status));
    s.attrs = attrs;
    nic_.fabric().trace().record(std::move(s));
  }
}

// ---------------------------------------------------------------------------
// Registration cache
// ---------------------------------------------------------------------------

void Session::note_use(RegEntry& e) { e.last_use = ++reg_clock_; }

via::MemHandle Session::reg_for(const std::byte* buf, std::size_t len,
                                OpId slot) {
  const auto base = reinterpret_cast<std::uintptr_t>(buf);
  via::MemAttrs attrs;
  attrs.enable_rdma_write = true;
  attrs.enable_rdma_read = true;

  if (!cfg_.reg_cache) {
    ++reg_misses_;
    const via::MemHandle h = nic_.register_memory(
        const_cast<std::byte*>(buf), len, ptag_, attrs);
    if (h != via::kInvalidMemHandle) slots_[slot].temp_handles.push_back(h);
    return h;
  }
  for (auto& e : reg_cache_entries_) {
    if (base >= e.base && base + len <= e.base + e.len) {
      note_use(e);
      ++reg_hits_;
      return e.handle;
    }
  }
  ++reg_misses_;
  const via::MemHandle h =
      nic_.register_memory(const_cast<std::byte*>(buf), len, ptag_, attrs);
  // Registration can fail (NIC out of resources); the caller turns that
  // into kNoResource. Never cache the invalid handle.
  if (h == via::kInvalidMemHandle) return h;
  if (reg_cache_entries_.size() >= cfg_.reg_cache_entries) {
    auto victim = std::min_element(
        reg_cache_entries_.begin(), reg_cache_entries_.end(),
        [](const RegEntry& a, const RegEntry& b) {
          return a.last_use < b.last_use;
        });
    if (nic_.deregister_memory(victim->handle) != via::Status::kSuccess) {
      nic_.fabric().stats().add("via.dereg_failures");
    }
    reg_cache_entries_.erase(victim);
    nic_.fabric().stats().add("dafs.regcache_evictions");
  }
  reg_cache_entries_.push_back(RegEntry{base, len, h, 0});
  note_use(reg_cache_entries_.back());
  return h;
}

// ---------------------------------------------------------------------------
// Request builders
// ---------------------------------------------------------------------------

Result<OpId> Session::submit_simple(Proc proc, std::string_view name, Fh fh,
                                    std::uint64_t offset, std::uint64_t len,
                                    std::uint64_t aux, std::uint16_t flags,
                                    std::uint64_t deleg) {
  if (fh.valid() && stale_.count(fh.ino) != 0) return PStatus::kStale;
  auto id = alloc_slot();
  if (!id.ok()) return id;
  Slot& sl = slots_[id.value()];
  sl.ino = fh.ino;
  MsgView msg(sl.send_buf.data(), sl.send_buf.size());
  msg.header() = MsgHeader{};
  msg.header().proc = proc;
  msg.header().flags = flags;
  msg.header().ino = fh.ino;
  msg.header().offset = offset;
  msg.header().len = len;
  msg.header().aux = aux;
  msg.header().deleg = deleg != 0 ? deleg : deleg_of(fh.ino);
  msg.set_name(name);
  if (const PStatus st = transmit(id.value()); st != PStatus::kOk) {
    free_slot(id.value());
    return st;
  }
  return id;
}

Result<OpId> Session::submit_io(Proc proc, Fh fh, std::span<const IoVec> iovs,
                                bool writing) {
  if (fh.valid() && stale_.count(fh.ino) != 0) return PStatus::kStale;
  auto id = alloc_slot();
  if (!id.ok()) return id;
  Slot& sl = slots_[id.value()];
  sl.ino = fh.ino;
  MsgView msg(sl.send_buf.data(), sl.send_buf.size());
  msg.header() = MsgHeader{};
  msg.header().proc = proc;
  msg.header().ino = fh.ino;
  msg.header().deleg = deleg_of(fh.ino);
  const std::uint16_t integ = integrity_flags();
  if ((integ & kFlagPayloadCrc) != 0) {
    msg.header().flags |= writing ? kFlagPayloadCrc : integ;
    if (writing) {
      // Direct write: CRC over the outgoing bytes in segment order (the
      // order the server pulls and verifies them in).
      std::uint32_t crc = 0;
      std::uint64_t covered = 0;
      for (const IoVec& v : iovs) {
        crc = fstore::crc32c({v.buf, v.len}, crc);
        covered += v.len;
      }
      msg.header().payload_crc = crc;
      Actor::current()->charge(CostKind::kCopy,
                               nic_.cost().copy_time(covered));
      nic_.fabric().stats().add("dafs.integrity_crc_bytes", covered);
    } else {
      // Direct read: the server's response CRC covers the moved bytes in
      // segment order. Only a contiguous ascending batch (memory and file)
      // makes those bytes a prefix of one flat buffer we can re-hash —
      // EOF clamps a contiguous range to a prefix, never a gap.
      bool contig = !iovs.empty();
      for (std::size_t i = 1; i < iovs.size() && contig; ++i) {
        contig = iovs[i - 1].buf + iovs[i - 1].len == iovs[i].buf &&
                 iovs[i - 1].file_off + iovs[i - 1].len == iovs[i].file_off;
      }
      if (contig) sl.verify_buf = iovs[0].buf;
    }
  }

  // Registration strategy: a batch may carry hundreds of segments; taking a
  // cache entry per segment could evict a handle that an earlier segment of
  // this same request still needs. When the segments live in one compact
  // buffer (the common MPI-IO case), register the hull once; otherwise pin
  // each segment with a per-request temporary registration.
  std::uintptr_t lo = UINTPTR_MAX, hi = 0;
  std::uint64_t total_len = 0;
  for (const IoVec& v : iovs) {
    lo = std::min(lo, reinterpret_cast<std::uintptr_t>(v.buf));
    hi = std::max(hi, reinterpret_cast<std::uintptr_t>(v.buf) + v.len);
    total_len += v.len;
  }
  via::MemHandle hull = via::kInvalidMemHandle;
  const bool use_hull =
      iovs.size() > 1 && hi > lo && (hi - lo) <= std::max<std::uint64_t>(
                                                     16 * total_len, 1 << 20);
  if (use_hull) {
    hull = reg_for(reinterpret_cast<const std::byte*>(lo), hi - lo,
                   id.value());
    if (hull == via::kInvalidMemHandle) {
      free_slot(id.value());
      return PStatus::kNoResource;
    }
  }

  // Build the direct-segment list, splitting at max_rdma_seg.
  std::vector<DirectSeg> segs;
  for (const IoVec& v : iovs) {
    via::MemHandle h = hull;
    if (!use_hull) {
      if (iovs.size() == 1) {
        h = reg_for(v.buf, v.len, id.value());
      } else {
        // Scattered buffers: pin for the lifetime of this request only.
        via::MemAttrs attrs;
        attrs.enable_rdma_write = true;
        attrs.enable_rdma_read = true;
        h = nic_.register_memory(v.buf, v.len, ptag_, attrs);
        if (h != via::kInvalidMemHandle) {
          slots_[id.value()].temp_handles.push_back(h);
        }
      }
      if (h == via::kInvalidMemHandle) {
        free_slot(id.value());
        return PStatus::kNoResource;
      }
    }
    std::uint64_t off = 0;
    while (off < v.len) {
      const std::uint64_t n = std::min<std::uint64_t>(
          v.len - off, cfg_.max_rdma_seg);
      DirectSeg s;
      s.file_off = v.file_off + off;
      s.addr = reinterpret_cast<std::uint64_t>(v.buf + off);
      s.mem = h;
      s.len = static_cast<std::uint32_t>(n);
      segs.push_back(s);
      off += n;
    }
  }
  if (sizeof(MsgHeader) + segs.size() * sizeof(DirectSeg) >
      sl.send_buf.size()) {
    free_slot(id.value());
    return PStatus::kInval;  // too many segments for one request
  }
  msg.set_segs(segs);
  nic_.fabric().stats().add(writing ? "dafs.direct_write_reqs"
                                    : "dafs.direct_read_reqs");
  if (const PStatus st = transmit(id.value()); st != PStatus::kOk) {
    free_slot(id.value());
    return st;
  }
  return id;
}

Result<std::uint64_t> Session::run_sync(OpId id) {
  const PStatus st = wait_slot(id);
  const std::uint64_t bytes = slots_[id].resp.len;
  free_slot(id);
  if (st != PStatus::kOk) return st;
  return bytes;
}

// ---------------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------------

Result<Fh> Session::open(std::string_view path, std::uint16_t flags,
                         DelegGrant* grant, std::uint64_t deleg) {
  auto id = submit_simple(Proc::kOpen, path, Fh{}, 0, 0, 0, flags, deleg);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  const Slot& sl = slots_[id.value()];
  const Fh fh{sl.resp.ino};
  std::uint64_t gen = 0;
  if (st == PStatus::kOk && sl.payload.size() >= sizeof(fstore::Attrs)) {
    fstore::Attrs a;
    std::memcpy(&a, sl.payload.data(), sizeof(a));
    gen = a.gen;
  }
  const std::uint64_t granted = st == PStatus::kOk ? sl.resp.deleg : 0;
  const bool granted_write = (sl.resp.flags & kFlagDelegWrite) != 0;
  const std::uint64_t granted_term = sl.resp.aux;
  free_slot(id.value());
  if (st != PStatus::kOk) return st;
  if (grant != nullptr) {
    grant->id = granted;
    grant->write = granted_write;
    grant->term_ns = granted ? granted_term : 0;
  }
  // Stamp the ino: either the grant this open earned, or the id the caller
  // threaded through (a striped client's data-subfile open riding the meta
  // session's delegation).
  if (granted != 0) {
    set_deleg(fh.ino, granted);
  } else if (deleg != 0) {
    set_deleg(fh.ino, deleg);
  }
  // Lease: enough client-side state to re-open and re-validate this handle
  // ((ino, gen) names one file incarnation) after a server restart.
  record_open_lease(path, fh.ino, gen);
  return fh;
}

Result<std::uint64_t> Session::deleg_renew(Fh fh) {
  auto id = submit_simple(Proc::kDelegRecall, {}, fh, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  const std::uint64_t term = slots_[id.value()].resp.aux;
  const bool recall = (slots_[id.value()].resp.flags & kFlagDelegRecall) != 0;
  free_slot(id.value());
  if (st != PStatus::kOk) {
    if (st == PStatus::kDelegExpired) clear_deleg(fh.ino);
    return st;
  }
  if (recall) recalled_.insert(fh.ino);
  return term;
}

PStatus Session::deleg_return(Fh fh) {
  if (deleg_of(fh.ino) == 0) return PStatus::kOk;
  auto id = submit_simple(Proc::kDelegReturn, {}, fh, 0, 0, 0, 0);
  if (!id.ok()) {
    clear_deleg(fh.ino);
    clear_recall(fh.ino);
    return id.error();
  }
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  clear_deleg(fh.ino);
  clear_recall(fh.ino);
  return st;
}

void Session::record_open_lease(std::string_view path, fstore::Ino ino,
                                std::uint64_t gen) {
  for (auto& l : leases_) {
    if (l.path == path) {
      l.ino = ino;
      l.gen = gen;
      return;
    }
  }
  leases_.push_back(OpenLease{std::string(path), ino, gen});
}

void Session::record_lock_lease(fstore::Ino ino, std::uint64_t start,
                                std::uint64_t len, bool exclusive) {
  for (auto& l : lock_leases_) {
    if (l.ino == ino && l.start == start && l.len == len) {
      l.exclusive = exclusive;
      return;
    }
  }
  lock_leases_.push_back(LockLease{ino, start, len, exclusive});
}

void Session::drop_lock_lease(fstore::Ino ino, std::uint64_t start,
                              std::uint64_t len) {
  const std::uint64_t re = len == 0 ? UINT64_MAX : start + len;
  std::erase_if(lock_leases_, [&](const LockLease& l) {
    const std::uint64_t le = l.len == 0 ? UINT64_MAX : l.start + l.len;
    return l.ino == ino && l.start >= start && le <= re;
  });
}

Result<fstore::Attrs> Session::getattr(Fh fh) {
  auto id = submit_simple(Proc::kGetattr, {}, fh, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  fstore::Attrs attrs;
  if (st == PStatus::kOk &&
      slots_[id.value()].payload.size() >= sizeof(attrs)) {
    std::memcpy(&attrs, slots_[id.value()].payload.data(), sizeof(attrs));
  }
  free_slot(id.value());
  if (st != PStatus::kOk) return st;
  return attrs;
}

PStatus Session::set_size(Fh fh, std::uint64_t size) {
  auto id = submit_simple(Proc::kSetSize, {}, fh, 0, 0, size, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

PStatus Session::remove(std::string_view path) {
  auto id = submit_simple(Proc::kRemove, path, Fh{}, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

PStatus Session::mkdir(std::string_view path) {
  auto id = submit_simple(Proc::kMkdir, path, Fh{}, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

PStatus Session::rmdir(std::string_view path) {
  auto id = submit_simple(Proc::kRmdir, path, Fh{}, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

PStatus Session::rename(std::string_view from, std::string_view to) {
  std::string both;
  both.reserve(from.size() + 1 + to.size());
  both.append(from);
  both.push_back('\0');
  both.append(to);
  auto id = submit_simple(Proc::kRename, both, Fh{}, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

Result<std::vector<fstore::DirEntry>> Session::readdir(std::string_view path) {
  std::vector<fstore::DirEntry> out;
  std::uint64_t cookie = 0;
  for (;;) {
    auto id = submit_simple(Proc::kReaddir, path, Fh{}, cookie, 0, 0, 0);
    if (!id.ok()) return id.error();
    const PStatus st = wait_slot(id.value());
    if (st != PStatus::kOk) {
      free_slot(id.value());
      return st;
    }
    Slot& sl = slots_[id.value()];
    const std::byte* p = sl.payload.data();
    const std::byte* end = p + sl.payload.size();
    for (std::uint64_t i = 0; i < sl.resp.len && p + sizeof(WireDirent) <= end;
         ++i) {
      WireDirent wd;
      std::memcpy(&wd, p, sizeof(wd));
      p += sizeof(wd);
      fstore::DirEntry e;
      e.ino = wd.ino;
      e.is_dir = wd.is_dir != 0;
      e.name.assign(reinterpret_cast<const char*>(p), wd.name_len);
      p += wd.name_len;
      out.push_back(std::move(e));
    }
    const bool done = sl.resp.flags != 0;
    cookie = sl.resp.aux;
    free_slot(id.value());
    if (done) return out;
  }
}

PStatus Session::sync(Fh fh) {
  auto id = submit_simple(Proc::kSync, {}, fh, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

Result<std::uint64_t> Session::pread(Fh fh, std::uint64_t off,
                                     std::span<std::byte> out) {
  if (out.size() >= cfg_.direct_threshold) {
    IoVec v{off, out.data(), out.size()};
    auto id = submit_io(Proc::kReadDirect, fh, std::span(&v, 1), false);
    if (!id.ok()) return id.error();
    return run_sync(id.value());
  }
  // Inline: may take several round trips if larger than a message.
  std::uint64_t done = 0;
  while (done < out.size()) {
    const std::size_t cap =
        MsgView(nullptr, cfg_.msg_buf_size).inline_capacity(0);
    const std::uint64_t want =
        std::min<std::uint64_t>(out.size() - done, cap);
    auto id = submit_simple(Proc::kReadInline, {}, fh, off + done, want, 0,
                            integrity_flags());
    if (!id.ok()) return id.error();
    slots_[id.value()].user_buf = out.data() + done;
    slots_[id.value()].user_cap = want;
    auto r = run_sync(id.value());
    if (!r.ok()) return r;
    done += r.value();
    if (r.value() < want) break;  // EOF
  }
  return done;
}

Result<std::uint64_t> Session::pwrite(Fh fh, std::uint64_t off,
                                      std::span<const std::byte> in) {
  if (in.size() >= cfg_.direct_threshold) {
    IoVec v{off, const_cast<std::byte*>(in.data()), in.size()};
    auto id = submit_io(Proc::kWriteDirect, fh, std::span(&v, 1), true);
    if (!id.ok()) return id.error();
    return run_sync(id.value());
  }
  std::uint64_t done = 0;
  Actor* actor = Actor::current();
  while (done < in.size() || (in.empty() && done == 0)) {
    auto id = alloc_slot();
    if (!id.ok()) return id.error();
    Slot& sl = slots_[id.value()];
    sl.ino = fh.ino;
    MsgView msg(sl.send_buf.data(), sl.send_buf.size());
    msg.header() = MsgHeader{};
    msg.header().proc = Proc::kWriteInline;
    msg.header().ino = fh.ino;
    msg.header().deleg = deleg_of(fh.ino);
    msg.header().offset = off + done;
    const std::uint64_t want = std::min<std::uint64_t>(
        in.size() - done, msg.inline_capacity(0));
    // Marshalling copy into the message buffer — the cost inline writes pay.
    if (want > 0) {
      std::memcpy(msg.data_payload(), in.data() + done, want);
      actor->charge(CostKind::kCopy, nic_.cost().copy_time(want));
    }
    nic_.fabric().stats().add("dafs.client_copy_bytes", want);
    msg.header().data_len = static_cast<std::uint32_t>(want);
    msg.header().len = want;
    if ((integrity_flags() & kFlagPayloadCrc) != 0 && want > 0) {
      msg.header().flags |= kFlagPayloadCrc;
      msg.header().payload_crc =
          fstore::crc32c({msg.data_payload(), want});
      actor->charge(CostKind::kCopy, nic_.cost().copy_time(want));
      nic_.fabric().stats().add("dafs.integrity_crc_bytes", want);
    }
    if (const PStatus st = transmit(id.value()); st != PStatus::kOk) {
      free_slot(id.value());
      return st;
    }
    auto r = run_sync(id.value());
    if (!r.ok()) return r;
    done += r.value();
    if (in.empty()) break;
  }
  return done;
}

Result<std::uint64_t> Session::read_batch(Fh fh, std::span<const IoVec> iovs) {
  auto id = submit_io(Proc::kReadDirect, fh, iovs, false);
  if (!id.ok()) return id.error();
  return run_sync(id.value());
}

Result<std::uint64_t> Session::write_batch(Fh fh, std::span<const IoVec> iovs) {
  auto id = submit_io(Proc::kWriteDirect, fh, iovs, true);
  if (!id.ok()) return id.error();
  return run_sync(id.value());
}

Result<OpId> Session::submit_read_batch(Fh fh, std::span<const IoVec> iovs) {
  return submit_io(Proc::kReadDirect, fh, iovs, false);
}

Result<OpId> Session::submit_write_batch(Fh fh, std::span<const IoVec> iovs) {
  return submit_io(Proc::kWriteDirect, fh, iovs, true);
}

// ---------------------------------------------------------------------------
// Asynchronous I/O
// ---------------------------------------------------------------------------

Result<OpId> Session::submit_pread(Fh fh, std::uint64_t off,
                                   std::span<std::byte> out) {
  if (out.size() >= cfg_.direct_threshold ||
      out.size() > MsgView(nullptr, cfg_.msg_buf_size).inline_capacity(0)) {
    IoVec v{off, out.data(), out.size()};
    return submit_io(Proc::kReadDirect, fh, std::span(&v, 1), false);
  }
  auto id = submit_simple(Proc::kReadInline, {}, fh, off, out.size(), 0,
                          integrity_flags());
  if (id.ok()) {
    slots_[id.value()].user_buf = out.data();
    slots_[id.value()].user_cap = out.size();
  }
  return id;
}

Result<OpId> Session::submit_pwrite(Fh fh, std::uint64_t off,
                                    std::span<const std::byte> in) {
  if (in.size() >= cfg_.direct_threshold ||
      in.size() > MsgView(nullptr, cfg_.msg_buf_size).inline_capacity(0)) {
    IoVec v{off, const_cast<std::byte*>(in.data()), in.size()};
    return submit_io(Proc::kWriteDirect, fh, std::span(&v, 1), true);
  }
  auto id = alloc_slot();
  if (!id.ok()) return id;
  Slot& sl = slots_[id.value()];
  MsgView msg(sl.send_buf.data(), sl.send_buf.size());
  msg.header() = MsgHeader{};
  msg.header().proc = Proc::kWriteInline;
  msg.header().ino = fh.ino;
  msg.header().offset = off;
  std::memcpy(msg.data_payload(), in.data(), in.size());
  Actor::current()->charge(CostKind::kCopy, nic_.cost().copy_time(in.size()));
  msg.header().data_len = static_cast<std::uint32_t>(in.size());
  msg.header().len = in.size();
  if ((integrity_flags() & kFlagPayloadCrc) != 0 && !in.empty()) {
    msg.header().flags |= kFlagPayloadCrc;
    msg.header().payload_crc = fstore::crc32c({msg.data_payload(), in.size()});
    Actor::current()->charge(CostKind::kCopy,
                             nic_.cost().copy_time(in.size()));
    nic_.fabric().stats().add("dafs.integrity_crc_bytes", in.size());
  }
  if (const PStatus st = transmit(id.value()); st != PStatus::kOk) {
    free_slot(id.value());
    return st;
  }
  return id;
}

PStatus Session::wait(OpId op, std::uint64_t* bytes) {
  const PStatus st = wait_slot(op);
  if (bytes != nullptr) *bytes = slots_[op].resp.len;
  free_slot(op);
  return st;
}

Result<bool> Session::test(OpId op, std::uint64_t* bytes) {
  if (dead_) return PStatus::kConnLost;
  if (!slots_[op].done) {
    // Opportunistically drain anything already delivered.
    via::Descriptor* d = nullptr;
    while (vi_->recv_done(d) == via::Status::kSuccess) {
      if (d->status != via::DescStatus::kSuccess) {
        // The ring was flushed by a transport failure; recover (which
        // retransmits everything in flight) and report "not yet done".
        if (!recover()) return PStatus::kConnLost;
        break;
      }
      RecvBuf* rb = nullptr;
      for (auto& b : recv_bufs_) {
        if (&b.desc == d) {
          rb = &b;
          break;
        }
      }
      assert(rb != nullptr);
      process_response(*rb);
      d = nullptr;
    }
  }
  if (!slots_[op].done) return false;
  // A shed request goes back on the wire and reports "not yet done"; only a
  // retry budget exhausted (or an expired deadline) surfaces the kBusy.
  if (slots_[op].resp.status == PStatus::kBusy && busy_retry(op)) return false;
  if (bytes != nullptr) *bytes = slots_[op].resp.len;
  const PStatus st = slots_[op].resp.status;
  free_slot(op);
  if (st != PStatus::kOk) return st;
  return true;
}

Result<std::size_t> Session::wait_any(std::span<const OpId> ops,
                                      std::uint64_t* bytes) {
  if (ops.empty()) return PStatus::kInval;
  for (;;) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      Slot& sl = slots_[ops[i]];
      if (sl.in_use && sl.done) {
        if (sl.resp.status == PStatus::kBusy && busy_retry(ops[i])) {
          continue;  // back in flight
        }
        if (bytes != nullptr) *bytes = sl.resp.len;
        free_slot(ops[i]);
        return i;
      }
    }
    if (!pump_one()) return PStatus::kConnLost;
  }
}

PStatus Session::wait_all(std::span<const OpId> ops) {
  PStatus worst = PStatus::kOk;
  for (const OpId op : ops) {
    const PStatus st = wait(op);
    if (st != PStatus::kOk) worst = st;
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Locks & counters
// ---------------------------------------------------------------------------

PStatus Session::try_lock(Fh fh, std::uint64_t start, std::uint64_t len,
                          bool exclusive) {
  auto id = submit_simple(Proc::kLock, {}, fh, start, len,
                          exclusive ? kLockExclusive : 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  if (st == PStatus::kOk) record_lock_lease(fh.ino, start, len, exclusive);
  return st;
}

PStatus Session::lock(Fh fh, std::uint64_t start, std::uint64_t len,
                      bool exclusive) {
  Actor* actor = Actor::current();
  // Jittered exponential backoff between conflict retries: fixed spacing
  // keeps contending clients phase-locked, re-colliding on every probe.
  sim::Time backoff = kLockBackoffBase;
  for (int i = 0; i < kLockRetries; ++i) {
    const PStatus st = try_lock(fh, start, len, exclusive);
    if (st != PStatus::kLockConflict) return st;
    actor->advance(backoff / 2 + backoff_rng_.below(backoff / 2 + 1));
    backoff = std::min<sim::Time>(backoff * 2, kLockBackoffCap);
    std::this_thread::yield();
  }
  return PStatus::kLockConflict;
}

PStatus Session::unlock(Fh fh, std::uint64_t start, std::uint64_t len) {
  auto id = submit_simple(Proc::kUnlock, {}, fh, start, len, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  if (st == PStatus::kOk) drop_lock_lease(fh.ino, start, len);
  return st;
}

Result<std::uint64_t> Session::fetch_add(std::string_view key,
                                         std::uint64_t delta) {
  auto id = submit_simple(Proc::kFetchAdd, key, Fh{}, 0, 0, delta, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  const std::uint64_t old = slots_[id.value()].resp.aux;
  free_slot(id.value());
  if (st != PStatus::kOk) return st;
  return old;
}

PStatus Session::set_counter(std::string_view key, std::uint64_t value) {
  auto id = submit_simple(Proc::kSetCounter, key, Fh{}, 0, 0, value, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  free_slot(id.value());
  return st;
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

namespace {
/// Parse a kStatsQuery response payload (layout in proto.hpp). Every read is
/// bounds-checked: a short or internally-inconsistent snapshot is a protocol
/// error, never an out-of-bounds read.
bool parse_stats_payload(std::span<const std::byte> payload,
                         StatsSnapshot& out) {
  const std::byte* p = payload.data();
  const std::byte* end = p + payload.size();
  if (payload.size() < sizeof(WireStatsHeader)) return false;
  std::memcpy(&out.header, p, sizeof(out.header));
  p += sizeof(out.header);
  if (out.header.version != kStatsVersion) return false;
  out.sessions.resize(out.header.nsessions);
  for (WireSessionStats& s : out.sessions) {
    if (p + sizeof(WireSessionStats) > end) return false;
    std::memcpy(&s, p, sizeof(s));
    p += sizeof(s);
  }
  out.kv.reserve(out.header.nkv);
  for (std::uint32_t i = 0; i < out.header.nkv; ++i) {
    WireStatsKv kv;
    if (p + sizeof(kv) > end) return false;
    std::memcpy(&kv, p, sizeof(kv));
    p += sizeof(kv);
    if (p + kv.key_len > end) return false;
    out.kv.emplace_back(
        std::string(reinterpret_cast<const char*>(p), kv.key_len), kv.value);
    p += kv.key_len;
  }
  return true;
}
}  // namespace

Result<StatsSnapshot> Session::query_stats() {
  auto id = submit_simple(Proc::kStatsQuery, {}, Fh{}, 0, 0, 0, 0);
  if (!id.ok()) return id.error();
  const PStatus st = wait_slot(id.value());
  StatsSnapshot snap;
  bool parsed = false;
  if (st == PStatus::kOk) {
    parsed = parse_stats_payload(slots_[id.value()].payload, snap);
  }
  free_slot(id.value());
  if (st != PStatus::kOk) return st;
  if (!parsed) return PStatus::kProtoError;
  return snap;
}

// ---------------------------------------------------------------------------
// Client: striped multi-filer mounts
// ---------------------------------------------------------------------------

namespace {
/// Pieces per server per round of a striped batch. Each piece becomes at
/// least one DirectSeg; the cap keeps every sub-request comfortably inside
/// one message buffer's segment table (kMsgBufSize admits ~500 segs) with
/// headroom for max_rdma_seg splitting of stripe-sized pieces.
constexpr std::size_t kMaxPiecesPerRound = 256;
}  // namespace

Client::Client(std::uint64_t stripe_size) : stripe_size_(stripe_size) {}

Client::~Client() {
  // End-of-job flush: after_job opens buffer until unmount. Errors have
  // nowhere to surface from a destructor; the fence counters record them.
  for (auto& of : open_files_) {
    if (of.cache == nullptr) continue;
    flush_dirty(of);
    if (of.deleg != 0) meta_->deleg_return(of.meta);
  }
}

Result<std::unique_ptr<Client>> Client::connect(via::Nic& nic,
                                                const MountSpec& spec) {
  auto c = std::unique_ptr<Client>(new Client(
      spec.stripe_size == 0 ? kDefaultStripeSize : spec.stripe_size));
  {
    // The metadata session keeps the MountSpec's failover endpoint chain.
    MountSpec meta = spec;
    meta.data_endpoints.clear();
    auto s = Session::connect(nic, meta);
    if (!s.ok()) return s.error();
    c->meta_ = std::move(s.value());
  }
  // One data session per data server: its own VI, credit window and
  // registration cache, so per-server sub-transfers overlap. An empty data
  // list degenerates to the metadata filer carrying all data — exactly a
  // plain Session mount, so the data session inherits the meta mount's full
  // failover chain (a quorum leader change must not strand it on the old
  // leader); explicit data servers stay single-endpoint.
  std::vector<std::vector<Endpoint>> data;
  if (spec.data_endpoints.empty()) {
    data.push_back(spec.endpoints.empty()
                       ? std::vector<Endpoint>{Endpoint{
                             c->meta_->active_service(), c->meta_->policy()}}
                       : spec.endpoints);
  } else {
    for (const Endpoint& ep : spec.data_endpoints) data.push_back({ep});
  }
  for (const std::vector<Endpoint>& chain : data) {
    MountSpec dm;
    dm.endpoints = chain;
    dm.client = spec.client;
    // Data sessions adopt their (unique) session id as client identity: a
    // caller-pinned client_id shared across N seq spaces would alias entries
    // in the server's durable duplicate filter.
    dm.client.client_id = 0;
    auto s = Session::connect(nic, dm);
    if (!s.ok()) return s.error();
    c->data_services_.push_back(s.value()->active_service());
    c->data_.push_back(std::move(s.value()));
  }
  // Consecutive mounts get consecutive skews, so N clients of an N-wide
  // layout start their fan-out on N different servers.
  static std::atomic<std::size_t> next_skew{0};
  c->skew_ = next_skew.fetch_add(1, std::memory_order_relaxed) %
             c->data_.size();
  c->fabric_ = &nic.fabric();
  c->gauges_.emplace_back(c->fabric_->metrics(), "dafs.cache.bytes",
                          [p = c.get()] { return p->cache_bytes(); });
  return c;
}

Client::OpenFile* Client::lookup(Fh fh) {
  for (auto& of : open_files_) {
    if (of.meta.ino == fh.ino) return &of;
  }
  return nullptr;
}

Client::OpenFile* Client::lookup_path(std::string_view path) {
  for (auto& of : open_files_) {
    if (of.path == path) return &of;
  }
  return nullptr;
}

std::uint64_t Client::sessions_epoch() const {
  // Sum of monotonic counters is monotonic; any recovery on either session
  // the delegation spans changes it.
  return meta_->recovery_epoch() +
         (data_.empty() ? 0 : data_[0]->recovery_epoch());
}

std::uint64_t Client::cache_bytes() const {
  std::uint64_t total = 0;
  for (const auto& of : open_files_) {
    if (of.cache != nullptr) total += of.cache->bytes();
  }
  return total;
}

bool Client::has_delegation(Fh fh) const {
  for (const auto& of : open_files_) {
    if (of.meta.ino == fh.ino) return of.deleg != 0;
  }
  return false;
}

void Client::renew_local(OpenFile& of) {
  Actor* actor = Actor::current();
  const std::uint64_t now = actor != nullptr ? actor->now() : 0;
  // Conservative local horizon: a quarter-term safety margin under the
  // server-side expiry absorbs clock skew accumulated since the renewing
  // response was timestamped (virtual clocks sync on message delivery, then
  // drift apart as each actor charges local costs).
  of.lease_expires = now + of.term_ns - of.term_ns / 4;
}

void Client::drop_deleg(OpenFile& of) {
  if (of.deleg != 0 && of.cache != nullptr && of.cache->has_dirty()) {
    // Final flush attempt under the (possibly lapsed) delegation: the
    // server's id check decides — a fence lands in pending_error and the
    // buffered bytes are gone, exactly the relaxed-consistency contract.
    if (const PStatus st = flush_dirty(of); st != PStatus::kOk) {
      of.pending_error = st;
    }
  }
  of.deleg = 0;
  of.attrs_valid = false;
  if (of.cache != nullptr) of.cache->clear();
  meta_->clear_deleg(of.meta.ino);
  meta_->clear_recall(of.meta.ino);
  if (!data_.empty()) {
    data_[0]->clear_deleg(of.meta.ino);
    data_[0]->clear_recall(of.meta.ino);
  }
}

PStatus Client::flush_dirty(OpenFile& of) {
  if (of.cache == nullptr || !of.cache->has_dirty()) return PStatus::kOk;
  PStatus worst = PStatus::kOk;
  std::uint64_t flushed = 0;
  for (FileCache::Extent& x : of.cache->take_dirty()) {
    auto r = data_[0]->pwrite(of.data_fh[0], x.off,
                              std::span<const std::byte>(x.data));
    if (!r.ok()) {
      worst = r.error();
      continue;
    }
    flushed += r.value();
  }
  if (fabric_ != nullptr && flushed > 0) {
    fabric_->stats().add("dafs.cache.writeback_bytes", flushed);
    fabric_->stats().add("dafs.cache.writebacks");
  }
  if (worst != PStatus::kOk) {
    of.pending_error = worst;
    // take_dirty re-marked the extents clean optimistically; a failed flush
    // means some of them never reached the server — nothing cached is
    // authoritative anymore.
    of.cache->clear();
  }
  return worst;
}

void Client::service_recall(OpenFile& of) {
  if (fabric_ != nullptr) fabric_->stats().add("dafs.cache.recalls_serviced");
  flush_dirty(of);  // failure lands in pending_error
  meta_->deleg_return(of.meta);
  drop_deleg(of);
}

void Client::check_recall(OpenFile& of) {
  if (of.deleg == 0) return;
  if (meta_->recall_pending(of.meta.ino) ||
      (!data_.empty() && data_[0]->recall_pending(of.meta.ino))) {
    service_recall(of);
  }
}

bool Client::cache_live(OpenFile& of) {
  if (of.cache == nullptr || of.deleg == 0) return false;
  if (sessions_epoch() != of.grant_epoch) {
    // A transport recovery may have rebound to an incarnation that never
    // issued this delegation. Server-side id fencing keeps writes safe
    // either way; dropping here keeps *reads* safe too — a conflicting
    // writer could already have gotten in through the new incarnation.
    drop_deleg(of);
    return false;
  }
  Actor* actor = Actor::current();
  const std::uint64_t now = actor != nullptr ? actor->now() : 0;
  if (now >= of.lease_expires) {
    // The lease horizon passed without a renewing server op (cache hits are
    // local). One renewal poll decides: renewed, or expired server-side.
    auto term = meta_->deleg_renew(of.meta);
    if (!term.ok()) {
      if (fabric_ != nullptr) {
        fabric_->stats().add("dafs.cache.client_expiries");
      }
      drop_deleg(of);
      return false;
    }
    of.term_ns = term.value();
    renew_local(of);
  }
  if (meta_->recall_pending(of.meta.ino) ||
      (!data_.empty() && data_[0]->recall_pending(of.meta.ino))) {
    service_recall(of);
    return false;
  }
  return true;
}

Layout Client::layout_of(Fh) const {
  // Every file opened through this mount shares the mount-wide layout; a
  // per-inode map would go here if layouts ever diverge.
  Layout l;
  l.stripe_size = stripe_size_;
  l.data_services = data_services_;
  l.meta_service = meta_->active_service();
  return l;
}

void Client::set_deadline(std::uint64_t ns) {
  meta_->set_deadline(ns);
  for (auto& ds : data_) ds->set_deadline(ns);
}

Result<Fh> Client::open(std::string_view path, std::uint16_t flags) {
  OpenOptions opts;
  opts.flags = flags;
  return open(path, opts);
}

Result<Fh> Client::open(std::string_view path, const OpenOptions& opts) {
  // A delegation covers one ino on one filer, so caching is only offered on
  // single-data-server mounts (where meta and data target the same file).
  const bool want_cache = opts.cache_bytes > 0 && data_.size() == 1;
  // A warm re-open (after_job keeps the delegation across close) stamps the
  // held id so the server renews/re-advertises instead of recalling itself.
  OpenFile* prior = lookup_path(path);
  const std::uint64_t prior_deleg = prior != nullptr ? prior->deleg : 0;
  std::uint16_t mflags = opts.flags;
  if (want_cache) {
    // Always ask for the write flavor: OpenOptions carries no access mode,
    // and a read delegation would turn the first buffered write into a
    // self-conflict.
    mflags |= kOpenWantDeleg | kOpenWantWriteDeleg;
  }
  Session::DelegGrant grant;
  auto fh = meta_->open(path, mflags, want_cache ? &grant : nullptr,
                        prior_deleg);
  if (!fh.ok()) return fh;
  OpenFile of;
  of.meta = fh.value();
  of.path = std::string(path);
  of.opts = opts;
  // Subfile open on every data server: always create (a reader may touch a
  // stripe whose server never saw a write — the sparse subfile reads as
  // zeros), never exclusive (data server 0 shares the metadata filer's file),
  // truncate only when the caller truncates. Each rides the meta session's
  // grant so the server recognizes it as the holder's own plumbing.
  const std::uint16_t dflags =
      kOpenCreate | kOpenDataServer |
      static_cast<std::uint16_t>(opts.flags & kOpenTrunc);
  for (auto& ds : data_) {
    auto dfh = ds->open(path, dflags, nullptr, grant.id);
    if (!dfh.ok()) return dfh.error();
    of.data_fh.push_back(dfh.value());
  }
  if (want_cache && grant.id != 0) {
    of.deleg = grant.id;
    of.deleg_write = grant.write;
    of.term_ns = grant.term_ns;
    of.grant_epoch = sessions_epoch();
    of.cache = std::make_unique<FileCache>(opts.cache_bytes);
    renew_local(of);
  }
  for (auto& e : open_files_) {
    if (e.meta.ino == of.meta.ino) {
      if (e.cache != nullptr && e.deleg != 0 && e.deleg == of.deleg &&
          (opts.flags & kOpenTrunc) == 0) {
        // Same delegation across the re-open: the cached bytes are still
        // exactly what the server would serve — keep them warm.
        of.cache = std::move(e.cache);
        of.attrs = e.attrs;
        of.attrs_at = e.attrs_at;
        of.attrs_valid = e.attrs_valid;
        of.pending_error = e.pending_error;
      }
      e = std::move(of);
      return fh;
    }
  }
  open_files_.push_back(std::move(of));
  return fh;
}

PStatus Client::close(Fh fh) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return PStatus::kOk;
  PStatus st = of->pending_error;
  of->pending_error = PStatus::kOk;
  if (of->cache != nullptr &&
      of->opts.consistency == Consistency::kAfterJob && of->deleg != 0) {
    // after_job: the cache and delegation stay warm across close; dirty
    // data flushes at sync, recall, budget pressure or Client teardown.
    return st;
  }
  if (of->cache != nullptr) {
    if (const PStatus fst = flush_dirty(*of); fst != PStatus::kOk) st = fst;
    if (of->deleg != 0) meta_->deleg_return(of->meta);
    of->deleg = 0;
    meta_->clear_deleg(of->meta.ino);
    meta_->clear_recall(of->meta.ino);
    if (!data_.empty()) {
      data_[0]->clear_deleg(of->meta.ino);
      data_[0]->clear_recall(of->meta.ino);
    }
  }
  // Otherwise client-side bookkeeping only: sessions have no close RPC
  // (handles are leases, reclaimed or expired server-side).
  std::erase_if(open_files_,
                [&](const OpenFile& e) { return e.meta.ino == fh.ino; });
  return st;
}

Result<std::uint64_t> Client::logical_size(OpenFile& of) {
  // The striped logical size: subfiles store stripes at logical offsets, so
  // it is the max over the subfile sizes.
  std::uint64_t size = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    auto a = data_[i]->getattr(of.data_fh[i]);
    if (!a.ok()) return a.error();
    size = std::max(size, a.value().size);
  }
  return size;
}

Result<fstore::Attrs> Client::getattr(Fh fh) {
  OpenFile* cof = lookup(fh);
  if (cof != nullptr && cof->cache != nullptr && cache_live(*cof)) {
    Actor* actor = Actor::current();
    const std::uint64_t now = actor != nullptr ? actor->now() : 0;
    if (cof->attrs_valid && cof->opts.attr_ttl_ns > 0 &&
        now < cof->attrs_at + cof->opts.attr_ttl_ns) {
      if (fabric_ != nullptr) fabric_->stats().add("dafs.cache.attr_hits");
      return cof->attrs;
    }
  }
  auto a = meta_->getattr(fh);
  if (!a.ok()) return a;
  fstore::Attrs attrs = a.value();
  if (OpenFile* of = lookup(fh); of != nullptr && data_.size() > 1) {
    auto sz = logical_size(*of);
    if (!sz.ok()) return sz.error();
    attrs.size = std::max(attrs.size, sz.value());
  }
  if (cof != nullptr && cof->cache != nullptr && cof->deleg != 0) {
    // Under write-back the server has not seen the dirty tail yet: the
    // logical size covers whatever is buffered past the server's EOF.
    attrs.size = std::max(attrs.size, cof->cache->dirty_end());
    cof->attrs = attrs;
    Actor* actor = Actor::current();
    cof->attrs_at = actor != nullptr ? actor->now() : 0;
    cof->attrs_valid = true;
    renew_local(*cof);
    check_recall(*cof);
  }
  return attrs;
}

PStatus Client::set_size(Fh fh, std::uint64_t size) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return meta_->set_size(fh, size);
  // Every subfile gets the logical size: a shrink discards stripes past the
  // end everywhere, an extend makes the new range read as hole-zeros, and
  // the max-over-subfiles logical size comes out exactly `size`.
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (const PStatus st = data_[i]->set_size(of->data_fh[i], size);
        st != PStatus::kOk) {
      return st;
    }
  }
  return PStatus::kOk;
}

PStatus Client::remove(std::string_view path) {
  const PStatus st = meta_->remove(path);
  // Subfiles: kNoEnt is expected wherever the file never existed (or on data
  // server 0, which shares the metadata filer's namespace).
  for (auto& ds : data_) {
    const PStatus dst = ds->remove(path);
    if (dst != PStatus::kOk && dst != PStatus::kNoEnt) return dst;
  }
  return st;
}

PStatus Client::mkdir(std::string_view path) {
  const PStatus st = meta_->mkdir(path);
  if (st != PStatus::kOk) return st;
  // Mirror directories onto the data servers so subfile creates resolve;
  // kExists covers data server 0 sharing the metadata namespace.
  for (auto& ds : data_) {
    const PStatus dst = ds->mkdir(path);
    if (dst != PStatus::kOk && dst != PStatus::kExists) return dst;
  }
  return PStatus::kOk;
}

PStatus Client::rmdir(std::string_view path) {
  const PStatus st = meta_->rmdir(path);
  for (auto& ds : data_) {
    const PStatus dst = ds->rmdir(path);
    if (dst != PStatus::kOk && dst != PStatus::kNoEnt &&
        dst != PStatus::kNotEmpty) {
      return dst;
    }
  }
  return st;
}

PStatus Client::rename(std::string_view from, std::string_view to) {
  const PStatus st = meta_->rename(from, to);
  if (st != PStatus::kOk) return st;
  for (auto& ds : data_) {
    const PStatus dst = ds->rename(from, to);
    if (dst != PStatus::kOk && dst != PStatus::kNoEnt) return dst;
  }
  return PStatus::kOk;
}

Result<std::vector<fstore::DirEntry>> Client::readdir(std::string_view path) {
  return meta_->readdir(path);
}

PStatus Client::sync(Fh fh) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return meta_->sync(fh);
  // Dirty write-back extents reach the server before the durability fan-out,
  // so "synced" covers them too. A fence (kDelegExpired) surfaces here: the
  // buffered bytes were discarded, not written.
  PStatus worst = flush_dirty(*of);
  if (of->pending_error != PStatus::kOk) {
    if (worst == PStatus::kOk) worst = of->pending_error;
    of->pending_error = PStatus::kOk;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (const PStatus st = data_[i]->sync(of->data_fh[i]);
        st != PStatus::kOk) {
      worst = st;
    }
  }
  return worst;
}

PStatus Client::flush(Fh fh) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return PStatus::kInval;
  PStatus st = flush_dirty(*of);
  if (st == PStatus::kOk) {
    st = of->pending_error;
  }
  // Whatever flush reports is surfaced here, once — close() must not see it
  // again.
  of->pending_error = PStatus::kOk;
  if (st == PStatus::kDelegExpired) {
    // The server fenced the write-back: this delegation is dead on its side
    // and every byte cached under it is suspect. Drop it now (flush_dirty
    // already discarded the rejected extents) instead of limping on until
    // the next lease check.
    drop_deleg(*of);
  }
  return st;
}

// ---- striped data path ----

std::vector<std::vector<IoVec>> Client::split(
    std::span<const IoVec> iovs) const {
  std::vector<std::vector<IoVec>> per(data_.size());
  for (const IoVec& v : iovs) {
    std::uint64_t off = v.file_off;
    std::byte* buf = v.buf;
    std::uint64_t left = v.len;
    while (left > 0) {
      const std::uint64_t in_stripe = stripe_size_ - off % stripe_size_;
      const std::uint64_t n = std::min(left, in_stripe);
      per[server_of(off)].push_back(IoVec{off, buf, n});
      off += n;
      buf += n;
      left -= n;
    }
  }
  // Sorted per server: the short-count merge distributes a server's returned
  // byte count prefix-wise over its pieces, which is exact when per-piece
  // actual reads are monotone (sorted offsets, non-overlapping pieces).
  for (auto& pieces : per) {
    std::stable_sort(pieces.begin(), pieces.end(),
                     [](const IoVec& a, const IoVec& b) {
                       return a.file_off < b.file_off;
                     });
  }
  return per;
}

Result<std::uint64_t> Client::run_batch(Fh fh, std::span<const IoVec> iovs,
                                        bool writing) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return PStatus::kInval;
  if (data_.size() == 1) {
    // Degenerate layout: one subfile holds everything, no split or merge.
    return writing ? data_[0]->write_batch(of->data_fh[0], iovs)
                   : data_[0]->read_batch(of->data_fh[0], iovs);
  }
  auto per = split(iovs);
  std::vector<std::size_t> cursor(per.size(), 0);
  std::uint64_t total = 0;
  PStatus worst = PStatus::kOk;
  std::uint64_t known_size = 0;
  bool have_size = false;
  // Rounds of one in-flight sub-batch per involved server: every server's
  // request is on the wire before the first wait, so the per-stripe RDMA
  // transfers overlap across filers.
  for (;;) {
    struct Sub {
      std::size_t server;
      OpId op;
      std::span<const IoVec> pieces;
      std::uint64_t want;
    };
    std::vector<Sub> subs;
    bool more = false;
    PStatus submit_err = PStatus::kOk;
    for (std::size_t i = 0; i < per.size(); ++i) {
      const std::size_t s = (skew_ + i) % per.size();
      const std::size_t left = per[s].size() - cursor[s];
      if (left == 0) continue;
      const std::size_t take = std::min(left, kMaxPiecesPerRound);
      const std::span<const IoVec> chunk(per[s].data() + cursor[s], take);
      std::uint64_t want = 0;
      for (const IoVec& p : chunk) want += p.len;
      auto id = writing
                    ? data_[s]->submit_write_batch(of->data_fh[s], chunk)
                    : data_[s]->submit_read_batch(of->data_fh[s], chunk);
      if (!id.ok()) {
        submit_err = id.error();
        break;
      }
      subs.push_back(Sub{s, id.value(), chunk, want});
      cursor[s] += take;
      if (cursor[s] < per[s].size()) more = true;
    }
    // Collect everything submitted even after an error: an outstanding op
    // references caller buffers and must not outlive this call.
    for (const Sub& sub : subs) {
      std::uint64_t got = 0;
      const PStatus st = data_[sub.server]->wait(sub.op, &got);
      if (st != PStatus::kOk) {
        if (worst == PStatus::kOk) worst = st;
        continue;
      }
      if (writing) {
        total += got;
        continue;
      }
      if (got >= sub.want) {
        total += sub.want;
        continue;
      }
      // Short read: this subfile ends before the logical file does (later
      // stripes live on other servers). Bytes inside the logical size are
      // holes on this server — zeros by definition — so fill and count them;
      // bytes past the logical size stay short (EOF).
      if (!have_size) {
        auto sz = logical_size(*of);
        if (!sz.ok()) {
          if (worst == PStatus::kOk) worst = sz.error();
          continue;
        }
        known_size = sz.value();
        have_size = true;
      }
      std::uint64_t rem = got;
      for (const IoVec& p : sub.pieces) {
        const std::uint64_t take = std::min<std::uint64_t>(p.len, rem);
        rem -= take;
        const std::uint64_t expected =
            known_size > p.file_off
                ? std::min<std::uint64_t>(p.len, known_size - p.file_off)
                : 0;
        if (expected > take) {
          std::memset(p.buf + take, 0, expected - take);
        }
        total += std::max(expected, take);
      }
    }
    if (submit_err != PStatus::kOk) {
      if (worst == PStatus::kOk) worst = submit_err;
      break;
    }
    if (!more) break;
  }
  if (worst != PStatus::kOk) return worst;
  return total;
}

Result<std::uint64_t> Client::pread(Fh fh, std::uint64_t off,
                                    std::span<std::byte> out) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return PStatus::kInval;
  if (of->cache != nullptr && data_.size() == 1 && cache_live(*of)) {
    if (!out.empty() && of->cache->read(off, out)) {
      // A hit is local but not free: the copy out of the cache is charged
      // at memory-bandwidth cost, so cached and uncached per-op latencies
      // stay comparable in the model.
      if (Actor* actor = Actor::current();
          actor != nullptr && fabric_ != nullptr) {
        actor->charge(CostKind::kCopy, fabric_->cost().copy_time(out.size()));
      }
      if (fabric_ != nullptr) fabric_->stats().add("dafs.cache.hits");
      return out.size();
    }
    if (fabric_ != nullptr) fabric_->stats().add("dafs.cache.misses");
    auto r = data_[0]->pread(of->data_fh[0], off, out);
    if (!r.ok()) return r;
    renew_local(*of);
    check_recall(*of);
    if (of->deleg == 0) return r;  // recall serviced mid-read: stop caching
    // Populate with the server's bytes (put_clean skips dirty ranges), zero
    // the tail the server did not cover, then overlay the dirty extents so
    // read-your-writes holds — buffered writes past the server's EOF extend
    // the readable range.
    of->cache->put_clean(off, out.subspan(0, r.value()));
    std::memset(out.data() + r.value(), 0, out.size() - r.value());
    of->cache->overlay_dirty(off, out);
    const std::uint64_t dirty_tail = of->cache->dirty_end();
    const std::uint64_t n =
        dirty_tail > off
            ? std::max<std::uint64_t>(
                  r.value(), std::min<std::uint64_t>(dirty_tail - off,
                                                     out.size()))
            : r.value();
    return n;
  }
  if (data_.size() == 1) return data_[0]->pread(of->data_fh[0], off, out);
  if (out.empty() ||
      off / stripe_size_ == (off + out.size() - 1) / stripe_size_) {
    // Entirely within one stripe: route through the owning session's pread so
    // small transfers keep the inline/direct crossover.
    const std::size_t s = server_of(off);
    auto r = data_[s]->pread(of->data_fh[s], off, out);
    if (!r.ok()) return r;
    if (r.value() < out.size()) {
      auto size = logical_size(*of);
      if (!size.ok()) return size.error();
      const std::uint64_t expected =
          size.value() > off
              ? std::min<std::uint64_t>(out.size(), size.value() - off)
              : 0;
      if (expected > r.value()) {
        std::memset(out.data() + r.value(), 0, expected - r.value());
      }
      return std::max(expected, r.value());
    }
    return r;
  }
  IoVec v{off, out.data(), out.size()};
  return run_batch(fh, std::span(&v, 1), false);
}

Result<std::uint64_t> Client::pwrite(Fh fh, std::uint64_t off,
                                     std::span<const std::byte> in) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return PStatus::kInval;
  if (of->cache != nullptr && data_.size() == 1 && cache_live(*of) &&
      of->deleg_write) {
    if (of->opts.consistency != Consistency::kAfterWrite) {
      // Write-back: buffer dirty, no server round trip — but the marshalling
      // copy into the cache is real client work and is charged as such.
      // Visibility is owed at close (after_close) or sync/unmount
      // (after_job); recall, lease expiry and budget pressure flush earlier.
      if (Actor* actor = Actor::current();
          actor != nullptr && fabric_ != nullptr) {
        actor->charge(CostKind::kCopy, fabric_->cost().copy_time(in.size()));
      }
      of->cache->put_dirty(off, in);
      if (of->attrs_valid) {
        of->attrs.size = std::max(of->attrs.size, off + in.size());
      }
      if (of->cache->over_budget()) {
        if (const PStatus st = flush_dirty(*of); st != PStatus::kOk) {
          return st;
        }
      }
      return in.size();
    }
    // after_write: write-through, but keep the cache coherent for reads.
    auto r = data_[0]->pwrite(of->data_fh[0], off, in);
    if (!r.ok()) return r;
    renew_local(*of);
    check_recall(*of);
    if (of->deleg != 0) {
      of->cache->put_clean(off, in.subspan(0, r.value()));
      if (of->attrs_valid) {
        of->attrs.size = std::max(of->attrs.size, off + r.value());
      }
    }
    return r;
  }
  if (data_.size() == 1) return data_[0]->pwrite(of->data_fh[0], off, in);
  if (in.empty() ||
      off / stripe_size_ == (off + in.size() - 1) / stripe_size_) {
    const std::size_t s = server_of(off);
    return data_[s]->pwrite(of->data_fh[s], off, in);
  }
  IoVec v{off, const_cast<std::byte*>(in.data()), in.size()};
  return run_batch(fh, std::span(&v, 1), true);
}

Result<std::uint64_t> Client::read_batch(Fh fh, std::span<const IoVec> iovs) {
  return run_batch(fh, iovs, false);
}

Result<std::uint64_t> Client::write_batch(Fh fh, std::span<const IoVec> iovs) {
  return run_batch(fh, iovs, true);
}

// ---- asynchronous striped I/O ----

Result<OpId> Client::submit_batch(Fh fh, std::span<const IoVec> iovs,
                                  bool writing) {
  OpenFile* of = lookup(fh);
  if (of == nullptr) return PStatus::kInval;
  Pending p;
  p.fh = fh;
  p.writing = writing;
  auto per = split(iovs);
  PStatus err = PStatus::kOk;
  for (std::size_t i = 0; i < per.size(); ++i) {
    const std::size_t s = (skew_ + i) % per.size();
    if (per[s].empty()) continue;
    auto id = writing
                  ? data_[s]->submit_write_batch(of->data_fh[s], per[s])
                  : data_[s]->submit_read_batch(of->data_fh[s], per[s]);
    if (!id.ok()) {
      err = id.error();
      break;
    }
    SubOp sub;
    sub.server = s;
    sub.op = id.value();
    sub.iovs = std::move(per[s]);
    p.subs.push_back(std::move(sub));
  }
  if (err != PStatus::kOk) {
    // Drain what went out: those ops reference the caller's buffers.
    for (SubOp& sub : p.subs) data_[sub.server]->wait(sub.op, nullptr);
    return err;
  }
  OpId id;
  if (!free_ops_.empty()) {
    id = free_ops_.back();
    free_ops_.pop_back();
    pending_[id] = std::move(p);
  } else {
    id = static_cast<OpId>(pending_.size());
    pending_.push_back(std::move(p));
  }
  return id;
}

Result<OpId> Client::submit_pread(Fh fh, std::uint64_t off,
                                  std::span<std::byte> out) {
  IoVec v{off, out.data(), out.size()};
  return submit_batch(fh, std::span(&v, 1), false);
}

Result<OpId> Client::submit_pwrite(Fh fh, std::uint64_t off,
                                   std::span<const std::byte> in) {
  IoVec v{off, const_cast<std::byte*>(in.data()), in.size()};
  return submit_batch(fh, std::span(&v, 1), true);
}

PStatus Client::finish(Pending& p, std::uint64_t* bytes) {
  OpenFile* of = lookup(p.fh);
  PStatus worst = PStatus::kOk;
  std::uint64_t total = 0;
  std::uint64_t known_size = 0;
  bool have_size = false;
  for (SubOp& sub : p.subs) {
    std::uint64_t got = 0;
    const PStatus st = data_[sub.server]->wait(sub.op, &got);
    if (st != PStatus::kOk) {
      if (worst == PStatus::kOk) worst = st;
      continue;
    }
    if (p.writing) {
      total += got;
      continue;
    }
    std::uint64_t want = 0;
    for (const IoVec& v : sub.iovs) want += v.len;
    if (got >= want) {
      total += want;
      continue;
    }
    if (!have_size) {
      if (of == nullptr) {
        if (worst == PStatus::kOk) worst = PStatus::kInval;
        continue;
      }
      auto sz = logical_size(*of);
      if (!sz.ok()) {
        if (worst == PStatus::kOk) worst = sz.error();
        continue;
      }
      known_size = sz.value();
      have_size = true;
    }
    std::uint64_t rem = got;
    for (const IoVec& v : sub.iovs) {
      const std::uint64_t take = std::min<std::uint64_t>(v.len, rem);
      rem -= take;
      const std::uint64_t expected =
          known_size > v.file_off
              ? std::min<std::uint64_t>(v.len, known_size - v.file_off)
              : 0;
      if (expected > take) std::memset(v.buf + take, 0, expected - take);
      total += std::max(expected, take);
    }
  }
  if (bytes != nullptr) *bytes = total;
  return worst;
}

PStatus Client::wait(OpId op, std::uint64_t* bytes) {
  if (op >= pending_.size()) return PStatus::kInval;
  Pending p = std::move(pending_[op]);
  pending_[op] = Pending{};
  free_ops_.push_back(op);
  return finish(p, bytes);
}

PStatus Client::wait_all(std::span<const OpId> ops) {
  PStatus worst = PStatus::kOk;
  for (const OpId op : ops) {
    if (const PStatus st = wait(op); st != PStatus::kOk) worst = st;
  }
  return worst;
}

// ---- locks & counters (metadata session) ----

PStatus Client::lock(Fh fh, std::uint64_t start, std::uint64_t len,
                     bool exclusive) {
  return meta_->lock(fh, start, len, exclusive);
}

PStatus Client::try_lock(Fh fh, std::uint64_t start, std::uint64_t len,
                         bool exclusive) {
  return meta_->try_lock(fh, start, len, exclusive);
}

PStatus Client::unlock(Fh fh, std::uint64_t start, std::uint64_t len) {
  return meta_->unlock(fh, start, len);
}

Result<std::uint64_t> Client::fetch_add(std::string_view key,
                                        std::uint64_t delta) {
  return meta_->fetch_add(key, delta);
}

PStatus Client::set_counter(std::string_view key, std::uint64_t value) {
  return meta_->set_counter(key, value);
}

}  // namespace dafs
