#include "dafs/server.hpp"

#include <pthread.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

namespace dafs {

using sim::Actor;
using sim::ActorScope;
using sim::CostKind;
using via::DataSegment;
using via::Descriptor;
using via::DescStatus;
using via::MemAttrs;

namespace {
using namespace std::chrono_literals;
constexpr auto kPollPeriod = 50ms;
constexpr auto kSendWait = std::chrono::milliseconds(5'000);
}  // namespace

Server::Server(sim::Fabric& fabric, sim::NodeId node, ServerConfig cfg)
    : fabric_(fabric),
      node_(node),
      cfg_(std::move(cfg)),
      nic_(fabric, node, "dafs-server-nic"),
      ptag_(nic_.create_ptag()) {
  // One switchboard drives fault injection at every layer: the store's read
  // paths consult the same plan the fabric uses for transfers.
  cfg_.store.faults = &fabric_.faults();
  // The filer journals so sync is a durability barrier and crash() replays.
  cfg_.store.journal_enabled = cfg_.journal;
  admission_limit_.store(cfg_.admission_max_queue, std::memory_order_relaxed);
  // The store registers every buffer-cache slab with the NIC as it is
  // allocated; direct I/O then DMAs straight out of / into the cache.
  // Journal appends run under the worker's open request span; the tracer
  // pointer lets the store parent them correctly (same pattern as faults).
  cfg_.store.tracer = &fabric_.trace();
  store_ = std::make_unique<fstore::FileStore>(
      cfg_.store, [this](std::span<std::byte> slab) {
        const via::MemHandle h =
            nic_.register_memory(slab.data(), slab.size(), ptag_, MemAttrs{});
        std::lock_guard lock(slabs_mu_);
        slabs_.emplace_back(slab.data(),
                            std::make_pair(slab.size(), h));
      });
  // Point-in-time server state for the unified metrics export.
  sim::MetricsRegistry& m = fabric_.metrics();
  m.register_gauge("dafs.admission_queue_depth",
                   [this] { return std::uint64_t{recv_cq_.pending()}; });
  m.register_gauge("dafs.replay_cache_bytes",
                   [this] { return std::uint64_t{replay_cache_bytes()}; });
  m.register_gauge("dafs.sessions_live",
                   [this] { return std::uint64_t{session_count()}; });
  m.register_gauge("fstore.journal_pending_bytes",
                   [this] { return store_->journal_pending_bytes(); });
}

Server::~Server() {
  stop();
  // The gauge callbacks capture `this`; a bench sampling metrics after the
  // server is gone must not call into a dead object.
  sim::MetricsRegistry& m = fabric_.metrics();
  m.unregister_gauge("dafs.admission_queue_depth");
  m.unregister_gauge("dafs.replay_cache_bytes");
  m.unregister_gauge("dafs.sessions_live");
  m.unregister_gauge("fstore.journal_pending_bytes");
}

void Server::start() {
  if (running_.exchange(true)) return;
  accept_actor_ =
      std::make_unique<Actor>("dafs-accept", &fabric_.node(node_));
  for (int i = 0; i < cfg_.workers; ++i) {
    worker_actors_.push_back(std::make_unique<Actor>(
        "dafs-worker" + std::to_string(i), &fabric_.node(node_)));
    auto buf = std::make_unique<MsgBuf>();
    buf->mem.resize(cfg_.msg_buf_size);
    {
      ActorScope scope(*worker_actors_.back());
      buf->handle =
          nic_.register_memory(buf->mem.data(), buf->mem.size(), ptag_, {});
    }
    worker_send_bufs_.push_back(std::move(buf));
  }
  accept_thread_ = std::thread([this] {
    pthread_setname_np(pthread_self(), "dafs-accept");
    accept_loop();
  });
  for (int i = 0; i < cfg_.workers; ++i) {
    worker_threads_.emplace_back([this, i] {
      pthread_setname_np(pthread_self(),
                         ("dafs-w" + std::to_string(i)).c_str());
      worker_loop(i);
    });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  std::lock_guard lock(sessions_mu_);
  for (auto& s : sessions_) {
    if (s->vi) s->vi->disconnect();
  }
  sessions_.clear();
  by_vi_.clear();
}

sim::BusyBreakdown Server::worker_busy() const {
  sim::BusyBreakdown total;
  for (const auto& a : worker_actors_) {
    const auto& b = a->busy();
    for (std::size_t i = 0; i < b.by_kind.size(); ++i) {
      total.by_kind[i] += b.by_kind[i];
    }
  }
  return total;
}

std::size_t Server::session_count() const {
  std::lock_guard lock(sessions_mu_);
  return sessions_.size();
}

via::MemHandle Server::slab_handle(const std::byte* p) const {
  std::lock_guard lock(slabs_mu_);
  for (const auto& [base, info] : slabs_) {
    if (p >= base && p < base + info.first) return info.second;
  }
  return via::kInvalidMemHandle;
}

// ---------------------------------------------------------------------------
// Accept / worker loops
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  ActorScope scope(*accept_actor_);
  while (running_.load()) {
    {
      // The listener lives only while the server is "up". Destroying it on a
      // crash makes new connects fail with kNoMatchingListener — exactly what
      // clients of a dead filer observe — until the restart delay elapses.
      via::Listener listener(nic_, cfg_.service);
      while (running_.load() && !crash_pending_.load()) {
        // Build the session fully armed *before* accepting: receive buffers
        // posted (legal on an idle VI) and the VI already registered with the
        // dispatch map, so the client's first request — which can arrive the
        // instant the handshake completes — always finds its session. The
        // armed session is reused across accept timeouts and only consumed by
        // a real connection (or abandoned on crash/shutdown).
        auto session = std::make_unique<Session>();
        session->id = next_session_++;
        session->vi = std::make_unique<via::Vi>(nic_, via::ViAttrs{}, nullptr,
                                                &recv_cq_);
        for (std::size_t i = 0; i < cfg_.recv_credits; ++i) {
          auto buf = std::make_unique<MsgBuf>();
          buf->mem.resize(cfg_.msg_buf_size);
          buf->handle =
              nic_.register_memory(buf->mem.data(), buf->mem.size(), ptag_, {});
          buf->desc.segs = {DataSegment{
              buf->mem.data(), buf->handle,
              static_cast<std::uint32_t>(buf->mem.size())}};
          const via::Status st = session->vi->post_recv(buf->desc);
          assert(st == via::Status::kSuccess && "pre-arm post_recv on idle VI");
          (void)st;
          session->recv_bufs.push_back(std::move(buf));
        }
        via::Vi* vi = session->vi.get();
        {
          std::lock_guard lock(sessions_mu_);
          by_vi_.emplace(vi, session.get());
          sessions_.push_back(std::move(session));
        }
        bool accepted = false;
        while (running_.load() && !crash_pending_.load()) {
          if (listener.accept(*vi, kPollPeriod) == via::Status::kSuccess) {
            accepted = true;
            break;
          }
        }
        if (!accepted) break;  // crash/shutdown; armed session is abandoned
        fabric_.stats().add("dafs.sessions");
      }
    }
    if (!running_.load()) break;
    // Reap sessions that slipped past the crash teardown: a session armed
    // concurrently with do_crash re-enters the dispatch map after it was
    // cleared, and a connection accepted in that window would otherwise be
    // served straight through the outage. This runs on the arming thread
    // after the listener died, so the sweep is complete by construction.
    {
      std::lock_guard lock(sessions_mu_);
      for (auto& sess : sessions_) {
        if (sess->closing) continue;
        sess->closing = true;
        if (sess->vi && sess->vi->state() != via::Vi::State::kIdle) {
          sess->vi->disconnect();
        }
      }
      by_vi_.clear();
    }
    // Down: hold the outage for the scheduled real-time delay, then come
    // back with a fresh listener and a lease-reclaim grace period.
    std::chrono::steady_clock::time_point until;
    {
      std::lock_guard lock(crash_mu_);
      until = restart_at_;
    }
    while (running_.load() && std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    grace_until_.store((std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.grace_period_ms))
                           .time_since_epoch()
                           .count());
    crash_pending_.store(false);
    fabric_.stats().add("dafs.server_restarts");
  }
}

bool Server::in_grace() const {
  const std::int64_t until = grace_until_.load(std::memory_order_relaxed);
  return until != 0 &&
         std::chrono::steady_clock::now().time_since_epoch().count() < until;
}

void Server::inject_crash(std::uint64_t restart_delay_ms) {
  do_crash(restart_delay_ms);
}

void Server::do_crash(std::uint64_t restart_delay_ms) {
  std::lock_guard crash_lock(crash_mu_);
  if (crash_pending_.load()) return;  // already down
  restart_at_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(restart_delay_ms);
  crash_count_.fetch_add(1);
  fabric_.stats().add("dafs.server_crashes");
  // Flight recorder: stamp the crash into the timeline and dump everything —
  // the in-flight spans it orphans are exactly the requests that died.
  if (sim::Tracer& tracer = fabric_.trace(); tracer.enabled()) {
    Actor* actor = Actor::current();
    char attrs[64];
    std::snprintf(attrs, sizeof(attrs), "\"restart_delay_ms\":%llu",
                  static_cast<unsigned long long>(restart_delay_ms));
    tracer.event("server_crash", actor != nullptr ? actor->now() : 0, attrs);
    tracer.flight_dump("crash");
  }
  {
    std::lock_guard lock(sessions_mu_);
    for (auto& sess : sessions_) {
      if (sess->closing) continue;
      sess->closing = true;
      {
        std::lock_guard rlock(sess->replay_mu);
        sess->replay.clear();
        sess->replay_bytes = 0;
      }
      // Connected VIs die with the process. Idle (armed, pre-accept) VIs are
      // left alone: the accept loop may be linking one right now, and the
      // worker-side unknown-session fallback reaps that race.
      if (sess->vi && sess->vi->state() != via::Vi::State::kIdle) {
        sess->vi->disconnect();
      }
    }
    by_vi_.clear();
  }
  locks_.clear();    // volatile: clients re-acquire via lease reclaim
  store_->crash();   // un-synced data vanishes; journal replays durable image
  // Publish last: the accept loop reads restart_at_ under crash_mu_ after
  // observing the flag, so it never sees a stale restart time.
  crash_pending_.store(true);
}

std::size_t Server::replay_cache_bytes() const {
  std::lock_guard lock(sessions_mu_);
  std::size_t total = 0;
  for (const auto& s : sessions_) {
    std::lock_guard rlock(s->replay_mu);
    total += s->replay_bytes;
  }
  return total;
}

void Server::worker_loop(int idx) {
  ActorScope scope(*worker_actors_[idx]);
  while (running_.load()) {
    via::Completion c;
    if (recv_cq_.wait(c, kPollPeriod) != via::Status::kSuccess) continue;
    if (c.desc->status != DescStatus::kSuccess) continue;  // flushed recv
    // Scheduled crash: the fault plan may kill the server on this request.
    // The tripping request dies unanswered, like every other in-flight op.
    std::uint64_t restart_ms = 0;
    if (fabric_.faults().on_server_request(worker_actors_[idx]->now(),
                                           &restart_ms)) {
      do_crash(restart_ms);
      continue;
    }
    Session* session = nullptr;
    {
      std::lock_guard lock(sessions_mu_);
      auto it = by_vi_.find(c.vi);
      if (it != by_vi_.end()) session = it->second;
    }
    if (session == nullptr) {
      // A VI that delivered a request but has no session was connected across
      // a crash teardown (accept raced do_crash). Kill it so the client fails
      // fast and reconnects against the restarted listener instead of
      // waiting out its I/O timeout.
      c.vi->disconnect();
      continue;
    }
    // Recover which MsgBuf this descriptor belongs to.
    MsgBuf* req = nullptr;
    for (auto& b : session->recv_bufs) {
      if (&b->desc == c.desc) {
        req = b.get();
        break;
      }
    }
    assert(req != nullptr);
    handle_request(*session, *req, *worker_send_bufs_[idx]);
    // Return the buffer to the session's receive pool (credit restored). A
    // failed repost means the connection died; the session is torn down (or
    // resumed onto a fresh VI) elsewhere.
    req->desc.segs = {DataSegment{
        req->mem.data(), req->handle,
        static_cast<std::uint32_t>(req->mem.size())}};
    if (session->vi->post_recv(req->desc) != via::Status::kSuccess) {
      fabric_.stats().add("dafs.server_repost_failures");
    }
  }
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

via::DescStatus Server::post_and_reap(Session& s, Descriptor& d) {
  if (s.vi->post_send(d) != via::Status::kSuccess) {
    return DescStatus::kFlushed;
  }
  Descriptor* done = nullptr;
  if (s.vi->send_wait(done, kSendWait) != via::Status::kSuccess) {
    return DescStatus::kFlushed;
  }
  assert(done == &d);
  return done->status;
}

void Server::send_response(Session& s, MsgBuf& out) {
  // Child of the request's service span (inert outside one).
  sim::SpanScope span(fabric_.trace(), "dafs.server", "reply_send");
  MsgView view(out.mem.data(), out.mem.size());
  out.desc = Descriptor{};
  out.desc.op = via::Opcode::kSend;
  out.desc.segs = {DataSegment{out.mem.data(), out.handle,
                               static_cast<std::uint32_t>(view.wire_size())}};
  std::lock_guard lock(s.send_mu);
  // A lost response is not rolled back: the operation has executed, and the
  // client's retransmission is answered from the replay cache.
  if (post_and_reap(s, out.desc) != DescStatus::kSuccess) {
    fabric_.stats().add("dafs.response_send_failures");
  }
}

void Server::handle_request(Session& s, MsgBuf& req_buf, MsgBuf& out) {
  Actor* actor = Actor::current();
  const sim::CostModel& cm = fabric_.cost();
  actor->charge(CostKind::kDispatch, cm.request_dispatch);

  MsgView req(req_buf.mem.data(), req_buf.mem.size());
  MsgView resp(out.mem.data(), out.mem.size());
  resp.header() = MsgHeader{};
  resp.header().proc = req.header().proc;
  resp.header().request_id = req.header().request_id;
  resp.header().session_id = s.id;
  resp.header().seq = req.header().seq;
  resp.header().status = PStatus::kOk;

  // Server-side service span, parented under the client's request span via
  // the ids the request carried across the wire (inert when it carried
  // none). Everything below — admission, journal appends in the store, RDMA
  // in the via layer, the reply send — nests under it via the thread-local
  // context this scope establishes.
  sim::Tracer& tracer = fabric_.trace();
  sim::SpanScope svc(tracer, "dafs.server", proc_name(req.header().proc),
                     req.header().trace_id, req.header().parent_span_id);
  if (svc.active()) {
    svc.attr("seq", std::uint64_t{req.header().seq});
    svc.attr("session", s.id);
    // Queue wait: NIC completion of the request message -> worker pickup.
    // Parented under the *client's* span, as a sibling preceding service.
    if (req_buf.desc.done_at != 0 && actor->now() > req_buf.desc.done_at) {
      sim::Span w;
      w.trace_id = svc.trace_id();
      w.span_id = tracer.new_id();
      w.parent_span_id = req.header().parent_span_id;
      w.t_start = req_buf.desc.done_at;
      w.t_end = actor->now();
      w.layer = "dafs.server";
      w.name = "admission_wait";
      tracer.record(std::move(w));
    }
  }

  if (req.header().proc != Proc::kConnect &&
      req.header().session_id != s.id) {
    resp.header().status = PStatus::kBadSession;
    send_response(s, out);
    return;
  }

  const Proc proc = req.header().proc;
  const std::uint64_t t0 = actor->now();

  // Piggybacked cumulative ack: everything the client has seen answered can
  // leave the replay cache (and the durable duplicate filter).
  if (req.header().ack_seq != 0) apply_ack(s, req.header());

  // Admission control + deadlines. A request popped into an over-full queue,
  // or one whose deadline already passed, is shed with kBusy + a retry-after
  // hint instead of executed. Connection management always passes — a client
  // that cannot even connect or disconnect can never drain the overload.
  if (proc != Proc::kConnect && proc != Proc::kDisconnect) {
    const std::size_t limit = admission_limit_.load(std::memory_order_relaxed);
    const bool overloaded = limit == 0 || recv_cq_.pending() > limit;
    const bool expired =
        req.header().deadline != 0 && t0 > req.header().deadline;
    if (overloaded || expired) {
      resp.header().status = PStatus::kBusy;
      resp.header().aux = overloaded ? cfg_.busy_retry_ns : 0;
      fabric_.stats().add(overloaded ? "dafs.busy_shed"
                                     : "dafs.deadline_expired");
      if (expired && tracer.enabled()) {
        char attrs[96];
        std::snprintf(attrs, sizeof(attrs),
                      "\"seq\":%u,\"deadline\":%llu", req.header().seq,
                      static_cast<unsigned long long>(req.header().deadline));
        tracer.event("deadline_expired", t0, attrs);
        tracer.flight_dump("deadline");
      }
      send_response(s, out);
      return;
    }
  }

  // Exactly-once replay: a retransmitted non-idempotent request whose
  // original execution already succeeded is answered with the cached
  // response, never re-applied.
  const bool replay_protected = req.header().seq != 0 &&
                                proc != Proc::kConnect && !is_idempotent(proc);
  if (replay_protected) {
    std::lock_guard rlock(s.replay_mu);
    for (const CachedResp& c : s.replay) {
      if (c.seq == req.header().seq) {
        std::memcpy(out.mem.data(), c.bytes.data(), c.bytes.size());
        fabric_.stats().add("dafs.replay_hits");
        send_response(s, out);
        return;
      }
    }
  }

  switch (req.header().proc) {
    case Proc::kConnect:
      if (req.header().flags & kConnectResume) {
        do_resume(s, req, resp);
      } else {
        resp.header().aux = s.id;
      }
      break;
    case Proc::kDisconnect:
      locks_.release_owner(s.id);
      s.closing = true;
      break;
    case Proc::kOpen:
      do_open(req, resp);
      break;
    case Proc::kGetattr:
    case Proc::kSetSize:
    case Proc::kRemove:
    case Proc::kMkdir:
    case Proc::kRmdir:
    case Proc::kRename:
    case Proc::kSync:
    case Proc::kFetchAdd:
    case Proc::kSetCounter:
      do_namespace(req, resp);
      break;
    case Proc::kReaddir:
      do_readdir(req, resp);
      break;
    case Proc::kReadInline:
      do_read_inline(req, resp);
      break;
    case Proc::kWriteInline:
      do_write_inline(req, resp);
      break;
    case Proc::kReadDirect:
      do_read_direct(s, req, resp);
      break;
    case Proc::kWriteDirect:
      do_write_direct(s, req, resp);
      break;
    case Proc::kLock:
    case Proc::kUnlock:
      do_lock(s, req, resp);
      break;
    default:
      resp.header().status = PStatus::kProtoError;  // unknown procedure
      break;
  }
  // Cache the response *before* sending: if the send is lost to a transport
  // failure the operation has still executed, and only the cache can answer
  // the retransmission without applying it twice. Failed executions are not
  // cached — re-running them is safe (the op never took effect) and lets a
  // transient error clear.
  if (replay_protected && proc != Proc::kDisconnect &&
      resp.header().status == PStatus::kOk) {
    std::lock_guard rlock(s.replay_mu);
    s.replay.push_back(CachedResp{
        req.header().seq,
        std::vector<std::byte>(out.mem.data(),
                               out.mem.data() + resp.wire_size())});
    s.replay_bytes += s.replay.back().bytes.size();
    // Bounded by entry count and by bytes; the entry just added always
    // survives (a retransmission of *this* request must find it).
    while (s.replay.size() > 1 &&
           (s.replay.size() > cfg_.replay_entries ||
            s.replay_bytes > cfg_.replay_max_bytes)) {
      if (s.replay.size() <= cfg_.replay_entries) {
        fabric_.stats().add("dafs.replay_forced_evictions");
      }
      s.replay_bytes -= s.replay.front().bytes.size();
      s.replay.pop_front();
    }
  }
  fabric_.stats().add("dafs.requests");
  fabric_.histograms().record("dafs.server_service_ns", actor->now() - t0);
  send_response(s, out);
}

void Server::apply_ack(Session& s, const MsgHeader& req) {
  std::uint64_t evicted = 0;
  {
    std::lock_guard rlock(s.replay_mu);
    for (auto it = s.replay.begin(); it != s.replay.end();) {
      if (it->seq <= req.ack_seq) {
        s.replay_bytes -= it->bytes.size();
        it = s.replay.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  if (evicted > 0) fabric_.stats().add("dafs.replay_acked_evictions", evicted);
  if (req.client_id != 0) store_->dup_forget(req.client_id, req.ack_seq);
}

void Server::do_resume(Session& s, MsgView& req, MsgView& resp) {
  const std::uint64_t old_id = req.header().aux;
  Session* old = nullptr;
  {
    std::lock_guard lock(sessions_mu_);
    for (auto& sess : sessions_) {
      // A closing session is unresumable: either the client disconnected
      // cleanly or the server crashed since — its locks, replay cache and
      // un-synced writes are gone, and pretending otherwise would hide lost
      // state. kBadSession tells the client to reclaim from its leases.
      if (sess->id == old_id && sess.get() != &s && !sess->closing) {
        old = sess.get();
        break;
      }
    }
    if (old == nullptr) {
      resp.header().status = PStatus::kBadSession;
      return;
    }
    // Adopt the old identity wholesale: retransmitted requests carry the old
    // session id, byte-range locks are owned by it, and the replay cache
    // must follow the client to the new connection.
    {
      std::scoped_lock rlock(s.replay_mu, old->replay_mu);
      s.replay = std::move(old->replay);
      s.replay_bytes = old->replay_bytes;
      old->replay_bytes = 0;
    }
    s.id = old_id;
    old->closing = true;
  }
  // The old VI already died with the connection; this just flushes any
  // descriptors still posted on it. The record itself stays in sessions_
  // (a worker may still hold a pointer); it is reaped in stop().
  old->vi->disconnect();
  resp.header().session_id = s.id;
  resp.header().aux = s.id;
  fabric_.stats().add("dafs.session_resumes");
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

namespace {

/// Split "/a/b/c" into the directory path "/a/b" and the leaf "c".
std::pair<std::string_view, std::string_view> split_path(
    std::string_view path) {
  while (!path.empty() && path.back() == '/') path.remove_suffix(1);
  const auto pos = path.rfind('/');
  if (pos == std::string_view::npos) return {"", path};
  return {path.substr(0, pos), path.substr(pos + 1)};
}

void put_attrs(MsgView& resp, const fstore::Attrs& attrs) {
  resp.header().data_len = sizeof(fstore::Attrs);
  std::memcpy(resp.data_payload(), &attrs, sizeof(attrs));
}

}  // namespace

void Server::do_open(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  const auto [dir_path, leaf] = split_path(req.name());
  fstore::Ino ino = fstore::kInvalidIno;
  if (leaf.empty()) {
    ino = fstore::kRootIno;  // opening the root directory
  } else {
    auto dir = store_->resolve(dir_path);
    if (!dir.ok()) {
      resp.header().status = to_pstatus(dir.error());
      return;
    }
    if (req.header().flags & kOpenCreate) {
      auto r = store_->create(dir.value(), leaf,
                              (req.header().flags & kOpenExcl) != 0);
      if (!r.ok()) {
        resp.header().status = to_pstatus(r.error());
        return;
      }
      ino = r.value();
    } else {
      auto r = store_->lookup(dir.value(), leaf);
      if (!r.ok()) {
        resp.header().status = to_pstatus(r.error());
        return;
      }
      ino = r.value();
    }
  }
  if (req.header().flags & kOpenTrunc) {
    if (const fstore::Errc e = store_->set_size(ino, 0);
        e != fstore::Errc::kOk) {
      resp.header().status = to_pstatus(e);
      return;
    }
  }
  auto attrs = store_->getattr(ino);
  if (!attrs.ok()) {
    resp.header().status = to_pstatus(attrs.error());
    return;
  }
  resp.header().ino = ino;
  put_attrs(resp, attrs.value());
}

void Server::do_namespace(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  switch (req.header().proc) {
    case Proc::kGetattr: {
      auto attrs = store_->getattr(req.header().ino);
      if (!attrs.ok()) {
        resp.header().status = to_pstatus(attrs.error());
        return;
      }
      resp.header().ino = req.header().ino;
      put_attrs(resp, attrs.value());
      return;
    }
    case Proc::kSetSize:
      resp.header().status =
          to_pstatus(store_->set_size(req.header().ino, req.header().aux));
      return;
    case Proc::kRemove: {
      const auto [dir_path, leaf] = split_path(req.name());
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        resp.header().status = to_pstatus(dir.error());
        return;
      }
      resp.header().status = to_pstatus(store_->remove(dir.value(), leaf));
      return;
    }
    case Proc::kMkdir: {
      const auto [dir_path, leaf] = split_path(req.name());
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        resp.header().status = to_pstatus(dir.error());
        return;
      }
      auto r = store_->mkdir(dir.value(), leaf);
      if (!r.ok()) {
        resp.header().status = to_pstatus(r.error());
        return;
      }
      resp.header().ino = r.value();
      return;
    }
    case Proc::kRmdir: {
      const auto [dir_path, leaf] = split_path(req.name());
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        resp.header().status = to_pstatus(dir.error());
        return;
      }
      resp.header().status = to_pstatus(store_->rmdir(dir.value(), leaf));
      return;
    }
    case Proc::kRename: {
      const std::string_view both = req.name();
      const auto nul = both.find('\0');
      if (nul == std::string_view::npos) {
        resp.header().status = PStatus::kInval;
        return;
      }
      const auto [fd_path, f_leaf] = split_path(both.substr(0, nul));
      const auto [td_path, t_leaf] = split_path(both.substr(nul + 1));
      auto fd = store_->resolve(fd_path);
      auto td = store_->resolve(td_path);
      if (!fd.ok() || !td.ok()) {
        resp.header().status =
            to_pstatus(!fd.ok() ? fd.error() : td.error());
        return;
      }
      resp.header().status = to_pstatus(
          store_->rename(fd.value(), f_leaf, td.value(), t_leaf));
      return;
    }
    case Proc::kSync:
      resp.header().status = to_pstatus(store_->sync(req.header().ino));
      return;
    case Proc::kFetchAdd:
      // Exactly-once across crashes: the volatile replay cache dies with the
      // server, so the store keeps a durable (client_id, seq) filter and
      // returns the original old value to a retransmission.
      resp.header().aux = store_->counter_fetch_add_once(
          std::string(req.name()), req.header().aux, req.header().client_id,
          req.header().seq);
      return;
    case Proc::kSetCounter:
      store_->counter_set(std::string(req.name()), req.header().aux);
      return;
    default:
      resp.header().status = PStatus::kProtoError;
      return;
  }
}

void Server::do_readdir(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  auto dir = store_->resolve(req.name());
  if (!dir.ok()) {
    resp.header().status = to_pstatus(dir.error());
    return;
  }
  auto entries = store_->readdir(dir.value());
  if (!entries.ok()) {
    resp.header().status = to_pstatus(entries.error());
    return;
  }
  const std::uint64_t cookie = req.header().offset;
  std::byte* out = resp.data_payload();
  const std::byte* end = resp.raw() + resp.capacity();
  std::uint64_t i = cookie;
  std::uint32_t packed = 0;
  for (; i < entries.value().size(); ++i) {
    const auto& e = entries.value()[i];
    const std::size_t need = sizeof(WireDirent) + e.name.size();
    if (out + need > end) break;
    WireDirent wd;
    wd.ino = e.ino;
    wd.is_dir = e.is_dir ? 1 : 0;
    wd.name_len = static_cast<std::uint32_t>(e.name.size());
    std::memcpy(out, &wd, sizeof(wd));
    std::memcpy(out + sizeof(wd), e.name.data(), e.name.size());
    out += need;
    ++packed;
  }
  resp.header().len = packed;
  resp.header().aux = i;  // next cookie
  resp.header().flags = (i >= entries.value().size()) ? 1 : 0;
  resp.header().data_len =
      static_cast<std::uint32_t>(out - resp.data_payload());
}

void Server::do_read_inline(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  const std::size_t cap = resp.inline_capacity(0);
  const std::uint64_t want = std::min<std::uint64_t>(req.header().len, cap);
  auto r = store_->pread(
      req.header().ino, req.header().offset,
      std::span<std::byte>(resp.data_payload(), want));
  if (!r.ok()) {
    resp.header().status = to_pstatus(r.error());
    return;
  }
  resp.header().len = r.value();
  resp.header().data_len = static_cast<std::uint32_t>(r.value());
  fabric_.stats().add("dafs.inline_read_bytes", r.value());
}

void Server::do_write_inline(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  auto r = store_->pwrite(
      req.header().ino, req.header().offset,
      std::span<const std::byte>(req.data_payload(), req.header().data_len));
  if (!r.ok()) {
    resp.header().status = to_pstatus(r.error());
    return;
  }
  resp.header().len = r.value();
  fabric_.stats().add("dafs.inline_write_bytes", r.value());
}

void Server::do_read_direct(Session& s, MsgView& req, MsgView& resp) {
  Actor* actor = Actor::current();
  actor->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  std::uint64_t total = 0;
  std::lock_guard lock(s.send_mu);
  for (const DirectSeg& seg : req.segs()) {
    auto extents =
        store_->extents_for_read(req.header().ino, seg.file_off, seg.len);
    if (!extents.ok()) {
      resp.header().status = to_pstatus(extents.error());
      return;
    }
    std::uint64_t actual = 0;
    Descriptor d;
    d.op = via::Opcode::kRdmaWrite;
    for (const auto& span : extents.value()) {
      d.segs.push_back(DataSegment{span.data(), slab_handle(span.data()),
                                   static_cast<std::uint32_t>(span.size())});
      actual += span.size();
    }
    if (actual == 0) continue;  // read past EOF: nothing to move
    d.remote = {seg.addr, seg.mem};
    if (post_and_reap(s, d) != DescStatus::kSuccess) {
      resp.header().status = PStatus::kProtoError;
      return;
    }
    total += actual;
  }
  resp.header().len = total;
  fabric_.stats().add("dafs.direct_read_bytes", total);
}

void Server::do_write_direct(Session& s, MsgView& req, MsgView& resp) {
  Actor* actor = Actor::current();
  actor->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  std::uint64_t total = 0;
  std::lock_guard lock(s.send_mu);
  for (const DirectSeg& seg : req.segs()) {
    auto extents =
        store_->ensure_extents(req.header().ino, seg.file_off, seg.len);
    if (!extents.ok()) {
      resp.header().status = to_pstatus(extents.error());
      return;
    }
    Descriptor d;
    d.op = via::Opcode::kRdmaRead;
    for (const auto& span : extents.value()) {
      d.segs.push_back(DataSegment{span.data(), slab_handle(span.data()),
                                   static_cast<std::uint32_t>(span.size())});
    }
    d.remote = {seg.addr, seg.mem};
    if (post_and_reap(s, d) != DescStatus::kSuccess) {
      resp.header().status = PStatus::kProtoError;
      return;
    }
    store_->commit_write(req.header().ino, seg.file_off, seg.len);
    total += seg.len;
  }
  resp.header().len = total;
  fabric_.stats().add("dafs.direct_write_bytes", total);
}

void Server::do_lock(Session& s, MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  if (req.header().proc == Proc::kLock) {
    // Post-restart grace: only lease *reclaims* may take locks until the
    // grace period ends, so surviving clients re-establish their ranges
    // before fresh acquires can race into them.
    if (in_grace() && !(req.header().aux & kLockReclaim)) {
      resp.header().status = PStatus::kBusy;
      resp.header().aux = cfg_.busy_retry_ns;
      fabric_.stats().add("dafs.grace_rejections");
      return;
    }
    const bool ok = locks_.try_acquire(
        req.header().ino, req.header().offset, req.header().len, s.id,
        (req.header().aux & kLockExclusive) != 0);
    resp.header().status = ok ? PStatus::kOk : PStatus::kLockConflict;
  } else {
    locks_.release(req.header().ino, req.header().offset, req.header().len,
                   s.id);
  }
}

}  // namespace dafs
