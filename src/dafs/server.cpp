#include "dafs/server.hpp"

#include <pthread.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>

#include "dafs/repl.hpp"
#include "fstore/journal.hpp"
#include "sim/rng.hpp"

namespace dafs {

using sim::Actor;
using sim::ActorScope;
using sim::CostKind;
using via::DataSegment;
using via::Descriptor;
using via::DescStatus;
using via::MemAttrs;

namespace {
using namespace std::chrono_literals;
constexpr auto kPollPeriod = 50ms;
constexpr auto kSendWait = std::chrono::milliseconds(5'000);
}  // namespace

Server::Server(sim::Fabric& fabric, sim::NodeId node, ServerConfig cfg)
    : fabric_(fabric),
      node_(node),
      cfg_(std::move(cfg)),
      nic_(fabric, node, "dafs-server-nic"),
      ptag_(nic_.create_ptag()) {
  // One switchboard drives fault injection at every layer: the store's read
  // paths consult the same plan the fabric uses for transfers.
  cfg_.store.faults = &fabric_.faults();
  // The filer journals so sync is a durability barrier and crash() replays.
  cfg_.store.journal_enabled = cfg_.journal;
  admission_limit_.store(cfg_.admission_max_queue, std::memory_order_relaxed);
  // A standby serves no clients until promoted; its journal (the durable
  // image it will materialize from) must be on.
  if (!cfg_.repl_listen.empty()) {
    cfg_.store.journal_enabled = true;
    role_.store(Role::kStandby, std::memory_order_release);
  }
  // A quorum member starts as a follower — it listens for clients (answering
  // kNotLeader with a hint) but serves nothing until it wins an election.
  // The journal is the replicated log, so it must be on.
  if (quorum()) {
    cfg_.store.journal_enabled = true;
    role_.store(Role::kStandby, std::memory_order_release);
    epoch_.store(0, std::memory_order_relaxed);  // terms count from 0
    const std::size_t n = cfg_.quorum_group.size();
    match_off_.assign(n, 0);
    next_off_.assign(n, 0);
    peer_heard_.assign(n, std::chrono::steady_clock::time_point{});
    raft_rng_ = std::make_unique<sim::Rng>(cfg_.repl_retry.jitter_seed ^
                                           (0x9e3779b97f4a7c15ULL *
                                            (cfg_.member_id + 1)));
  }
  // The store registers every buffer-cache slab with the NIC as it is
  // allocated; direct I/O then DMAs straight out of / into the cache.
  // Journal appends run under the worker's open request span; the tracer
  // pointer lets the store parent them correctly (same pattern as faults).
  cfg_.store.tracer = &fabric_.trace();
  store_ = std::make_unique<fstore::FileStore>(
      cfg_.store, [this](std::span<std::byte> slab) {
        const via::MemHandle h =
            nic_.register_memory(slab.data(), slab.size(), ptag_, MemAttrs{});
        std::lock_guard lock(slabs_mu_);
        slabs_.emplace_back(slab.data(),
                            std::make_pair(slab.size(), h));
      });
  // Point-in-time server state for the unified metrics export. RAII scopes:
  // the callbacks capture `this`, and gauges_ is the last-declared member,
  // so they unregister before anything they read starts tearing down.
  sim::MetricsRegistry& m = fabric_.metrics();
  gauges_.emplace_back(m, "dafs.admission_queue_depth",
                       [this] { return std::uint64_t{recv_cq_.pending()}; });
  gauges_.emplace_back(m, "dafs.replay_cache_bytes",
                       [this] { return std::uint64_t{replay_cache_bytes()}; });
  gauges_.emplace_back(m, "dafs.sessions_live",
                       [this] { return std::uint64_t{session_count()}; });
  gauges_.emplace_back(m, "fstore.journal_pending_bytes",
                       [this] { return store_->journal_pending_bytes(); });
  // Replication gauges: lag/acked are primary-side (the pair's standby does
  // not register them, so they never collide within one pair); the role
  // gauge is registered by any replicated member (last registration wins).
  if (!cfg_.repl_peer.empty()) {
    gauges_.emplace_back(m, "dafs.repl_lag_bytes",
                         [this] { return repl_lag_bytes(); });
    gauges_.emplace_back(m, "dafs.repl_acked_bytes",
                         [this] { return repl_acked_bytes(); });
  }
  if (!cfg_.repl_peer.empty() || !cfg_.repl_listen.empty() || quorum()) {
    gauges_.emplace_back(m, "dafs.role", [this] {
      return static_cast<std::uint64_t>(static_cast<int>(role()));
    });
  }
  // Quorum gauges (one member registers last and wins, same convention as
  // dafs.role; benches sample them per-phase, not per-member).
  if (quorum()) {
    gauges_.emplace_back(m, "dafs.term", [this] { return epoch(); });
    gauges_.emplace_back(m, "dafs.resilver_bytes",
                         [this] { return resilver_bytes(); });
  }
  if (cfg_.scrub_enabled) {
    gauges_.emplace_back(m, "dafs.scrub_passes",
                         [this] { return scrub_passes(); });
  }
}

Server::~Server() { stop(); }

std::uint64_t Server::repl_lag_bytes() const {
  const std::uint64_t size = store_->journal_size();
  const std::uint64_t acked = repl_acked_.load(std::memory_order_relaxed);
  return size > acked ? size - acked : 0;
}

void Server::start() {
  if (running_.exchange(true)) return;
  accept_actor_ =
      std::make_unique<Actor>("dafs-accept", &fabric_.node(node_));
  for (int i = 0; i < cfg_.workers; ++i) {
    worker_actors_.push_back(std::make_unique<Actor>(
        "dafs-worker" + std::to_string(i), &fabric_.node(node_)));
    auto buf = std::make_unique<MsgBuf>();
    buf->mem.resize(cfg_.msg_buf_size);
    {
      ActorScope scope(*worker_actors_.back());
      buf->handle =
          nic_.register_memory(buf->mem.data(), buf->mem.size(), ptag_, {});
    }
    worker_send_bufs_.push_back(std::move(buf));
  }
  accept_thread_ = std::thread([this] {
    pthread_setname_np(pthread_self(), "dafs-accept");
    accept_loop();
  });
  for (int i = 0; i < cfg_.workers; ++i) {
    worker_threads_.emplace_back([this, i] {
      pthread_setname_np(pthread_self(),
                         ("dafs-w" + std::to_string(i)).c_str());
      worker_loop(i);
    });
  }
  if (cfg_.scrub_enabled) {
    scrub_thread_ = std::thread([this] {
      pthread_setname_np(pthread_self(), "dafs-scrub");
      scrub_loop();
    });
  }
  if (quorum()) {
    // Rebuild the term-run table from the (possibly pre-existing) journal
    // before any peer can ask about it.
    {
      std::lock_guard rlock(raft_mu_);
      rebuild_term_runs_locked();
      reset_election_deadline_locked();
    }
    quorum_listener_thread_ = std::thread([this] {
      pthread_setname_np(pthread_self(), "dafs-raft-l");
      quorum_listener_loop();
    });
    quorum_tick_thread_ = std::thread([this] {
      pthread_setname_np(pthread_self(), "dafs-raft-t");
      quorum_tick_loop();
    });
    for (std::uint32_t p = 0; p < cfg_.quorum_group.size(); ++p) {
      if (p == cfg_.member_id) continue;
      quorum_sender_threads_.emplace_back([this, p] {
        pthread_setname_np(pthread_self(), "dafs-raft-s");
        quorum_sender_loop(p);
      });
    }
  } else if (!cfg_.repl_listen.empty()) {
    repl_actor_ =
        std::make_unique<Actor>("dafs-repl-recv", &fabric_.node(node_));
    repl_thread_ = std::thread([this] {
      pthread_setname_np(pthread_self(), "dafs-repl-r");
      repl_receiver_loop();
    });
  } else if (!cfg_.repl_peer.empty()) {
    repl_actor_ =
        std::make_unique<Actor>("dafs-repl-send", &fabric_.node(node_));
    repl_thread_ = std::thread([this] {
      pthread_setname_np(pthread_self(), "dafs-repl-s");
      repl_sender_loop();
    });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  repl_cv_.notify_all();  // release any barrier waiter
  raft_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  if (repl_thread_.joinable()) repl_thread_.join();
  if (scrub_thread_.joinable()) scrub_thread_.join();
  if (quorum_tick_thread_.joinable()) quorum_tick_thread_.join();
  for (auto& t : quorum_sender_threads_) {
    if (t.joinable()) t.join();
  }
  quorum_sender_threads_.clear();
  if (quorum_listener_thread_.joinable()) quorum_listener_thread_.join();
  {
    // Handler threads exit once running_ is false and their VI dies; sever
    // the VIs so none of them sits out a full recv poll.
    std::lock_guard qlock(quorum_mu_);
    for (via::Vi* vi : quorum_conn_vis_) vi->disconnect();
  }
  for (;;) {
    std::vector<std::unique_ptr<ConnSlot>> conns;
    {
      std::lock_guard qlock(quorum_mu_);
      conns.swap(quorum_conn_threads_);
    }
    if (conns.empty()) break;
    for (auto& slot : conns) {
      if (slot->thread.joinable()) slot->thread.join();
    }
  }
  std::lock_guard lock(sessions_mu_);
  for (auto& s : sessions_) {
    if (s->vi) s->vi->disconnect();
  }
  sessions_.clear();
  by_vi_.clear();
}

sim::BusyBreakdown Server::worker_busy() const {
  sim::BusyBreakdown total;
  for (const auto& a : worker_actors_) {
    const auto& b = a->busy();
    for (std::size_t i = 0; i < b.by_kind.size(); ++i) {
      total.by_kind[i] += b.by_kind[i];
    }
  }
  return total;
}

std::size_t Server::session_count() const {
  std::lock_guard lock(sessions_mu_);
  return sessions_.size();
}

via::MemHandle Server::slab_handle(const std::byte* p) const {
  std::lock_guard lock(slabs_mu_);
  for (const auto& [base, info] : slabs_) {
    if (p >= base && p < base + info.first) return info.second;
  }
  return via::kInvalidMemHandle;
}

// ---------------------------------------------------------------------------
// Accept / worker loops
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  ActorScope scope(*accept_actor_);
  while (running_.load()) {
    // A pair standby has no client listener: connects to its service fail
    // with kNoMatchingListener until promotion flips the role, exactly like
    // a crashed filer. A *quorum* follower is different — it listens and
    // answers kNotLeader with a leader hint, so clients discover the leader
    // instead of probing dead air.
    while (running_.load() && !quorum() &&
           role_.load(std::memory_order_acquire) == Role::kStandby) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!running_.load()) break;
    {
      // The listener lives only while the server is "up". Destroying it on a
      // crash makes new connects fail with kNoMatchingListener — exactly what
      // clients of a dead filer observe — until the restart delay elapses.
      via::Listener listener(nic_, cfg_.service);
      while (running_.load() && !crash_pending_.load()) {
        // Build the session fully armed *before* accepting: receive buffers
        // posted (legal on an idle VI) and the VI already registered with the
        // dispatch map, so the client's first request — which can arrive the
        // instant the handshake completes — always finds its session. The
        // armed session is reused across accept timeouts and only consumed by
        // a real connection (or abandoned on crash/shutdown).
        auto session = std::make_unique<Session>();
        session->id = next_session_++;
        session->vi = std::make_unique<via::Vi>(nic_, via::ViAttrs{}, nullptr,
                                                &recv_cq_);
        for (std::size_t i = 0; i < cfg_.recv_credits; ++i) {
          auto buf = std::make_unique<MsgBuf>();
          buf->mem.resize(cfg_.msg_buf_size);
          buf->handle =
              nic_.register_memory(buf->mem.data(), buf->mem.size(), ptag_, {});
          buf->desc.segs = {DataSegment{
              buf->mem.data(), buf->handle,
              static_cast<std::uint32_t>(buf->mem.size())}};
          const via::Status st = session->vi->post_recv(buf->desc);
          assert(st == via::Status::kSuccess && "pre-arm post_recv on idle VI");
          (void)st;
          session->recv_bufs.push_back(std::move(buf));
        }
        via::Vi* vi = session->vi.get();
        {
          std::lock_guard lock(sessions_mu_);
          // Checked under sessions_mu_ so an arm can't interleave with the
          // crash teardown sweep: do_crash publishes crash_pending_ before
          // taking this lock, so either the flag is visible here (abandon the
          // session, never register it) or this registration completes first
          // and the sweep — which runs strictly after — tears it down. A
          // session registered after the sweep would otherwise be served
          // straight through the outage with writes the standby never sees.
          if (crash_pending_.load()) break;
          by_vi_.emplace(vi, session.get());
          sessions_.push_back(std::move(session));
        }
        bool accepted = false;
        while (running_.load() && !crash_pending_.load()) {
          if (listener.accept(*vi, kPollPeriod) == via::Status::kSuccess) {
            accepted = true;
            break;
          }
        }
        if (!accepted) break;  // crash/shutdown; armed session is abandoned
        fabric_.stats().add("dafs.sessions");
      }
    }
    if (!running_.load()) break;
    // Reap sessions that slipped past the crash teardown: a session armed
    // concurrently with do_crash re-enters the dispatch map after it was
    // cleared, and a connection accepted in that window would otherwise be
    // served straight through the outage. This runs on the arming thread
    // after the listener died, so the sweep is complete by construction.
    {
      std::lock_guard lock(sessions_mu_);
      for (auto& sess : sessions_) {
        if (sess->closing) continue;
        sess->closing = true;
        if (sess->vi && sess->vi->state() != via::Vi::State::kIdle) {
          sess->vi->disconnect();
        }
      }
      by_vi_.clear();
    }
    // Down: hold the outage for the scheduled real-time delay, then come
    // back with a fresh listener and a lease-reclaim grace period.
    std::chrono::steady_clock::time_point until;
    {
      std::lock_guard lock(crash_mu_);
      until = restart_at_;
    }
    while (running_.load() && std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    crash_pending_.store(false);
    // A restarted replicated primary must not serve clients until the
    // replication handshake has resolved whether it was deposed during the
    // outage: a promoted standby answers the hello "fenced". Serving before
    // that answer would let stale-epoch writes land here and silently
    // diverge from the pair. Bounded wait — with the standby also gone there
    // is no one who could have deposed us, so after the budget the filer
    // serves (degraded) rather than stay down forever.
    if (!cfg_.repl_peer.empty()) {
      const auto fence_deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
      while (running_.load() &&
             role_.load(std::memory_order_acquire) == Role::kPrimary &&
             !repl_connected_.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < fence_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    grace_until_.store((std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.grace_period_ms))
                           .time_since_epoch()
                           .count());
    fabric_.stats().add("dafs.server_restarts");
  }
}

bool Server::in_grace() const {
  const std::int64_t until = grace_until_.load(std::memory_order_relaxed);
  return until != 0 &&
         std::chrono::steady_clock::now().time_since_epoch().count() < until;
}

void Server::inject_crash(std::uint64_t restart_delay_ms) {
  do_crash(restart_delay_ms);
}

void Server::do_crash(std::uint64_t restart_delay_ms) {
  std::lock_guard crash_lock(crash_mu_);
  if (crash_pending_.load()) return;  // already down
  restart_at_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(restart_delay_ms);
  crash_count_.fetch_add(1);
  fabric_.stats().add("dafs.server_crashes");
  // Flight recorder: stamp the crash into the timeline and dump everything —
  // the in-flight spans it orphans are exactly the requests that died.
  if (sim::Tracer& tracer = fabric_.trace(); tracer.enabled()) {
    Actor* actor = Actor::current();
    char attrs[64];
    std::snprintf(attrs, sizeof(attrs), "\"restart_delay_ms\":%llu",
                  static_cast<unsigned long long>(restart_delay_ms));
    tracer.event("server_crash", actor != nullptr ? actor->now() : 0, attrs);
    tracer.flight_dump("crash");
  }
  // Publish the crash BEFORE tearing anything down. Both the accept loop's
  // arming path (under sessions_mu_) and the barrier's degraded branch key
  // off this flag: setting it first closes the window where a session armed
  // concurrently with the teardown sweep — or a request that finds the
  // replication channel already dead — would be served straight through the
  // outage. restart_at_ is read under crash_mu_, which this function holds
  // end to end, so the flag can never be observed with a stale restart time.
  crash_pending_.store(true);
  {
    std::lock_guard lock(sessions_mu_);
    for (auto& sess : sessions_) {
      if (sess->closing) continue;
      sess->closing = true;
      {
        std::lock_guard rlock(sess->replay_mu);
        sess->replay.clear();
        sess->replay_bytes = 0;
      }
      // Connected VIs die with the process. Idle (armed, pre-accept) VIs are
      // left alone: the accept loop may be linking one right now, and the
      // worker-side unknown-session fallback reaps that race.
      if (sess->vi && sess->vi->state() != via::Vi::State::kIdle) {
        sess->vi->disconnect();
      }
    }
    by_vi_.clear();
  }
  locks_.clear();    // volatile: clients re-acquire via lease reclaim
  {
    // Delegations are volatile leader state: a new incarnation never honors
    // old ids (they fence by mismatch) and re-grants from scratch.
    std::lock_guard dlock(deleg_mu_);
    delegs_.clear();
    openers_.clear();
    session_opens_.clear();
  }
  store_->crash();   // un-synced data vanishes; journal replays durable image
  // Kill the replication channel with the process: the standby observes the
  // death promptly and promotes instead of waiting out an idle timeout.
  {
    std::lock_guard rlock(repl_mu_);
    if (repl_vi_) repl_vi_->disconnect();
    repl_connected_.store(false, std::memory_order_relaxed);
  }
  repl_cv_.notify_all();
  if (quorum()) {
    // A crashed member loses its leadership (volatile) but keeps its term
    // and vote (the durable Raft metadata a real filer fsyncs beside the
    // journal — deliberately not reset here). It rejoins as a follower and
    // re-silvers from whoever leads when it comes back.
    {
      std::lock_guard rlock(raft_mu_);
      role_.store(Role::kStandby, std::memory_order_release);
      leader_member_.store(-1, std::memory_order_relaxed);
      // store_->crash() above replayed the journal and may have truncated a
      // torn tail; the term table and commit view must match the bytes that
      // survived.
      rebuild_term_runs_locked();
      const std::uint64_t jsize = store_->journal_size();
      if (commit_off_.load(std::memory_order_relaxed) > jsize) {
        commit_off_.store(jsize, std::memory_order_relaxed);
      }
      reset_election_deadline_locked();
    }
    // Sever the peer connections with the process so the group observes the
    // death promptly instead of waiting out poll timeouts.
    {
      std::lock_guard qlock(quorum_mu_);
      for (via::Vi* vi : quorum_conn_vis_) vi->disconnect();
    }
    raft_cv_.notify_all();
  }
}

std::size_t Server::replay_cache_bytes() const {
  std::lock_guard lock(sessions_mu_);
  std::size_t total = 0;
  for (const auto& s : sessions_) {
    std::lock_guard rlock(s->replay_mu);
    total += s->replay_bytes;
  }
  return total;
}

void Server::worker_loop(int idx) {
  ActorScope scope(*worker_actors_[idx]);
  while (running_.load()) {
    via::Completion c;
    if (recv_cq_.wait(c, kPollPeriod) != via::Status::kSuccess) continue;
    if (c.desc->status != DescStatus::kSuccess) continue;  // flushed recv
    // Scheduled crash: the fault plan may kill the server on this request.
    // The tripping request dies unanswered, like every other in-flight op.
    std::uint64_t restart_ms = 0;
    if (fabric_.faults().on_server_request(worker_actors_[idx]->now(), node_,
                                           &restart_ms)) {
      do_crash(restart_ms);
      continue;
    }
    if (crash_pending_.load()) {
      // The filer is crashing: every request in flight dies unanswered, like
      // the rest of the process state. Killing the VI (instead of silently
      // dropping) makes the client observe the death immediately and start
      // its failover probe rather than waiting out an I/O timeout.
      c.vi->disconnect();
      continue;
    }
    Session* session = nullptr;
    {
      std::lock_guard lock(sessions_mu_);
      auto it = by_vi_.find(c.vi);
      if (it != by_vi_.end()) session = it->second;
    }
    if (session == nullptr) {
      // A VI that delivered a request but has no session was connected across
      // a crash teardown (accept raced do_crash). Kill it so the client fails
      // fast and reconnects against the restarted listener instead of
      // waiting out its I/O timeout.
      c.vi->disconnect();
      continue;
    }
    // Recover which MsgBuf this descriptor belongs to.
    MsgBuf* req = nullptr;
    for (auto& b : session->recv_bufs) {
      if (&b->desc == c.desc) {
        req = b.get();
        break;
      }
    }
    assert(req != nullptr);
    handle_request(*session, *req, *worker_send_bufs_[idx]);
    // Time-series heartbeat: the sampler itself decides (by cadence) whether
    // this tick records a snapshot; a no-op unless enable_timeseries() ran.
    fabric_.metrics().tick(worker_actors_[idx]->now());
    // Return the buffer to the session's receive pool (credit restored). A
    // failed repost means the connection died; the session is torn down (or
    // resumed onto a fresh VI) elsewhere.
    req->desc.segs = {DataSegment{
        req->mem.data(), req->handle,
        static_cast<std::uint32_t>(req->mem.size())}};
    if (session->vi->post_recv(req->desc) != via::Status::kSuccess) {
      fabric_.stats().add("dafs.server_repost_failures");
    }
  }
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

via::DescStatus Server::post_and_reap(Session& s, Descriptor& d) {
  if (s.vi->post_send(d) != via::Status::kSuccess) {
    return DescStatus::kFlushed;
  }
  Descriptor* done = nullptr;
  if (s.vi->send_wait(done, kSendWait) != via::Status::kSuccess) {
    return DescStatus::kFlushed;
  }
  assert(done == &d);
  return done->status;
}

void Server::send_response(Session& s, MsgBuf& out) {
  // Child of the request's service span (inert outside one).
  sim::SpanScope span(fabric_.trace(), "dafs.server", "reply_send");
  MsgView view(out.mem.data(), out.mem.size());
  out.desc = Descriptor{};
  out.desc.op = via::Opcode::kSend;
  out.desc.segs = {DataSegment{out.mem.data(), out.handle,
                               static_cast<std::uint32_t>(view.wire_size())}};
  std::lock_guard lock(s.send_mu);
  // A lost response is not rolled back: the operation has executed, and the
  // client's retransmission is answered from the replay cache.
  if (post_and_reap(s, out.desc) != DescStatus::kSuccess) {
    fabric_.stats().add("dafs.response_send_failures");
  }
}

void Server::handle_request(Session& s, MsgBuf& req_buf, MsgBuf& out) {
  Actor* actor = Actor::current();
  const sim::CostModel& cm = fabric_.cost();
  actor->charge(CostKind::kDispatch, cm.request_dispatch);

  MsgView req(req_buf.mem.data(), req_buf.mem.size());
  MsgView resp(out.mem.data(), out.mem.size());
  resp.header() = MsgHeader{};
  resp.header().proc = req.header().proc;
  resp.header().request_id = req.header().request_id;
  resp.header().session_id = s.id;
  resp.header().seq = req.header().seq;
  resp.header().status = PStatus::kOk;

  // Server-side service span, parented under the client's request span via
  // the ids the request carried across the wire (inert when it carried
  // none). Everything below — admission, journal appends in the store, RDMA
  // in the via layer, the reply send — nests under it via the thread-local
  // context this scope establishes.
  sim::Tracer& tracer = fabric_.trace();
  sim::SpanScope svc(tracer, "dafs.server", proc_name(req.header().proc),
                     req.header().trace_id, req.header().parent_span_id);
  if (svc.active()) {
    svc.attr("seq", std::uint64_t{req.header().seq});
    svc.attr("session", s.id);
    // Queue wait: NIC completion of the request message -> worker pickup.
    // Parented under the *client's* span, as a sibling preceding service.
    if (req_buf.desc.done_at != 0 && actor->now() > req_buf.desc.done_at) {
      sim::Span w;
      w.trace_id = svc.trace_id();
      w.span_id = tracer.new_id();
      w.parent_span_id = req.header().parent_span_id;
      w.t_start = req_buf.desc.done_at;
      w.t_end = actor->now();
      w.layer = "dafs.server";
      w.name = "admission_wait";
      tracer.record(std::move(w));
    }
  }

  // Queue wait this request experienced (NIC completion -> worker pickup),
  // attributed to the issuing client whether the request is served or shed.
  const std::uint64_t entry_now = actor->now();
  const std::uint64_t wait_ns =
      req_buf.desc.done_at != 0 && entry_now > req_buf.desc.done_at
          ? entry_now - req_buf.desc.done_at
          : 0;

  // Live-telemetry fast path. kStatsQuery is answered ahead of every
  // data-plane refusal — a fenced or follower member still reports its
  // role/term, and an overloaded server still reports who is flooding it
  // (the query never reaches the admission check below). A stats plane that
  // sheds with the data plane is useless during exactly the incidents it
  // exists to observe.
  if (req.header().proc == Proc::kStatsQuery) {
    if (req.header().session_id != s.id) {
      resp.header().status = PStatus::kBadSession;
    } else {
      do_stats(resp);
      ClientStat d;
      d.ops_meta = 1;
      d.bytes_in = req.wire_size();
      d.bytes_out = resp.wire_size();
      d.queue_wait_ns = wait_ns;
      d.service_ns = actor->now() - entry_now;
      account_client(req.header().client_id, d);
    }
    fabric_.stats().add("dafs.stats_queries");
    send_response(s, out);
    return;
  }

  // A fenced (deposed) primary must not serve stale sessions: any write it
  // applied now would fork history from the promoted standby. Everything but
  // a clean disconnect is refused with kFenced, which sends the client to
  // the next endpoint in its MountSpec.
  if (role_.load(std::memory_order_acquire) == Role::kFenced &&
      req.header().proc != Proc::kDisconnect) {
    resp.header().status = PStatus::kFenced;
    fabric_.stats().add("dafs.fenced_rejections");
    send_response(s, out);
    return;
  }
  // A quorum follower (or candidate) serves nothing but redirects: the
  // kNotLeader answer carries 1 + the leader's member index in aux so the
  // client jumps straight to the leader instead of round-robin probing.
  if (quorum() &&
      role_.load(std::memory_order_acquire) != Role::kPrimary &&
      req.header().proc != Proc::kDisconnect) {
    resp.header().status = PStatus::kNotLeader;
    resp.header().aux = leader_hint();
    fabric_.stats().add("dafs.not_leader_rejections");
    send_response(s, out);
    return;
  }

  if (req.header().proc != Proc::kConnect &&
      req.header().session_id != s.id) {
    resp.header().status = PStatus::kBadSession;
    send_response(s, out);
    return;
  }

  const Proc proc = req.header().proc;
  const std::uint64_t t0 = actor->now();

  // Piggybacked cumulative ack: everything the client has seen answered can
  // leave the replay cache (and the durable duplicate filter).
  if (req.header().ack_seq != 0) apply_ack(s, req.header());

  // Admission control + deadlines. A request popped into an over-full queue,
  // or one whose deadline already passed, is shed with kBusy + a retry-after
  // hint instead of executed. Connection management always passes — a client
  // that cannot even connect or disconnect can never drain the overload.
  if (proc != Proc::kConnect && proc != Proc::kDisconnect) {
    const std::size_t limit = admission_limit_.load(std::memory_order_relaxed);
    const bool overloaded = limit == 0 || recv_cq_.pending() > limit;
    const bool expired =
        req.header().deadline != 0 && t0 > req.header().deadline;
    if (overloaded || expired) {
      resp.header().status = PStatus::kBusy;
      resp.header().aux = overloaded ? cfg_.busy_retry_ns : 0;
      fabric_.stats().add(overloaded ? "dafs.busy_shed"
                                     : "dafs.deadline_expired");
      ClientStat d;
      d.sheds = 1;
      d.queue_wait_ns = wait_ns;
      account_client(req.header().client_id, d);
      if (expired && tracer.enabled()) {
        char attrs[96];
        std::snprintf(attrs, sizeof(attrs),
                      "\"seq\":%u,\"deadline\":%llu", req.header().seq,
                      static_cast<unsigned long long>(req.header().deadline));
        tracer.event("deadline_expired", t0, attrs);
        tracer.flight_dump("deadline");
      }
      send_response(s, out);
      return;
    }
  }

  // Exactly-once replay: a retransmitted non-idempotent request whose
  // original execution already succeeded is answered with the cached
  // response, never re-applied.
  const bool replay_protected = req.header().seq != 0 &&
                                proc != Proc::kConnect && !is_idempotent(proc);
  if (replay_protected) {
    std::lock_guard rlock(s.replay_mu);
    for (const CachedResp& c : s.replay) {
      if (c.seq == req.header().seq) {
        std::memcpy(out.mem.data(), c.bytes.data(), c.bytes.size());
        fabric_.stats().add("dafs.replay_hits");
        ClientStat d;
        d.retransmits = 1;
        d.queue_wait_ns = wait_ns;
        account_client(req.header().client_id, d);
        send_response(s, out);
        return;
      }
    }
  }

  // Delegation gate: a data-plane access to a delegated file either renews
  // the holder's lease (matching id), triggers a recall against a foreign
  // holder (kBusy + retry-after until returned or lapsed), or fences a
  // write-back whose delegation died (kDelegExpired). Runs after the replay
  // lookup — a replayed response was already applied under a live lease.
  {
    bool write_class = false;
    bool read_class = false;
    switch (proc) {
      case Proc::kWriteInline:
      case Proc::kWriteDirect:
      case Proc::kSetSize:
        write_class = true;
        break;
      case Proc::kReadInline:
      case Proc::kReadDirect:
        read_class = true;
        break;
      default:
        break;
    }
    if ((write_class || read_class) &&
        deleg_gate(req.header().ino, req.header().deleg, write_class, resp) !=
            PStatus::kOk) {
      ClientStat d;
      d.sheds = 1;
      d.queue_wait_ns = wait_ns;
      account_client(req.header().client_id, d);
      send_response(s, out);
      return;
    }
  }

  switch (req.header().proc) {
    case Proc::kConnect:
      if (req.header().flags & kConnectResume) {
        do_resume(s, req, resp);
      } else {
        resp.header().aux = s.id;
        // Ship the session-id watermark so a promoted standby mints ids the
        // deposed primary could never have issued (no id reuse across the
        // pair) — the same guarantee the journal gives a local restart.
        if (!cfg_.repl_peer.empty() || quorum()) {
          store_->journal_server_state(s.id + 1,
                                       epoch_.load(std::memory_order_relaxed));
        }
      }
      break;
    case Proc::kDisconnect:
      locks_.release_owner(s.id);
      release_session_delegs(s.id);
      s.closing = true;
      break;
    case Proc::kOpen:
      do_open(s, req, resp);
      break;
    case Proc::kDelegRecall:
    case Proc::kDelegReturn:
      do_deleg(req, resp);
      break;
    case Proc::kGetattr:
    case Proc::kSetSize:
    case Proc::kRemove:
    case Proc::kMkdir:
    case Proc::kRmdir:
    case Proc::kRename:
    case Proc::kSync:
    case Proc::kFetchAdd:
    case Proc::kSetCounter:
      do_namespace(req, resp);
      break;
    case Proc::kReaddir:
      do_readdir(req, resp);
      break;
    case Proc::kReadInline:
      do_read_inline(req, resp);
      break;
    case Proc::kWriteInline:
      do_write_inline(req, resp);
      break;
    case Proc::kReadDirect:
      do_read_direct(s, req, resp);
      break;
    case Proc::kWriteDirect:
      do_write_direct(s, req, resp);
      break;
    case Proc::kLock:
    case Proc::kUnlock:
      do_lock(s, req, resp);
      break;
    default:
      resp.header().status = PStatus::kProtoError;  // unknown procedure
      break;
  }
  // Cache the response *before* sending: if the send is lost to a transport
  // failure the operation has still executed, and only the cache can answer
  // the retransmission without applying it twice. Failed executions are not
  // cached — re-running them is safe (the op never took effect) and lets a
  // transient error clear.
  if (replay_protected && proc != Proc::kDisconnect &&
      resp.header().status == PStatus::kOk) {
    std::lock_guard rlock(s.replay_mu);
    s.replay.push_back(CachedResp{
        req.header().seq,
        std::vector<std::byte>(out.mem.data(),
                               out.mem.data() + resp.wire_size())});
    s.replay_bytes += s.replay.back().bytes.size();
    // Bounded by entry count and by bytes; the entry just added always
    // survives (a retransmission of *this* request must find it).
    while (s.replay.size() > 1 &&
           (s.replay.size() > cfg_.replay_entries ||
            s.replay_bytes > cfg_.replay_max_bytes)) {
      if (s.replay.size() <= cfg_.replay_entries) {
        fabric_.stats().add("dafs.replay_forced_evictions");
      }
      s.replay_bytes -= s.replay.front().bytes.size();
      s.replay.pop_front();
    }
  }
  // Semi-synchronous replication: a successful op whose loss a failover
  // could not hide (non-idempotent execution, or a sync that just made data
  // durable) is held until the standby holds the records it produced —
  // otherwise an acknowledged write could vanish in a failover, which the
  // client would never retransmit. If the barrier reports the filer is
  // crashing, the executed-but-unshipped op must die unacknowledged: the
  // client will retransmit it against whichever filer survives, and an ack
  // now would promise durability the standby cannot honor.
  if (resp.header().status == PStatus::kOk &&
      (replay_protected || proc == Proc::kSync)) {
    if (quorum()) {
      // Quorum commit barrier — unlike the pair's semi-sync barrier this
      // NEVER degrades: an op a majority does not hold is either dropped
      // (crash) or demoted to kNotLeader so the client re-runs it against
      // the real leader (safe: the durable dup filter and idempotent
      // rewrites make the retry exactly-once).
      switch (quorum_commit_barrier()) {
        case QuorumAck::kOk:
          break;
        case QuorumAck::kDrop:
          fabric_.stats().add("dafs.acks_dropped_in_crash");
          return;
        case QuorumAck::kNotLeader:
          resp.header().status = PStatus::kNotLeader;
          resp.header().aux = leader_hint();
          fabric_.stats().add("dafs.quorum_barrier_demotions");
          // The kOk response was optimistically cached above; a later
          // retransmission must not be answered with an ack the group never
          // committed.
          if (replay_protected) {
            std::lock_guard rlock(s.replay_mu);
            for (auto it = s.replay.begin(); it != s.replay.end(); ++it) {
              if (it->seq == req.header().seq) {
                s.replay_bytes -= it->bytes.size();
                s.replay.erase(it);
                break;
              }
            }
          }
          break;
      }
    } else if (!replicate_barrier()) {
      fabric_.stats().add("dafs.acks_dropped_in_crash");
      return;
    }
  }
  fabric_.stats().add("dafs.requests");
  fabric_.histograms().record("dafs.server_service_ns", actor->now() - t0);
  // Per-client attribution for the executed op. Direct transfers move their
  // payload by RDMA, outside the message wire image, so those bytes are
  // added from the transfer length the handler reported in header().len.
  {
    ClientStat d;
    d.bytes_in = req.wire_size() +
                 (proc == Proc::kWriteDirect ? resp.header().len : 0);
    d.bytes_out = resp.wire_size() +
                  (proc == Proc::kReadDirect ? resp.header().len : 0);
    if (proc == Proc::kReadInline || proc == Proc::kReadDirect) {
      d.ops_read = 1;
    } else if (proc == Proc::kWriteInline || proc == Proc::kWriteDirect) {
      d.ops_write = 1;
    } else {
      d.ops_meta = 1;
    }
    d.queue_wait_ns = wait_ns;
    d.service_ns = actor->now() - t0;
    account_client(req.header().client_id, d);
  }
  send_response(s, out);
}

// ---------------------------------------------------------------------------
// Live telemetry (kStatsQuery + per-client attribution)
// ---------------------------------------------------------------------------

void Server::account_client(std::uint64_t client_id, const ClientStat& delta) {
  // 0 is "no identity yet" — only a client's very first kConnect, before the
  // server has minted it a session to adopt as its id.
  if (client_id == 0) return;
  std::lock_guard lock(cstats_mu_);
  auto [it, fresh] = cstats_.try_emplace(client_id);
  ClientStat& c = it->second;
  c.bytes_in += delta.bytes_in;
  c.bytes_out += delta.bytes_out;
  c.ops_read += delta.ops_read;
  c.ops_write += delta.ops_write;
  c.ops_meta += delta.ops_meta;
  c.queue_wait_ns += delta.queue_wait_ns;
  c.service_ns += delta.service_ns;
  c.retransmits += delta.retransmits;
  c.sheds += delta.sheds;
  if (!fresh) return;
  // First sight of this client: surface its row in the metrics JSON (and
  // the time-series sampler) as dafs.session.<client_id>.*. The callbacks
  // re-find the row so they stay valid across map rebalancing.
  sim::MetricsRegistry& m = fabric_.metrics();
  const std::string prefix =
      "dafs.session." + std::to_string(client_id) + ".";
  const auto field = [this, client_id](std::uint64_t ClientStat::* f) {
    return [this, client_id, f]() -> std::uint64_t {
      std::lock_guard lock(cstats_mu_);
      const auto it = cstats_.find(client_id);
      return it == cstats_.end() ? 0 : it->second.*f;
    };
  };
  session_gauges_.emplace_back(m, prefix + "bytes_in",
                               field(&ClientStat::bytes_in));
  session_gauges_.emplace_back(m, prefix + "bytes_out",
                               field(&ClientStat::bytes_out));
  session_gauges_.emplace_back(m, prefix + "ops_read",
                               field(&ClientStat::ops_read));
  session_gauges_.emplace_back(m, prefix + "ops_write",
                               field(&ClientStat::ops_write));
  session_gauges_.emplace_back(m, prefix + "ops_meta",
                               field(&ClientStat::ops_meta));
  session_gauges_.emplace_back(m, prefix + "queue_wait_ns",
                               field(&ClientStat::queue_wait_ns));
  session_gauges_.emplace_back(m, prefix + "service_ns",
                               field(&ClientStat::service_ns));
  session_gauges_.emplace_back(m, prefix + "retransmits",
                               field(&ClientStat::retransmits));
  session_gauges_.emplace_back(m, prefix + "sheds",
                               field(&ClientStat::sheds));
}

std::map<std::uint64_t, Server::ClientStat> Server::client_stats() const {
  std::lock_guard lock(cstats_mu_);
  return cstats_;
}

void Server::do_stats(MsgView& resp) {
  Actor* actor = Actor::current();
  WireStatsHeader h;
  h.role = static_cast<std::uint32_t>(
      static_cast<int>(role_.load(std::memory_order_acquire)));
  h.term = epoch_.load(std::memory_order_relaxed);
  h.now_ns = actor->now();
  h.sessions_live = session_count();
  h.admission_queue_depth = recv_cq_.pending();
  h.admission_limit = admission_limit();
  h.replay_cache_bytes = replay_cache_bytes();
  h.requests_total = fabric_.stats().get("dafs.requests");
  h.busy_sheds = fabric_.stats().get("dafs.busy_shed");
  h.crash_count = crash_count();
  h.scrub_passes = scrub_passes();
  h.scrub_blocks = fabric_.stats().get("dafs.scrub_blocks_verified");
  h.resilver_bytes = resilver_bytes();
  h.commit_offset = commit_offset();

  resp.header().name_len = 0;
  std::byte* base = resp.data_payload();
  const std::size_t cap = resp.inline_capacity(0);
  std::size_t off = sizeof(WireStatsHeader);

  // Session table. Holding cstats_mu_ here is safe: nothing below takes it
  // (the gauge sampling further down runs after the guard is released).
  {
    std::lock_guard lock(cstats_mu_);
    for (const auto& [cid, cs] : cstats_) {
      if (off + sizeof(WireSessionStats) > cap) {
        h.truncated = 1;
        break;
      }
      WireSessionStats w;
      w.client_id = cid;
      w.bytes_in = cs.bytes_in;
      w.bytes_out = cs.bytes_out;
      w.ops_read = cs.ops_read;
      w.ops_write = cs.ops_write;
      w.ops_meta = cs.ops_meta;
      w.queue_wait_ns = cs.queue_wait_ns;
      w.service_ns = cs.service_ns;
      w.retransmits = cs.retransmits;
      w.sheds = cs.sheds;
      std::memcpy(base + off, &w, sizeof(w));
      off += sizeof(w);
      ++h.nsessions;
    }
  }

  // Key/value section: every fabric counter, then every gauge (sampled
  // now). Clipped, never split — a key that does not fit whole is dropped
  // and the snapshot marked truncated.
  const auto put_kv = [&](const std::string& key, std::uint64_t value) {
    const std::size_t need = sizeof(WireStatsKv) + key.size();
    if (off + need > cap) {
      h.truncated = 1;
      return false;
    }
    WireStatsKv kv;
    kv.value = value;
    kv.key_len = static_cast<std::uint32_t>(key.size());
    std::memcpy(base + off, &kv, sizeof(kv));
    std::memcpy(base + off + sizeof(kv), key.data(), key.size());
    off += need;
    ++h.nkv;
    return true;
  };
  for (const auto& [key, value] : fabric_.stats().snapshot()) {
    if (!put_kv(key, value)) break;
  }
  if (h.truncated == 0) {
    for (const auto& [key, value] : fabric_.metrics().sample_gauges()) {
      if (!put_kv(key, value)) break;
    }
  }

  std::memcpy(base, &h, sizeof(h));
  resp.header().data_len = static_cast<std::uint32_t>(off);
  resp.header().len = off;
  actor->charge(CostKind::kCopy, fabric_.cost().copy_time(off));
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

bool Server::replicate_barrier() {
  if (cfg_.repl_peer.empty() ||
      role_.load(std::memory_order_acquire) != Role::kPrimary) {
    return true;
  }
  const std::uint64_t target = store_->journal_size();
  if (repl_acked_.load(std::memory_order_relaxed) >= target) return true;
  if (!repl_connected_.load(std::memory_order_relaxed)) {
    // do_crash publishes crash_pending_ before it kills the channel, so a
    // request that finds the channel down *because the filer is crashing*
    // reliably sees the flag here and must not be acknowledged.
    if (crash_pending_.load()) return false;
    // Degraded: no standby attached (never came up, or died). Answering
    // anyway preserves availability; the gap is visible in this counter.
    fabric_.stats().add("dafs.repl_degraded_responses");
    return true;
  }
  const std::uint64_t budget_ns = cfg_.repl_retry.deadline_ns != 0
                                      ? cfg_.repl_retry.deadline_ns
                                      : 200'000'000;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(budget_ns);
  std::unique_lock lock(repl_mu_);
  while (repl_acked_.load(std::memory_order_relaxed) < target &&
         repl_connected_.load(std::memory_order_relaxed) && running_.load()) {
    if (repl_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      fabric_.stats().add("dafs.repl_barrier_timeouts");
      return true;
    }
  }
  if (repl_acked_.load(std::memory_order_relaxed) >= target) return true;
  // The wait ended early: connection lost or shutdown. A crash in progress
  // means the op must die unacknowledged; otherwise degrade and answer.
  if (crash_pending_.load() || !running_.load()) return false;
  fabric_.stats().add("dafs.repl_degraded_responses");
  return true;
}

// ---------------------------------------------------------------------------
// Quorum (Raft-style) replication
// ---------------------------------------------------------------------------

std::uint64_t Server::leader_hint() const {
  const std::int32_t lm = leader_member_.load(std::memory_order_relaxed);
  return lm >= 0 ? static_cast<std::uint64_t>(lm) + 1 : 0;
}

std::uint64_t Server::term_at_locked(std::uint64_t off) const {
  // Term of the byte *preceding* `off` — the "term of the entry at
  // prevLogIndex" in Raft, with byte offsets as log indices. The empty
  // prefix (off == 0) is term 0 by convention, as are any bytes predating
  // the first kTermMark.
  std::uint64_t term = 0;
  for (const TermRun& r : term_runs_) {
    if (r.start_off < off) {
      term = r.term;
    } else {
      break;
    }
  }
  return term;
}

void Server::rebuild_term_runs_locked() {
  term_runs_.clear();
  store_->journal_log().scan([this](std::uint64_t off, fstore::RecType type,
                                    std::span<const std::byte> payload) {
    if (type != fstore::RecType::kTermMark) return;
    fstore::RecReader r(payload);
    const std::uint64_t term = r.u64();
    if (r.ok()) term_runs_.push_back(TermRun{off, term});
  });
}

void Server::reset_election_deadline_locked() {
  const std::uint64_t lo = cfg_.election_timeout_min_ms;
  const std::uint64_t hi = std::max(cfg_.election_timeout_max_ms, lo + 1);
  election_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(raft_rng_->range(lo, hi));
}

void Server::become_follower_locked(std::uint64_t term) {
  const std::uint64_t cur = epoch_.load(std::memory_order_relaxed);
  if (term > cur) {
    epoch_.store(term, std::memory_order_relaxed);
    voted_for_ = kNoVote;
    leader_member_.store(-1, std::memory_order_relaxed);
  }
  const Role r = role_.load(std::memory_order_acquire);
  if (r == Role::kPrimary || r == Role::kCandidate) {
    if (r == Role::kPrimary) {
      fabric_.stats().add("dafs.leader_stepdowns");
      leader_member_.store(-1, std::memory_order_relaxed);
    }
    role_.store(Role::kStandby, std::memory_order_release);
    // Barrier waiters must re-check: their ops can no longer be committed
    // by this member and will be demoted to kNotLeader.
    raft_cv_.notify_all();
  }
}

void Server::run_election_locked() {
  const std::uint64_t term = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(term, std::memory_order_relaxed);
  voted_for_ = cfg_.member_id;
  votes_ = 1;  // own vote
  votes_term_ = term;
  leader_member_.store(-1, std::memory_order_relaxed);
  role_.store(Role::kCandidate, std::memory_order_release);
  Actor* actor = Actor::current();
  election_started_ = actor != nullptr ? actor->now() : 0;
  reset_election_deadline_locked();
  fabric_.stats().add("dafs.elections_started");
  raft_cv_.notify_all();
  // A single-member group is its own majority.
  if (cfg_.quorum_group.size() == 1) become_leader_locked();
}

void Server::on_vote_granted(std::uint64_t term) {
  std::lock_guard lock(raft_mu_);
  if (epoch_.load(std::memory_order_relaxed) != term || votes_term_ != term ||
      role_.load(std::memory_order_acquire) != Role::kCandidate) {
    return;
  }
  ++votes_;
  const auto majority =
      static_cast<std::uint32_t>(cfg_.quorum_group.size() / 2 + 1);
  if (votes_ >= majority) become_leader_locked();
}

void Server::become_leader_locked() {
  const std::uint64_t term = epoch_.load(std::memory_order_relaxed);
  fabric_.stats().add("dafs.elections_won");
  leader_member_.store(static_cast<std::int32_t>(cfg_.member_id),
                       std::memory_order_relaxed);
  // The election span the bench's unavailability analysis keys on: start of
  // candidacy to leadership. Rooted — elections happen outside any request.
  sim::Tracer& tracer = fabric_.trace();
  Actor* actor = Actor::current();
  if (tracer.enabled()) {
    sim::Span s;
    s.trace_id = tracer.new_id();
    s.span_id = tracer.new_id();
    s.t_start = election_started_;
    s.t_end = actor != nullptr ? std::max(actor->now(), election_started_)
                               : election_started_;
    s.layer = "dafs.server";
    s.name = "raft.election";
    char attrs[64];
    std::snprintf(attrs, sizeof(attrs), "\"term\":%llu,\"member\":%u",
                  static_cast<unsigned long long>(term), cfg_.member_id);
    s.attrs = attrs;
    tracer.record(std::move(s));
  }
  // Open this term's run in the replicated byte log. This is Raft's no-op
  // entry: once a majority holds the mark, every prior-term byte before it
  // is committed at *this* term, so advance_commit's current-term gate can
  // pass. It also fences: any ex-leader's unreplicated suffix now conflicts
  // at this boundary and will be truncated when it rejoins.
  fstore::RecWriter w;
  w.u64(term);
  store_->journal_log().append(fstore::RecType::kTermMark, w.out());
  rebuild_term_runs_locked();
  // Materialize the replicated journal into the live image and drop every
  // piece of client-facing volatile state — a leadership win is a restart
  // from the journal's point of view. Sessions from a previous stint (or
  // from clients that probed this member while it followed) are severed so
  // clients re-enter through connect/resume against the rebuilt image.
  {
    std::lock_guard lock(sessions_mu_);
    for (auto& sess : sessions_) {
      if (sess->closing) continue;
      sess->closing = true;
      {
        std::lock_guard rlock(sess->replay_mu);
        sess->replay.clear();
        sess->replay_bytes = 0;
      }
      if (sess->vi && sess->vi->state() != via::Vi::State::kIdle) {
        sess->vi->disconnect();
      }
    }
    by_vi_.clear();
  }
  locks_.clear();
  {
    // Delegations issued while (or before) this member last led are void —
    // stale holders fence by id mismatch against this incarnation.
    std::lock_guard dlock(deleg_mu_);
    delegs_.clear();
    openers_.clear();
    session_opens_.clear();
  }
  store_->crash();
  {
    std::lock_guard lock(sessions_mu_);
    next_session_ =
        std::max(next_session_, store_->server_state_watermark() + 1024);
  }
  grace_until_.store((std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(cfg_.grace_period_ms))
                         .time_since_epoch()
                         .count());
  const std::uint64_t jsize = store_->journal_size();
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < cfg_.quorum_group.size(); ++p) {
    match_off_[p] = 0;
    next_off_[p] = jsize;
    peer_heard_[p] = now;
  }
  role_.store(Role::kPrimary, std::memory_order_release);
  fabric_.stats().add("dafs.promotions");
  raft_cv_.notify_all();
}

void Server::advance_commit_locked() {
  if (role_.load(std::memory_order_acquire) != Role::kPrimary) return;
  std::vector<std::uint64_t> offs;
  offs.reserve(cfg_.quorum_group.size());
  offs.push_back(store_->journal_size());  // self
  for (std::uint32_t p = 0; p < cfg_.quorum_group.size(); ++p) {
    if (p == cfg_.member_id) continue;
    offs.push_back(match_off_[p]);
  }
  std::sort(offs.begin(), offs.end(), std::greater<>());
  // Largest offset held by a majority; commit only when the bytes at its
  // boundary were appended under the current term (Raft's commit gate — a
  // majority-held prior-term suffix may still be overwritten).
  const std::uint64_t cand = offs[cfg_.quorum_group.size() / 2];
  if (cand > commit_off_.load(std::memory_order_relaxed) &&
      term_at_locked(cand) == epoch_.load(std::memory_order_relaxed)) {
    commit_off_.store(cand, std::memory_order_relaxed);
    raft_cv_.notify_all();
  }
}

Server::QuorumAck Server::quorum_commit_barrier() {
  const std::uint64_t target = store_->journal_size();
  const std::uint64_t budget_ns = cfg_.repl_retry.deadline_ns != 0
                                      ? cfg_.repl_retry.deadline_ns
                                      : 200'000'000;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(budget_ns);
  std::unique_lock lock(raft_mu_);
  advance_commit_locked();   // single-member groups commit on the spot
  raft_cv_.notify_all();     // kick idle per-peer senders out of their
                             // heartbeat wait so the new bytes ship now
  for (;;) {
    if (crash_pending_.load() || !running_.load()) return QuorumAck::kDrop;
    if (role_.load(std::memory_order_acquire) != Role::kPrimary) {
      return QuorumAck::kNotLeader;
    }
    if (commit_off_.load(std::memory_order_relaxed) >= target) {
      return QuorumAck::kOk;
    }
    if (raft_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      fabric_.stats().add("dafs.quorum_barrier_timeouts");
      return crash_pending_.load() ? QuorumAck::kDrop : QuorumAck::kNotLeader;
    }
  }
}

void Server::quorum_tick_loop() {
  Actor actor("dafs-raft-tick", &fabric_.node(node_));
  ActorScope scope(actor);
  // Leader lease: step down once a majority of the group has been silent
  // for this long — a partitioned ex-leader stops acknowledging strictly
  // before a new leader (elected after one election timeout) can diverge.
  const auto lease =
      std::chrono::milliseconds(2 * cfg_.election_timeout_max_ms);
  while (running_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (crash_pending_.load()) {
      std::lock_guard lock(raft_mu_);
      reset_election_deadline_locked();  // the dead start no elections
      continue;
    }
    std::lock_guard lock(raft_mu_);
    const Role r = role_.load(std::memory_order_acquire);
    if (r == Role::kPrimary) {
      const auto now = std::chrono::steady_clock::now();
      std::uint32_t heard = 1;  // self
      for (std::uint32_t p = 0; p < cfg_.quorum_group.size(); ++p) {
        if (p == cfg_.member_id) continue;
        if (peer_heard_[p] != std::chrono::steady_clock::time_point{} &&
            now - peer_heard_[p] < lease) {
          ++heard;
        }
      }
      if (heard < cfg_.quorum_group.size() / 2 + 1) {
        fabric_.stats().add("dafs.leader_lease_expirations");
        become_follower_locked(epoch_.load(std::memory_order_relaxed));
        reset_election_deadline_locked();
      }
    } else if (r == Role::kStandby || r == Role::kCandidate) {
      if (std::chrono::steady_clock::now() >= election_deadline_) {
        run_election_locked();
      }
    }
  }
}

void Server::quorum_listener_loop() {
  Actor actor("dafs-raft-listen", &fabric_.node(node_));
  ActorScope scope(actor);
  // The listener lives for the whole server lifetime — a crashed member
  // stops *answering* (handlers check crash_pending_), not listening, and
  // rejoins the moment it restarts.
  via::Listener listener(nic_, cfg_.quorum_group[cfg_.member_id]);
  while (running_.load()) {
    // Declared before the VI so the exit paths destroy the VI first: its
    // destructor flushes still-posted recv descriptors, which live inside
    // these buffers.
    std::vector<std::unique_ptr<MsgBuf>> bufs;
    auto vi = std::make_unique<via::Vi>(nic_, via::ViAttrs{});
    // Pre-arm the connection before accepting (legal on an idle VI), so a
    // vote request racing the handshake finds its buffers posted.
    bool armed = true;
    for (int i = 0; i < 4 && armed; ++i) {
      auto b = std::make_unique<MsgBuf>();
      b->mem.resize(kReplBufSize);
      b->handle = nic_.register_memory(b->mem.data(), b->mem.size(), ptag_, {});
      b->desc.segs = {DataSegment{
          b->mem.data(), b->handle, static_cast<std::uint32_t>(b->mem.size())}};
      armed = vi->post_recv(b->desc) == via::Status::kSuccess;
      bufs.push_back(std::move(b));
    }
    if (!armed) break;  // NIC out of resources; the member goes deaf
    bool accepted = false;
    while (running_.load()) {
      if (listener.accept(*vi, kPollPeriod) == via::Status::kSuccess) {
        accepted = true;
        break;
      }
    }
    if (!accepted) break;
    // Reap handlers whose connections already died: join them now (instant —
    // `done` is only set on the way out) so churny peers can't pile up
    // finished-but-unjoined threads between here and stop().
    std::vector<std::unique_ptr<ConnSlot>> finished;
    {
      std::lock_guard qlock(quorum_mu_);
      for (auto& slot : quorum_conn_threads_) {
        if (slot->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(slot));
        }
      }
      std::erase_if(quorum_conn_threads_,
                    [](const std::unique_ptr<ConnSlot>& s) { return !s; });
    }
    for (auto& slot : finished) {
      if (slot->thread.joinable()) slot->thread.join();
    }
    auto slot = std::make_unique<ConnSlot>();
    ConnSlot* raw = slot.get();
    std::lock_guard qlock(quorum_mu_);
    quorum_conn_vis_.push_back(vi.get());
    raw->thread = std::thread(
        [this, raw, v = std::move(vi), bs = std::move(bufs)]() mutable {
          pthread_setname_np(pthread_self(), "dafs-raft-h");
          quorum_conn_loop(std::move(v), std::move(bs));
          raw->done.store(true, std::memory_order_release);
        });
    quorum_conn_threads_.push_back(std::move(slot));
  }
}

void Server::quorum_conn_loop(std::unique_ptr<via::Vi> vi,
                              std::vector<std::unique_ptr<MsgBuf>> bufs) {
  Actor actor("dafs-raft-conn", &fabric_.node(node_));
  ActorScope scope(actor);
  // Sized for the largest reply: a kBlockData response carrying one whole
  // store chunk after the header (everything else is header-only).
  std::vector<std::byte> resp_buf(sizeof(ReplHeader) + cfg_.store.chunk_size);
  const via::MemHandle resp_h =
      nic_.register_memory(resp_buf.data(), resp_buf.size(), ptag_, {});
  // Sends the header plus h.len payload bytes the caller already placed at
  // resp_buf + sizeof(ReplHeader).
  const auto send_resp = [&](const ReplHeader& h) {
    std::memcpy(resp_buf.data(), &h, sizeof(h));
    Descriptor d;
    d.op = via::Opcode::kSend;
    d.segs = {DataSegment{resp_buf.data(), resp_h,
                          static_cast<std::uint32_t>(sizeof(h) + h.len)}};
    if (vi->post_send(d) != via::Status::kSuccess) return false;
    Descriptor* done = nullptr;
    return vi->send_wait(done, kSendWait) == via::Status::kSuccess &&
           done->status == DescStatus::kSuccess;
  };
  // Re-silvering accounting: one span per catch-up burst, opened when this
  // follower starts importing while behind the leader's commit (or had a
  // divergent suffix truncated), closed when it has caught up.
  bool resilver_open = false;
  sim::Time resilver_t0 = 0;
  std::uint64_t resilver_span_bytes = 0;
  sim::Tracer& tracer = fabric_.trace();
  const auto close_resilver = [&] {
    if (!resilver_open) return;
    resilver_open = false;
    fabric_.stats().add("dafs.resilvers");
    if (!tracer.enabled()) return;
    sim::Span s;
    s.trace_id = tracer.new_id();
    s.span_id = tracer.new_id();
    s.t_start = resilver_t0;
    s.t_end = std::max(actor.now(), resilver_t0);
    s.layer = "dafs.server";
    s.name = "raft.resilver";
    char attrs[64];
    std::snprintf(attrs, sizeof(attrs), "\"bytes\":%llu,\"member\":%u",
                  static_cast<unsigned long long>(resilver_span_bytes),
                  cfg_.member_id);
    s.attrs = attrs;
    tracer.record(std::move(s));
  };

  while (running_.load()) {
    Descriptor* d = nullptr;
    const via::Status st = vi->recv_wait(d, std::chrono::milliseconds(100));
    if (st == via::Status::kTimeout) continue;
    if (st != via::Status::kSuccess || d->status != DescStatus::kSuccess) break;
    if (crash_pending_.load()) break;  // the dead neither vote nor ack
    MsgBuf* b = nullptr;
    for (auto& cand : bufs) {
      if (&cand->desc == d) {
        b = cand.get();
        break;
      }
    }
    assert(b != nullptr);
    ReplHeader h;
    std::memcpy(&h, b->mem.data(), sizeof(h));
    if (h.magic != kReplMagic) break;
    ReplHeader r;
    r.member = cfg_.member_id;
    bool progressed = false;   // imported or truncated bytes this message
    bool caught_up = false;    // at/past the leader's commit afterwards
    std::uint64_t moved = 0;   // bytes imported (catch-up volume)
    if (h.op == ReplOp::kVoteReq) {
      r.op = ReplOp::kVoteResp;
      std::lock_guard lock(raft_mu_);
      if (h.epoch > epoch_.load(std::memory_order_relaxed)) {
        become_follower_locked(h.epoch);
      }
      const std::uint64_t term = epoch_.load(std::memory_order_relaxed);
      const std::uint64_t my_size = store_->journal_size();
      const std::uint64_t my_last = term_at_locked(my_size);
      // Raft's up-to-date check over (last term, byte length).
      const bool up_to_date =
          h.prev_term > my_last ||
          (h.prev_term == my_last && h.offset >= my_size);
      const bool grant = h.epoch == term && up_to_date &&
                         (voted_for_ == kNoVote || voted_for_ == h.member);
      if (grant) {
        voted_for_ = h.member;
        reset_election_deadline_locked();
        fabric_.stats().add("dafs.votes_granted");
      }
      r.status = grant ? 1 : 0;
      r.epoch = term;
    } else if (h.op == ReplOp::kAppend) {
      r.op = ReplOp::kAppendResp;
      std::lock_guard lock(raft_mu_);
      const std::uint64_t cur = epoch_.load(std::memory_order_relaxed);
      if (h.epoch < cur) {
        // Stale leader: our term fences it (it steps down on this reply).
        r.status = 0;
        r.epoch = cur;
        r.offset = store_->journal_size();
      } else {
        become_follower_locked(h.epoch);  // also: candidate yields to leader
        leader_member_.store(static_cast<std::int32_t>(h.member),
                             std::memory_order_relaxed);
        reset_election_deadline_locked();
        r.epoch = epoch_.load(std::memory_order_relaxed);
        const std::uint64_t my_size = store_->journal_size();
        if (h.offset > my_size) {
          // Hole: we are shorter than the leader thinks. Back it off to our
          // end.
          r.status = 0;
          r.offset = my_size;
          fabric_.stats().add("dafs.append_rejects");
        } else if (term_at_locked(h.offset) != h.prev_term) {
          // Divergent at the boundary: skip back past our whole conflicting
          // term run so the leader retries from before it.
          std::uint64_t hint = 0;
          for (const TermRun& run : term_runs_) {
            if (run.start_off < h.offset) {
              hint = run.start_off;
            } else {
              break;
            }
          }
          r.status = 0;
          r.offset = hint;
          fabric_.stats().add("dafs.append_rejects");
        } else {
          const bool behind = my_size < h.commit;
          if (h.offset < my_size) {
            // Divergent suffix (our unreplicated bytes from a deposed
            // stint): cut back to the leader's matching prefix.
            const std::uint64_t dropped =
                store_->journal_log().truncate(h.offset);
            fabric_.stats().add("dafs.resilver_truncated_bytes", dropped);
            progressed = true;
          }
          if (h.len > 0) {
            const auto res = store_->journal_log().import(std::span(
                b->mem.data() + sizeof(ReplHeader), std::size_t{h.len}));
            moved = res.accepted;
            progressed = progressed || res.accepted > 0;
          }
          if (progressed) rebuild_term_runs_locked();
          const std::uint64_t new_size = store_->journal_size();
          const std::uint64_t new_commit = std::min(h.commit, new_size);
          if (new_commit > commit_off_.load(std::memory_order_relaxed)) {
            commit_off_.store(new_commit, std::memory_order_relaxed);
          }
          r.status = 1;
          r.offset = new_size;
          caught_up = new_size >= h.commit;
          progressed = progressed && behind;
        }
      }
    } else if (h.op == ReplOp::kBlockFetch) {
      // Scrub repair: the leader asks for a verified copy of one block. A
      // follower's live image is only materialized on promotion, so replay
      // the imported journal first (one replay per fetch — repairs are
      // rare), then serve the block only when it passes its own checksum: a
      // peer whose copy is itself rotten answers status=0 rather than
      // spreading the rot.
      r.op = ReplOp::kBlockData;
      r.epoch = epoch_.load(std::memory_order_relaxed);
      r.offset = h.offset;
      r.commit = h.commit;
      r.status = 0;
      std::lock_guard lock(raft_mu_);
      const std::size_t want =
          std::min<std::size_t>(h.len, cfg_.store.chunk_size);
      if (role_.load(std::memory_order_acquire) == Role::kStandby &&
          want > 0 && store_->crash() == fstore::Errc::kOk) {
        auto got = store_->pread(
            h.commit, h.offset,
            std::span<std::byte>(resp_buf.data() + sizeof(ReplHeader), want),
            /*verify=*/true);
        if (got.ok()) {
          r.status = 1;
          r.len = static_cast<std::uint32_t>(got.value());
          fabric_.stats().add("dafs.scrub_blocks_served");
        }
      }
    } else {
      break;  // pair-protocol op on a quorum channel: not ours
    }
    if (progressed) {
      if (!resilver_open) {
        resilver_open = true;
        resilver_t0 = actor.now();
        resilver_span_bytes = 0;
      }
      resilver_span_bytes += moved;
      resilver_bytes_.fetch_add(moved, std::memory_order_relaxed);
    }
    if (caught_up) close_resilver();
    b->desc.segs = {DataSegment{b->mem.data(), b->handle,
                                static_cast<std::uint32_t>(b->mem.size())}};
    if (!send_resp(r) || vi->post_recv(b->desc) != via::Status::kSuccess) {
      break;
    }
  }
  close_resilver();
  {
    std::lock_guard qlock(quorum_mu_);
    quorum_conn_vis_.erase(
        std::remove(quorum_conn_vis_.begin(), quorum_conn_vis_.end(), vi.get()),
        quorum_conn_vis_.end());
  }
  vi->disconnect();
}

void Server::quorum_sender_loop(std::uint32_t peer) {
  Actor actor("dafs-raft-send" + std::to_string(peer), &fabric_.node(node_));
  ActorScope scope(actor);
  std::vector<std::byte> chunk(kReplBufSize);
  via::MemHandle chunk_h =
      nic_.register_memory(chunk.data(), chunk.size(), ptag_, {});
  // A single journal record larger than the default chunk (a max-size client
  // write plus its header) must still ship whole; grow and re-register.
  const auto reserve_chunk = [&](std::size_t need) {
    if (need <= chunk.size()) return;
    [[maybe_unused]] const via::Status ds = nic_.deregister_memory(chunk_h);
    assert(ds == via::Status::kSuccess);
    chunk.assign(need, std::byte{});
    chunk_h = nic_.register_memory(chunk.data(), chunk.size(), ptag_, {});
  };
  constexpr std::size_t kRespBufs = 4;
  std::array<MsgBuf, kRespBufs> resps;
  for (auto& a : resps) {
    a.mem.resize(sizeof(ReplHeader));
    a.handle = nic_.register_memory(a.mem.data(), a.mem.size(), ptag_, {});
  }
  std::unique_ptr<via::Vi> vi;
  sim::Rng jitter(cfg_.repl_retry.jitter_seed ^
                  (0x9e3779b97f4a7c15ULL * (peer + 1)));
  std::uint64_t backoff_ms = 1;
  std::uint64_t last_vote_term = 0;

  // Shared connect/exchange backoff: escalates on every failed attempt
  // (unreachable peer OR a broken exchange on a live connection) and resets
  // only on a completed request/response. Without pacing the exchange
  // failures too, a persistent fault turns the loop into a reconnect storm —
  // each cycle costs the peer an accepted VI and a handler thread.
  const auto backoff = [&] {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_ms + jitter.below(backoff_ms + 1)));
    backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 50);
  };
  const auto drop_conn = [&] {
    if (vi) {
      vi->disconnect();
      vi.reset();
    }
  };
  const auto post_resp_recvs = [&] {
    bool ok = true;
    for (auto& a : resps) {
      a.desc = Descriptor{};
      a.desc.segs = {DataSegment{a.mem.data(), a.handle,
                                 static_cast<std::uint32_t>(a.mem.size())}};
      ok = ok && vi->post_recv(a.desc) == via::Status::kSuccess;
    }
    return ok;
  };
  const auto send_msg = [&](const ReplHeader& h,
                            std::span<const std::byte> payload) {
    reserve_chunk(sizeof(h) + payload.size());
    std::memcpy(chunk.data(), &h, sizeof(h));
    if (!payload.empty()) {
      std::memcpy(chunk.data() + sizeof(h), payload.data(), payload.size());
    }
    Descriptor d;
    d.op = via::Opcode::kSend;
    d.segs = {DataSegment{
        chunk.data(), chunk_h,
        static_cast<std::uint32_t>(sizeof(h) + payload.size())}};
    if (vi->post_send(d) != via::Status::kSuccess) return false;
    Descriptor* done = nullptr;
    if (vi->send_wait(done, kSendWait) != via::Status::kSuccess) return false;
    return done->status == DescStatus::kSuccess;
  };
  const auto wait_resp = [&](ReplHeader& out) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    for (;;) {
      Descriptor* d = nullptr;
      const via::Status st = vi->recv_wait(d, std::chrono::milliseconds(20));
      if (st == via::Status::kTimeout) {
        if (!running_.load() || crash_pending_.load() ||
            std::chrono::steady_clock::now() >= deadline) {
          return false;
        }
        continue;
      }
      if (st != via::Status::kSuccess || d->status != DescStatus::kSuccess) {
        return false;
      }
      MsgBuf* a = nullptr;
      for (auto& cand : resps) {
        if (&cand.desc == d) {
          a = &cand;
          break;
        }
      }
      assert(a != nullptr);
      std::memcpy(&out, a->mem.data(), sizeof(out));
      a->desc.segs = {DataSegment{a->mem.data(), a->handle,
                                  static_cast<std::uint32_t>(a->mem.size())}};
      const bool reposted = vi->post_recv(a->desc) == via::Status::kSuccess;
      return out.magic == kReplMagic && reposted;
    }
  };

  while (running_.load()) {
    if (crash_pending_.load()) {
      drop_conn();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const Role r = role_.load(std::memory_order_acquire);
    const std::uint64_t term = epoch_.load(std::memory_order_relaxed);
    const bool want_vote = r == Role::kCandidate && last_vote_term < term;
    if (!want_vote && r != Role::kPrimary) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (!vi) {
      auto v = std::make_unique<via::Vi>(nic_, via::ViAttrs{});
      if (nic_.connect(*v, cfg_.quorum_group[peer],
                       std::chrono::milliseconds(200)) !=
          via::Status::kSuccess) {
        backoff();
        continue;
      }
      vi = std::move(v);
      if (!post_resp_recvs()) {
        drop_conn();
        backoff();
        continue;
      }
    }
    if (want_vote) {
      ReplHeader h;
      h.op = ReplOp::kVoteReq;
      h.epoch = term;
      h.member = cfg_.member_id;
      {
        std::lock_guard lock(raft_mu_);
        h.offset = store_->journal_size();
        h.prev_term = term_at_locked(h.offset);
      }
      ReplHeader resp;
      if (!send_msg(h, {}) || !wait_resp(resp)) {
        drop_conn();
        backoff();
        continue;
      }
      backoff_ms = 1;
      last_vote_term = term;
      if (resp.op == ReplOp::kVoteResp) {
        if (resp.epoch > term) {
          std::lock_guard lock(raft_mu_);
          become_follower_locked(resp.epoch);
        } else if (resp.status == 1) {
          on_vote_granted(term);
        }
      }
      continue;
    }
    // Leader: ship what the peer is missing, or an empty heartbeat.
    std::uint64_t next = 0;
    std::uint64_t prev_term = 0;
    std::uint64_t commit = 0;
    {
      std::lock_guard lock(raft_mu_);
      if (role_.load(std::memory_order_acquire) != Role::kPrimary ||
          epoch_.load(std::memory_order_relaxed) != term) {
        continue;
      }
      next = std::min(next_off_[peer], store_->journal_size());
      prev_term = term_at_locked(next);
      commit = commit_off_.load(std::memory_order_relaxed);
    }
    std::vector<std::byte> payload;
    if (next < store_->journal_size()) {
      payload =
          store_->journal_log().read(next, kReplBufSize - sizeof(ReplHeader));
    }
    ReplHeader h;
    h.op = ReplOp::kAppend;
    h.epoch = term;
    h.offset = next;
    h.prev_term = prev_term;
    h.commit = commit;
    h.member = cfg_.member_id;
    h.len = static_cast<std::uint32_t>(payload.size());
    ReplHeader resp;
    if (!send_msg(h, payload) || !wait_resp(resp) ||
        resp.op != ReplOp::kAppendResp) {
      drop_conn();
      backoff();
      continue;
    }
    backoff_ms = 1;
    bool in_sync = false;
    {
      std::lock_guard lock(raft_mu_);
      peer_heard_[peer] = std::chrono::steady_clock::now();
      if (resp.epoch > epoch_.load(std::memory_order_relaxed)) {
        become_follower_locked(resp.epoch);
        continue;
      }
      if (role_.load(std::memory_order_acquire) == Role::kPrimary &&
          epoch_.load(std::memory_order_relaxed) == term) {
        if (resp.status == 1) {
          match_off_[peer] = resp.offset;
          next_off_[peer] = resp.offset;
          fabric_.stats().add("dafs.quorum_shipped_bytes", h.len);
          advance_commit_locked();
          in_sync = resp.offset >= store_->journal_size();
        } else {
          // Conflict hint: back off (never forward) and retry immediately.
          next_off_[peer] = std::min(resp.offset, next);
          fabric_.stats().add("dafs.append_backoffs");
        }
      }
    }
    if (in_sync) {
      // Nothing to ship: heartbeat cadence, but wake instantly when the
      // commit barrier signals fresh journal bytes.
      std::unique_lock lock(raft_mu_);
      raft_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.heartbeat_ms));
    }
  }
  drop_conn();
}

// ---------------------------------------------------------------------------
// Background scrub
// ---------------------------------------------------------------------------

void Server::scrub_loop() {
  Actor actor("dafs-scrub", &fabric_.node(node_));
  ActorScope scope(actor);
  sim::Tracer& tracer = fabric_.trace();
  fstore::FileStore::ScrubCursor cursor;
  bool pass_open = false;
  sim::Time pass_t0 = 0;
  std::uint64_t pass_checked = 0;
  std::uint64_t pass_bad = 0;
  while (running_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.scrub_interval_ms));
    if (!running_.load()) break;
    // Only a serving filer scrubs: a crashed one has no live image, and in a
    // quorum a follower's image is only materialized on promotion — the
    // leader scrubs and repairs from its followers' verified copies.
    if (crash_pending_.load() ||
        role_.load(std::memory_order_acquire) != Role::kPrimary) {
      continue;
    }
    if (!pass_open) {
      pass_open = true;
      pass_t0 = actor.now();
      pass_checked = 0;
      pass_bad = 0;
    }
    const fstore::FileStore::ScrubStep step =
        store_->scrub_step(&cursor, cfg_.scrub_chunks_per_step);
    pass_checked += step.checked;
    if (step.checked > 0) {
      fabric_.stats().add("dafs.scrub_blocks_verified", step.checked);
    }
    for (const fstore::FileStore::ScrubBlock& bad : step.bad) {
      ++pass_bad;
      fabric_.stats().add("dafs.scrub_corruptions");
      if (scrub_repair_block(bad.ino, bad.chunk)) {
        fabric_.stats().add("dafs.scrub_repairs");
      } else {
        // No healthy copy anywhere: the block stays rotted, and verified
        // reads keep demoting it to kCorrupt — a read error, never silent
        // bad bytes.
        fabric_.stats().add("dafs.scrub_repair_failed");
      }
    }
    if (step.wrapped) {
      scrub_passes_.fetch_add(1, std::memory_order_relaxed);
      if (tracer.enabled()) {
        sim::Span sp;
        sp.trace_id = tracer.new_id();
        sp.span_id = tracer.new_id();
        sp.t_start = pass_t0;
        sp.t_end = std::max(actor.now(), pass_t0);
        sp.layer = "dafs.server";
        sp.name = "scrub.pass";
        char attrs[96];
        std::snprintf(attrs, sizeof(attrs), "\"checked\":%llu,\"bad\":%llu",
                      static_cast<unsigned long long>(pass_checked),
                      static_cast<unsigned long long>(pass_bad));
        sp.attrs = attrs;
        tracer.record(std::move(sp));
      }
      pass_open = false;
    }
  }
}

bool Server::scrub_repair_block(fstore::Ino ino, std::uint64_t chunk) {
  if (!quorum() || cfg_.quorum_group.size() < 2) return false;
  const std::size_t chunk_size = cfg_.store.chunk_size;
  std::vector<std::byte> data_buf(sizeof(ReplHeader) + chunk_size);
  const via::MemHandle data_h =
      nic_.register_memory(data_buf.data(), data_buf.size(), ptag_, {});
  std::vector<std::byte> req_buf(sizeof(ReplHeader));
  const via::MemHandle req_h =
      nic_.register_memory(req_buf.data(), req_buf.size(), ptag_, {});
  sim::Rng jitter(cfg_.repl_retry.jitter_seed ^
                  (0x9e3779b97f4a7c15ULL * (ino + chunk + 1)));
  bool repaired = false;
  const int attempts = std::max(1, cfg_.repl_retry.attempts);
  std::uint64_t backoff_ns = std::max<std::uint64_t>(cfg_.repl_retry.backoff_ns,
                                                     1);
  for (int a = 0;
       a < attempts && !repaired && running_.load() && !crash_pending_.load();
       ++a) {
    if (a > 0) {
      // Capped, jittered exponential backoff between sweeps of the group —
      // real time, like the rest of the scrubber.
      const std::uint64_t ns =
          std::min(backoff_ns, cfg_.repl_retry.backoff_cap_ns);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(ns / 2 + jitter.below(ns / 2 + 1)));
      backoff_ns = std::min(backoff_ns * 2, cfg_.repl_retry.backoff_cap_ns);
    }
    for (std::uint32_t peer = 0;
         peer < cfg_.quorum_group.size() && !repaired; ++peer) {
      if (peer == cfg_.member_id) continue;
      via::Vi vi(nic_, via::ViAttrs{});
      Descriptor recv_d;
      recv_d.segs = {DataSegment{data_buf.data(), data_h,
                                 static_cast<std::uint32_t>(data_buf.size())}};
      if (vi.post_recv(recv_d) != via::Status::kSuccess) continue;
      if (nic_.connect(vi, cfg_.quorum_group[peer],
                       std::chrono::milliseconds(200)) !=
          via::Status::kSuccess) {
        continue;
      }
      ReplHeader req;
      req.op = ReplOp::kBlockFetch;
      req.epoch = epoch_.load(std::memory_order_relaxed);
      req.offset = chunk * chunk_size;
      req.len = static_cast<std::uint32_t>(chunk_size);
      req.commit = ino;
      req.member = cfg_.member_id;
      std::memcpy(req_buf.data(), &req, sizeof(req));
      Descriptor d;
      d.op = via::Opcode::kSend;
      d.segs = {DataSegment{req_buf.data(), req_h,
                            static_cast<std::uint32_t>(sizeof(req))}};
      bool sent = vi.post_send(d) == via::Status::kSuccess;
      if (sent) {
        Descriptor* done = nullptr;
        sent = vi.send_wait(done, kSendWait) == via::Status::kSuccess &&
               done->status == DescStatus::kSuccess;
      }
      ReplHeader resp{};
      bool got = false;
      if (sent) {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
        while (running_.load() && !crash_pending_.load()) {
          Descriptor* rd = nullptr;
          const via::Status st = vi.recv_wait(rd, std::chrono::milliseconds(20));
          if (st == via::Status::kTimeout) {
            if (std::chrono::steady_clock::now() >= deadline) break;
            continue;
          }
          if (st == via::Status::kSuccess && rd->status == DescStatus::kSuccess) {
            std::memcpy(&resp, data_buf.data(), sizeof(resp));
            got = resp.magic == kReplMagic && resp.op == ReplOp::kBlockData;
          }
          break;
        }
      }
      vi.disconnect();
      if (!got || resp.status != 1) continue;
      const std::size_t len = std::min<std::size_t>(resp.len, chunk_size);
      if (store_->repair_chunk(
              ino, chunk,
              {data_buf.data() + sizeof(ReplHeader), len}) ==
          fstore::Errc::kOk) {
        repaired = true;
      }
    }
  }
  [[maybe_unused]] const via::Status d1 = nic_.deregister_memory(data_h);
  [[maybe_unused]] const via::Status d2 = nic_.deregister_memory(req_h);
  return repaired;
}

void Server::repl_sender_loop() {
  ActorScope scope(*repl_actor_);
  // One registered chunk buffer (header + journal bytes) and a small ring of
  // receive buffers for the stop-and-wait acks.
  std::vector<std::byte> chunk(kReplBufSize);
  via::MemHandle chunk_h =
      nic_.register_memory(chunk.data(), chunk.size(), ptag_, {});
  const auto reserve_chunk = [&](std::size_t need) {
    if (need <= chunk.size()) return;
    [[maybe_unused]] const via::Status ds = nic_.deregister_memory(chunk_h);
    assert(ds == via::Status::kSuccess);
    chunk.assign(need, std::byte{});
    chunk_h = nic_.register_memory(chunk.data(), chunk.size(), ptag_, {});
  };
  constexpr std::size_t kAckBufs = 4;
  std::array<MsgBuf, kAckBufs> acks;
  for (auto& a : acks) {
    a.mem.resize(sizeof(ReplHeader));
    a.handle = nic_.register_memory(a.mem.data(), a.mem.size(), ptag_, {});
  }
  sim::Rng jitter(cfg_.repl_retry.jitter_seed);
  std::uint64_t reconnect_backoff_ms = 1;

  const auto post_ack_recv = [&](MsgBuf& a) {
    a.desc = Descriptor{};
    a.desc.segs = {DataSegment{a.mem.data(), a.handle,
                               static_cast<std::uint32_t>(a.mem.size())}};
    return repl_vi_->post_recv(a.desc) == via::Status::kSuccess;
  };
  // Reap one ack (or hello-ack); false on channel death / shutdown.
  const auto wait_ack = [&](ReplHeader& out_hdr) {
    for (;;) {
      Descriptor* d = nullptr;
      const via::Status st =
          repl_vi_->recv_wait(d, std::chrono::milliseconds(100));
      if (st == via::Status::kTimeout) {
        if (!running_.load() || crash_pending_.load()) return false;
        continue;
      }
      if (st != via::Status::kSuccess || d->status != DescStatus::kSuccess) {
        return false;
      }
      MsgBuf* a = nullptr;
      for (auto& b : acks) {
        if (&b.desc == d) {
          a = &b;
          break;
        }
      }
      assert(a != nullptr);
      std::memcpy(&out_hdr, a->mem.data(), sizeof(out_hdr));
      const bool reposted = post_ack_recv(*a);
      return out_hdr.magic == kReplMagic && reposted;
    }
  };
  const auto send_hdr_and_payload = [&](const ReplHeader& h,
                                        std::span<const std::byte> payload) {
    reserve_chunk(sizeof(h) + payload.size());
    std::memcpy(chunk.data(), &h, sizeof(h));
    if (!payload.empty()) {
      std::memcpy(chunk.data() + sizeof(h), payload.data(), payload.size());
    }
    Descriptor d;
    d.op = via::Opcode::kSend;
    d.segs = {DataSegment{
        chunk.data(), chunk_h,
        static_cast<std::uint32_t>(sizeof(h) + payload.size())}};
    if (repl_vi_->post_send(d) != via::Status::kSuccess) return false;
    Descriptor* done = nullptr;
    if (repl_vi_->send_wait(done, kSendWait) != via::Status::kSuccess) {
      return false;
    }
    return done->status == DescStatus::kSuccess;
  };

  while (running_.load()) {
    if (role_.load(std::memory_order_acquire) != Role::kPrimary ||
        crash_pending_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // Connect (with jittered backoff — the standby may still be coming up).
    {
      auto vi = std::make_unique<via::Vi>(nic_, via::ViAttrs{});
      if (nic_.connect(*vi, cfg_.repl_peer, kSendWait) !=
          via::Status::kSuccess) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            reconnect_backoff_ms + jitter.below(reconnect_backoff_ms + 1)));
        reconnect_backoff_ms = std::min<std::uint64_t>(
            reconnect_backoff_ms * 2, 50);
        continue;
      }
      reconnect_backoff_ms = 1;
      std::lock_guard rlock(repl_mu_);
      repl_vi_ = std::move(vi);
    }
    bool armed = true;
    for (auto& a : acks) armed = armed && post_ack_recv(a);
    std::uint64_t sent_off = 0;
    bool streaming = false;
    if (armed) {
      // Handshake: our epoch out, the standby's resume offset (or a fence)
      // back.
      ReplHeader hello;
      hello.op = ReplOp::kHello;
      hello.epoch = epoch_.load(std::memory_order_relaxed);
      ReplHeader ack;
      if (send_hdr_and_payload(hello, {}) && wait_ack(ack) &&
          ack.op == ReplOp::kHelloAck) {
        if (ack.status != 0) {
          // The peer promoted while we were gone: we are the deposed filer.
          peer_epoch_.store(std::max(peer_epoch_.load(), ack.epoch));
          role_.store(Role::kFenced, std::memory_order_release);
          fabric_.stats().add("dafs.fenced");
        } else {
          sent_off = ack.offset;
          repl_acked_.store(ack.offset, std::memory_order_relaxed);
          repl_connected_.store(true, std::memory_order_relaxed);
          repl_cv_.notify_all();
          streaming = true;
        }
      }
    }
    while (streaming && running_.load() && !crash_pending_.load() &&
           role_.load(std::memory_order_acquire) == Role::kPrimary) {
      const std::uint64_t jsize = store_->journal_size();
      if (sent_off >= jsize) {
        // Idle: nothing new to ship. Poll finely — the barrier latency of
        // every sync/write rides on this.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      const auto records =
          store_->journal_log().read(sent_off, kReplBufSize - sizeof(ReplHeader));
      ReplHeader h;
      h.op = ReplOp::kRecords;
      h.epoch = epoch_.load(std::memory_order_relaxed);
      h.offset = sent_off;
      h.len = static_cast<std::uint32_t>(records.size());
      if (!send_hdr_and_payload(h, records)) break;
      ReplHeader ack;
      if (!wait_ack(ack) || ack.op != ReplOp::kAck) break;
      if (ack.status != 0) {
        peer_epoch_.store(std::max(peer_epoch_.load(), ack.epoch));
        role_.store(Role::kFenced, std::memory_order_release);
        fabric_.stats().add("dafs.fenced");
        break;
      }
      // The ack carries the standby's journal size: normally offset+len,
      // but also the resync point after a mismatch.
      sent_off = ack.offset;
      repl_acked_.store(ack.offset, std::memory_order_relaxed);
      fabric_.stats().add("dafs.repl_shipped_bytes", h.len);
      repl_cv_.notify_all();
    }
    {
      std::lock_guard rlock(repl_mu_);
      repl_connected_.store(false, std::memory_order_relaxed);
      if (repl_vi_) {
        repl_vi_->disconnect();
        repl_vi_.reset();
      }
    }
    repl_cv_.notify_all();
  }
}

void Server::repl_receiver_loop() {
  ActorScope scope(*repl_actor_);
  constexpr std::size_t kRecvBufs = 4;
  std::array<MsgBuf, kRecvBufs> bufs;
  for (auto& b : bufs) {
    b.mem.resize(kReplBufSize);
    b.handle = nic_.register_memory(b.mem.data(), b.mem.size(), ptag_, {});
  }
  std::vector<std::byte> ack_buf(sizeof(ReplHeader));
  const via::MemHandle ack_h =
      nic_.register_memory(ack_buf.data(), ack_buf.size(), ptag_, {});

  // The replication listener outlives promotion: a deposed primary that
  // restarts and re-handshakes must find someone to tell it it is fenced.
  via::Listener listener(nic_, cfg_.repl_listen);
  while (running_.load()) {
    via::Vi vi(nic_, via::ViAttrs{});
    const auto post_recv = [&](MsgBuf& b) {
      b.desc = Descriptor{};
      b.desc.segs = {DataSegment{b.mem.data(), b.handle,
                                 static_cast<std::uint32_t>(b.mem.size())}};
      return vi.post_recv(b.desc) == via::Status::kSuccess;
    };
    bool armed = true;
    for (auto& b : bufs) armed = armed && post_recv(b);
    if (!armed) break;  // NIC out of resources; replication is over
    bool accepted = false;
    while (running_.load()) {
      if (listener.accept(vi, kPollPeriod) == via::Status::kSuccess) {
        accepted = true;
        break;
      }
    }
    if (!accepted) break;
    const auto send_ack = [&](ReplOp op, std::uint8_t status,
                              std::uint64_t offset) {
      ReplHeader a;
      a.op = op;
      a.status = status;
      a.epoch = epoch_.load(std::memory_order_relaxed);
      a.offset = offset;
      std::memcpy(ack_buf.data(), &a, sizeof(a));
      Descriptor d;
      d.op = via::Opcode::kSend;
      d.segs = {DataSegment{ack_buf.data(), ack_h,
                            static_cast<std::uint32_t>(sizeof(a))}};
      if (vi.post_send(d) != via::Status::kSuccess) return false;
      Descriptor* done = nullptr;
      return vi.send_wait(done, kSendWait) == via::Status::kSuccess &&
             done->status == DescStatus::kSuccess;
    };
    bool hello_ok = false;
    while (running_.load()) {
      Descriptor* d = nullptr;
      const via::Status st = vi.recv_wait(d, std::chrono::milliseconds(100));
      if (st == via::Status::kTimeout) continue;
      if (st != via::Status::kSuccess || d->status != DescStatus::kSuccess) {
        // Channel death after a completed handshake, while we still hold the
        // standby role: the primary is gone. Take over.
        if (hello_ok && running_.load() &&
            role_.load(std::memory_order_acquire) == Role::kStandby) {
          promote();
        }
        break;
      }
      MsgBuf* b = nullptr;
      for (auto& cand : bufs) {
        if (&cand.desc == d) {
          b = &cand;
          break;
        }
      }
      assert(b != nullptr);
      ReplHeader h;
      std::memcpy(&h, b->mem.data(), sizeof(h));
      bool ok = h.magic == kReplMagic;
      if (ok && h.op == ReplOp::kHello) {
        peer_epoch_.store(std::max(peer_epoch_.load(), h.epoch));
        if (role_.load(std::memory_order_acquire) == Role::kStandby) {
          hello_ok = true;
          ok = send_ack(ReplOp::kHelloAck, 0, store_->journal_size());
        } else {
          // We promoted; whoever greets us on this channel is deposed.
          ok = send_ack(ReplOp::kHelloAck, 1, store_->journal_size());
        }
      } else if (ok && h.op == ReplOp::kRecords) {
        if (role_.load(std::memory_order_acquire) != Role::kStandby) {
          ok = send_ack(ReplOp::kAck, 1, store_->journal_size());
        } else if (h.offset != store_->journal_size()) {
          // Stream out of step (lost ack): our size is the resync point.
          fabric_.stats().add("dafs.repl_resyncs");
          ok = send_ack(ReplOp::kAck, 0, store_->journal_size());
        } else {
          const auto res = store_->journal_log().import(std::span(
              b->mem.data() + sizeof(ReplHeader), std::size_t{h.len}));
          if (res.truncated != 0) {
            // Torn/corrupt chunk tail: keep the valid prefix, ack what we
            // hold, and let the primary resend from there.
            fabric_.stats().add("dafs.repl_truncated_bytes", res.truncated);
          }
          fabric_.stats().add("dafs.repl_applied_bytes", res.accepted);
          ok = send_ack(ReplOp::kAck, 0, store_->journal_size());
        }
      }
      if (!(ok && post_recv(*b))) {
        if (hello_ok && running_.load() &&
            role_.load(std::memory_order_acquire) == Role::kStandby) {
          promote();
        }
        break;
      }
    }
    vi.disconnect();
  }
}

void Server::promote() {
  fabric_.stats().add("dafs.promotions");
  // Fence the old primary: our epoch strictly dominates everything it ever
  // streamed, so its post-restart hello is answered "fenced".
  epoch_.store(
      std::max(epoch_.load(std::memory_order_relaxed),
               peer_epoch_.load(std::memory_order_relaxed) + 1),
      std::memory_order_relaxed);
  // Materialize the shipped journal into the live image — the same replay a
  // restarted filer runs over its local journal.
  store_->crash();
  {
    // The deposed primary's delegations are void on this side; their ids
    // fence by mismatch if a holder ever reaches us with cached write-backs.
    std::lock_guard dlock(deleg_mu_);
    delegs_.clear();
    openers_.clear();
    session_opens_.clear();
  }
  // Mint session ids the deposed primary could never have issued. The accept
  // loop reads next_session_ only after observing the role flip below, and
  // sessions_mu_ orders this against any straggling worker.
  {
    std::lock_guard lock(sessions_mu_);
    next_session_ =
        std::max(next_session_, store_->server_state_watermark() + 1024);
  }
  // Surviving clients re-establish locks via lease reclaim before fresh
  // acquires are admitted — the same grace window as a local restart.
  grace_until_.store((std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(cfg_.grace_period_ms))
                         .time_since_epoch()
                         .count());
  role_.store(Role::kPrimary, std::memory_order_release);
  fabric_.stats().add("dafs.server_restarts");
}

void Server::apply_ack(Session& s, const MsgHeader& req) {
  std::uint64_t evicted = 0;
  {
    std::lock_guard rlock(s.replay_mu);
    for (auto it = s.replay.begin(); it != s.replay.end();) {
      if (it->seq <= req.ack_seq) {
        s.replay_bytes -= it->bytes.size();
        it = s.replay.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  if (evicted > 0) fabric_.stats().add("dafs.replay_acked_evictions", evicted);
  if (req.client_id != 0) store_->dup_forget(req.client_id, req.ack_seq);
}

void Server::do_resume(Session& s, MsgView& req, MsgView& resp) {
  const std::uint64_t old_id = req.header().aux;
  Session* old = nullptr;
  {
    std::lock_guard lock(sessions_mu_);
    for (auto& sess : sessions_) {
      // A closing session is unresumable: either the client disconnected
      // cleanly or the server crashed since — its locks, replay cache and
      // un-synced writes are gone, and pretending otherwise would hide lost
      // state. kBadSession tells the client to reclaim from its leases.
      if (sess->id == old_id && sess.get() != &s && !sess->closing) {
        old = sess.get();
        break;
      }
    }
    if (old == nullptr) {
      resp.header().status = PStatus::kBadSession;
      return;
    }
    // Adopt the old identity wholesale: retransmitted requests carry the old
    // session id, byte-range locks are owned by it, and the replay cache
    // must follow the client to the new connection.
    {
      std::scoped_lock rlock(s.replay_mu, old->replay_mu);
      s.replay = std::move(old->replay);
      s.replay_bytes = old->replay_bytes;
      old->replay_bytes = 0;
    }
    s.id = old_id;
    old->closing = true;
  }
  // The old VI already died with the connection; this just flushes any
  // descriptors still posted on it. The record itself stays in sessions_
  // (a worker may still hold a pointer); it is reaped in stop().
  old->vi->disconnect();
  resp.header().session_id = s.id;
  resp.header().aux = s.id;
  fabric_.stats().add("dafs.session_resumes");
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

namespace {

/// Split "/a/b/c" into the directory path "/a/b" and the leaf "c".
std::pair<std::string_view, std::string_view> split_path(
    std::string_view path) {
  while (!path.empty() && path.back() == '/') path.remove_suffix(1);
  const auto pos = path.rfind('/');
  if (pos == std::string_view::npos) return {"", path};
  return {path.substr(0, pos), path.substr(pos + 1)};
}

void put_attrs(MsgView& resp, const fstore::Attrs& attrs) {
  resp.header().data_len = sizeof(fstore::Attrs);
  std::memcpy(resp.data_payload(), &attrs, sizeof(attrs));
}

}  // namespace

void Server::do_open(Session& s, MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  // A striped client opening a layout's per-server subfile; semantically a
  // plain open, but counted so striped traffic is visible in the stats.
  if (req.header().flags & kOpenDataServer) {
    fabric_.stats().add("dafs.data_opens");
  }
  const auto [dir_path, leaf] = split_path(req.name());
  fstore::Ino ino = fstore::kInvalidIno;
  if (leaf.empty()) {
    ino = fstore::kRootIno;  // opening the root directory
  } else {
    auto dir = store_->resolve(dir_path);
    if (!dir.ok()) {
      resp.header().status = to_pstatus(dir.error());
      return;
    }
    if (req.header().flags & kOpenCreate) {
      auto r = store_->create(dir.value(), leaf,
                              (req.header().flags & kOpenExcl) != 0);
      if (!r.ok()) {
        resp.header().status = to_pstatus(r.error());
        return;
      }
      ino = r.value();
    } else {
      auto r = store_->lookup(dir.value(), leaf);
      if (!r.ok()) {
        resp.header().status = to_pstatus(r.error());
        return;
      }
      ino = r.value();
    }
  }
  // An open is a conflict point for delegations: a foreign open of a
  // write-delegated file (or a truncating open of any delegated file) must
  // recall the holder before this opener proceeds — gated here, before the
  // truncate below mutates anything.
  if (deleg_gate(ino, req.header().deleg,
                 (req.header().flags & kOpenTrunc) != 0,
                 resp) != PStatus::kOk) {
    return;
  }
  if (req.header().flags & kOpenTrunc) {
    if (const fstore::Errc e = store_->set_size(ino, 0);
        e != fstore::Errc::kOk) {
      resp.header().status = to_pstatus(e);
      return;
    }
  }
  auto attrs = store_->getattr(ino);
  if (!attrs.ok()) {
    resp.header().status = to_pstatus(attrs.error());
    return;
  }
  resp.header().ino = ino;
  put_attrs(resp, attrs.value());
  if ((req.header().flags & kOpenDataServer) == 0) {
    // Opener refcount, keyed (ino, session): the sole-opener grant check and
    // the disconnect sweep both read it. Data-subfile opens are excluded —
    // they are the striped client's internal plumbing for a file whose real
    // open already registered through the metadata path, and counting them
    // (under their own session identity) would make every striped client
    // look like two independent openers and starve grants forever.
    {
      std::lock_guard lock(deleg_mu_);
      int& count = openers_[ino][s.id];
      if (count++ == 0) session_opens_[s.id].push_back(ino);
    }
    if ((req.header().flags & kOpenWantDeleg) != 0) {
      maybe_grant_deleg(s, req.header(), resp, ino);
    }
  }
}

void Server::do_namespace(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  switch (req.header().proc) {
    case Proc::kGetattr: {
      auto attrs = store_->getattr(req.header().ino);
      if (!attrs.ok()) {
        resp.header().status = to_pstatus(attrs.error());
        return;
      }
      resp.header().ino = req.header().ino;
      put_attrs(resp, attrs.value());
      return;
    }
    case Proc::kSetSize:
      resp.header().status =
          to_pstatus(store_->set_size(req.header().ino, req.header().aux));
      return;
    case Proc::kRemove: {
      const auto [dir_path, leaf] = split_path(req.name());
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        resp.header().status = to_pstatus(dir.error());
        return;
      }
      resp.header().status = to_pstatus(store_->remove(dir.value(), leaf));
      return;
    }
    case Proc::kMkdir: {
      const auto [dir_path, leaf] = split_path(req.name());
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        resp.header().status = to_pstatus(dir.error());
        return;
      }
      auto r = store_->mkdir(dir.value(), leaf);
      if (!r.ok()) {
        resp.header().status = to_pstatus(r.error());
        return;
      }
      resp.header().ino = r.value();
      return;
    }
    case Proc::kRmdir: {
      const auto [dir_path, leaf] = split_path(req.name());
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        resp.header().status = to_pstatus(dir.error());
        return;
      }
      resp.header().status = to_pstatus(store_->rmdir(dir.value(), leaf));
      return;
    }
    case Proc::kRename: {
      const std::string_view both = req.name();
      const auto nul = both.find('\0');
      if (nul == std::string_view::npos) {
        resp.header().status = PStatus::kInval;
        return;
      }
      const auto [fd_path, f_leaf] = split_path(both.substr(0, nul));
      const auto [td_path, t_leaf] = split_path(both.substr(nul + 1));
      auto fd = store_->resolve(fd_path);
      auto td = store_->resolve(td_path);
      if (!fd.ok() || !td.ok()) {
        resp.header().status =
            to_pstatus(!fd.ok() ? fd.error() : td.error());
        return;
      }
      resp.header().status = to_pstatus(
          store_->rename(fd.value(), f_leaf, td.value(), t_leaf));
      return;
    }
    case Proc::kSync:
      resp.header().status = to_pstatus(store_->sync(req.header().ino));
      return;
    case Proc::kFetchAdd:
      // Exactly-once across crashes: the volatile replay cache dies with the
      // server, so the store keeps a durable (client_id, seq) filter and
      // returns the original old value to a retransmission.
      resp.header().aux = store_->counter_fetch_add_once(
          std::string(req.name()), req.header().aux, req.header().client_id,
          req.header().seq);
      return;
    case Proc::kSetCounter:
      store_->counter_set(std::string(req.name()), req.header().aux);
      return;
    default:
      resp.header().status = PStatus::kProtoError;
      return;
  }
}

void Server::do_readdir(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  auto dir = store_->resolve(req.name());
  if (!dir.ok()) {
    resp.header().status = to_pstatus(dir.error());
    return;
  }
  auto entries = store_->readdir(dir.value());
  if (!entries.ok()) {
    resp.header().status = to_pstatus(entries.error());
    return;
  }
  const std::uint64_t cookie = req.header().offset;
  std::byte* out = resp.data_payload();
  const std::byte* end = resp.raw() + resp.capacity();
  std::uint64_t i = cookie;
  std::uint32_t packed = 0;
  for (; i < entries.value().size(); ++i) {
    const auto& e = entries.value()[i];
    const std::size_t need = sizeof(WireDirent) + e.name.size();
    if (out + need > end) break;
    WireDirent wd;
    wd.ino = e.ino;
    wd.is_dir = e.is_dir ? 1 : 0;
    wd.name_len = static_cast<std::uint32_t>(e.name.size());
    std::memcpy(out, &wd, sizeof(wd));
    std::memcpy(out + sizeof(wd), e.name.data(), e.name.size());
    out += need;
    ++packed;
  }
  resp.header().len = packed;
  resp.header().aux = i;  // next cookie
  resp.header().flags = (i >= entries.value().size()) ? 1 : 0;
  resp.header().data_len =
      static_cast<std::uint32_t>(out - resp.data_payload());
}

void Server::do_read_inline(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  const std::size_t cap = resp.inline_capacity(0);
  const std::uint64_t want = std::min<std::uint64_t>(req.header().len, cap);
  auto r = store_->pread(
      req.header().ino, req.header().offset,
      std::span<std::byte>(resp.data_payload(), want),
      (req.header().flags & kFlagVerifyStore) != 0);
  if (!r.ok()) {
    resp.header().status = to_pstatus(r.error());
    return;
  }
  resp.header().len = r.value();
  resp.header().data_len = static_cast<std::uint32_t>(r.value());
  if ((req.header().flags & kFlagPayloadCrc) != 0 && r.value() > 0) {
    resp.header().flags |= kFlagPayloadCrc;
    resp.header().payload_crc = fstore::crc32c({resp.data_payload(), r.value()});
    Actor::current()->charge(CostKind::kCopy,
                             fabric_.cost().copy_time(r.value()));
    fabric_.stats().add("dafs.integrity_crc_bytes", r.value());
  }
  fabric_.stats().add("dafs.inline_read_bytes", r.value());
}

void Server::do_write_inline(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  if ((req.header().flags & kFlagPayloadCrc) != 0 && req.header().data_len > 0) {
    Actor::current()->charge(CostKind::kCopy,
                             fabric_.cost().copy_time(req.header().data_len));
    fabric_.stats().add("dafs.integrity_crc_bytes", req.header().data_len);
    if (fstore::crc32c({req.data_payload(), req.header().data_len}) !=
        req.header().payload_crc) {
      // The payload rotted on the wire: refuse before any byte lands. The
      // kCorrupt answer is never replay-cached (only kOk is), so the
      // client's fresh-seq rewrite re-executes cleanly — exactly once.
      resp.header().status = PStatus::kCorrupt;
      fabric_.stats().add("dafs.integrity_server_rejects");
      return;
    }
  }
  auto r = store_->pwrite(
      req.header().ino, req.header().offset,
      std::span<const std::byte>(req.data_payload(), req.header().data_len));
  if (!r.ok()) {
    resp.header().status = to_pstatus(r.error());
    return;
  }
  resp.header().len = r.value();
  fabric_.stats().add("dafs.inline_write_bytes", r.value());
}

void Server::do_read_direct(Session& s, MsgView& req, MsgView& resp) {
  Actor* actor = Actor::current();
  actor->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  const bool verify = (req.header().flags & kFlagVerifyStore) != 0;
  const bool stamp = (req.header().flags & kFlagPayloadCrc) != 0;
  std::uint32_t crc = 0;
  std::uint64_t total = 0;
  std::lock_guard lock(s.send_mu);
  for (const DirectSeg& seg : req.segs()) {
    auto extents = store_->extents_for_read(req.header().ino, seg.file_off,
                                            seg.len, verify);
    if (!extents.ok()) {
      resp.header().status = to_pstatus(extents.error());
      return;
    }
    std::uint64_t actual = 0;
    Descriptor d;
    d.op = via::Opcode::kRdmaWrite;
    for (const auto& span : extents.value()) {
      d.segs.push_back(DataSegment{span.data(), slab_handle(span.data()),
                                   static_cast<std::uint32_t>(span.size())});
      actual += span.size();
    }
    if (actual == 0) continue;  // read past EOF: nothing to move
    d.remote = {seg.addr, seg.mem};
    if (post_and_reap(s, d) != DescStatus::kSuccess) {
      resp.header().status = PStatus::kProtoError;
      return;
    }
    if (stamp) {
      // Chained over the moved bytes in segment order — the same order a
      // contiguous client buffer receives them, so the client can re-hash
      // its landed prefix against payload_crc.
      for (const auto& span : extents.value()) {
        crc = fstore::crc32c(span, crc);
      }
    }
    total += actual;
  }
  resp.header().len = total;
  if (stamp && total > 0) {
    resp.header().flags |= kFlagPayloadCrc;
    resp.header().payload_crc = crc;
    actor->charge(CostKind::kCopy, fabric_.cost().copy_time(total));
    fabric_.stats().add("dafs.integrity_crc_bytes", total);
  }
  fabric_.stats().add("dafs.direct_read_bytes", total);
}

void Server::do_write_direct(Session& s, MsgView& req, MsgView& resp) {
  Actor* actor = Actor::current();
  actor->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  const bool check = (req.header().flags & kFlagPayloadCrc) != 0;
  std::uint32_t crc = 0;
  std::uint64_t total = 0;
  // With a payload CRC, commits are deferred until every segment has been
  // pulled and the whole-request checksum verified, so a damaged transfer
  // never reaches the durable image (size, mtime and journal untouched).
  // The pulled bytes do land in cache chunks transiently; the client's
  // fresh-seq rewrite overwrites them — and their checksums — either way.
  struct PendingCommit {
    std::uint64_t off;
    std::uint32_t len;
  };
  std::vector<PendingCommit> pending;
  std::lock_guard lock(s.send_mu);
  for (const DirectSeg& seg : req.segs()) {
    auto extents =
        store_->ensure_extents(req.header().ino, seg.file_off, seg.len);
    if (!extents.ok()) {
      resp.header().status = to_pstatus(extents.error());
      return;
    }
    Descriptor d;
    d.op = via::Opcode::kRdmaRead;
    for (const auto& span : extents.value()) {
      d.segs.push_back(DataSegment{span.data(), slab_handle(span.data()),
                                   static_cast<std::uint32_t>(span.size())});
    }
    d.remote = {seg.addr, seg.mem};
    if (post_and_reap(s, d) != DescStatus::kSuccess) {
      resp.header().status = PStatus::kProtoError;
      return;
    }
    if (check) {
      for (const auto& span : extents.value()) {
        crc = fstore::crc32c(span, crc);
      }
      pending.push_back({seg.file_off, seg.len});
    } else {
      store_->commit_write(req.header().ino, seg.file_off, seg.len);
    }
    total += seg.len;
  }
  if (check && total > 0) {
    actor->charge(CostKind::kCopy, fabric_.cost().copy_time(total));
    fabric_.stats().add("dafs.integrity_crc_bytes", total);
    if (crc != req.header().payload_crc) {
      resp.header().status = PStatus::kCorrupt;
      fabric_.stats().add("dafs.integrity_server_rejects");
      return;
    }
  }
  for (const PendingCommit& p : pending) {
    store_->commit_write(req.header().ino, p.off, p.len);
  }
  resp.header().len = total;
  fabric_.stats().add("dafs.direct_write_bytes", total);
}

void Server::do_lock(Session& s, MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  if (req.header().proc == Proc::kLock) {
    // Post-restart grace: only lease *reclaims* may take locks until the
    // grace period ends, so surviving clients re-establish their ranges
    // before fresh acquires can race into them.
    if (in_grace() && !(req.header().aux & kLockReclaim)) {
      resp.header().status = PStatus::kBusy;
      resp.header().aux = cfg_.busy_retry_ns;
      fabric_.stats().add("dafs.grace_rejections");
      return;
    }
    const bool ok = locks_.try_acquire(
        req.header().ino, req.header().offset, req.header().len, s.id,
        (req.header().aux & kLockExclusive) != 0);
    resp.header().status = ok ? PStatus::kOk : PStatus::kLockConflict;
  } else {
    locks_.release(req.header().ino, req.header().offset, req.header().len,
                   s.id);
  }
}

PStatus Server::deleg_gate(std::uint64_t ino, std::uint64_t deleg_id,
                           bool write_class, MsgView& resp) {
  std::lock_guard lock(deleg_mu_);
  Actor* actor = Actor::current();
  const sim::Time now = actor != nullptr ? actor->now() : 0;
  auto it = delegs_.find(ino);
  if (it == delegs_.end()) {
    if (deleg_id != 0 && write_class) {
      // A write stamped with a delegation this server does not hold live:
      // the lease lapsed and was revoked, the holder disconnected, or a
      // crash/failover produced an incarnation that never issued it. The
      // cached bytes behind it may be stale relative to writes the server
      // admitted since — fence.
      resp.header().status = PStatus::kDelegExpired;
      fabric_.stats().add("dafs.cache.expired_fences");
      return PStatus::kDelegExpired;
    }
    return PStatus::kOk;
  }
  Deleg& d = it->second;
  if (deleg_id == d.id) {
    // The holder. Expiry is checked against the server clock — a holder
    // whose lease ran out is indistinguishable from a dead one and gets the
    // same fence its stale id would earn after revocation.
    if (now >= d.expires_at) {
      finish_recall_locked(ino, d, "expired");
      delegs_.erase(it);
      if (write_class) {
        resp.header().status = PStatus::kDelegExpired;
        fabric_.stats().add("dafs.cache.expired_fences");
        return PStatus::kDelegExpired;
      }
      return PStatus::kOk;
    }
    // Live holder: every request renews the lease, and a pending recall
    // rides back on the response flags.
    d.expires_at = now + cfg_.deleg_term_ns;
    if (d.recalling) resp.header().flags |= kFlagDelegRecall;
    return PStatus::kOk;
  }
  // Foreign access to a delegated file.
  if (now >= d.expires_at) {
    // The holder never returned it within the term: revoke unilaterally and
    // admit this access. The holder is fenced by id mismatch from here on.
    finish_recall_locked(ino, d, "revoked");
    delegs_.erase(it);
    if (deleg_id != 0 && write_class) {
      resp.header().status = PStatus::kDelegExpired;
      fabric_.stats().add("dafs.cache.expired_fences");
      return PStatus::kDelegExpired;
    }
    return PStatus::kOk;
  }
  if (deleg_id != 0 && write_class) {
    // A writer carrying some other (dead) delegation's id while a different
    // client holds this file: its cache was built under a revoked lease.
    resp.header().status = PStatus::kDelegExpired;
    fabric_.stats().add("dafs.cache.expired_fences");
    return PStatus::kDelegExpired;
  }
  // A read delegation only promises "no other writer": foreign reads pass.
  if (!d.write && !write_class) return PStatus::kOk;
  // Conflict. Start the recall (idempotently) and hold the intruder off
  // with the ordinary busy-retry protocol; its retry loop outlasts the
  // lease term, so it gets in once the holder returns or the lease lapses.
  if (!d.recalling) {
    d.recalling = true;
    d.recall_started = now;
    fabric_.stats().add("dafs.cache.recalls");
  }
  resp.header().status = PStatus::kBusy;
  resp.header().aux = cfg_.busy_retry_ns;
  fabric_.stats().add("dafs.deleg_conflict_sheds");
  return PStatus::kBusy;
}

void Server::do_deleg(MsgView& req, MsgView& resp) {
  Actor::current()->charge(CostKind::kDispatch, fabric_.cost().fs_op);
  const std::uint64_t ino = req.header().ino;
  const std::uint64_t id = req.header().deleg;
  std::lock_guard lock(deleg_mu_);
  Actor* actor = Actor::current();
  const sim::Time now = actor != nullptr ? actor->now() : 0;
  auto it = delegs_.find(ino);
  if (req.header().proc == Proc::kDelegReturn) {
    // Always succeeds: returning something we no longer track is a no-op.
    if (it != delegs_.end() && it->second.id == id) {
      finish_recall_locked(ino, it->second, "returned");
      delegs_.erase(it);
    }
    return;
  }
  // kDelegRecall: the holder's renewal/recall poll.
  if (it == delegs_.end() || it->second.id != id) {
    resp.header().status = PStatus::kDelegExpired;
    return;
  }
  Deleg& d = it->second;
  if (now >= d.expires_at) {
    finish_recall_locked(ino, d, "expired");
    delegs_.erase(it);
    resp.header().status = PStatus::kDelegExpired;
    return;
  }
  d.expires_at = now + cfg_.deleg_term_ns;
  resp.header().aux = cfg_.deleg_term_ns;
  if (d.recalling) resp.header().flags |= kFlagDelegRecall;
}

void Server::maybe_grant_deleg(Session& s, const MsgHeader& req, MsgView& resp,
                               std::uint64_t ino) {
  // No fresh leases during the post-restart grace window: a pre-crash holder
  // may still believe in a delegation this incarnation knows nothing about,
  // and granting now would let two caches think they are alone.
  if (in_grace()) return;
  Actor* actor = Actor::current();
  const sim::Time now = actor != nullptr ? actor->now() : 0;
  std::lock_guard lock(deleg_mu_);
  auto it = delegs_.find(ino);
  if (it != delegs_.end()) {
    Deleg& d = it->second;
    if (req.deleg == d.id && now < d.expires_at && !d.recalling) {
      // The holder re-opening its own delegated file: re-arm the lease and
      // re-advertise the grant.
      d.expires_at = now + cfg_.deleg_term_ns;
      resp.header().deleg = d.id;
      resp.header().aux = cfg_.deleg_term_ns;
      if (d.write) resp.header().flags |= kFlagDelegWrite;
      return;
    }
    if (now < d.expires_at) return;  // someone else holds it live
    finish_recall_locked(ino, d, "expired");
    delegs_.erase(it);
  }
  // Grant only to a sole opener: any other session with the file open could
  // already be reading bytes the new holder would cache-and-mutate.
  auto op = openers_.find(ino);
  if (op != openers_.end()) {
    for (const auto& [sid, count] : op->second) {
      if (sid != s.id && count > 0) return;
    }
  }
  Deleg d;
  // Ids must never collide across server incarnations or quorum members:
  // a stale id from before a crash/failover has to fence, not alias a fresh
  // grant. Salt the counter with the member slot and the crash count
  // (next_deleg_ itself is deliberately not reset on crash).
  d.id = ((static_cast<std::uint64_t>(cfg_.member_id) + 1) << 56) |
         ((crash_count_.load(std::memory_order_relaxed) & 0xFFFF) << 40) |
         (next_deleg_++ & 0xFFFFFFFFFFull);
  d.session_id = s.id;
  d.write = (req.flags & kOpenWantWriteDeleg) != 0;
  d.expires_at = now + cfg_.deleg_term_ns;
  delegs_.emplace(ino, d);
  fabric_.stats().add("dafs.cache.grants");
  resp.header().deleg = d.id;
  resp.header().aux = cfg_.deleg_term_ns;
  if (d.write) resp.header().flags |= kFlagDelegWrite;
}

void Server::finish_recall_locked(std::uint64_t ino, Deleg& d,
                                  const char* how) {
  if (!d.recalling) return;
  d.recalling = false;
  Actor* actor = Actor::current();
  const sim::Time now =
      actor != nullptr ? std::max(actor->now(), d.recall_started)
                       : d.recall_started;
  fabric_.histograms().record("dafs.deleg.recall_ns", now - d.recall_started);
  sim::Tracer& tracer = fabric_.trace();
  if (!tracer.enabled()) return;
  // Rooted span: the recall outlives the request that triggered it and
  // completes under whichever request observes the return/expiry.
  sim::Span sp;
  sp.trace_id = tracer.new_id();
  sp.span_id = tracer.new_id();
  sp.t_start = d.recall_started;
  sp.t_end = now;
  sp.layer = "dafs.server";
  sp.name = "dafs.deleg.recall";
  char attrs[96];
  std::snprintf(attrs, sizeof(attrs),
                "\"ino\":%llu,\"deleg\":%llu,\"how\":\"%s\"",
                static_cast<unsigned long long>(ino),
                static_cast<unsigned long long>(d.id), how);
  sp.attrs = attrs;
  tracer.record(std::move(sp));
}

void Server::release_session_delegs(std::uint64_t session_id) {
  std::lock_guard lock(deleg_mu_);
  for (auto it = delegs_.begin(); it != delegs_.end();) {
    if (it->second.session_id == session_id) {
      // A disconnect is an implicit return: the cache dies with the session.
      finish_recall_locked(it->first, it->second, "returned");
      it = delegs_.erase(it);
    } else {
      ++it;
    }
  }
  auto so = session_opens_.find(session_id);
  if (so != session_opens_.end()) {
    for (std::uint64_t ino : so->second) {
      auto op = openers_.find(ino);
      if (op == openers_.end()) continue;
      op->second.erase(session_id);
      if (op->second.empty()) openers_.erase(op);
    }
    session_opens_.erase(so);
  }
}

}  // namespace dafs
