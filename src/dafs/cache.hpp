#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

/// \file cache.hpp
/// The per-open-file client data cache backing delegations. A FileCache is a
/// plain byte-extent store with no protocol knowledge: the Client decides
/// when cached bytes may be served (delegation held, lease unexpired) and
/// when dirty extents must flush (recall, close, sync, budget, teardown).
/// Extents are non-overlapping; inserts trim/split whatever they overlap.
namespace dafs {

class FileCache {
 public:
  /// `capacity` is the byte budget (`OpenOptions::cache_bytes`). Clean bytes
  /// are LRU-evicted to stay under it; dirty bytes are never evicted — the
  /// owner must flush when over_budget() says so.
  explicit FileCache(std::uint64_t capacity) : capacity_(capacity) {}

  /// Full-coverage read: fills `out` and returns true only when every byte
  /// of [off, off+out.size()) is cached (clean or dirty). On false, `out`
  /// may be partially written — the caller re-reads from the server anyway.
  bool read(std::uint64_t off, std::span<std::byte> out);

  /// Record server-backed bytes. Dirty bytes win: the incoming range is
  /// inserted only into the gaps around dirty extents it overlaps (a server
  /// read is always older than an unflushed local write).
  void put_clean(std::uint64_t off, std::span<const std::byte> data);

  /// Buffer a write-back write: overwrites anything cached in range.
  void put_dirty(std::uint64_t off, std::span<const std::byte> data);

  /// Overlay cached dirty bytes onto a freshly server-read buffer so
  /// read-your-writes holds under write-back.
  void overlay_dirty(std::uint64_t off, std::span<std::byte> buf) const;

  struct Extent {
    std::uint64_t off = 0;
    std::vector<std::byte> data;
  };
  /// Drain the dirty set (ascending offsets, adjacent runs coalesced). The
  /// bytes stay cached, re-marked clean: a successful flush makes them
  /// server-backed. On flush failure the owner drops the cache wholesale.
  std::vector<Extent> take_dirty();

  void clear();
  /// Drop clean bytes only (lease lapsed: they are unverifiable, while the
  /// dirty set still has to attempt a flush and let the server fence it).
  void drop_clean();

  bool has_dirty() const { return dirty_bytes_ > 0; }
  /// One past the last dirty byte's file offset (0 when nothing is dirty) —
  /// the buffered tail a logical file size must cover under write-back.
  std::uint64_t dirty_end() const;
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  std::uint64_t capacity() const { return capacity_; }
  bool over_budget() const { return bytes_ > capacity_; }

 private:
  struct Ext {
    std::vector<std::byte> data;
    bool dirty = false;
    std::uint64_t lru = 0;
  };
  using Map = std::map<std::uint64_t, Ext>;

  /// First extent intersecting [off, ...), or end().
  Map::iterator first_overlap(std::uint64_t off);
  /// Remove [off, off+len) from every overlapping extent, splitting at the
  /// edges. With `keep_dirty`, dirty extents in range are left untouched.
  void punch(std::uint64_t off, std::uint64_t len, bool keep_dirty);
  void insert(std::uint64_t off, std::span<const std::byte> data, bool dirty);
  void account_remove(const Ext& e, std::uint64_t n);
  void evict_clean();

  std::uint64_t capacity_;
  std::uint64_t bytes_ = 0;
  std::uint64_t dirty_bytes_ = 0;
  std::uint64_t clock_ = 0;
  Map map_;  // keyed by extent start offset; extents never overlap
};

}  // namespace dafs
