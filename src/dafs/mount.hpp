#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dafs/proto.hpp"

/// \file mount.hpp
/// The client-facing mount description: which filer endpoints a session may
/// bind to (in failover order) and the one retry/deadline/backoff policy
/// type shared by client recovery, server-to-server replication, and the
/// MPI-IO hint layer (parsed in src/mpiio/info.hpp).
namespace dafs {

/// One consolidated retry policy. Previously these knobs were duplicated
/// across ClientConfig (recovery_*), ServerConfig and ad-hoc `dafs_*` MPI-IO
/// hints; every layer that retries — client reconnect/failover, the
/// replication channel, kBusy backoff — now takes a RetryPolicy.
struct RetryPolicy {
  /// Reconnect/resume attempts against one endpoint before giving up on it
  /// (the session dies once every endpoint's budget is exhausted).
  int attempts = 8;
  /// Base and cap (virtual ns) of the jittered exponential backoff between
  /// attempts.
  std::uint64_t backoff_ns = 100'000;         // 100 us
  std::uint64_t backoff_cap_ns = 10'000'000;  // 10 ms
  /// Seed of the backoff jitter RNG.
  std::uint64_t jitter_seed = 1;
  /// Retransmissions of a kBusy-shed request before surfacing kBusy.
  int max_busy_retries = 64;
  /// Per-request deadline budget (virtual ns) stamped on every request;
  /// 0 = no deadline. For the replication channel this bounds the
  /// semi-synchronous barrier wait instead.
  std::uint64_t deadline_ns = 0;
};

/// How much end-to-end integrity checking a session asks for (the
/// `dafs_integrity` MPI-IO hint; E19 sweeps the overhead).
enum class IntegrityMode : std::uint8_t {
  kOff,   // trust the transport's and store's own guarantees
  kWire,  // CRC-32C on every data payload, verified by the consumer
  kFull,  // kWire + the server re-verifies at-rest block checksums on reads
};

constexpr const char* to_string(IntegrityMode m) {
  switch (m) {
    case IntegrityMode::kOff: return "off";
    case IntegrityMode::kWire: return "wire";
    case IntegrityMode::kFull: return "full";
  }
  return "?";
}

/// Session-local knobs (transport sizing, data-path thresholds, identity).
/// The retry/recovery knobs that used to live here moved to RetryPolicy,
/// carried per-endpoint in MountSpec.
struct ClientConfig {
  /// Default service name when a MountSpec names no endpoints.
  std::string service = "dafs";
  std::size_t msg_buf_size = kMsgBufSize;
  /// Max outstanding requests (== request slots == posted receive buffers).
  /// Must not exceed the server's per-session receive credits.
  std::size_t credits = 8;
  /// Transfers at or above this size use direct (RDMA) I/O; below it, data
  /// rides inline in the message. E3 sweeps this crossover.
  std::size_t direct_threshold = 4096;
  /// Cache memory registrations across operations (E10 ablation flag).
  bool reg_cache = true;
  std::size_t reg_cache_entries = 64;
  /// Split direct-I/O segments so no RDMA descriptor exceeds this.
  std::size_t max_rdma_seg = 2u << 20;
  /// Stable client identity for the server's durable duplicate filter
  /// (exactly-once counters across server restarts). 0 = adopt the first
  /// server-assigned session id, which is unique and never reused.
  std::uint64_t client_id = 0;
  /// End-to-end integrity mode (`dafs_integrity` hint).
  IntegrityMode integrity = IntegrityMode::kOff;
};

/// Client-visible consistency level of an open (`dafs_consistency` hint).
/// Selects when other clients observe this open's writes, and therefore how
/// much the client cache is allowed to do under a delegation:
///   - kAfterWrite: every write is visible at the server when the call
///     returns (write-through). Reads may still be served from cache while a
///     delegation guarantees no other writer; on a conflicting file the
///     cache is off entirely — exactly the pre-cache behavior.
///   - kAfterClose: writes become visible no later than close()/sync()
///     (write-back under a write delegation; dirty extents flush on recall,
///     close, sync or lease expiry).
///   - kAfterJob: writes become visible when the client unmounts (Client
///     destruction) or on explicit sync; close() keeps the cache and the
///     delegation warm for re-opens within the same job.
enum class Consistency : std::uint8_t {
  kAfterWrite = 0,
  kAfterClose = 1,
  kAfterJob = 2,
};

constexpr const char* to_string(Consistency c) {
  switch (c) {
    case Consistency::kAfterWrite: return "after_write";
    case Consistency::kAfterClose: return "after_close";
    case Consistency::kAfterJob: return "after_job";
  }
  return "?";
}

/// Typed open-path options (the redesigned open API): consistency level,
/// cache budget and attribute TTL, threaded from the MPI-IO hint layer
/// (mpiio::HintSet) down to Client::open. Plain `open(path, flags)` is the
/// degenerate case — after_write, no cache.
struct OpenOptions {
  /// kOpen* protocol flags (create/excl/trunc).
  std::uint16_t flags = 0;
  Consistency consistency = Consistency::kAfterWrite;
  /// Per-file data-cache budget in bytes; 0 disables caching (and with it
  /// delegation requests) for this open.
  std::uint64_t cache_bytes = 0;
  /// How long a cached getattr answer may be served without revalidating
  /// (virtual ns; 0 = always revalidate).
  std::uint64_t attr_ttl_ns = 0;
};

/// Sentinel for Endpoint::member on a non-quorum mount.
inline constexpr std::uint32_t kNoMember = 0xFFFFFFFFu;

/// One filer endpoint a session may bind to.
struct Endpoint {
  std::string service = "dafs";
  RetryPolicy retry;
  /// Quorum member index this endpoint serves (kNoMember on plain mounts).
  /// A follower's kNotLeader answer carries the leader's member index, and
  /// recovery jumps straight to the endpoint with that `member` instead of
  /// sweeping the list blind.
  std::uint32_t member = kNoMember;
};

/// Default stripe width of a striped mount (Lustre's historical default is
/// 64 KiB too; E17 sweeps this).
inline constexpr std::uint64_t kDefaultStripeSize = 64 * 1024;

/// A file's striping layout, handed to the client at open: stripe width, the
/// ordered data-server list the stripes round-robin over, and the metadata
/// server every namespace/lock/lease operation goes to. Data server `s` owns
/// stripe `k` iff `k % data_services.size() == s`; each data server stores
/// its stripes in a subfile at the *logical* file offsets (sparse), so no
/// offset translation exists anywhere and the logical size is the max over
/// the subfile sizes.
struct Layout {
  std::uint64_t stripe_size = kDefaultStripeSize;
  std::vector<std::string> data_services;
  std::string meta_service;
};

/// What `Session::connect` mounts: an ordered endpoint list (first is the
/// preferred primary; later entries are failover targets tried in order when
/// the bound endpoint dies or answers kFenced) plus the session-local knobs.
/// An empty endpoint list means one default endpoint at `client.service`.
///
/// `Client::connect` (the striped multi-filer client) additionally reads
/// `data_endpoints`: when non-empty, file data round-robins across those
/// filers in `stripe_size` units while metadata stays on `endpoints` (filer
/// 0, conventionally also data server 0). Empty `data_endpoints` means all
/// data lives on the metadata filer — exactly a plain Session mount.
struct MountSpec {
  std::vector<Endpoint> endpoints;
  ClientConfig client;
  std::vector<Endpoint> data_endpoints;
  std::uint64_t stripe_size = kDefaultStripeSize;
};

/// A single-endpoint mount (the common non-replicated case).
inline MountSpec single_mount(std::string service, RetryPolicy retry = {},
                              ClientConfig client = {}) {
  MountSpec m;
  m.endpoints.push_back(Endpoint{std::move(service), retry});
  m.client = std::move(client);
  return m;
}

/// An ordered failover mount over `services`, one shared policy.
inline MountSpec failover_mount(std::vector<std::string> services,
                                RetryPolicy retry = {},
                                ClientConfig client = {}) {
  MountSpec m;
  for (auto& s : services) m.endpoints.push_back(Endpoint{std::move(s), retry});
  m.client = std::move(client);
  return m;
}

/// A quorum mount over a replication group's client services, in member
/// order: `services[i]` is member `i`'s client-facing service. Every
/// endpoint is tagged with its member index so kNotLeader hints resolve to
/// a direct jump. The initial order is rotated per `preferred` so different
/// clients spread their first probes across the group.
inline MountSpec quorum_mount(std::vector<std::string> services,
                              RetryPolicy retry = {},
                              ClientConfig client = {},
                              std::size_t preferred = 0) {
  MountSpec m;
  const std::size_t n = services.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (preferred + k) % n;
    Endpoint ep{services[i], retry};
    ep.member = static_cast<std::uint32_t>(i);
    m.endpoints.push_back(std::move(ep));
  }
  m.client = std::move(client);
  return m;
}

/// A striped mount over `services`: the first service is the metadata filer
/// (and data server 0), and file data round-robins across all of them in
/// `stripe_size` units. One service degenerates to a single-filer mount.
inline MountSpec striped_mount(std::vector<std::string> services,
                               std::uint64_t stripe_size = kDefaultStripeSize,
                               RetryPolicy retry = {},
                               ClientConfig client = {}) {
  MountSpec m;
  if (!services.empty()) m.endpoints.push_back(Endpoint{services[0], retry});
  for (auto& s : services) {
    m.data_endpoints.push_back(Endpoint{std::move(s), retry});
  }
  m.stripe_size = stripe_size == 0 ? kDefaultStripeSize : stripe_size;
  m.client = std::move(client);
  return m;
}

}  // namespace dafs
