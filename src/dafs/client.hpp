#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dafs/cache.hpp"
#include "dafs/mount.hpp"
#include "dafs/proto.hpp"
#include "fstore/types.hpp"
#include "sim/expected.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "via/vi.hpp"

namespace dafs {

template <typename T>
using Result = sim::Expected<T, PStatus>;

/// An open file handle (DAFS handles carry more state; the inode suffices
/// for the emulated server).
struct Fh {
  fstore::Ino ino = fstore::kInvalidIno;
  bool valid() const { return ino != fstore::kInvalidIno; }
};

/// One element of a batch ("list I/O") access.
struct IoVec {
  std::uint64_t file_off = 0;
  std::byte* buf = nullptr;
  std::uint64_t len = 0;
};

/// Identifier of an in-flight asynchronous operation.
using OpId = std::uint32_t;

/// Parsed kStatsQuery snapshot (wire format in proto.hpp): server state
/// header, the per-client attribution table, and the counter/gauge kv list.
struct StatsSnapshot {
  WireStatsHeader header;
  std::vector<WireSessionStats> sessions;
  std::vector<std::pair<std::string, std::uint64_t>> kv;

  /// The attribution row for `client_id`, or nullptr when the server has
  /// not seen that client (or clipped it from a truncated snapshot).
  const WireSessionStats* find_client(std::uint64_t client_id) const {
    for (const WireSessionStats& s : sessions) {
      if (s.client_id == client_id) return &s;
    }
    return nullptr;
  }
  /// The kv entry named `key`, or 0 when absent.
  std::uint64_t value(std::string_view key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return 0;
  }
};

/// A uDAFS-style client session: a user-space file-access library speaking
/// the DAFS protocol over one VI. Small transfers ride inline in messages;
/// large ones are *direct*: the client registers the user buffer (with a
/// registration cache) and the server RDMAs the data, so the client CPU
/// never touches payload bytes.
///
/// Concurrency contract: a Session is owned by one thread (each MPI rank
/// opens its own session), matching the DAFS provider model.
class Session {
 public:
  /// Mount `spec` and bind to its first reachable endpoint. Later endpoints
  /// are failover targets: the recovery path rotates to them when the bound
  /// filer stays unreachable or answers kFenced (deposed by a standby
  /// promotion).
  static Result<std::unique_ptr<Session>> connect(via::Nic& nic,
                                                  const MountSpec& spec = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// What the server granted at open (all zero when it granted nothing).
  struct DelegGrant {
    std::uint64_t id = 0;       // delegation id (a pure capability token)
    bool write = false;         // write delegation (else read-only)
    std::uint64_t term_ns = 0;  // lease term; renewed by every stamped op
  };

  // ---- namespace -----------------------------------------------------------
  /// Open `path`. With `grant`, the request asks for a delegation (the
  /// caller must also set kOpenWantDeleg in `flags`) and `*grant` reports
  /// what the server issued. `deleg` pre-stamps the request with an id this
  /// session did not earn itself — the striped Client passes the meta
  /// session's grant into its data-subfile opens so the server recognizes
  /// them as the holder's own plumbing; the id is then recorded as this
  /// session's stamp for the opened ino.
  Result<Fh> open(std::string_view path, std::uint16_t flags = 0,
                  DelegGrant* grant = nullptr, std::uint64_t deleg = 0);
  Result<fstore::Attrs> getattr(Fh fh);
  PStatus set_size(Fh fh, std::uint64_t size);
  PStatus remove(std::string_view path);
  PStatus mkdir(std::string_view path);
  PStatus rmdir(std::string_view path);
  PStatus rename(std::string_view from, std::string_view to);
  Result<std::vector<fstore::DirEntry>> readdir(std::string_view path);
  PStatus sync(Fh fh);

  // ---- delegations ----------------------------------------------------------
  /// Renewal/recall poll: renews the lease on the delegation stamped for
  /// `fh` and returns the renewed term (ns). kDelegExpired once the server
  /// no longer honors the id (also clears the local stamp). A pending recall
  /// surfaces through recall_pending().
  Result<std::uint64_t> deleg_renew(Fh fh);
  /// Voluntarily return the delegation stamped for `fh` (no-op when none).
  PStatus deleg_return(Fh fh);
  /// The delegation id stamped on every request for `ino` (0 = none).
  std::uint64_t deleg_of(fstore::Ino ino) const {
    auto it = delegs_.find(ino);
    return it == delegs_.end() ? 0 : it->second;
  }
  void set_deleg(fstore::Ino ino, std::uint64_t id) { delegs_[ino] = id; }
  void clear_deleg(fstore::Ino ino) { delegs_.erase(ino); }
  /// Sticky recall notification: set when any response for `ino` carried
  /// kFlagDelegRecall; the cache owner services it and clears the flag.
  bool recall_pending(fstore::Ino ino) const {
    return recalled_.count(ino) != 0;
  }
  void clear_recall(fstore::Ino ino) { recalled_.erase(ino); }
  /// Bumped at every transport recovery. A recovery can land the session on
  /// a different server incarnation that never issued our delegations, so a
  /// cache compares the epoch it recorded at grant before serving bytes.
  std::uint64_t recovery_epoch() const { return recovery_epoch_; }

  // ---- data -----------------------------------------------------------------
  Result<std::uint64_t> pread(Fh fh, std::uint64_t off,
                              std::span<std::byte> out);
  Result<std::uint64_t> pwrite(Fh fh, std::uint64_t off,
                               std::span<const std::byte> in);
  /// Scatter/gather list I/O: each IoVec names its own file offset. Uses one
  /// direct request when possible, minimizing round trips.
  Result<std::uint64_t> read_batch(Fh fh, std::span<const IoVec> iovs);
  Result<std::uint64_t> write_batch(Fh fh, std::span<const IoVec> iovs);
  /// Asynchronous list I/O: submit the batch and return the op id without
  /// waiting. The striped Client uses these to drive one in-flight batch per
  /// data server; wait()/test()/wait_all() complete them like any other op.
  Result<OpId> submit_read_batch(Fh fh, std::span<const IoVec> iovs);
  Result<OpId> submit_write_batch(Fh fh, std::span<const IoVec> iovs);

  // ---- asynchronous I/O ------------------------------------------------------
  Result<OpId> submit_pread(Fh fh, std::uint64_t off, std::span<std::byte> out);
  Result<OpId> submit_pwrite(Fh fh, std::uint64_t off,
                             std::span<const std::byte> in);
  /// Block until `op` completes; optionally return bytes transferred.
  PStatus wait(OpId op, std::uint64_t* bytes = nullptr);
  /// Non-blocking completion check; frees the op when it returns done=true.
  Result<bool> test(OpId op, std::uint64_t* bytes = nullptr);
  PStatus wait_all(std::span<const OpId> ops);
  /// Completion-group wait: block until any of `ops` completes; returns its
  /// index within `ops` (and frees that op). kInval on an empty span.
  Result<std::size_t> wait_any(std::span<const OpId> ops,
                               std::uint64_t* bytes = nullptr);

  // ---- locks & counters -------------------------------------------------------
  /// Acquire with bounded retry on conflict.
  PStatus lock(Fh fh, std::uint64_t start, std::uint64_t len, bool exclusive);
  PStatus try_lock(Fh fh, std::uint64_t start, std::uint64_t len,
                   bool exclusive);
  PStatus unlock(Fh fh, std::uint64_t start, std::uint64_t len);
  Result<std::uint64_t> fetch_add(std::string_view key, std::uint64_t delta);
  PStatus set_counter(std::string_view key, std::uint64_t value);

  // ---- telemetry -------------------------------------------------------------
  /// Live stats snapshot from the bound filer. Served outside the server's
  /// admission control (succeeds while the data plane sheds kBusy) and by
  /// fenced/follower members (which report their role/term instead of
  /// refusing).
  Result<StatsSnapshot> query_stats();

  std::uint64_t session_id() const { return session_id_; }
  std::uint64_t client_id() const { return client_id_; }
  via::Nic& nic() { return nic_; }
  const ClientConfig& config() const { return cfg_; }
  /// Endpoint list this session was mounted with (never empty).
  const std::vector<Endpoint>& endpoints() const { return eps_; }
  /// Index of the endpoint the session is currently bound to.
  std::size_t endpoint_index() const { return ep_; }
  /// Service name of the bound endpoint.
  const std::string& active_service() const { return eps_[ep_].service; }
  /// Retry policy of the bound endpoint.
  const RetryPolicy& policy() const { return eps_[ep_].retry; }
  /// Times the session rotated to a different endpoint (failovers).
  std::uint64_t failovers() const { return failovers_; }
  /// Registration-cache counters (hits/misses/evictions).
  std::uint64_t reg_cache_hits() const { return reg_hits_; }
  std::uint64_t reg_cache_misses() const { return reg_misses_; }
  /// Change the per-request deadline budget (virtual ns, 0 = none).
  void set_deadline(std::uint64_t ns) { deadline_ns_ = ns; }
  std::uint64_t deadline() const { return deadline_ns_; }
  /// Handles invalidated by a server restart that found the file changed
  /// underneath them (removed / recreated): ops on them return kStale.
  bool is_stale(Fh fh) const { return stale_.count(fh.ino) != 0; }
  std::size_t stale_count() const { return stale_.size(); }

 private:
  struct Slot {
    bool in_use = false;
    bool done = false;
    Proc proc{};                 // procedure in flight (RTT attribution)
    fstore::Ino ino = fstore::kInvalidIno;  // target file (recall routing)
    std::uint32_t seq = 0;       // session sequence number of the request
    int busy_retries = 0;        // kBusy retransmissions so far
    int reclaim_retries = 0;     // kBadSession-triggered reclaims so far
    std::size_t wire_len = 0;    // request bytes (for retransmission)
    sim::Time t_submit = 0;      // virtual doorbell time of the request
    std::uint64_t trace_id = 0;  // trace the request belongs to (0 = none)
    std::uint64_t span_id = 0;   // this request's client-side span id
    std::uint64_t parent_span = 0;  // span open at submit (the MPI-IO op)
    MsgHeader resp;
    std::vector<std::byte> payload;   // small response payloads (attrs, dirents)
    std::byte* user_buf = nullptr;    // inline-read destination
    std::uint64_t user_cap = 0;
    /// Direct-read destination when the request's segments were contiguous
    /// (memory and file): the server's payload CRC then covers exactly the
    /// first resp.len bytes here. Null = skip client-side wire verification.
    std::byte* verify_buf = nullptr;
    std::vector<via::MemHandle> temp_handles;  // dereg on completion
    std::vector<std::byte> send_buf;
    via::MemHandle send_handle = via::kInvalidMemHandle;
    via::Descriptor send_desc;
  };

  struct RecvBuf {
    std::vector<std::byte> mem;
    via::MemHandle handle = via::kInvalidMemHandle;
    via::Descriptor desc;
  };

  struct RegEntry {
    std::uintptr_t base = 0;
    std::size_t len = 0;
    via::MemHandle handle = via::kInvalidMemHandle;
    std::uint64_t last_use = 0;
  };

  Session(via::Nic& nic, MountSpec spec);
  PStatus do_connect();
  /// One establishment pass against the bound endpoint (connect retry loop,
  /// buffer arming, kConnect RPC). do_connect rotates endpoints between
  /// passes when the answer is kFenced.
  PStatus connect_once();
  /// Rotate to the next endpoint in the mount order (wraps; reseeds the
  /// backoff jitter from the new endpoint's policy).
  void advance_endpoint();
  /// Demote the bound endpoint to the back of the rotation and bind the
  /// next one. Used when the endpoint *answered* but refused service
  /// (kFenced / kNotLeader): it is alive yet useless for now, so it should
  /// be the last thing reprobed — unlike a transport failure, where the
  /// plain in-place rotation of advance_endpoint is right.
  void demote_endpoint();
  /// Bind the endpoint tagged with quorum member `aux - 1` (the wire
  /// encoding of a kNotLeader leader hint; aux == 0 means no hint). Returns
  /// false when the hint is empty, unknown, or names the bound endpoint.
  bool follow_leader_hint(std::uint64_t aux);

  /// Allocate a free request slot; kProtoError if the session is dead,
  /// kInval if the caller exceeded the credit limit.
  Result<OpId> alloc_slot();
  void free_slot(OpId id);
  /// Build+transmit the request in slot `id`. MsgView over the slot's send
  /// buffer must already be finalized.
  PStatus transmit(OpId id);
  /// Pump one response off the VI (blocking). Returns false if the session
  /// died.
  bool pump_one();
  /// Handle one successfully-received response buffer: complete the matching
  /// slot (or count it as stale) and repost the buffer. Returns true when it
  /// completed a live slot.
  bool process_response(RecvBuf& rb);
  PStatus wait_slot(OpId id);

  // ---- transport-failure recovery ----
  /// Reconnect, resume the session, and retransmit in-flight requests, with
  /// capped jittered exponential backoff between attempts. Returns false
  /// (and marks the session dead) once attempts are exhausted.
  bool recover();
  enum class ResumeOutcome {
    kFailed,     // transport error / garbled answer: retry the attempt
    kResumed,    // server still had the session (connection-level failure)
    kLostState,  // kBadSession: server restarted, reclaim from leases
    kFenced,     // server was deposed: rotate to the next endpoint
    kNotLeader,  // quorum follower: follow its leader hint (or demote)
  };
  ResumeOutcome resume_session();
  /// Rebuild server-side state from client leases after a server restart:
  /// fresh connect, re-open leased paths (validating (ino, gen) identity;
  /// mismatches mark the handle stale), re-acquire leased byte-range locks
  /// with kLockReclaim, then repoint in-flight requests at the new session.
  bool reclaim_session();
  bool retransmit_inflight();
  /// One synchronous RPC over the dedicated resume buffer (usable while all
  /// regular slots are occupied by in-flight requests). The caller builds
  /// the request in resume_buf_; identity/seq stamping happens here.
  struct RawResp {
    bool transport_ok = false;  // false: send/recv died, retry the attempt
    PStatus status = PStatus::kProtoError;
    MsgHeader hdr{};
    fstore::Attrs attrs{};
    bool have_attrs = false;
  };
  RawResp raw_rpc();
  /// Retransmit a kBusy-shed request after honoring the retry-after hint.
  /// False once the slot's retry budget is exhausted (or expiry was the
  /// shed reason): the caller surfaces kBusy.
  bool busy_retry(OpId id);
  /// Retransmit a kCorrupt-answered request (fresh seq — a kCorrupt answer
  /// means the op never executed or is an idempotent read, and the server
  /// never replay-caches failures). Backs off between attempts so a scrub
  /// repair can land; false once the retry budget is exhausted.
  bool corrupt_retry(OpId id);
  /// Header flags the session's IntegrityMode asks for on data procedures.
  std::uint16_t integrity_flags() const;
  /// Record the request's submit->response RTT into the fabric histogram
  /// registry, keyed by procedure ("dafs.rtt_ns.<proc>").
  void record_rtt(const Slot& sl);

  /// Get a NIC handle for [buf, buf+len) suitable for server-side RDMA.
  via::MemHandle reg_for(const std::byte* buf, std::size_t len, OpId slot);
  void note_use(RegEntry& e);

  Result<OpId> submit_io(Proc proc, Fh fh, std::span<const IoVec> iovs,
                         bool writing);
  Result<std::uint64_t> run_sync(OpId id);
  /// `deleg` overrides the per-ino stamp (opens resolve by path, so the fh
  /// carries no ino to look the stamp up by); 0 = use the stamp map.
  Result<OpId> submit_simple(Proc proc, std::string_view name, Fh fh,
                             std::uint64_t offset, std::uint64_t len,
                             std::uint64_t aux, std::uint16_t flags,
                             std::uint64_t deleg = 0);

  /// Leases: the client-side record of server state it can rebuild after a
  /// crash-restart wiped the server's volatile tables.
  struct OpenLease {
    std::string path;
    fstore::Ino ino = fstore::kInvalidIno;
    std::uint64_t gen = 0;  // (ino, gen) names one file incarnation
  };
  struct LockLease {
    fstore::Ino ino = fstore::kInvalidIno;
    std::uint64_t start = 0;
    std::uint64_t len = 0;
    bool exclusive = false;
  };
  void record_open_lease(std::string_view path, fstore::Ino ino,
                         std::uint64_t gen);
  void record_lock_lease(fstore::Ino ino, std::uint64_t start,
                         std::uint64_t len, bool exclusive);
  void drop_lock_lease(fstore::Ino ino, std::uint64_t start,
                       std::uint64_t len);

  via::Nic& nic_;
  ClientConfig cfg_;
  /// Normalized endpoint list from the MountSpec (never empty) and the
  /// index of the endpoint currently bound.
  std::vector<Endpoint> eps_;
  std::size_t ep_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t rotations_ = 0;
  /// Last kNotLeader leader hint seen (wire encoding: member index + 1,
  /// 0 = none). Recorded wherever a kNotLeader answer lands — connect,
  /// resume, wait — and consumed by the recovery rotation.
  std::uint64_t leader_hint_ = 0;
  via::ProtectionTag ptag_;
  /// Owned by pointer so recovery can replace the endpoint: a VI that has
  /// seen a transport failure is dead for good, but the NIC registrations
  /// backing the session's buffers survive it.
  std::unique_ptr<via::Vi> vi_;
  std::uint64_t session_id_ = 0;
  std::uint64_t client_id_ = 0;
  std::uint64_t deadline_ns_ = 0;
  std::uint32_t next_seq_ = 1;
  bool dead_ = false;
  bool recovering_ = false;
  sim::Rng backoff_rng_;

  std::vector<OpenLease> leases_;
  std::vector<LockLease> lock_leases_;
  std::unordered_set<fstore::Ino> stale_;
  /// Per-ino delegation stamp: every request for the ino carries this id in
  /// MsgHeader::deleg, which is both the server's holder check and the
  /// per-request lease renewal.
  std::unordered_map<fstore::Ino, std::uint64_t> delegs_;
  std::unordered_set<fstore::Ino> recalled_;
  std::uint64_t recovery_epoch_ = 0;

  std::vector<Slot> slots_;
  std::vector<OpId> free_slots_;
  std::vector<RecvBuf> recv_bufs_;

  /// Dedicated send buffer for the resume handshake: every regular slot may
  /// already be occupied by an in-flight request when the connection dies.
  std::vector<std::byte> resume_buf_;
  via::MemHandle resume_handle_ = via::kInvalidMemHandle;
  via::Descriptor resume_desc_;

  std::vector<RegEntry> reg_cache_entries_;
  std::uint64_t reg_clock_ = 0;
  std::uint64_t reg_hits_ = 0;
  std::uint64_t reg_misses_ = 0;
};

/// The striped multi-filer client: one metadata Session (filer 0) plus one
/// data Session per entry in MountSpec::data_endpoints, with a client-held
/// Layout per open file. Data requests are split at stripe boundaries, the
/// per-server sub-batches issued in parallel over each server's own VI, and
/// the partial statuses/short counts merged back into one result.
///
/// Data placement is Lustre-style round-robin: data server `s` owns stripe
/// `k` iff `k % nservers == s`. Each data server stores its stripes in a
/// subfile at the *logical* offsets (the store's sparse chunks make the gaps
/// free and read as zeros), so the logical file size is the max over the
/// subfile sizes and no offset translation exists anywhere.
///
/// Metadata — create/attrs/locks/leases/counters — all goes to the metadata
/// session. A one-data-server mount behaves exactly like a plain Session
/// (the degenerate layout), so callers can use Client unconditionally.
///
/// Concurrency contract: like Session, one owning thread.
class Client {
 public:
  /// Mount `spec`: connect the metadata session to spec.endpoints and one
  /// data session per spec.data_endpoints entry (empty data_endpoints means
  /// data lives on the metadata filer). Fails if any connect fails.
  static Result<std::unique_ptr<Client>> connect(via::Nic& nic,
                                                 const MountSpec& spec);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- namespace (metadata session, plus data-subfile fan-out) -------------
  Result<Fh> open(std::string_view path, std::uint16_t flags = 0);
  /// The typed open path: consistency level, cache budget and attr TTL.
  /// A non-zero cache_bytes on a single-data-server mount asks the server
  /// for a (write) delegation; while it is held, reads are served from the
  /// client cache and — under after_close/after_job — writes are buffered
  /// dirty and flushed on recall, close, sync, budget pressure or teardown.
  /// Striped (multi-server) mounts ignore the cache request: a delegation is
  /// per-ino on one filer and cannot cover a striped file.
  Result<Fh> open(std::string_view path, const OpenOptions& opts);
  PStatus close(Fh fh);
  /// Metadata attrs with size = the striped logical size (max over subfiles).
  Result<fstore::Attrs> getattr(Fh fh);
  PStatus set_size(Fh fh, std::uint64_t size);
  PStatus remove(std::string_view path);
  PStatus mkdir(std::string_view path);
  PStatus rmdir(std::string_view path);
  PStatus rename(std::string_view from, std::string_view to);
  Result<std::vector<fstore::DirEntry>> readdir(std::string_view path);
  PStatus sync(Fh fh);

  // ---- cache ---------------------------------------------------------------
  /// Flush `fh`'s dirty write-back extents now (close/sync do this
  /// implicitly). kDelegExpired means the server fenced the write-back: the
  /// delegation lapsed and the buffered bytes were discarded, not written.
  PStatus flush(Fh fh);
  /// Cached bytes across every open file (the dafs.cache.bytes gauge).
  std::uint64_t cache_bytes() const;
  /// Whether a live delegation currently backs `fh`'s cache (test probe;
  /// does not renew or revalidate).
  bool has_delegation(Fh fh) const;

  // ---- data (striped) -------------------------------------------------------
  Result<std::uint64_t> pread(Fh fh, std::uint64_t off,
                              std::span<std::byte> out);
  Result<std::uint64_t> pwrite(Fh fh, std::uint64_t off,
                               std::span<const std::byte> in);
  Result<std::uint64_t> read_batch(Fh fh, std::span<const IoVec> iovs);
  Result<std::uint64_t> write_batch(Fh fh, std::span<const IoVec> iovs);

  // ---- asynchronous I/O -----------------------------------------------------
  Result<OpId> submit_pread(Fh fh, std::uint64_t off, std::span<std::byte> out);
  Result<OpId> submit_pwrite(Fh fh, std::uint64_t off,
                             std::span<const std::byte> in);
  PStatus wait(OpId op, std::uint64_t* bytes = nullptr);
  PStatus wait_all(std::span<const OpId> ops);

  // ---- locks & counters (metadata session) ----------------------------------
  PStatus lock(Fh fh, std::uint64_t start, std::uint64_t len, bool exclusive);
  PStatus try_lock(Fh fh, std::uint64_t start, std::uint64_t len,
                   bool exclusive);
  PStatus unlock(Fh fh, std::uint64_t start, std::uint64_t len);
  Result<std::uint64_t> fetch_add(std::string_view key, std::uint64_t delta);
  PStatus set_counter(std::string_view key, std::uint64_t value);

  // ---- telemetry (metadata session; use data_session(i) for data filers) ----
  Result<StatsSnapshot> query_stats() { return meta_->query_stats(); }

  /// The layout every file opened through this mount gets.
  std::uint64_t stripe_size() const { return stripe_size_; }
  std::size_t data_servers() const { return data_.size(); }
  /// Layout handed out at open for `fh` (default layout if unknown).
  Layout layout_of(Fh fh) const;
  Session& meta_session() { return *meta_; }
  Session& data_session(std::size_t i) { return *data_[i]; }
  const ClientConfig& config() const { return meta_->config(); }
  void set_deadline(std::uint64_t ns);
  bool is_stale(Fh fh) const { return meta_->is_stale(fh); }

 private:
  struct OpenFile {
    Fh meta;                   // handle on the metadata session
    std::vector<Fh> data_fh;   // parallel to data_ (subfile handles)
    std::string path;          // open path (warm re-open matching)
    OpenOptions opts;
    /// Data cache; null when this open runs uncached (cache_bytes == 0,
    /// striped mount, or no delegation granted).
    std::unique_ptr<FileCache> cache;
    std::uint64_t deleg = 0;          // delegation id (0 = none held)
    bool deleg_write = false;
    std::uint64_t term_ns = 0;        // lease term at grant
    std::uint64_t lease_expires = 0;  // local conservative expiry (virtual ns)
    std::uint64_t grant_epoch = 0;    // sessions' recovery epoch at grant
    /// Attr cache under the delegation (serves getattr within attr_ttl_ns).
    fstore::Attrs attrs{};
    std::uint64_t attrs_at = 0;
    bool attrs_valid = false;
    /// First error of a background flush (recall/expiry/budget write-back):
    /// surfaced and cleared by the next flush/sync/close.
    PStatus pending_error = PStatus::kOk;
  };
  struct SubOp {
    std::size_t server = 0;    // index into data_
    OpId op = 0;               // that session's op id
    /// Pieces of the split batch this sub-op carries, in submission order
    /// (read merge distributes the server's short count over them).
    std::vector<IoVec> iovs;
  };
  struct Pending {
    Fh fh;  // the Client-level handle (size fixup on short reads)
    std::vector<SubOp> subs;
    bool writing = false;
  };

  Client(std::uint64_t stripe_size);

  /// Combined recovery epoch of the sessions a delegation spans.
  std::uint64_t sessions_epoch() const;
  /// Is the cache servable right now? Checks the grant epoch, renews an
  /// expiring lease (one kDelegRecall poll), and services a pending recall.
  /// False means: go to the server (and the deleg may have been dropped).
  bool cache_live(OpenFile& of);
  /// Push the local lease horizon after a server-renewed operation.
  void renew_local(OpenFile& of);
  /// Forget the delegation and every cached byte (stamps cleared; dirty data
  /// is attempted as a final flush first — its failure lands in
  /// pending_error, not in the caller's result).
  void drop_deleg(OpenFile& of);
  PStatus flush_dirty(OpenFile& of);
  /// Flush + return + drop, in response to a server recall.
  void service_recall(OpenFile& of);
  /// Act on a recall notification piggybacked on a completed operation.
  void check_recall(OpenFile& of);
  OpenFile* lookup_path(std::string_view path);

  OpenFile* lookup(Fh fh);
  std::size_t server_of(std::uint64_t off) const {
    return static_cast<std::size_t>((off / stripe_size_) % data_.size());
  }
  /// Split `iovs` at stripe boundaries into per-server piece lists.
  std::vector<std::vector<IoVec>> split(std::span<const IoVec> iovs) const;
  /// Striped logical size: max over the data subfile sizes.
  Result<std::uint64_t> logical_size(OpenFile& of);
  Result<std::uint64_t> run_batch(Fh fh, std::span<const IoVec> iovs,
                                  bool writing);
  Result<OpId> submit_batch(Fh fh, std::span<const IoVec> iovs, bool writing);
  PStatus finish(Pending& p, std::uint64_t* bytes);

  std::uint64_t stripe_size_ = kDefaultStripeSize;
  /// Per-client rotation of the sub-batch fan-out order. Without it every
  /// client submits to server 0 first, so under a collective all N servers
  /// service the same client's request concurrently and convoy on that one
  /// client link; skewing the start index by client identity gives each
  /// server a different first client (a Latin-square-ish schedule).
  std::size_t skew_ = 0;
  std::unique_ptr<Session> meta_;
  /// Data sessions in layout order. data_[0] targets the same filer as
  /// meta_ (its own VI and credits; same store, so the same subfile).
  std::vector<std::unique_ptr<Session>> data_;
  std::vector<std::string> data_services_;
  std::vector<OpenFile> open_files_;
  std::vector<Pending> pending_;
  std::vector<OpId> free_ops_;
  sim::Fabric* fabric_ = nullptr;
  /// Gauge registrations (dafs.cache.bytes). Declared last so gauges die
  /// before anything they sample.
  std::vector<sim::GaugeScope> gauges_;
};

}  // namespace dafs
