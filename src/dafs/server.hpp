#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dafs/lock_table.hpp"
#include "dafs/mount.hpp"
#include "dafs/proto.hpp"
#include "fstore/file_store.hpp"
#include "sim/actor.hpp"
#include "sim/fabric.hpp"
#include "sim/rng.hpp"
#include "via/vi.hpp"

namespace dafs {

struct ServerConfig {
  std::string service = "dafs";
  std::size_t msg_buf_size = kMsgBufSize;
  /// Receive descriptors pre-posted per session; clients must keep no more
  /// than this many requests outstanding (credit contract).
  std::size_t recv_credits = 16;
  /// Worker threads servicing the shared receive CQ.
  int workers = 1;
  fstore::Options store;
  /// Write-ahead journal in the store (sync = durability barrier, crash
  /// replay). Always copied into `store.journal_enabled`; the filer journals
  /// by default — the NFS baseline and raw fstore users do not.
  bool journal = true;
  /// Admission bound: when a popped request finds more than this many
  /// completions still pending in the receive CQ, it is shed with kBusy +
  /// retry-after instead of executed. 0 admits nothing but connection
  /// management (drain mode — deterministic overload for tests). Runtime
  /// adjustable via set_admission_limit().
  std::size_t admission_max_queue = 256;
  /// Retry-after hint carried in a kBusy response (virtual ns).
  std::uint64_t busy_retry_ns = 200'000;  // 200 us
  /// Real-time window after a restart in which only lease *reclaims* may
  /// take locks; fresh acquires are shed with kBusy so surviving clients can
  /// re-establish state before new traffic races them.
  std::uint64_t grace_period_ms = 50;
  /// Delegation lease term (virtual ns). Every grant and every holder
  /// request re-arms the term; a holder that stays silent this long is
  /// revoked (its cached bytes must not be served — the client enforces the
  /// same deadline locally) and its late write-backs are fenced with
  /// kDelegExpired. Must comfortably exceed busy_retry_ns so a recalled
  /// holder gets a chance to flush before the conflicting writer's retries
  /// outlast the lease, and must dwarf the virtual cost of a single data
  /// op (an 8 KiB transfer runs ~2 ms of simulated work) or ordinary
  /// traffic expires leases as a side effect.
  std::uint64_t deleg_term_ns = 10'000'000;  // 10 ms
  /// Replay-cache bounds per session: entry count and total cached response
  /// bytes. Entries acknowledged by the client's piggybacked ack_seq are
  /// evicted first; the byte cap forces out the oldest beyond it.
  std::size_t replay_entries = 64;
  std::size_t replay_max_bytes = 256 * 1024;
  /// Replicated-pair wiring. A *primary* names the standby's replication
  /// service in `repl_peer` and streams its journal there, holding each
  /// successful non-idempotent response until the standby has acknowledged
  /// the records it depends on (semi-synchronous; see replicate_barrier).
  /// A *standby* names its own replication service in `repl_listen`, starts
  /// in Role::kStandby (no client listener), imports the stream, and
  /// promotes itself when the channel dies after a completed handshake.
  /// Both empty (default) = unreplicated, exactly the old behavior.
  std::string repl_peer;
  std::string repl_listen;
  /// Policy of the replication channel: `attempts`/backoff govern sender
  /// reconnects, `deadline_ns` bounds the semi-synchronous barrier wait
  /// before a response is released unreplicated (degraded mode).
  RetryPolicy repl_retry{.attempts = 4,
                         .backoff_ns = 200'000,
                         .backoff_cap_ns = 5'000'000,
                         .jitter_seed = 1,
                         .max_busy_retries = 64,
                         .deadline_ns = 200'000'000};
  /// Quorum-replicated group (Raft-style, N >= 3). Every member lists the
  /// *whole* group's replication services here in the same order (index =
  /// member id) and names its own slot in `member_id`. Non-empty supersedes
  /// repl_peer/repl_listen: members elect a leader with randomized timeouts,
  /// the leader ships journal bytes with (term, offset) matching and commits
  /// at majority ack, and the fencing epoch IS the consensus term. Followers
  /// answer clients kNotLeader with a leader hint instead of going dark.
  std::vector<std::string> quorum_group;
  std::uint32_t member_id = 0;
  /// Randomized election timeout window and leader heartbeat period (real
  /// milliseconds, like grace_period_ms — the group runs on wall time).
  std::uint64_t election_timeout_min_ms = 50;
  std::uint64_t election_timeout_max_ms = 100;
  std::uint64_t heartbeat_ms = 10;
  /// Background integrity scrub: walk the store's allocated blocks at a
  /// paced rate, re-verifying every block checksum; in a quorum group a
  /// rotted block is repaired from a healthy replica's verified copy. Off by
  /// default (E19 sweeps the verify/scrub overhead).
  bool scrub_enabled = false;
  /// Real milliseconds between scrub steps (the scrubber, like the raft
  /// timers, runs on wall time).
  std::uint64_t scrub_interval_ms = 5;
  /// Chunks verified per scrub step.
  std::size_t scrub_chunks_per_step = 64;
};

/// The DAFS file server ("filer"): accepts sessions over VIA, serves the
/// protocol out of an in-memory FileStore whose cache slabs are registered
/// with the NIC so direct I/O RDMAs straight between the buffer cache and
/// client memory, with zero server-side data copies.
class Server {
 public:
  Server(sim::Fabric& fabric, sim::NodeId node, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  fstore::FileStore& store() { return *store_; }
  via::Nic& nic() { return nic_; }
  const ServerConfig& config() const { return cfg_; }
  sim::Fabric& fabric() { return fabric_; }

  /// Aggregate CPU breakdown across all worker actors (E5/E8 tables).
  sim::BusyBreakdown worker_busy() const;
  std::size_t session_count() const;

  /// Crash the server now (tests drive this directly; the FaultPlan's
  /// crash_server_* arming takes the same path from a worker). All volatile
  /// state — sessions, locks, replay caches, un-synced data — is discarded;
  /// the listener goes away for `restart_delay_ms` of real time and the
  /// server then restarts with a lease-reclaim grace period.
  void inject_crash(std::uint64_t restart_delay_ms);
  /// Times the server has crashed (and restarted) so far.
  std::uint64_t crash_count() const { return crash_count_.load(); }
  /// True while the server is down between crash and restart.
  bool crashed() const { return crash_pending_.load(); }
  /// True during the post-restart reclaim grace period.
  bool in_grace() const;
  /// Adjust the admission bound at runtime (see ServerConfig). 0 = drain.
  void set_admission_limit(std::size_t n) {
    admission_limit_.store(n, std::memory_order_relaxed);
  }
  std::size_t admission_limit() const {
    return admission_limit_.load(std::memory_order_relaxed);
  }
  /// Total bytes currently pinned by all sessions' replay caches.
  std::size_t replay_cache_bytes() const;

  /// Replicated role. Pair mode: kPrimary serves clients, kStandby only
  /// imports the journal stream, kFenced is a deposed primary that answers
  /// every request (except kDisconnect) with PStatus::kFenced. Quorum mode:
  /// kPrimary is the elected leader, kStandby a follower (serving kNotLeader
  /// with a leader hint), kCandidate a member soliciting votes.
  enum class Role : int { kPrimary = 0, kStandby = 1, kFenced = 2,
                          kCandidate = 3 };
  Role role() const { return role_.load(std::memory_order_acquire); }
  /// Fencing epoch: starts at 1, bumped past the deposed primary's on
  /// promotion. In quorum mode this is the consensus term.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Journal bytes the standby has acknowledged / still owes (primary side).
  std::uint64_t repl_acked_bytes() const {
    return repl_acked_.load(std::memory_order_relaxed);
  }
  std::uint64_t repl_lag_bytes() const;
  bool repl_connected() const {
    return repl_connected_.load(std::memory_order_relaxed);
  }

  /// Quorum mode (non-empty ServerConfig::quorum_group)?
  bool quorum() const { return !cfg_.quorum_group.empty(); }
  /// Majority-committed journal offset (quorum leader/follower view).
  std::uint64_t commit_offset() const {
    return commit_off_.load(std::memory_order_relaxed);
  }
  /// Member index of the leader this member believes in, or -1 when unknown.
  std::int32_t leader_member() const {
    return leader_member_.load(std::memory_order_relaxed);
  }
  /// Total journal bytes this member imported while catching up from a
  /// leader (re-silvering) since construction.
  std::uint64_t resilver_bytes() const {
    return resilver_bytes_.load(std::memory_order_relaxed);
  }
  /// Completed background-scrub passes over the whole store.
  std::uint64_t scrub_passes() const {
    return scrub_passes_.load(std::memory_order_relaxed);
  }

  /// Cumulative per-client attribution (the kStatsQuery session table and
  /// the `dafs.session.<client_id>.*` metrics entries). Keyed by the stable
  /// client_id, so the row survives reconnects — and crash/restarts: this
  /// is telemetry about the clients, not volatile session state, so
  /// do_crash deliberately leaves it alone.
  struct ClientStat {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t ops_read = 0;
    std::uint64_t ops_write = 0;
    std::uint64_t ops_meta = 0;
    std::uint64_t queue_wait_ns = 0;
    std::uint64_t service_ns = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t sheds = 0;
  };
  /// Point-in-time copy of the per-client table (tests diff it against
  /// independently-accumulated ground truth).
  std::map<std::uint64_t, ClientStat> client_stats() const;

 private:
  struct MsgBuf {
    std::vector<std::byte> mem;
    via::MemHandle handle = via::kInvalidMemHandle;
    via::Descriptor desc;
  };

  /// One cached response in a session's replay window.
  struct CachedResp {
    std::uint32_t seq = 0;
    std::vector<std::byte> bytes;  // full wire image (header + payload)
  };

  struct Session {
    std::uint64_t id = 0;
    std::unique_ptr<via::Vi> vi;
    std::vector<std::unique_ptr<MsgBuf>> recv_bufs;
    std::mutex send_mu;  // serializes response transmission per session
    bool closing = false;
    /// Duplicate-request cache: successful non-idempotent responses, keyed
    /// by session sequence number. A client that retransmits after a
    /// connection loss gets the original answer instead of a re-execution —
    /// exactly-once semantics for writes, creates, locks and counters.
    std::mutex replay_mu;
    std::deque<CachedResp> replay;
    std::size_t replay_bytes = 0;  // under replay_mu
  };

  void accept_loop();
  void worker_loop(int idx);
  /// Primary side of the replication channel: connect to repl_peer, hello,
  /// then stream journal chunks stop-and-wait, publishing acked offsets.
  void repl_sender_loop();
  /// Standby side: accept the stream, import chunks into the local journal,
  /// answer hellos (fenced once promoted), promote on channel death.
  void repl_receiver_loop();
  /// Standby -> primary transition: materialize the shipped journal, arm the
  /// reclaim grace window, bump the epoch past the deposed primary's.
  void promote();
  /// Semi-synchronous replication barrier: hold a successful non-idempotent
  /// response until the standby acked everything journaled so far, bounded
  /// by repl_retry.deadline_ns (degraded skip on timeout/disconnect).
  /// Hold a successful replicated op until the standby acks its journal
  /// records. Returns false when the op must NOT be acknowledged (the filer
  /// is crashing and the records never reached the standby): the caller
  /// drops the response so the client retransmits against the survivor.
  bool replicate_barrier();

  // ---- quorum (Raft-style) machinery; all inert unless quorum() ----------
  /// What the commit barrier tells handle_request to do with a successful
  /// replicated op.
  enum class QuorumAck {
    kOk,         // majority holds the records: acknowledge
    kDrop,       // filer is crashing: the op dies unanswered
    kNotLeader,  // lost leadership mid-wait: answer kNotLeader, client retries
  };
  /// Hold a successful replicated op until a majority of the group holds the
  /// journal records it produced (commit_off_ >= journal size at entry).
  /// Never degrades: a quorum that cannot be reached within the deadline
  /// demotes the answer to kNotLeader instead of acknowledging unreplicated.
  QuorumAck quorum_commit_barrier();
  /// Accept loop for the member's replication service: one handler thread
  /// per inbound peer connection.
  void quorum_listener_loop();
  /// Serve kVoteReq/kAppend from one peer connection until it dies. `bufs`
  /// are the pre-armed receive buffers the listener posted before accept.
  void quorum_conn_loop(std::unique_ptr<via::Vi> vi,
                        std::vector<std::unique_ptr<MsgBuf>> bufs);
  /// Election timers (follower/candidate) and leader lease (step down when a
  /// majority has been unreachable for a full lease window).
  void quorum_tick_loop();
  /// Outbound half toward one peer: vote requests while candidate, append
  /// streams + heartbeats while leader.
  void quorum_sender_loop(std::uint32_t peer);
  /// Become candidate for a fresh term and solicit votes (raft_mu_ held).
  void run_election_locked();
  /// Count a granted vote for `term`; wins the election at majority.
  void on_vote_granted(std::uint64_t term);
  /// Adopt `term` (if newer) and drop to follower (raft_mu_ held).
  void become_follower_locked(std::uint64_t term);
  /// Candidate -> leader: fence with a kTermMark, materialize the journal,
  /// reset client-facing volatile state, start serving (raft_mu_ held).
  void become_leader_locked();
  /// Advance commit_off_ to the majority-held offset, current-term gated
  /// (raft_mu_ held, leader only).
  void advance_commit_locked();
  /// Term at byte offset `off` per the kTermMark run table (raft_mu_ held).
  std::uint64_t term_at_locked(std::uint64_t off) const;
  /// Rebuild the term-run table by scanning the journal (raft_mu_ held).
  void rebuild_term_runs_locked();
  /// Reset the randomized election deadline (raft_mu_ held).
  void reset_election_deadline_locked();
  /// 1 + leader member index for the kNotLeader aux hint (0 = unknown).
  std::uint64_t leader_hint() const;

  /// Background scrubber: paced walk over the store's allocated blocks, one
  /// "scrub.pass" span per completed pass. Corrupt blocks are repaired from
  /// a quorum peer when one holds a verified copy; otherwise they stay
  /// rotted and reads keep demoting to kCorrupt instead of serving bad
  /// bytes.
  void scrub_loop();
  /// Fetch a verified copy of block `chunk` of `ino` from a healthy quorum
  /// peer (kBlockFetch) and overwrite the rotted local block. Sweeps the
  /// group under cfg_.repl_retry's capped, jittered backoff; false when no
  /// peer could supply a clean copy within the budget.
  bool scrub_repair_block(fstore::Ino ino, std::uint64_t chunk);

  void handle_request(Session& s, MsgBuf& req, MsgBuf& out);
  /// Fill a kStatsQuery response: WireStatsHeader + per-client session table
  /// + counter/gauge kv section, clipped to the message buffer (truncated
  /// flag set when anything was dropped).
  void do_stats(MsgView& resp);
  /// Merge an accounting delta into the per-client table; first sight of a
  /// client_id also registers its `dafs.session.<cid>.*` gauges. client_id 0
  /// (a client's very first kConnect, before it has an identity) is ignored.
  void account_client(std::uint64_t client_id, const ClientStat& delta);
  void send_response(Session& s, MsgBuf& out);
  /// Tear down all volatile state and schedule the restart (crash path).
  void do_crash(std::uint64_t restart_delay_ms);
  /// Evict replay entries (and durable dup-filter records) the client has
  /// acknowledged via the piggybacked cumulative ack.
  void apply_ack(Session& s, const MsgHeader& req);
  /// Post a send-side descriptor on the session VI and reap its completion.
  /// Caller must hold s.send_mu.
  via::DescStatus post_and_reap(Session& s, via::Descriptor& d);

  // ---- delegations (volatile leader state; see proto.hpp [ext]) ----------
  /// One live delegation. Never journaled or replicated: a restart, a
  /// standby promotion or a quorum leader change invalidates every id, and
  /// a stale holder's write-back is fenced by id mismatch (kDelegExpired).
  struct Deleg {
    std::uint64_t id = 0;
    std::uint64_t session_id = 0;  // granting (metadata) session
    bool write = false;
    sim::Time expires_at = 0;      // renewed by every holder request
    bool recalling = false;
    sim::Time recall_started = 0;  // "dafs.deleg.recall" span start
  };
  /// Admission gate for data-plane requests touching `ino` (deleg_mu_ taken
  /// inside). A live holder's request (matching `deleg` id) renews the lease
  /// and picks up a pending recall flag; a foreign access triggers a recall
  /// (kBusy + retry-after until the holder returns or the term lapses); a
  /// write carrying a dead id is fenced with kDelegExpired. Returns the
  /// status already written into `resp` (kOk = proceed with the op).
  PStatus deleg_gate(std::uint64_t ino, std::uint64_t deleg_id,
                     bool write_class, MsgView& resp);
  /// kDelegRecall (lease renewal / recall poll) and kDelegReturn.
  void do_deleg(MsgView& req, MsgView& resp);
  /// Try to grant a delegation for a successful open (deleg_mu_ taken
  /// inside): sole opener, no live delegation, not in the reclaim grace
  /// window. Writes grant id/term/kind into the open response.
  void maybe_grant_deleg(Session& s, const MsgHeader& req, MsgView& resp,
                         std::uint64_t ino);
  /// Record the "dafs.deleg.recall" span for a recall that just completed
  /// (deleg_mu_ held). `how` lands in the span attrs: returned / expired /
  /// revoked.
  void finish_recall_locked(std::uint64_t ino, Deleg& d, const char* how);
  /// Drop every delegation and opener record `session_id` holds (clean
  /// disconnect path; crash paths clear the whole tables instead).
  void release_session_delegs(std::uint64_t session_id);

  // Request handlers; `req` is the parsed request, `resp` the response being
  // built (header pre-initialized from the request).
  void do_open(Session& s, MsgView& req, MsgView& resp);
  void do_namespace(MsgView& req, MsgView& resp);
  void do_read_inline(MsgView& req, MsgView& resp);
  void do_write_inline(MsgView& req, MsgView& resp);
  void do_read_direct(Session& s, MsgView& req, MsgView& resp);
  void do_write_direct(Session& s, MsgView& req, MsgView& resp);
  void do_readdir(MsgView& req, MsgView& resp);
  void do_lock(Session& s, MsgView& req, MsgView& resp);
  /// kConnect with kConnectResume: rebind a reconnected client to its old
  /// session identity (locks, replay cache) after a transport failure.
  void do_resume(Session& s, MsgView& req, MsgView& resp);

  /// Memory handle covering a buffer-cache span (slab registration lookup).
  via::MemHandle slab_handle(const std::byte* p) const;

  sim::Fabric& fabric_;
  sim::NodeId node_;
  ServerConfig cfg_;
  via::Nic nic_;
  via::ProtectionTag ptag_;
  std::unique_ptr<fstore::FileStore> store_;
  LockTable locks_;

  via::CompletionQueue recv_cq_;

  mutable std::mutex slabs_mu_;
  std::vector<std::pair<const std::byte*, std::pair<std::size_t, via::MemHandle>>>
      slabs_;

  /// Delegation table and opener tracking, all under deleg_mu_. `openers_`
  /// refcounts (ino, session) opens so grants only go to sole openers;
  /// `session_opens_` is the reverse index a disconnect sweeps.
  mutable std::mutex deleg_mu_;
  std::unordered_map<std::uint64_t, Deleg> delegs_;
  std::unordered_map<std::uint64_t, std::map<std::uint64_t, int>> openers_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> session_opens_;
  /// Monotonic grant counter, deliberately NOT reset by do_crash (the Server
  /// object outlives its crashes), salted with the member id and crash count
  /// so no two incarnations ever mint the same delegation id.
  std::uint64_t next_deleg_ = 1;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_map<via::Vi*, Session*> by_vi_;
  std::uint64_t next_session_ = 1;

  std::atomic<bool> running_{false};
  std::atomic<bool> crash_pending_{false};
  std::atomic<std::uint64_t> crash_count_{0};
  std::atomic<std::size_t> admission_limit_{0};
  /// Grace-period end, steady_clock ticks since epoch (0 = no grace).
  std::atomic<std::int64_t> grace_until_{0};
  mutable std::mutex crash_mu_;
  std::chrono::steady_clock::time_point restart_at_{};  // under crash_mu_
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::unique_ptr<sim::Actor>> worker_actors_;
  std::unique_ptr<sim::Actor> accept_actor_;
  std::vector<std::unique_ptr<MsgBuf>> worker_send_bufs_;

  // Replication state (inert when repl_peer and repl_listen are both empty).
  std::atomic<Role> role_{Role::kPrimary};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> repl_acked_{0};
  std::atomic<std::uint64_t> peer_epoch_{0};
  std::atomic<bool> repl_connected_{false};
  std::mutex repl_mu_;
  std::condition_variable repl_cv_;
  /// Sender-side channel VI, under repl_mu_. do_crash() disconnects it (so
  /// the standby observes the death promptly); only the sender resets it.
  std::unique_ptr<via::Vi> repl_vi_;
  std::thread repl_thread_;
  std::unique_ptr<sim::Actor> repl_actor_;

  // Quorum (Raft) state, inert when cfg_.quorum_group is empty. The current
  // term lives in epoch_ (the fencing epoch IS the term); epoch_ and
  // voted_for_ are deliberately NOT cleared by do_crash — they model the
  // durable Raft metadata a real filer would fsync beside its journal.
  /// One run of journal bytes appended under a single term: [start_off,
  /// next run's start_off) carries `term`. Rebuilt from kTermMark records.
  struct TermRun {
    std::uint64_t start_off = 0;
    std::uint64_t term = 0;
  };
  static constexpr std::uint32_t kNoVote = UINT32_MAX;
  mutable std::mutex raft_mu_;
  std::condition_variable raft_cv_;
  std::vector<TermRun> term_runs_;             // under raft_mu_
  std::uint32_t voted_for_ = kNoVote;          // under raft_mu_ (durable)
  std::uint32_t votes_ = 0;                    // under raft_mu_ (candidate)
  std::uint64_t votes_term_ = 0;               // under raft_mu_
  std::vector<std::uint64_t> match_off_;       // under raft_mu_ (leader)
  std::vector<std::uint64_t> next_off_;        // under raft_mu_ (leader)
  std::vector<std::chrono::steady_clock::time_point>
      peer_heard_;                             // under raft_mu_ (leader lease)
  std::chrono::steady_clock::time_point election_deadline_{};  // raft_mu_
  sim::Time election_started_{0};              // under raft_mu_ (span start)
  std::unique_ptr<sim::Rng> raft_rng_;         // under raft_mu_
  std::atomic<std::uint64_t> commit_off_{0};
  std::atomic<std::int32_t> leader_member_{-1};
  std::atomic<std::uint64_t> resilver_bytes_{0};
  /// Inbound peer-connection VIs, so do_crash can sever them and the peers
  /// observe the death promptly.
  std::mutex quorum_mu_;
  std::vector<via::Vi*> quorum_conn_vis_;      // under quorum_mu_
  /// One inbound-connection handler thread per accepted peer VI. `done` is
  /// set by the handler on exit so the listener can reap finished slots
  /// eagerly — connection churn must not accumulate unjoined threads (each
  /// one pins its stack mapping until joined).
  struct ConnSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<ConnSlot>> quorum_conn_threads_;  // quorum_mu_
  std::thread quorum_listener_thread_;
  std::thread quorum_tick_thread_;
  std::vector<std::thread> quorum_sender_threads_;

  // Background scrub state (inert unless cfg_.scrub_enabled).
  std::thread scrub_thread_;
  std::atomic<std::uint64_t> scrub_passes_{0};

  // Per-client attribution table (see ClientStat). Deliberately survives
  // do_crash: the rows describe client behavior, not volatile session state.
  mutable std::mutex cstats_mu_;
  std::map<std::uint64_t, ClientStat> cstats_;  // under cstats_mu_

  // RAII gauge registrations. Declared LAST so they are destroyed FIRST:
  // every callback captures `this` (and the members above), so the scopes
  // must unregister before anything they read starts tearing down.
  std::vector<sim::GaugeScope> gauges_;
  std::vector<sim::GaugeScope> session_gauges_;  // grown under cstats_mu_
};

}  // namespace dafs
