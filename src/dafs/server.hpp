#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dafs/lock_table.hpp"
#include "dafs/proto.hpp"
#include "fstore/file_store.hpp"
#include "sim/actor.hpp"
#include "sim/fabric.hpp"
#include "via/vi.hpp"

namespace dafs {

struct ServerConfig {
  std::string service = "dafs";
  std::size_t msg_buf_size = kMsgBufSize;
  /// Receive descriptors pre-posted per session; clients must keep no more
  /// than this many requests outstanding (credit contract).
  std::size_t recv_credits = 16;
  /// Worker threads servicing the shared receive CQ.
  int workers = 1;
  fstore::Options store;
};

/// The DAFS file server ("filer"): accepts sessions over VIA, serves the
/// protocol out of an in-memory FileStore whose cache slabs are registered
/// with the NIC so direct I/O RDMAs straight between the buffer cache and
/// client memory, with zero server-side data copies.
class Server {
 public:
  Server(sim::Fabric& fabric, sim::NodeId node, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  fstore::FileStore& store() { return *store_; }
  via::Nic& nic() { return nic_; }
  const ServerConfig& config() const { return cfg_; }
  sim::Fabric& fabric() { return fabric_; }

  /// Aggregate CPU breakdown across all worker actors (E5/E8 tables).
  sim::BusyBreakdown worker_busy() const;
  std::size_t session_count() const;

 private:
  struct MsgBuf {
    std::vector<std::byte> mem;
    via::MemHandle handle = via::kInvalidMemHandle;
    via::Descriptor desc;
  };

  /// One cached response in a session's replay window.
  struct CachedResp {
    std::uint32_t seq = 0;
    std::vector<std::byte> bytes;  // full wire image (header + payload)
  };

  struct Session {
    std::uint64_t id = 0;
    std::unique_ptr<via::Vi> vi;
    std::vector<std::unique_ptr<MsgBuf>> recv_bufs;
    std::mutex send_mu;  // serializes response transmission per session
    bool closing = false;
    /// Duplicate-request cache: successful non-idempotent responses, keyed
    /// by session sequence number. A client that retransmits after a
    /// connection loss gets the original answer instead of a re-execution —
    /// exactly-once semantics for writes, creates, locks and counters.
    std::mutex replay_mu;
    std::deque<CachedResp> replay;
  };

  void accept_loop();
  void worker_loop(int idx);
  void handle_request(Session& s, MsgBuf& req, MsgBuf& out);
  void send_response(Session& s, MsgBuf& out);
  /// Post a send-side descriptor on the session VI and reap its completion.
  /// Caller must hold s.send_mu.
  via::DescStatus post_and_reap(Session& s, via::Descriptor& d);

  // Request handlers; `req` is the parsed request, `resp` the response being
  // built (header pre-initialized from the request).
  void do_open(MsgView& req, MsgView& resp);
  void do_namespace(MsgView& req, MsgView& resp);
  void do_read_inline(MsgView& req, MsgView& resp);
  void do_write_inline(MsgView& req, MsgView& resp);
  void do_read_direct(Session& s, MsgView& req, MsgView& resp);
  void do_write_direct(Session& s, MsgView& req, MsgView& resp);
  void do_readdir(MsgView& req, MsgView& resp);
  void do_lock(Session& s, MsgView& req, MsgView& resp);
  /// kConnect with kConnectResume: rebind a reconnected client to its old
  /// session identity (locks, replay cache) after a transport failure.
  void do_resume(Session& s, MsgView& req, MsgView& resp);

  /// Memory handle covering a buffer-cache span (slab registration lookup).
  via::MemHandle slab_handle(const std::byte* p) const;

  sim::Fabric& fabric_;
  sim::NodeId node_;
  ServerConfig cfg_;
  via::Nic nic_;
  via::ProtectionTag ptag_;
  std::unique_ptr<fstore::FileStore> store_;
  LockTable locks_;

  via::CompletionQueue recv_cq_;

  mutable std::mutex slabs_mu_;
  std::vector<std::pair<const std::byte*, std::pair<std::size_t, via::MemHandle>>>
      slabs_;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_map<via::Vi*, Session*> by_vi_;
  std::uint64_t next_session_ = 1;

  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::unique_ptr<sim::Actor>> worker_actors_;
  std::unique_ptr<sim::Actor> accept_actor_;
  std::vector<std::unique_ptr<MsgBuf>> worker_send_bufs_;
};

}  // namespace dafs
