#include "dafs/cache.hpp"

#include <algorithm>
#include <cstring>

namespace dafs {

FileCache::Map::iterator FileCache::first_overlap(std::uint64_t off) {
  auto it = map_.upper_bound(off);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.data.size() > off) return prev;
  }
  return it;
}

bool FileCache::read(std::uint64_t off, std::span<std::byte> out) {
  std::uint64_t pos = off;
  const std::uint64_t end = off + out.size();
  auto it = first_overlap(off);
  while (pos < end) {
    if (it == map_.end() || it->first > pos) return false;  // gap
    Ext& e = it->second;
    const std::uint64_t take =
        std::min(end, it->first + e.data.size()) - pos;
    std::memcpy(out.data() + (pos - off), e.data.data() + (pos - it->first),
                take);
    e.lru = ++clock_;
    pos += take;
    ++it;
  }
  return true;
}

void FileCache::overlay_dirty(std::uint64_t off,
                              std::span<std::byte> buf) const {
  const std::uint64_t end = off + buf.size();
  for (const auto& [start, e] : map_) {
    if (start >= end) break;
    if (!e.dirty || start + e.data.size() <= off) continue;
    const std::uint64_t lo = std::max(off, start);
    const std::uint64_t hi = std::min(end, start + e.data.size());
    std::memcpy(buf.data() + (lo - off), e.data.data() + (lo - start),
                hi - lo);
  }
}

void FileCache::account_remove(const Ext& e, std::uint64_t n) {
  bytes_ -= n;
  if (e.dirty) dirty_bytes_ -= n;
}

void FileCache::punch(std::uint64_t off, std::uint64_t len, bool keep_dirty) {
  const std::uint64_t end = off + len;
  auto it = first_overlap(off);
  while (it != map_.end() && it->first < end) {
    Ext& e = it->second;
    const std::uint64_t estart = it->first;
    const std::uint64_t eend = estart + e.data.size();
    if (keep_dirty && e.dirty) {
      ++it;
      continue;
    }
    if (estart < off && eend > end) {
      // The punch lands strictly inside one extent: split into two remnants.
      Ext right;
      right.data.assign(e.data.begin() + static_cast<std::ptrdiff_t>(end - estart),
                        e.data.end());
      right.dirty = e.dirty;
      right.lru = e.lru;
      account_remove(e, len);
      e.data.resize(off - estart);
      it = map_.emplace_hint(std::next(it), end, std::move(right));
      ++it;
    } else if (estart < off) {
      // Trim the tail.
      account_remove(e, eend - off);
      e.data.resize(off - estart);
      ++it;
    } else if (eend > end) {
      // Trim the head: re-key the remnant at `end`.
      Ext rest;
      rest.data.assign(e.data.begin() + static_cast<std::ptrdiff_t>(end - estart),
                       e.data.end());
      rest.dirty = e.dirty;
      rest.lru = e.lru;
      account_remove(e, end - estart);
      it = map_.erase(it);
      it = map_.emplace_hint(it, end, std::move(rest));
      ++it;
    } else {
      // Fully covered.
      account_remove(e, e.data.size());
      it = map_.erase(it);
    }
  }
}

void FileCache::insert(std::uint64_t off, std::span<const std::byte> data,
                       bool dirty) {
  if (data.empty()) return;
  Ext e;
  e.data.assign(data.begin(), data.end());
  e.dirty = dirty;
  e.lru = ++clock_;
  bytes_ += data.size();
  if (dirty) dirty_bytes_ += data.size();
  map_.emplace(off, std::move(e));
}

void FileCache::put_dirty(std::uint64_t off, std::span<const std::byte> data) {
  if (data.empty()) return;
  punch(off, data.size(), /*keep_dirty=*/false);
  insert(off, data, /*dirty=*/true);
  evict_clean();
}

void FileCache::put_clean(std::uint64_t off, std::span<const std::byte> data) {
  if (data.empty()) return;
  punch(off, data.size(), /*keep_dirty=*/true);
  // Insert only into the gaps between surviving (dirty) extents.
  std::uint64_t pos = off;
  const std::uint64_t end = off + data.size();
  auto it = first_overlap(off);
  while (pos < end) {
    const std::uint64_t gap_end =
        (it == map_.end() || it->first >= end) ? end : it->first;
    if (gap_end > pos) {
      insert(pos, data.subspan(pos - off, gap_end - pos), /*dirty=*/false);
    }
    if (it == map_.end() || it->first >= end) break;
    pos = it->first + it->second.data.size();
    ++it;
  }
  evict_clean();
}

std::vector<FileCache::Extent> FileCache::take_dirty() {
  std::vector<Extent> out;
  for (auto& [start, e] : map_) {
    if (!e.dirty) continue;
    e.dirty = false;
    dirty_bytes_ -= e.data.size();
    if (!out.empty() &&
        out.back().off + out.back().data.size() == start) {
      out.back().data.insert(out.back().data.end(), e.data.begin(),
                             e.data.end());
    } else {
      Extent x;
      x.off = start;
      x.data = e.data;  // stays cached (now clean)
      out.push_back(std::move(x));
    }
  }
  return out;
}

std::uint64_t FileCache::dirty_end() const {
  std::uint64_t end = 0;
  for (const auto& [start, e] : map_) {
    if (e.dirty) end = std::max(end, start + e.data.size());
  }
  return end;
}

void FileCache::clear() {
  map_.clear();
  bytes_ = 0;
  dirty_bytes_ = 0;
}

void FileCache::drop_clean() {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.dirty) {
      ++it;
    } else {
      bytes_ -= it->second.data.size();
      it = map_.erase(it);
    }
  }
}

void FileCache::evict_clean() {
  while (bytes_ > capacity_ && bytes_ - dirty_bytes_ > 0) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.dirty) continue;
      if (victim == map_.end() || it->second.lru < victim->second.lru) {
        victim = it;
      }
    }
    if (victim == map_.end()) return;
    bytes_ -= victim->second.data.size();
    map_.erase(victim);
  }
}

}  // namespace dafs
