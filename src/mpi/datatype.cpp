#include "mpi/datatype.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mpi {

/// Internal representation: every constructor is lowered to one of three
/// shapes — a basic block, a list of (displacement, child, count, blocklen)
/// pieces, or a resized wrapper. Keeping the set small makes flatten easy to
/// verify.
struct Datatype::Node {
  enum class Kind : std::uint8_t { kBasic, kPieces, kResized };

  struct Piece {
    std::int64_t displ;       // bytes from element base
    std::uint32_t count;      // children in this piece (tiled at extent)
    std::uint32_t blocklen;   // children per tile (contiguous run of child)
    std::shared_ptr<const Node> child;
  };

  Kind kind = Kind::kBasic;
  std::uint32_t basic_size = 0;
  std::vector<Piece> pieces;
  std::shared_ptr<const Node> inner;  // resized

  // cached metrics
  std::uint64_t size = 0;
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  bool contiguous = false;

  std::int64_t extent() const { return ub - lb; }
};

namespace {

using Node = Datatype::Node;

std::shared_ptr<const Node> finish(std::shared_ptr<Node> n) {
  // Compute size / bounds / contiguity.
  switch (n->kind) {
    case Node::Kind::kBasic:
      n->size = n->basic_size;
      n->lb = 0;
      n->ub = n->basic_size;
      n->contiguous = true;
      break;
    case Node::Kind::kPieces: {
      n->size = 0;
      bool first = true;
      for (const auto& p : n->pieces) {
        if (p.count == 0 || p.blocklen == 0) continue;
        const std::int64_t child_ext = p.child->extent();
        const std::uint64_t tiles = p.count;
        n->size += static_cast<std::uint64_t>(p.count) * p.blocklen *
                   p.child->size;
        // Bounds: tiles are placed at displ + i*block_span where block_span
        // is blocklen*child_extent... no: a Piece is `count` repetitions,
        // each repetition is `blocklen` children back to back; repetitions
        // are packed contiguously too (stride handled by emitting several
        // pieces). So the piece spans [displ + min, displ + total + max).
        const std::int64_t span =
            static_cast<std::int64_t>(tiles) * p.blocklen * child_ext;
        const std::int64_t plb =
            p.displ + p.child->lb;
        const std::int64_t pub = p.displ + p.child->lb + span;
        if (first) {
          n->lb = std::min(plb, pub);
          n->ub = std::max(plb, pub);
          first = false;
        } else {
          n->lb = std::min({n->lb, plb, pub});
          n->ub = std::max({n->ub, plb, pub});
        }
      }
      if (first) {  // empty type
        n->lb = 0;
        n->ub = 0;
      }
      n->contiguous = false;  // refined below via flatten check
      break;
    }
    case Node::Kind::kResized:
      n->size = n->inner->size;
      n->contiguous = false;
      break;
  }
  return n;
}

/// Decide contiguity by flattening one element (cheap for bounded types).
bool compute_contiguous(const Datatype& t) {
  std::vector<Segment> segs;
  t.flatten(segs);
  return segs.size() == 1 && segs[0].offset == 0 &&
         segs[0].len == static_cast<std::uint64_t>(t.extent()) &&
         t.lb() == 0;
}

void flatten_node(const Node& n, std::vector<Segment>& out,
                  std::int64_t base);

void emit(std::vector<Segment>& out, std::int64_t off, std::uint64_t len) {
  if (len == 0) return;
  if (!out.empty() &&
      out.back().offset + static_cast<std::int64_t>(out.back().len) == off) {
    out.back().len += len;
    return;
  }
  out.push_back(Segment{off, len});
}

void flatten_node(const Node& n, std::vector<Segment>& out,
                  std::int64_t base) {
  switch (n.kind) {
    case Node::Kind::kBasic:
      emit(out, base, n.basic_size);
      break;
    case Node::Kind::kPieces:
      for (const auto& p : n.pieces) {
        const std::int64_t child_ext = p.child->extent();
        std::int64_t pos = base + p.displ;
        for (std::uint32_t i = 0; i < p.count; ++i) {
          for (std::uint32_t b = 0; b < p.blocklen; ++b) {
            if (p.child->kind == Node::Kind::kBasic) {
              emit(out, pos, p.child->basic_size);
            } else {
              flatten_node(*p.child, out, pos);
            }
            pos += child_ext;
          }
        }
      }
      break;
    case Node::Kind::kResized:
      flatten_node(*n.inner, out, base);
      break;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

Datatype Datatype::basic(std::uint32_t size) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kBasic;
  n->basic_size = size;
  return Datatype(finish(std::move(n)));
}

Datatype Datatype::contiguous(std::uint32_t count, const Datatype& t) {
  assert(t.valid());
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kPieces;
  n->pieces.push_back(Node::Piece{0, count, 1, t.node_});
  auto out = Datatype(finish(std::move(n)));
  const_cast<Node*>(out.node_.get())->contiguous = compute_contiguous(out);
  return out;
}

Datatype Datatype::vector(std::uint32_t count, std::uint32_t blocklen,
                          std::int32_t stride, const Datatype& t) {
  return hvector(count, blocklen, static_cast<std::int64_t>(stride) * t.extent(),
                 t);
}

Datatype Datatype::hvector(std::uint32_t count, std::uint32_t blocklen,
                           std::int64_t stride_bytes, const Datatype& t) {
  assert(t.valid());
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kPieces;
  n->pieces.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    n->pieces.push_back(
        Node::Piece{static_cast<std::int64_t>(i) * stride_bytes, 1, blocklen,
                    t.node_});
  }
  auto out = Datatype(finish(std::move(n)));
  const_cast<Node*>(out.node_.get())->contiguous = compute_contiguous(out);
  return out;
}

Datatype Datatype::indexed(std::span<const std::uint32_t> blocklens,
                           std::span<const std::int32_t> displs,
                           const Datatype& t) {
  assert(blocklens.size() == displs.size());
  std::vector<std::int64_t> bytes(displs.size());
  for (std::size_t i = 0; i < displs.size(); ++i) {
    bytes[i] = static_cast<std::int64_t>(displs[i]) * t.extent();
  }
  return hindexed(blocklens, bytes, t);
}

Datatype Datatype::hindexed(std::span<const std::uint32_t> blocklens,
                            std::span<const std::int64_t> displs_bytes,
                            const Datatype& t) {
  assert(t.valid());
  assert(blocklens.size() == displs_bytes.size());
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kPieces;
  n->pieces.reserve(blocklens.size());
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    n->pieces.push_back(Node::Piece{displs_bytes[i], 1, blocklens[i], t.node_});
  }
  auto out = Datatype(finish(std::move(n)));
  const_cast<Node*>(out.node_.get())->contiguous = compute_contiguous(out);
  return out;
}

Datatype Datatype::struct_of(std::span<const std::uint32_t> blocklens,
                             std::span<const std::int64_t> displs_bytes,
                             std::span<const Datatype> types) {
  assert(blocklens.size() == displs_bytes.size() &&
         blocklens.size() == types.size());
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kPieces;
  n->pieces.reserve(blocklens.size());
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    assert(types[i].valid());
    n->pieces.push_back(
        Node::Piece{displs_bytes[i], 1, blocklens[i], types[i].node_});
  }
  auto out = Datatype(finish(std::move(n)));
  const_cast<Node*>(out.node_.get())->contiguous = compute_contiguous(out);
  return out;
}

Datatype Datatype::subarray(std::span<const std::uint32_t> sizes,
                            std::span<const std::uint32_t> subsizes,
                            std::span<const std::uint32_t> starts,
                            const Datatype& t) {
  assert(sizes.size() == subsizes.size() && sizes.size() == starts.size());
  assert(!sizes.empty());
  // Build from the innermost dimension outwards: a run of subsizes[d]
  // elements at stride = product of faster dimensions, displaced by
  // starts[d] strides; the full array extent is preserved with resized().
  const int nd = static_cast<int>(sizes.size());
  std::int64_t stride = t.extent();  // bytes per element of dim nd-1
  Datatype cur = t;
  std::int64_t displ = 0;
  for (int d = nd - 1; d >= 0; --d) {
    Datatype row = (d == nd - 1)
                       ? contiguous(subsizes[d], cur)
                       : hvector(subsizes[d], 1, stride, cur);
    displ += static_cast<std::int64_t>(starts[d]) * stride;
    stride *= sizes[d];
    cur = row;
  }
  // Place the subarray at its start offset and give it the full-array
  // extent so tiling across elements (count > 1) lands correctly.
  std::array<std::uint32_t, 1> one = {1};
  std::array<std::int64_t, 1> disp = {displ};
  std::array<Datatype, 1> inner = {cur};
  Datatype placed = struct_of(one, disp, inner);
  return resized(placed, 0, stride /* == full array bytes */);
}

Datatype Datatype::darray(int rank, std::span<const std::uint32_t> gsizes,
                          std::span<const Dist> dists,
                          std::span<const std::int32_t> dargs,
                          std::span<const std::uint32_t> psizes,
                          const Datatype& t) {
  const std::size_t nd = gsizes.size();
  assert(dists.size() == nd && dargs.size() == nd && psizes.size() == nd);
  assert(t.valid());

  // C-order process coordinates of `rank` in the psizes grid.
  std::vector<std::uint32_t> coord(nd);
  {
    std::uint32_t rem = static_cast<std::uint32_t>(rank);
    for (std::size_t d = nd; d-- > 0;) {
      coord[d] = rem % psizes[d];
      rem /= psizes[d];
    }
  }

  // Ownership of dimension d as index ranges [start, start+len).
  struct Range {
    std::uint32_t start;
    std::uint32_t len;
  };
  auto ranges_of = [&](std::size_t d) {
    std::vector<Range> out;
    const std::uint32_t g = gsizes[d];
    const std::uint32_t p = psizes[d];
    const std::uint32_t me = coord[d];
    switch (dists[d]) {
      case Dist::kNone:
        out.push_back(Range{0, g});
        break;
      case Dist::kBlock: {
        // Default blocking: ceil(g/p); darg may widen it (MPI rules).
        const std::uint32_t b =
            dargs[d] == kDfltDarg ? (g + p - 1) / p
                                  : static_cast<std::uint32_t>(dargs[d]);
        const std::uint64_t start = static_cast<std::uint64_t>(me) * b;
        if (start < g) {
          out.push_back(Range{static_cast<std::uint32_t>(start),
                              static_cast<std::uint32_t>(
                                  std::min<std::uint64_t>(b, g - start))});
        }
        break;
      }
      case Dist::kCyclic: {
        const std::uint32_t b =
            dargs[d] == kDfltDarg ? 1 : static_cast<std::uint32_t>(dargs[d]);
        for (std::uint64_t start = static_cast<std::uint64_t>(me) * b;
             start < g; start += static_cast<std::uint64_t>(p) * b) {
          out.push_back(Range{static_cast<std::uint32_t>(start),
                              static_cast<std::uint32_t>(
                                  std::min<std::uint64_t>(b, g - start))});
        }
        break;
      }
    }
    return out;
  };

  // Build inside out: `cur` covers dims (d, nd); resize it to one index
  // step of dim d, then gather this process's ranges with hindexed.
  Datatype cur = t;
  std::int64_t unit = t.extent();  // bytes per index step of the current dim
  for (std::size_t d = nd; d-- > 0;) {
    Datatype stepped = resized(cur, 0, unit);
    const auto ranges = ranges_of(d);
    std::vector<std::uint32_t> lens;
    std::vector<std::int64_t> displs;
    lens.reserve(ranges.size());
    displs.reserve(ranges.size());
    for (const Range& r : ranges) {
      lens.push_back(r.len);
      displs.push_back(static_cast<std::int64_t>(r.start) * unit);
    }
    cur = hindexed(lens, displs, stepped);
    unit *= gsizes[d];
  }
  // Full-array extent so consecutive elements tile whole arrays.
  return resized(cur, 0, unit);
}

Datatype Datatype::resized(const Datatype& t, std::int64_t lb,
                           std::int64_t extent) {
  assert(t.valid());
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kResized;
  n->inner = t.node_;
  n->lb = lb;
  n->ub = lb + extent;
  auto out = Datatype(finish(std::move(n)));
  const_cast<Node*>(out.node_.get())->lb = lb;
  const_cast<Node*>(out.node_.get())->ub = lb + extent;
  const_cast<Node*>(out.node_.get())->contiguous = compute_contiguous(out);
  return out;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::uint64_t Datatype::size() const {
  assert(valid());
  return node_->size;
}

std::int64_t Datatype::extent() const {
  assert(valid());
  return node_->extent();
}

std::int64_t Datatype::lb() const {
  assert(valid());
  return node_->lb;
}

bool Datatype::is_contiguous() const {
  assert(valid());
  return node_->contiguous;
}

void Datatype::flatten(std::vector<Segment>& out, std::int64_t base) const {
  assert(valid());
  flatten_node(*node_, out, base);
}

std::vector<Segment> Datatype::flatten_n(std::uint64_t count,
                                         std::int64_t base) const {
  std::vector<Segment> out;
  if (is_contiguous()) {
    if (count > 0) {
      out.push_back(Segment{base, count * static_cast<std::uint64_t>(extent())});
    }
    return out;
  }
  const std::int64_t ext = extent();
  for (std::uint64_t i = 0; i < count; ++i) {
    flatten(out, base + static_cast<std::int64_t>(i) * ext);
  }
  return out;
}

void Datatype::pack(const std::byte* base, std::uint64_t count,
                    std::vector<std::byte>& out) const {
  const auto segs = flatten_n(count);
  std::uint64_t total = 0;
  for (const auto& s : segs) total += s.len;
  out.resize(total);
  std::uint64_t pos = 0;
  for (const auto& s : segs) {
    std::memcpy(out.data() + pos, base + s.offset, s.len);
    pos += s.len;
  }
}

std::uint64_t Datatype::unpack(std::span<const std::byte> in, std::byte* base,
                               std::uint64_t count) const {
  const auto segs = flatten_n(count);
  std::uint64_t pos = 0;
  for (const auto& s : segs) {
    if (pos >= in.size()) break;
    const std::uint64_t n = std::min<std::uint64_t>(s.len, in.size() - pos);
    std::memcpy(base + s.offset, in.data() + pos, n);
    pos += n;
  }
  return pos;
}

}  // namespace mpi
