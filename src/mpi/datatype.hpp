#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

/// \file datatype.hpp
/// MPI derived datatypes — the machinery MPI-IO file views are built from.
/// A Datatype is an immutable tree (value-semantic handle over a shared
/// node); `flatten` produces the (offset, length) run list of one element,
/// with adjacent runs coalesced. Packing/unpacking against flat buffers
/// serves both the eager/rendezvous message paths and the I/O drivers.
namespace mpi {

/// One contiguous piece of a type map.
struct Segment {
  std::int64_t offset = 0;  // bytes from the element base
  std::uint64_t len = 0;    // bytes
  bool operator==(const Segment&) const = default;
};

class Datatype {
 public:
  /// Uncommitted default; using it is an error caught by assert.
  Datatype() = default;

  // ---- predefined ----------------------------------------------------------
  static Datatype byte() { return basic(1); }
  static Datatype int32() { return basic(4); }
  static Datatype int64() { return basic(8); }
  static Datatype uint64() { return basic(8); }
  static Datatype float64() { return basic(8); }
  static Datatype basic(std::uint32_t size);

  // ---- constructors (MPI_Type_*) -------------------------------------------
  static Datatype contiguous(std::uint32_t count, const Datatype& t);
  /// stride in *elements* of t (MPI_Type_vector).
  static Datatype vector(std::uint32_t count, std::uint32_t blocklen,
                         std::int32_t stride, const Datatype& t);
  /// stride in *bytes* (MPI_Type_create_hvector).
  static Datatype hvector(std::uint32_t count, std::uint32_t blocklen,
                          std::int64_t stride_bytes, const Datatype& t);
  /// displacements in elements of t (MPI_Type_indexed).
  static Datatype indexed(std::span<const std::uint32_t> blocklens,
                          std::span<const std::int32_t> displs,
                          const Datatype& t);
  /// displacements in bytes (MPI_Type_create_hindexed).
  static Datatype hindexed(std::span<const std::uint32_t> blocklens,
                           std::span<const std::int64_t> displs_bytes,
                           const Datatype& t);
  /// heterogeneous struct (MPI_Type_create_struct).
  static Datatype struct_of(std::span<const std::uint32_t> blocklens,
                            std::span<const std::int64_t> displs_bytes,
                            std::span<const Datatype> types);
  /// C-order n-dimensional subarray (MPI_Type_create_subarray).
  static Datatype subarray(std::span<const std::uint32_t> sizes,
                           std::span<const std::uint32_t> subsizes,
                           std::span<const std::uint32_t> starts,
                           const Datatype& t);
  /// Override lb/extent (MPI_Type_create_resized).
  static Datatype resized(const Datatype& t, std::int64_t lb,
                          std::int64_t extent);

  /// Distribution kinds for darray dimensions.
  enum class Dist : std::uint8_t { kNone, kBlock, kCyclic };
  /// Distribution argument meaning "use the default blocking".
  static constexpr std::int32_t kDfltDarg = -1;
  /// C-order multidimensional distributed array
  /// (MPI_Type_create_darray): the portion of a gsizes[] array owned by
  /// process `rank` of a psizes[] process grid, one dimension distributed
  /// kNone / kBlock / kCyclic(darg). The resulting type's extent is the
  /// full array, so tiling works like subarray's.
  static Datatype darray(int rank, std::span<const std::uint32_t> gsizes,
                         std::span<const Dist> dists,
                         std::span<const std::int32_t> dargs,
                         std::span<const std::uint32_t> psizes,
                         const Datatype& t);

  // ---- queries ---------------------------------------------------------------
  bool valid() const { return node_ != nullptr; }
  /// Bytes of actual data per element (MPI_Type_size).
  std::uint64_t size() const;
  /// Spacing between consecutive elements (MPI_Type_get_extent).
  std::int64_t extent() const;
  std::int64_t lb() const;
  /// True if one element is a single run starting at offset 0 whose length
  /// equals the extent (fast-path eligible).
  bool is_contiguous() const;

  /// Append the runs of one element, displaced by `base`, to `out`,
  /// coalescing with the previous run when adjacent.
  void flatten(std::vector<Segment>& out, std::int64_t base = 0) const;
  /// Convenience: runs of `count` elements tiled at the type extent.
  std::vector<Segment> flatten_n(std::uint64_t count,
                                 std::int64_t base = 0) const;

  /// Gather `count` elements from `base` into a contiguous buffer.
  void pack(const std::byte* base, std::uint64_t count,
            std::vector<std::byte>& out) const;
  /// Scatter a contiguous buffer into `count` elements at `base`. Returns
  /// bytes consumed (= min(in.size(), count*size())).
  std::uint64_t unpack(std::span<const std::byte> in, std::byte* base,
                       std::uint64_t count) const;

  bool operator==(const Datatype& o) const { return node_ == o.node_; }

  /// Implementation node; opaque outside datatype.cpp.
  struct Node;

 private:
  explicit Datatype(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace mpi
