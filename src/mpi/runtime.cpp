#include "mpi/runtime.hpp"

#include <pthread.h>
#include <cstdio>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "via/reg_cache.hpp"
#include "via/vi.hpp"

namespace mpi {

using sim::Actor;
using sim::ActorScope;
using sim::CostKind;

namespace {

using namespace std::chrono_literals;
constexpr auto kProgressWait = 100ms;
constexpr auto kConnWait = 5'000ms;

// Reserved tag space for collectives (user tags must be < kTagBase).
constexpr int kTagBase = 1 << 24;
constexpr int kTagBarrier = kTagBase + 1;
constexpr int kTagBcast = kTagBase + 2;
constexpr int kTagReduce = kTagBase + 3;
constexpr int kTagRing = kTagBase + 4;
constexpr int kTagA2A = kTagBase + 5;
constexpr int kTagCommMgmt = kTagBase + 6;

enum class MsgKind : std::uint8_t {
  kHello = 1,  // first message on an accepted VI: announces the peer rank
  kEager,      // payload rides in the message
  kRts,        // rendezvous request-to-send
  kCts,        // rendezvous clear-to-send (carries the target buffer)
  kFin,        // rendezvous data placed
};

struct WireHdr {
  MsgKind kind = MsgKind::kEager;
  std::uint8_t pad = 0;
  std::uint16_t flags = 0;
  std::int32_t src = -1;
  std::int32_t tag = -1;
  std::int32_t comm = -1;
  std::uint32_t seq = 0;
  std::uint64_t len = 0;
  std::uint64_t addr = 0;
  std::uint64_t mem = 0;
};
static_assert(sizeof(WireHdr) == 48);

}  // namespace

// ---------------------------------------------------------------------------
// Endpoint: one rank's communication state
// ---------------------------------------------------------------------------

class Endpoint {
 public:
  Endpoint(World& world, const WorldConfig& cfg, sim::Fabric& fabric, int rank,
           sim::NodeId node)
      : world_(world),
        cfg_(cfg),
        fabric_(fabric),
        rank_(rank),
        nic_(fabric, node, cfg.name + "-nic" + std::to_string(rank)),
        ptag_(nic_.create_ptag()),
        listener_(nic_, cfg.name + ":" + std::to_string(rank)),
        reg_cache_(nic_, ptag_, cfg.reg_cache_entries, /*enabled=*/true),
        peers_(static_cast<std::size_t>(cfg.nprocs)) {}

  ~Endpoint() {
    for (auto& p : peers_) {
      if (p && p->vi) p->vi->disconnect();
    }
    for (auto& p : anonymous_) {
      if (p && p->vi) p->vi->disconnect();
    }
  }

  /// An in-flight receive. Stack-allocated by callers.
  struct RecvOp {
    // matching key
    int src = kAnySource;
    int tag = kAnyTag;
    int comm = 0;
    // destination
    std::byte* base = nullptr;
    std::uint64_t count = 0;
    Datatype type;
    // state
    bool done = false;
    RecvStatus status;
    bool awaiting_fin = false;
    std::uint32_t fin_seq = 0;
    int fin_src = -1;
    bool staged = false;
    std::vector<std::byte> staging;
    via::MemHandle staging_handle = via::kInvalidMemHandle;
  };

  void bootstrap();

  void send(const void* buf, std::uint64_t count, const Datatype& type,
            int dst_global, int tag, int comm);
  void start_recv(RecvOp& op, void* buf, std::uint64_t count,
                  const Datatype& type, int src_global, int tag, int comm);
  void finish_recv(RecvOp& op);

  int rank() const { return rank_; }
  via::Nic& nic() { return nic_; }

 private:
  struct MsgBuf {
    std::vector<std::byte> mem;
    via::MemHandle handle = via::kInvalidMemHandle;
    via::Descriptor desc;
  };

  struct Peer {
    std::unique_ptr<via::Vi> vi;
    std::vector<std::unique_ptr<MsgBuf>> recv_bufs;
    std::vector<std::unique_ptr<MsgBuf>> send_bufs;
    std::size_t next_send = 0;
  };

  struct Unexpected {
    WireHdr hdr;
    std::vector<std::byte> data;
  };

  std::size_t buf_size() const {
    return sizeof(WireHdr) + cfg_.eager_threshold;
  }

  std::unique_ptr<Peer> make_armed_peer();
  Peer& peer_for(int global_rank);

  /// Transmit header + payload built by `fill` (may be null for header-only)
  /// on peer `p`'s VI.
  void post_msg(Peer& p, const WireHdr& hdr,
                const std::function<void(std::byte*)>& fill,
                std::uint64_t payload_len);

  /// RDMA-write [buf, buf+len) to the peer's (addr, mem), splitting at the
  /// VI transfer limit.
  void rdma_write(Peer& p, const std::byte* buf, std::uint64_t len,
                  via::MemHandle local, std::uint64_t addr,
                  std::uint64_t mem);

  /// Process one inbound completion. Returns false on (real-time) timeout.
  bool progress(bool block);
  void handle_eager(const WireHdr& hdr, std::span<const std::byte> payload);
  void handle_rts(const WireHdr& hdr);
  void handle_fin(const WireHdr& hdr);
  void begin_rndv_recv(RecvOp& op, const WireHdr& rts);
  static bool matches(const RecvOp& op, const WireHdr& hdr) {
    return op.comm == hdr.comm && (op.src == kAnySource || op.src == hdr.src) &&
           (op.tag == kAnyTag || op.tag == hdr.tag);
  }
  void complete_eager(RecvOp& op, const WireHdr& hdr,
                      std::span<const std::byte> payload);
  void erase_posted(RecvOp* op) {
    posted_.erase(std::remove(posted_.begin(), posted_.end(), op),
                  posted_.end());
  }

  World& world_;
  const WorldConfig& cfg_;
  sim::Fabric& fabric_;
  int rank_;
  via::Nic nic_;
  via::ProtectionTag ptag_;
  via::Listener listener_;
  via::CompletionQueue recv_cq_;
  via::RegCache reg_cache_;

  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::unique_ptr<Peer>> anonymous_;  // accepted, no hello yet
  int mapped_ = 0;
  std::unordered_map<via::Descriptor*, MsgBuf*> recv_index_;

  std::vector<RecvOp*> posted_;
  std::deque<Unexpected> unexpected_;
  std::deque<WireHdr> pending_rts_;
  std::unordered_map<std::uint32_t, WireHdr> cts_;
  std::uint32_t next_seq_ = 1;
  int stall_count_ = 0;
};

std::unique_ptr<Endpoint::Peer> Endpoint::make_armed_peer() {
  auto p = std::make_unique<Peer>();
  via::ViAttrs attrs;
  attrs.ptag = ptag_;  // rendezvous RDMA lands in ptag_-tagged registrations
  p->vi = std::make_unique<via::Vi>(nic_, attrs, nullptr, &recv_cq_);
  for (std::size_t i = 0; i < cfg_.credits; ++i) {
    auto b = std::make_unique<MsgBuf>();
    b->mem.resize(buf_size());
    b->handle = nic_.register_memory(b->mem.data(), b->mem.size(), ptag_, {});
    b->desc.segs = {via::DataSegment{
        b->mem.data(), b->handle, static_cast<std::uint32_t>(b->mem.size())}};
    const via::Status st = p->vi->post_recv(b->desc);
    assert(st == via::Status::kSuccess && "pre-arm post_recv on idle VI");
    (void)st;
    recv_index_[&b->desc] = b.get();
    p->recv_bufs.push_back(std::move(b));
  }
  for (std::size_t i = 0; i < cfg_.credits; ++i) {
    auto b = std::make_unique<MsgBuf>();
    b->mem.resize(buf_size());
    b->handle = nic_.register_memory(b->mem.data(), b->mem.size(), ptag_, {});
    p->send_bufs.push_back(std::move(b));
  }
  return p;
}

void Endpoint::bootstrap() {
  // Connect to every lower rank (they are already listening: rank r only
  // reaches its accept phase after connecting to all ranks below it, and
  // rank 0 listens immediately).
  for (int j = 0; j < rank_; ++j) {
    auto peer = make_armed_peer();
    via::Status st = via::Status::kNoMatchingListener;
    for (int attempt = 0; attempt < 500; ++attempt) {
      st = nic_.connect(*peer->vi, cfg_.name + ":" + std::to_string(j),
                        kConnWait);
      if (st != via::Status::kNoMatchingListener) break;
      std::this_thread::sleep_for(5ms);
    }
    assert(st == via::Status::kSuccess && "mpi bootstrap connect failed");
    WireHdr hello;
    hello.kind = MsgKind::kHello;
    hello.src = rank_;
    post_msg(*peer, hello, nullptr, 0);
    peers_[static_cast<std::size_t>(j)] = std::move(peer);
    ++mapped_;
  }
  // Accept one connection from every higher rank.
  const int expect = cfg_.nprocs - 1 - rank_;
  for (int k = 0; k < expect; ++k) {
    auto peer = make_armed_peer();
    via::Status st;
    do {
      st = listener_.accept(*peer->vi, kConnWait);
    } while (st == via::Status::kTimeout);
    assert(st == via::Status::kSuccess && "mpi bootstrap accept failed");
    anonymous_.push_back(std::move(peer));
  }
  // Drain hellos until every peer is identified.
  while (mapped_ < cfg_.nprocs - 1) progress(true);
}

Endpoint::Peer& Endpoint::peer_for(int global_rank) {
  assert(global_rank != rank_ && "self-sends are handled by the caller");
  auto& p = peers_[static_cast<std::size_t>(global_rank)];
  while (!p) progress(true);  // hello not yet processed
  return *p;
}

void Endpoint::post_msg(Peer& p, const WireHdr& hdr,
                        const std::function<void(std::byte*)>& fill,
                        std::uint64_t payload_len) {
  // Reclaim completed sends so the ring can be reused.
  via::Descriptor* done = nullptr;
  while (p.vi->send_done(done) == via::Status::kSuccess) {
  }
  MsgBuf& b = *p.send_bufs[p.next_send % p.send_bufs.size()];
  ++p.next_send;
  assert(sizeof(WireHdr) + payload_len <= b.mem.size());
  std::memcpy(b.mem.data(), &hdr, sizeof(hdr));
  if (fill) fill(b.mem.data() + sizeof(WireHdr));
  b.desc = via::Descriptor{};
  b.desc.op = via::Opcode::kSend;
  b.desc.segs = {via::DataSegment{
      b.mem.data(), b.handle,
      static_cast<std::uint32_t>(sizeof(WireHdr) + payload_len)}};
  const via::Status st = p.vi->post_send(b.desc);
  assert(st == via::Status::kSuccess);
  (void)st;
}

void Endpoint::rdma_write(Peer& p, const std::byte* buf, std::uint64_t len,
                          via::MemHandle local, std::uint64_t addr,
                          std::uint64_t mem) {
  std::uint64_t off = 0;
  const std::uint64_t kMaxPiece = 2u << 20;
  while (off < len) {
    const std::uint64_t n = std::min(len - off, kMaxPiece);
    via::Descriptor d;
    d.op = via::Opcode::kRdmaWrite;
    d.segs = {via::DataSegment{const_cast<std::byte*>(buf + off), local,
                               static_cast<std::uint32_t>(n)}};
    d.remote = {addr + off, mem};
    const via::Status st = p.vi->post_send(d);
    assert(st == via::Status::kSuccess);
    (void)st;
    via::Descriptor* done = nullptr;
    while (p.vi->send_done(done) == via::Status::kSuccess) {
    }
    off += n;
  }
}

// ---------------------------------------------------------------------------
// Send
// ---------------------------------------------------------------------------

void Endpoint::send(const void* buf, std::uint64_t count, const Datatype& type,
                    int dst_global, int tag, int comm) {
  Actor* actor = Actor::current();
  const std::uint64_t bytes = count * type.size();
  const auto* base = static_cast<const std::byte*>(buf);

  if (dst_global == rank_) {
    // Self-send: stash as an unexpected eager message.
    Unexpected u;
    u.hdr.kind = MsgKind::kEager;
    u.hdr.src = rank_;
    u.hdr.tag = tag;
    u.hdr.comm = comm;
    u.hdr.len = bytes;
    type.pack(base, count, u.data);
    unexpected_.push_back(std::move(u));
    return;
  }

  Peer& p = peer_for(dst_global);
  if (bytes <= cfg_.eager_threshold) {
    WireHdr hdr;
    hdr.kind = MsgKind::kEager;
    hdr.src = rank_;
    hdr.tag = tag;
    hdr.comm = comm;
    hdr.len = bytes;
    post_msg(
        p, hdr,
        bytes == 0 ? std::function<void(std::byte*)>{}
                   : std::function<void(std::byte*)>([&](std::byte* dst) {
                       // Eager copy into the bounce buffer (the cost eager
                       // pays; rendezvous avoids it).
                       if (type.is_contiguous()) {
                         std::memcpy(dst, base, bytes);
                       } else {
                         for (const auto& s : type.flatten_n(count)) {
                           std::memcpy(dst, base + s.offset, s.len);
                           dst += s.len;
                         }
                       }
                     }),
        bytes);
    if (bytes > 0) {
      actor->charge(CostKind::kCopy, nic_.cost().copy_time(bytes));
    }
    fabric_.stats().add("mpi.eager_msgs");
    fabric_.stats().add("mpi.eager_bytes", bytes);
    return;
  }

  // Rendezvous.
  const std::uint32_t seq = next_seq_++;
  WireHdr rts;
  rts.kind = MsgKind::kRts;
  rts.src = rank_;
  rts.tag = tag;
  rts.comm = comm;
  rts.len = bytes;
  rts.seq = seq;
  post_msg(p, rts, nullptr, 0);
  while (cts_.find(seq) == cts_.end()) progress(true);
  const WireHdr cts = cts_[seq];
  cts_.erase(seq);

  if (type.is_contiguous()) {
    const via::MemHandle h = reg_cache_.get(base, bytes);
    rdma_write(p, base, bytes, h, cts.addr, cts.mem);
  } else {
    std::vector<std::byte> staging;
    type.pack(base, count, staging);
    actor->charge(CostKind::kCopy, nic_.cost().copy_time(bytes));
    via::MemAttrs attrs;
    const via::MemHandle h =
        nic_.register_memory(staging.data(), staging.size(), ptag_, attrs);
    rdma_write(p, staging.data(), staging.size(), h, cts.addr, cts.mem);
    if (nic_.deregister_memory(h) != via::Status::kSuccess) {
      fabric_.stats().add("via.dereg_failures");
    }
  }
  WireHdr fin;
  fin.kind = MsgKind::kFin;
  fin.src = rank_;
  fin.tag = tag;
  fin.comm = comm;
  fin.seq = seq;
  fin.len = bytes;
  post_msg(p, fin, nullptr, 0);
  fabric_.stats().add("mpi.rndv_msgs");
  fabric_.stats().add("mpi.rndv_bytes", bytes);
}

// ---------------------------------------------------------------------------
// Receive
// ---------------------------------------------------------------------------

void Endpoint::complete_eager(RecvOp& op, const WireHdr& hdr,
                              std::span<const std::byte> payload) {
  const std::uint64_t took = op.type.unpack(payload, op.base, op.count);
  if (took > 0) {
    Actor::current()->charge(CostKind::kCopy, nic_.cost().copy_time(took));
  }
  op.status = RecvStatus{hdr.src, hdr.tag, took};
  op.done = true;
}

void Endpoint::begin_rndv_recv(RecvOp& op, const WireHdr& rts) {
  const std::uint64_t capacity = op.count * op.type.size();
  const std::uint64_t len = std::min(rts.len, capacity);
  std::uint64_t addr = 0;
  via::MemHandle mem = via::kInvalidMemHandle;
  if (op.type.is_contiguous() && len == rts.len) {
    mem = reg_cache_.get(op.base, len);
    addr = reinterpret_cast<std::uint64_t>(op.base);
  } else {
    op.staging.resize(rts.len);
    op.staging_handle = nic_.register_memory(op.staging.data(),
                                             op.staging.size(), ptag_, {});
    op.staged = true;
    addr = reinterpret_cast<std::uint64_t>(op.staging.data());
    mem = op.staging_handle;
  }
  WireHdr cts;
  cts.kind = MsgKind::kCts;
  cts.src = rank_;
  cts.tag = rts.tag;
  cts.comm = rts.comm;
  cts.seq = rts.seq;
  cts.addr = addr;
  cts.mem = mem;
  post_msg(peer_for(rts.src), cts, nullptr, 0);
  op.awaiting_fin = true;
  op.fin_seq = rts.seq;
  op.fin_src = rts.src;
  op.status = RecvStatus{rts.src, rts.tag, rts.len};
}

void Endpoint::start_recv(RecvOp& op, void* buf, std::uint64_t count,
                          const Datatype& type, int src_global, int tag,
                          int comm) {
  op.src = src_global;
  op.tag = tag;
  op.comm = comm;
  op.base = static_cast<std::byte*>(buf);
  op.count = count;
  op.type = type;
  op.done = false;
  op.awaiting_fin = false;
  op.staged = false;

  // Unexpected eager messages first (MPI ordering: match arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(op, it->hdr)) {
      complete_eager(op, it->hdr, it->data);
      unexpected_.erase(it);
      return;
    }
  }
  // Pending rendezvous requests.
  for (auto it = pending_rts_.begin(); it != pending_rts_.end(); ++it) {
    if (matches(op, *it)) {
      const WireHdr rts = *it;
      pending_rts_.erase(it);
      begin_rndv_recv(op, rts);
      posted_.push_back(&op);
      return;
    }
  }
  posted_.push_back(&op);
}

void Endpoint::finish_recv(RecvOp& op) {
  while (!op.done) progress(true);
}

// ---------------------------------------------------------------------------
// Progress engine
// ---------------------------------------------------------------------------

void Endpoint::handle_eager(const WireHdr& hdr,
                            std::span<const std::byte> payload) {
  for (RecvOp* op : posted_) {
    if (!op->awaiting_fin && matches(*op, hdr)) {
      complete_eager(*op, hdr, payload);
      erase_posted(op);
      return;
    }
  }
  Unexpected u;
  u.hdr = hdr;
  u.data.assign(payload.begin(), payload.end());
  if (!payload.empty()) {
    Actor::current()->charge(CostKind::kCopy,
                             nic_.cost().copy_time(payload.size()));
  }
  unexpected_.push_back(std::move(u));
  fabric_.stats().add("mpi.unexpected_msgs");
}

void Endpoint::handle_rts(const WireHdr& hdr) {
  for (RecvOp* op : posted_) {
    if (!op->awaiting_fin && matches(*op, hdr)) {
      begin_rndv_recv(*op, hdr);
      return;
    }
  }
  pending_rts_.push_back(hdr);
}

void Endpoint::handle_fin(const WireHdr& hdr) {
  for (RecvOp* op : posted_) {
    if (op->awaiting_fin && op->fin_seq == hdr.seq &&
        op->fin_src == hdr.src) {
      if (op->staged) {
        const std::uint64_t took =
            op->type.unpack(op->staging, op->base, op->count);
        Actor::current()->charge(CostKind::kCopy, nic_.cost().copy_time(took));
        if (nic_.deregister_memory(op->staging_handle) !=
            via::Status::kSuccess) {
          fabric_.stats().add("via.dereg_failures");
        }
        op->staging.clear();
        op->status.bytes = took;
      }
      op->done = true;
      erase_posted(op);
      return;
    }
  }
  assert(false && "FIN without matching rendezvous receive");
}

bool Endpoint::progress(bool block) {
  via::Completion c;
  const via::Status st =
      block ? recv_cq_.wait(c, kProgressWait) : recv_cq_.poll(c);
  if (st != via::Status::kSuccess) {
    // Diagnostic: dump matcher state if we have been stalled a long time.
    if (block && ++stall_count_ == 80) {
      std::fprintf(stderr,
                   "[mpi stall] rank=%d posted=%zu unexpected=%zu rts=%zu "
                   "cts=%zu mapped=%d\n",
                   rank_, posted_.size(), unexpected_.size(),
                   pending_rts_.size(), cts_.size(), mapped_);
      for (const RecvOp* op : posted_) {
        std::fprintf(stderr,
                     "[mpi stall]   rank=%d posted src=%d tag=%d comm=%d "
                     "awaiting_fin=%d\n",
                     rank_, op->src, op->tag, op->comm, op->awaiting_fin);
      }
      for (const Unexpected& u : unexpected_) {
        std::fprintf(stderr,
                     "[mpi stall]   rank=%d unexpected kind=%d src=%d tag=%d "
                     "comm=%d len=%llu\n",
                     rank_, static_cast<int>(u.hdr.kind), u.hdr.src, u.hdr.tag,
                     u.hdr.comm,
                     static_cast<unsigned long long>(u.hdr.len));
      }
    }
    return false;
  }
  stall_count_ = 0;
  if (c.desc->status != via::DescStatus::kSuccess) return true;  // flushed

  MsgBuf* mb = recv_index_.at(c.desc);
  WireHdr hdr;
  std::memcpy(&hdr, mb->mem.data(), sizeof(hdr));
  const std::span<const std::byte> payload(mb->mem.data() + sizeof(WireHdr),
                                           hdr.kind == MsgKind::kEager
                                               ? hdr.len
                                               : 0);
  switch (hdr.kind) {
    case MsgKind::kHello: {
      for (auto it = anonymous_.begin(); it != anonymous_.end(); ++it) {
        if ((*it)->vi.get() == c.vi) {
          peers_[static_cast<std::size_t>(hdr.src)] = std::move(*it);
          anonymous_.erase(it);
          ++mapped_;
          break;
        }
      }
      break;
    }
    case MsgKind::kEager:
      handle_eager(hdr, payload);
      break;
    case MsgKind::kRts:
      handle_rts(hdr);
      break;
    case MsgKind::kCts:
      cts_[hdr.seq] = hdr;
      break;
    case MsgKind::kFin:
      handle_fin(hdr);
      break;
  }
  // Return the buffer to its VI's receive pool. A repost can fail if the
  // connection died under us; the buffer then just sits out the rest of the
  // run (teardown still frees it).
  mb->desc.segs = {via::DataSegment{
      mb->mem.data(), mb->handle, static_cast<std::uint32_t>(mb->mem.size())}};
  if (c.vi->post_recv(mb->desc) != via::Status::kSuccess) {
    fabric_.stats().add("mpi.repost_failures");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

sim::Actor& Comm::actor() const { return *sim::Actor::current(); }

namespace {
// Each communicator owns two matching contexts, exactly as the MPI standard
// requires: user point-to-point traffic and internal collective traffic must
// never match each other, even through MPI_ANY_SOURCE / MPI_ANY_TAG.
constexpr int p2p_ctx(int comm_id) { return comm_id * 2; }
constexpr int coll_ctx(int comm_id) { return comm_id * 2 + 1; }
}  // namespace

void Comm::send_ctx(const void* buf, std::uint64_t count, const Datatype& type,
                    int dst, int tag, int ctx) const {
  ep_->send(buf, count, type, global_rank(dst), tag, ctx);
}

RecvStatus Comm::recv_ctx(void* buf, std::uint64_t count, const Datatype& type,
                          int src, int tag, int ctx) const {
  Endpoint::RecvOp op;
  const int src_global = src == kAnySource ? kAnySource : global_rank(src);
  ep_->start_recv(op, buf, count, type, src_global, tag, ctx);
  ep_->finish_recv(op);
  // Translate the source back into this communicator's numbering.
  RecvStatus st = op.status;
  if (st.source >= 0) {
    auto it = std::find(group_.begin(), group_.end(), st.source);
    if (it != group_.end()) {
      st.source = static_cast<int>(it - group_.begin());
    }
  }
  return st;
}

RecvStatus Comm::sendrecv_ctx(const void* sbuf, std::uint64_t scount,
                              const Datatype& stype, int dst, int stag,
                              void* rbuf, std::uint64_t rcount,
                              const Datatype& rtype, int src, int rtag,
                              int ctx) const {
  Endpoint::RecvOp op;
  const int src_global = src == kAnySource ? kAnySource : global_rank(src);
  ep_->start_recv(op, rbuf, rcount, rtype, src_global, rtag, ctx);
  ep_->send(sbuf, scount, stype, global_rank(dst), stag, ctx);
  ep_->finish_recv(op);
  RecvStatus st = op.status;
  if (st.source >= 0) {
    auto it = std::find(group_.begin(), group_.end(), st.source);
    if (it != group_.end()) st.source = static_cast<int>(it - group_.begin());
  }
  return st;
}

void Comm::send(const void* buf, std::uint64_t count, const Datatype& type,
                int dst, int tag) const {
  send_ctx(buf, count, type, dst, tag, p2p_ctx(comm_id_));
}

RecvStatus Comm::recv(void* buf, std::uint64_t count, const Datatype& type,
                      int src, int tag) const {
  return recv_ctx(buf, count, type, src, tag, p2p_ctx(comm_id_));
}

RecvStatus Comm::sendrecv(const void* sbuf, std::uint64_t scount,
                          const Datatype& stype, int dst, int stag, void* rbuf,
                          std::uint64_t rcount, const Datatype& rtype, int src,
                          int rtag) const {
  return sendrecv_ctx(sbuf, scount, stype, dst, stag, rbuf, rcount, rtype,
                      src, rtag, p2p_ctx(comm_id_));
}

void Comm::barrier() const {
  // Dissemination barrier: log2(n) rounds of zero-byte exchanges.
  const int n = size();
  if (n == 1) return;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (rank() + k) % n;
    const int from = (rank() - k + n) % n;
    sendrecv_ctx(nullptr, 0, Datatype::byte(), to, kTagBarrier, nullptr, 0,
                 Datatype::byte(), from, kTagBarrier, coll_ctx(comm_id_));
  }
}

void Comm::bcast(void* buf, std::uint64_t count, const Datatype& type,
                 int root) const {
  const int n = size();
  if (n == 1) return;
  const int rel = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = (rel - mask + root) % n;
      recv_ctx(buf, count, type, src, kTagBcast, coll_ctx(comm_id_));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n) {
      const int dst = (rel + mask + root) % n;
      send_ctx(buf, count, type, dst, kTagBcast, coll_ctx(comm_id_));
    }
    mask >>= 1;
  }
}

void Comm::reduce_bytes(
    void* inout, std::uint64_t bytes,
    const std::function<void(void*, const void*)>& combine, int root) const {
  const int n = size();
  if (n == 1) return;
  const int rel = (rank() - root + n) % n;
  std::vector<std::byte> tmp(bytes);
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int dst = (rel - mask + root) % n;
      send_ctx(inout, bytes, Datatype::byte(), dst, kTagReduce,
               coll_ctx(comm_id_));
      return;
    }
    const int src_rel = rel + mask;
    if (src_rel < n) {
      const int src = (src_rel + root) % n;
      recv_ctx(tmp.data(), bytes, Datatype::byte(), src, kTagReduce,
               coll_ctx(comm_id_));
      combine(inout, tmp.data());
    }
    mask <<= 1;
  }
}

void Comm::allgather(const void* sbuf, std::uint64_t bytes, void* rbuf) const {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(size()), bytes);
  std::vector<std::uint64_t> displs(static_cast<std::size_t>(size()));
  for (std::size_t i = 0; i < displs.size(); ++i) displs[i] = i * bytes;
  allgatherv(sbuf, bytes, rbuf, counts, displs);
}

void Comm::allgatherv(const void* sbuf, std::uint64_t sbytes, void* rbuf,
                      std::span<const std::uint64_t> counts,
                      std::span<const std::uint64_t> displs) const {
  const int n = size();
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + displs[static_cast<std::size_t>(rank())], sbuf, sbytes);
  if (n == 1) return;
  // Ring: at step s, pass along the block originally from (rank - s + 1).
  const int right = (rank() + 1) % n;
  const int left = (rank() - 1 + n) % n;
  int have = rank();  // newest block we hold
  for (int s = 1; s < n; ++s) {
    const int incoming = (rank() - s + n) % n;
    sendrecv_ctx(out + displs[static_cast<std::size_t>(have)],
                 counts[static_cast<std::size_t>(have)], Datatype::byte(),
                 right, kTagRing,
                 out + displs[static_cast<std::size_t>(incoming)],
                 counts[static_cast<std::size_t>(incoming)], Datatype::byte(),
                 left, kTagRing, coll_ctx(comm_id_));
    have = incoming;
  }
}

void Comm::alltoallv(const void* sbuf, std::span<const std::uint64_t> scounts,
                     std::span<const std::uint64_t> sdispls, void* rbuf,
                     std::span<const std::uint64_t> rcounts,
                     std::span<const std::uint64_t> rdispls) const {
  const int n = size();
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);
  const auto me = static_cast<std::size_t>(rank());
  if (scounts[me] > 0) {
    // sbuf/rbuf may legally be null when every local count is zero.
    std::memcpy(out + rdispls[me], in + sdispls[me], scounts[me]);
  }
  for (int s = 1; s < n; ++s) {
    const auto to = static_cast<std::size_t>((rank() + s) % n);
    const auto from = static_cast<std::size_t>((rank() - s + n) % n);
    sendrecv_ctx(in + sdispls[to], scounts[to], Datatype::byte(),
                 static_cast<int>(to), kTagA2A, out + rdispls[from],
                 rcounts[from], Datatype::byte(), static_cast<int>(from),
                 kTagA2A, coll_ctx(comm_id_));
  }
}

Comm Comm::dup() const {
  int id = 0;
  if (rank() == 0) id = world_->next_comm_id_.fetch_add(1);
  bcast(&id, sizeof(id), Datatype::byte(), 0);
  return Comm(world_, ep_, id, group_, my_index_);
}

Comm Comm::split(int color, int key) const {
  int id = 0;
  if (rank() == 0) id = world_->next_comm_id_.fetch_add(1);
  bcast(&id, sizeof(id), Datatype::byte(), 0);

  struct Trip {
    int color, key, grank;
  };
  std::vector<Trip> all(static_cast<std::size_t>(size()));
  const Trip mine{color, key, group_[static_cast<std::size_t>(my_index_)]};
  allgather(&mine, sizeof(Trip), all.data());

  std::vector<Trip> members;
  for (const Trip& t : all) {
    if (t.color == color) members.push_back(t);
  }
  std::sort(members.begin(), members.end(), [](const Trip& a, const Trip& b) {
    return std::tie(a.key, a.grank) < std::tie(b.key, b.grank);
  });
  std::vector<int> group;
  int idx = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(members[i].grank);
    if (members[i].grank == mine.grank) idx = static_cast<int>(i);
  }
  return Comm(world_, ep_, id, std::move(group), idx);
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(WorldConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.fabric == nullptr) {
    owned_fabric_ = std::make_unique<sim::Fabric>();
    fabric_ = owned_fabric_.get();
  } else {
    fabric_ = cfg_.fabric;
  }
  if (cfg_.nodes.empty()) {
    for (int i = 0; i < cfg_.nprocs; ++i) {
      nodes_.push_back(fabric_->add_node("rank" + std::to_string(i)));
    }
  } else {
    nodes_ = cfg_.nodes;
  }
  assert(nodes_.size() == static_cast<std::size_t>(cfg_.nprocs));
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  const int n = cfg_.nprocs;
  actors_.clear();
  busy_.assign(static_cast<std::size_t>(n), {});
  times_.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    actors_.push_back(std::make_unique<Actor>("rank" + std::to_string(i),
                                              &fabric_->node(nodes_[i])));
  }
  std::vector<int> group(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) group[static_cast<std::size_t>(i)] = i;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([this, i, n, &fn, &group] {
      pthread_setname_np(pthread_self(),
                         ("rank" + std::to_string(i)).c_str());
      ActorScope scope(*actors_[static_cast<std::size_t>(i)]);
      auto ep = std::make_unique<Endpoint>(*this, cfg_, *fabric_, i,
                                           nodes_[static_cast<std::size_t>(i)]);
      ep->bootstrap();
      Comm world_comm(this, ep.get(), /*comm_id=*/0, group, i);
      fn(world_comm);
      world_comm.barrier();
      busy_[static_cast<std::size_t>(i)] =
          actors_[static_cast<std::size_t>(i)]->busy();
      times_[static_cast<std::size_t>(i)] =
          actors_[static_cast<std::size_t>(i)]->now();
      ep.reset();
    });
  }
  for (auto& t : threads) t.join();
  (void)n;
}

const sim::BusyBreakdown& World::rank_busy(int rank) const {
  return busy_[static_cast<std::size_t>(rank)];
}

sim::Time World::rank_time(int rank) const {
  return times_[static_cast<std::size_t>(rank)];
}

}  // namespace mpi
