#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpi/datatype.hpp"
#include "sim/actor.hpp"
#include "sim/fabric.hpp"

/// \file runtime.hpp
/// The MPI substrate: ranks are threads, each with its own node, NIC and
/// virtual-time actor; point-to-point messaging runs over VIA with an
/// MVICH-style eager/rendezvous protocol (eager copies through pre-posted
/// bounce buffers; rendezvous RTS/CTS/FIN with zero-copy RDMA writes for
/// large contiguous payloads); collectives are built from point-to-point.
namespace mpi {

class World;
class Endpoint;

/// Completion information of a receive.
struct RecvStatus {
  int source = -1;
  int tag = -1;
  std::uint64_t bytes = 0;
};

/// Reduction operators for the typed collective helpers.
enum class Op : std::uint8_t { kSum, kMin, kMax };

struct WorldConfig {
  int nprocs = 1;
  /// External fabric shared with file servers; if null the World owns one.
  sim::Fabric* fabric = nullptr;
  /// Node per rank; created as "rank<i>" when empty.
  std::vector<sim::NodeId> nodes;
  /// Payloads at or below this ride eager (copied); above, rendezvous RDMA.
  std::size_t eager_threshold = 16 * 1024;
  /// Pre-posted receive buffers per peer connection.
  std::size_t credits = 32;
  /// Namespace prefix for the rank listeners on the fabric name service.
  std::string name = "mpi";
  /// Registration-cache entries per rank (rendezvous path).
  std::size_t reg_cache_entries = 64;
};

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A communicator: a view of the world group. Cheap to copy.
class Comm {
 public:
  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(group_.size()); }

  // ---- point to point --------------------------------------------------------
  void send(const void* buf, std::uint64_t count, const Datatype& type,
            int dst, int tag) const;
  RecvStatus recv(void* buf, std::uint64_t count, const Datatype& type,
                  int src, int tag) const;
  /// Combined exchange, deadlock-free for arbitrary patterns (the receive is
  /// posted before the send runs).
  RecvStatus sendrecv(const void* sbuf, std::uint64_t scount,
                      const Datatype& stype, int dst, int stag, void* rbuf,
                      std::uint64_t rcount, const Datatype& rtype, int src,
                      int rtag) const;

  // ---- collectives ------------------------------------------------------------
  void barrier() const;
  void bcast(void* buf, std::uint64_t count, const Datatype& type,
             int root) const;
  /// Concatenate equal-size contributions from all ranks.
  void allgather(const void* sbuf, std::uint64_t bytes, void* rbuf) const;
  /// Varying contributions: recv_counts/displs in bytes.
  void allgatherv(const void* sbuf, std::uint64_t sbytes, void* rbuf,
                  std::span<const std::uint64_t> counts,
                  std::span<const std::uint64_t> displs) const;
  /// Personalized all-to-all with per-peer byte counts.
  void alltoallv(const void* sbuf, std::span<const std::uint64_t> scounts,
                 std::span<const std::uint64_t> sdispls, void* rbuf,
                 std::span<const std::uint64_t> rcounts,
                 std::span<const std::uint64_t> rdispls) const;

  template <typename T>
  void allreduce(std::span<T> inout, Op op) const;
  template <typename T>
  T exscan_sum(T value) const;  // exclusive prefix sum (rank 0 gets 0)

  // ---- communicator management -------------------------------------------------
  Comm dup() const;
  Comm split(int color, int key) const;

  sim::Actor& actor() const;
  World& world() const { return *world_; }
  int id() const { return comm_id_; }
  /// Global (world) rank of communicator rank `r`.
  int global_rank(int r) const { return group_[static_cast<std::size_t>(r)]; }

 private:
  friend class World;
  // Context-explicit transfer primitives: collectives run in a context
  // disjoint from user point-to-point traffic (MPI context separation).
  void send_ctx(const void* buf, std::uint64_t count, const Datatype& type,
                int dst, int tag, int ctx) const;
  RecvStatus recv_ctx(void* buf, std::uint64_t count, const Datatype& type,
                      int src, int tag, int ctx) const;
  RecvStatus sendrecv_ctx(const void* sbuf, std::uint64_t scount,
                          const Datatype& stype, int dst, int stag, void* rbuf,
                          std::uint64_t rcount, const Datatype& rtype, int src,
                          int rtag, int ctx) const;

  Comm(World* w, Endpoint* ep, int comm_id, std::vector<int> group,
       int my_index)
      : world_(w),
        ep_(ep),
        comm_id_(comm_id),
        group_(std::move(group)),
        my_index_(my_index) {}

  void reduce_bytes(void* inout, std::uint64_t bytes,
                    const std::function<void(void*, const void*)>& combine,
                    int root) const;

  World* world_;
  Endpoint* ep_;
  int comm_id_;
  std::vector<int> group_;  // global ranks, position = comm rank
  int my_index_;
};

/// Owns the rank threads and (optionally) the fabric. `run` executes `fn`
/// on every rank with the world communicator and joins.
class World {
 public:
  explicit World(WorldConfig cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  sim::Fabric& fabric() { return *fabric_; }
  int size() const { return cfg_.nprocs; }
  sim::NodeId node_of(int rank) const {
    return nodes_[static_cast<std::size_t>(rank)];
  }

  void run(const std::function<void(Comm&)>& fn);

  /// Per-rank CPU breakdown of the most recent run.
  const sim::BusyBreakdown& rank_busy(int rank) const;
  /// Per-rank final virtual time of the most recent run.
  sim::Time rank_time(int rank) const;

 private:
  friend class Comm;
  WorldConfig cfg_;
  std::unique_ptr<sim::Fabric> owned_fabric_;
  sim::Fabric* fabric_;
  std::vector<sim::NodeId> nodes_;
  std::vector<std::unique_ptr<sim::Actor>> actors_;
  std::vector<sim::BusyBreakdown> busy_;
  std::vector<sim::Time> times_;
  std::atomic<int> next_comm_id_{1};
};

// ---------------------------------------------------------------------------
// Typed collective helpers
// ---------------------------------------------------------------------------

template <typename T>
void Comm::allreduce(std::span<T> inout, Op op) const {
  auto combine = [op](void* a, const void* b) {
    T* x = static_cast<T*>(a);
    const T* y = static_cast<const T*>(b);
    switch (op) {
      case Op::kSum: *x = *x + *y; break;
      case Op::kMin: *x = *y < *x ? *y : *x; break;
      case Op::kMax: *x = *x < *y ? *y : *x; break;
    }
  };
  // Element-wise reduce at rank 0, then broadcast.
  auto combine_all = [&](void* a, const void* b) {
    T* xs = static_cast<T*>(a);
    const T* ys = static_cast<const T*>(b);
    for (std::size_t i = 0; i < inout.size(); ++i) {
      combine(&xs[i], &ys[i]);
    }
  };
  reduce_bytes(inout.data(), inout.size_bytes(), combine_all, 0);
  bcast(inout.data(), inout.size_bytes(), Datatype::byte(), 0);
}

template <typename T>
T Comm::exscan_sum(T value) const {
  // Gather everyone's contribution, sum the prefix locally. O(n) data but
  // trivially correct; n is small in this system.
  std::vector<T> all(static_cast<std::size_t>(size()));
  allgather(&value, sizeof(T), all.data());
  T acc{};
  for (int i = 0; i < rank(); ++i) acc = acc + all[static_cast<std::size_t>(i)];
  return acc;
}

}  // namespace mpi
