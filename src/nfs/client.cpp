#include "nfs/client.hpp"

#include <cassert>
#include <cstring>

#include "sim/actor.hpp"

namespace nfs {

using sim::Actor;
using sim::CostKind;

namespace {
using namespace std::chrono_literals;
constexpr auto kConnectWait = 5'000ms;
}  // namespace

Client::Client(std::unique_ptr<TcpStream> stream, ClientConfig cfg)
    : stream_(std::move(stream)), cfg_(std::move(cfg)) {}

Result<std::unique_ptr<Client>> Client::connect(sim::Fabric& fabric,
                                                sim::NodeId node,
                                                ClientConfig cfg) {
  // The server may still be binding its listener; retry briefly.
  std::unique_ptr<TcpStream> stream;
  for (int attempt = 0; attempt < 200 && !stream; ++attempt) {
    stream = TcpStream::connect(fabric, node, cfg.service, kConnectWait);
    if (!stream) std::this_thread::sleep_for(10ms);
  }
  if (!stream) return PStatus::kProtoError;
  return std::unique_ptr<Client>(new Client(std::move(stream), cfg));
}

PStatus Client::call(Proc proc, std::string_view name, fstore::Ino ino,
                     std::uint64_t offset, std::uint64_t len,
                     std::uint64_t aux, std::uint16_t flags,
                     std::span<const std::byte> data) {
  Actor* actor = Actor::current();
  assert(actor && "NFS call outside an ActorScope");
  actor->charge(CostKind::kKernel, stream_ ? 500 : 0);  // VFS entry

  RpcHeader h;
  h.proc = proc;
  h.xid = next_xid_++;
  h.ino = ino;
  h.offset = offset;
  h.len = len;
  h.aux = aux;
  h.flags = flags;
  h.name_len = static_cast<std::uint32_t>(name.size());
  h.data_len = static_cast<std::uint32_t>(data.size());

  req_.resize(sizeof(h) + name.size() + data.size());
  std::memcpy(req_.data(), &h, sizeof(h));
  if (!name.empty()) {
    std::memcpy(req_.data() + sizeof(h), name.data(), name.size());
  }
  if (!data.empty()) {
    // Marshalling the write payload into the RPC buffer is part of the send
    // copy already charged by the TCP layer; this memcpy is the mechanism.
    std::memcpy(req_.data() + sizeof(h) + name.size(), data.data(),
                data.size());
  }
  if (!stream_->send(req_)) return PStatus::kProtoError;

  RpcHeader rh;
  if (!stream_->recv_exact(
          std::span(reinterpret_cast<std::byte*>(&rh), sizeof(rh)))) {
    return PStatus::kProtoError;
  }
  resp_.resize(sizeof(rh) + rh.name_len + rh.data_len);
  std::memcpy(resp_.data(), &rh, sizeof(rh));
  if (rh.name_len + rh.data_len > 0) {
    if (!stream_->recv_exact(
            std::span(resp_.data() + sizeof(rh), rh.name_len + rh.data_len))) {
      return PStatus::kProtoError;
    }
  }
  return rh.status;
}

Result<fstore::Ino> Client::open(std::string_view path, std::uint16_t flags) {
  const PStatus st = call(Proc::kOpen, path, 0, 0, 0, 0, flags, {});
  if (st != PStatus::kOk) return st;
  return resp_header().ino;
}

Result<fstore::Attrs> Client::getattr(fstore::Ino ino) {
  Actor* actor = Actor::current();
  if (cfg_.attr_cache_us > 0) {
    auto it = attr_cache_.find(ino);
    if (it != attr_cache_.end() &&
        actor->now() - it->second.fetched_at < cfg_.attr_cache_us * 1'000) {
      return it->second.attrs;  // possibly stale — that is the point
    }
  }
  const PStatus st = call(Proc::kGetattr, {}, ino, 0, 0, 0, 0, {});
  if (st != PStatus::kOk) return st;
  fstore::Attrs attrs;
  std::memcpy(&attrs, resp_data(), sizeof(attrs));
  if (cfg_.attr_cache_us > 0) {
    attr_cache_[ino] = CachedAttrs{attrs, actor->now()};
  }
  return attrs;
}

PStatus Client::set_size(fstore::Ino ino, std::uint64_t size) {
  attr_cache_.erase(ino);
  return call(Proc::kSetSize, {}, ino, 0, 0, size, 0, {});
}

PStatus Client::remove(std::string_view path) {
  return call(Proc::kRemove, path, 0, 0, 0, 0, 0, {});
}

PStatus Client::mkdir(std::string_view path) {
  return call(Proc::kMkdir, path, 0, 0, 0, 0, 0, {});
}

PStatus Client::rmdir(std::string_view path) {
  return call(Proc::kRmdir, path, 0, 0, 0, 0, 0, {});
}

PStatus Client::rename(std::string_view from, std::string_view to) {
  std::string both;
  both.append(from);
  both.push_back('\0');
  both.append(to);
  return call(Proc::kRename, both, 0, 0, 0, 0, 0, {});
}

Result<std::vector<fstore::DirEntry>> Client::readdir(std::string_view path) {
  std::vector<fstore::DirEntry> out;
  std::uint64_t cookie = 0;
  for (;;) {
    const PStatus st = call(Proc::kReaddir, path, 0, cookie, 0, 0, 0, {});
    if (st != PStatus::kOk) return st;
    const RpcHeader& rh = resp_header();
    const std::byte* p = resp_data();
    const std::byte* end = p + rh.data_len;
    for (std::uint64_t i = 0;
         i < rh.len && p + sizeof(dafs::WireDirent) <= end; ++i) {
      dafs::WireDirent wd;
      std::memcpy(&wd, p, sizeof(wd));
      p += sizeof(wd);
      fstore::DirEntry e;
      e.ino = wd.ino;
      e.is_dir = wd.is_dir != 0;
      e.name.assign(reinterpret_cast<const char*>(p), wd.name_len);
      p += wd.name_len;
      out.push_back(std::move(e));
    }
    cookie = rh.aux;
    if (rh.flags != 0) return out;
  }
}

PStatus Client::sync(fstore::Ino ino) {
  return call(Proc::kSync, {}, ino, 0, 0, 0, 0, {});
}

Result<std::uint64_t> Client::pread(fstore::Ino ino, std::uint64_t off,
                                    std::span<std::byte> out) {
  std::uint64_t done = 0;
  while (done < out.size() || (out.empty() && done == 0)) {
    const std::uint64_t want =
        std::min<std::uint64_t>(out.size() - done, cfg_.rsize);
    const PStatus st = call(Proc::kRead, {}, ino, off + done, want, 0, 0, {});
    if (st != PStatus::kOk) return st;
    const std::uint64_t got = resp_header().len;
    // Move the payload to the caller's buffer. The user-visible copy was
    // already charged by the stream receive; this memcpy is the mechanism,
    // not an extra modelled cost.
    std::memcpy(out.data() + done, resp_data(), got);
    done += got;
    if (got < want || out.empty()) break;
  }
  return done;
}

Result<std::uint64_t> Client::pwrite(fstore::Ino ino, std::uint64_t off,
                                     std::span<const std::byte> in) {
  attr_cache_.erase(ino);  // local writes invalidate cached attributes
  std::uint64_t done = 0;
  while (done < in.size() || (in.empty() && done == 0)) {
    const std::uint64_t want =
        std::min<std::uint64_t>(in.size() - done, cfg_.wsize);
    const PStatus st = call(Proc::kWrite, {}, ino, off + done, want, 0, 0,
                            in.subspan(done, want));
    if (st != PStatus::kOk) return st;
    done += resp_header().len;
    if (resp_header().len < want || in.empty()) break;
  }
  return done;
}

}  // namespace nfs
