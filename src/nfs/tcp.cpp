#include "nfs/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace nfs {

using sim::Actor;
using sim::CostKind;
using sim::Time;

TcpStream::TcpStream(sim::Fabric& fabric, sim::NodeId node,
                     std::shared_ptr<Conn> conn, bool is_a)
    : fabric_(fabric), node_(node), conn_(std::move(conn)), is_a_(is_a) {}

TcpStream::~TcpStream() { close(); }

void TcpStream::close() {
  if (!conn_) return;
  {
    std::lock_guard lock(conn_->mu);
    (is_a_ ? conn_->a_closed : conn_->b_closed) = true;
  }
  conn_->cv.notify_all();
}

bool TcpStream::closed() const {
  if (!conn_) return true;
  std::lock_guard lock(conn_->mu);
  return is_a_ ? conn_->b_closed : conn_->a_closed;
}

bool TcpStream::send(std::span<const std::byte> data) {
  Actor* actor = Actor::current();
  assert(actor && "TcpStream::send outside an ActorScope");
  const sim::CostModel& cm = fabric_.cost();

  {
    std::lock_guard lock(conn_->mu);
    if (conn_->a_closed || conn_->b_closed) return false;
  }

  // Sender kernel path: trap, user->kernel copy, per-segment stack work.
  const std::uint64_t segs = cm.tcp_segments(data.size());
  actor->charge(CostKind::kKernel, cm.syscall);
  actor->charge(CostKind::kCopy, cm.copy_time(data.size()));
  actor->charge(CostKind::kKernel, segs * cm.tcp_per_segment);

  const Time arrival = fabric_.transfer(
      node_, peer_node_, data.size() + segs * cm.tcp_header_bytes,
      actor->now());

  Chunk c;
  c.data.assign(data.begin(), data.end());
  c.arrival = arrival;
  c.segments = segs;
  {
    std::lock_guard lock(conn_->mu);
    (is_a_ ? conn_->to_b : conn_->to_a).push_back(std::move(c));
  }
  conn_->cv.notify_all();
  fabric_.stats().add("tcp.bytes_sent", data.size());
  fabric_.stats().add("tcp.segments", segs);
  return true;
}

bool TcpStream::recv_exact(std::span<std::byte> out) {
  Actor* actor = Actor::current();
  assert(actor && "TcpStream::recv outside an ActorScope");
  const sim::CostModel& cm = fabric_.cost();

  std::size_t got = 0;
  // One read() syscall for the whole request (the RPC layer sizes reads to
  // message boundaries).
  actor->charge(CostKind::kKernel, cm.syscall);
  std::unique_lock lock(conn_->mu);
  auto& q = is_a_ ? conn_->to_a : conn_->to_b;
  while (got < out.size()) {
    if (q.empty()) {
      // EOF on peer close, and on local close too: a read on a socket this
      // endpoint has shut down must not block. The server relies on this to
      // unpark nfsd threads during stop().
      const bool peer_closed = is_a_ ? conn_->b_closed : conn_->a_closed;
      const bool self_closed = is_a_ ? conn_->a_closed : conn_->b_closed;
      if (peer_closed || self_closed) return false;
      conn_->cv.wait_for(lock, std::chrono::milliseconds(100));
      continue;
    }
    Chunk& c = q.front();
    if (c.segments > 0) {
      // Receiver kernel path for this chunk: (coalesced) interrupts plus
      // per-segment stack processing, charged once on first touch.
      const std::uint64_t irqs =
          (c.segments + cm.interrupt_coalesce - 1) / cm.interrupt_coalesce;
      actor->sync_to(c.arrival);
      actor->charge(CostKind::kInterrupt, irqs * cm.interrupt);
      actor->charge(CostKind::kKernel, c.segments * cm.tcp_per_segment);
      c.segments = 0;
    }
    const std::size_t n =
        std::min(out.size() - got, c.data.size() - c.consumed);
    std::memcpy(out.data() + got, c.data.data() + c.consumed, n);
    actor->charge(CostKind::kCopy, cm.copy_time(n));  // kernel -> user
    got += n;
    c.consumed += n;
    if (c.consumed == c.data.size()) q.pop_front();
  }
  fabric_.stats().add("tcp.bytes_received", got);
  return true;
}

std::unique_ptr<TcpStream> TcpStream::connect(
    sim::Fabric& fabric, sim::NodeId node, const std::string& service,
    std::chrono::milliseconds timeout) {
  Actor* actor = Actor::current();
  assert(actor && "TcpStream::connect outside an ActorScope");
  auto* listener =
      static_cast<TcpListener*>(fabric.lookup("tcp:" + service));
  if (listener == nullptr) return nullptr;

  TcpListener::Pending req;
  req.client_node = node;
  req.conn = std::make_shared<Conn>();
  // connect(2): one syscall plus a 1.5-RTT three-way handshake.
  actor->charge(CostKind::kKernel, fabric.cost().syscall);
  req.client_time = actor->now();

  std::unique_lock lock(listener->mu_);
  if (listener->closed_) return nullptr;
  listener->pending_.push_back(&req);
  listener->cv_.notify_all();
  if (!req.cv.wait_for(lock, timeout, [&] { return req.done; })) {
    auto it = std::find(listener->pending_.begin(), listener->pending_.end(),
                        &req);
    if (it != listener->pending_.end()) {
      listener->pending_.erase(it);
      return nullptr;
    }
    req.cv.wait(lock, [&] { return req.done; });
  }
  if (!req.taken) return nullptr;  // listener closed before accepting us
  actor->advance(3 * fabric.cost().propagation);  // handshake RTTs

  auto stream = std::unique_ptr<TcpStream>(
      new TcpStream(fabric, node, req.conn, /*is_a=*/true));
  stream->peer_node_ = req.server_node;
  fabric.stats().add("tcp.connects");
  return stream;
}

TcpListener::TcpListener(sim::Fabric& fabric, sim::NodeId node,
                         std::string service)
    : fabric_(fabric), node_(node), key_("tcp:" + service) {
  fabric_.bind(key_, this);
}

TcpListener::~TcpListener() {
  fabric_.unbind(key_);
  std::lock_guard lock(mu_);
  closed_ = true;
  for (Pending* p : pending_) {
    p->done = true;
    p->cv.notify_all();
  }
  pending_.clear();
}

std::unique_ptr<TcpStream> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  Actor* actor = Actor::current();
  assert(actor && "TcpListener::accept outside an ActorScope");
  Pending* req = nullptr;
  {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !pending_.empty() || closed_; })) {
      return nullptr;
    }
    if (closed_ || pending_.empty()) return nullptr;
    req = pending_.front();
    pending_.pop_front();
  }
  actor->charge(CostKind::kKernel, fabric_.cost().syscall);  // accept(2)
  actor->sync_to(req->client_time + fabric_.cost().propagation);
  auto stream = std::unique_ptr<TcpStream>(
      new TcpStream(fabric_, node_, req->conn, /*is_a=*/false));
  stream->peer_node_ = req->client_node;
  {
    std::lock_guard lock(mu_);
    req->taken = true;
    req->server_node = node_;
    req->done = true;
    req->cv.notify_all();
  }
  return stream;
}

}  // namespace nfs
