#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sim/actor.hpp"
#include "sim/fabric.hpp"

/// \file tcp.hpp
/// An emulated kernel TCP/IP byte stream over the same fabric the VIA NICs
/// use. This is the baseline transport: every send/recv is a system call,
/// every byte crosses the user/kernel boundary twice (copy on send, copy on
/// receive), the stack pays per-segment processing, and the receiver pays
/// (coalesced) interrupts. These are exactly the costs VIA was designed to
/// eliminate, so the DAFS-vs-NFS comparisons inherit the right cause.
namespace nfs {

class TcpListener;

/// One endpoint of an established TCP connection.
class TcpStream {
 public:
  ~TcpStream();

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Blocking connect to "tcp:<service>" on the fabric name service.
  static std::unique_ptr<TcpStream> connect(sim::Fabric& fabric,
                                            sim::NodeId node,
                                            const std::string& service,
                                            std::chrono::milliseconds timeout);

  /// Send all of `data`. Returns false if the peer closed.
  bool send(std::span<const std::byte> data);

  /// Receive exactly out.size() bytes (blocking). Returns false on EOF /
  /// peer close before enough bytes arrived.
  bool recv_exact(std::span<std::byte> out);

  void close();
  bool closed() const;

  sim::NodeId node() const { return node_; }

 private:
  friend class TcpListener;

  struct Chunk {
    std::vector<std::byte> data;
    std::size_t consumed = 0;
    sim::Time arrival = 0;
    std::uint64_t segments = 0;  // receiver-side costs still to charge
  };

  /// Shared connection state; one queue per direction.
  struct Conn {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Chunk> to_a;
    std::deque<Chunk> to_b;
    bool a_closed = false;
    bool b_closed = false;
  };

  TcpStream(sim::Fabric& fabric, sim::NodeId node, std::shared_ptr<Conn> conn,
            bool is_a);

  sim::Fabric& fabric_;
  sim::NodeId node_;
  std::shared_ptr<Conn> conn_;
  bool is_a_;
  sim::NodeId peer_node_ = 0;
};

/// Passive side: binds "tcp:<service>" and accepts connections.
class TcpListener {
 public:
  TcpListener(sim::Fabric& fabric, sim::NodeId node, std::string service);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Wait for a connection; nullptr on timeout.
  std::unique_ptr<TcpStream> accept(std::chrono::milliseconds timeout);

 private:
  friend class TcpStream;
  struct Pending {
    sim::NodeId client_node;
    std::shared_ptr<TcpStream::Conn> conn;
    sim::Time client_time;
    bool taken = false;
    sim::NodeId server_node = 0;  // filled by accept
    std::condition_variable cv;
    bool done = false;
  };

  sim::Fabric& fabric_;
  sim::NodeId node_;
  std::string key_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending*> pending_;
  bool closed_ = false;
};

}  // namespace nfs
