#pragma once

#include <memory>
#include <unordered_map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fstore/types.hpp"
#include "nfs/proto.hpp"
#include "nfs/tcp.hpp"
#include "sim/expected.hpp"

namespace nfs {

template <typename T>
using Result = sim::Expected<T, PStatus>;

struct ClientConfig {
  std::string service = "nfs";
  std::uint32_t rsize = kDefaultRsize;
  std::uint32_t wsize = kDefaultWsize;
  /// Attribute-cache lifetime in virtual microseconds (classic NFS "ac"
  /// mount behaviour): getattr within the window is served locally and may
  /// be stale w.r.t. other clients — one of the consistency problems the
  /// session-based DAFS protocol avoids. 0 disables caching.
  std::uint64_t attr_cache_us = 0;
};

/// Baseline file client ("NFS mount"): synchronous RPC over the emulated
/// kernel TCP stack, all data inline. API mirrors the DAFS session so the
/// MPI-IO drivers are symmetric.
class Client {
 public:
  static Result<std::unique_ptr<Client>> connect(sim::Fabric& fabric,
                                                 sim::NodeId node,
                                                 ClientConfig cfg = {});
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Result<fstore::Ino> open(std::string_view path, std::uint16_t flags = 0);
  Result<fstore::Attrs> getattr(fstore::Ino ino);
  PStatus set_size(fstore::Ino ino, std::uint64_t size);
  PStatus remove(std::string_view path);
  PStatus mkdir(std::string_view path);
  PStatus rmdir(std::string_view path);
  PStatus rename(std::string_view from, std::string_view to);
  Result<std::vector<fstore::DirEntry>> readdir(std::string_view path);
  PStatus sync(fstore::Ino ino);

  Result<std::uint64_t> pread(fstore::Ino ino, std::uint64_t off,
                              std::span<std::byte> out);
  Result<std::uint64_t> pwrite(fstore::Ino ino, std::uint64_t off,
                               std::span<const std::byte> in);

 private:
  Client(std::unique_ptr<TcpStream> stream, ClientConfig cfg);

  /// One RPC round trip. Request payload comes from `name` and `data`; the
  /// response is left in resp_ (header + payload).
  PStatus call(Proc proc, std::string_view name, fstore::Ino ino,
               std::uint64_t offset, std::uint64_t len, std::uint64_t aux,
               std::uint16_t flags, std::span<const std::byte> data);

  const RpcHeader& resp_header() const {
    return *reinterpret_cast<const RpcHeader*>(resp_.data());
  }
  const std::byte* resp_data() const {
    return resp_.data() + sizeof(RpcHeader) + resp_header().name_len;
  }

  std::unique_ptr<TcpStream> stream_;
  ClientConfig cfg_;
  std::uint32_t next_xid_ = 1;
  std::vector<std::byte> req_;
  std::vector<std::byte> resp_;

  struct CachedAttrs {
    fstore::Attrs attrs;
    std::uint64_t fetched_at = 0;  // virtual ns
  };
  std::unordered_map<fstore::Ino, CachedAttrs> attr_cache_;
};

}  // namespace nfs
