#pragma once

#include <cstdint>

#include "dafs/proto.hpp"

/// \file proto.hpp
/// The baseline file-access RPC ("NFS-like over TCP"). Procedures mirror the
/// DAFS namespace/attribute surface but *all* data travels inline in the RPC
/// payload — there is no direct path; that is the point of the baseline. The
/// wire record is a fixed header followed by name and data payloads,
/// length-prefixed by the header itself (framing over the byte stream).
namespace nfs {

enum class Proc : std::uint8_t {
  kNull = 0,
  kOpen,
  kGetattr,
  kSetSize,
  kRemove,
  kMkdir,
  kRmdir,
  kRename,
  kReaddir,
  kRead,
  kWrite,
  kSync,
};

/// Reuse the DAFS status vocabulary (both map fstore::Errc).
using PStatus = dafs::PStatus;

struct RpcHeader {
  Proc proc = Proc::kNull;
  PStatus status = PStatus::kOk;
  std::uint16_t flags = 0;
  std::uint32_t xid = 0;  // transaction id
  std::uint64_t ino = 0;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::uint64_t aux = 0;
  std::uint32_t name_len = 0;
  std::uint32_t data_len = 0;
};
static_assert(sizeof(RpcHeader) == 48);

/// Open flags shared with DAFS.
using dafs::kOpenCreate;
using dafs::kOpenExcl;
using dafs::kOpenTrunc;

/// Classic mount parameters: maximum read/write RPC payload.
inline constexpr std::uint32_t kDefaultRsize = 32 * 1024;
inline constexpr std::uint32_t kDefaultWsize = 32 * 1024;

}  // namespace nfs
