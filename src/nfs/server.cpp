#include "nfs/server.hpp"

#include <pthread.h>

#include <cassert>
#include <cstring>

namespace nfs {

using sim::Actor;
using sim::ActorScope;
using sim::CostKind;

namespace {
using namespace std::chrono_literals;
constexpr auto kPollPeriod = 50ms;

/// Split "/a/b/c" into directory path and leaf (same rule as the DAFS
/// server).
std::pair<std::string_view, std::string_view> split_path(
    std::string_view path) {
  while (!path.empty() && path.back() == '/') path.remove_suffix(1);
  const auto pos = path.rfind('/');
  if (pos == std::string_view::npos) return {"", path};
  return {path.substr(0, pos), path.substr(pos + 1)};
}

RpcHeader& header_of(std::vector<std::byte>& msg) {
  return *reinterpret_cast<RpcHeader*>(msg.data());
}

std::string_view name_of(const std::vector<std::byte>& msg) {
  const auto& h = *reinterpret_cast<const RpcHeader*>(msg.data());
  return {reinterpret_cast<const char*>(msg.data() + sizeof(RpcHeader)),
          h.name_len};
}

std::byte* data_of(std::vector<std::byte>& msg) {
  auto& h = header_of(msg);
  return msg.data() + sizeof(RpcHeader) + h.name_len;
}

void finish(std::vector<std::byte>& resp) {
  auto& h = header_of(resp);
  resp.resize(sizeof(RpcHeader) + h.name_len + h.data_len);
}

}  // namespace

Server::Server(sim::Fabric& fabric, sim::NodeId node, ServerConfig cfg)
    : fabric_(fabric), node_(node), cfg_(std::move(cfg)) {
  store_ = std::make_unique<fstore::FileStore>(cfg_.store);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  accept_actor_ = std::make_unique<Actor>("nfs-accept", &fabric_.node(node_));
  accept_thread_ = std::thread([this] {
    pthread_setname_np(pthread_self(), "nfs-accept");
    accept_loop();
  });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(workers_mu_);
  // Shut down the server side of every connection first: an nfsd blocked in
  // recv waiting for the next request only wakes on a close, and the client
  // may well keep its end open past stop().
  for (auto& s : worker_streams_) s->close();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  worker_streams_.clear();
}

sim::BusyBreakdown Server::worker_busy() const {
  sim::BusyBreakdown total;
  for (const auto& a : worker_actors_) {
    for (std::size_t i = 0; i < total.by_kind.size(); ++i) {
      total.by_kind[i] += a->busy().by_kind[i];
    }
  }
  return total;
}

void Server::accept_loop() {
  ActorScope scope(*accept_actor_);
  TcpListener listener(fabric_, node_, cfg_.service);
  int next_worker = 0;
  while (running_.load()) {
    auto stream = listener.accept(kPollPeriod);
    if (!stream) continue;
    std::lock_guard lock(workers_mu_);
    worker_actors_.push_back(std::make_unique<Actor>(
        "nfsd" + std::to_string(next_worker++), &fabric_.node(node_)));
    Actor* actor = worker_actors_.back().get();
    worker_streams_.push_back(std::shared_ptr<TcpStream>(std::move(stream)));
    worker_threads_.emplace_back([this, s = worker_streams_.back(), actor] {
      ActorScope inner(*actor);
      serve(*s, *actor);
    });
    fabric_.stats().add("nfs.connections");
  }
}

void Server::serve(TcpStream& stream, sim::Actor&) {
  std::vector<std::byte> req;
  std::vector<std::byte> resp;
  while (running_.load()) {
    RpcHeader h;
    if (!stream.recv_exact(
            std::span(reinterpret_cast<std::byte*>(&h), sizeof(h)))) {
      return;  // client closed
    }
    req.resize(sizeof(RpcHeader) + h.name_len + h.data_len);
    std::memcpy(req.data(), &h, sizeof(h));
    if (h.name_len + h.data_len > 0) {
      if (!stream.recv_exact(std::span(req.data() + sizeof(h),
                                       h.name_len + h.data_len))) {
        return;
      }
    }
    resp.assign(sizeof(RpcHeader) + cfg_.max_payload, std::byte{0});
    dispatch(req, resp);
    if (!stream.send(resp)) return;
  }
}

void Server::dispatch(std::vector<std::byte>& req,
                      std::vector<std::byte>& resp) {
  Actor* actor = Actor::current();
  const sim::CostModel& cm = fabric_.cost();
  actor->charge(CostKind::kDispatch, cm.request_dispatch + cm.fs_op);
  fabric_.stats().add("nfs.requests");

  RpcHeader& rq = header_of(req);
  RpcHeader& rs = header_of(resp);
  rs = RpcHeader{};
  rs.proc = rq.proc;
  rs.xid = rq.xid;
  rs.status = PStatus::kOk;

  switch (rq.proc) {
    case Proc::kNull:
      break;
    case Proc::kOpen: {
      const auto [dir_path, leaf] = split_path(name_of(req));
      fstore::Ino ino = fstore::kInvalidIno;
      if (leaf.empty()) {
        ino = fstore::kRootIno;
      } else {
        auto dir = store_->resolve(dir_path);
        if (!dir.ok()) {
          rs.status = dafs::to_pstatus(dir.error());
          break;
        }
        if (rq.flags & kOpenCreate) {
          auto r = store_->create(dir.value(), leaf, (rq.flags & kOpenExcl) != 0);
          if (!r.ok()) {
            rs.status = dafs::to_pstatus(r.error());
            break;
          }
          ino = r.value();
        } else {
          auto r = store_->lookup(dir.value(), leaf);
          if (!r.ok()) {
            rs.status = dafs::to_pstatus(r.error());
            break;
          }
          ino = r.value();
        }
      }
      if (rq.flags & kOpenTrunc) {
        if (auto e = store_->set_size(ino, 0); e != fstore::Errc::kOk) {
          rs.status = dafs::to_pstatus(e);
          break;
        }
      }
      auto attrs = store_->getattr(ino);
      if (!attrs.ok()) {
        rs.status = dafs::to_pstatus(attrs.error());
        break;
      }
      rs.ino = ino;
      rs.data_len = sizeof(fstore::Attrs);
      std::memcpy(data_of(resp), &attrs.value(), sizeof(fstore::Attrs));
      break;
    }
    case Proc::kGetattr: {
      auto attrs = store_->getattr(rq.ino);
      if (!attrs.ok()) {
        rs.status = dafs::to_pstatus(attrs.error());
        break;
      }
      rs.ino = rq.ino;
      rs.data_len = sizeof(fstore::Attrs);
      std::memcpy(data_of(resp), &attrs.value(), sizeof(fstore::Attrs));
      break;
    }
    case Proc::kSetSize:
      rs.status = dafs::to_pstatus(store_->set_size(rq.ino, rq.aux));
      break;
    case Proc::kRemove: {
      const auto [dir_path, leaf] = split_path(name_of(req));
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        rs.status = dafs::to_pstatus(dir.error());
        break;
      }
      rs.status = dafs::to_pstatus(store_->remove(dir.value(), leaf));
      break;
    }
    case Proc::kMkdir: {
      const auto [dir_path, leaf] = split_path(name_of(req));
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        rs.status = dafs::to_pstatus(dir.error());
        break;
      }
      auto r = store_->mkdir(dir.value(), leaf);
      if (!r.ok()) {
        rs.status = dafs::to_pstatus(r.error());
        break;
      }
      rs.ino = r.value();
      break;
    }
    case Proc::kRmdir: {
      const auto [dir_path, leaf] = split_path(name_of(req));
      auto dir = store_->resolve(dir_path);
      if (!dir.ok()) {
        rs.status = dafs::to_pstatus(dir.error());
        break;
      }
      rs.status = dafs::to_pstatus(store_->rmdir(dir.value(), leaf));
      break;
    }
    case Proc::kRename: {
      const std::string_view both = name_of(req);
      const auto nul = both.find('\0');
      if (nul == std::string_view::npos) {
        rs.status = PStatus::kInval;
        break;
      }
      const auto [fd_path, f_leaf] = split_path(both.substr(0, nul));
      const auto [td_path, t_leaf] = split_path(both.substr(nul + 1));
      auto fd = store_->resolve(fd_path);
      auto td = store_->resolve(td_path);
      if (!fd.ok() || !td.ok()) {
        rs.status = dafs::to_pstatus(!fd.ok() ? fd.error() : td.error());
        break;
      }
      rs.status = dafs::to_pstatus(
          store_->rename(fd.value(), f_leaf, td.value(), t_leaf));
      break;
    }
    case Proc::kReaddir: {
      auto dir = store_->resolve(name_of(req));
      if (!dir.ok()) {
        rs.status = dafs::to_pstatus(dir.error());
        break;
      }
      auto entries = store_->readdir(dir.value());
      if (!entries.ok()) {
        rs.status = dafs::to_pstatus(entries.error());
        break;
      }
      std::byte* out = data_of(resp);
      const std::byte* end = resp.data() + sizeof(RpcHeader) + cfg_.max_payload;
      std::uint64_t i = rq.offset;
      std::uint32_t packed = 0;
      for (; i < entries.value().size(); ++i) {
        const auto& e = entries.value()[i];
        const std::size_t need = sizeof(dafs::WireDirent) + e.name.size();
        if (out + need > end) break;
        dafs::WireDirent wd;
        wd.ino = e.ino;
        wd.is_dir = e.is_dir ? 1 : 0;
        wd.name_len = static_cast<std::uint32_t>(e.name.size());
        std::memcpy(out, &wd, sizeof(wd));
        std::memcpy(out + sizeof(wd), e.name.data(), e.name.size());
        out += need;
        ++packed;
      }
      rs.len = packed;
      rs.aux = i;
      rs.flags = (i >= entries.value().size()) ? 1 : 0;
      rs.data_len = static_cast<std::uint32_t>(out - data_of(resp));
      break;
    }
    case Proc::kRead: {
      const std::uint64_t want =
          std::min<std::uint64_t>(rq.len, cfg_.max_payload);
      auto r = store_->pread(rq.ino, rq.offset,
                             std::span<std::byte>(data_of(resp), want));
      if (!r.ok()) {
        rs.status = dafs::to_pstatus(r.error());
        break;
      }
      rs.len = r.value();
      rs.data_len = static_cast<std::uint32_t>(r.value());
      fabric_.stats().add("nfs.read_bytes", r.value());
      break;
    }
    case Proc::kWrite: {
      auto r = store_->pwrite(
          rq.ino, rq.offset,
          std::span<const std::byte>(data_of(req), rq.data_len));
      if (!r.ok()) {
        rs.status = dafs::to_pstatus(r.error());
        break;
      }
      rs.len = r.value();
      fabric_.stats().add("nfs.write_bytes", r.value());
      break;
    }
    case Proc::kSync:
      rs.status = dafs::to_pstatus(store_->sync(rq.ino));
      break;
  }
  finish(resp);
}

}  // namespace nfs
