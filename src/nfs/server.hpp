#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fstore/file_store.hpp"
#include "nfs/proto.hpp"
#include "nfs/tcp.hpp"
#include "sim/actor.hpp"
#include "sim/fabric.hpp"

namespace nfs {

struct ServerConfig {
  std::string service = "nfs";
  fstore::Options store;
  std::uint32_t max_payload = 64 * 1024;  // server-side RPC payload cap
};

/// The kernel-NFS-like baseline server: one nfsd thread per connection, all
/// data copied through RPC payloads over the emulated TCP stack.
class Server {
 public:
  Server(sim::Fabric& fabric, sim::NodeId node, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  fstore::FileStore& store() { return *store_; }
  const ServerConfig& config() const { return cfg_; }
  sim::BusyBreakdown worker_busy() const;

 private:
  void accept_loop();
  void serve(TcpStream& stream, sim::Actor& actor);
  void dispatch(std::vector<std::byte>& req, std::vector<std::byte>& resp);

  sim::Fabric& fabric_;
  sim::NodeId node_;
  ServerConfig cfg_;
  std::unique_ptr<fstore::FileStore> store_;

  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<sim::Actor> accept_actor_;
  std::mutex workers_mu_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::unique_ptr<sim::Actor>> worker_actors_;
  // Server-side ends of accepted connections, so stop() can close them and
  // unpark nfsd threads blocked in recv; joining alone would deadlock
  // against a client that keeps its end open.
  std::vector<std::shared_ptr<TcpStream>> worker_streams_;
};

}  // namespace nfs
