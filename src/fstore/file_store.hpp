#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/expected.hpp"
#include "sim/stats.hpp"
#include "fstore/journal.hpp"
#include "fstore/types.hpp"

namespace sim {
class FaultPlan;
class Tracer;
}

namespace fstore {

template <typename T>
using Result = sim::Expected<T, Errc>;

/// Configuration for the store.
struct Options {
  /// Extent chunk size. File data lives in fixed-size chunks carved out of
  /// large slabs so a DAFS server can register whole slabs with its NIC once
  /// and RDMA straight out of the buffer cache.
  std::size_t chunk_size = 64 * 1024;
  /// Chunks per slab.
  std::size_t chunks_per_slab = 256;
  /// Model a disk behind the buffer cache. Off by default: the paper's
  /// bandwidth experiments run against a warm server cache.
  bool disk_enabled = false;
  /// Buffer-cache capacity in chunks when the disk model is on.
  std::size_t cache_chunks = 4096;
  /// Disk service parameters (charged per missing chunk).
  std::uint64_t disk_latency_ns = 5'000'000;  // 5 ms seek+rotate
  double disk_mbps = 40.0;
  /// Host copy rate for the copying data path (keep in sync with the
  /// fabric's CostModel::memcpy_mbps).
  double memcpy_mbps = 400.0;
  /// Modeled CRC-32C throughput, charged per byte verified on the
  /// verify-on-read path and by the scrubber (software checksumming on
  /// paper-era hosts runs well above the copy rate but is not free — E19
  /// sweeps the resulting overhead).
  double crc_mbps = 2000.0;
  /// Optional fault plan consulted on the read paths (short reads and
  /// injected media errors). Not owned; the DAFS server wires the fabric's
  /// plan in here so one switchboard drives every layer.
  sim::FaultPlan* faults = nullptr;
  /// Optional request tracer (sim/trace.hpp). Not owned; the DAFS server
  /// wires the fabric's tracer in so journal appends and data-path service
  /// appear as spans under the worker's open request span.
  sim::Tracer* tracer = nullptr;
  /// Write-ahead record journal, making `sync` a real durability barrier:
  /// data writes are held as volatile intents and become one CRC-framed
  /// `kSyncCommit` record when their inode is synced (all of an inode's
  /// un-synced intents commit atomically — a torn multi-block write is never
  /// partially visible after `crash()`); namespace/metadata ops and named
  /// counters append records durable-immediately. The record log is the
  /// durable image: crash replay rebuilds live state from it, and the DAFS
  /// replication channel ships its raw bytes to a standby filer. Off by
  /// default (the NFS baseline and raw benches model an always-up store);
  /// the DAFS server turns it on.
  bool journal_enabled = false;
  /// Watermark on un-synced intent bytes: crossing it triggers an internal
  /// write-back of every pending intent (an early sync is always legal), so
  /// journal memory stays bounded under sync-free streaming workloads.
  std::size_t journal_autosync_bytes = 32u << 20;
};

/// The file server's storage substrate: an in-memory inode-based file system
/// with directory tree, sparse chunked extents, attributes, and an optional
/// buffer-cache/disk model. Thread-safe (single internal lock: the vnode
/// layer serializes, which is also how the CPU-contention model wants it).
///
/// Two data paths mirror what a DAFS filer does:
///  * `pread`/`pwrite`: copy in/out of a caller buffer (the inline path and
///    the NFS baseline). Charges host memcpy time to the calling actor.
///  * `extents_for_read`/`ensure_extents`: expose the cache chunks
///    themselves so the caller can DMA from/to them with zero host copies
///    (the direct path). Only per-op vnode costs are charged.
class FileStore {
 public:
  /// `on_new_slab` fires whenever the store allocates a fresh slab; the DAFS
  /// server uses it to register slab memory with its NIC.
  explicit FileStore(Options opt = {},
                     std::function<void(std::span<std::byte>)> on_new_slab = {});

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  // ---- namespace ----------------------------------------------------------
  Result<Ino> lookup(Ino dir, std::string_view name) const;
  /// Resolve a '/'-separated path from the root. Empty or "/" is the root.
  Result<Ino> resolve(std::string_view path) const;
  Result<Ino> create(Ino dir, std::string_view name, bool exclusive);
  Result<Ino> mkdir(Ino dir, std::string_view name);
  Errc remove(Ino dir, std::string_view name);
  Errc rmdir(Ino dir, std::string_view name);
  Errc rename(Ino from_dir, std::string_view from, Ino to_dir,
              std::string_view to);
  Result<std::vector<DirEntry>> readdir(Ino dir) const;

  // ---- attributes ----------------------------------------------------------
  Result<Attrs> getattr(Ino ino) const;
  Errc set_size(Ino ino, std::uint64_t size);

  // ---- data: copying path --------------------------------------------------
  /// Read up to out.size() bytes at `off`; returns bytes read (short at EOF).
  /// With `verify`, every touched chunk's CRC-32C is recomputed against the
  /// stored block checksum first — a mismatch returns kCorrupt instead of
  /// serving rotted bytes (and charges modeled checksum time).
  Result<std::uint64_t> pread(Ino ino, std::uint64_t off,
                              std::span<std::byte> out, bool verify = false);
  /// Write in.size() bytes at `off`, extending the file as needed.
  Result<std::uint64_t> pwrite(Ino ino, std::uint64_t off,
                               std::span<const std::byte> in);

  // ---- data: zero-copy (DMA) path -------------------------------------------
  /// Chunk-pieces covering [off, off+len) of existing file data, clamped to
  /// EOF. The spans point into the buffer cache; valid until the file is
  /// truncated or removed. `verify` as in pread: checksum-check every chunk
  /// before exposing it as a DMA source.
  Result<std::vector<std::span<std::byte>>> extents_for_read(
      Ino ino, std::uint64_t off, std::uint64_t len, bool verify = false);
  /// Allocate (if needed) and return chunk-pieces covering [off, off+len)
  /// for an incoming write; call `commit_write` afterwards to update size
  /// and mtime.
  Result<std::vector<std::span<std::byte>>> ensure_extents(
      Ino ino, std::uint64_t off, std::uint64_t len);
  Errc commit_write(Ino ino, std::uint64_t off, std::uint64_t len);

  /// Durability barrier: atomically commit every un-synced intent of `ino`
  /// to the durable image. After it returns, the data survives `crash()`.
  Errc sync(Ino ino);
  /// Commit every pending intent (all inodes).
  void sync_all();

  // ---- crash / restart ------------------------------------------------------
  /// Simulate the server process dying and restarting: discard all volatile
  /// state (un-synced intents, live inode table, buffer-cache model) and
  /// replay the record journal from offset 0, truncating any torn or
  /// corrupt tail first. Cache slabs are recycled, never freed, so NIC
  /// registrations held against them stay valid across the crash. Counters
  /// and the duplicate filter are rebuilt from their synchronously-journaled
  /// records and so survive. A standby filer that imported a primary's
  /// journal stream calls this to materialize the shipped state.
  ///
  /// Returns kOk, or kCorrupt when replay found *interior* journal
  /// corruption — a bad frame with valid records after it. A torn tail is
  /// legal (the interrupted final write never acknowledged) and is truncated
  /// as before; interior rot is not: replay applies only the records before
  /// the bad frame, leaves the log untruncated (truncation would silently
  /// erase the valid suffix), and `journal_corrupt_offset()` names the bad
  /// frame so the mount can be refused.
  Errc crash();
  /// Offset of the interior-corrupt journal frame found by the last crash()
  /// replay, or ~0ull when the journal replayed clean.
  std::uint64_t journal_corrupt_offset() const;
  /// Un-synced intent bytes currently pending (not yet folded into a
  /// kSyncCommit record).
  std::size_t journal_pending_bytes() const;

  // ---- record log (replication surface) -------------------------------------
  /// The CRC-framed record log backing durability. The DAFS server streams
  /// its raw bytes to a standby (`read`) and a standby imports them
  /// (`import`); both ends replay identically.
  FStoreJournal& journal_log() { return jlog_; }
  const FStoreJournal& journal_log() const { return jlog_; }
  /// Current record-log size in bytes (the replication high-water mark).
  std::uint64_t journal_size() const { return jlog_.size(); }
  /// Append an opaque server-state record (session-id watermark + epoch).
  /// The store ignores it on replay except to remember the latest values,
  /// which `server_state_watermark` exposes to a promoted standby.
  void journal_server_state(std::uint64_t next_session, std::uint64_t epoch);
  std::uint64_t server_state_watermark() const;

  // ---- named atomic counters (DAFS extension backing MPI shared pointers) --
  /// Atomically add `delta` to the counter `key`, returning the old value.
  std::uint64_t counter_fetch_add(const std::string& key, std::uint64_t delta);
  void counter_set(const std::string& key, std::uint64_t value);
  /// Exactly-once variant: if this (client_id, seq) mutation was already
  /// applied — the client is retransmitting into a restarted server whose
  /// volatile replay cache died — return the recorded old value instead of
  /// re-applying. client_id == 0 or seq == 0 bypasses the filter.
  std::uint64_t counter_fetch_add_once(const std::string& key,
                                       std::uint64_t delta,
                                       std::uint64_t client_id,
                                       std::uint32_t seq);
  /// Drop duplicate-filter records the client has acknowledged (all seqs
  /// <= upto_seq), bounding filter memory.
  void dup_forget(std::uint64_t client_id, std::uint32_t upto_seq);

  // ---- block integrity (checksums at rest) ---------------------------------
  /// Recompute the CRC-32C of every chunk overlapping [off, off+len) of
  /// `ino` (clamped to EOF) against the stored block checksums. kOk when all
  /// match, kCorrupt on the first mismatch. Holes verify trivially.
  Errc verify_range(Ino ino, std::uint64_t off, std::uint64_t len);

  /// Scrub cursor: an (inode, chunk) position in the store's block walk.
  struct ScrubCursor {
    Ino ino = 0;
    std::uint64_t chunk = 0;
  };
  struct ScrubBlock {
    Ino ino = kInvalidIno;
    std::uint64_t chunk = 0;
  };
  struct ScrubStep {
    std::size_t checked = 0;       // chunks verified this step
    bool wrapped = false;          // the walk completed a full pass
    std::vector<ScrubBlock> bad;   // chunks whose checksum mismatched
  };
  /// Verify up to `max_chunks` allocated chunks starting at `*cursor`,
  /// advancing the cursor; the background scrubber calls this at a paced
  /// rate. When the walk falls off the end of the inode table the cursor
  /// resets and `wrapped` reports a completed pass. Charges modeled checksum
  /// time for the bytes verified.
  ScrubStep scrub_step(ScrubCursor* cursor, std::size_t max_chunks);

  /// Overwrite one allocated chunk with `data` (zero-padded to the chunk
  /// size) and recompute its stored checksum — the scrub-repair write path.
  /// Deliberately journal-free: repair restores bytes the journal already
  /// vouches for, it does not create new history.
  Errc repair_chunk(Ino ino, std::uint64_t chunk,
                    std::span<const std::byte> data);

  sim::Stats& stats() { return stats_; }
  const Options& options() const { return opt_; }

 private:
  struct Inode {
    Attrs attrs;
    std::map<std::string, Ino> entries;           // directories
    std::map<std::uint64_t, std::byte*> chunks;   // files: chunk idx -> data
    /// Per-chunk CRC-32C over the full chunk (tail bytes past EOF are kept
    /// zeroed, so the full-chunk checksum is well defined). Maintained by
    /// every mutation path; one entry per allocated chunk.
    std::map<std::uint64_t, std::uint32_t> csums;
  };

  /// One pending write intent (data captured at write time, folded into a
  /// single kSyncCommit record when the inode is synced).
  struct Intent {
    Ino ino = kInvalidIno;
    std::uint64_t off = 0;
    std::vector<std::byte> bytes;
  };

  Inode* find_locked(Ino ino);
  const Inode* find_locked(Ino ino) const;
  /// Recompute and store the full-chunk checksum of an allocated chunk.
  void update_csum_locked(Inode& node, std::uint64_t chunk_idx);
  /// True when the chunk's bytes still match its stored checksum.
  bool chunk_clean_locked(const Inode& node, std::uint64_t chunk_idx) const;
  /// Charge modeled CRC time for `bytes` to the calling actor.
  void charge_crc(std::uint64_t bytes) const;
  /// Post-write fault hook: flip one seeded bit in the just-written range
  /// when the plan armed at-rest corruption (the checksum was recorded
  /// first, so the rot is detectable).
  void maybe_corrupt_written_locked(Inode& node, std::uint64_t off,
                                    std::uint64_t len);
  Result<Ino> insert_child_locked(Ino dir, std::string_view name,
                                  bool exclusive, bool is_dir);
  std::byte* chunk_for_locked(Inode& node, std::uint64_t chunk_idx,
                              bool allocate);
  void free_file_data_locked(Inode& node);
  void touch_cache_locked(Ino ino, std::uint64_t chunk_idx);
  std::uint64_t now() const;

  // ---- journal internals (all under mu_ unless noted) ----
  /// Append a write intent for [off, off+data.size()) of `ino`; may trigger
  /// an autosync write-back when the watermark is crossed.
  void record_intent_locked(Ino ino, std::uint64_t off,
                            std::span<const std::byte> data);
  /// Fold all pending intents of `ino` into one kSyncCommit record carrying
  /// the live size/mtime, so the whole batch replays atomically (and a
  /// truncate between write and sync never resurrects dead bytes — replay
  /// re-truncates to the recorded size after applying the writes).
  void commit_intents_locked(Ino ino);
  /// Write `data` at `off` of a live inode's chunks (replay data path).
  void apply_bytes_locked(Inode& n, std::uint64_t off,
                          std::span<const std::byte> data);
  /// Drop whole chunks past the new EOF and zero the tail of the last one.
  void truncate_chunks_locked(Inode& n, std::uint64_t size);
  /// Apply one journal record to live state (crash replay). Counter records
  /// additionally take counters_mu_. Returns data bytes applied.
  std::uint64_t apply_record_locked(RecType type,
                                    std::span<const std::byte> payload);

  Options opt_;
  std::function<void(std::span<std::byte>)> on_new_slab_;

  mutable std::mutex mu_;
  Ino next_ino_ = kRootIno + 1;
  std::uint64_t next_gen_ = 1;
  std::unordered_map<Ino, Inode> inodes_;

  // Pending (volatile) write intents + the durable record log. Creates are
  // journaled durable-immediately, so next_ino_/next_gen_ never regress
  // across a crash and handle (ino, gen) pairs stay unique for the lifetime
  // of the store. The record log only grows (no compaction yet — ROADMAP).
  std::vector<Intent> journal_;
  std::size_t journal_bytes_ = 0;
  FStoreJournal jlog_;
  // Latest kServerState record seen (appended locally or replayed).
  std::uint64_t srv_next_session_ = 0;
  std::uint64_t srv_epoch_ = 0;
  // CRC-32C of an all-zero chunk (fresh allocations start checksummed) and
  // the interior-corruption verdict of the last crash() replay.
  std::uint32_t zero_chunk_crc_ = 0;
  std::uint64_t journal_corrupt_offset_ = ~std::uint64_t{0};

  // Slab allocator for chunks.
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::byte*> free_chunks_;

  // Buffer-cache model (only consulted when the disk model is enabled):
  // LRU over (ino, chunk) keys; a miss charges disk service time.
  struct CacheKey {
    Ino ino;
    std::uint64_t chunk;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return std::hash<std::uint64_t>()(k.ino * 0x9e3779b97f4a7c15ULL ^
                                        k.chunk);
    }
  };
  std::list<CacheKey> lru_;
  std::unordered_map<CacheKey, std::list<CacheKey>::iterator, CacheKeyHash>
      cache_;

  std::mutex counters_mu_;
  std::unordered_map<std::string, std::uint64_t> counters_;

  // Durable duplicate filter for counter mutations: (client_id, seq) -> the
  // old value returned when first applied. Survives crash() — models the
  // synchronous journaling real filers give non-idempotent metadata RPCs.
  struct DupKey {
    std::uint64_t client_id;
    std::uint32_t seq;
    bool operator==(const DupKey&) const = default;
  };
  struct DupKeyHash {
    std::size_t operator()(const DupKey& k) const {
      return std::hash<std::uint64_t>()(k.client_id * 0x9e3779b97f4a7c15ULL ^
                                        k.seq);
    }
  };
  std::unordered_map<DupKey, std::uint64_t, DupKeyHash> dup_;

  sim::Stats stats_;
};

}  // namespace fstore
