#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/expected.hpp"
#include "sim/stats.hpp"
#include "fstore/types.hpp"

namespace sim {
class FaultPlan;
}

namespace fstore {

template <typename T>
using Result = sim::Expected<T, Errc>;

/// Configuration for the store.
struct Options {
  /// Extent chunk size. File data lives in fixed-size chunks carved out of
  /// large slabs so a DAFS server can register whole slabs with its NIC once
  /// and RDMA straight out of the buffer cache.
  std::size_t chunk_size = 64 * 1024;
  /// Chunks per slab.
  std::size_t chunks_per_slab = 256;
  /// Model a disk behind the buffer cache. Off by default: the paper's
  /// bandwidth experiments run against a warm server cache.
  bool disk_enabled = false;
  /// Buffer-cache capacity in chunks when the disk model is on.
  std::size_t cache_chunks = 4096;
  /// Disk service parameters (charged per missing chunk).
  std::uint64_t disk_latency_ns = 5'000'000;  // 5 ms seek+rotate
  double disk_mbps = 40.0;
  /// Host copy rate for the copying data path (keep in sync with the
  /// fabric's CostModel::memcpy_mbps).
  double memcpy_mbps = 400.0;
  /// Optional fault plan consulted on the read paths (short reads and
  /// injected media errors). Not owned; the DAFS server wires the fabric's
  /// plan in here so one switchboard drives every layer.
  sim::FaultPlan* faults = nullptr;
};

/// The file server's storage substrate: an in-memory inode-based file system
/// with directory tree, sparse chunked extents, attributes, and an optional
/// buffer-cache/disk model. Thread-safe (single internal lock: the vnode
/// layer serializes, which is also how the CPU-contention model wants it).
///
/// Two data paths mirror what a DAFS filer does:
///  * `pread`/`pwrite`: copy in/out of a caller buffer (the inline path and
///    the NFS baseline). Charges host memcpy time to the calling actor.
///  * `extents_for_read`/`ensure_extents`: expose the cache chunks
///    themselves so the caller can DMA from/to them with zero host copies
///    (the direct path). Only per-op vnode costs are charged.
class FileStore {
 public:
  /// `on_new_slab` fires whenever the store allocates a fresh slab; the DAFS
  /// server uses it to register slab memory with its NIC.
  explicit FileStore(Options opt = {},
                     std::function<void(std::span<std::byte>)> on_new_slab = {});

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  // ---- namespace ----------------------------------------------------------
  Result<Ino> lookup(Ino dir, std::string_view name) const;
  /// Resolve a '/'-separated path from the root. Empty or "/" is the root.
  Result<Ino> resolve(std::string_view path) const;
  Result<Ino> create(Ino dir, std::string_view name, bool exclusive);
  Result<Ino> mkdir(Ino dir, std::string_view name);
  Errc remove(Ino dir, std::string_view name);
  Errc rmdir(Ino dir, std::string_view name);
  Errc rename(Ino from_dir, std::string_view from, Ino to_dir,
              std::string_view to);
  Result<std::vector<DirEntry>> readdir(Ino dir) const;

  // ---- attributes ----------------------------------------------------------
  Result<Attrs> getattr(Ino ino) const;
  Errc set_size(Ino ino, std::uint64_t size);

  // ---- data: copying path --------------------------------------------------
  /// Read up to out.size() bytes at `off`; returns bytes read (short at EOF).
  Result<std::uint64_t> pread(Ino ino, std::uint64_t off,
                              std::span<std::byte> out);
  /// Write in.size() bytes at `off`, extending the file as needed.
  Result<std::uint64_t> pwrite(Ino ino, std::uint64_t off,
                               std::span<const std::byte> in);

  // ---- data: zero-copy (DMA) path -------------------------------------------
  /// Chunk-pieces covering [off, off+len) of existing file data, clamped to
  /// EOF. The spans point into the buffer cache; valid until the file is
  /// truncated or removed.
  Result<std::vector<std::span<std::byte>>> extents_for_read(
      Ino ino, std::uint64_t off, std::uint64_t len);
  /// Allocate (if needed) and return chunk-pieces covering [off, off+len)
  /// for an incoming write; call `commit_write` afterwards to update size
  /// and mtime.
  Result<std::vector<std::span<std::byte>>> ensure_extents(
      Ino ino, std::uint64_t off, std::uint64_t len);
  Errc commit_write(Ino ino, std::uint64_t off, std::uint64_t len);

  Errc sync(Ino ino);

  // ---- named atomic counters (DAFS extension backing MPI shared pointers) --
  /// Atomically add `delta` to the counter `key`, returning the old value.
  std::uint64_t counter_fetch_add(const std::string& key, std::uint64_t delta);
  void counter_set(const std::string& key, std::uint64_t value);

  sim::Stats& stats() { return stats_; }
  const Options& options() const { return opt_; }

 private:
  struct Inode {
    Attrs attrs;
    std::map<std::string, Ino> entries;           // directories
    std::map<std::uint64_t, std::byte*> chunks;   // files: chunk idx -> data
  };

  Inode* find_locked(Ino ino);
  const Inode* find_locked(Ino ino) const;
  Result<Ino> insert_child_locked(Ino dir, std::string_view name,
                                  bool exclusive, bool is_dir);
  std::byte* chunk_for_locked(Inode& node, std::uint64_t chunk_idx,
                              bool allocate);
  void free_file_data_locked(Inode& node);
  void touch_cache_locked(Ino ino, std::uint64_t chunk_idx);
  std::uint64_t now() const;

  Options opt_;
  std::function<void(std::span<std::byte>)> on_new_slab_;

  mutable std::mutex mu_;
  Ino next_ino_ = kRootIno + 1;
  std::unordered_map<Ino, Inode> inodes_;

  // Slab allocator for chunks.
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::byte*> free_chunks_;

  // Buffer-cache model (only consulted when the disk model is enabled):
  // LRU over (ino, chunk) keys; a miss charges disk service time.
  struct CacheKey {
    Ino ino;
    std::uint64_t chunk;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return std::hash<std::uint64_t>()(k.ino * 0x9e3779b97f4a7c15ULL ^
                                        k.chunk);
    }
  };
  std::list<CacheKey> lru_;
  std::unordered_map<CacheKey, std::list<CacheKey>::iterator, CacheKeyHash>
      cache_;

  std::mutex counters_mu_;
  std::unordered_map<std::string, std::uint64_t> counters_;

  sim::Stats stats_;
};

}  // namespace fstore
