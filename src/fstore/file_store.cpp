#include "fstore/file_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>

#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace fstore {

using sim::Actor;
using sim::CostKind;

FileStore::FileStore(Options opt,
                     std::function<void(std::span<std::byte>)> on_new_slab)
    : opt_(opt), on_new_slab_(std::move(on_new_slab)) {
  // Fresh chunks are zero-filled, so they are born with this checksum.
  const std::vector<std::byte> zeros(opt_.chunk_size);
  zero_chunk_crc_ = crc32c(zeros);
  Inode root;
  root.attrs.ino = kRootIno;
  root.attrs.is_dir = true;
  root.attrs.nlink = 2;
  root.attrs.gen = next_gen_++;
  // The root is implicit (recreated by crash replay before any records
  // apply), so an empty — or journal-less — store still restarts with a
  // valid file system.
  inodes_.emplace(kRootIno, std::move(root));
}

std::uint64_t FileStore::now() const {
  Actor* actor = Actor::current();
  return actor ? actor->now() : 0;
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

FileStore::Inode* FileStore::find_locked(Ino ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

const FileStore::Inode* FileStore::find_locked(Ino ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

std::byte* FileStore::chunk_for_locked(Inode& node, std::uint64_t chunk_idx,
                                       bool allocate) {
  auto it = node.chunks.find(chunk_idx);
  if (it != node.chunks.end()) return it->second;
  if (!allocate) return nullptr;
  if (free_chunks_.empty()) {
    const std::size_t slab_bytes = opt_.chunk_size * opt_.chunks_per_slab;
    slabs_.push_back(std::make_unique<std::byte[]>(slab_bytes));
    std::byte* base = slabs_.back().get();
    std::memset(base, 0, slab_bytes);
    if (on_new_slab_) on_new_slab_(std::span<std::byte>(base, slab_bytes));
    for (std::size_t i = 0; i < opt_.chunks_per_slab; ++i) {
      free_chunks_.push_back(base + i * opt_.chunk_size);
    }
    stats_.add("fstore.slabs");
  }
  std::byte* chunk = free_chunks_.back();
  free_chunks_.pop_back();
  std::memset(chunk, 0, opt_.chunk_size);
  node.chunks.emplace(chunk_idx, chunk);
  node.csums.emplace(chunk_idx, zero_chunk_crc_);
  stats_.add("fstore.chunks_allocated");
  return chunk;
}

void FileStore::free_file_data_locked(Inode& node) {
  for (auto& [idx, ptr] : node.chunks) free_chunks_.push_back(ptr);
  node.chunks.clear();
  node.csums.clear();
}

// ---------------------------------------------------------------------------
// Block integrity
// ---------------------------------------------------------------------------

void FileStore::update_csum_locked(Inode& node, std::uint64_t chunk_idx) {
  auto it = node.chunks.find(chunk_idx);
  if (it == node.chunks.end()) return;
  node.csums[chunk_idx] =
      crc32c(std::span<const std::byte>(it->second, opt_.chunk_size));
}

bool FileStore::chunk_clean_locked(const Inode& node,
                                   std::uint64_t chunk_idx) const {
  auto it = node.chunks.find(chunk_idx);
  if (it == node.chunks.end()) return true;  // hole: nothing stored to rot
  auto cs = node.csums.find(chunk_idx);
  if (cs == node.csums.end()) return true;   // pre-integrity chunk (unreached)
  return crc32c(std::span<const std::byte>(it->second, opt_.chunk_size)) ==
         cs->second;
}

void FileStore::charge_crc(std::uint64_t bytes) const {
  if (bytes == 0) return;
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kCopy,
                  static_cast<sim::Time>(static_cast<double>(bytes) * 1'000.0 /
                                         opt_.crc_mbps));
  }
}

void FileStore::maybe_corrupt_written_locked(Inode& node, std::uint64_t off,
                                             std::uint64_t len) {
  if (opt_.faults == nullptr || len == 0 || !opt_.faults->armed()) return;
  std::uint64_t flip = 0;
  if (!opt_.faults->on_fstore_write(&flip)) return;
  // Flip one seeded bit inside the freshly-written range. The checksum was
  // recorded before this hook runs, so the rot is silent until a verifying
  // read or the scrubber recomputes the block checksum.
  const std::uint64_t pos = off + flip % len;
  const std::uint64_t ci = pos / opt_.chunk_size;
  auto it = node.chunks.find(ci);
  if (it == node.chunks.end()) return;
  it->second[pos % opt_.chunk_size] ^=
      static_cast<std::byte>(1u << ((flip >> 16) % 8));
  stats_.add("fault.fstore_bitflips");
}

Errc FileStore::verify_range(Ino ino, std::uint64_t off, std::uint64_t len) {
  std::lock_guard lock(mu_);
  const Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  if (off >= n->attrs.size) return Errc::kOk;
  len = std::min(len, n->attrs.size - off);
  std::uint64_t checked = 0;
  for (std::uint64_t ci = off / opt_.chunk_size;
       ci <= (off + len - 1) / opt_.chunk_size; ++ci) {
    if (n->chunks.count(ci) != 0) checked += opt_.chunk_size;
    if (!chunk_clean_locked(*n, ci)) {
      charge_crc(checked);
      stats_.add("fstore.corrupt_blocks_detected");
      return Errc::kCorrupt;
    }
  }
  charge_crc(checked);
  return Errc::kOk;
}

FileStore::ScrubStep FileStore::scrub_step(ScrubCursor* cursor,
                                           std::size_t max_chunks) {
  std::lock_guard lock(mu_);
  ScrubStep out;
  std::uint64_t crc_bytes = 0;
  while (out.checked < max_chunks) {
    // Smallest live inode at or past the cursor (the table is unordered, so
    // scan — store scale in the sim keeps this cheap).
    const Inode* best = nullptr;
    Ino best_ino = ~Ino{0};
    for (const auto& [ino, node] : inodes_) {
      if (ino < cursor->ino || node.attrs.is_dir || node.chunks.empty()) {
        continue;
      }
      if (ino < best_ino) {
        best = &node;
        best_ino = ino;
      }
    }
    if (best == nullptr) {
      // Walk fell off the end of the table: one pass is complete.
      out.wrapped = true;
      *cursor = ScrubCursor{};
      break;
    }
    auto it = best->chunks.lower_bound(cursor->chunk);
    for (; it != best->chunks.end() && out.checked < max_chunks; ++it) {
      ++out.checked;
      crc_bytes += opt_.chunk_size;
      if (!chunk_clean_locked(*best, it->first)) {
        out.bad.push_back(ScrubBlock{best_ino, it->first});
      }
    }
    if (it == best->chunks.end()) {
      cursor->ino = best_ino + 1;
      cursor->chunk = 0;
    } else {
      cursor->ino = best_ino;
      cursor->chunk = it->first;
    }
  }
  charge_crc(crc_bytes);
  stats_.add("fstore.scrub_chunks_checked", out.checked);
  return out;
}

Errc FileStore::repair_chunk(Ino ino, std::uint64_t chunk,
                             std::span<const std::byte> data) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  auto it = n->chunks.find(chunk);
  if (it == n->chunks.end()) return Errc::kNoEnt;
  const std::size_t len = std::min(data.size(), opt_.chunk_size);
  // The stored checksum was recorded at write time, before any rot, so it
  // names the bytes this chunk is supposed to hold. A candidate copy that
  // does not hash to it is stale (fetched from a replica whose journal is
  // behind) — installing it would silently rewind an acknowledged write.
  auto cs = n->csums.find(chunk);
  if (cs != n->csums.end()) {
    std::uint32_t have = crc32c(data.first(len));
    static constexpr std::byte kZeros[256] = {};
    for (std::size_t pad = opt_.chunk_size - len; pad > 0;) {
      const std::size_t step = std::min(pad, sizeof(kZeros));
      have = crc32c(std::span<const std::byte>(kZeros, step), have);
      pad -= step;
    }
    if (have != cs->second) {
      stats_.add("fstore.repair_rejected_stale");
      return Errc::kCorrupt;
    }
  }
  if (len > 0) std::memcpy(it->second, data.data(), len);
  if (len < opt_.chunk_size) {
    std::memset(it->second + len, 0, opt_.chunk_size - len);
  }
  update_csum_locked(*n, chunk);
  stats_.add("fstore.chunks_repaired");
  return Errc::kOk;
}

// ---------------------------------------------------------------------------
// Journal / durable image
// ---------------------------------------------------------------------------

void FileStore::apply_bytes_locked(Inode& n, std::uint64_t off,
                                   std::span<const std::byte> data) {
  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here =
        std::min<std::uint64_t>(data.size() - done, opt_.chunk_size - co);
    std::byte* chunk = chunk_for_locked(n, ci, /*allocate=*/true);
    std::memcpy(chunk + co, data.data() + done, n_here);
    update_csum_locked(n, ci);
    done += n_here;
  }
}

void FileStore::truncate_chunks_locked(Inode& n, std::uint64_t size) {
  const std::uint64_t first_dead =
      (size + opt_.chunk_size - 1) / opt_.chunk_size;
  for (auto it = n.chunks.lower_bound(first_dead); it != n.chunks.end();) {
    free_chunks_.push_back(it->second);
    n.csums.erase(it->first);
    it = n.chunks.erase(it);
  }
  if (size % opt_.chunk_size != 0) {
    auto it = n.chunks.find(size / opt_.chunk_size);
    if (it != n.chunks.end()) {
      std::memset(it->second + size % opt_.chunk_size, 0,
                  opt_.chunk_size - size % opt_.chunk_size);
      update_csum_locked(n, it->first);
    }
  }
}

void FileStore::commit_intents_locked(Ino ino) {
  const Inode* n = find_locked(ino);
  std::size_t committed = 0;
  std::vector<Intent> batch;
  for (auto it = journal_.begin(); it != journal_.end();) {
    if (it->ino != ino) {
      ++it;
      continue;
    }
    journal_bytes_ -= it->bytes.size();
    if (n != nullptr) {
      committed += it->bytes.size();
      batch.push_back(std::move(*it));
    }
    it = journal_.erase(it);
  }
  // The batch (plus the final size, which a truncate between write and sync
  // may have shrunk — replay re-applies it, never resurrecting dead bytes)
  // is journalled in kSyncRecDataCap-bounded records: the replication
  // message buffers are fixed-size and every record must ship whole.
  // Intents pack into a record until the cap, and a single oversized intent
  // is sliced into adjacent sub-ranges — replay applies records in order,
  // which folds to the same bytes. Torn-tail truncation can now surface a
  // prefix of the batch after a local crash, which is legal: the sync never
  // acknowledged, and each record re-applies the final size itself.
  if (n != nullptr && committed > 0 && opt_.journal_enabled) {
    std::size_t i = 0;   // next intent
    std::size_t sub = 0; // bytes of batch[i] already journalled
    while (i < batch.size()) {
      RecWriter body;
      std::uint32_t nintents = 0;
      std::size_t rec_bytes = 0;
      while (i < batch.size() && rec_bytes < kSyncRecDataCap) {
        const Intent& in = batch[i];
        const std::size_t take =
            std::min(in.bytes.size() - sub, kSyncRecDataCap - rec_bytes);
        body.u64(in.off + sub);
        body.bytes(std::span(in.bytes).subspan(sub, take));
        ++nintents;
        rec_bytes += take;
        sub += take;
        if (sub == in.bytes.size()) {
          sub = 0;
          ++i;
        }
      }
      RecWriter w;
      w.u64(ino);
      w.u64(n->attrs.size);
      w.u64(n->attrs.mtime);
      w.u32(nintents);
      std::vector<std::byte> payload(w.out().begin(), w.out().end());
      payload.insert(payload.end(), body.out().begin(), body.out().end());
      jlog_.append(RecType::kSyncCommit, payload);
    }
  }
  if (committed > 0) stats_.add("fstore.journal_committed_bytes", committed);
}

void FileStore::record_intent_locked(Ino ino, std::uint64_t off,
                                     std::span<const std::byte> data) {
  if (!opt_.journal_enabled || data.empty()) return;
  // Child of the worker's open request span (inert outside one).
  std::optional<sim::SpanScope> span;
  if (opt_.tracer != nullptr) {
    span.emplace(*opt_.tracer, "fstore", "journal_append");
    if (span->active()) span->attr("bytes", data.size());
  }
  Intent intent;
  intent.ino = ino;
  intent.off = off;
  intent.bytes.assign(data.begin(), data.end());
  journal_bytes_ += intent.bytes.size();
  journal_.push_back(std::move(intent));
  stats_.add("fstore.journal_intents");
  // Watermark write-back: an early commit is always legal (durability may
  // only exceed the contract), and it bounds journal memory under sync-free
  // streaming workloads.
  while (journal_bytes_ > opt_.journal_autosync_bytes && !journal_.empty()) {
    stats_.add("fstore.journal_autosyncs");
    commit_intents_locked(journal_.front().ino);
  }
}

void FileStore::sync_all() {
  std::lock_guard lock(mu_);
  while (!journal_.empty()) commit_intents_locked(journal_.front().ino);
}

std::size_t FileStore::journal_pending_bytes() const {
  std::lock_guard lock(mu_);
  return journal_bytes_;
}

std::uint64_t FileStore::apply_record_locked(RecType type,
                                             std::span<const std::byte> p) {
  RecReader r(p);
  switch (type) {
    case RecType::kCreate: {
      const Ino dir = r.u64();
      const Ino ino = r.u64();
      const std::uint64_t gen = r.u64();
      const std::uint64_t mtime = r.u64();
      const bool is_dir = r.u8() != 0;
      const std::string name = r.str();
      if (!r.ok()) break;
      Inode* d = find_locked(dir);
      if (d == nullptr) break;
      Inode node;
      node.attrs.ino = ino;
      node.attrs.is_dir = is_dir;
      node.attrs.nlink = is_dir ? 2 : 1;
      node.attrs.mtime = mtime;
      node.attrs.gen = gen;
      inodes_.emplace(ino, std::move(node));
      d->entries[name] = ino;
      // Id watermarks never regress: a promoted standby keeps minting fresh
      // (ino, gen) pairs past everything the primary ever handed out.
      next_ino_ = std::max(next_ino_, ino + 1);
      next_gen_ = std::max(next_gen_, gen + 1);
      break;
    }
    case RecType::kRemove: {
      const Ino dir = r.u64();
      const std::string name = r.str();
      if (!r.ok()) break;
      Inode* d = find_locked(dir);
      if (d == nullptr) break;
      auto it = d->entries.find(name);
      if (it == d->entries.end()) break;
      if (Inode* child = find_locked(it->second)) {
        free_file_data_locked(*child);
        inodes_.erase(it->second);
      }
      d->entries.erase(it);
      break;
    }
    case RecType::kRename: {
      const Ino from_dir = r.u64();
      const Ino to_dir = r.u64();
      const std::string from = r.str();
      const std::string to = r.str();
      if (!r.ok()) break;
      Inode* fd = find_locked(from_dir);
      Inode* td = find_locked(to_dir);
      if (fd == nullptr || td == nullptr) break;
      auto it = fd->entries.find(from);
      if (it == fd->entries.end()) break;
      const Ino moved = it->second;
      auto tgt = td->entries.find(to);
      if (tgt != td->entries.end()) {
        if (Inode* dead = find_locked(tgt->second)) {
          free_file_data_locked(*dead);
          inodes_.erase(tgt->second);
        }
        td->entries.erase(tgt);
      }
      fd->entries.erase(it);
      td->entries[to] = moved;
      break;
    }
    case RecType::kSetSize: {
      const Ino ino = r.u64();
      const std::uint64_t size = r.u64();
      const std::uint64_t mtime = r.u64();
      if (!r.ok()) break;
      if (Inode* n = find_locked(ino)) {
        truncate_chunks_locked(*n, size);
        n->attrs.size = size;
        n->attrs.mtime = mtime;
      }
      break;
    }
    case RecType::kSyncCommit: {
      const Ino ino = r.u64();
      const std::uint64_t size = r.u64();
      const std::uint64_t mtime = r.u64();
      const std::uint32_t n_intents = r.u32();
      Inode* n = find_locked(ino);
      std::uint64_t applied = 0;
      for (std::uint32_t i = 0; i < n_intents && r.ok(); ++i) {
        const std::uint64_t off = r.u64();
        const auto data = r.bytes();
        if (!r.ok() || n == nullptr) continue;
        apply_bytes_locked(*n, off, data);
        applied += data.size();
      }
      if (n != nullptr && r.ok()) {
        // Recorded size last: a truncate that raced the writes must win.
        n->attrs.size = size;
        truncate_chunks_locked(*n, size);
        n->attrs.mtime = mtime;
      }
      return applied;
    }
    case RecType::kCounterSet: {
      const std::uint64_t value = r.u64();
      const std::string key = r.str();
      if (!r.ok()) break;
      std::lock_guard clock(counters_mu_);
      counters_[key] = value;
      break;
    }
    case RecType::kCounterAdd: {
      const std::uint64_t delta = r.u64();
      const std::uint64_t client_id = r.u64();
      const std::uint32_t seq = r.u32();
      const std::uint64_t old = r.u64();
      const std::string key = r.str();
      if (!r.ok()) break;
      std::lock_guard clock(counters_mu_);
      counters_[key] = old + delta;
      if (client_id != 0 && seq != 0) {
        dup_.emplace(DupKey{client_id, seq}, old);
      }
      break;
    }
    case RecType::kDupForget: {
      const std::uint64_t client_id = r.u64();
      const std::uint32_t upto_seq = r.u32();
      if (!r.ok()) break;
      std::lock_guard clock(counters_mu_);
      std::erase_if(dup_, [&](const auto& kv) {
        return kv.first.client_id == client_id && kv.first.seq <= upto_seq;
      });
      break;
    }
    case RecType::kServerState: {
      const std::uint64_t next_session = r.u64();
      const std::uint64_t epoch = r.u64();
      if (!r.ok()) break;
      srv_next_session_ = std::max(srv_next_session_, next_session);
      srv_epoch_ = std::max(srv_epoch_, epoch);
      break;
    }
    case RecType::kTermMark:
      // Consensus bookkeeping only; the DAFS server rebuilds its term-run
      // table from these via journal_log().scan().
      break;
  }
  return 0;
}

Errc FileStore::crash() {
  std::lock_guard lock(mu_);
  stats_.add("fstore.crashes");
  journal_corrupt_offset_ = ~std::uint64_t{0};
  if (journal_bytes_ > 0) {
    stats_.add("fstore.journal_dropped_bytes", journal_bytes_);
  }
  journal_.clear();
  journal_bytes_ = 0;
  // All volatile state dies: live inode table (chunks recycled into the free
  // pool — slabs are NIC-registered and must never be freed), the cache
  // model's LRU. next_ino_/next_gen_ survive (creates journal durably).
  for (auto& [ino, node] : inodes_) free_file_data_locked(node);
  inodes_.clear();
  cache_.clear();
  lru_.clear();
  Inode root;
  root.attrs.ino = kRootIno;
  root.attrs.is_dir = true;
  root.attrs.nlink = 2;
  root.attrs.gen = 1;
  inodes_.emplace(kRootIno, std::move(root));
  if (!opt_.journal_enabled) return Errc::kOk;  // counters survive, files don't
  // Counters and the dup filter are rebuilt from their records, so clear
  // the live maps first (a standby importing a primary's stream starts from
  // nothing and must converge to exactly the shipped state).
  {
    std::lock_guard clock(counters_mu_);
    counters_.clear();
    dup_.clear();
  }
  // Journal replay: truncate a torn tail (the legal crash form), then apply
  // every record in order to rebuild the live tree. Interior corruption is
  // *not* truncated — the valid prefix is applied so the damage can be
  // inspected, but kCorrupt tells the caller to refuse the mount.
  std::uint64_t replayed = 0;
  const FStoreJournal::ReplayResult rep = jlog_.replay(
      [&](RecType type, std::span<const std::byte> payload) {
        replayed += apply_record_locked(type, payload);
      });
  if (rep.torn_bytes > 0) {
    stats_.add("fstore.journal_truncated_bytes", rep.torn_bytes);
  }
  stats_.add("fstore.journal_replayed_bytes", replayed);
  if (rep.interior_corrupt) {
    journal_corrupt_offset_ = rep.corrupt_offset;
    stats_.add("fstore.journal_interior_corrupt");
    return Errc::kCorrupt;
  }
  return Errc::kOk;
}

std::uint64_t FileStore::journal_corrupt_offset() const {
  std::lock_guard lock(mu_);
  return journal_corrupt_offset_;
}

void FileStore::journal_server_state(std::uint64_t next_session,
                                     std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  srv_next_session_ = std::max(srv_next_session_, next_session);
  srv_epoch_ = std::max(srv_epoch_, epoch);
  if (!opt_.journal_enabled) return;
  RecWriter w;
  w.u64(next_session);
  w.u64(epoch);
  jlog_.append(RecType::kServerState, w.out());
}

std::uint64_t FileStore::server_state_watermark() const {
  std::lock_guard lock(mu_);
  return srv_next_session_;
}

void FileStore::touch_cache_locked(Ino ino, std::uint64_t chunk_idx) {
  if (!opt_.disk_enabled) return;
  const CacheKey key{ino, chunk_idx};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.add("fstore.cache_hits");
    return;
  }
  // Miss: charge disk service for one chunk, evict if over capacity.
  stats_.add("fstore.cache_misses");
  if (Actor* actor = Actor::current()) {
    const auto xfer = static_cast<sim::Time>(
        static_cast<double>(opt_.chunk_size) * 1'000.0 / opt_.disk_mbps);
    actor->advance(opt_.disk_latency_ns + xfer);  // I/O wait, not CPU
  }
  lru_.push_front(key);
  cache_.emplace(key, lru_.begin());
  while (cache_.size() > opt_.cache_chunks) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    stats_.add("fstore.cache_evictions");
  }
}

// ---------------------------------------------------------------------------
// Namespace
// ---------------------------------------------------------------------------

Result<Ino> FileStore::lookup(Ino dir, std::string_view name) const {
  std::lock_guard lock(mu_);
  const Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return Errc::kNoEnt;
  return it->second;
}

Result<Ino> FileStore::resolve(std::string_view path) const {
  Ino cur = kRootIno;
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    if (pos >= path.size()) break;
    std::size_t end = path.find('/', pos);
    if (end == std::string_view::npos) end = path.size();
    auto r = lookup(cur, path.substr(pos, end - pos));
    if (!r.ok()) return r.error();
    cur = r.value();
    pos = end;
  }
  return cur;
}

Result<Ino> FileStore::insert_child_locked(Ino dir, std::string_view name,
                                           bool exclusive, bool is_dir) {
  Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  if (name.empty() || name.find('/') != std::string_view::npos) {
    return Errc::kInval;
  }
  auto it = d->entries.find(std::string(name));
  if (it != d->entries.end()) {
    if (exclusive) return Errc::kExists;
    const Inode* existing = find_locked(it->second);
    if (existing != nullptr && existing->attrs.is_dir != is_dir) {
      return is_dir ? Errc::kNotDir : Errc::kIsDir;
    }
    return it->second;
  }
  const Ino ino = next_ino_++;
  Inode node;
  node.attrs.ino = ino;
  node.attrs.is_dir = is_dir;
  node.attrs.nlink = is_dir ? 2 : 1;
  node.attrs.mtime = now();
  node.attrs.gen = next_gen_++;
  const std::uint64_t mtime = node.attrs.mtime;
  const std::uint64_t gen = node.attrs.gen;
  inodes_.emplace(ino, std::move(node));
  d->entries.emplace(std::string(name), ino);
  d->attrs.mtime = now();
  // Creates are metadata: journaled durable immediately, so the name — and
  // its generation number — survives a crash even before any data is synced.
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(dir);
    w.u64(ino);
    w.u64(gen);
    w.u64(mtime);
    w.u8(is_dir ? 1 : 0);
    w.str(name);
    jlog_.append(RecType::kCreate, w.out());
  }
  return ino;
}

Result<Ino> FileStore::create(Ino dir, std::string_view name, bool exclusive) {
  std::lock_guard lock(mu_);
  auto r = insert_child_locked(dir, name, exclusive, /*is_dir=*/false);
  if (r.ok()) stats_.add("fstore.creates");
  return r;
}

Result<Ino> FileStore::mkdir(Ino dir, std::string_view name) {
  std::lock_guard lock(mu_);
  return insert_child_locked(dir, name, /*exclusive=*/true, /*is_dir=*/true);
}

Errc FileStore::remove(Ino dir, std::string_view name) {
  std::lock_guard lock(mu_);
  Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return Errc::kNoEnt;
  Inode* child = find_locked(it->second);
  const Ino child_ino = it->second;
  if (child != nullptr) {
    if (child->attrs.is_dir) return Errc::kIsDir;
    free_file_data_locked(*child);
    inodes_.erase(child_ino);
  }
  d->entries.erase(it);
  d->attrs.mtime = now();
  if (opt_.journal_enabled) {
    std::size_t dropped = 0;
    std::erase_if(journal_, [&](const Intent& i) {
      if (i.ino != child_ino) return false;
      dropped += i.bytes.size();
      return true;
    });
    journal_bytes_ -= dropped;
    RecWriter w;
    w.u64(dir);
    w.str(name);
    jlog_.append(RecType::kRemove, w.out());
  }
  stats_.add("fstore.removes");
  return Errc::kOk;
}

Errc FileStore::rmdir(Ino dir, std::string_view name) {
  std::lock_guard lock(mu_);
  Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return Errc::kNoEnt;
  Inode* child = find_locked(it->second);
  if (child == nullptr) return Errc::kStale;
  if (!child->attrs.is_dir) return Errc::kNotDir;
  if (!child->entries.empty()) return Errc::kNotEmpty;
  inodes_.erase(it->second);
  const std::string gone = it->first;
  d->entries.erase(it);
  d->attrs.mtime = now();
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(dir);
    w.str(gone);
    jlog_.append(RecType::kRemove, w.out());
  }
  return Errc::kOk;
}

Errc FileStore::rename(Ino from_dir, std::string_view from, Ino to_dir,
                       std::string_view to) {
  std::lock_guard lock(mu_);
  Inode* fd = find_locked(from_dir);
  Inode* td = find_locked(to_dir);
  if (fd == nullptr || td == nullptr) return Errc::kStale;
  if (!fd->attrs.is_dir || !td->attrs.is_dir) return Errc::kNotDir;
  auto it = fd->entries.find(std::string(from));
  if (it == fd->entries.end()) return Errc::kNoEnt;
  if (to.empty() || to.find('/') != std::string_view::npos) return Errc::kInval;
  const Ino moved = it->second;
  // Replace any existing target (file only).
  auto tgt = td->entries.find(std::string(to));
  if (tgt != td->entries.end()) {
    Inode* existing = find_locked(tgt->second);
    if (existing != nullptr && existing->attrs.is_dir) return Errc::kIsDir;
    const Ino dead = tgt->second;
    if (existing != nullptr) {
      free_file_data_locked(*existing);
      inodes_.erase(dead);
    }
    td->entries.erase(tgt);
    if (opt_.journal_enabled) {
      std::size_t dropped = 0;
      std::erase_if(journal_, [&](const Intent& i) {
        if (i.ino != dead) return false;
        dropped += i.bytes.size();
        return true;
      });
      journal_bytes_ -= dropped;
    }
  }
  fd->entries.erase(it);
  td->entries.emplace(std::string(to), moved);
  fd->attrs.mtime = now();
  td->attrs.mtime = now();
  // One record covers the whole move, including the replaced target: replay
  // mirrors the live logic above.
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(from_dir);
    w.u64(to_dir);
    w.str(from);
    w.str(to);
    jlog_.append(RecType::kRename, w.out());
  }
  return Errc::kOk;
}

Result<std::vector<DirEntry>> FileStore::readdir(Ino dir) const {
  std::lock_guard lock(mu_);
  const Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  std::vector<DirEntry> out;
  out.reserve(d->entries.size());
  for (const auto& [name, ino] : d->entries) {
    const Inode* child = find_locked(ino);
    out.push_back(DirEntry{name, ino, child != nullptr && child->attrs.is_dir});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Attributes
// ---------------------------------------------------------------------------

Result<Attrs> FileStore::getattr(Ino ino) const {
  std::lock_guard lock(mu_);
  const Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  return n->attrs;
}

Errc FileStore::set_size(Ino ino, std::uint64_t size) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  if (size < n->attrs.size) truncate_chunks_locked(*n, size);
  n->attrs.size = size;
  n->attrs.mtime = now();
  // set_size is metadata: durable immediately. Pending intents past the new
  // EOF must not resurrect dead bytes when folded later, which the
  // kSyncCommit record guarantees by carrying — and replay re-applying —
  // the final size after the writes.
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(ino);
    w.u64(size);
    w.u64(n->attrs.mtime);
    jlog_.append(RecType::kSetSize, w.out());
  }
  return Errc::kOk;
}

// ---------------------------------------------------------------------------
// Data
// ---------------------------------------------------------------------------

Result<std::uint64_t> FileStore::pread(Ino ino, std::uint64_t off,
                                       std::span<std::byte> out, bool verify) {
  std::optional<sim::SpanScope> span;
  if (opt_.tracer != nullptr) span.emplace(*opt_.tracer, "fstore", "pread");
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  if (off >= n->attrs.size) return std::uint64_t{0};
  std::uint64_t len =
      std::min<std::uint64_t>(out.size(), n->attrs.size - off);
  if (opt_.faults != nullptr && opt_.faults->on_fstore_read(&len)) {
    stats_.add("fault.fstore_read_errors");
    return Errc::kIo;
  }

  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    if (verify && !chunk_clean_locked(*n, ci)) {
      charge_crc(done + n_here);
      stats_.add("fstore.corrupt_blocks_detected");
      return Errc::kCorrupt;
    }
    const std::byte* chunk =
        chunk_for_locked(*n, ci, /*allocate=*/false);
    if (chunk == nullptr) {
      std::memset(out.data() + done, 0, n_here);  // hole reads as zeros
    } else {
      std::memcpy(out.data() + done, chunk + co, n_here);
    }
    done += n_here;
  }
  if (verify) charge_crc(len);
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kCopy,
                  static_cast<sim::Time>(static_cast<double>(len) * 1'000.0 /
                                         opt_.memcpy_mbps));
  }
  stats_.add("fstore.pread_bytes", len);
  return len;
}

Result<std::uint64_t> FileStore::pwrite(Ino ino, std::uint64_t off,
                                        std::span<const std::byte> in) {
  std::optional<sim::SpanScope> span;
  if (opt_.tracer != nullptr) span.emplace(*opt_.tracer, "fstore", "pwrite");
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;

  std::uint64_t done = 0;
  while (done < in.size()) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here =
        std::min<std::uint64_t>(in.size() - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/true);
    std::memcpy(chunk + co, in.data() + done, n_here);
    update_csum_locked(*n, ci);
    done += n_here;
  }
  n->attrs.size = std::max(n->attrs.size, off + in.size());
  n->attrs.mtime = now();
  record_intent_locked(ino, off, in);
  maybe_corrupt_written_locked(*n, off, in.size());
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kCopy,
                  static_cast<sim::Time>(static_cast<double>(in.size()) *
                                         1'000.0 / opt_.memcpy_mbps));
  }
  stats_.add("fstore.pwrite_bytes", in.size());
  return std::uint64_t{in.size()};
}

Result<std::vector<std::span<std::byte>>> FileStore::extents_for_read(
    Ino ino, std::uint64_t off, std::uint64_t len, bool verify) {
  std::optional<sim::SpanScope> span;
  if (opt_.tracer != nullptr) {
    span.emplace(*opt_.tracer, "fstore", "extents_for_read");
  }
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  std::vector<std::span<std::byte>> out;
  if (off >= n->attrs.size) return out;
  len = std::min(len, n->attrs.size - off);
  // Zero-copy reads cannot be short (the spans *are* the cache), so only the
  // hard-failure half of the fault plan applies here.
  if (opt_.faults != nullptr && opt_.faults->on_fstore_read(nullptr)) {
    stats_.add("fault.fstore_read_errors");
    return Errc::kIo;
  }
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    // Checksum-gate the chunk *before* it becomes a DMA source: a verifying
    // server must never RDMA rotted bytes into a client buffer.
    if (verify && !chunk_clean_locked(*n, ci)) {
      charge_crc(done + n_here);
      stats_.add("fstore.corrupt_blocks_detected");
      return Errc::kCorrupt;
    }
    // DMA source must be materialized even for holes.
    std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/true);
    out.emplace_back(chunk + co, n_here);
    done += n_here;
  }
  if (verify) charge_crc(len);
  return out;
}

Result<std::vector<std::span<std::byte>>> FileStore::ensure_extents(
    Ino ino, std::uint64_t off, std::uint64_t len) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  std::vector<std::span<std::byte>> out;
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/true);
    out.emplace_back(chunk + co, n_here);
    done += n_here;
  }
  return out;
}

Errc FileStore::commit_write(Ino ino, std::uint64_t off, std::uint64_t len) {
  std::optional<sim::SpanScope> span;
  if (opt_.tracer != nullptr) {
    span.emplace(*opt_.tracer, "fstore", "commit_write");
  }
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  n->attrs.size = std::max(n->attrs.size, off + len);
  n->attrs.mtime = now();
  // The DMA mutated the chunks behind the checksums' back: re-checksum every
  // chunk the committed range touches.
  for (std::uint64_t ci = off / opt_.chunk_size;
       len > 0 && ci <= (off + len - 1) / opt_.chunk_size; ++ci) {
    update_csum_locked(*n, ci);
  }
  // Direct (RDMA) writes land straight in the cache chunks, so the journal
  // intent is captured here, from the chunks the DMA just filled.
  if (opt_.journal_enabled && len > 0) {
    std::vector<std::byte> data(len);
    std::uint64_t done = 0;
    while (done < len) {
      const std::uint64_t pos = off + done;
      const std::uint64_t ci = pos / opt_.chunk_size;
      const std::uint64_t co = pos % opt_.chunk_size;
      const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
      const std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/false);
      if (chunk == nullptr) {
        std::memset(data.data() + done, 0, n_here);
      } else {
        std::memcpy(data.data() + done, chunk + co, n_here);
      }
      done += n_here;
    }
    record_intent_locked(ino, off, data);
  }
  maybe_corrupt_written_locked(*n, off, len);
  return Errc::kOk;
}

Errc FileStore::sync(Ino ino) {
  std::lock_guard lock(mu_);
  if (find_locked(ino) == nullptr) return Errc::kStale;
  commit_intents_locked(ino);
  stats_.add("fstore.syncs");
  return Errc::kOk;
}

std::uint64_t FileStore::counter_fetch_add(const std::string& key,
                                           std::uint64_t delta) {
  return counter_fetch_add_once(key, delta, 0, 0);
}

void FileStore::counter_set(const std::string& key, std::uint64_t value) {
  std::lock_guard lock(counters_mu_);
  counters_[key] = value;
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(value);
    w.str(key);
    jlog_.append(RecType::kCounterSet, w.out());
  }
}

std::uint64_t FileStore::counter_fetch_add_once(const std::string& key,
                                                std::uint64_t delta,
                                                std::uint64_t client_id,
                                                std::uint32_t seq) {
  std::lock_guard lock(counters_mu_);
  const bool filtered = client_id != 0 && seq != 0;
  if (filtered) {
    auto it = dup_.find(DupKey{client_id, seq});
    if (it != dup_.end()) {
      stats_.add("fstore.dup_filter_hits");
      return it->second;
    }
  }
  const std::uint64_t old = counters_[key];
  counters_[key] = old + delta;
  if (filtered) dup_.emplace(DupKey{client_id, seq}, old);
  // Counter mutations — and their dup-filter records — are synchronously
  // journaled, which is what makes them exactly-once across crash-restart
  // *and* across a failover to the standby the record was shipped to.
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(delta);
    w.u64(client_id);
    w.u32(seq);
    w.u64(old);
    w.str(key);
    jlog_.append(RecType::kCounterAdd, w.out());
  }
  return old;
}

void FileStore::dup_forget(std::uint64_t client_id, std::uint32_t upto_seq) {
  std::lock_guard lock(counters_mu_);
  std::erase_if(dup_, [&](const auto& kv) {
    return kv.first.client_id == client_id && kv.first.seq <= upto_seq;
  });
  if (opt_.journal_enabled) {
    RecWriter w;
    w.u64(client_id);
    w.u32(upto_seq);
    jlog_.append(RecType::kDupForget, w.out());
  }
}

}  // namespace fstore
