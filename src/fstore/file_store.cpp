#include "fstore/file_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault.hpp"

namespace fstore {

using sim::Actor;
using sim::CostKind;

FileStore::FileStore(Options opt,
                     std::function<void(std::span<std::byte>)> on_new_slab)
    : opt_(opt), on_new_slab_(std::move(on_new_slab)) {
  Inode root;
  root.attrs.ino = kRootIno;
  root.attrs.is_dir = true;
  root.attrs.nlink = 2;
  inodes_.emplace(kRootIno, std::move(root));
}

std::uint64_t FileStore::now() const {
  Actor* actor = Actor::current();
  return actor ? actor->now() : 0;
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

FileStore::Inode* FileStore::find_locked(Ino ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

const FileStore::Inode* FileStore::find_locked(Ino ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

std::byte* FileStore::chunk_for_locked(Inode& node, std::uint64_t chunk_idx,
                                       bool allocate) {
  auto it = node.chunks.find(chunk_idx);
  if (it != node.chunks.end()) return it->second;
  if (!allocate) return nullptr;
  if (free_chunks_.empty()) {
    const std::size_t slab_bytes = opt_.chunk_size * opt_.chunks_per_slab;
    slabs_.push_back(std::make_unique<std::byte[]>(slab_bytes));
    std::byte* base = slabs_.back().get();
    std::memset(base, 0, slab_bytes);
    if (on_new_slab_) on_new_slab_(std::span<std::byte>(base, slab_bytes));
    for (std::size_t i = 0; i < opt_.chunks_per_slab; ++i) {
      free_chunks_.push_back(base + i * opt_.chunk_size);
    }
    stats_.add("fstore.slabs");
  }
  std::byte* chunk = free_chunks_.back();
  free_chunks_.pop_back();
  std::memset(chunk, 0, opt_.chunk_size);
  node.chunks.emplace(chunk_idx, chunk);
  stats_.add("fstore.chunks_allocated");
  return chunk;
}

void FileStore::free_file_data_locked(Inode& node) {
  for (auto& [idx, ptr] : node.chunks) free_chunks_.push_back(ptr);
  node.chunks.clear();
}

void FileStore::touch_cache_locked(Ino ino, std::uint64_t chunk_idx) {
  if (!opt_.disk_enabled) return;
  const CacheKey key{ino, chunk_idx};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.add("fstore.cache_hits");
    return;
  }
  // Miss: charge disk service for one chunk, evict if over capacity.
  stats_.add("fstore.cache_misses");
  if (Actor* actor = Actor::current()) {
    const auto xfer = static_cast<sim::Time>(
        static_cast<double>(opt_.chunk_size) * 1'000.0 / opt_.disk_mbps);
    actor->advance(opt_.disk_latency_ns + xfer);  // I/O wait, not CPU
  }
  lru_.push_front(key);
  cache_.emplace(key, lru_.begin());
  while (cache_.size() > opt_.cache_chunks) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    stats_.add("fstore.cache_evictions");
  }
}

// ---------------------------------------------------------------------------
// Namespace
// ---------------------------------------------------------------------------

Result<Ino> FileStore::lookup(Ino dir, std::string_view name) const {
  std::lock_guard lock(mu_);
  const Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return Errc::kNoEnt;
  return it->second;
}

Result<Ino> FileStore::resolve(std::string_view path) const {
  Ino cur = kRootIno;
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    if (pos >= path.size()) break;
    std::size_t end = path.find('/', pos);
    if (end == std::string_view::npos) end = path.size();
    auto r = lookup(cur, path.substr(pos, end - pos));
    if (!r.ok()) return r.error();
    cur = r.value();
    pos = end;
  }
  return cur;
}

Result<Ino> FileStore::insert_child_locked(Ino dir, std::string_view name,
                                           bool exclusive, bool is_dir) {
  Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  if (name.empty() || name.find('/') != std::string_view::npos) {
    return Errc::kInval;
  }
  auto it = d->entries.find(std::string(name));
  if (it != d->entries.end()) {
    if (exclusive) return Errc::kExists;
    const Inode* existing = find_locked(it->second);
    if (existing != nullptr && existing->attrs.is_dir != is_dir) {
      return is_dir ? Errc::kNotDir : Errc::kIsDir;
    }
    return it->second;
  }
  const Ino ino = next_ino_++;
  Inode node;
  node.attrs.ino = ino;
  node.attrs.is_dir = is_dir;
  node.attrs.nlink = is_dir ? 2 : 1;
  node.attrs.mtime = now();
  inodes_.emplace(ino, std::move(node));
  d->entries.emplace(std::string(name), ino);
  d->attrs.mtime = now();
  return ino;
}

Result<Ino> FileStore::create(Ino dir, std::string_view name, bool exclusive) {
  std::lock_guard lock(mu_);
  auto r = insert_child_locked(dir, name, exclusive, /*is_dir=*/false);
  if (r.ok()) stats_.add("fstore.creates");
  return r;
}

Result<Ino> FileStore::mkdir(Ino dir, std::string_view name) {
  std::lock_guard lock(mu_);
  return insert_child_locked(dir, name, /*exclusive=*/true, /*is_dir=*/true);
}

Errc FileStore::remove(Ino dir, std::string_view name) {
  std::lock_guard lock(mu_);
  Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return Errc::kNoEnt;
  Inode* child = find_locked(it->second);
  if (child != nullptr) {
    if (child->attrs.is_dir) return Errc::kIsDir;
    free_file_data_locked(*child);
    inodes_.erase(it->second);
  }
  d->entries.erase(it);
  d->attrs.mtime = now();
  stats_.add("fstore.removes");
  return Errc::kOk;
}

Errc FileStore::rmdir(Ino dir, std::string_view name) {
  std::lock_guard lock(mu_);
  Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return Errc::kNoEnt;
  Inode* child = find_locked(it->second);
  if (child == nullptr) return Errc::kStale;
  if (!child->attrs.is_dir) return Errc::kNotDir;
  if (!child->entries.empty()) return Errc::kNotEmpty;
  inodes_.erase(it->second);
  d->entries.erase(it);
  d->attrs.mtime = now();
  return Errc::kOk;
}

Errc FileStore::rename(Ino from_dir, std::string_view from, Ino to_dir,
                       std::string_view to) {
  std::lock_guard lock(mu_);
  Inode* fd = find_locked(from_dir);
  Inode* td = find_locked(to_dir);
  if (fd == nullptr || td == nullptr) return Errc::kStale;
  if (!fd->attrs.is_dir || !td->attrs.is_dir) return Errc::kNotDir;
  auto it = fd->entries.find(std::string(from));
  if (it == fd->entries.end()) return Errc::kNoEnt;
  if (to.empty() || to.find('/') != std::string_view::npos) return Errc::kInval;
  const Ino moved = it->second;
  // Replace any existing target (file only).
  auto tgt = td->entries.find(std::string(to));
  if (tgt != td->entries.end()) {
    Inode* existing = find_locked(tgt->second);
    if (existing != nullptr && existing->attrs.is_dir) return Errc::kIsDir;
    if (existing != nullptr) {
      free_file_data_locked(*existing);
      inodes_.erase(tgt->second);
    }
    td->entries.erase(tgt);
  }
  fd->entries.erase(it);
  td->entries.emplace(std::string(to), moved);
  fd->attrs.mtime = now();
  td->attrs.mtime = now();
  return Errc::kOk;
}

Result<std::vector<DirEntry>> FileStore::readdir(Ino dir) const {
  std::lock_guard lock(mu_);
  const Inode* d = find_locked(dir);
  if (d == nullptr) return Errc::kStale;
  if (!d->attrs.is_dir) return Errc::kNotDir;
  std::vector<DirEntry> out;
  out.reserve(d->entries.size());
  for (const auto& [name, ino] : d->entries) {
    const Inode* child = find_locked(ino);
    out.push_back(DirEntry{name, ino, child != nullptr && child->attrs.is_dir});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Attributes
// ---------------------------------------------------------------------------

Result<Attrs> FileStore::getattr(Ino ino) const {
  std::lock_guard lock(mu_);
  const Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  return n->attrs;
}

Errc FileStore::set_size(Ino ino, std::uint64_t size) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  if (size < n->attrs.size) {
    // Drop whole chunks past the new EOF and zero the tail of the last one.
    const std::uint64_t first_dead = (size + opt_.chunk_size - 1) / opt_.chunk_size;
    for (auto it = n->chunks.lower_bound(first_dead); it != n->chunks.end();) {
      free_chunks_.push_back(it->second);
      it = n->chunks.erase(it);
    }
    if (size % opt_.chunk_size != 0) {
      auto it = n->chunks.find(size / opt_.chunk_size);
      if (it != n->chunks.end()) {
        std::memset(it->second + size % opt_.chunk_size, 0,
                    opt_.chunk_size - size % opt_.chunk_size);
      }
    }
  }
  n->attrs.size = size;
  n->attrs.mtime = now();
  return Errc::kOk;
}

// ---------------------------------------------------------------------------
// Data
// ---------------------------------------------------------------------------

Result<std::uint64_t> FileStore::pread(Ino ino, std::uint64_t off,
                                       std::span<std::byte> out) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  if (off >= n->attrs.size) return std::uint64_t{0};
  std::uint64_t len =
      std::min<std::uint64_t>(out.size(), n->attrs.size - off);
  if (opt_.faults != nullptr && opt_.faults->on_fstore_read(&len)) {
    stats_.add("fault.fstore_read_errors");
    return Errc::kIo;
  }

  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    const std::byte* chunk =
        chunk_for_locked(*n, ci, /*allocate=*/false);
    if (chunk == nullptr) {
      std::memset(out.data() + done, 0, n_here);  // hole reads as zeros
    } else {
      std::memcpy(out.data() + done, chunk + co, n_here);
    }
    done += n_here;
  }
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kCopy,
                  static_cast<sim::Time>(static_cast<double>(len) * 1'000.0 /
                                         opt_.memcpy_mbps));
  }
  stats_.add("fstore.pread_bytes", len);
  return len;
}

Result<std::uint64_t> FileStore::pwrite(Ino ino, std::uint64_t off,
                                        std::span<const std::byte> in) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;

  std::uint64_t done = 0;
  while (done < in.size()) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here =
        std::min<std::uint64_t>(in.size() - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/true);
    std::memcpy(chunk + co, in.data() + done, n_here);
    done += n_here;
  }
  n->attrs.size = std::max(n->attrs.size, off + in.size());
  n->attrs.mtime = now();
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kCopy,
                  static_cast<sim::Time>(static_cast<double>(in.size()) *
                                         1'000.0 / opt_.memcpy_mbps));
  }
  stats_.add("fstore.pwrite_bytes", in.size());
  return std::uint64_t{in.size()};
}

Result<std::vector<std::span<std::byte>>> FileStore::extents_for_read(
    Ino ino, std::uint64_t off, std::uint64_t len) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  std::vector<std::span<std::byte>> out;
  if (off >= n->attrs.size) return out;
  len = std::min(len, n->attrs.size - off);
  // Zero-copy reads cannot be short (the spans *are* the cache), so only the
  // hard-failure half of the fault plan applies here.
  if (opt_.faults != nullptr && opt_.faults->on_fstore_read(nullptr)) {
    stats_.add("fault.fstore_read_errors");
    return Errc::kIo;
  }
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    // DMA source must be materialized even for holes.
    std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/true);
    out.emplace_back(chunk + co, n_here);
    done += n_here;
  }
  return out;
}

Result<std::vector<std::span<std::byte>>> FileStore::ensure_extents(
    Ino ino, std::uint64_t off, std::uint64_t len) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  std::vector<std::span<std::byte>> out;
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = off + done;
    const std::uint64_t ci = pos / opt_.chunk_size;
    const std::uint64_t co = pos % opt_.chunk_size;
    const std::uint64_t n_here = std::min(len - done, opt_.chunk_size - co);
    touch_cache_locked(ino, ci);
    std::byte* chunk = chunk_for_locked(*n, ci, /*allocate=*/true);
    out.emplace_back(chunk + co, n_here);
    done += n_here;
  }
  return out;
}

Errc FileStore::commit_write(Ino ino, std::uint64_t off, std::uint64_t len) {
  std::lock_guard lock(mu_);
  Inode* n = find_locked(ino);
  if (n == nullptr) return Errc::kStale;
  if (n->attrs.is_dir) return Errc::kIsDir;
  n->attrs.size = std::max(n->attrs.size, off + len);
  n->attrs.mtime = now();
  return Errc::kOk;
}

Errc FileStore::sync(Ino ino) {
  std::lock_guard lock(mu_);
  if (find_locked(ino) == nullptr) return Errc::kStale;
  stats_.add("fstore.syncs");
  return Errc::kOk;
}

std::uint64_t FileStore::counter_fetch_add(const std::string& key,
                                           std::uint64_t delta) {
  std::lock_guard lock(counters_mu_);
  const std::uint64_t old = counters_[key];
  counters_[key] = old + delta;
  return old;
}

void FileStore::counter_set(const std::string& key, std::uint64_t value) {
  std::lock_guard lock(counters_mu_);
  counters_[key] = value;
}

}  // namespace fstore
