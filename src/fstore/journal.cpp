#include "fstore/journal.hpp"

#include <algorithm>
#include <array>

namespace fstore {

namespace {

std::array<std::uint32_t, 256> make_crc_table(std::uint32_t poly) {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? poly ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table =
      make_crc_table(0xEDB88320u);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table =
      make_crc_table(0x82F63B78u);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t FStoreJournal::valid_prefix(std::span<const std::byte> log,
                                          std::size_t* records) {
  std::size_t pos = 0;
  std::size_t count = 0;
  while (log.size() - pos >= sizeof(RecHeader)) {
    RecHeader h;
    std::memcpy(&h, log.data() + pos, sizeof(h));
    if (h.magic != kRecMagic) break;
    if (log.size() - pos - sizeof(RecHeader) < h.len) break;  // torn tail
    const auto payload = log.subspan(pos + sizeof(RecHeader), h.len);
    if (crc32(payload) != h.crc) break;  // bit rot / partial overwrite
    pos += sizeof(RecHeader) + h.len;
    ++count;
  }
  if (records != nullptr) *records = count;
  return pos;
}

bool FStoreJournal::has_valid_record(std::span<const std::byte> tail) {
  // Scan every byte offset for a complete, CRC-clean frame. A torn write
  // leaves only the interrupted suffix (no full frame can follow the break),
  // so finding one proves the damage sits *inside* otherwise-intact storage.
  for (std::size_t pos = 0; pos + sizeof(RecHeader) <= tail.size(); ++pos) {
    RecHeader h;
    std::memcpy(&h, tail.data() + pos, sizeof(h));
    if (h.magic != kRecMagic) continue;
    if (tail.size() - pos - sizeof(RecHeader) < h.len) continue;
    if (crc32(tail.subspan(pos + sizeof(RecHeader), h.len)) == h.crc) {
      return true;
    }
  }
  return false;
}

std::uint64_t FStoreJournal::append(RecType type,
                                    std::span<const std::byte> payload) {
  RecHeader h;
  h.magic = kRecMagic;
  h.len = static_cast<std::uint32_t>(payload.size());
  h.crc = crc32(payload);
  h.type = static_cast<std::uint8_t>(type);
  std::lock_guard lock(mu_);
  const auto* hb = reinterpret_cast<const std::byte*>(&h);
  log_.insert(log_.end(), hb, hb + sizeof(h));
  log_.insert(log_.end(), payload.begin(), payload.end());
  return log_.size();
}

std::uint64_t FStoreJournal::size() const {
  std::lock_guard lock(mu_);
  return log_.size();
}

std::vector<std::byte> FStoreJournal::read(std::uint64_t from,
                                           std::size_t max_bytes) const {
  std::lock_guard lock(mu_);
  std::vector<std::byte> out;
  if (from >= log_.size()) return out;
  std::size_t pos = from;
  while (log_.size() - pos >= sizeof(RecHeader)) {
    RecHeader h;
    std::memcpy(&h, log_.data() + pos, sizeof(h));
    if (h.magic != kRecMagic) break;  // caller's offset was not a boundary
    const std::size_t rec = sizeof(RecHeader) + h.len;
    if (log_.size() - pos < rec) break;
    // Stop before exceeding the budget — unless this is the first record,
    // which is returned whole so an oversized record cannot wedge a reader
    // that pages through the log in max_bytes steps.
    if (pos != from && (pos + rec) - from > max_bytes) break;
    pos += rec;
    if (pos - from >= max_bytes) break;
  }
  out.assign(log_.begin() + static_cast<std::ptrdiff_t>(from),
             log_.begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

FStoreJournal::ImportResult FStoreJournal::import(
    std::span<const std::byte> stream) {
  ImportResult res;
  res.accepted = valid_prefix(stream, nullptr);
  res.truncated = res.accepted < stream.size();
  if (res.accepted > 0) {
    std::lock_guard lock(mu_);
    log_.insert(log_.end(), stream.begin(),
                stream.begin() + static_cast<std::ptrdiff_t>(res.accepted));
  }
  return res;
}

FStoreJournal::ReplayResult FStoreJournal::replay(
    const std::function<void(RecType, std::span<const std::byte>)>& fn) {
  std::lock_guard lock(mu_);
  ReplayResult res;
  const std::uint64_t good = valid_prefix(log_, nullptr);
  if (good < log_.size()) {
    if (has_valid_record(std::span<const std::byte>(log_).subspan(
            good + 1))) {
      // Interior corruption: valid records live past the bad frame, so this
      // is bit rot, not a torn final write. Truncating would silently erase
      // a legal journal suffix — keep the log intact (evidence included)
      // and let the caller refuse the mount.
      res.interior_corrupt = true;
      res.corrupt_offset = good;
    } else {
      res.torn_bytes = log_.size() - good;
      log_.resize(good);
    }
  }
  std::size_t pos = 0;
  while (pos < good) {
    RecHeader h;
    std::memcpy(&h, log_.data() + pos, sizeof(h));
    fn(static_cast<RecType>(h.type),
       std::span<const std::byte>(log_).subspan(pos + sizeof(RecHeader),
                                                h.len));
    pos += sizeof(RecHeader) + h.len;
  }
  return res;
}

void FStoreJournal::scan(
    const std::function<void(std::uint64_t, RecType,
                             std::span<const std::byte>)>& fn) const {
  std::lock_guard lock(mu_);
  const std::uint64_t good = valid_prefix(log_, nullptr);
  std::size_t pos = 0;
  while (pos < good) {
    RecHeader h;
    std::memcpy(&h, log_.data() + pos, sizeof(h));
    fn(pos, static_cast<RecType>(h.type),
       std::span<const std::byte>(log_).subspan(pos + sizeof(RecHeader),
                                                h.len));
    pos += sizeof(RecHeader) + h.len;
  }
}

std::uint64_t FStoreJournal::truncate(std::uint64_t size) {
  std::lock_guard lock(mu_);
  if (size >= log_.size()) return 0;
  const std::uint64_t dropped = log_.size() - size;
  log_.resize(size);
  return dropped;
}

void FStoreJournal::corrupt_tail_byte() {
  std::lock_guard lock(mu_);
  if (log_.empty()) return;
  log_.back() ^= std::byte{0x01};
}

void FStoreJournal::corrupt_byte_at(std::uint64_t off) {
  std::lock_guard lock(mu_);
  if (off >= log_.size()) return;
  log_[off] ^= std::byte{0x01};
}

void FStoreJournal::chop_tail(std::uint64_t n) {
  std::lock_guard lock(mu_);
  log_.resize(log_.size() - std::min<std::uint64_t>(n, log_.size()));
}

void FStoreJournal::reset() {
  std::lock_guard lock(mu_);
  log_.clear();
}

}  // namespace fstore
