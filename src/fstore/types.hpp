#pragma once

#include <cstdint>
#include <string>

namespace fstore {

/// Inode number. 0 is invalid; the root directory is always 1.
using Ino = std::uint64_t;
inline constexpr Ino kInvalidIno = 0;
inline constexpr Ino kRootIno = 1;

/// File-system error codes (POSIX-flavoured subset).
enum class Errc : std::uint8_t {
  kOk = 0,
  kNoEnt,      // no such file or directory
  kExists,     // create-exclusive on an existing name
  kIsDir,      // data op on a directory
  kNotDir,     // path component is not a directory
  kNotEmpty,   // rmdir of a non-empty directory
  kInval,      // bad argument
  kStale,      // inode number no longer valid
  kIo,         // media/backend read failure (fault-injected)
  kCorrupt,    // checksum mismatch: at-rest block or journal interior record
};

constexpr const char* to_string(Errc e) {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kNoEnt: return "no-entry";
    case Errc::kExists: return "exists";
    case Errc::kIsDir: return "is-directory";
    case Errc::kNotDir: return "not-directory";
    case Errc::kNotEmpty: return "not-empty";
    case Errc::kInval: return "invalid";
    case Errc::kStale: return "stale";
    case Errc::kIo: return "io-error";
    case Errc::kCorrupt: return "corrupt";
  }
  return "?";
}

/// File attributes (DAFS/NFS GETATTR payload).
struct Attrs {
  Ino ino = kInvalidIno;
  bool is_dir = false;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;  // virtual-time stamp
  std::uint32_t nlink = 0;
  /// Generation number: monotone per created inode, never reused. An
  /// (ino, gen) pair names one incarnation of a file — a client re-opening a
  /// path after a server restart compares gen to detect that "the same name"
  /// is now a different file (removed and recreated), i.e. its handle is
  /// stale in the NFS sense.
  std::uint64_t gen = 0;
};

/// One directory entry.
struct DirEntry {
  std::string name;
  Ino ino = kInvalidIno;
  bool is_dir = false;
};

}  // namespace fstore
