#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fstore {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte span. Table-driven;
/// the table is built once on first use.
std::uint32_t crc32(std::span<const std::byte> data);

/// CRC-32C (Castagnoli polynomial, reflected) — the block/wire checksum of
/// the integrity layer (at-rest chunk checksums, DAFS payload checksums).
/// Kept distinct from the journal's CRC-32 so a framed journal record can
/// never masquerade as a verified data block. `seed` chains incremental
/// computations: pass the previous call's return value to extend a running
/// checksum over a scatter/gather byte stream.
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

/// Record types in the store's write-ahead log. The log *is* the durable
/// image: local crash-restart replays it from offset 0, and the replication
/// channel ships its raw bytes to a standby filer which imports them
/// verbatim, so both ends apply exactly the same record stream.
enum class RecType : std::uint8_t {
  kCreate = 1,   // dir, ino, gen, mtime, is_dir, name
  kRemove,       // dir, name (also the rmdir form)
  kRename,       // from_dir, to_dir, from, to (replaces a file target)
  kSetSize,      // ino, size, mtime
  kSyncCommit,   // ino, size, mtime, n x (off, bytes): one sync, atomically
  kCounterSet,   // value, key
  kCounterAdd,   // delta, client_id, seq, old, key (dup-filter record)
  kDupForget,    // client_id, upto_seq
  kServerState,  // next_session, epoch — opaque to the store, read by the
                 // DAFS server so a promoted standby mints session ids past
                 // the primary's watermark
  kTermMark,     // term — opaque to the store; a quorum leader appends one on
                 // election so the byte log carries term boundaries and a
                 // follower can locate/truncate a divergent suffix
};

/// Frame prefixed to every record. `crc` covers the payload only, so a torn
/// or bit-flipped tail is detected record-by-record and replay truncates the
/// log back to the last fully-valid frame instead of applying garbage.
struct RecHeader {
  std::uint32_t magic = 0;
  std::uint32_t len = 0;  // payload bytes following this header
  std::uint32_t crc = 0;  // CRC-32 of the payload
  std::uint8_t type = 0;
  std::uint8_t pad[3] = {};
};
static_assert(sizeof(RecHeader) == 16);

inline constexpr std::uint32_t kRecMagic = 0x4653'4A31;  // "FSJ1"

/// Upper bound on the data bytes one kSyncCommit record carries. The
/// replication layers (pair shipping and quorum catch-up) move raw record
/// frames through fixed 256 KiB message buffers and must ship every record
/// whole, so a sync that folds more than this is journalled as several
/// consecutive records rather than one unbounded batch.
inline constexpr std::size_t kSyncRecDataCap = 128 * 1024;

/// Append-only payload builder for journal records (native-endian PODs,
/// length-prefixed strings/blobs; the log never leaves the process except
/// over the in-process simulated fabric).
class RecWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::byte> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }
  std::span<const std::byte> out() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

/// Cursor over a record payload. Out-of-bounds reads poison the reader
/// (`ok()` goes false) and return zero values; the CRC makes this a
/// should-never-happen belt-and-braces check, not the torn-tail detector.
class RecReader {
 public:
  explicit RecReader(std::span<const std::byte> in) : in_(in) {}

  std::uint8_t u8() { return pod<std::uint8_t>(); }
  std::uint32_t u32() { return pod<std::uint32_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_ - n), n);
    return s;
  }
  std::span<const std::byte> bytes() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return in_.subspan(pos_ - n, n);
  }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  T pod() {
    if (!take(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, in_.data() + pos_ - sizeof(T), sizeof(T));
    return v;
  }
  bool take(std::size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// The store's write-ahead record log: a flat byte stream of CRC-framed
/// records. One instance per FileStore; appends come from the store's
/// mutation paths (and the DAFS server's session-watermark records), reads
/// from the replication sender, imports from the replication receiver, and
/// replay from crash-restart. All entry points are internally locked so the
/// sender thread can stream while workers append.
class FStoreJournal {
 public:
  /// Frame `payload` as one record and append it. Returns the log size after
  /// the append (the record's end offset — the value replication acks).
  std::uint64_t append(RecType type, std::span<const std::byte> payload);

  /// Current log size in bytes.
  std::uint64_t size() const;

  /// Copy out whole records starting at byte offset `from` (which must be a
  /// record boundary — `0`, a previous append's return, or an ack). At most
  /// `max_bytes`, but always at least one record when any remain, so a
  /// single oversized record still makes progress through a bounded pipe.
  std::vector<std::byte> read(std::uint64_t from, std::size_t max_bytes) const;

  struct ImportResult {
    std::uint64_t accepted = 0;  // bytes appended (whole valid records)
    bool truncated = false;      // stream had a torn/corrupt tail we dropped
  };
  /// Validate `stream` frame-by-frame (magic, bounds, CRC) and append the
  /// longest valid prefix — the standby-side half of torn-tail truncation.
  ImportResult import(std::span<const std::byte> stream);

  struct ReplayResult {
    std::uint64_t torn_bytes = 0;      // tail bytes truncated off the log
    bool interior_corrupt = false;     // a bad frame had valid records after it
    std::uint64_t corrupt_offset = 0;  // offset of the bad frame when interior
  };
  /// Iterate every valid record in order. A *torn tail* — an invalid frame
  /// with no valid record anywhere after it, i.e. an interrupted final write
  /// — is truncated off the log in place and counted in `torn_bytes`; that
  /// is the legal crash form. A bad frame *followed by* at least one valid
  /// record is interior corruption (bit rot inside stable storage): replay
  /// refuses to truncate — truncating would silently erase the valid suffix
  /// — applies only the records before the bad frame, and surfaces the bad
  /// frame's offset so the mount can be refused / the store marked kCorrupt.
  /// `fn` runs under the journal lock and must not call back into the log.
  ReplayResult replay(
      const std::function<void(RecType, std::span<const std::byte>)>& fn);

  /// Iterate every valid record with its start offset, without mutating the
  /// log (a torn tail is skipped, not truncated). Used to rebuild term-run
  /// tables from kTermMark records. Same locking contract as replay().
  void scan(const std::function<void(std::uint64_t, RecType,
                                     std::span<const std::byte>)>& fn) const;

  /// Discard every byte at or past `size` — the divergent-suffix half of
  /// quorum re-silvering (a rejoining follower cuts back to the leader's
  /// matching offset before catching up). Returns the bytes dropped; a
  /// `size` at or past the current end is a no-op.
  std::uint64_t truncate(std::uint64_t size);

  /// Test hook: flip one byte in the last record's payload, simulating a
  /// torn/corrupted tail on stable storage.
  void corrupt_tail_byte();
  /// Test hook: flip one byte at absolute log offset `off`, simulating bit
  /// rot *inside* the record stream (interior corruption when valid records
  /// follow the damaged frame).
  void corrupt_byte_at(std::uint64_t off);
  /// Test hook: chop `n` bytes off the end of the log, simulating a write
  /// torn mid-record by a power cut.
  void chop_tail(std::uint64_t n);

  void reset();

 private:
  /// Byte length of the valid record prefix of `log` (frames parse, CRCs
  /// match); sets `*records` to the count when non-null.
  static std::uint64_t valid_prefix(std::span<const std::byte> log,
                                    std::size_t* records);
  /// True when a complete valid record exists anywhere in `tail` — the
  /// torn-vs-interior discriminator: a torn write leaves only garbage after
  /// the break, while bit rot leaves the undamaged suffix intact.
  static bool has_valid_record(std::span<const std::byte> tail);

  mutable std::mutex mu_;
  std::vector<std::byte> log_;
};

}  // namespace fstore
