#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <string>

#include "sim/node.hpp"
#include "sim/time.hpp"

namespace sim {

/// Category a CPU charge is attributed to. The breakdowns feed the paper's
/// CPU-overhead tables (E5) and the latency-breakdown table (E8).
enum class CostKind : std::size_t {
  kProtocol,      // user-level protocol work (header build/parse, matching)
  kCopy,          // data memcpy
  kKernel,        // syscall + kernel stack processing
  kInterrupt,     // device interrupt handling
  kRegistration,  // memory registration / deregistration
  kDispatch,      // server request dispatch + fs layer
  kCount,
};

constexpr const char* to_string(CostKind k) {
  switch (k) {
    case CostKind::kProtocol: return "protocol";
    case CostKind::kCopy: return "copy";
    case CostKind::kKernel: return "kernel";
    case CostKind::kInterrupt: return "interrupt";
    case CostKind::kRegistration: return "registration";
    case CostKind::kDispatch: return "dispatch";
    default: return "?";
  }
}

/// Per-actor CPU time by category.
struct BusyBreakdown {
  std::array<Time, static_cast<std::size_t>(CostKind::kCount)> by_kind{};

  Time total() const {
    Time t = 0;
    for (Time v : by_kind) t += v;
    return t;
  }
  Time operator[](CostKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
};

/// An Actor is a logical execution context (one MPI rank, one server worker)
/// bound to a Node. It owns a virtual clock; CPU charges occupy the node's
/// CPU resource so that co-located actors contend, and are attributed to a
/// CostKind for the overhead tables.
///
/// The current thread's actor is tracked thread-locally (see ActorScope) so
/// that the VIA/DAFS/MPI layers can keep hardware-shaped APIs without an
/// explicit time parameter on every call.
class Actor {
 public:
  Actor(std::string name, Node* node) : name_(std::move(name)), node_(node) {
    assert(node_ != nullptr);
  }

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const { return name_; }
  Node& node() const { return *node_; }

  Time now() const { return now_.load(std::memory_order_relaxed); }

  /// Move the clock forward to `t` if it is in this actor's future
  /// (synchronizing with an arriving message or completion).
  void sync_to(Time t) {
    Time cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

  /// Pure waiting: advances the clock without consuming CPU.
  void advance(Time d) { now_.fetch_add(d, std::memory_order_relaxed); }

  /// Consume `d` of CPU attributed to `k`. The charge serializes through the
  /// node's CPU resource, so concurrent actors on one node push each other
  /// out (server CPU saturation). Returns the new local time.
  Time charge(CostKind k, Time d) {
    const Time done = node_->cpu.occupy(now(), d);
    busy_.by_kind[static_cast<std::size_t>(k)] += d;
    sync_to(done);
    return done;
  }

  const BusyBreakdown& busy() const { return busy_; }
  void reset_busy() { busy_ = BusyBreakdown{}; }

  /// Thread-local current actor (set by ActorScope). Never null inside
  /// library code paths that charge time; asserted where required.
  static Actor* current();

 private:
  friend class ActorScope;
  std::string name_;
  Node* node_;
  std::atomic<Time> now_{0};
  BusyBreakdown busy_;
};

/// RAII binder: makes `actor` the current actor on this thread for the scope
/// lifetime. Nestable (restores the previous binding).
class ActorScope {
 public:
  explicit ActorScope(Actor& actor);
  ~ActorScope();

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  Actor* prev_;
};

}  // namespace sim
