#pragma once

#include <cstdint>

namespace sim {

/// SplitMix64: tiny deterministic generator for property tests and workload
/// generation. Not for cryptography; chosen for reproducibility across
/// platforms (no <random> distribution variance).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  double unit() {  // [0,1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace sim
