#include "sim/fabric.hpp"

#include <cassert>

namespace sim {

Fabric::Fabric(CostModel cm) : cost_(cm) { trace_.configure_from_env(); }

Fabric::~Fabric() { trace_.dump_final(); }

NodeId Fabric::add_node(const std::string& name) {
  std::lock_guard lock(nodes_mu_);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, name));
  return id;
}

Node& Fabric::node(NodeId id) {
  std::lock_guard lock(nodes_mu_);
  assert(id < nodes_.size());
  return *nodes_[id];
}

std::size_t Fabric::node_count() const {
  std::lock_guard lock(nodes_mu_);
  return nodes_.size();
}

Time Fabric::transfer(NodeId src, NodeId dst, std::uint64_t bytes, Time ready) {
  Node& s = node(src);
  Node& d = node(dst);
  const CostModel& cm = cost_;

  // Loopback: same node, no wire involved. Charge nothing here (callers
  // model the host-side copy); deliver "immediately".
  if (src == dst) return ready;

  Time arrival = ready;
  std::uint64_t remaining = bytes;
  Time inject = ready;
  do {
    const std::uint64_t pkt = std::min<std::uint64_t>(remaining, cm.mtu);
    const Time ser = cm.wire_time(pkt) + cm.per_packet;
    const Time tx_done = s.egress.occupy(inject, ser);
    // Cut-through: the receive segment sees the packet one propagation delay
    // after transmission started; it is busy for the same serialization time.
    const Time tx_start = tx_done - ser;
    arrival = d.ingress.occupy(tx_start + cm.propagation, ser);
    // Next packet can be injected as soon as the egress frees up.
    inject = tx_done;
    remaining -= pkt;
    stats_.add("fabric.packets");
  } while (remaining > 0);
  stats_.add("fabric.bytes", bytes);
  return arrival;
}

void Fabric::bind(const std::string& key, void* endpoint) {
  std::lock_guard lock(names_mu_);
  names_[key] = endpoint;
}

void Fabric::unbind(const std::string& key) {
  std::lock_guard lock(names_mu_);
  names_.erase(key);
}

void* Fabric::lookup(const std::string& key) const {
  std::lock_guard lock(names_mu_);
  auto it = names_.find(key);
  return it == names_.end() ? nullptr : it->second;
}

void Fabric::with_bound(const std::string& key,
                        const std::function<void(void*)>& fn) const {
  std::lock_guard lock(names_mu_);
  auto it = names_.find(key);
  fn(it == names_.end() ? nullptr : it->second);
}

}  // namespace sim
