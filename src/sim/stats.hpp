#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/metric_key.hpp"

namespace sim {

/// Named event counters (bytes copied, RDMA operations, kernel crossings,
/// packets on the wire, ...). Cheap enough for per-operation increments;
/// benchmarks snapshot/diff them to report the "why" behind the timings.
///
/// Counters are sharded per thread: `add` touches only the calling thread's
/// shard (own mutex, effectively uncontended; the lock exists so readers can
/// merge safely), so hot data-path increments from the client, server, and
/// NIC actors never serialize on one global lock. `get`/`snapshot` merge all
/// shards. `reset` clears shard contents in place, so cached shard pointers
/// stay valid across it.
class Stats {
 public:
  Stats();
  ~Stats();
  Stats(const Stats&) = delete;
  Stats& operator=(const Stats&) = delete;

  void add(const std::string& key, std::uint64_t v = 1) {
    assert(valid_metric_key(key) && "counter keys are dotted lowercase");
    Shard& s = shard_for_this_thread();
    std::lock_guard lock(s.mu);
    s.counters[key] += v;
  }

  std::uint64_t get(const std::string& key) const;

  std::map<std::string, std::uint64_t> snapshot() const;

  void reset();

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::uint64_t> counters;
  };

  Shard& shard_for_this_thread();

  /// Process-unique generation so a thread's cached shard pointer can never
  /// alias a different Stats instance reusing this object's address.
  std::uint64_t gen_;
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread::id> owners_;  // parallel to shards_
};

}  // namespace sim
