#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sim {

/// Named event counters (bytes copied, RDMA operations, kernel crossings,
/// packets on the wire, ...). Cheap enough for per-operation increments;
/// benchmarks snapshot/diff them to report the "why" behind the timings.
class Stats {
 public:
  void add(const std::string& key, std::uint64_t v = 1) {
    std::lock_guard lock(mu_);
    counters_[key] += v;
  }

  std::uint64_t get(const std::string& key) const {
    std::lock_guard lock(mu_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  std::map<std::string, std::uint64_t> snapshot() const {
    std::lock_guard lock(mu_);
    return counters_;
  }

  void reset() {
    std::lock_guard lock(mu_);
    counters_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace sim
