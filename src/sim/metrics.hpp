#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "sim/timeseries.hpp"

namespace sim {

class Stats;
class HistogramRegistry;

/// Escape a string for embedding inside a JSON string literal: `"`, `\` and
/// control characters become their escaped forms. Metric keys follow the
/// dotted-lowercase convention (sim/metric_key.hpp) and never need this, but
/// the exporter escapes every key anyway — one hostile or buggy key must
/// corrupt its own value, not the whole document.
std::string json_escape(std::string_view s);

/// One export surface for everything the stack measures: `Stats` counters,
/// `HistogramRegistry` distributions, and *gauges* — named callbacks sampled
/// at export time for point-in-time state that is not an accumulating count
/// (admission-queue depth, replay-cache bytes, live sessions, journal
/// length). Lives on the Fabric next to the sources it unifies; benches emit
/// its `to_json()` via `bench::emit_metrics_json` so every benchmark prints
/// the same schema:
///
///   {"bench":"<name>","params":{...},
///    "counters":{"<key>":N,...},
///    "gauges":{"<key>":N,...},
///    "histograms":{"<key>":{"count":..,"sum":..,"min":..,"max":..,
///                           "mean":..,"p50":..,"p95":..,"p99":..},...
///    [,"timeseries":{"interval_ns":..,"capacity":..,
///                    "series":{"<key>":{"t":[..],"v":[..]},...}}]}
///
/// Gauge owners must unregister before dying — prefer holding a `GaugeScope`
/// (below), which cannot forget. The registry copies the callback map under
/// its lock before sampling, so registration from one thread is safe against
/// export from another.
class MetricsRegistry {
 public:
  using GaugeFn = std::function<std::uint64_t()>;

  MetricsRegistry(const Stats& stats, const HistogramRegistry& hists)
      : stats_(stats), hists_(hists) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or replace) a gauge. The callback runs on the exporting
  /// thread and must stay valid until `unregister_gauge`.
  void register_gauge(const std::string& name, GaugeFn fn);
  void unregister_gauge(const std::string& name);

  /// Sample every registered gauge now.
  std::map<std::string, std::uint64_t> sample_gauges() const;

  /// Arm the time-series sampler (sim/timeseries.hpp). Call once, before
  /// any thread ticks — the pointer itself is not hot-swappable (the
  /// sampler's own state is internally locked). Re-enabling replaces the
  /// sampler and discards its rings.
  void enable_timeseries(TimeSeriesConfig cfg = {});
  void disable_timeseries();
  /// The armed sampler, or nullptr. Valid until disable/re-enable.
  TimeSeries* timeseries() const { return ts_.get(); }
  /// Forward `now` to the armed sampler; free no-op when disabled or inside
  /// the sampling interval, so hot loops can call this per operation.
  void tick(std::uint64_t now) {
    if (ts_) ts_->tick(now);
  }

  /// The unified single-line JSON document described above. `params_json`
  /// must be a complete JSON value (typically an object literal).
  std::string to_json(const std::string& bench,
                      const std::string& params_json = "{}") const;

 private:
  const Stats& stats_;
  const HistogramRegistry& hists_;
  mutable std::mutex mu_;
  std::map<std::string, GaugeFn> gauges_;
  std::unique_ptr<TimeSeries> ts_;
};

/// RAII gauge registration: registers in the constructor, unregisters in
/// the destructor. A gauge callback almost always captures `this` of its
/// owner, so a forgotten unregister is a use-after-free wired directly into
/// the export path — with chaos tests crashing and restarting servers, the
/// scope form is the only registration that cannot dangle. Move-only; a
/// moved-from scope owns nothing.
class GaugeScope {
 public:
  GaugeScope() = default;
  GaugeScope(MetricsRegistry& reg, std::string name,
             MetricsRegistry::GaugeFn fn)
      : reg_(&reg), name_(std::move(name)) {
    reg_->register_gauge(name_, std::move(fn));
  }
  ~GaugeScope() { reset(); }

  GaugeScope(GaugeScope&& o) noexcept
      : reg_(std::exchange(o.reg_, nullptr)), name_(std::move(o.name_)) {}
  GaugeScope& operator=(GaugeScope&& o) noexcept {
    if (this != &o) {
      reset();
      reg_ = std::exchange(o.reg_, nullptr);
      name_ = std::move(o.name_);
    }
    return *this;
  }
  GaugeScope(const GaugeScope&) = delete;
  GaugeScope& operator=(const GaugeScope&) = delete;

  /// Unregister now (idempotent).
  void reset() {
    if (reg_ != nullptr) {
      reg_->unregister_gauge(name_);
      reg_ = nullptr;
    }
  }

  const std::string& name() const { return name_; }
  bool armed() const { return reg_ != nullptr; }

 private:
  MetricsRegistry* reg_ = nullptr;
  std::string name_;
};

}  // namespace sim
