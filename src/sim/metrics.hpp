#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace sim {

class Stats;
class HistogramRegistry;

/// One export surface for everything the stack measures: `Stats` counters,
/// `HistogramRegistry` distributions, and *gauges* — named callbacks sampled
/// at export time for point-in-time state that is not an accumulating count
/// (admission-queue depth, replay-cache bytes, live sessions, journal
/// length). Lives on the Fabric next to the sources it unifies; benches emit
/// its `to_json()` via `bench::emit_metrics_json` so every benchmark prints
/// the same schema:
///
///   {"bench":"<name>","params":{...},
///    "counters":{"<key>":N,...},
///    "gauges":{"<key>":N,...},
///    "histograms":{"<key>":{"count":..,"sum":..,"min":..,"max":..,
///                           "mean":..,"p50":..,"p95":..,"p99":..},...}}
///
/// Gauge owners (e.g. dafs::Server) must unregister before dying; the
/// registry copies the callback map under its lock before sampling, so
/// registration from one thread is safe against export from another.
class MetricsRegistry {
 public:
  using GaugeFn = std::function<std::uint64_t()>;

  MetricsRegistry(const Stats& stats, const HistogramRegistry& hists)
      : stats_(stats), hists_(hists) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or replace) a gauge. The callback runs on the exporting
  /// thread and must stay valid until `unregister_gauge`.
  void register_gauge(const std::string& name, GaugeFn fn);
  void unregister_gauge(const std::string& name);

  /// Sample every registered gauge now.
  std::map<std::string, std::uint64_t> sample_gauges() const;

  /// The unified single-line JSON document described above. `params_json`
  /// must be a complete JSON value (typically an object literal).
  std::string to_json(const std::string& bench,
                      const std::string& params_json = "{}") const;

 private:
  const Stats& stats_;
  const HistogramRegistry& hists_;
  mutable std::mutex mu_;
  std::map<std::string, GaugeFn> gauges_;
};

}  // namespace sim
