#include "sim/fault.hpp"

#include <utility>

namespace sim {

void FaultPlan::arm(std::uint64_t seed) {
  std::lock_guard lock(mu_);
  rng_ = Rng(seed);
  drop_prob_ = dup_prob_ = delay_prob_ = 0.0;
  delay_ = 0;
  node_filter_ = kAnyNode;
  conn_filter_.clear();
  breaks_.clear();
  reg_failures_left_ = 0;
  fstore_read_failures_left_ = 0;
  short_read_prob_ = 0.0;
  corrupt_prob_ = 0.0;
  corrupt_transfers_left_ = 0;
  fstore_corrupt_armed_ = false;
  fstore_corrupt_skip_ = 0;
  crash_ = CrashRule{};
  crash_node_filter_ = kAnyNode;
  partitions_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FaultPlan::clear() {
  std::lock_guard lock(mu_);
  drop_prob_ = dup_prob_ = delay_prob_ = 0.0;
  delay_ = 0;
  breaks_.clear();
  reg_failures_left_ = 0;
  fstore_read_failures_left_ = 0;
  short_read_prob_ = 0.0;
  corrupt_prob_ = 0.0;
  corrupt_transfers_left_ = 0;
  fstore_corrupt_armed_ = false;
  fstore_corrupt_skip_ = 0;
  crash_ = CrashRule{};
  partitions_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FaultPlan::recompute_armed_locked() {
  const bool any = drop_prob_ > 0.0 || dup_prob_ > 0.0 || delay_prob_ > 0.0 ||
                   !breaks_.empty() || reg_failures_left_ > 0 ||
                   fstore_read_failures_left_ > 0 || short_read_prob_ > 0.0 ||
                   corrupt_prob_ > 0.0 || corrupt_transfers_left_ > 0 ||
                   fstore_corrupt_armed_ || crash_.armed ||
                   !partitions_.empty();
  armed_.store(any, std::memory_order_relaxed);
}

void FaultPlan::set_drop_prob(double p) {
  std::lock_guard lock(mu_);
  drop_prob_ = p;
  recompute_armed_locked();
}

void FaultPlan::set_duplicate_prob(double p) {
  std::lock_guard lock(mu_);
  dup_prob_ = p;
  recompute_armed_locked();
}

void FaultPlan::set_delay(double p, Time delay) {
  std::lock_guard lock(mu_);
  delay_prob_ = p;
  delay_ = delay;
  recompute_armed_locked();
}

void FaultPlan::restrict_to_node(NodeId node) {
  std::lock_guard lock(mu_);
  node_filter_ = node;
}

void FaultPlan::restrict_to_conn(std::string conn) {
  std::lock_guard lock(mu_);
  conn_filter_ = std::move(conn);
}

void FaultPlan::break_conn_after(std::string conn, std::uint64_t n,
                                 bool repeat) {
  std::lock_guard lock(mu_);
  breaks_[std::move(conn)] = BreakRule{n, 0, repeat, false};
  recompute_armed_locked();
}

void FaultPlan::fail_next_registrations(std::uint64_t n) {
  std::lock_guard lock(mu_);
  reg_failures_left_ = n;
  recompute_armed_locked();
}

void FaultPlan::crash_server_after_requests(std::uint64_t n,
                                            std::uint64_t restart_delay_ms) {
  std::lock_guard lock(mu_);
  crash_ = CrashRule{};
  crash_.armed = true;
  crash_.after_requests = n == 0 ? 1 : n;
  crash_.restart_delay_ms = restart_delay_ms;
  recompute_armed_locked();
}

void FaultPlan::crash_server_at(Time t, std::uint64_t restart_delay_ms) {
  std::lock_guard lock(mu_);
  crash_ = CrashRule{};
  crash_.armed = true;
  crash_.at_time = t;
  crash_.restart_delay_ms = restart_delay_ms;
  recompute_armed_locked();
}

void FaultPlan::restrict_crash_to_node(NodeId node) {
  std::lock_guard lock(mu_);
  crash_node_filter_ = node;
}

void FaultPlan::partition_nodes(NodeId a, NodeId b, std::uint64_t heal_after_ms) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  std::lock_guard lock(mu_);
  for (auto& p : partitions_) {
    if (p.a == a && p.b == b) {
      p.timed = heal_after_ms > 0;
      p.heal_at = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(heal_after_ms);
      return;
    }
  }
  Partition p;
  p.a = a;
  p.b = b;
  p.timed = heal_after_ms > 0;
  p.heal_at = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(heal_after_ms);
  partitions_.push_back(p);
  recompute_armed_locked();
}

void FaultPlan::heal_partition(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  std::lock_guard lock(mu_);
  std::erase_if(partitions_,
                [&](const Partition& p) { return p.a == a && p.b == b; });
  recompute_armed_locked();
}

void FaultPlan::heal_all_partitions() {
  std::lock_guard lock(mu_);
  partitions_.clear();
  recompute_armed_locked();
}

bool FaultPlan::partitioned_locked(NodeId a, NodeId b) {
  if (partitions_.empty()) return false;
  if (a > b) std::swap(a, b);
  // Lazily retire partitions whose heal deadline (real time, like server
  // restart delays) has passed.
  const auto now = std::chrono::steady_clock::now();
  const std::size_t before = partitions_.size();
  std::erase_if(partitions_,
                [&](const Partition& p) { return p.timed && now >= p.heal_at; });
  if (partitions_.size() != before) recompute_armed_locked();
  for (const Partition& p : partitions_) {
    if (p.a == a && p.b == b) return true;
  }
  return false;
}

bool FaultPlan::partitioned(NodeId a, NodeId b) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  return partitioned_locked(a, b);
}

void FaultPlan::fail_next_fstore_reads(std::uint64_t n) {
  std::lock_guard lock(mu_);
  fstore_read_failures_left_ = n;
  recompute_armed_locked();
}

void FaultPlan::set_short_read_prob(double p) {
  std::lock_guard lock(mu_);
  short_read_prob_ = p;
  recompute_armed_locked();
}

void FaultPlan::set_corrupt_prob(double p) {
  std::lock_guard lock(mu_);
  corrupt_prob_ = p;
  recompute_armed_locked();
}

void FaultPlan::corrupt_next_transfers(std::uint64_t n) {
  std::lock_guard lock(mu_);
  corrupt_transfers_left_ = n;
  recompute_armed_locked();
}

void FaultPlan::corrupt_fstore_block_after(std::uint64_t skip) {
  std::lock_guard lock(mu_);
  fstore_corrupt_armed_ = true;
  fstore_corrupt_skip_ = skip;
  recompute_armed_locked();
}

bool FaultPlan::transfer_candidate_locked(const std::string& conn, NodeId src,
                                          NodeId dst) const {
  if (node_filter_ != kAnyNode && src != node_filter_ && dst != node_filter_) {
    return false;
  }
  return conn_filter_.empty() || conn == conn_filter_;
}

TransferFault FaultPlan::on_transfer(const std::string& conn, NodeId src,
                                     NodeId dst) {
  TransferFault f;
  if (!armed()) return f;
  std::lock_guard lock(mu_);
  // Partitions cut the link unconditionally (both directions, every conn),
  // independent of the node/conn filters that scope the probabilistic faults.
  if (partitioned_locked(src, dst)) {
    f.drop = true;
    return f;
  }
  if (!transfer_candidate_locked(conn, src, dst)) return f;
  if (drop_prob_ > 0.0 && rng_.unit() < drop_prob_) {
    f.drop = true;
    return f;  // a dropped message can't also be duplicated or delayed
  }
  if (dup_prob_ > 0.0 && rng_.unit() < dup_prob_) f.duplicate = true;
  if (delay_prob_ > 0.0 && rng_.unit() < delay_prob_) f.delay = delay_;
  if (corrupt_transfers_left_ > 0) {
    --corrupt_transfers_left_;
    f.corrupt = true;
    if (corrupt_transfers_left_ == 0) recompute_armed_locked();
  } else if (corrupt_prob_ > 0.0 && rng_.unit() < corrupt_prob_) {
    f.corrupt = true;
  }
  if (f.corrupt) {
    f.corrupt_seed = rng_.next();
    if (f.corrupt_seed == 0) f.corrupt_seed = 1;  // 0 = "intact" downstream
  }
  return f;
}

bool FaultPlan::on_conn_completion(const std::string& conn) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  auto it = breaks_.find(conn);
  if (it == breaks_.end()) return false;
  BreakRule& r = it->second;
  if (r.spent) return false;
  if (++r.seen < r.every) return false;
  r.seen = 0;
  if (!r.repeat) r.spent = true;
  return true;
}

bool FaultPlan::on_register() {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (reg_failures_left_ == 0) return false;
  --reg_failures_left_;
  return true;
}

bool FaultPlan::on_fstore_read(std::uint64_t* len) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (fstore_read_failures_left_ > 0) {
    --fstore_read_failures_left_;
    return true;
  }
  if (len != nullptr && *len > 1 && short_read_prob_ > 0.0 &&
      rng_.unit() < short_read_prob_) {
    *len = 1 + rng_.below(*len - 1);  // short but never empty
  }
  return false;
}

bool FaultPlan::on_fstore_write(std::uint64_t* flip) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (!fstore_corrupt_armed_) return false;
  if (fstore_corrupt_skip_ > 0) {
    --fstore_corrupt_skip_;
    return false;
  }
  fstore_corrupt_armed_ = false;  // one-shot
  if (flip != nullptr) *flip = rng_.next();
  recompute_armed_locked();
  return true;
}

bool FaultPlan::on_server_request(Time now, NodeId node,
                                  std::uint64_t* restart_delay_ms) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (!crash_.armed) return false;
  if (crash_node_filter_ != kAnyNode && node != crash_node_filter_) {
    return false;
  }
  bool trip = false;
  if (crash_.after_requests > 0) {
    trip = ++crash_.seen >= crash_.after_requests;
  } else {
    trip = now >= crash_.at_time;
  }
  if (!trip) return false;
  if (restart_delay_ms != nullptr) *restart_delay_ms = crash_.restart_delay_ms;
  crash_ = CrashRule{};  // one-shot
  recompute_armed_locked();
  return true;
}

}  // namespace sim
