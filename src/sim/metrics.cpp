#include "sim/metrics.hpp"

#include <cassert>
#include <cstdio>

#include "sim/histogram.hpp"
#include "sim/metric_key.hpp"
#include "sim/stats.hpp"

namespace sim {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
void append_kv(std::string& out, const std::string& key, std::uint64_t v,
               bool& first) {
  char buf[32];
  if (!first) out += ',';
  first = false;
  out += '"';
  out += json_escape(key);
  out += "\":";
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}
}  // namespace

void MetricsRegistry::register_gauge(const std::string& name, GaugeFn fn) {
  assert(valid_metric_key(name) && "gauge keys are dotted lowercase");
  std::lock_guard lock(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::unregister_gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  gauges_.erase(name);
}

std::map<std::string, std::uint64_t> MetricsRegistry::sample_gauges() const {
  std::map<std::string, GaugeFn> fns;
  {
    std::lock_guard lock(mu_);
    fns = gauges_;
  }
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, fn] : fns) out[name] = fn ? fn() : 0;
  return out;
}

void MetricsRegistry::enable_timeseries(TimeSeriesConfig cfg) {
  ts_ = std::make_unique<TimeSeries>(stats_, *this, std::move(cfg));
}

void MetricsRegistry::disable_timeseries() { ts_.reset(); }

std::string MetricsRegistry::to_json(const std::string& bench,
                                     const std::string& params_json) const {
  std::string out;
  out.reserve(1 << 12);
  out += "{\"bench\":\"";
  out += json_escape(bench);
  out += "\",\"params\":";
  out += params_json.empty() ? "{}" : params_json;

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : stats_.snapshot()) append_kv(out, k, v, first);
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : sample_gauges()) append_kv(out, k, v, first);
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, s] : hists_.snapshot_all()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += '"';
    char buf[288];
    std::snprintf(
        buf, sizeof(buf),
        ":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"mean\":%.1f,\"p50\":%llu,\"p95\":%llu,\"p99\":%llu}",
        static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.sum),
        static_cast<unsigned long long>(s.min),
        static_cast<unsigned long long>(s.max), s.mean(),
        static_cast<unsigned long long>(s.p50()),
        static_cast<unsigned long long>(s.p95()),
        static_cast<unsigned long long>(s.quantile(0.99)));
    out += buf;
  }
  out += '}';
  if (ts_) {
    out += ",\"timeseries\":";
    out += ts_->to_json();
  }
  out += '}';
  return out;
}

}  // namespace sim
