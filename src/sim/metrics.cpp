#include "sim/metrics.hpp"

#include <cstdio>

#include "sim/histogram.hpp"
#include "sim/stats.hpp"

namespace sim {

namespace {
void append_kv(std::string& out, const std::string& key, std::uint64_t v,
               bool& first) {
  char buf[32];
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;  // keys are our own metric names: no escaping needed
  out += "\":";
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}
}  // namespace

void MetricsRegistry::register_gauge(const std::string& name, GaugeFn fn) {
  std::lock_guard lock(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::unregister_gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  gauges_.erase(name);
}

std::map<std::string, std::uint64_t> MetricsRegistry::sample_gauges() const {
  std::map<std::string, GaugeFn> fns;
  {
    std::lock_guard lock(mu_);
    fns = gauges_;
  }
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, fn] : fns) out[name] = fn ? fn() : 0;
  return out;
}

std::string MetricsRegistry::to_json(const std::string& bench,
                                     const std::string& params_json) const {
  std::string out;
  out.reserve(1 << 12);
  out += "{\"bench\":\"";
  out += bench;
  out += "\",\"params\":";
  out += params_json.empty() ? "{}" : params_json;

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : stats_.snapshot()) append_kv(out, k, v, first);
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : sample_gauges()) append_kv(out, k, v, first);
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, s] : hists_.snapshot_all()) {
    if (!first) out += ',';
    first = false;
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"mean\":%.1f,\"p50\":%llu,\"p95\":%llu,\"p99\":%llu}",
        k.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.sum),
        static_cast<unsigned long long>(s.min),
        static_cast<unsigned long long>(s.max), s.mean(),
        static_cast<unsigned long long>(s.p50()),
        static_cast<unsigned long long>(s.p95()),
        static_cast<unsigned long long>(s.quantile(0.99)));
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace sim
