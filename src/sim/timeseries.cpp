#include "sim/timeseries.hpp"

#include <cassert>
#include <cstdio>

#include "sim/metric_key.hpp"
#include "sim/metrics.hpp"
#include "sim/stats.hpp"

namespace sim {

TimeSeries::TimeSeries(const Stats& stats, const MetricsRegistry& reg,
                       TimeSeriesConfig cfg)
    : stats_(stats), reg_(reg), cfg_(std::move(cfg)) {
#ifndef NDEBUG
  for (const auto& k : cfg_.gauges) assert(valid_metric_key(k));
  for (const auto& k : cfg_.counters) assert(valid_metric_key(k));
#endif
}

void TimeSeries::append_locked(const std::string& key, std::uint64_t t,
                               std::uint64_t v) {
  Ring& r = rings_[key];
  r.pts.push_back(Point{t, v});
  while (r.pts.size() > cfg_.capacity) r.pts.pop_front();
}

void TimeSeries::tick(std::uint64_t now) {
  std::lock_guard lock(mu_);
  if (have_sample_ &&
      (now <= last_t_ || now - last_t_ < cfg_.interval_ns)) {
    return;
  }
  // Gauge values at `now`. Sampling under mu_ keeps the whole sample
  // atomic per timestamp; the registry takes its own lock only to copy the
  // callback map, so there is no lock-order edge back into this class.
  if (cfg_.gauges.empty()) {
    for (const auto& [name, v] : reg_.sample_gauges()) {
      append_locked(name, now, v);
    }
  } else {
    const auto all = reg_.sample_gauges();
    for (const auto& name : cfg_.gauges) {
      const auto it = all.find(name);
      append_locked(name, now, it == all.end() ? 0 : it->second);
    }
  }
  // Counter deltas since the previous sample (the first sample's delta is
  // the counter's absolute value: growth since t=0).
  for (const auto& name : cfg_.counters) {
    const std::uint64_t cur = stats_.get(name);
    Ring& r = rings_[name];
    const std::uint64_t delta = cur >= r.last_counter ? cur - r.last_counter
                                                      : cur;  // reset() ran
    r.last_counter = cur;
    append_locked(name, now, delta);
  }
  have_sample_ = true;
  last_t_ = now;
  ++samples_;
}

std::map<std::string, std::vector<TimeSeries::Point>> TimeSeries::snapshot()
    const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::vector<Point>> out;
  for (const auto& [name, r] : rings_) {
    out.emplace(name, std::vector<Point>(r.pts.begin(), r.pts.end()));
  }
  return out;
}

std::uint64_t TimeSeries::samples() const {
  std::lock_guard lock(mu_);
  return samples_;
}

std::string TimeSeries::to_json() const {
  char buf[64];
  std::string out;
  out.reserve(1 << 12);
  std::snprintf(buf, sizeof(buf), "{\"interval_ns\":%llu,\"capacity\":%llu",
                static_cast<unsigned long long>(cfg_.interval_ns),
                static_cast<unsigned long long>(cfg_.capacity));
  out += buf;
  out += ",\"series\":{";
  bool first = true;
  std::lock_guard lock(mu_);
  for (const auto& [name, r] : rings_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"t\":[";
    bool f2 = true;
    for (const Point& p : r.pts) {
      if (!f2) out += ',';
      f2 = false;
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(p.t));
      out += buf;
    }
    out += "],\"v\":[";
    f2 = true;
    for (const Point& p : r.pts) {
      if (!f2) out += ',';
      f2 = false;
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(p.v));
      out += buf;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace sim
