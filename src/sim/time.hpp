#pragma once

#include <cstdint>

/// \file time.hpp
/// Virtual-time base types. All modelled durations/instants in this project
/// are expressed in virtual nanoseconds (`sim::Time`). Virtual time is
/// advanced analytically by the cost engine and is fully decoupled from wall
/// clock: benchmarks report these values because they are deterministic and
/// calibrated to the paper-era hardware, while data movement still happens
/// for real.
namespace sim {

/// Virtual nanoseconds.
using Time = std::uint64_t;

inline constexpr Time kUsec = 1'000;
inline constexpr Time kMsec = 1'000'000;
inline constexpr Time kSec = 1'000'000'000;

/// Convert microseconds (possibly fractional) to virtual time.
constexpr Time usec(double u) { return static_cast<Time>(u * 1'000.0 + 0.5); }

/// Convert virtual time to (fractional) microseconds, for reporting.
constexpr double to_usec(Time t) { return static_cast<double>(t) / 1'000.0; }

/// Convert virtual time to (fractional) milliseconds, for reporting.
constexpr double to_msec(Time t) { return static_cast<double>(t) / 1'000'000.0; }

}  // namespace sim
