#pragma once

#include <string_view>

namespace sim {

/// The metric-key naming convention, enforced (debug builds assert) at every
/// registration point — `Stats::add`, `HistogramRegistry::get/record`,
/// `MetricsRegistry::register_gauge` — so the namespace stays greppable as
/// it grows:
///
///   - dotted: at least one '.', separating "<layer>.<name>[.<detail>...]"
///     (e.g. "dafs.busy_shed", "dafs.rtt_ns.read_inline",
///     "dafs.session.42.bytes_in")
///   - lowercase: only [a-z0-9_] between the dots; no empty components
///
/// Latency keys end in `_ns` (virtual nanoseconds) and size keys in
/// `_bytes`; that half of the convention is documentation, not enforcement.
constexpr bool valid_metric_key(std::string_view key) {
  if (key.empty() || key.front() == '.' || key.back() == '.') return false;
  bool dotted = false;
  char prev = '.';
  for (const char c : key) {
    if (c == '.') {
      if (prev == '.') return false;  // empty component
      dotted = true;
    } else if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                 c == '_')) {
      return false;
    }
    prev = c;
  }
  return dotted;
}

}  // namespace sim
