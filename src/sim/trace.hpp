#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file trace.hpp
/// Causal, cross-layer request tracing with crash-safe flight recording.
///
/// Every MPI-IO operation opens a *root span*; each layer underneath (DAFS
/// client, wire, server admission/journal/service/reply, VIA transfers,
/// fstore) opens child spans that carry the root's `trace_id` and their
/// parent's `span_id`, so one collective write can be followed end to end.
/// The ids cross the wire in `dafs::MsgHeader`, which is how server-side
/// spans parent correctly under a different thread on a different node —
/// including across session reclaim/retransmit, where the retried attempt
/// keeps the original ids and therefore links to the original root.
///
/// Spans land in per-thread bounded ring buffers (the flight recorder):
/// recording is a push onto a thread-private ring under an uncontended
/// per-ring mutex, cheap enough to leave on. The newest spans survive,
/// oldest are evicted. On a crash, an expired deadline, or a failed
/// chaos assertion the recorder dumps everything it holds — closed spans,
/// still-open (orphaned) spans, and fault events — as Chrome-trace-event
/// JSON loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
///
/// Control: the `DAFS_TRACE=<path>` environment variable enables tracing
/// and names the final dump file (written when the Fabric dies); tests and
/// tools use `set_enabled()`/`set_dump_path()` directly. The MPI-IO hint
/// `dafs_trace_sample` gates root-span creation per file (0 = off).
namespace sim {

/// One completed (or, in a flight dump, still-open) span. Times are virtual
/// nanoseconds from the recording actor's clock.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  Time t_start = 0;
  Time t_end = 0;
  const char* layer = "";  // "mpiio", "dafs.client", "dafs.server", "via", "fstore"
  std::string name;
  /// Pre-rendered JSON fragment of extra attributes ("\"size\":4096,...");
  /// empty for none. Kept as a flat string so recording never walks a map.
  std::string attrs;
};

/// A point event in the flight recorder (server crash, expired deadline,
/// injected fault) — rendered as a Perfetto instant event.
struct TraceEvent {
  Time t = 0;
  std::string name;
  std::string attrs;
};

/// The identifiers a child span needs from its parent. `trace_id == 0`
/// means "no active trace": children become no-ops.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

/// Per-fabric tracing hub: id allocation, the per-thread span rings, the
/// event ring, and the JSON dumper. Lives on the Fabric next to Stats and
/// the HistogramRegistry.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Fast gate every recording site checks first.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  /// Read DAFS_TRACE from the environment: non-empty value enables tracing
  /// and becomes the dump path. Called by the Fabric constructor.
  void configure_from_env();

  /// Dump file for `dump_final()`; reason-suffixed variants derive from it.
  void set_dump_path(std::string path);
  const std::string& dump_path() const { return dump_path_; }

  /// Ring capacity (spans kept per thread). Applies to rings created after
  /// the call; tests shrink it to exercise eviction.
  void set_ring_capacity(std::size_t n) {
    ring_capacity_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  /// Fresh non-zero id (process-unique; shared by trace and span ids).
  std::uint64_t new_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- thread-local span context -------------------------------------------
  /// The innermost open span on this thread (inactive context if none).
  static SpanContext current();

  /// Record a completed span built by hand (async request paths that cannot
  /// use SpanScope because submit and completion are separate calls).
  void record(Span s);

  /// Record a flight-recorder event (crash, deadline expiry, fault).
  void event(std::string name, Time t, std::string attrs = {});

  /// Everything the rings currently hold: closed spans from every thread's
  /// ring, oldest first within a ring. In-flight spans are excluded (see
  /// `open_spans`).
  std::vector<Span> snapshot() const;
  /// Spans opened but not yet closed (orphaned in-flight work at dump time).
  /// Their `t_end` is 0.
  std::vector<Span> open_spans() const;
  std::vector<TraceEvent> events() const;

  /// Spans ever recorded (not capped by ring eviction) — the cheap overhead
  /// check: with sampling off this must not move.
  std::uint64_t spans_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Drop all recorded spans and events (rings stay allocated).
  void reset();

  /// Write a Chrome-trace-event JSON file with every closed span, open span
  /// and event currently held. Returns false on I/O failure.
  bool dump_json(const std::string& path) const;

  /// Flight-recorder dump triggered by `reason` ("crash", "deadline",
  /// "assert"). Writes to `<dump_path>.<reason>.json` (or
  /// `dafs_flight.<reason>.json` when no dump path is set), overwriting —
  /// repeated triggers rewrite one bounded file. Returns the path written,
  /// or empty on failure/disabled.
  std::string flight_dump(const char* reason);

  /// Final dump to the configured DAFS_TRACE path; no-op when disabled, no
  /// path is set, or nothing was recorded (so a fabric that traced nothing
  /// cannot clobber an earlier fabric's dump).
  void dump_final();

 private:
  struct Ring;
  friend class SpanScope;

  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> ring_capacity_{4096};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> evicted_{0};
  /// Process-unique generation, so a thread's cached ring pointer can never
  /// alias a different Tracer reusing this object's address.
  std::uint64_t gen_;

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;

  mutable std::mutex events_mu_;
  std::vector<TraceEvent> events_;

  std::string dump_path_;
};

/// RAII span: opens on construction (child of the thread's current span, or
/// an explicit wire parent), pushes itself as the thread's current context,
/// records on destruction. Inert — no allocation, no locking — when the
/// tracer is disabled or, for the child form, when there is no active trace.
class SpanScope {
 public:
  /// Child of the span currently open on this thread; inert when there is
  /// none (so helper-layer spans never start stray traces). `make_root`
  /// instead opens a fresh trace unconditionally.
  SpanScope(Tracer& t, const char* layer, const char* name,
            bool make_root = false);
  /// Child of an explicit remote parent (ids from the wire header). Inert
  /// when `trace_id` is 0.
  SpanScope(Tracer& t, const char* layer, const char* name,
            std::uint64_t trace_id, std::uint64_t parent_span_id);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const { return active_; }
  std::uint64_t trace_id() const { return span_.trace_id; }
  std::uint64_t span_id() const { return span_.span_id; }

  /// Append an attribute (rendered into the span's JSON args).
  void attr(const char* key, std::uint64_t v);
  void attr(const char* key, const char* v);

 private:
  void open(Tracer& t, const char* layer, const char* name,
            std::uint64_t trace_id, std::uint64_t parent_span_id);

  Tracer* tracer_ = nullptr;
  bool active_ = false;
  Span span_;
  /// Slot index of this span in its ring's open-span table.
  std::size_t open_slot_ = 0;
  Tracer::Ring* ring_ = nullptr;
};

}  // namespace sim
