#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/metric_key.hpp"

namespace sim {

/// A log2-bucketed distribution of unsigned samples (latencies in virtual
/// nanoseconds, transfer sizes in bytes). Bucket 0 holds the value 0; bucket
/// b >= 1 holds values in [2^(b-1), 2^b). Cheap enough for per-operation
/// recording on the data path; benchmarks snapshot them to report per-layer
/// latency/size distributions (count, sum, p50, p95, max) instead of the flat
/// event counts `Stats` gives.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Bucket index a value lands in.
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return std::min(b, kBuckets - 1);
  }

  /// Inclusive lower bound of bucket `b`.
  static constexpr std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Exclusive upper bound of bucket `b` (saturates for the last bucket).
  static constexpr std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 1;
    if (b >= kBuckets - 1) return ~std::uint64_t{0};
    return std::uint64_t{1} << b;
  }

  /// Point-in-time copy of a histogram's state; all percentile math runs on
  /// the snapshot so it is consistent under concurrent recording.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Value at quantile `q` in [0, 1]: the representative (upper edge,
    /// clamped to the observed min/max) of the bucket containing the sample
    /// of rank ceil(q * count). Log-bucketed, so the result is exact to
    /// within a factor of two.
    std::uint64_t quantile(double q) const {
      if (count == 0) return 0;
      q = std::clamp(q, 0.0, 1.0);
      auto target = static_cast<std::uint64_t>(
          q * static_cast<double>(count) + 0.9999);
      target = std::clamp<std::uint64_t>(target, 1, count);
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        cum += buckets[b];
        if (cum >= target) {
          const std::uint64_t rep = bucket_hi(b) - 1;
          return std::clamp(rep, min, max);
        }
      }
      return max;
    }

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p95() const { return quantile(0.95); }
  };

  void record(std::uint64_t v) {
    std::lock_guard lock(mu_);
    if (s_.count == 0 || v < s_.min) s_.min = v;
    if (v > s_.max) s_.max = v;
    ++s_.count;
    s_.sum += v;
    ++s_.buckets[bucket_of(v)];
  }

  Snapshot snapshot() const {
    std::lock_guard lock(mu_);
    return s_;
  }

  void reset() {
    std::lock_guard lock(mu_);
    s_ = Snapshot{};
  }

 private:
  mutable std::mutex mu_;
  Snapshot s_;
};

/// Named histograms, registered on demand. Lives in the Fabric next to
/// `Stats` so every layer (VIA, DAFS, MPI-IO) records into one shared
/// registry and benchmarks can snapshot the whole stack at once.
class HistogramRegistry {
 public:
  /// The named histogram, created empty on first use. The reference stays
  /// valid for the registry's lifetime.
  Histogram& get(const std::string& name) {
    assert(valid_metric_key(name) && "histogram keys are dotted lowercase");
    std::lock_guard lock(mu_);
    auto& slot = hists_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  void record(const std::string& name, std::uint64_t v) { get(name).record(v); }

  /// Snapshots of every histogram with at least one sample.
  std::map<std::string, Histogram::Snapshot> snapshot_all() const {
    std::lock_guard lock(mu_);
    std::map<std::string, Histogram::Snapshot> out;
    for (const auto& [name, h] : hists_) {
      auto s = h->snapshot();
      if (s.count > 0) out.emplace(name, s);
    }
    return out;
  }

  void reset() {
    std::lock_guard lock(mu_);
    for (auto& [name, h] : hists_) h->reset();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>> hists_;
};

}  // namespace sim
