#pragma once

#include <cstdint>
#include <string>

#include "sim/resource.hpp"

namespace sim {

using NodeId = std::uint32_t;

/// A host in the simulated cluster: one CPU resource (all protocol, copy and
/// kernel work on the host serializes through it) and one full-duplex NIC
/// port (separate egress/ingress link resources).
struct Node {
  Node(NodeId id_, std::string name_)
      : id(id_),
        name(std::move(name_)),
        cpu(name + ".cpu"),
        egress(name + ".tx"),
        ingress(name + ".rx") {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id;
  std::string name;
  Resource cpu;
  Resource egress;
  Resource ingress;
};

}  // namespace sim
