#pragma once

#include <mutex>
#include <string>

#include "sim/time.hpp"

namespace sim {

/// A serially-reusable resource in virtual time (a link direction, a node's
/// CPU, a DMA engine). Occupations are granted first-come-first-served in
/// *real* call order; each occupation starts no earlier than both the
/// requested ready time and the end of the previous occupation. This is the
/// standard conservative shortcut for analytic contention modelling: a second
/// flow through the same link pushes completions out, which is what produces
/// saturation in the multi-client experiments.
class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Occupy the resource for `duration`, starting no earlier than
  /// `earliest_start`. Returns the completion time.
  Time occupy(Time earliest_start, Time duration) {
    std::lock_guard lock(mu_);
    const Time start = std::max(earliest_start, free_);
    free_ = start + duration;
    busy_accum_ += duration;
    return free_;
  }

  /// Earliest time a new occupation could start.
  Time busy_until() const {
    std::lock_guard lock(mu_);
    return free_;
  }

  /// Total occupied virtual time (for utilization reporting).
  Time total_busy() const {
    std::lock_guard lock(mu_);
    return busy_accum_;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  mutable std::mutex mu_;
  Time free_ = 0;
  Time busy_accum_ = 0;
};

}  // namespace sim
