#pragma once

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sim {

/// A serially-reusable resource in virtual time (a link direction, a node's
/// CPU, a DMA engine). The resource keeps a bounded list of busy intervals;
/// an occupation is placed into the earliest idle gap that starts no earlier
/// than the requested ready time and fits the whole duration. Overlapping
/// demand therefore still serializes (which is what produces saturation in
/// the multi-client experiments), but an occupation whose ready time falls
/// into a genuinely idle window is *not* queued behind reservations made —
/// in real call order — by actors whose virtual clocks have raced ahead.
///
/// The distinction matters: with a single free-pointer granted in wall-clock
/// call order, one actor that legitimately fast-forwarded (say a server
/// worker that absorbed a long cold-path CPU charge) ratchets the resource
/// into the virtual future, and every causally-unrelated occupation after it
/// inherits phantom queueing that no real hardware would impose. Multi-actor
/// runs with skewed clocks (striped servers, staggered warm-ups) then report
/// serialization that does not exist.
class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Occupy the resource for `duration`, starting no earlier than
  /// `earliest_start`. Returns the completion time.
  Time occupy(Time earliest_start, Time duration) {
    std::lock_guard lock(mu_);
    Time start = std::max(earliest_start, horizon_);
    std::size_t i = 0;
    for (; i < busy_.size(); ++i) {
      if (busy_[i].end <= start) continue;       // interval wholly in the past
      if (start + duration <= busy_[i].start) break;  // gap fits: place here
      start = busy_[i].end;                      // occupied: try after it
    }
    busy_.insert(busy_.begin() + static_cast<std::ptrdiff_t>(i),
                 Interval{start, start + duration});
    coalesce_around(i);
    busy_accum_ += duration;
    // Bound memory: fold the oldest intervals into the horizon. Gaps before
    // the horizon are forfeited (conservatively busy), which degrades toward
    // the old free-pointer behaviour only for the distant past.
    while (busy_.size() > kMaxIntervals) {
      horizon_ = busy_.front().end;
      busy_.erase(busy_.begin());
    }
    return start + duration;
  }

  /// End of the latest granted occupation (idle gaps may exist before it).
  Time busy_until() const {
    std::lock_guard lock(mu_);
    return busy_.empty() ? horizon_ : busy_.back().end;
  }

  /// Total occupied virtual time (for utilization reporting).
  Time total_busy() const {
    std::lock_guard lock(mu_);
    return busy_accum_;
  }

  const std::string& name() const { return name_; }

 private:
  struct Interval {
    Time start;
    Time end;
  };

  static constexpr std::size_t kMaxIntervals = 64;

  /// Merge busy_[i] with its neighbours where the intervals touch, keeping
  /// the list sorted and disjoint.
  void coalesce_around(std::size_t i) {
    if (i + 1 < busy_.size() && busy_[i].end == busy_[i + 1].start) {
      busy_[i].end = busy_[i + 1].end;
      busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    if (i > 0 && busy_[i - 1].end == busy_[i].start) {
      busy_[i - 1].end = busy_[i].end;
      busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  std::string name_;
  mutable std::mutex mu_;
  std::vector<Interval> busy_;  // sorted by start, pairwise disjoint
  Time horizon_ = 0;            // everything before this is considered busy
  Time busy_accum_ = 0;
};

}  // namespace sim
