#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/fault.hpp"
#include "sim/histogram.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace sim {

/// The simulated cluster interconnect: a set of Nodes joined by an ideal
/// switch. Each node has dedicated egress/ingress link segments that
/// serialize at the configured rate; `transfer` computes when a packetized
/// message's last byte lands at the receiver, pushing through any contention
/// on either segment (cut-through forwarding: the receive segment starts one
/// propagation delay after the send segment).
///
/// The fabric also provides the cluster "name service" used for connection
/// establishment (VIA VI listeners, TCP listen sockets, MPI rank bootstrap):
/// a plain key -> opaque-pointer map, standing in for the out-of-band
/// discovery mechanism a real cluster would use.
class Fabric {
 public:
  /// Reads `DAFS_TRACE` from the environment to arm the tracer; the
  /// destructor writes the final trace dump if anything was recorded.
  explicit Fabric(CostModel cm = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  NodeId add_node(const std::string& name);
  Node& node(NodeId id);
  std::size_t node_count() const;

  const CostModel& cost() const { return cost_; }

  /// Arrival time at `dst` of the last byte of a `bytes`-sized message
  /// injected at `src` no earlier than `ready`. Packetizes at the MTU and
  /// charges per-packet NIC processing on the wire occupation. Does not
  /// charge any host CPU: callers model their own doorbell/interrupt costs.
  Time transfer(NodeId src, NodeId dst, std::uint64_t bytes, Time ready);

  // -- name service --------------------------------------------------------
  void bind(const std::string& key, void* endpoint);
  void unbind(const std::string& key);
  void* lookup(const std::string& key) const;
  /// Run `fn` on the endpoint bound to `key` (nullptr if unbound) while the
  /// registry lock is held, so the endpoint cannot be unbound — and, by the
  /// owner's unbind-before-destroy contract, cannot be destroyed — while
  /// `fn` inspects it. `fn` must not call back into bind/unbind/lookup.
  void with_bound(const std::string& key,
                  const std::function<void(void*)>& fn) const;

  Stats& stats() { return stats_; }
  HistogramRegistry& histograms() { return hists_; }
  /// The fabric-wide fault injector (inert until armed; see sim/fault.hpp).
  FaultPlan& faults() { return faults_; }
  /// Cross-layer request tracer / flight recorder (see sim/trace.hpp).
  Tracer& trace() { return trace_; }
  /// Unified counters+gauges+histograms export (see sim/metrics.hpp).
  MetricsRegistry& metrics() { return metrics_; }

 private:
  CostModel cost_;
  mutable std::mutex nodes_mu_;
  std::vector<std::unique_ptr<Node>> nodes_;

  mutable std::mutex names_mu_;
  std::unordered_map<std::string, void*> names_;

  Stats stats_;
  HistogramRegistry hists_;
  FaultPlan faults_;
  Tracer trace_;
  MetricsRegistry metrics_{stats_, hists_};
};

}  // namespace sim
