#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sim {

class Stats;
class MetricsRegistry;

/// Knobs for the time-series sampler (see TimeSeries below).
struct TimeSeriesConfig {
  /// Minimum virtual time between samples. tick() calls landing inside the
  /// interval are free no-ops, so callers can tick from a hot loop.
  std::uint64_t interval_ns = 1'000'000;  // 1 ms virtual
  /// Points retained per series; the ring drops its oldest point beyond it.
  std::size_t capacity = 512;
  /// Gauges to sample by name. Empty = every gauge registered at tick time,
  /// so a bench gets the whole live-state picture without enumerating keys.
  std::vector<std::string> gauges;
  /// Counters to sample *as deltas*: each point holds the counter's growth
  /// since the previous sample (a rate once divided by the interval), which
  /// is what makes outages and storms visible — a cumulative count only
  /// flattens them into the total.
  std::vector<std::string> counters;
};

/// Bounded-ring time series over the metrics plane: on a sim-clock cadence,
/// snapshot selected gauges (point-in-time values) and counters (deltas
/// since the last sample) into per-key rings, so a bench can render a
/// failover outage, an election storm, or a scrub repair episode as a
/// timeline instead of one end-of-run number.
///
/// Driven by `MetricsRegistry::tick(now)` — the DAFS server ticks after
/// every request it services, and benches may tick from their own loops;
/// samples are taken at most once per `interval_ns` of virtual time and
/// only at strictly increasing timestamps, so rings are monotone in sim
/// time no matter how many actors tick concurrently.
class TimeSeries {
 public:
  struct Point {
    std::uint64_t t = 0;  // virtual ns of the sample
    std::uint64_t v = 0;  // gauge value, or counter delta over the interval
  };

  TimeSeries(const Stats& stats, const MetricsRegistry& reg,
             TimeSeriesConfig cfg);

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Sample if at least `interval_ns` of virtual time passed since the last
  /// sample. `now` values at or before the last sample time are ignored
  /// (another actor already sampled this window), keeping every ring
  /// strictly monotone.
  void tick(std::uint64_t now);

  /// Point-in-time copy of every ring (series name -> points, oldest first).
  std::map<std::string, std::vector<Point>> snapshot() const;

  std::uint64_t interval_ns() const { return cfg_.interval_ns; }
  std::size_t capacity() const { return cfg_.capacity; }
  /// Samples taken so far (each sample appends one point to every series).
  std::uint64_t samples() const;

  /// The `"timeseries"` JSON value MetricsRegistry::to_json embeds:
  ///   {"interval_ns":N,"capacity":N,
  ///    "series":{"<key>":{"t":[...],"v":[...]},...}}
  std::string to_json() const;

 private:
  struct Ring {
    std::deque<Point> pts;
    std::uint64_t last_counter = 0;  // previous absolute counter value
  };

  void append_locked(const std::string& key, std::uint64_t t, std::uint64_t v);

  const Stats& stats_;
  const MetricsRegistry& reg_;
  const TimeSeriesConfig cfg_;

  mutable std::mutex mu_;
  bool have_sample_ = false;   // under mu_
  std::uint64_t last_t_ = 0;   // under mu_
  std::uint64_t samples_ = 0;  // under mu_
  std::map<std::string, Ring> rings_;  // under mu_
};

}  // namespace sim
