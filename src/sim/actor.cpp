#include "sim/actor.hpp"

namespace sim {

namespace {
thread_local Actor* g_current_actor = nullptr;
}  // namespace

Actor* Actor::current() { return g_current_actor; }

ActorScope::ActorScope(Actor& actor) : prev_(g_current_actor) {
  g_current_actor = &actor;
}

ActorScope::~ActorScope() { g_current_actor = prev_; }

}  // namespace sim
