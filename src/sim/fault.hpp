#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/node.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim {

/// Verdict for one fabric transfer, as decided by the FaultPlan.
struct TransferFault {
  bool drop = false;       // message never arrives (reliable VI => conn break)
  bool duplicate = false;  // message delivered twice
  Time delay = 0;          // extra latency before the wire sees it
  bool corrupt = false;    // flip one payload bit at the receiver
  /// Seed for targeting the flipped bit (byte = seed % len, bit = seed>>16
  /// % 8), drawn from the plan's RNG so a seeded schedule reproduces the
  /// exact same damage.
  std::uint64_t corrupt_seed = 0;
};

/// Seeded, deterministic fault injector consulted by the VIA layer, the
/// fabric and the file store. One plan lives on each Fabric (inert until
/// armed), so every layer of a testbed shares a single schedule and a test
/// can reproduce an exact failure interleaving from a seed.
///
/// Arming methods configure *what* goes wrong; the on_* query methods are
/// called from the hot paths and decide, against the seeded RNG and the
/// armed counters, whether this particular event is the one that fails.
/// All methods are thread-safe; the disarmed fast path is one relaxed
/// atomic load.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Re-seed the RNG and clear every armed fault and counter.
  void arm(std::uint64_t seed);
  /// Disarm everything (e.g. for the recovery phase of a test); counters and
  /// seed survive so a later re-arm of probabilities continues the stream.
  void clear();

  // ---- transfer faults (consulted by via::Vi::post_send) ------------------
  void set_drop_prob(double p);
  void set_duplicate_prob(double p);
  void set_delay(double p, Time delay);
  /// Each matching transfer independently has one payload bit flipped at the
  /// receiver with probability `p` (wire corruption the NIC's own CRC missed).
  void set_corrupt_prob(double p);
  /// Deterministic form: corrupt exactly the next `n` matching transfers
  /// that carry a payload, then disarm.
  void corrupt_next_transfers(std::uint64_t n);
  /// Restrict transfer faults to transfers touching `node` (a filer, say),
  /// leaving e.g. MPI rank-to-rank traffic unharmed. kInvalidNode = all.
  void restrict_to_node(NodeId node);
  /// Restrict transfer faults to connections established under this name
  /// service key (via::Nic::connect / Listener service). Empty = all.
  void restrict_to_conn(std::string conn);

  // ---- link partitions ----------------------------------------------------
  /// Sever the link between nodes `a` and `b` symmetrically: every transfer
  /// in either direction is dropped (a reliable VI breaks on first use) and
  /// new connects between the two nodes fail as if no listener existed.
  /// `heal_after_ms` > 0 heals the partition that much real time after it was
  /// installed; 0 keeps it until heal_partition()/clear(). Deterministic: no
  /// RNG involved, so election and split-brain schedules replay from a seed.
  void partition_nodes(NodeId a, NodeId b, std::uint64_t heal_after_ms = 0);
  /// Remove the partition between `a` and `b` (no-op when none exists).
  void heal_partition(NodeId a, NodeId b);
  /// Remove every installed partition.
  void heal_all_partitions();
  /// True while `a` and `b` are partitioned (lazily applies expired heal
  /// deadlines). Consulted by via::Nic::connect and by tests.
  bool partitioned(NodeId a, NodeId b);

  // ---- connection break ---------------------------------------------------
  /// Break the VI connection named `conn` after its Nth successful
  /// completion (counted across both endpoints and, with `repeat`, across
  /// re-established connections every further N completions).
  void break_conn_after(std::string conn, std::uint64_t n, bool repeat = false);

  // ---- resource faults ----------------------------------------------------
  /// Fail the next `n` memory registrations (VIP kErrorResource upstairs).
  void fail_next_registrations(std::uint64_t n);

  // ---- server crash/restart ----------------------------------------------
  /// Kill the (DAFS) server after it has admitted `n` further requests; the
  /// server discards all volatile state (sessions, locks, replay caches,
  /// un-synced file data) and comes back `restart_delay_ms` of real time
  /// later on the same node. One-shot; re-arm for repeated crashes.
  void crash_server_after_requests(std::uint64_t n,
                                   std::uint64_t restart_delay_ms);
  /// Kill the server at the first request admitted at or after virtual time
  /// `t` (same restart semantics).
  void crash_server_at(Time t, std::uint64_t restart_delay_ms);
  /// Restrict the armed server crash to the server on `node`. With a
  /// replicated pair in one fabric both filers consult the same plan; this
  /// pins the kill to the primary so the standby never trips it.
  /// kInvalidNode = any server. Survives until the next arm().
  void restrict_crash_to_node(NodeId node);

  // ---- file-store faults --------------------------------------------------
  /// Fail the next `n` file-store reads outright.
  void fail_next_fstore_reads(std::uint64_t n);
  /// Each file-store pread independently returns a short count with
  /// probability `p` (at least 1 byte, strictly less than requested).
  void set_short_read_prob(double p);
  /// At-rest bit rot: after `skip` further data-write operations, flip one
  /// seeded bit inside the range the next write stored — *after* its block
  /// checksum was recorded, so the damage is silent until a verifying read
  /// or a scrub pass recomputes the checksum. One-shot; re-arm for more.
  void corrupt_fstore_block_after(std::uint64_t skip);

  // ---- queries (layer-facing) --------------------------------------------
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  TransferFault on_transfer(const std::string& conn, NodeId src, NodeId dst);
  /// True when this successful completion on `conn` trips a scheduled break.
  bool on_conn_completion(const std::string& conn);
  /// True when this memory registration should fail.
  bool on_register();
  /// True when this file-store read should fail outright; otherwise *len may
  /// be clamped below its incoming value (short read). len == nullptr for
  /// paths that cannot shorten (extent lookups).
  bool on_fstore_read(std::uint64_t* len);
  /// Consulted by the file store once per data-write operation, *after* the
  /// write (and its checksum) landed. True when this write's range should be
  /// silently damaged; *flip receives a seed targeting the flipped bit
  /// (byte = seed % len, bit = seed>>16 % 8).
  bool on_fstore_write(std::uint64_t* flip);
  /// Consulted by the server once per admitted request (`now` = the worker's
  /// virtual clock, `node` = the node the server runs on). True when this
  /// request trips a scheduled crash; *restart_delay_ms receives the armed
  /// restart delay.
  bool on_server_request(Time now, NodeId node,
                         std::uint64_t* restart_delay_ms);

 private:
  static constexpr NodeId kAnyNode = ~NodeId{0};

  bool transfer_candidate_locked(const std::string& conn, NodeId src,
                                 NodeId dst) const;
  bool partitioned_locked(NodeId a, NodeId b);
  void recompute_armed_locked();

  mutable std::mutex mu_;
  Rng rng_{0};
  std::atomic<bool> armed_{false};

  double drop_prob_ = 0.0;
  double dup_prob_ = 0.0;
  double delay_prob_ = 0.0;
  Time delay_ = 0;
  NodeId node_filter_ = kAnyNode;
  std::string conn_filter_;

  struct BreakRule {
    std::uint64_t every = 0;  // break after this many completions
    std::uint64_t seen = 0;
    bool repeat = false;
    bool spent = false;
  };
  std::unordered_map<std::string, BreakRule> breaks_;

  std::uint64_t reg_failures_left_ = 0;
  std::uint64_t fstore_read_failures_left_ = 0;
  double short_read_prob_ = 0.0;

  double corrupt_prob_ = 0.0;
  std::uint64_t corrupt_transfers_left_ = 0;
  bool fstore_corrupt_armed_ = false;
  std::uint64_t fstore_corrupt_skip_ = 0;

  struct CrashRule {
    bool armed = false;
    std::uint64_t after_requests = 0;  // 0 = time-triggered
    std::uint64_t seen = 0;
    Time at_time = 0;                  // 0 = request-count-triggered
    std::uint64_t restart_delay_ms = 0;
  };
  CrashRule crash_;
  NodeId crash_node_filter_ = kAnyNode;

  struct Partition {
    NodeId a = 0;  // normalized: a < b
    NodeId b = 0;
    bool timed = false;
    std::chrono::steady_clock::time_point heal_at{};
  };
  std::vector<Partition> partitions_;
};

}  // namespace sim
