#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/actor.hpp"

namespace sim {

namespace {

/// Bound on buffered flight-recorder events (crashes, expiries, faults).
constexpr std::size_t kMaxEvents = 4096;

/// Process-global tracer generation counter (see Tracer::gen_).
std::atomic<std::uint64_t> g_tracer_gen{1};

Time now_or_zero() {
  Actor* a = Actor::current();
  return a != nullptr ? a->now() : 0;
}

/// The innermost open spans of this thread, innermost last. Owned by the
/// SpanScopes themselves; tracer-agnostic because a thread nests scopes of
/// at most one fabric at a time.
thread_local std::vector<SpanContext> t_context_stack;

/// Minimal JSON string escaping (names and layers are ASCII identifiers;
/// this guards the odd path or key with a quote or backslash).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_span_json(std::string& out, const Span& s, std::size_t tid,
                      bool in_flight) {
  char buf[256];
  out += "{\"ph\":\"X\",\"name\":\"";
  append_escaped(out, s.name);
  out += "\",\"cat\":\"";
  out += s.layer;
  const double ts = static_cast<double>(s.t_start) / 1000.0;
  const double dur =
      in_flight || s.t_end < s.t_start
          ? 0.0
          : static_cast<double>(s.t_end - s.t_start) / 1000.0;
  std::snprintf(buf, sizeof(buf),
                "\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%zu,"
                "\"args\":{\"trace_id\":%llu,\"span_id\":%llu,"
                "\"parent_span_id\":%llu",
                ts, dur, tid, static_cast<unsigned long long>(s.trace_id),
                static_cast<unsigned long long>(s.span_id),
                static_cast<unsigned long long>(s.parent_span_id));
  out += buf;
  if (!s.attrs.empty()) {
    out += ',';
    out += s.attrs;
  }
  if (in_flight) out += ",\"in_flight\":1";
  out += "}}";
}

}  // namespace

/// One thread's bounded span ring plus its open-span table. The mutex is
/// effectively uncontended: only the owning thread records, other threads
/// touch it only during snapshots and dumps.
struct Tracer::Ring {
  mutable std::mutex mu;
  std::thread::id owner;
  std::size_t cap = 0;
  std::vector<Span> buf;  // circular once buf.size() == cap
  std::size_t next = 0;   // overwrite cursor once full

  // In-flight spans, stable slots (SpanScope holds an index).
  std::vector<Span> open;
  std::vector<bool> open_used;
};

Tracer::Tracer() : gen_(g_tracer_gen.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

void Tracer::configure_from_env() {
  const char* path = std::getenv("DAFS_TRACE");
  if (path != nullptr && path[0] != '\0') {
    dump_path_ = path;
    set_enabled(true);
  }
}

void Tracer::set_dump_path(std::string path) { dump_path_ = std::move(path); }

Tracer::Ring& Tracer::ring_for_this_thread() {
  // One-entry thread-local cache; the generation check makes a stale entry
  // (a dead Tracer whose address was reused) miss instead of aliasing.
  struct Cache {
    const Tracer* key = nullptr;
    std::uint64_t gen = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.key == this && cache.gen == gen_) return *cache.ring;

  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard lock(rings_mu_);
  Ring* ring = nullptr;
  for (auto& r : rings_) {
    if (r->owner == me) {
      ring = r.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
    ring->owner = me;
    ring->cap = ring_capacity_.load(std::memory_order_relaxed);
    ring->buf.reserve(std::min<std::size_t>(ring->cap, 1024));
  }
  cache = Cache{this, gen_, ring};
  return *ring;
}

void Tracer::record(Span s) {
  if (!enabled()) return;
  Ring& ring = ring_for_this_thread();
  {
    std::lock_guard lock(ring.mu);
    if (ring.buf.size() < ring.cap) {
      ring.buf.push_back(std::move(s));
    } else {
      ring.buf[ring.next] = std::move(s);
      ring.next = (ring.next + 1) % ring.cap;
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::event(std::string name, Time t, std::string attrs) {
  if (!enabled()) return;
  std::lock_guard lock(events_mu_);
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin());  // keep newest
  }
  events_.push_back(TraceEvent{t, std::move(name), std::move(attrs)});
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<Span> out;
  std::lock_guard lock(rings_mu_);
  for (const auto& r : rings_) {
    std::lock_guard rlock(r->mu);
    if (r->buf.size() < r->cap) {
      out.insert(out.end(), r->buf.begin(), r->buf.end());
    } else {
      // Oldest first: the overwrite cursor points at the oldest entry.
      out.insert(out.end(), r->buf.begin() + static_cast<std::ptrdiff_t>(r->next),
                 r->buf.end());
      out.insert(out.end(), r->buf.begin(),
                 r->buf.begin() + static_cast<std::ptrdiff_t>(r->next));
    }
  }
  return out;
}

std::vector<Span> Tracer::open_spans() const {
  std::vector<Span> out;
  std::lock_guard lock(rings_mu_);
  for (const auto& r : rings_) {
    std::lock_guard rlock(r->mu);
    for (std::size_t i = 0; i < r->open.size(); ++i) {
      if (r->open_used[i]) out.push_back(r->open[i]);
    }
  }
  return out;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(events_mu_);
  return events_;
}

void Tracer::reset() {
  {
    std::lock_guard lock(rings_mu_);
    for (auto& r : rings_) {
      std::lock_guard rlock(r->mu);
      r->buf.clear();
      r->next = 0;
      r->cap = ring_capacity_.load(std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard lock(events_mu_);
    events_.clear();
  }
  recorded_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
}

bool Tracer::dump_json(const std::string& path) const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  {
    std::lock_guard lock(rings_mu_);
    for (std::size_t ri = 0; ri < rings_.size(); ++ri) {
      const Ring& r = *rings_[ri];
      std::lock_guard rlock(r.mu);
      auto emit = [&](const Span& s, bool in_flight) {
        sep();
        append_span_json(out, s, ri + 1, in_flight);
      };
      if (r.buf.size() < r.cap) {
        for (const Span& s : r.buf) emit(s, false);
      } else {
        for (std::size_t i = r.next; i < r.buf.size(); ++i) emit(r.buf[i], false);
        for (std::size_t i = 0; i < r.next; ++i) emit(r.buf[i], false);
      }
      for (std::size_t i = 0; i < r.open.size(); ++i) {
        if (r.open_used[i]) emit(r.open[i], true);
      }
    }
  }
  {
    std::lock_guard lock(events_mu_);
    for (const TraceEvent& e : events_) {
      sep();
      char buf[128];
      out += "{\"ph\":\"i\",\"name\":\"";
      append_escaped(out, e.name);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"s\":\"g\"",
                    static_cast<double>(e.t) / 1000.0);
      out += buf;
      if (!e.attrs.empty()) {
        out += ",\"args\":{";
        out += e.attrs;
        out += '}';
      }
      out += '}';
    }
  }
  out += "]}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

std::string Tracer::flight_dump(const char* reason) {
  if (!enabled()) return {};
  std::string path = dump_path_.empty() ? std::string("dafs_flight")
                                        : dump_path_;
  path += '.';
  path += reason;
  path += ".json";
  if (!dump_json(path)) return {};
  return path;
}

void Tracer::dump_final() {
  if (!enabled() || dump_path_.empty()) return;
  if (recorded_.load(std::memory_order_relaxed) == 0) return;
  (void)dump_json(dump_path_);
}

// ---------------------------------------------------------------------------
// SpanScope
// ---------------------------------------------------------------------------

SpanScope::SpanScope(Tracer& t, const char* layer, const char* name,
                     bool make_root) {
  if (!t.enabled()) return;
  if (make_root) {
    open(t, layer, name, t.new_id(), 0);
    return;
  }
  const SpanContext parent = Tracer::current();
  if (!parent.active()) return;  // no trace in progress: stay inert
  open(t, layer, name, parent.trace_id, parent.span_id);
}

SpanScope::SpanScope(Tracer& t, const char* layer, const char* name,
                     std::uint64_t trace_id, std::uint64_t parent_span_id) {
  if (!t.enabled() || trace_id == 0) return;
  open(t, layer, name, trace_id, parent_span_id);
}

void SpanScope::open(Tracer& t, const char* layer, const char* name,
                     std::uint64_t trace_id, std::uint64_t parent_span_id) {
  tracer_ = &t;
  active_ = true;
  span_.trace_id = trace_id;
  span_.parent_span_id = parent_span_id;
  span_.span_id = t.new_id();
  span_.layer = layer;
  span_.name = name;
  span_.t_start = now_or_zero();
  t_context_stack.push_back(SpanContext{span_.trace_id, span_.span_id});
  // Register as in-flight so a crash dump can show orphaned work.
  ring_ = &t.ring_for_this_thread();
  std::lock_guard lock(ring_->mu);
  for (std::size_t i = 0; i < ring_->open.size(); ++i) {
    if (!ring_->open_used[i]) {
      open_slot_ = i;
      ring_->open[i] = span_;
      ring_->open_used[i] = true;
      return;
    }
  }
  open_slot_ = ring_->open.size();
  ring_->open.push_back(span_);
  ring_->open_used.push_back(true);
}

SpanScope::~SpanScope() {
  if (!active_) return;
  span_.t_end = now_or_zero();
  if (!t_context_stack.empty()) t_context_stack.pop_back();
  {
    std::lock_guard lock(ring_->mu);
    ring_->open_used[open_slot_] = false;
    ring_->open[open_slot_] = Span{};
  }
  tracer_->record(std::move(span_));
}

SpanContext Tracer::current() {
  if (t_context_stack.empty()) return SpanContext{};
  return t_context_stack.back();
}

void SpanScope::attr(const char* key, std::uint64_t v) {
  if (!active_) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu",
                span_.attrs.empty() ? "" : ",", key,
                static_cast<unsigned long long>(v));
  span_.attrs += buf;
}

void SpanScope::attr(const char* key, const char* v) {
  if (!active_) return;
  if (!span_.attrs.empty()) span_.attrs += ',';
  span_.attrs += '"';
  span_.attrs += key;
  span_.attrs += "\":\"";
  append_escaped(span_.attrs, v);
  span_.attrs += '"';
}

}  // namespace sim
