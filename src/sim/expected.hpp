#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace sim {

/// Minimal expected<T, E>: a value or an error code. Used across modules so
/// hot paths stay exception-free (errors are part of normal control flow for
/// a file system / transport: ENOENT, timeouts, protection faults).
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<0>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<0>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(v_));
  }
  E error() const {
    assert(!ok());
    return std::get<1>(v_);
  }

  T value_or(T fallback) const { return ok() ? std::get<0>(v_) : fallback; }

 private:
  std::variant<T, E> v_;
};

}  // namespace sim
