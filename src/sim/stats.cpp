#include "sim/stats.hpp"

#include <atomic>
#include <thread>

namespace sim {

namespace {
std::atomic<std::uint64_t> g_stats_gen{1};
}  // namespace

Stats::Stats() : gen_(g_stats_gen.fetch_add(1, std::memory_order_relaxed)) {}

Stats::~Stats() = default;

Stats::Shard& Stats::shard_for_this_thread() {
  struct Cache {
    const Stats* key = nullptr;
    std::uint64_t gen = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.key == this && cache.gen == gen_) return *cache.shard;

  static thread_local const std::thread::id me = std::this_thread::get_id();
  // Shards are tagged with their owning thread so a thread that alternates
  // between two Stats instances (cache thrash) still finds its own shard
  // instead of growing a new one each switch.
  std::lock_guard lock(shards_mu_);
  Shard* shard = nullptr;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (owners_[i] == me) {
      shard = shards_[i].get();
      break;
    }
  }
  if (shard == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    owners_.push_back(me);
    shard = shards_.back().get();
  }
  cache = Cache{this, gen_, shard};
  return *shard;
}

std::uint64_t Stats::get(const std::string& key) const {
  std::uint64_t total = 0;
  std::lock_guard lock(shards_mu_);
  for (const auto& s : shards_) {
    std::lock_guard slock(s->mu);
    auto it = s->counters.find(key);
    if (it != s->counters.end()) total += it->second;
  }
  return total;
}

std::map<std::string, std::uint64_t> Stats::snapshot() const {
  std::map<std::string, std::uint64_t> out;
  std::lock_guard lock(shards_mu_);
  for (const auto& s : shards_) {
    std::lock_guard slock(s->mu);
    for (const auto& [k, v] : s->counters) out[k] += v;
  }
  return out;
}

void Stats::reset() {
  std::lock_guard lock(shards_mu_);
  for (const auto& s : shards_) {
    std::lock_guard slock(s->mu);
    s->counters.clear();
  }
}

}  // namespace sim
