#pragma once

#include <cstdint>

#include "sim/time.hpp"

/// \file cost_model.hpp
/// Era-calibrated cost parameters for the simulated 2001-class VIA cluster.
///
/// The absolute numbers are representative of the hardware the paper's
/// testbed used (Giganet cLAN-class SAN, ~700 MHz hosts, 2.4-era kernel TCP
/// stack). What the reproduction depends on is the *ratios*:
///   - host memcpy bandwidth is a small multiple of link bandwidth, so a
///     copy-based protocol (NFS/TCP) plateaus well below wire speed;
///   - per-packet kernel costs (syscall, interrupt, stack processing) dwarf
///     user-level NIC costs (doorbell, completion reap);
///   - memory registration is expensive enough that caching registrations
///     matters, but amortizable over large transfers.
namespace sim {

struct CostModel {
  // ---- SAN link (VIA fabric) -------------------------------------------
  /// Link serialization rate in MB/s (1 MB = 1e6 bytes). ~1 Gb/s class SAN.
  double link_mbps = 125.0;
  /// One-way wire + switch propagation.
  Time propagation = 2'500;  // 2.5 us
  /// Link-level MTU; messages larger than this are packetized.
  std::uint32_t mtu = 32 * 1024;
  /// NIC per-packet processing, charged on the wire occupation.
  Time per_packet = 300;

  // ---- VIA user-level data path ----------------------------------------
  /// Posting a descriptor (PIO doorbell write + queue bookkeeping).
  Time doorbell = 400;
  /// Reaping one completion (poll hit or CQ dequeue).
  Time completion = 300;
  /// NIC DMA engine setup per descriptor.
  Time dma_setup = 500;
  /// Receiving-NIC processing of a consumed receive descriptor (descriptor
  /// fetch + scatter setup + completion writeback). RDMA writes skip this —
  /// it is the per-message cost one-sided operations eliminate.
  Time recv_descriptor = 700;
  /// VI connection handshake (three-way, name-service lookup).
  Time connect_setup = 60'000;  // 60 us
  /// Memory registration: base kernel trap + per-page pin cost.
  Time reg_base = 15'000;  // 15 us
  Time reg_per_page = 400;
  std::uint32_t page_size = 4096;
  /// Deregistration.
  Time dereg_base = 8'000;

  // ---- Host -------------------------------------------------------------
  /// Host memory copy bandwidth in MB/s (user<->user or user<->kernel).
  double memcpy_mbps = 400.0;

  // ---- Kernel network path (NFS/TCP baseline) ---------------------------
  /// One system call (trap + return).
  Time syscall = 3'000;
  /// One device interrupt (+ softirq work).
  Time interrupt = 8'000;
  /// TCP maximum segment size.
  std::uint32_t tcp_mss = 1460;
  /// Protocol stack CPU cost per TCP segment (checksum excl. data copy).
  Time tcp_per_segment = 1'500;
  /// TCP/IP + ethernet header bytes per segment on the wire.
  std::uint32_t tcp_header_bytes = 52;
  /// Receive interrupts are coalesced: one interrupt per this many segments.
  std::uint32_t interrupt_coalesce = 8;

  // ---- Protocol endpoints --------------------------------------------------
  /// Per-request protocol decode/dispatch on the server.
  Time request_dispatch = 4'000;
  /// Per-request file-system (vnode) layer cost.
  Time fs_op = 2'000;
  /// Client-side user-level request marshalling (uDAFS library work).
  Time client_op = 1'500;

  // ---- Derived helpers ----------------------------------------------------
  /// Wire serialization time for `bytes` at link rate.
  constexpr Time wire_time(std::uint64_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) * 1'000.0 / link_mbps);
  }
  /// Host memcpy time for `bytes`.
  constexpr Time copy_time(std::uint64_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) * 1'000.0 / memcpy_mbps);
  }
  /// Memory registration time for a region of `bytes`.
  constexpr Time reg_time(std::uint64_t bytes) const {
    const std::uint64_t pages = (bytes + page_size - 1) / page_size;
    return reg_base + pages * reg_per_page;
  }
  /// Number of link packets for a message of `bytes`.
  constexpr std::uint64_t packets(std::uint64_t bytes) const {
    return bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
  }
  /// Number of TCP segments for a stream chunk of `bytes`.
  constexpr std::uint64_t tcp_segments(std::uint64_t bytes) const {
    return bytes == 0 ? 1 : (bytes + tcp_mss - 1) / tcp_mss;
  }
};

}  // namespace sim
