#pragma once

#include <cstdint>

/// \file types.hpp
/// Core VIA vocabulary types, shaped after the VIPL 1.0 API (VipXxx). The
/// emulation preserves the architectural contract MPI/DAFS code was written
/// against: memory must be registered before the NIC touches it, work is
/// posted as descriptors to per-VI queues, completions are reaped by polling
/// or via completion queues, and reliability levels gate which operations are
/// legal.
namespace via {

/// Operation status, mirroring the VIP_* return codes we need.
enum class Status : std::uint8_t {
  kSuccess = 0,
  kNotDone,             // poll: nothing completed yet
  kTimeout,
  kInvalidParameter,
  kInvalidState,        // e.g. posting on an unconnected VI
  kInvalidMemory,       // segment not covered by a registration
  kInvalidRdmaOp,       // RDMA not permitted (reliability level / attrs)
  kNoMatchingListener,  // connect: nobody bound to the discriminator
  kConnectionLost,      // peer disconnected / VI in error state
  kErrorResource,       // out of queue resources
  kRejected,            // connect rejected by peer
};

constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kSuccess: return "success";
    case Status::kNotDone: return "not-done";
    case Status::kTimeout: return "timeout";
    case Status::kInvalidParameter: return "invalid-parameter";
    case Status::kInvalidState: return "invalid-state";
    case Status::kInvalidMemory: return "invalid-memory";
    case Status::kInvalidRdmaOp: return "invalid-rdma-op";
    case Status::kNoMatchingListener: return "no-matching-listener";
    case Status::kConnectionLost: return "connection-lost";
    case Status::kErrorResource: return "error-resource";
    case Status::kRejected: return "rejected";
  }
  return "?";
}

/// VIA reliability levels (VIA spec section 2.4).
enum class ReliabilityLevel : std::uint8_t {
  kUnreliable,         // sends may be dropped; no RDMA Read
  kReliableDelivery,   // send completes once on the wire, delivery guaranteed
  kReliableReception,  // send completes once received by the peer
};

/// Opaque handle to a registered memory region.
using MemHandle = std::uint64_t;
inline constexpr MemHandle kInvalidMemHandle = 0;

/// Protection tag: registrations and VIs carry one; RDMA access requires the
/// initiator to present a handle whose tag matches the target registration.
using ProtectionTag = std::uint64_t;

/// Memory registration attributes.
struct MemAttrs {
  bool enable_rdma_write = false;
  bool enable_rdma_read = false;
};

/// Per-VI attributes fixed at creation.
struct ViAttrs {
  ReliabilityLevel reliability = ReliabilityLevel::kReliableDelivery;
  std::uint32_t max_transfer = 4u << 20;  // per-descriptor byte limit
  /// Protection tag of this endpoint. Inbound RDMA against this VI is only
  /// honoured for regions registered with the same tag (VIA's memory
  /// protection contract). 0 disables the check.
  ProtectionTag ptag = 0;
  /// Strict VIA semantics: a send arriving with no posted receive descriptor
  /// breaks the connection. When false (default) the emulated link-level
  /// flow control blocks the sender briefly instead, which is what credit
  /// schemes on real hardware achieve; upper layers here implement credits,
  /// and the lenient mode only papers over start-up races in tests.
  bool strict_no_recv_error = false;
};

/// Wire header bytes accompanying every VIA message (framing + CRC).
inline constexpr std::uint32_t kWireHeaderBytes = 64;

}  // namespace via
