#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "sim/fabric.hpp"
#include "via/memory.hpp"
#include "via/types.hpp"

namespace via {

class Vi;
class Listener;

/// A VIA NIC instance on one cluster node (VipOpenNic). Owns the node's
/// registered-memory table and hands out protection tags. Memory
/// registration through the NIC charges the registration cost to the calling
/// actor — this is the quantity the registration-cache ablation measures.
class Nic {
 public:
  Nic(sim::Fabric& fabric, sim::NodeId node, std::string name);
  ~Nic();

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  sim::Fabric& fabric() const { return fabric_; }
  sim::NodeId node_id() const { return node_; }
  const std::string& name() const { return name_; }
  MemoryRegistry& memory() { return memory_; }
  const sim::CostModel& cost() const { return fabric_.cost(); }

  /// Allocate a protection tag (VipCreatePtag).
  ProtectionTag create_ptag() { return next_ptag_.fetch_add(1); }

  /// Register memory for NIC access (VipRegisterMem). Charges the current
  /// actor the pin cost. Returns kInvalidMemHandle when the NIC is out of
  /// registration resources (VIP_ERROR_RESOURCE) — which the fabric's fault
  /// plan can inject on demand.
  [[nodiscard]] MemHandle register_memory(void* base, std::size_t len,
                                          ProtectionTag tag,
                                          MemAttrs attrs = {});

  /// Deregister (VipDeregisterMem). Charges the unpin cost.
  [[nodiscard]] Status deregister_memory(MemHandle h);

  /// Connect `vi` (must be idle) to whatever Listener is bound to `service`
  /// on the fabric name service. Blocks (real time) for the accept.
  [[nodiscard]] Status connect(Vi& vi, const std::string& service,
                               std::chrono::milliseconds timeout);

 private:
  sim::Fabric& fabric_;
  sim::NodeId node_;
  std::string name_;
  MemoryRegistry memory_;
  std::atomic<ProtectionTag> next_ptag_{1};
};

}  // namespace via
