#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "via/nic.hpp"

namespace via {

/// Memory-registration cache: VIA registration pins pages through the
/// kernel, which costs tens of microseconds — far too much to pay per
/// operation. Long-lived communication layers (the DAFS client, the MPI
/// rendezvous path) therefore cache registrations keyed by address range and
/// evict LRU. Not thread-safe; owned by a single endpoint like the
/// structures around it.
class RegCache {
 public:
  RegCache(Nic& nic, ProtectionTag tag, std::size_t capacity, bool enabled)
      : nic_(nic), tag_(tag), capacity_(capacity), enabled_(enabled) {}

  ~RegCache() { clear(); }

  RegCache(const RegCache&) = delete;
  RegCache& operator=(const RegCache&) = delete;

  /// Handle covering [buf, buf+len), registered with RDMA read+write access.
  /// When caching is disabled the caller owns releasing via `release`.
  MemHandle get(const void* buf, std::size_t len) {
    const auto base = reinterpret_cast<std::uintptr_t>(buf);
    MemAttrs attrs;
    attrs.enable_rdma_write = true;
    attrs.enable_rdma_read = true;
    if (enabled_) {
      for (auto& e : entries_) {
        if (base >= e.base && base + len <= e.base + e.len) {
          e.last_use = ++clock_;
          ++hits_;
          return e.handle;
        }
      }
    }
    ++misses_;
    const MemHandle h =
        nic_.register_memory(const_cast<void*>(buf), len, tag_, attrs);
    // A failed registration (resource exhaustion) is the caller's problem;
    // never cache the invalid handle.
    if (h == kInvalidMemHandle || !enabled_) return h;
    if (entries_.size() >= capacity_) {
      auto victim =
          std::min_element(entries_.begin(), entries_.end(),
                           [](const Entry& a, const Entry& b) {
                             return a.last_use < b.last_use;
                           });
      drop(victim->handle);
      entries_.erase(victim);
      ++evictions_;
    }
    entries_.push_back(Entry{base, len, h, ++clock_});
    return h;
  }

  /// Release a handle obtained while caching was disabled.
  void release(MemHandle h) {
    if (!enabled_ && h != kInvalidMemHandle) drop(h);
  }

  /// Deregister everything (requires an ActorScope for cost accounting).
  void clear() {
    for (const auto& e : entries_) drop(e.handle);
    entries_.clear();
  }

  bool enabled() const { return enabled_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  // Every handle we drop was minted by us, so a deregister failure is a
  // registry bug — surface it in the stats rather than swallowing it.
  void drop(MemHandle h) {
    if (nic_.deregister_memory(h) != Status::kSuccess) {
      nic_.fabric().stats().add("via.dereg_failures");
    }
  }

  struct Entry {
    std::uintptr_t base;
    std::size_t len;
    MemHandle handle;
    std::uint64_t last_use;
  };

  Nic& nic_;
  ProtectionTag tag_;
  std::size_t capacity_;
  bool enabled_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace via
