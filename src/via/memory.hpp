#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "via/types.hpp"

namespace via {

/// Per-NIC table of registered memory regions. Registration is the VIA
/// contract that makes user-level DMA safe: the NIC refuses to touch any
/// address not covered by a live registration with the right protection tag
/// and access rights. Upper layers (DAFS direct I/O, MPI rendezvous) depend
/// on these checks, and the cost of registration is a first-class quantity
/// in the evaluation (E10: registration cache ablation).
class MemoryRegistry {
 public:
  /// Register [base, base+len). Returns the handle the NIC will honour.
  MemHandle register_region(void* base, std::size_t len, ProtectionTag tag,
                            MemAttrs attrs);

  /// Remove a registration. kInvalidParameter if unknown.
  [[nodiscard]] Status deregister(MemHandle h);

  /// Is [addr, addr+len) inside the region of `h`? (local send/recv access)
  bool validate_local(MemHandle h, const std::byte* addr,
                      std::uint64_t len) const;

  /// Validate an RDMA access by a remote initiator: handle known, range in
  /// bounds, the region was registered with the matching RDMA right, and —
  /// when `required_tag` is nonzero — the region's protection tag matches
  /// the target VI's tag.
  [[nodiscard]] Status validate_rdma(MemHandle h, std::uint64_t addr,
                                     std::uint64_t len, bool is_write,
                                     ProtectionTag required_tag = 0) const;

  std::size_t region_count() const;

 private:
  struct Region {
    std::byte* base;
    std::uint64_t len;
    ProtectionTag tag;
    MemAttrs attrs;
  };

  mutable std::mutex mu_;
  MemHandle next_ = 1;
  std::unordered_map<MemHandle, Region> regions_;
};

}  // namespace via
