#include "via/nic.hpp"

#include <algorithm>
#include <cassert>

#include "sim/actor.hpp"
#include "via/vi.hpp"

namespace via {

using sim::Actor;
using sim::CostKind;
using sim::Time;

Nic::Nic(sim::Fabric& fabric, sim::NodeId node, std::string name)
    : fabric_(fabric), node_(node), name_(std::move(name)) {}

Nic::~Nic() = default;

MemHandle Nic::register_memory(void* base, std::size_t len, ProtectionTag tag,
                               MemAttrs attrs) {
  // Registration cost under the caller's open request span, if any: cache
  // misses in the client's registration cache show up on the timeline.
  sim::SpanScope span(fabric_.trace(), "via", "register_memory");
  if (span.active()) span.attr("bytes", std::uint64_t{len});
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kRegistration, cost().reg_time(len));
  }
  if (fabric_.faults().on_register()) {
    fabric_.stats().add("fault.reg_failures");
    return kInvalidMemHandle;
  }
  fabric_.stats().add("via.registrations");
  fabric_.stats().add("via.registered_bytes", len);
  return memory_.register_region(base, len, tag, attrs);
}

Status Nic::deregister_memory(MemHandle h) {
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kRegistration, cost().dereg_base);
  }
  fabric_.stats().add("via.deregistrations");
  return memory_.deregister(h);
}

Status Nic::connect(Vi& vi, const std::string& service,
                    std::chrono::milliseconds timeout) {
  Actor* actor = Actor::current();
  assert(actor && "connect outside an ActorScope");
  if (vi.state() != Vi::State::kIdle) return Status::kInvalidState;

  auto* listener = static_cast<Listener*>(fabric_.lookup("via:" + service));
  if (listener == nullptr) return Status::kNoMatchingListener;

  vi.conn_name_ = service;

  Listener::Request req;
  req.client_vi = &vi;
  req.client_time = actor->now();

  std::unique_lock lock(listener->mu_);
  if (listener->closed_) return Status::kNoMatchingListener;
  listener->pending_.push_back(&req);
  listener->cv_.notify_all();

  const bool got = [&] {
    if (timeout > std::chrono::hours(1)) {
      req.cv.wait(lock, [&] { return req.done; });
      return true;
    }
    return req.cv.wait_for(lock, timeout, [&] { return req.done; });
  }();

  if (!got) {
    // Withdraw the request if the listener has not claimed it yet; if it
    // has, we must wait for the (imminent) resolution.
    auto it = std::find(listener->pending_.begin(), listener->pending_.end(),
                        &req);
    if (it != listener->pending_.end()) {
      listener->pending_.erase(it);
      return Status::kTimeout;
    }
    req.cv.wait(lock, [&] { return req.done; });
  }

  if (!req.accepted) return Status::kRejected;
  // The handshake costs a round trip plus setup on each side; complete at
  // the same (agreed) instant on both ends.
  actor->charge(CostKind::kProtocol, cost().connect_setup);
  actor->sync_to(req.server_time + cost().propagation);
  fabric_.stats().add("via.connects");
  return Status::kSuccess;
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(Nic& nic, std::string service)
    : nic_(nic), service_(std::move(service)), key_("via:" + service_) {
  nic_.fabric().bind(key_, this);
}

Listener::~Listener() {
  nic_.fabric().unbind(key_);
  std::lock_guard lock(mu_);
  closed_ = true;
  for (Request* req : pending_) {
    req->done = true;
    req->accepted = false;
    req->cv.notify_all();
  }
  pending_.clear();
}

Status Listener::take_request(Request*& out, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  const bool got = [&] {
    if (timeout > std::chrono::hours(1)) {
      cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
      return true;
    }
    return cv_.wait_for(lock, timeout,
                        [&] { return !pending_.empty() || closed_; });
  }();
  if (!got) return Status::kTimeout;
  if (closed_ || pending_.empty()) return Status::kInvalidState;
  out = pending_.front();
  pending_.pop_front();
  return Status::kSuccess;
}

Status Listener::accept(Vi& vi, std::chrono::milliseconds timeout) {
  Actor* actor = Actor::current();
  assert(actor && "accept outside an ActorScope");
  if (vi.state() != Vi::State::kIdle) return Status::kInvalidState;

  Request* req = nullptr;
  if (Status st = take_request(req, timeout); st != Status::kSuccess) {
    return st;
  }

  vi.conn_name_ = service_;
  Vi::link(*req->client_vi, vi);
  actor->charge(CostKind::kProtocol, nic_.cost().connect_setup);
  const Time agreed = std::max(actor->now(), req->client_time +
                                                 nic_.cost().connect_setup);
  actor->sync_to(agreed + nic_.cost().propagation);

  std::lock_guard lock(mu_);
  req->server_time = agreed;
  req->done = true;
  req->accepted = true;
  req->cv.notify_all();
  return Status::kSuccess;
}

Status Listener::reject(std::chrono::milliseconds timeout) {
  Request* req = nullptr;
  if (Status st = take_request(req, timeout); st != Status::kSuccess) {
    return st;
  }
  std::lock_guard lock(mu_);
  req->done = true;
  req->accepted = false;
  req->cv.notify_all();
  return Status::kSuccess;
}

}  // namespace via
