#include "via/nic.hpp"

#include <algorithm>
#include <cassert>

#include "sim/actor.hpp"
#include "via/vi.hpp"

namespace via {

using sim::Actor;
using sim::CostKind;
using sim::Time;

Nic::Nic(sim::Fabric& fabric, sim::NodeId node, std::string name)
    : fabric_(fabric), node_(node), name_(std::move(name)) {}

Nic::~Nic() = default;

MemHandle Nic::register_memory(void* base, std::size_t len, ProtectionTag tag,
                               MemAttrs attrs) {
  // Registration cost under the caller's open request span, if any: cache
  // misses in the client's registration cache show up on the timeline.
  sim::SpanScope span(fabric_.trace(), "via", "register_memory");
  if (span.active()) span.attr("bytes", std::uint64_t{len});
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kRegistration, cost().reg_time(len));
  }
  if (fabric_.faults().on_register()) {
    fabric_.stats().add("fault.reg_failures");
    return kInvalidMemHandle;
  }
  fabric_.stats().add("via.registrations");
  fabric_.stats().add("via.registered_bytes", len);
  return memory_.register_region(base, len, tag, attrs);
}

Status Nic::deregister_memory(MemHandle h) {
  if (Actor* actor = Actor::current()) {
    actor->charge(CostKind::kRegistration, cost().dereg_base);
  }
  fabric_.stats().add("via.deregistrations");
  return memory_.deregister(h);
}

Status Nic::connect(Vi& vi, const std::string& service,
                    std::chrono::milliseconds timeout) {
  Actor* actor = Actor::current();
  assert(actor && "connect outside an ActorScope");
  if (vi.state() != Vi::State::kIdle) return Status::kInvalidState;

  vi.conn_name_ = service;

  Listener::Request req;
  req.client_vi = &vi;
  req.client_time = actor->now();

  // Enqueue under the fabric registry lock: a Listener unbinds itself (same
  // lock) before its destructor tears anything down, so a listener resolved
  // here is alive for the whole enqueue, and a request enqueued here is
  // visible to that destructor's fail-pending sweep. A bare lookup() would
  // race destruction — the listener lives on its accept loop's stack.
  const std::string key = "via:" + service;
  bool enqueued = false;
  fabric_.with_bound(key, [&](void* ep) {
    auto* listener = static_cast<Listener*>(ep);
    if (listener == nullptr) return;
    // A severed link also swallows the connect handshake: to a partitioned
    // peer the listener is indistinguishable from absent.
    if (fabric_.faults().partitioned(node_, listener->nic_.node_id())) return;
    std::lock_guard lk(listener->mu_);
    if (listener->closed_) return;
    listener->pending_.push_back(&req);
    listener->cv_.notify_all();
    enqueued = true;
  });
  if (!enqueued) return Status::kNoMatchingListener;

  // From here on the listener pointer is dead to us: whoever resolves the
  // request — accept, reject, or the destructor's sweep — finds it through
  // pending_ and completes the rendezvous under the request's own mutex.
  std::unique_lock lock(req.mu);
  const bool got = [&] {
    if (timeout > std::chrono::hours(1)) {
      req.cv.wait(lock, [&] { return req.done; });
      return true;
    }
    return req.cv.wait_for(lock, timeout, [&] { return req.done; });
  }();

  if (!got) {
    // Withdraw the request if the listener still exists and has not claimed
    // it yet. Re-resolve under the registry lock — the listener (even a
    // different incarnation rebound to the same service) is alive while we
    // search its queue; if the request is in neither a live listener's
    // queue nor withdrawn, someone claimed or failed it and the resolution
    // is imminent.
    lock.unlock();
    bool withdrawn = false;
    fabric_.with_bound(key, [&](void* ep) {
      auto* listener = static_cast<Listener*>(ep);
      if (listener == nullptr) return;
      std::lock_guard lk(listener->mu_);
      auto it = std::find(listener->pending_.begin(),
                          listener->pending_.end(), &req);
      if (it != listener->pending_.end()) {
        listener->pending_.erase(it);
        withdrawn = true;
      }
    });
    if (withdrawn) return Status::kTimeout;
    lock.lock();
    req.cv.wait(lock, [&] { return req.done; });
  }

  if (!req.accepted) return Status::kRejected;
  // The handshake costs a round trip plus setup on each side; complete at
  // the same (agreed) instant on both ends.
  actor->charge(CostKind::kProtocol, cost().connect_setup);
  actor->sync_to(req.server_time + cost().propagation);
  fabric_.stats().add("via.connects");
  return Status::kSuccess;
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(Nic& nic, std::string service)
    : nic_(nic), service_(std::move(service)), key_("via:" + service_) {
  nic_.fabric().bind(key_, this);
}

Listener::~Listener() {
  // Unbind first: after this returns no connector can reach us (resolution
  // and enqueue happen under the registry lock), so the sweep below sees
  // every request that will ever be enqueued.
  nic_.fabric().unbind(key_);
  std::lock_guard lock(mu_);
  closed_ = true;
  for (Request* req : pending_) {
    // Notify while holding the request's mutex: the waiter cannot wake,
    // return, and pop its stack frame (destroying the request) before the
    // notify has finished touching it.
    std::lock_guard rlock(req->mu);
    req->done = true;
    req->accepted = false;
    req->cv.notify_all();
  }
  pending_.clear();
}

Status Listener::take_request(Request*& out, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  const bool got = [&] {
    if (timeout > std::chrono::hours(1)) {
      cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
      return true;
    }
    return cv_.wait_for(lock, timeout,
                        [&] { return !pending_.empty() || closed_; });
  }();
  if (!got) return Status::kTimeout;
  if (closed_ || pending_.empty()) return Status::kInvalidState;
  out = pending_.front();
  pending_.pop_front();
  return Status::kSuccess;
}

Status Listener::accept(Vi& vi, std::chrono::milliseconds timeout) {
  Actor* actor = Actor::current();
  assert(actor && "accept outside an ActorScope");
  if (vi.state() != Vi::State::kIdle) return Status::kInvalidState;

  Request* req = nullptr;
  if (Status st = take_request(req, timeout); st != Status::kSuccess) {
    return st;
  }

  vi.conn_name_ = service_;
  Vi::link(*req->client_vi, vi);
  actor->charge(CostKind::kProtocol, nic_.cost().connect_setup);
  const Time agreed = std::max(actor->now(), req->client_time +
                                                 nic_.cost().connect_setup);
  actor->sync_to(agreed + nic_.cost().propagation);

  std::lock_guard lock(req->mu);
  req->server_time = agreed;
  req->done = true;
  req->accepted = true;
  req->cv.notify_all();
  return Status::kSuccess;
}

Status Listener::reject(std::chrono::milliseconds timeout) {
  Request* req = nullptr;
  if (Status st = take_request(req, timeout); st != Status::kSuccess) {
    return st;
  }
  std::lock_guard lock(req->mu);
  req->done = true;
  req->accepted = false;
  req->cv.notify_all();
  return Status::kSuccess;
}

}  // namespace via
