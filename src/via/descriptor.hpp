#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "via/types.hpp"

namespace via {

/// What a posted descriptor asks the NIC to do.
enum class Opcode : std::uint8_t {
  kSend,       // two-sided: consumes a receive descriptor at the peer
  kReceive,    // scatter target for an incoming send
  kRdmaWrite,  // one-sided write to peer memory (optional immediate data)
  kRdmaRead,   // one-sided read from peer memory (reliable VIs only)
};

/// Completion state of a descriptor.
enum class DescStatus : std::uint8_t {
  kIdle = 0,          // never posted / reaped
  kPosted,            // on a work queue
  kSuccess,
  kFormatError,       // bad segment list / over max_transfer
  kProtectionError,   // local segment not registered for the access
  kRdmaProtectionError,  // remote segment rejected by the target NIC
  kFlushed,           // connection went away while posted
  kDropped,           // unreliable VI: peer had no receive descriptor
};

constexpr const char* to_string(DescStatus s) {
  switch (s) {
    case DescStatus::kIdle: return "idle";
    case DescStatus::kPosted: return "posted";
    case DescStatus::kSuccess: return "success";
    case DescStatus::kFormatError: return "format-error";
    case DescStatus::kProtectionError: return "protection-error";
    case DescStatus::kRdmaProtectionError: return "rdma-protection-error";
    case DescStatus::kFlushed: return "flushed";
    case DescStatus::kDropped: return "dropped";
  }
  return "?";
}

/// One local gather/scatter element. `addr` must lie inside a region
/// registered with `handle` on the posting NIC.
struct DataSegment {
  std::byte* addr = nullptr;
  MemHandle handle = kInvalidMemHandle;
  std::uint32_t len = 0;
};

/// Remote target of an RDMA operation: a virtual address inside a region the
/// *peer* registered, plus the peer's memory handle for it.
struct RemoteSegment {
  std::uint64_t addr = 0;
  MemHandle handle = kInvalidMemHandle;
};

/// A VIA work-queue descriptor. Like VIPL, descriptors are caller-owned and
/// must stay alive (and unmodified) from post until reap; the library fills
/// in the completion fields.
struct Descriptor {
  // ---- request (caller fills) -------------------------------------------
  Opcode op = Opcode::kSend;
  std::vector<DataSegment> segs;  // gather (send/rdma) or scatter (recv)
  RemoteSegment remote;           // RDMA only
  bool has_immediate = false;     // send / rdma-write: deliver 32-bit imm
  std::uint32_t immediate = 0;

  // ---- completion (library fills) ---------------------------------------
  DescStatus status = DescStatus::kIdle;
  std::uint32_t length = 0;        // bytes actually transferred
  std::uint32_t recv_immediate = 0;
  bool recv_has_immediate = false;
  sim::Time posted_at = 0;         // virtual doorbell instant (sends only)
  sim::Time done_at = 0;           // virtual completion instant

  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : segs) n += s.len;
    return n;
  }

  bool ok() const { return status == DescStatus::kSuccess; }
};

}  // namespace via
