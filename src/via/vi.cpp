#include "via/vi.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "sim/actor.hpp"

namespace via {

using sim::Actor;
using sim::CostKind;
using sim::Time;

namespace {

constexpr auto kLenientRecvWait = std::chrono::seconds(5);

/// wait_for with protection against absurd durations (callers use
/// milliseconds::max() to mean "forever").
template <typename Pred>
bool bounded_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  std::chrono::milliseconds timeout, Pred pred) {
  if (timeout > std::chrono::hours(1)) {
    cv.wait(lk, pred);
    return true;
  }
  return cv.wait_for(lk, timeout, pred);
}

/// Saturating virtual-time delta (flush/error completions can carry a
/// done_at from another actor's clock).
Time since(Time from, Time to) { return to > from ? to - from : 0; }

/// Apply a TransferFault's wire corruption to a scattered payload of `total`
/// bytes: flip bit `(seed>>16) % 8` of byte `seed % total`, walking the
/// segment list to find the owning segment.
template <typename Segs>
void flip_scattered_bit(Segs& segs, std::uint64_t total, std::uint64_t seed) {
  std::uint64_t t = seed % total;
  const std::byte mask{static_cast<unsigned char>(1u << ((seed >> 16) % 8))};
  for (auto& seg : segs) {
    if (t < seg.len) {
      seg.addr[t] ^= mask;
      return;
    }
    t -= seg.len;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------------

void CompletionQueue::push(const Completion& c) {
  {
    std::lock_guard lock(mu_);
    q_.push_back(c);
  }
  cv_.notify_all();
}

Status CompletionQueue::finish_reap(Completion& out) {
  Actor* actor = Actor::current();
  assert(actor && "CQ reaped outside an ActorScope");
  actor->sync_to(out.desc->done_at);
  actor->charge(CostKind::kProtocol, out.vi->nic().cost().completion);
  if (!out.is_recv && out.desc->posted_at != 0) {
    out.vi->nic().fabric().histograms().record(
        "via.doorbell_to_reap_ns", since(out.desc->posted_at, actor->now()));
  }
  return Status::kSuccess;
}

Status CompletionQueue::wait(Completion& out, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (!bounded_wait(cv_, lock, timeout, [&] { return !q_.empty(); })) {
    return Status::kTimeout;
  }
  out = q_.front();
  q_.pop_front();
  lock.unlock();
  return finish_reap(out);
}

Status CompletionQueue::poll(Completion& out) {
  {
    std::lock_guard lock(mu_);
    if (q_.empty()) return Status::kNotDone;
    out = q_.front();
    q_.pop_front();
  }
  return finish_reap(out);
}

// ---------------------------------------------------------------------------
// Vi lifecycle / channel plumbing
// ---------------------------------------------------------------------------

Vi::Vi(Nic& nic, ViAttrs attrs, CompletionQueue* send_cq,
       CompletionQueue* recv_cq)
    : nic_(nic), attrs_(attrs), send_cq_(send_cq), recv_cq_(recv_cq) {}

Vi::~Vi() { disconnect(); }

void Vi::link(Vi& x, Vi& y) {
  auto chan = std::make_shared<Channel>();
  chan->a = &x;
  chan->b = &y;
  {
    std::lock_guard lx(x.mu_);
    x.chan_ = chan;
    x.state_ = State::kConnected;
  }
  {
    std::lock_guard ly(y.mu_);
    y.chan_ = chan;
    y.state_ = State::kConnected;
  }
}

Vi::PeerPin Vi::pin_peer() {
  PeerPin pin;
  {
    std::lock_guard lock(mu_);
    pin.chan = chan_;
  }
  if (!pin.chan) return pin;
  std::lock_guard lock(pin.chan->ptr_mu);
  if (pin.chan->a == this) {
    if (pin.chan->b) {
      ++pin.chan->use_b;
      pin.pinned_a = false;
    }
    pin.vi = pin.chan->b;
  } else {
    if (pin.chan->a) {
      ++pin.chan->use_a;
      pin.pinned_a = true;
    }
    pin.vi = pin.chan->a;
  }
  return pin;
}

void Vi::unpin_peer(const PeerPin& pin) {
  if (!pin.chan || pin.vi == nullptr) return;
  {
    std::lock_guard lock(pin.chan->ptr_mu);
    // The peer may have cleared its slot while we held the pin; the recorded
    // side, not the (possibly nulled) pointer, names the counter.
    if (pin.pinned_a) {
      --pin.chan->use_a;
    } else {
      --pin.chan->use_b;
    }
  }
  pin.chan->cv.notify_all();
}

void Vi::unlink() {
  std::shared_ptr<Channel> chan;
  {
    std::lock_guard lock(mu_);
    chan = chan_;
    chan_.reset();
  }
  if (!chan) return;
  std::unique_lock lock(chan->ptr_mu);
  if (chan->a == this) {
    chan->a = nullptr;
    chan->cv.wait(lock, [&] { return chan->use_a == 0; });
  } else if (chan->b == this) {
    chan->b = nullptr;
    chan->cv.wait(lock, [&] { return chan->use_b == 0; });
  }
}

void Vi::disconnect() {
  // Tell the peer first (it may be blocked waiting for receives).
  if (PeerPin pin = pin_peer(); pin.vi != nullptr) {
    Vi* peer = pin.vi;
    {
      std::lock_guard lock(peer->mu_);
      if (peer->state_ == State::kConnected) {
        peer->state_ = State::kDisconnected;
        Actor* actor = Actor::current();
        peer->flush_recvs_locked(actor ? actor->now() : 0);
      }
    }
    peer->cv_.notify_all();
    unpin_peer(pin);
  }
  unlink();
  {
    std::lock_guard lock(mu_);
    if (state_ == State::kConnected || state_ == State::kIdle) {
      state_ = State::kDisconnected;
    }
    Actor* actor = Actor::current();
    flush_recvs_locked(actor ? actor->now() : 0);
  }
  cv_.notify_all();
}

Vi::State Vi::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

std::size_t Vi::posted_recvs() const {
  std::lock_guard lock(mu_);
  return recv_posted_.size();
}

void Vi::flush_recvs_locked(Time t) {
  while (!recv_posted_.empty()) {
    Descriptor* d = recv_posted_.front();
    recv_posted_.pop_front();
    d->status = DescStatus::kFlushed;
    d->length = 0;
    d->done_at = t;
    complete_recv_locked(*d);
  }
}

// ---------------------------------------------------------------------------
// Completion delivery
// ---------------------------------------------------------------------------

void Vi::complete_send(Descriptor& d) {
  if (send_cq_ != nullptr) {
    send_cq_->push(Completion{this, &d, /*is_recv=*/false});
    return;
  }
  {
    std::lock_guard lock(mu_);
    send_done_q_.push_back(&d);
  }
  cv_.notify_all();
}

void Vi::complete_recv_locked(Descriptor& d) {
  if (recv_cq_ != nullptr) {
    recv_cq_->push(Completion{this, &d, /*is_recv=*/true});
    return;
  }
  recv_done_q_.push_back(&d);
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Posting
// ---------------------------------------------------------------------------

Status Vi::post_recv(Descriptor& d) {
  if (d.op != Opcode::kReceive && d.op != Opcode::kSend) {
    // Tolerate callers reusing a descriptor; normalize to receive.
  }
  d.op = Opcode::kReceive;
  for (const auto& seg : d.segs) {
    if (seg.len != 0 &&
        !nic_.memory().validate_local(seg.handle, seg.addr, seg.len)) {
      return Status::kInvalidMemory;
    }
  }
  {
    std::lock_guard lock(mu_);
    if (state_ == State::kError) return Status::kInvalidState;
    d.status = DescStatus::kPosted;
    d.length = 0;
    d.recv_has_immediate = false;
    recv_posted_.push_back(&d);
  }
  cv_.notify_all();
  nic_.fabric().stats().add("via.recv_posted");
  return Status::kSuccess;
}

Status Vi::post_send(Descriptor& d) {
  Actor* actor = Actor::current();
  assert(actor && "post_send outside an ActorScope");
  const sim::CostModel& cm = nic_.cost();

  if (d.op == Opcode::kReceive) return Status::kInvalidParameter;
  {
    std::lock_guard lock(mu_);
    if (state_ != State::kConnected) return Status::kInvalidState;
  }
  if (d.op == Opcode::kRdmaRead &&
      attrs_.reliability == ReliabilityLevel::kUnreliable) {
    return Status::kInvalidRdmaOp;
  }
  const std::uint64_t total = d.total_bytes();
  if (total > attrs_.max_transfer) return Status::kInvalidParameter;

  // Local gather/scatter segments must be registered.
  for (const auto& seg : d.segs) {
    if (seg.len != 0 &&
        !nic_.memory().validate_local(seg.handle, seg.addr, seg.len)) {
      d.status = DescStatus::kProtectionError;
      d.done_at = actor->now();
      complete_send(d);
      return Status::kSuccess;  // error is reported via the completion
    }
  }

  d.status = DescStatus::kPosted;
  actor->charge(CostKind::kProtocol, cm.doorbell);
  d.posted_at = actor->now();
  const Time wire_start = actor->now() + cm.dma_setup;

  PeerPin pin = pin_peer();
  Vi* peer = pin.vi;
  if (peer == nullptr) {
    d.status = DescStatus::kFlushed;
    d.done_at = actor->now();
    complete_send(d);
    return Status::kSuccess;
  }

  const sim::NodeId src = nic_.node_id();
  const sim::NodeId dst = peer->nic().node_id();
  sim::Fabric& fabric = nic_.fabric();
  const bool lenient = !attrs_.strict_no_recv_error;

  // Consult the fabric's fault plan (inert unless a test armed it). A drop
  // on a reliable VI is a delivery-guarantee violation: VIA semantics are
  // that the connection breaks and the descriptor flushes. On an unreliable
  // VI the message just vanishes.
  const sim::TransferFault tf =
      fabric.faults().on_transfer(conn_name_, src, dst);
  if (tf.drop) {
    fabric.stats().add("fault.transfer_drops");
    if (attrs_.reliability == ReliabilityLevel::kUnreliable) {
      d.status = DescStatus::kSuccess;  // fire-and-forget; nothing arrives
      d.length = static_cast<std::uint32_t>(total);
      d.done_at = wire_start;
    } else {
      fault_break(peer, actor->now());
      d.status = DescStatus::kFlushed;
      d.done_at = actor->now();
    }
    unpin_peer(pin);
    complete_send(d);
    return Status::kSuccess;
  }
  const Time faulted_start = wire_start + tf.delay;
  if (tf.delay != 0) fabric.stats().add("fault.transfer_delays");

  switch (d.op) {
    case Opcode::kSend: {
      const Time arrival =
          fabric.transfer(src, dst, kWireHeaderBytes + total, faulted_start);
      DepositOutcome out = peer->deposit(&d, static_cast<std::uint32_t>(total),
                                         d.has_immediate, d.immediate, arrival,
                                         lenient,
                                         tf.corrupt ? tf.corrupt_seed : 0);
      if (tf.duplicate && out.sender_status == DescStatus::kSuccess) {
        // Deliver the same message a second time (e.g. a spurious transport
        // retransmit); exercises duplicate suppression upstairs.
        fabric.stats().add("fault.transfer_dups");
        const Time again =
            fabric.transfer(src, dst, kWireHeaderBytes + total, arrival);
        (void)peer->deposit(&d, static_cast<std::uint32_t>(total),
                            d.has_immediate, d.immediate, again, lenient);
      }
      d.status = out.sender_status;
      d.length = static_cast<std::uint32_t>(total);
      d.done_at = attrs_.reliability == ReliabilityLevel::kReliableReception
                      ? std::max(arrival, out.delivered)
                      : std::max(wire_start, arrival - cm.propagation);
      if (out.broke) {
        std::lock_guard lock(mu_);
        state_ = State::kError;
      }
      fabric.stats().add("via.sends");
      fabric.stats().add("via.send_bytes", total);
      break;
    }
    case Opcode::kRdmaWrite: {
      const Status vs = peer->nic().memory().validate_rdma(
          d.remote.handle, d.remote.addr, total, /*is_write=*/true,
          peer->attrs().ptag);
      if (vs != Status::kSuccess) {
        d.status = DescStatus::kRdmaProtectionError;
        d.done_at = actor->now();
        break;
      }
      // The NIC's DMA engine moves the data; no host CPU is charged.
      auto* dst_mem = reinterpret_cast<std::byte*>(d.remote.addr);
      std::uint64_t off = 0;
      for (const auto& seg : d.segs) {
        std::memcpy(dst_mem + off, seg.addr, seg.len);
        off += seg.len;
      }
      if (tf.corrupt && total > 0) {
        dst_mem[tf.corrupt_seed % total] ^= std::byte{
            static_cast<unsigned char>(1u << ((tf.corrupt_seed >> 16) % 8))};
        fabric.stats().add("fault.transfer_corruptions");
      }
      const Time arrival =
          fabric.transfer(src, dst, kWireHeaderBytes + total, faulted_start);
      if (d.has_immediate) {
        DepositOutcome out =
            peer->deposit(nullptr, static_cast<std::uint32_t>(total),
                          /*has_imm=*/true, d.immediate, arrival, lenient);
        if (out.sender_status != DescStatus::kSuccess &&
            out.sender_status != DescStatus::kDropped) {
          d.status = out.sender_status;
          d.done_at = arrival;
          if (out.broke) {
            std::lock_guard lock(mu_);
            state_ = State::kError;
          }
          break;
        }
      }
      d.status = DescStatus::kSuccess;
      d.length = static_cast<std::uint32_t>(total);
      d.done_at = attrs_.reliability == ReliabilityLevel::kReliableReception
                      ? arrival
                      : std::max(wire_start, arrival - cm.propagation);
      fabric.stats().add("via.rdma_writes");
      fabric.stats().add("via.rdma_write_bytes", total);
      break;
    }
    case Opcode::kRdmaRead: {
      const Status vs = peer->nic().memory().validate_rdma(
          d.remote.handle, d.remote.addr, total, /*is_write=*/false,
          peer->attrs().ptag);
      if (vs != Status::kSuccess) {
        d.status = DescStatus::kRdmaProtectionError;
        d.done_at = actor->now();
        break;
      }
      const auto* src_mem = reinterpret_cast<const std::byte*>(d.remote.addr);
      std::uint64_t off = 0;
      for (const auto& seg : d.segs) {
        std::memcpy(seg.addr, src_mem + off, seg.len);
        off += seg.len;
      }
      if (tf.corrupt && total > 0) {
        flip_scattered_bit(d.segs, total, tf.corrupt_seed);
        fabric.stats().add("fault.transfer_corruptions");
      }
      // Request goes out, data comes back: one round trip plus the payload.
      const Time req_arrival =
          fabric.transfer(src, dst, kWireHeaderBytes, faulted_start);
      const Time arrival = fabric.transfer(
          dst, src, kWireHeaderBytes + total, req_arrival + cm.dma_setup);
      d.status = DescStatus::kSuccess;
      d.length = static_cast<std::uint32_t>(total);
      d.done_at = arrival;
      fabric.stats().add("via.rdma_reads");
      fabric.stats().add("via.rdma_read_bytes", total);
      break;
    }
    case Opcode::kReceive:
      break;  // unreachable; handled above
  }

  // Doorbell->completion latency and transfer-size distributions, per op.
  const char* lat_key = nullptr;
  const char* size_key = nullptr;
  switch (d.op) {
    case Opcode::kSend:
      lat_key = "via.send_latency_ns";
      size_key = "via.send_size_bytes";
      break;
    case Opcode::kRdmaWrite:
      lat_key = "via.rdma_write_latency_ns";
      size_key = "via.rdma_write_size_bytes";
      break;
    case Opcode::kRdmaRead:
      lat_key = "via.rdma_read_latency_ns";
      size_key = "via.rdma_read_size_bytes";
      break;
    case Opcode::kReceive:
      break;
  }
  if (lat_key != nullptr) {
    fabric.histograms().record(lat_key, since(d.posted_at, d.done_at));
    fabric.histograms().record(size_key, total);
    // Doorbell->completion span, child of whatever request span is open on
    // this thread (the DAFS client request or the server's service span).
    if (sim::Tracer& tracer = fabric.trace(); tracer.enabled()) {
      if (const sim::SpanContext ctx = sim::Tracer::current(); ctx.active()) {
        sim::Span s;
        s.trace_id = ctx.trace_id;
        s.span_id = tracer.new_id();
        s.parent_span_id = ctx.span_id;
        s.t_start = d.posted_at;
        s.t_end = d.done_at;
        s.layer = "via";
        s.name = d.op == Opcode::kSend ? "send"
                 : d.op == Opcode::kRdmaWrite ? "rdma_write"
                                              : "rdma_read";
        char attrs[64];
        std::snprintf(attrs, sizeof(attrs), "\"bytes\":%llu,\"status\":%d",
                      static_cast<unsigned long long>(total),
                      static_cast<int>(d.status));
        s.attrs = attrs;
        tracer.record(std::move(s));
      }
    }
  }

  // Scheduled break: the Nth completion on a named connection succeeds, then
  // the connection dies under the next operation.
  if (d.status == DescStatus::kSuccess && !conn_name_.empty() &&
      fabric.faults().on_conn_completion(conn_name_)) {
    fabric.stats().add("fault.conn_breaks");
    fault_break(peer, d.done_at);
  }

  unpin_peer(pin);
  complete_send(d);
  return Status::kSuccess;
}

void Vi::fault_break(Vi* peer, Time t) {
  if (peer != nullptr) {
    {
      std::lock_guard lock(peer->mu_);
      if (peer->state_ == State::kConnected) {
        peer->state_ = State::kError;
        peer->flush_recvs_locked(t);
      }
    }
    peer->cv_.notify_all();
  }
  {
    std::lock_guard lock(mu_);
    if (state_ == State::kConnected) {
      state_ = State::kError;
      flush_recvs_locked(t);
    }
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Deposit (runs on the sender's thread, against the receiving VI)
// ---------------------------------------------------------------------------

Vi::DepositOutcome Vi::deposit(const Descriptor* gather,
                               std::uint32_t report_len, bool has_imm,
                               std::uint32_t imm, Time arrival,
                               bool lenient_wait,
                               std::uint64_t corrupt_seed) {
  std::unique_lock lock(mu_);
  if (state_ != State::kConnected) {
    return DepositOutcome{DescStatus::kFlushed, false};
  }

  if (recv_posted_.empty()) {
    if (attrs_.reliability == ReliabilityLevel::kUnreliable) {
      nic_.fabric().stats().add("via.unreliable_drops");
      return DepositOutcome{DescStatus::kDropped, false};
    }
    if (lenient_wait) {
      // Emulated link-level flow control: give the receiver a moment (real
      // time) to replenish its descriptor pool.
      cv_.wait_for(lock, kLenientRecvWait, [&] {
        return !recv_posted_.empty() || state_ != State::kConnected;
      });
      if (state_ != State::kConnected) {
        return DepositOutcome{DescStatus::kFlushed, false};
      }
    }
    if (recv_posted_.empty()) {
      // Strict VIA semantics: the connection breaks.
      state_ = State::kError;
      flush_recvs_locked(arrival);
      nic_.fabric().stats().add("via.no_recv_errors");
      return DepositOutcome{DescStatus::kFlushed, true};
    }
  }

  Descriptor* r = recv_posted_.front();
  recv_posted_.pop_front();

  std::uint32_t copied = 0;
  if (gather != nullptr) {
    // Two-sided delivery: the receiving NIC fetches the descriptor and sets
    // up the scatter — the per-message work RDMA avoids.
    arrival += nic_.cost().recv_descriptor;
    // Scatter the gathered bytes into the receive descriptor's segments.
    std::uint64_t capacity = r->total_bytes();
    if (gather->total_bytes() > capacity) {
      // Message longer than the posted buffer: both sides see an error.
      r->status = DescStatus::kFormatError;
      r->length = 0;
      r->done_at = arrival;
      complete_recv_locked(*r);
      return DepositOutcome{DescStatus::kFormatError, false};
    }
    auto dst_it = r->segs.begin();
    std::uint32_t dst_off = 0;
    for (const auto& sseg : gather->segs) {
      std::uint32_t src_off = 0;
      while (src_off < sseg.len) {
        while (dst_it != r->segs.end() && dst_it->len == dst_off) {
          ++dst_it;
          dst_off = 0;
        }
        assert(dst_it != r->segs.end());
        const std::uint32_t n =
            std::min(sseg.len - src_off, dst_it->len - dst_off);
        std::memcpy(dst_it->addr + dst_off, sseg.addr + src_off, n);
        src_off += n;
        dst_off += n;
        copied += n;
      }
    }
    if (corrupt_seed != 0 && copied > 0) {
      // Wire corruption survived the link CRC: one bit of the delivered
      // copy flips; the sender's gather buffers stay intact (a retransmit
      // re-reads clean bytes).
      flip_scattered_bit(r->segs, copied, corrupt_seed);
      nic_.fabric().stats().add("fault.transfer_corruptions");
    }
    r->length = copied;
  } else {
    r->length = report_len;  // RDMA write w/ immediate: data already placed
  }

  r->status = DescStatus::kSuccess;
  r->recv_has_immediate = has_imm;
  r->recv_immediate = imm;
  r->done_at = arrival;
  complete_recv_locked(*r);
  return DepositOutcome{DescStatus::kSuccess, false, arrival};
}

// ---------------------------------------------------------------------------
// Reaping
// ---------------------------------------------------------------------------

Status Vi::reap(std::deque<Descriptor*>& q, Descriptor*& out, bool block,
                std::chrono::milliseconds timeout) {
  Descriptor* d = nullptr;
  {
    std::unique_lock lock(mu_);
    if (q.empty()) {
      if (!block) return Status::kNotDone;
      // A broken/disconnected VI will never complete more work: wake and
      // report kConnectionLost instead of burning the full timeout (already
      // delivered completions — including flushed ones — drain first).
      auto live = [&] {
        return state_ == State::kConnected || state_ == State::kIdle;
      };
      bounded_wait(cv_, lock, timeout, [&] { return !q.empty() || !live(); });
      if (q.empty()) {
        return live() ? Status::kTimeout : Status::kConnectionLost;
      }
    }
    d = q.front();
    q.pop_front();
  }
  Actor* actor = Actor::current();
  assert(actor && "reap outside an ActorScope");
  actor->sync_to(d->done_at);
  actor->charge(CostKind::kProtocol, nic_.cost().completion);
  if (d->op != Opcode::kReceive && d->posted_at != 0) {
    nic_.fabric().histograms().record("via.doorbell_to_reap_ns",
                                      since(d->posted_at, actor->now()));
  }
  out = d;
  return Status::kSuccess;
}

Status Vi::send_done(Descriptor*& out) {
  return reap(send_done_q_, out, /*block=*/false, {});
}

Status Vi::recv_done(Descriptor*& out) {
  return reap(recv_done_q_, out, /*block=*/false, {});
}

Status Vi::send_wait(Descriptor*& out, std::chrono::milliseconds timeout) {
  return reap(send_done_q_, out, /*block=*/true, timeout);
}

Status Vi::recv_wait(Descriptor*& out, std::chrono::milliseconds timeout) {
  return reap(recv_done_q_, out, /*block=*/true, timeout);
}

}  // namespace via
