#include "via/memory.hpp"

namespace via {

MemHandle MemoryRegistry::register_region(void* base, std::size_t len,
                                          ProtectionTag tag, MemAttrs attrs) {
  std::lock_guard lock(mu_);
  const MemHandle h = next_++;
  regions_[h] = Region{static_cast<std::byte*>(base), len, tag, attrs};
  return h;
}

Status MemoryRegistry::deregister(MemHandle h) {
  std::lock_guard lock(mu_);
  return regions_.erase(h) == 1 ? Status::kSuccess : Status::kInvalidParameter;
}

bool MemoryRegistry::validate_local(MemHandle h, const std::byte* addr,
                                    std::uint64_t len) const {
  std::lock_guard lock(mu_);
  auto it = regions_.find(h);
  if (it == regions_.end()) return false;
  const Region& r = it->second;
  return addr >= r.base && addr + len <= r.base + r.len;
}

Status MemoryRegistry::validate_rdma(MemHandle h, std::uint64_t addr,
                                     std::uint64_t len, bool is_write,
                                     ProtectionTag required_tag) const {
  std::lock_guard lock(mu_);
  auto it = regions_.find(h);
  if (it == regions_.end()) return Status::kInvalidMemory;
  const Region& r = it->second;
  const auto base = reinterpret_cast<std::uint64_t>(r.base);
  if (addr < base || addr + len > base + r.len) return Status::kInvalidMemory;
  if (is_write && !r.attrs.enable_rdma_write) return Status::kInvalidRdmaOp;
  if (!is_write && !r.attrs.enable_rdma_read) return Status::kInvalidRdmaOp;
  if (required_tag != 0 && r.tag != required_tag) {
    return Status::kInvalidMemory;
  }
  return Status::kSuccess;
}

std::size_t MemoryRegistry::region_count() const {
  std::lock_guard lock(mu_);
  return regions_.size();
}

}  // namespace via
