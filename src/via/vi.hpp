#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "via/completion_queue.hpp"
#include "via/descriptor.hpp"
#include "via/nic.hpp"
#include "via/types.hpp"

namespace via {

/// A Virtual Interface: one endpoint of a point-to-point connection, with a
/// send work queue and a receive work queue (VipCreateVi). Completions are
/// delivered either to the per-queue done lists (reaped with
/// send_done/recv_done/..._wait, VIPL VipSendDone style) or, when the VI was
/// created with CQs, funnelled into those CQs.
///
/// Emulation notes (see DESIGN.md §2):
///  * Data really moves: a send memcpys the gather segments into the peer's
///    posted receive descriptor's scatter segments; RDMA ops memcpy directly
///    between registered regions. Host CPU is charged only for doorbells and
///    completion reaping — the "DMA" itself consumes no actor CPU, which is
///    exactly the property DAFS direct I/O exploits.
///  * Completion *times* are computed analytically against the fabric's link
///    resources at post time; waiting threads synchronize their virtual
///    clocks to those instants when they reap.
class Vi {
 public:
  Vi(Nic& nic, ViAttrs attrs, CompletionQueue* send_cq = nullptr,
     CompletionQueue* recv_cq = nullptr);
  ~Vi();

  Vi(const Vi&) = delete;
  Vi& operator=(const Vi&) = delete;

  enum class State : std::uint8_t { kIdle, kConnected, kDisconnected, kError };

  // ---- posting ------------------------------------------------------------
  /// Post a receive descriptor (scatter list). Allowed before connection.
  [[nodiscard]] Status post_recv(Descriptor& d);
  /// Post a send-side descriptor: kSend, kRdmaWrite or kRdmaRead.
  [[nodiscard]] Status post_send(Descriptor& d);

  // ---- reaping (per-VI; only when no CQ is attached to that queue) -------
  [[nodiscard]] Status send_done(Descriptor*& out);  // poll; kNotDone if empty
  [[nodiscard]] Status recv_done(Descriptor*& out);
  [[nodiscard]] Status send_wait(Descriptor*& out,
                                 std::chrono::milliseconds timeout);
  [[nodiscard]] Status recv_wait(Descriptor*& out,
                                 std::chrono::milliseconds timeout);

  // ---- connection ----------------------------------------------------------
  /// Tear the connection down; flushes posted receives on both endpoints.
  void disconnect();

  State state() const;
  bool connected() const { return state() == State::kConnected; }
  const ViAttrs& attrs() const { return attrs_; }
  /// Name-service key this connection was established under (fault plans
  /// target connections by this name). Empty before establishment.
  const std::string& conn_name() const { return conn_name_; }
  Nic& nic() const { return nic_; }
  /// Receive descriptors currently posted (credit accounting upstairs).
  std::size_t posted_recvs() const;

 private:
  friend class Nic;
  friend class Listener;

  /// Control block shared by the two endpoints of a connection. Senders pin
  /// the peer with a use count so a Vi can be destroyed safely while traffic
  /// is in flight in the other direction.
  struct Channel {
    std::mutex ptr_mu;
    std::condition_variable cv;
    Vi* a = nullptr;
    Vi* b = nullptr;
    int use_a = 0;
    int use_b = 0;
  };

  static void link(Vi& x, Vi& y);  // establish a connected channel

  /// Pin + return the peer endpoint (vi == nullptr if gone). The pin keeps
  /// the peer alive (its unlink() blocks) until unpin_peer().
  struct PeerPin {
    Vi* vi = nullptr;
    std::shared_ptr<Channel> chan;
    bool pinned_a = false;  // which use counter the pin incremented
  };
  PeerPin pin_peer();
  static void unpin_peer(const PeerPin& pin);
  void unlink();  // clear own slot, wait for in-flight users to drain

  /// Deposit path, run on the *sender's* thread against this (receiving) VI.
  /// Consumes one posted receive descriptor; scatters `gather`'s bytes into
  /// it when non-null (plain send), or just reports `report_len` (RDMA write
  /// with immediate). Returns the status the sender's descriptor should
  /// complete with and whether the connection broke.
  struct DepositOutcome {
    DescStatus sender_status = DescStatus::kSuccess;
    bool broke = false;
    sim::Time delivered = 0;  // arrival incl. receive-descriptor processing
  };
  /// `corrupt_seed` != 0 flips one seeded bit in the scattered bytes after
  /// the copy (wire corruption the link CRC missed); 0 = deliver intact.
  DepositOutcome deposit(const Descriptor* gather, std::uint32_t report_len,
                         bool has_imm, std::uint32_t imm, sim::Time arrival,
                         bool lenient_wait, std::uint64_t corrupt_seed = 0);

  void complete_send(Descriptor& d);          // push to done list / CQ
  void complete_recv_locked(Descriptor& d);   // mu_ held
  void flush_recvs_locked(sim::Time t);

  /// Injected transport failure: both endpoints go to error state and flush
  /// their posted receives so blocked reapers wake with kConnectionLost.
  void fault_break(Vi* peer, sim::Time t);

  Status reap(std::deque<Descriptor*>& q, Descriptor*& out, bool block,
              std::chrono::milliseconds timeout);

  Nic& nic_;
  ViAttrs attrs_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  std::string conn_name_;  // written during establishment only
  std::shared_ptr<Channel> chan_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kIdle;
  std::deque<Descriptor*> recv_posted_;
  std::deque<Descriptor*> recv_done_q_;
  std::deque<Descriptor*> send_done_q_;
};

/// Accept side of connection establishment (VipConnectWait+Accept). Binding
/// is through the fabric name service under "via:<service>".
class Listener {
 public:
  Listener(Nic& nic, std::string service);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Wait for a connection request and bind it to `vi` (which must be idle).
  [[nodiscard]] Status accept(Vi& vi, std::chrono::milliseconds timeout);

  /// Wait for a request and refuse it.
  [[nodiscard]] Status reject(std::chrono::milliseconds timeout);

  const std::string& service() const { return service_; }

 private:
  friend class Nic;
  struct Request {
    Vi* client_vi = nullptr;
    sim::Time client_time = 0;
    // Rendezvous state, under the request's OWN mutex — never the
    // listener's. The request outlives the exchange (it sits on the
    // connecting thread's stack until `done`), the listener need not: its
    // accept loop can destroy it (stack unwind on shutdown or crash) while
    // connectors are still waiting, so a waiter must never need to touch
    // listener memory to wake up or to finish waking up.
    std::mutex mu;
    bool done = false;
    bool accepted = false;
    sim::Time server_time = 0;
    std::condition_variable cv;
  };

  Status take_request(Request*& out, std::chrono::milliseconds timeout);

  Nic& nic_;
  std::string service_;
  std::string key_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> pending_;
  bool closed_ = false;
};

}  // namespace via
