#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "via/descriptor.hpp"
#include "via/types.hpp"

namespace via {

class Vi;

/// One reaped work completion: which VI, which descriptor, which queue.
struct Completion {
  Vi* vi = nullptr;
  Descriptor* desc = nullptr;
  bool is_recv = false;
};

/// A VIA completion queue: multiple VIs' work queues can funnel their
/// completions into one CQ so a server thread can wait on many connections
/// at once (this is how the DAFS server and the MPI progress engine multiplex
/// sessions). Reaping a completion charges the reaper the per-completion cost
/// and synchronizes its virtual clock with the completion instant; reaping a
/// send-side completion also records the doorbell->reap latency into the
/// fabric's "via.doorbell_to_reap_ns" histogram.
class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t depth = 4096) : depth_(depth) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Block (real time) until a completion is available or `timeout` expires.
  [[nodiscard]] Status wait(Completion& out, std::chrono::milliseconds timeout);

  /// Non-blocking reap; kNotDone when empty.
  [[nodiscard]] Status poll(Completion& out);

  std::size_t pending() const {
    std::lock_guard lock(mu_);
    return q_.size();
  }

  std::size_t depth() const { return depth_; }

 private:
  friend class Vi;
  void push(const Completion& c);
  Status finish_reap(Completion& out);  // charges reap cost; mu_ NOT held

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> q_;
  std::size_t depth_;
};

}  // namespace via
