#pragma once

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "dafs/mount.hpp"
#include "sim/stats.hpp"

namespace mpiio {

/// MPI_Info: string key/value hints. The keys this implementation honours
/// (ROMIO-compatible names):
///   cb_buffer_size       two-phase collective buffer per aggregator (bytes)
///   cb_nodes             number of aggregator ranks
///   romio_cb_read        "enable" | "disable" | "automatic"
///   romio_cb_write       "enable" | "disable" | "automatic"
///   ind_rd_buffer_size   data-sieving read buffer (bytes)
///   ind_wr_buffer_size   data-sieving write buffer (bytes)
///   romio_ds_read        "enable" | "disable" | "automatic"
///   romio_ds_write       "enable" | "disable" | "automatic"
class Info {
 public:
  Info() = default;

  void set(const std::string& key, const std::string& value) {
    kv_[key] = value;
  }
  void set(const std::string& key, std::uint64_t value) {
    kv_[key] = std::to_string(value);
  }

  std::optional<std::string> get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  /// Numeric hint. A malformed or overflowing value is an application bug,
  /// not a reason to abort the rank: it counts as a bad hint (see
  /// bad_hints() / the "mpiio.bad_hint" stat) and the fallback applies, the
  /// same as an absent key.
  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    std::uint64_t out = 0;
    const char* first = v->data();
    const char* last = first + v->size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || first == last) {
      note_bad_hint();
      return fallback;
    }
    return out;
  }

  /// Tri-state hint: returns fallback for "automatic"/absent.
  bool get_switch(const std::string& key, bool fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    if (*v == "enable" || *v == "true") return true;
    if (*v == "disable" || *v == "false") return false;
    return fallback;
  }

  const std::map<std::string, std::string>& all() const { return kv_; }

  /// Hint values that failed to parse so far (monotone; also mirrored into
  /// the bound fabric stats as "mpiio.bad_hint" when a sink is attached).
  std::uint64_t bad_hints() const { return bad_hints_; }

  /// Attach a fabric stats sink so bad-hint events surface in the unified
  /// metrics; File::open binds its copy to the world's fabric.
  void bind_stats(sim::Stats* stats) { stats_ = stats; }

 private:
  void note_bad_hint() const {
    ++bad_hints_;
    if (stats_ != nullptr) stats_->add("mpiio.bad_hint");
  }

  std::map<std::string, std::string> kv_;
  mutable std::uint64_t bad_hints_ = 0;
  sim::Stats* stats_ = nullptr;
};

/// Parse the consolidated `dafs_*` retry hints into the one dafs::RetryPolicy
/// shared by client reconnect/failover, the server replication channel and
/// per-request deadlines. Absent hints keep `base`'s values:
///   dafs_retry_attempts        reconnect/resume attempts per endpoint
///   dafs_retry_backoff_ns      base of the jittered exponential backoff
///   dafs_retry_backoff_cap_ns  backoff cap
///   dafs_retry_jitter_seed     backoff jitter RNG seed
///   dafs_busy_retries          retransmissions of a kBusy-shed request
///   dafs_deadline_ms           per-request deadline (milliseconds, 0 = none)
inline dafs::RetryPolicy parse_retry_policy(const Info& info,
                                            dafs::RetryPolicy base = {}) {
  dafs::RetryPolicy p = base;
  p.attempts = static_cast<int>(
      info.get_uint("dafs_retry_attempts", static_cast<std::uint64_t>(p.attempts)));
  p.backoff_ns = info.get_uint("dafs_retry_backoff_ns", p.backoff_ns);
  p.backoff_cap_ns = info.get_uint("dafs_retry_backoff_cap_ns", p.backoff_cap_ns);
  p.jitter_seed = info.get_uint("dafs_retry_jitter_seed", p.jitter_seed);
  p.max_busy_retries = static_cast<int>(info.get_uint(
      "dafs_busy_retries", static_cast<std::uint64_t>(p.max_busy_retries)));
  // The hint is in milliseconds but the policy is in nanoseconds; converting
  // unconditionally would round-trip base.deadline_ns through ms and
  // silently truncate a sub-ms deadline to 0 (= none) even with no hint set.
  if (info.get("dafs_deadline_ms")) {
    p.deadline_ns =
        info.get_uint("dafs_deadline_ms", p.deadline_ns / 1'000'000) *
        1'000'000;
  }
  return p;
}

/// Parse the `dafs_integrity` hint: "off" (default), "wire" (CRC-32C on
/// every data payload) or "full" (wire + server-side at-rest verification on
/// reads). Any other value is a bad hint and keeps `base`.
inline dafs::IntegrityMode parse_integrity_mode(
    const Info& info, dafs::IntegrityMode base = dafs::IntegrityMode::kOff) {
  const auto v = info.get("dafs_integrity");
  if (!v) return base;
  if (*v == "off") return dafs::IntegrityMode::kOff;
  if (*v == "wire") return dafs::IntegrityMode::kWire;
  if (*v == "full") return dafs::IntegrityMode::kFull;
  // Reuse the numeric-hint failure accounting for the malformed enum.
  (void)info.get_uint("dafs_integrity", 0);
  return base;
}

/// Parse a full mount description. `dafs_endpoints` is a comma-separated,
/// ordered list of filer service names (first = preferred primary, the rest
/// failover targets); tokens are whitespace-trimmed and duplicates dropped,
/// and every endpoint gets the policy from parse_retry_policy. Absent/empty
/// hint: `base`'s endpoints (re-policied), or one default endpoint at
/// base.client.service.
///
/// Striping hints (the layout the striped dafs::Client mounts with):
///   dafs_stripe_size    stripe width in bytes (default: base's, 64 KiB)
///   dafs_stripe_count   K > 1 turns the first K `dafs_endpoints` entries
///                       into the data-server list; metadata stays on the
///                       first endpoint (filer 0), Lustre-style.
inline dafs::MountSpec parse_mount_spec(const Info& info,
                                        dafs::MountSpec base = {}) {
  dafs::MountSpec m = std::move(base);
  const dafs::RetryPolicy p = parse_retry_policy(
      info, m.endpoints.empty() ? dafs::RetryPolicy{} : m.endpoints[0].retry);
  const auto eps = info.get("dafs_endpoints");
  if (eps && !eps->empty()) {
    m.endpoints.clear();
    std::size_t start = 0;
    while (start <= eps->size()) {
      std::size_t comma = eps->find(',', start);
      if (comma == std::string::npos) comma = eps->size();
      std::string name = eps->substr(start, comma - start);
      // Trim surrounding whitespace ("a, b" must not yield an endpoint
      // named " b" that can never resolve) and drop duplicate names.
      const auto b = name.find_first_not_of(" \t");
      const auto e = name.find_last_not_of(" \t");
      name = b == std::string::npos ? std::string{}
                                    : name.substr(b, e - b + 1);
      const bool dup = std::any_of(
          m.endpoints.begin(), m.endpoints.end(),
          [&](const dafs::Endpoint& ep) { return ep.service == name; });
      if (!name.empty() && !dup) {
        m.endpoints.push_back(dafs::Endpoint{std::move(name), p});
      }
      start = comma + 1;
    }
  }
  if (m.endpoints.empty()) {
    m.endpoints.push_back(dafs::Endpoint{m.client.service, p});
  } else {
    for (auto& e : m.endpoints) e.retry = p;
  }
  m.client.integrity = parse_integrity_mode(info, m.client.integrity);
  m.stripe_size = info.get_uint("dafs_stripe_size", m.stripe_size);
  if (m.stripe_size == 0) m.stripe_size = dafs::kDefaultStripeSize;
  const std::uint64_t sc =
      info.get_uint("dafs_stripe_count",
                    static_cast<std::uint64_t>(m.data_endpoints.size()));
  if (sc > 1) {
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(sc), m.endpoints.size());
    m.data_endpoints.assign(m.endpoints.begin(), m.endpoints.begin() + k);
    // Metadata (and its failover chain, if any) stays on filer 0.
    m.endpoints.resize(1);
  }
  for (auto& e : m.data_endpoints) e.retry = p;
  return m;
}

}  // namespace mpiio
