#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace mpiio {

/// MPI_Info: string key/value hints. The keys this implementation honours
/// (ROMIO-compatible names):
///   cb_buffer_size       two-phase collective buffer per aggregator (bytes)
///   cb_nodes             number of aggregator ranks
///   romio_cb_read        "enable" | "disable" | "automatic"
///   romio_cb_write       "enable" | "disable" | "automatic"
///   ind_rd_buffer_size   data-sieving read buffer (bytes)
///   ind_wr_buffer_size   data-sieving write buffer (bytes)
///   romio_ds_read        "enable" | "disable" | "automatic"
///   romio_ds_write       "enable" | "disable" | "automatic"
class Info {
 public:
  Info() = default;

  void set(const std::string& key, const std::string& value) {
    kv_[key] = value;
  }
  void set(const std::string& key, std::uint64_t value) {
    kv_[key] = std::to_string(value);
  }

  std::optional<std::string> get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    return std::stoull(*v);
  }

  /// Tri-state hint: returns fallback for "automatic"/absent.
  bool get_switch(const std::string& key, bool fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    if (*v == "enable" || *v == "true") return true;
    if (*v == "disable" || *v == "false") return false;
    return fallback;
  }

  const std::map<std::string, std::string>& all() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace mpiio
