#pragma once

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dafs/mount.hpp"
#include "sim/stats.hpp"

namespace mpiio {

/// MPI_Info: string key/value hints. The ROMIO-compatible keys this
/// implementation honours:
///   cb_buffer_size       two-phase collective buffer per aggregator (bytes)
///   cb_nodes             number of aggregator ranks
///   romio_cb_read        "enable" | "disable" | "automatic"
///   romio_cb_write       "enable" | "disable" | "automatic"
///   ind_rd_buffer_size   data-sieving read buffer (bytes)
///   ind_wr_buffer_size   data-sieving write buffer (bytes)
///   romio_ds_read        "enable" | "disable" | "automatic"
///   romio_ds_write       "enable" | "disable" | "automatic"
/// Every DAFS-specific (`dafs_*`) hint parses through mpiio::HintSet below;
/// kDafsHints is the authoritative table.
class Info {
 public:
  Info() = default;

  void set(const std::string& key, const std::string& value) {
    kv_[key] = value;
  }
  void set(const std::string& key, std::uint64_t value) {
    kv_[key] = std::to_string(value);
  }

  std::optional<std::string> get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  /// Numeric hint. A malformed or overflowing value is an application bug,
  /// not a reason to abort the rank: it counts as a bad hint (see
  /// bad_hints() / the "mpiio.bad_hint" stat) and the fallback applies, the
  /// same as an absent key. Trailing garbage ("64k", "4MB") is malformed —
  /// suffixed sizes are not part of the hint grammar.
  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    std::uint64_t out = 0;
    const char* first = v->data();
    const char* last = first + v->size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || first == last) {
      note_bad_hint();
      return fallback;
    }
    return out;
  }

  /// Tri-state hint: returns fallback for "automatic"/absent.
  bool get_switch(const std::string& key, bool fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    if (*v == "enable" || *v == "true") return true;
    if (*v == "disable" || *v == "false") return false;
    return fallback;
  }

  const std::map<std::string, std::string>& all() const { return kv_; }

  /// Hint values that failed to parse so far (monotone; also mirrored into
  /// the bound fabric stats as "mpiio.bad_hint" when a sink is attached).
  std::uint64_t bad_hints() const { return bad_hints_; }

  /// Attach a fabric stats sink so bad-hint events surface in the unified
  /// metrics; File::open binds its copy to the world's fabric.
  void bind_stats(sim::Stats* stats) { stats_ = stats; }

  /// Count one bad hint. Public because HintSet's validators (unknown
  /// `dafs_*` keys, malformed enum values) report through the same channel
  /// the numeric path uses.
  void note_bad_hint() const {
    ++bad_hints_;
    if (stats_ != nullptr) stats_->add("mpiio.bad_hint");
  }

 private:
  std::map<std::string, std::string> kv_;
  mutable std::uint64_t bad_hints_ = 0;
  sim::Stats* stats_ = nullptr;
};

// ---------------------------------------------------------------------------
// HintSet: the single typed parse point for every `dafs_*` hint.
// ---------------------------------------------------------------------------

/// Value grammar of a `dafs_*` hint; drives per-key validation in
/// HintSet::parse.
enum class HintKind : std::uint8_t {
  kUint,  // base-10 unsigned integer, nothing else (no size suffixes)
  kEnum,  // one of a fixed word set
  kList,  // comma-separated names, whitespace-trimmed, duplicates dropped
};

struct HintDesc {
  std::string_view key;
  HintKind kind;
  std::string_view doc;
};

/// The authoritative table of every `dafs_*` hint this implementation
/// honours — parsing, validation and documentation all come from here. A
/// `dafs_*` key NOT in this table is a bad hint (typo'd hints should be
/// loud, not silently inert), as is any value that fails its kind's grammar;
/// both bump Info::bad_hints() / "mpiio.bad_hint" and fall back as if the
/// key were absent.
///
///   key                        kind   meaning
///   -------------------------  -----  ------------------------------------
///   dafs_endpoints             list   filer services; first = metadata /
///                                     preferred primary, rest failover
///   dafs_stripe_size           uint   stripe width in bytes (0 = default,
///                                     64 KiB); also aligns collective
///                                     file domains
///   dafs_stripe_count          uint   K > 1: first K endpoints become the
///                                     data-server stripe set
///   dafs_retry_attempts        uint   reconnect/resume attempts per endpoint
///   dafs_retry_backoff_ns      uint   base of the jittered exponential
///                                     backoff
///   dafs_retry_backoff_cap_ns  uint   backoff cap
///   dafs_retry_jitter_seed     uint   backoff jitter RNG seed
///   dafs_busy_retries          uint   retransmissions of a kBusy-shed
///                                     request
///   dafs_deadline_ms           uint   per-request deadline, ms (0 = none)
///   dafs_integrity             enum   off | wire | full (CRC-32C coverage)
///   dafs_trace_sample          uint   root a trace span every k-th
///                                     operation (0 = never)
///   dafs_consistency           enum   after_write | after_close | after_job
///                                     (client cache consistency level)
///   dafs_cache_bytes           uint   per-open-file client cache budget in
///                                     bytes; 0 = caching (and delegation
///                                     requests) off
///   dafs_attr_ttl_ms           uint   attribute-cache TTL under a
///                                     delegation, ms (0 = always
///                                     revalidate)
inline constexpr HintDesc kDafsHints[] = {
    {"dafs_endpoints", HintKind::kList, "filer service list"},
    {"dafs_stripe_size", HintKind::kUint, "stripe width (bytes)"},
    {"dafs_stripe_count", HintKind::kUint, "data-server count"},
    {"dafs_retry_attempts", HintKind::kUint, "attempts per endpoint"},
    {"dafs_retry_backoff_ns", HintKind::kUint, "backoff base (ns)"},
    {"dafs_retry_backoff_cap_ns", HintKind::kUint, "backoff cap (ns)"},
    {"dafs_retry_jitter_seed", HintKind::kUint, "jitter RNG seed"},
    {"dafs_busy_retries", HintKind::kUint, "kBusy retransmissions"},
    {"dafs_deadline_ms", HintKind::kUint, "request deadline (ms)"},
    {"dafs_integrity", HintKind::kEnum, "off | wire | full"},
    {"dafs_trace_sample", HintKind::kUint, "trace every k-th op"},
    {"dafs_consistency", HintKind::kEnum,
     "after_write | after_close | after_job"},
    {"dafs_cache_bytes", HintKind::kUint, "client cache budget (bytes)"},
    {"dafs_attr_ttl_ms", HintKind::kUint, "attr-cache TTL (ms)"},
};

/// Every `dafs_*` hint, parsed once and validated per kDafsHints, exposed as
/// the typed values the layers below consume: a dafs::RetryPolicy, a
/// dafs::IntegrityMode, a dafs::MountSpec and the dafs::OpenOptions that
/// select the client cache's consistency level. "Absent keeps the base
/// value" holds per key, so a HintSet layered over an existing policy or
/// mount spec only overrides what the application actually set.
class HintSet {
 public:
  /// THE parse point. Walks every key in `info`: known `dafs_*` hints
  /// validate against their kind, unknown `dafs_*` keys and malformed
  /// values both count as bad hints. Non-`dafs_*` (ROMIO) keys are not
  /// this layer's business and pass untouched.
  static HintSet parse(const Info& info) {
    HintSet h;
    for (const auto& [key, value] : info.all()) {
      if (!key.starts_with("dafs_")) continue;
      const HintDesc* d = find_desc(key);
      if (d == nullptr) {
        info.note_bad_hint();
        continue;
      }
      h.apply(*d, value, info);
    }
    return h;
  }

  /// The consolidated retry/deadline policy shared by client
  /// reconnect/failover, the server replication channel and per-request
  /// deadlines. Absent hints keep `base`'s values; in particular an absent
  /// dafs_deadline_ms must not round-trip base.deadline_ns through
  /// milliseconds (a sub-ms deadline would silently truncate to 0 = none).
  dafs::RetryPolicy retry_policy(dafs::RetryPolicy base = {}) const {
    dafs::RetryPolicy p = base;
    if (retry_attempts_) p.attempts = static_cast<int>(*retry_attempts_);
    if (retry_backoff_ns_) p.backoff_ns = *retry_backoff_ns_;
    if (retry_backoff_cap_ns_) p.backoff_cap_ns = *retry_backoff_cap_ns_;
    if (retry_jitter_seed_) p.jitter_seed = *retry_jitter_seed_;
    if (busy_retries_) p.max_busy_retries = static_cast<int>(*busy_retries_);
    if (deadline_ms_) p.deadline_ns = *deadline_ms_ * 1'000'000;
    return p;
  }

  /// dafs_integrity: "off" (default), "wire" (CRC-32C on every data
  /// payload) or "full" (wire + at-rest verification on reads).
  dafs::IntegrityMode integrity_mode(
      dafs::IntegrityMode base = dafs::IntegrityMode::kOff) const {
    return integrity_.value_or(base);
  }

  /// A full mount description. dafs_endpoints (already trimmed/deduped at
  /// parse) replaces `base`'s endpoint list when non-empty; every endpoint
  /// gets retry_policy(). dafs_stripe_count K > 1 carves the first K
  /// endpoints into the data-server list, metadata staying on the first
  /// endpoint (filer 0), Lustre-style.
  dafs::MountSpec mount_spec(dafs::MountSpec base = {}) const {
    dafs::MountSpec m = std::move(base);
    const dafs::RetryPolicy p = retry_policy(
        m.endpoints.empty() ? dafs::RetryPolicy{} : m.endpoints[0].retry);
    if (!endpoints_.empty()) {
      m.endpoints.clear();
      for (const auto& name : endpoints_) {
        m.endpoints.push_back(dafs::Endpoint{name, p});
      }
    }
    if (m.endpoints.empty()) {
      m.endpoints.push_back(dafs::Endpoint{m.client.service, p});
    } else {
      for (auto& e : m.endpoints) e.retry = p;
    }
    m.client.integrity = integrity_mode(m.client.integrity);
    if (stripe_size_) m.stripe_size = *stripe_size_;
    if (m.stripe_size == 0) m.stripe_size = dafs::kDefaultStripeSize;
    const std::uint64_t sc = stripe_count_.value_or(
        static_cast<std::uint64_t>(m.data_endpoints.size()));
    if (sc > 1) {
      const std::size_t k = std::min<std::size_t>(
          static_cast<std::size_t>(sc), m.endpoints.size());
      m.data_endpoints.assign(m.endpoints.begin(), m.endpoints.begin() + k);
      // Metadata (and its failover chain, if any) stays on filer 0.
      m.endpoints.resize(1);
    }
    for (auto& e : m.data_endpoints) e.retry = p;
    return m;
  }

  /// The typed open-path options for dafs::Client::open: consistency level,
  /// cache budget and attribute TTL. `flags` are the kOpen* protocol flags
  /// the caller computed from the access mode.
  dafs::OpenOptions open_options(std::uint16_t flags = 0) const {
    dafs::OpenOptions o;
    o.flags = flags;
    o.consistency = consistency_.value_or(dafs::Consistency::kAfterWrite);
    o.cache_bytes = cache_bytes_.value_or(0);
    o.attr_ttl_ns = attr_ttl_ms_.value_or(0) * 1'000'000;
    return o;
  }

  /// dafs_trace_sample: root spans on every k-th operation (0 = never).
  std::uint64_t trace_sample() const { return trace_sample_.value_or(1); }

  /// dafs_stripe_size with an explicit fallback (the collective layer
  /// passes the driver's own layout width).
  std::uint64_t stripe_size_or(std::uint64_t fallback) const {
    return stripe_size_.value_or(fallback);
  }

  /// True when the application asked for a client cache at all — the open
  /// path only threads OpenOptions to drivers that can use them.
  bool wants_cache() const { return cache_bytes_.value_or(0) > 0; }

 private:
  static const HintDesc* find_desc(std::string_view key) {
    for (const auto& d : kDafsHints) {
      if (d.key == key) return &d;
    }
    return nullptr;
  }

  static std::optional<std::uint64_t> to_uint(std::string_view v) {
    std::uint64_t out = 0;
    const char* first = v.data();
    const char* last = first + v.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || first == last) {
      return std::nullopt;
    }
    return out;
  }

  void apply(const HintDesc& d, const std::string& value, const Info& info) {
    switch (d.kind) {
      case HintKind::kUint: {
        const auto u = to_uint(value);
        if (!u) {
          info.note_bad_hint();
          return;
        }
        if (d.key == "dafs_stripe_size") stripe_size_ = *u;
        else if (d.key == "dafs_stripe_count") stripe_count_ = *u;
        else if (d.key == "dafs_retry_attempts") retry_attempts_ = *u;
        else if (d.key == "dafs_retry_backoff_ns") retry_backoff_ns_ = *u;
        else if (d.key == "dafs_retry_backoff_cap_ns") retry_backoff_cap_ns_ = *u;
        else if (d.key == "dafs_retry_jitter_seed") retry_jitter_seed_ = *u;
        else if (d.key == "dafs_busy_retries") busy_retries_ = *u;
        else if (d.key == "dafs_deadline_ms") deadline_ms_ = *u;
        else if (d.key == "dafs_trace_sample") trace_sample_ = *u;
        else if (d.key == "dafs_cache_bytes") cache_bytes_ = *u;
        else if (d.key == "dafs_attr_ttl_ms") attr_ttl_ms_ = *u;
        return;
      }
      case HintKind::kEnum: {
        if (d.key == "dafs_integrity") {
          if (value == "off") integrity_ = dafs::IntegrityMode::kOff;
          else if (value == "wire") integrity_ = dafs::IntegrityMode::kWire;
          else if (value == "full") integrity_ = dafs::IntegrityMode::kFull;
          else info.note_bad_hint();
        } else {  // dafs_consistency
          if (value == "after_write") {
            consistency_ = dafs::Consistency::kAfterWrite;
          } else if (value == "after_close") {
            consistency_ = dafs::Consistency::kAfterClose;
          } else if (value == "after_job") {
            consistency_ = dafs::Consistency::kAfterJob;
          } else {
            info.note_bad_hint();
          }
        }
        return;
      }
      case HintKind::kList: {
        // dafs_endpoints: trim surrounding whitespace ("a, b" must not
        // yield an endpoint named " b" that can never resolve) and drop
        // duplicate names. An all-junk list parses to empty = absent.
        std::size_t start = 0;
        while (start <= value.size()) {
          std::size_t comma = value.find(',', start);
          if (comma == std::string::npos) comma = value.size();
          std::string name = value.substr(start, comma - start);
          const auto b = name.find_first_not_of(" \t");
          const auto e = name.find_last_not_of(" \t");
          name = b == std::string::npos ? std::string{}
                                        : name.substr(b, e - b + 1);
          const bool dup = std::any_of(
              endpoints_.begin(), endpoints_.end(),
              [&](const std::string& s) { return s == name; });
          if (!name.empty() && !dup) endpoints_.push_back(std::move(name));
          start = comma + 1;
        }
        return;
      }
    }
  }

  std::optional<std::uint64_t> retry_attempts_;
  std::optional<std::uint64_t> retry_backoff_ns_;
  std::optional<std::uint64_t> retry_backoff_cap_ns_;
  std::optional<std::uint64_t> retry_jitter_seed_;
  std::optional<std::uint64_t> busy_retries_;
  std::optional<std::uint64_t> deadline_ms_;
  std::optional<dafs::IntegrityMode> integrity_;
  std::vector<std::string> endpoints_;
  std::optional<std::uint64_t> stripe_size_;
  std::optional<std::uint64_t> stripe_count_;
  std::optional<std::uint64_t> trace_sample_;
  std::optional<dafs::Consistency> consistency_;
  std::optional<std::uint64_t> cache_bytes_;
  std::optional<std::uint64_t> attr_ttl_ms_;
};

}  // namespace mpiio
