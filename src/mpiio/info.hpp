#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "dafs/mount.hpp"

namespace mpiio {

/// MPI_Info: string key/value hints. The keys this implementation honours
/// (ROMIO-compatible names):
///   cb_buffer_size       two-phase collective buffer per aggregator (bytes)
///   cb_nodes             number of aggregator ranks
///   romio_cb_read        "enable" | "disable" | "automatic"
///   romio_cb_write       "enable" | "disable" | "automatic"
///   ind_rd_buffer_size   data-sieving read buffer (bytes)
///   ind_wr_buffer_size   data-sieving write buffer (bytes)
///   romio_ds_read        "enable" | "disable" | "automatic"
///   romio_ds_write       "enable" | "disable" | "automatic"
class Info {
 public:
  Info() = default;

  void set(const std::string& key, const std::string& value) {
    kv_[key] = value;
  }
  void set(const std::string& key, std::uint64_t value) {
    kv_[key] = std::to_string(value);
  }

  std::optional<std::string> get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    return std::stoull(*v);
  }

  /// Tri-state hint: returns fallback for "automatic"/absent.
  bool get_switch(const std::string& key, bool fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    if (*v == "enable" || *v == "true") return true;
    if (*v == "disable" || *v == "false") return false;
    return fallback;
  }

  const std::map<std::string, std::string>& all() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

/// Parse the consolidated `dafs_*` retry hints into the one dafs::RetryPolicy
/// shared by client reconnect/failover, the server replication channel and
/// per-request deadlines. Absent hints keep `base`'s values:
///   dafs_retry_attempts        reconnect/resume attempts per endpoint
///   dafs_retry_backoff_ns      base of the jittered exponential backoff
///   dafs_retry_backoff_cap_ns  backoff cap
///   dafs_retry_jitter_seed     backoff jitter RNG seed
///   dafs_busy_retries          retransmissions of a kBusy-shed request
///   dafs_deadline_ms           per-request deadline (milliseconds, 0 = none)
inline dafs::RetryPolicy parse_retry_policy(const Info& info,
                                            dafs::RetryPolicy base = {}) {
  dafs::RetryPolicy p = base;
  p.attempts = static_cast<int>(
      info.get_uint("dafs_retry_attempts", static_cast<std::uint64_t>(p.attempts)));
  p.backoff_ns = info.get_uint("dafs_retry_backoff_ns", p.backoff_ns);
  p.backoff_cap_ns = info.get_uint("dafs_retry_backoff_cap_ns", p.backoff_cap_ns);
  p.jitter_seed = info.get_uint("dafs_retry_jitter_seed", p.jitter_seed);
  p.max_busy_retries = static_cast<int>(info.get_uint(
      "dafs_busy_retries", static_cast<std::uint64_t>(p.max_busy_retries)));
  p.deadline_ns =
      info.get_uint("dafs_deadline_ms", p.deadline_ns / 1'000'000) * 1'000'000;
  return p;
}

/// Parse a full mount description. `dafs_endpoints` is a comma-separated,
/// ordered list of filer service names (first = preferred primary, the rest
/// failover targets); every endpoint gets the policy from
/// parse_retry_policy. Absent/empty hint: `base`'s endpoints (re-policied),
/// or one default endpoint at base.client.service.
inline dafs::MountSpec parse_mount_spec(const Info& info,
                                        dafs::MountSpec base = {}) {
  dafs::MountSpec m = std::move(base);
  const dafs::RetryPolicy p = parse_retry_policy(
      info, m.endpoints.empty() ? dafs::RetryPolicy{} : m.endpoints[0].retry);
  const auto eps = info.get("dafs_endpoints");
  if (eps && !eps->empty()) {
    m.endpoints.clear();
    std::size_t start = 0;
    while (start <= eps->size()) {
      std::size_t comma = eps->find(',', start);
      if (comma == std::string::npos) comma = eps->size();
      std::string name = eps->substr(start, comma - start);
      if (!name.empty()) m.endpoints.push_back(dafs::Endpoint{std::move(name), p});
      start = comma + 1;
    }
  }
  if (m.endpoints.empty()) {
    m.endpoints.push_back(dafs::Endpoint{m.client.service, p});
  } else {
    for (auto& e : m.endpoints) e.retry = p;
  }
  return m;
}

}  // namespace mpiio
