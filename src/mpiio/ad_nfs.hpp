#pragma once

#include <memory>

#include "mpiio/adio.hpp"
#include "nfs/client.hpp"

namespace mpiio {

/// Baseline driver: MPI-IO over the kernel-NFS-like client. Every byte is
/// copied through RPC payloads and the TCP stack; no locks, no shared
/// counters (classic NFS mounts lacked usable NLM for this), so the
/// portable layer falls back to strategies that avoid them.
class AdNfs final : public AdioDriver {
 public:
  explicit AdNfs(nfs::Client& client) : c_(client) {}

  Err open(const std::string& path, std::uint16_t open_flags) override {
    auto r = c_.open(path, open_flags);
    if (!r.ok()) return r.error();
    ino_ = r.value();
    return Err::kOk;
  }

  Err close() override {
    ino_ = fstore::kInvalidIno;
    return Err::kOk;
  }

  Err remove(const std::string& path) override { return c_.remove(path); }

  Result<std::uint64_t> pread(std::uint64_t off,
                              std::span<std::byte> out) override {
    return c_.pread(ino_, off, out);
  }
  Result<std::uint64_t> pwrite(std::uint64_t off,
                               std::span<const std::byte> in) override {
    return c_.pwrite(ino_, off, in);
  }

  Result<std::uint64_t> size() override {
    auto a = c_.getattr(ino_);
    if (!a.ok()) return a.error();
    return a.value().size;
  }
  Err set_size(std::uint64_t size) override { return c_.set_size(ino_, size); }
  Err sync() override { return c_.sync(ino_); }

  Err lock(std::uint64_t, std::uint64_t, bool) override { return Err::kInval; }
  Err unlock(std::uint64_t, std::uint64_t) override { return Err::kInval; }
  bool supports_locks() const override { return false; }

  Result<std::uint64_t> counter_fetch_add(const std::string&,
                                          std::uint64_t) override {
    return Err::kInval;
  }
  Err counter_set(const std::string&, std::uint64_t) override {
    return Err::kInval;
  }
  bool supports_counters() const override { return false; }

  const char* name() const override { return "nfs"; }

 private:
  nfs::Client& c_;
  fstore::Ino ino_ = fstore::kInvalidIno;
};

inline std::unique_ptr<AdioDriver> nfs_driver(nfs::Client& client) {
  return std::make_unique<AdNfs>(client);
}

}  // namespace mpiio
