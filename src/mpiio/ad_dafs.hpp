#pragma once

#include <memory>

#include "dafs/client.hpp"
#include "mpiio/adio.hpp"

namespace mpiio {

/// The paper's contribution in driver form: MPI-IO over a uDAFS session.
/// Large/contiguous accesses become DAFS direct I/O (server-driven RDMA,
/// zero client copies); list I/O maps onto a single batched direct request;
/// locks and shared counters come from the DAFS server, so sieving writes,
/// atomic mode and shared file pointers all work without extra
/// infrastructure. The endpoint is borrowed (one per rank, owned by the app).
///
/// Templated over the endpoint type: a plain dafs::Session (single filer) or
/// the striped dafs::Client (multi-filer layouts). Both expose the same
/// open/pread/batch/lock/counter surface; the Client additionally reports
/// its stripe width so the collective layer can align file domains.
template <typename S>
class AdDafsT final : public AdioDriver {
 public:
  explicit AdDafsT(S& session) : s_(session) {}

  Err open(const std::string& path, std::uint16_t open_flags) override {
    // The striped Client has the typed cache-aware open; a plain Session
    // does not, and falls back to the flags-only form. OpenOptions carry
    // the protocol flags, so the two paths stay equivalent when no cache
    // was requested.
    if constexpr (requires(dafs::OpenOptions o) { s_.open(path, o); }) {
      dafs::OpenOptions o = opts_;
      o.flags = open_flags;
      auto r = s_.open(path, o);
      if (!r.ok()) return r.error();
      fh_ = r.value();
    } else {
      auto r = s_.open(path, open_flags);
      if (!r.ok()) return r.error();
      fh_ = r.value();
    }
    path_ = path;
    return Err::kOk;
  }

  Err close() override {
    if constexpr (requires { s_.close(fh_); }) {
      s_.close(fh_);
    }
    fh_ = dafs::Fh{};
    return Err::kOk;
  }

  Err remove(const std::string& path) override { return s_.remove(path); }

  Result<std::uint64_t> pread(std::uint64_t off,
                              std::span<std::byte> out) override {
    return s_.pread(fh_, off, out);
  }
  Result<std::uint64_t> pwrite(std::uint64_t off,
                               std::span<const std::byte> in) override {
    return s_.pwrite(fh_, off, in);
  }

  Result<std::uint64_t> read_list(std::span<const IoSeg> segs) override;
  Result<std::uint64_t> write_list(std::span<const IoSeg> segs) override;

  Result<AioHandle> submit_pread(std::uint64_t off,
                                 std::span<std::byte> out) override {
    auto r = s_.submit_pread(fh_, off, out);
    if (!r.ok()) return r.error();
    return static_cast<AioHandle>(r.value());
  }
  Result<AioHandle> submit_pwrite(std::uint64_t off,
                                  std::span<const std::byte> in) override {
    auto r = s_.submit_pwrite(fh_, off, in);
    if (!r.ok()) return r.error();
    return static_cast<AioHandle>(r.value());
  }
  Err aio_wait(AioHandle h, std::uint64_t* bytes) override {
    return s_.wait(static_cast<dafs::OpId>(h), bytes);
  }

  Result<std::uint64_t> size() override {
    auto a = s_.getattr(fh_);
    if (!a.ok()) return a.error();
    return a.value().size;
  }
  Err set_size(std::uint64_t size) override { return s_.set_size(fh_, size); }
  Err sync() override { return s_.sync(fh_); }

  Err lock(std::uint64_t off, std::uint64_t len, bool exclusive) override {
    return s_.lock(fh_, off, len, exclusive);
  }
  Err unlock(std::uint64_t off, std::uint64_t len) override {
    return s_.unlock(fh_, off, len);
  }
  bool supports_locks() const override { return true; }

  Result<std::uint64_t> counter_fetch_add(const std::string& key,
                                          std::uint64_t delta) override {
    return s_.fetch_add(key, delta);
  }
  Err counter_set(const std::string& key, std::uint64_t value) override {
    return s_.set_counter(key, value);
  }
  bool supports_counters() const override { return true; }

  void set_deadline(std::uint64_t ns) override { s_.set_deadline(ns); }

  void set_open_options(const dafs::OpenOptions& opts) override {
    opts_ = opts;
  }

  std::uint64_t stripe_size() const override {
    if constexpr (requires { s_.stripe_size(); }) {
      // Striped layouts matter to the collective layer only when data
      // actually spans multiple servers.
      return s_.data_servers() > 1 ? s_.stripe_size() : 0;
    } else {
      return 0;
    }
  }

  const char* name() const override { return "dafs"; }

 private:
  S& s_;
  dafs::Fh fh_;
  std::string path_;
  dafs::OpenOptions opts_;
};

using AdDafs = AdDafsT<dafs::Session>;

extern template class AdDafsT<dafs::Session>;
extern template class AdDafsT<dafs::Client>;

inline std::unique_ptr<AdioDriver> dafs_driver(dafs::Session& session) {
  return std::make_unique<AdDafsT<dafs::Session>>(session);
}

inline std::unique_ptr<AdioDriver> dafs_driver(dafs::Client& client) {
  return std::make_unique<AdDafsT<dafs::Client>>(client);
}

}  // namespace mpiio
