#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"
#include "mpiio/adio.hpp"
#include "mpiio/info.hpp"

/// \file file.hpp
/// The portable MPI-IO layer (the MPI-2 I/O chapter) over the ADIO drivers:
/// file views from derived datatypes, independent and collective reads and
/// writes (two-phase collective buffering), data sieving for noncontiguous
/// independent access, shared file pointers, nonblocking operations, hints
/// and atomic mode.
namespace mpiio {

// Access modes (MPI_MODE_*).
inline constexpr int kModeRdonly = 0x01;
inline constexpr int kModeRdwr = 0x02;
inline constexpr int kModeWronly = 0x04;
inline constexpr int kModeCreate = 0x08;
inline constexpr int kModeExcl = 0x10;
inline constexpr int kModeDeleteOnClose = 0x20;
inline constexpr int kModeAppend = 0x40;

enum class Whence : std::uint8_t { kSet, kCur, kEnd };

/// A nonblocking I/O request (MPI_Request for file ops).
struct Request {
  enum class Kind : std::uint8_t { kInvalid, kDriverAio, kDone };
  Kind kind = Kind::kInvalid;
  AioHandle handle = kInvalidAio;
  Err status = Err::kOk;
  std::uint64_t bytes = 0;
};

class File {
 public:
  /// Collective open. The driver instance is this rank's device connection.
  /// Rank 0 applies create/excl/trunc; the others open plain (ROMIO rule).
  static Result<std::unique_ptr<File>> open(const mpi::Comm& comm,
                                            std::string path, int amode,
                                            const Info& info,
                                            std::unique_ptr<AdioDriver> driver);
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Collective close (handles delete-on-close).
  Err close();

  // ---- views -----------------------------------------------------------------
  /// Collective. Offsets in subsequent calls are in units of `etype` within
  /// the view described by `filetype` displaced by `disp` bytes.
  Err set_view(std::uint64_t disp, const mpi::Datatype& etype,
               const mpi::Datatype& filetype, const Info& info = {});
  std::uint64_t view_disp() const { return disp_; }
  const mpi::Datatype& etype() const { return etype_; }
  const mpi::Datatype& filetype() const { return filetype_; }
  /// Absolute byte offset of a view offset (MPI_File_get_byte_offset).
  std::uint64_t byte_offset(std::uint64_t view_offset) const;

  // ---- independent I/O, explicit offsets (in etypes) ---------------------------
  Result<std::uint64_t> read_at(std::uint64_t offset, void* buf,
                                std::uint64_t count,
                                const mpi::Datatype& type);
  Result<std::uint64_t> write_at(std::uint64_t offset, const void* buf,
                                 std::uint64_t count,
                                 const mpi::Datatype& type);

  // ---- individual file pointer ---------------------------------------------------
  Result<std::uint64_t> read(void* buf, std::uint64_t count,
                             const mpi::Datatype& type);
  Result<std::uint64_t> write(const void* buf, std::uint64_t count,
                              const mpi::Datatype& type);
  Err seek(std::int64_t offset, Whence whence);
  std::uint64_t position() const { return pos_; }

  // ---- collective I/O -------------------------------------------------------------
  Result<std::uint64_t> read_at_all(std::uint64_t offset, void* buf,
                                    std::uint64_t count,
                                    const mpi::Datatype& type);
  Result<std::uint64_t> write_at_all(std::uint64_t offset, const void* buf,
                                     std::uint64_t count,
                                     const mpi::Datatype& type);
  Result<std::uint64_t> read_all(void* buf, std::uint64_t count,
                                 const mpi::Datatype& type);
  Result<std::uint64_t> write_all(const void* buf, std::uint64_t count,
                                  const mpi::Datatype& type);

  // ---- shared file pointer -----------------------------------------------------------
  Result<std::uint64_t> read_shared(void* buf, std::uint64_t count,
                                    const mpi::Datatype& type);
  Result<std::uint64_t> write_shared(const void* buf, std::uint64_t count,
                                     const mpi::Datatype& type);
  /// Collective, rank-ordered shared-pointer access.
  Result<std::uint64_t> read_ordered(void* buf, std::uint64_t count,
                                     const mpi::Datatype& type);
  Result<std::uint64_t> write_ordered(const void* buf, std::uint64_t count,
                                      const mpi::Datatype& type);
  Err seek_shared(std::int64_t offset, Whence whence);  // collective
  /// Current shared-pointer value, in etypes (MPI_File_get_position_shared).
  Result<std::uint64_t> position_shared();

  // ---- nonblocking ---------------------------------------------------------------------
  Result<Request> iread_at(std::uint64_t offset, void* buf,
                           std::uint64_t count, const mpi::Datatype& type);
  Result<Request> iwrite_at(std::uint64_t offset, const void* buf,
                            std::uint64_t count, const mpi::Datatype& type);
  Err wait(Request& req, std::uint64_t* bytes = nullptr);

  // ---- split collectives (MPI_File_..._at_all_begin/end) ---------------------------------
  /// One split collective may be outstanding per file (MPI-2 rule). The
  /// buffer must stay untouched between begin and end.
  Err read_at_all_begin(std::uint64_t offset, void* buf, std::uint64_t count,
                        const mpi::Datatype& type);
  Result<std::uint64_t> read_at_all_end(void* buf);
  Err write_at_all_begin(std::uint64_t offset, const void* buf,
                         std::uint64_t count, const mpi::Datatype& type);
  Result<std::uint64_t> write_at_all_end(const void* buf);

  // ---- management -------------------------------------------------------------------------
  Result<std::uint64_t> get_size();
  Err set_size(std::uint64_t size);   // collective
  Err preallocate(std::uint64_t size);
  Err sync();
  Err set_atomicity(bool atomic);
  bool atomicity() const { return atomic_; }
  const Info& info() const { return info_; }
  const mpi::Comm& comm() const { return comm_; }
  AdioDriver& driver() { return *driver_; }
  int amode() const { return amode_; }              // MPI_File_get_amode
  const std::string& path() const { return path_; }

 private:
  File(mpi::Comm comm, std::string path, int amode, Info info,
       std::unique_ptr<AdioDriver> driver);

  struct FileRun {
    std::uint64_t off;
    std::uint64_t len;
  };

  /// File-byte runs for `nbytes` of view data starting at view stream
  /// position `pos` (bytes of data within the view, not file bytes).
  std::vector<FileRun> map_view(std::uint64_t pos, std::uint64_t nbytes) const;

  /// Pair the file runs of an access with the memory runs of the buffer.
  std::vector<IoSeg> build_segs(std::uint64_t offset_etypes, std::byte* buf,
                                std::uint64_t count, const mpi::Datatype& type,
                                std::uint64_t* total_bytes) const;

  Result<std::uint64_t> independent_io(bool writing,
                                       std::uint64_t offset_etypes, void* buf,
                                       std::uint64_t count,
                                       const mpi::Datatype& type);
  Result<std::uint64_t> collective_io(bool writing,
                                      std::uint64_t offset_etypes, void* buf,
                                      std::uint64_t count,
                                      const mpi::Datatype& type);
  /// Fetch-add the shared file pointer by `total_etypes` on rank 0 and
  /// broadcast base + status, so a counter failure surfaces on every rank.
  Result<std::uint64_t> ordered_base(std::uint64_t total_etypes);
  /// Collective exit agreement: allreduce this rank's status with every
  /// other rank's and return the agreed verdict (the rank-local result when
  /// all succeeded). Every exit path of a collective operation must funnel
  /// through this so a rank whose transport died cannot strand its peers in
  /// a barrier, and so all ranks report the same error class.
  Result<std::uint64_t> finish_collective(Result<std::uint64_t> r);
  Result<std::uint64_t> sieved_read(std::vector<IoSeg> segs);
  Result<std::uint64_t> sieved_write(std::vector<IoSeg> segs);
  bool use_sieving(bool writing, const std::vector<IoSeg>& segs) const;
  /// Record `now - t0` into the fabric histogram `key` (no-op outside an
  /// ActorScope, where there is no virtual clock to read). When a trace is
  /// active on this thread, also records the phase as a span under it.
  void record_phase(const char* key, sim::Time t0) const;
  sim::Tracer& tracer() const;
  /// Should this operation open a root trace span? Consults the
  /// `dafs_trace_sample` hint: 0 never, k every k-th operation (default 1).
  bool trace_sampled() const;
  Err check_writable() const;
  Err check_readable() const;
  std::uint64_t etypes_of(std::uint64_t count, const mpi::Datatype& type) const;

  mpi::Comm comm_;
  std::string path_;
  int amode_;
  Info info_;
  /// Every dafs_* hint, parsed once at open (info is fixed for the file's
  /// lifetime); the collective and trace paths read from here instead of
  /// re-parsing strings per operation.
  HintSet hints_;
  std::unique_ptr<AdioDriver> driver_;

  // view
  std::uint64_t disp_ = 0;
  mpi::Datatype etype_;
  mpi::Datatype filetype_;
  std::vector<mpi::Segment> view_runs_;    // one filetype instance
  std::vector<std::uint64_t> view_prefix_; // cumulative data before run i
  std::uint64_t ft_size_ = 0;
  std::int64_t ft_extent_ = 0;
  bool trivial_view_ = true;  // byte-contiguous view

  std::uint64_t pos_ = 0;  // individual pointer, in etypes
  bool atomic_ = false;
  std::string sfp_key_;

  // Tracing: sampling interval from the dafs_trace_sample hint and the
  // per-file operation counter it divides.
  std::uint64_t trace_sample_ = 1;
  mutable std::uint64_t trace_ops_ = 0;

  // Split-collective state: the access runs at begin (the standard permits
  // completing the work at either call); end validates pairing and returns
  // the result.
  enum class SplitState : std::uint8_t { kNone, kRead, kWrite };
  SplitState split_state_ = SplitState::kNone;
  const void* split_buf_ = nullptr;
  Err split_err_ = Err::kOk;
  std::uint64_t split_bytes_ = 0;
};

}  // namespace mpiio
