#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dafs/mount.hpp"
#include "dafs/proto.hpp"
#include "sim/expected.hpp"

/// \file adio.hpp
/// The abstract device layer under the portable MPI-IO code (ROMIO's ADIO).
/// One driver instance exists per rank per open file; drivers wrap the
/// rank's file-access endpoint (DAFS session or NFS client).
namespace mpiio {

/// MPI-IO reuses the DAFS status vocabulary (both sides map fstore::Errc).
using Err = dafs::PStatus;

template <typename T>
using Result = sim::Expected<T, Err>;

/// MPI error classes (the MPI_ERR_* subset the I/O chapter raises). Driver
/// statuses collapse onto these before they reach application code, so a
/// DAFS session whose recovery exhausted its retries surfaces as the same
/// class on every rank (MPI_ERR_IO), not as a transport-specific code.
enum class ErrClass : std::uint8_t {
  kSuccess = 0,
  kArg,         // MPI_ERR_ARG: invalid parameter / unsupported feature
  kAmode,       // MPI_ERR_AMODE: access mode forbids the operation
  kNoSuchFile,  // MPI_ERR_NO_SUCH_FILE
  kFileExists,  // MPI_ERR_FILE_EXISTS
  kBadFile,     // MPI_ERR_BAD_FILE: not a usable file (directory, non-empty)
  kAccess,      // MPI_ERR_ACCESS: permission / lock denied
  kNoSpace,     // MPI_ERR_NO_SPACE: device or NIC resources exhausted
  kIo,          // MPI_ERR_IO: transport lost or backend storage failure
  kFile,        // MPI_ERR_FILE: the handle no longer names the file it was
                // opened on (server restarted and found it removed/replaced)
};

constexpr ErrClass error_class(Err e) {
  switch (e) {
    case Err::kOk: return ErrClass::kSuccess;
    case Err::kNoEnt: return ErrClass::kNoSuchFile;
    case Err::kExists: return ErrClass::kFileExists;
    case Err::kIsDir:
    case Err::kNotDir:
    case Err::kNotEmpty: return ErrClass::kBadFile;
    case Err::kInval: return ErrClass::kArg;
    case Err::kLockConflict: return ErrClass::kAccess;
    case Err::kNoResource: return ErrClass::kNoSpace;
    // A stale handle is not a transport hiccup: recovery reconnected fine but
    // the file truly changed underneath the open. MPI_ERR_FILE, not _IO.
    case Err::kStale: return ErrClass::kFile;
    case Err::kBadSession:
    case Err::kProtoError:
    case Err::kConnLost:
    case Err::kBusy:       // deadline/backpressure budget exhausted end-to-end
    case Err::kFenced:     // every endpoint deposed/unreachable
    case Err::kNotLeader:  // no reachable quorum leader: transport-class
    case Err::kCorrupt:    // checksum mismatch survived every retry: the
                           // data is gone, not the transport — still the
                           // I/O-failure class MPI applications handle
    case Err::kDelegExpired:  // a fenced write-back from a lapsed delegation
                              // holder: the cached bytes were discarded, the
                              // write did not happen
    case Err::kIo: return ErrClass::kIo;
  }
  return ErrClass::kIo;
}

constexpr const char* to_string(ErrClass c) {
  switch (c) {
    case ErrClass::kSuccess: return "MPI_SUCCESS";
    case ErrClass::kArg: return "MPI_ERR_ARG";
    case ErrClass::kAmode: return "MPI_ERR_AMODE";
    case ErrClass::kNoSuchFile: return "MPI_ERR_NO_SUCH_FILE";
    case ErrClass::kFileExists: return "MPI_ERR_FILE_EXISTS";
    case ErrClass::kBadFile: return "MPI_ERR_BAD_FILE";
    case ErrClass::kAccess: return "MPI_ERR_ACCESS";
    case ErrClass::kNoSpace: return "MPI_ERR_NO_SPACE";
    case ErrClass::kIo: return "MPI_ERR_IO";
    case ErrClass::kFile: return "MPI_ERR_FILE";
  }
  return "?";
}

/// One element of a list-I/O access: a file range paired with memory.
struct IoSeg {
  std::uint64_t file_off = 0;
  std::byte* mem = nullptr;
  std::uint64_t len = 0;
};

/// Handle for a driver-level asynchronous operation.
using AioHandle = std::uint64_t;
inline constexpr AioHandle kInvalidAio = ~0ull;

class AdioDriver {
 public:
  virtual ~AdioDriver() = default;

  virtual Err open(const std::string& path, std::uint16_t open_flags) = 0;
  virtual Err close() = 0;
  virtual Err remove(const std::string& path) = 0;

  virtual Result<std::uint64_t> pread(std::uint64_t off,
                                      std::span<std::byte> out) = 0;
  virtual Result<std::uint64_t> pwrite(std::uint64_t off,
                                       std::span<const std::byte> in) = 0;

  /// Scatter/gather list I/O. Default: one operation per segment; drivers
  /// with native batch support (DAFS) override.
  virtual Result<std::uint64_t> read_list(std::span<const IoSeg> segs);
  virtual Result<std::uint64_t> write_list(std::span<const IoSeg> segs);

  /// Asynchronous contiguous I/O. Default: synchronous execution at submit
  /// (completion at wait is immediate); the DAFS driver overrides with real
  /// overlapped operations.
  virtual Result<AioHandle> submit_pread(std::uint64_t off,
                                         std::span<std::byte> out);
  virtual Result<AioHandle> submit_pwrite(std::uint64_t off,
                                          std::span<const std::byte> in);
  virtual Err aio_wait(AioHandle h, std::uint64_t* bytes);

  virtual Result<std::uint64_t> size() = 0;
  virtual Err set_size(std::uint64_t size) = 0;
  virtual Err sync() = 0;

  /// Byte-range locks (needed for read-modify-write sieving and atomic
  /// mode). Drivers without lock support return kInval; the portable layer
  /// then avoids strategies that need them.
  virtual Err lock(std::uint64_t off, std::uint64_t len, bool exclusive) = 0;
  virtual Err unlock(std::uint64_t off, std::uint64_t len) = 0;
  virtual bool supports_locks() const = 0;

  /// Named shared counters (back MPI shared file pointers). Drivers without
  /// support return kInval.
  virtual Result<std::uint64_t> counter_fetch_add(const std::string& key,
                                                  std::uint64_t delta) = 0;
  virtual Err counter_set(const std::string& key, std::uint64_t value) = 0;
  virtual bool supports_counters() const = 0;

  /// Per-request deadline budget (virtual ns) for all subsequent operations;
  /// 0 = none. Plumbed from the MPI-IO "dafs_deadline_ms" hint down to the
  /// transport. Default: drivers without deadline support ignore it.
  virtual void set_deadline(std::uint64_t /*ns*/) {}

  /// Typed open-path options (consistency level, client cache budget, attr
  /// TTL) from the dafs_consistency / dafs_cache_bytes / dafs_attr_ttl_ms
  /// hints; must be set before open() to take effect. Default: drivers
  /// without a client cache ignore them.
  virtual void set_open_options(const dafs::OpenOptions& /*opts*/) {}

  /// Stripe width of the file's layout, when the backing store stripes data
  /// across servers (the striped DAFS client); 0 = unstriped. The collective
  /// layer aligns two-phase file domains to this so each aggregator talks to
  /// a minimal server subset.
  virtual std::uint64_t stripe_size() const { return 0; }

  virtual const char* name() const = 0;

 protected:
  /// Bookkeeping for the default (synchronous) async implementation.
  struct SyncAio {
    Err status = Err::kOk;
    std::uint64_t bytes = 0;
  };
  std::vector<SyncAio> sync_aio_;
};

/// Factory helpers (definitions in ad_dafs.cpp / ad_nfs.cpp).
namespace detail {}

}  // namespace mpiio
