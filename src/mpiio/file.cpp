#include "mpiio/file.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>

#include "sim/actor.hpp"

namespace mpiio {

using mpi::Datatype;
using sim::Actor;
using sim::CostKind;

namespace {

constexpr std::uint64_t kDefaultCbBufferSize = 4u << 20;
constexpr std::uint64_t kDefaultIndRdBuffer = 4u << 20;
constexpr std::uint64_t kDefaultIndWrBuffer = 512u << 10;

void charge_copy(std::uint64_t bytes) {
  if (bytes == 0) return;
  if (Actor* a = Actor::current()) {
    a->charge(CostKind::kCopy, sim::CostModel{}.copy_time(bytes));
  }
}

/// This rank's virtual clock, or 0 outside an ActorScope (phase timings are
/// then skipped — see File::record_phase).
sim::Time actor_now() {
  Actor* a = Actor::current();
  return a != nullptr ? a->now() : 0;
}

}  // namespace

void File::record_phase(const char* key, sim::Time t0) const {
  Actor* a = Actor::current();
  if (a == nullptr) return;
  const sim::Time now = a->now();
  comm_.world().fabric().histograms().record(key, now > t0 ? now - t0 : 0);
  // Same measurement as a span, nested under this operation's root — the
  // two-phase breakdown shows up as children on the trace timeline.
  sim::Tracer& tr = tracer();
  if (!tr.enabled()) return;
  const sim::SpanContext ctx = sim::Tracer::current();
  if (!ctx.active()) return;
  sim::Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = tr.new_id();
  s.parent_span_id = ctx.span_id;
  s.t_start = t0;
  s.t_end = now;
  s.layer = "mpiio";
  s.name = key;
  tr.record(std::move(s));
}

sim::Tracer& File::tracer() const { return comm_.world().fabric().trace(); }

bool File::trace_sampled() const {
  if (!tracer().enabled() || trace_sample_ == 0) return false;
  return trace_ops_++ % trace_sample_ == 0;
}

// ---------------------------------------------------------------------------
// Open / close
// ---------------------------------------------------------------------------

File::File(mpi::Comm comm, std::string path, int amode, Info info,
           std::unique_ptr<AdioDriver> driver)
    : comm_(comm),
      path_(std::move(path)),
      amode_(amode),
      info_(std::move(info)),
      driver_(std::move(driver)),
      etype_(Datatype::byte()),
      filetype_(Datatype::byte()) {
  sfp_key_ = "mpiio.sfp:" + path_;
}

Result<std::unique_ptr<File>> File::open(const mpi::Comm& comm,
                                         std::string path, int amode,
                                         const Info& info,
                                         std::unique_ptr<AdioDriver> driver) {
  auto f = std::unique_ptr<File>(
      new File(comm, std::move(path), amode, info, std::move(driver)));

  // Malformed hint values surface in the fabric's unified metrics
  // ("mpiio.bad_hint") instead of aborting the rank.
  f->info_.bind_stats(&comm.world().fabric().stats());

  // All dafs_* hints parse once, through the one typed HintSet. The
  // consolidated retry policy's deadline applies to every request this file
  // issues, including the opens below, so plumb it into the driver before
  // anything else; likewise the cache/consistency options must reach the
  // driver before open for a delegation to be requested.
  f->hints_ = HintSet::parse(f->info_);
  const dafs::RetryPolicy rpolicy = f->hints_.retry_policy();
  if (rpolicy.deadline_ns != 0) f->driver_->set_deadline(rpolicy.deadline_ns);
  f->driver_->set_open_options(f->hints_.open_options());
  // Trace sampling: root spans on every k-th operation (0 = never).
  f->trace_sample_ = f->hints_.trace_sample();

  std::uint16_t flags = 0;
  if (amode & kModeCreate) flags |= dafs::kOpenCreate;
  if (amode & kModeExcl) flags |= dafs::kOpenExcl;

  // Rank 0 applies the creation flags; everyone else opens plain after it
  // succeeded, so create-exclusive has single-open semantics.
  Err st = Err::kOk;
  if (f->comm_.rank() == 0) {
    st = f->driver_->open(f->path_, flags);
    if (st == Err::kOk && f->driver_->supports_counters()) {
      f->driver_->counter_set(f->sfp_key_, 0);
    }
  }
  int ok = (f->comm_.rank() != 0 || st == Err::kOk) ? 1 : 0;
  f->comm_.bcast(&ok, sizeof(ok), Datatype::byte(), 0);
  if (!ok) {
    // Propagate rank 0's failure everywhere.
    int code = static_cast<int>(st);
    f->comm_.bcast(&code, sizeof(code), Datatype::byte(), 0);
    return static_cast<Err>(code);
  }
  if (f->comm_.rank() != 0) {
    st = f->driver_->open(f->path_, 0);
    if (st != Err::kOk) return st;
  }
  f->comm_.barrier();

  f->set_view(0, Datatype::byte(), Datatype::byte(), f->info_);
  if (amode & kModeAppend) {
    // Applied after the default view: set_view resets the file pointer.
    auto size = f->driver_->size();
    if (size.ok()) f->pos_ = size.value();  // etype is byte at open
  }
  return f;
}

File::~File() {
  if (driver_) driver_->close();
}

Err File::close() {
  comm_.barrier();
  Err st = driver_->close();
  if ((amode_ & kModeDeleteOnClose) && comm_.rank() == 0) {
    driver_->remove(path_);
  }
  comm_.barrier();
  return st;
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

Err File::set_view(std::uint64_t disp, const Datatype& etype,
                   const Datatype& filetype, const Info& info) {
  if (!etype.valid() || !filetype.valid()) return Err::kInval;
  if (filetype.size() == 0 || etype.size() == 0) return Err::kInval;
  if (filetype.size() % etype.size() != 0) return Err::kInval;
  disp_ = disp;
  etype_ = etype;
  filetype_ = filetype;
  for (const auto& [k, v] : info.all()) info_.set(k, v);

  view_runs_.clear();
  filetype_.flatten(view_runs_);
  view_prefix_.assign(view_runs_.size() + 1, 0);
  for (std::size_t i = 0; i < view_runs_.size(); ++i) {
    view_prefix_[i + 1] = view_prefix_[i] + view_runs_[i].len;
  }
  ft_size_ = filetype_.size();
  ft_extent_ = filetype_.extent();
  trivial_view_ =
      filetype_.is_contiguous() &&
      ft_size_ == static_cast<std::uint64_t>(ft_extent_) &&
      view_runs_.size() == 1 && view_runs_[0].offset == 0;
  pos_ = 0;
  return Err::kOk;
}

std::vector<File::FileRun> File::map_view(std::uint64_t pos,
                                          std::uint64_t nbytes) const {
  std::vector<FileRun> out;
  if (nbytes == 0) return out;
  if (trivial_view_) {
    out.push_back(FileRun{disp_ + pos, nbytes});
    return out;
  }
  std::uint64_t tile = pos / ft_size_;
  std::uint64_t r = pos % ft_size_;  // data offset within the tile
  auto emit = [&out](std::uint64_t off, std::uint64_t len) {
    if (len == 0) return;
    if (!out.empty() && out.back().off + out.back().len == off) {
      out.back().len += len;
      return;
    }
    out.push_back(FileRun{off, len});
  };
  while (nbytes > 0) {
    // First run whose data interval contains r.
    const auto it = std::upper_bound(view_prefix_.begin(), view_prefix_.end(),
                                     r) -
                    1;
    std::size_t i = static_cast<std::size_t>(it - view_prefix_.begin());
    for (; i < view_runs_.size() && nbytes > 0; ++i) {
      const std::uint64_t skip = r - view_prefix_[i];
      const std::uint64_t avail = view_runs_[i].len - skip;
      const std::uint64_t take = std::min(avail, nbytes);
      const std::int64_t file_off =
          static_cast<std::int64_t>(disp_) +
          static_cast<std::int64_t>(tile) * ft_extent_ +
          view_runs_[i].offset + static_cast<std::int64_t>(skip);
      emit(static_cast<std::uint64_t>(file_off), take);
      nbytes -= take;
      r += take;
    }
    ++tile;
    r = 0;
  }
  return out;
}

std::uint64_t File::byte_offset(std::uint64_t view_offset) const {
  const auto runs = map_view(view_offset * etype_.size(), 1);
  return runs.empty() ? disp_ : runs[0].off;
}

// ---------------------------------------------------------------------------
// Access construction
// ---------------------------------------------------------------------------

std::vector<IoSeg> File::build_segs(std::uint64_t offset_etypes,
                                    std::byte* buf, std::uint64_t count,
                                    const Datatype& type,
                                    std::uint64_t* total_bytes) const {
  const std::uint64_t total = count * type.size();
  *total_bytes = total;
  std::vector<IoSeg> segs;
  if (total == 0) return segs;

  const auto file_runs = map_view(offset_etypes * etype_.size(), total);
  const auto mem_runs = type.flatten_n(count);

  // Two-cursor merge: both lists describe exactly `total` bytes.
  std::size_t fi = 0, mi = 0;
  std::uint64_t foff = 0, moff = 0;
  while (fi < file_runs.size() && mi < mem_runs.size()) {
    const std::uint64_t n = std::min(file_runs[fi].len - foff,
                                     mem_runs[mi].len - moff);
    IoSeg seg;
    seg.file_off = file_runs[fi].off + foff;
    seg.mem = buf + mem_runs[mi].offset + static_cast<std::int64_t>(moff);
    seg.len = n;
    // Merge with the previous segment when both sides are adjacent.
    if (!segs.empty() && segs.back().file_off + segs.back().len == seg.file_off &&
        segs.back().mem + segs.back().len == seg.mem) {
      segs.back().len += n;
    } else {
      segs.push_back(seg);
    }
    foff += n;
    moff += n;
    if (foff == file_runs[fi].len) {
      ++fi;
      foff = 0;
    }
    if (moff == mem_runs[mi].len) {
      ++mi;
      moff = 0;
    }
  }
  return segs;
}

std::uint64_t File::etypes_of(std::uint64_t count,
                              const Datatype& type) const {
  return count * type.size() / etype_.size();
}

Err File::check_writable() const {
  return (amode_ & kModeRdonly) ? Err::kInval : Err::kOk;
}

Err File::check_readable() const {
  return (amode_ & kModeWronly) ? Err::kInval : Err::kOk;
}

// ---------------------------------------------------------------------------
// Data sieving
// ---------------------------------------------------------------------------

bool File::use_sieving(bool writing, const std::vector<IoSeg>& segs) const {
  if (segs.size() <= 1) return false;
  const bool native_list = std::string_view(driver_->name()) == "dafs";
  const bool fallback = !native_list;  // sieve on drivers without list I/O
  const bool enabled =
      info_.get_switch(writing ? "romio_ds_write" : "romio_ds_read", fallback);
  if (!enabled) return false;
  if (writing && !driver_->supports_locks()) return false;  // RMW needs locks
  return true;
}

Result<std::uint64_t> File::sieved_read(std::vector<IoSeg> segs) {
  std::sort(segs.begin(), segs.end(),
            [](const IoSeg& a, const IoSeg& b) { return a.file_off < b.file_off; });
  const std::uint64_t buf_size =
      std::max<std::uint64_t>(info_.get_uint("ind_rd_buffer_size",
                                             kDefaultIndRdBuffer),
                              64 * 1024);
  std::vector<std::byte> sieve(buf_size);
  std::uint64_t total = 0;
  std::size_t i = 0;
  while (i < segs.size()) {
    const std::uint64_t wlo = segs[i].file_off;
    // Extend the window while the next segment still starts inside it.
    std::size_t j = i;
    std::uint64_t whi = wlo;
    while (j < segs.size() && segs[j].file_off < wlo + buf_size) {
      whi = std::max(whi, segs[j].file_off + segs[j].len);
      ++j;
    }
    whi = std::min(whi, wlo + buf_size);
    const sim::Time t_window = actor_now();
    auto r = driver_->pread(wlo, std::span(sieve.data(), whi - wlo));
    if (!r.ok()) return r;
    record_phase("mpiio.sieve_read_window_ns", t_window);
    const std::uint64_t got = r.value();
    for (std::size_t k = i; k < j; ++k) {
      const IoSeg& s = segs[k];
      std::uint64_t off = s.file_off - wlo;
      std::uint64_t take = 0;
      if (off < got) take = std::min(s.len, got - off);
      if (take > 0) {
        std::memcpy(s.mem, sieve.data() + off, take);
        charge_copy(take);
        total += take;
      }
      if (s.file_off + s.len > whi) {
        // Segment continues past the window; handle the tail next round.
        segs[k].file_off += take;
        segs[k].mem += take;
        segs[k].len -= take;
        j = k;
        break;
      }
    }
    if (got < whi - wlo) {
      // Short device read: EOF fell inside the window. Every remaining
      // segment starts at or past the file end, so stop here with a short
      // count (re-reading the window can never make progress).
      break;
    }
    i = j;
  }
  comm_.world().fabric().stats().add("mpiio.sieved_reads");
  return total;
}

Result<std::uint64_t> File::sieved_write(std::vector<IoSeg> segs) {
  std::sort(segs.begin(), segs.end(),
            [](const IoSeg& a, const IoSeg& b) { return a.file_off < b.file_off; });
  const std::uint64_t buf_size =
      std::max<std::uint64_t>(info_.get_uint("ind_wr_buffer_size",
                                             kDefaultIndWrBuffer),
                              64 * 1024);
  std::vector<std::byte> sieve(buf_size);
  std::uint64_t total = 0;
  std::size_t i = 0;
  while (i < segs.size()) {
    const std::uint64_t wlo = segs[i].file_off;
    std::size_t j = i;
    std::uint64_t whi = wlo;
    while (j < segs.size() && segs[j].file_off < wlo + buf_size &&
           segs[j].file_off + segs[j].len <= wlo + buf_size) {
      whi = std::max(whi, segs[j].file_off + segs[j].len);
      ++j;
    }
    if (j == i) {
      // Single segment larger than the buffer: write it directly.
      auto r = driver_->pwrite(segs[i].file_off,
                               std::span<const std::byte>(segs[i].mem,
                                                          segs[i].len));
      if (!r.ok()) return r;
      total += r.value();
      ++i;
      continue;
    }
    const std::uint64_t wlen = whi - wlo;
    // Read-modify-write under an exclusive lock.
    if (driver_->lock(wlo, wlen, /*exclusive=*/true) != Err::kOk) {
      return Err::kLockConflict;
    }
    const sim::Time t_hold = actor_now();
    auto r = driver_->pread(wlo, std::span(sieve.data(), wlen));
    if (!r.ok()) {
      driver_->unlock(wlo, wlen);
      return r;
    }
    for (std::size_t k = i; k < j; ++k) {
      std::memcpy(sieve.data() + (segs[k].file_off - wlo), segs[k].mem,
                  segs[k].len);
      charge_copy(segs[k].len);
      total += segs[k].len;
    }
    auto wr = driver_->pwrite(wlo, std::span<const std::byte>(sieve.data(),
                                                              wlen));
    driver_->unlock(wlo, wlen);
    record_phase("mpiio.rmw_lock_hold_ns", t_hold);
    if (!wr.ok()) return wr;
    i = j;
  }
  comm_.world().fabric().stats().add("mpiio.sieved_writes");
  return total;
}

// ---------------------------------------------------------------------------
// Independent I/O
// ---------------------------------------------------------------------------

Result<std::uint64_t> File::independent_io(bool writing,
                                           std::uint64_t offset_etypes,
                                           void* buf, std::uint64_t count,
                                           const Datatype& type) {
  std::uint64_t total = 0;
  auto segs = build_segs(offset_etypes, static_cast<std::byte*>(buf), count,
                         type, &total);
  if (total == 0) return std::uint64_t{0};

  // Atomic mode: serialize the whole affected byte range.
  const bool lock_range = atomic_ && driver_->supports_locks();
  std::uint64_t lo = segs.front().file_off;
  std::uint64_t hi = 0;
  for (const auto& s : segs) {
    lo = std::min(lo, s.file_off);
    hi = std::max(hi, s.file_off + s.len);
  }
  if (lock_range) {
    if (driver_->lock(lo, hi - lo, writing) != Err::kOk) {
      return Err::kLockConflict;
    }
  }

  Result<std::uint64_t> result = std::uint64_t{0};
  if (segs.size() == 1) {
    result = writing
                 ? driver_->pwrite(segs[0].file_off,
                                   std::span<const std::byte>(segs[0].mem,
                                                              segs[0].len))
                 : driver_->pread(segs[0].file_off,
                                  std::span<std::byte>(segs[0].mem,
                                                       segs[0].len));
  } else if (use_sieving(writing, segs)) {
    result = writing ? sieved_write(std::move(segs))
                     : sieved_read(std::move(segs));
  } else {
    result = writing ? driver_->write_list(segs) : driver_->read_list(segs);
  }

  if (lock_range) driver_->unlock(lo, hi - lo);
  return result;
}

Result<std::uint64_t> File::read_at(std::uint64_t offset, void* buf,
                                    std::uint64_t count,
                                    const Datatype& type) {
  if (const Err st = check_readable(); st != Err::kOk) return st;
  std::optional<sim::SpanScope> root;
  if (trace_sampled()) {
    root.emplace(tracer(), "mpiio", "read_at", /*make_root=*/true);
    root->attr("bytes", count * type.size());
  }
  const sim::Time t0 = actor_now();
  auto r = independent_io(false, offset, buf, count, type);
  record_phase("mpiio.read_at_ns", t0);
  return r;
}

Result<std::uint64_t> File::write_at(std::uint64_t offset, const void* buf,
                                     std::uint64_t count,
                                     const Datatype& type) {
  if (const Err st = check_writable(); st != Err::kOk) return st;
  std::optional<sim::SpanScope> root;
  if (trace_sampled()) {
    root.emplace(tracer(), "mpiio", "write_at", /*make_root=*/true);
    root->attr("bytes", count * type.size());
  }
  const sim::Time t0 = actor_now();
  auto r = independent_io(true, offset, const_cast<void*>(buf), count, type);
  record_phase("mpiio.write_at_ns", t0);
  return r;
}

Result<std::uint64_t> File::read(void* buf, std::uint64_t count,
                                 const Datatype& type) {
  auto r = read_at(pos_, buf, count, type);
  if (r.ok()) pos_ += etypes_of(count, type);
  return r;
}

Result<std::uint64_t> File::write(const void* buf, std::uint64_t count,
                                  const Datatype& type) {
  auto r = write_at(pos_, buf, count, type);
  if (r.ok()) pos_ += etypes_of(count, type);
  return r;
}

Err File::seek(std::int64_t offset, Whence whence) {
  switch (whence) {
    case Whence::kSet:
      if (offset < 0) return Err::kInval;
      pos_ = static_cast<std::uint64_t>(offset);
      return Err::kOk;
    case Whence::kCur: {
      const std::int64_t np = static_cast<std::int64_t>(pos_) + offset;
      if (np < 0) return Err::kInval;
      pos_ = static_cast<std::uint64_t>(np);
      return Err::kOk;
    }
    case Whence::kEnd: {
      auto size = driver_->size();
      if (!size.ok()) return size.error();
      const std::int64_t end_etypes =
          static_cast<std::int64_t>(size.value() / etype_.size());
      const std::int64_t np = end_etypes + offset;
      if (np < 0) return Err::kInval;
      pos_ = static_cast<std::uint64_t>(np);
      return Err::kOk;
    }
  }
  return Err::kInval;
}

// ---------------------------------------------------------------------------
// Collective I/O (two-phase)
// ---------------------------------------------------------------------------

namespace {

struct Piece {
  std::uint64_t off;
  std::uint64_t len;
};

}  // namespace

Result<std::uint64_t> File::finish_collective(Result<std::uint64_t> r) {
  // A max-allreduce of the per-rank status code doubles as the exit
  // synchronization a bare barrier used to provide, with one difference that
  // matters under fault injection: when any rank failed, every rank leaves
  // with the same (highest-coded) error instead of most ranks reporting
  // success for a collective that did not complete.
  std::vector<std::uint64_t> code = {
      static_cast<std::uint64_t>(r.ok() ? Err::kOk : r.error())};
  comm_.allreduce(std::span<std::uint64_t>(code), mpi::Op::kMax);
  const Err agreed = static_cast<Err>(code[0]);
  if (agreed != Err::kOk) return agreed;
  return r;
}

Result<std::uint64_t> File::collective_io(bool writing,
                                          std::uint64_t offset_etypes,
                                          void* buf, std::uint64_t count,
                                          const Datatype& type) {
  const int n = comm_.size();
  std::uint64_t total = 0;
  auto segs = build_segs(offset_etypes, static_cast<std::byte*>(buf), count,
                         type, &total);

  const bool cb_enabled = info_.get_switch(
      writing ? "romio_cb_write" : "romio_cb_read", true);
  if (n == 1 || !cb_enabled) {
    auto r = independent_io(writing, offset_etypes, buf, count, type);
    if (n > 1) return finish_collective(std::move(r));
    return r;
  }

  // Metadata phase: extent agreement + piece-list exchange with aggregators.
  const sim::Time t_meta = actor_now();

  // Global extent of the collective access.
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& s : segs) {
    lo = std::min(lo, s.file_off);
    hi = std::max(hi, s.file_off + s.len);
  }
  std::vector<std::uint64_t> mm = {~lo, hi};  // encode min via max(~lo)
  comm_.allreduce(std::span<std::uint64_t>(mm), mpi::Op::kMax);
  const std::uint64_t gmin = ~mm[0];
  const std::uint64_t gmax = mm[1];
  if (gmax <= gmin) {
    return finish_collective(std::uint64_t{0});  // nobody has data
  }

  const auto naggr = static_cast<int>(std::min<std::uint64_t>(
      info_.get_uint("cb_nodes", static_cast<std::uint64_t>(n)),
      static_cast<std::uint64_t>(n)));
  // Striped layouts: align file domains to stripe boundaries so each
  // aggregator's two-phase exchange covers whole stripes and talks to a
  // minimal data-server subset. base <= gmin plus dlen rounded up to a
  // stripe multiple keeps the domain count <= naggr.
  const std::uint64_t ss = hints_.stripe_size_or(driver_->stripe_size());
  const std::uint64_t base = ss > 0 ? gmin - gmin % ss : gmin;
  const std::uint64_t span = gmax - base;
  std::uint64_t dlen = (span + static_cast<std::uint64_t>(naggr) - 1) /
                       static_cast<std::uint64_t>(naggr);
  if (ss > 0) dlen = (dlen + ss - 1) / ss * ss;
  auto domain_of = [&](std::uint64_t off) {
    return static_cast<int>((off - base) / dlen);
  };
  auto domain_end = [&](int d) {
    return base + (static_cast<std::uint64_t>(d) + 1) * dlen;
  };

  // Split my segments across aggregator domains.
  std::vector<std::vector<Piece>> out_pieces(static_cast<std::size_t>(naggr));
  std::vector<std::vector<std::byte*>> out_mem(static_cast<std::size_t>(naggr));
  for (const auto& seg : segs) {
    std::uint64_t off = seg.file_off;
    std::byte* mem = seg.mem;
    std::uint64_t left = seg.len;
    while (left > 0) {
      const int d = domain_of(off);
      const std::uint64_t take = std::min(left, domain_end(d) - off);
      out_pieces[static_cast<std::size_t>(d)].push_back(Piece{off, take});
      out_mem[static_cast<std::size_t>(d)].push_back(mem);
      off += take;
      mem += take;
      left -= take;
    }
  }

  // Exchange piece lists (metadata) with the aggregators.
  std::vector<std::uint64_t> meta_scounts(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> meta_sdispls(static_cast<std::size_t>(n), 0);
  std::vector<std::byte> meta_out;
  for (int d = 0; d < naggr; ++d) {
    meta_sdispls[static_cast<std::size_t>(d)] = meta_out.size();
    const auto& ps = out_pieces[static_cast<std::size_t>(d)];
    meta_scounts[static_cast<std::size_t>(d)] = ps.size() * sizeof(Piece);
    const std::size_t at = meta_out.size();
    meta_out.resize(at + ps.size() * sizeof(Piece));
    if (!ps.empty()) {
      std::memcpy(meta_out.data() + at, ps.data(), ps.size() * sizeof(Piece));
    }
  }
  // Everyone learns how much metadata each rank sends to each aggregator.
  std::vector<std::uint64_t> all_meta(static_cast<std::size_t>(n) *
                                      static_cast<std::size_t>(n));
  comm_.allgather(meta_scounts.data(),
                  static_cast<std::uint64_t>(n) * sizeof(std::uint64_t),
                  all_meta.data());
  auto meta_from = [&](int src, int dst) {
    return all_meta[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(dst)];
  };

  const bool aggregator = comm_.rank() < naggr;
  std::vector<std::uint64_t> meta_rcounts(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> meta_rdispls(static_cast<std::size_t>(n), 0);
  std::uint64_t meta_in_total = 0;
  for (int s = 0; s < n; ++s) {
    meta_rcounts[static_cast<std::size_t>(s)] =
        aggregator ? meta_from(s, comm_.rank()) : 0;
    meta_rdispls[static_cast<std::size_t>(s)] = meta_in_total;
    meta_in_total += meta_rcounts[static_cast<std::size_t>(s)];
  }
  std::vector<std::byte> meta_in(meta_in_total);
  comm_.alltoallv(meta_out.data(), meta_scounts, meta_sdispls, meta_in.data(),
                  meta_rcounts, meta_rdispls);
  record_phase("mpiio.twophase_meta_ns", t_meta);

  const std::uint64_t cb_buffer =
      std::max<std::uint64_t>(info_.get_uint("cb_buffer_size",
                                             kDefaultCbBufferSize),
                              64 * 1024);

  if (writing) {
    // Ship the data alongside, in piece order.
    std::vector<std::uint64_t> data_scounts(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> data_sdispls(static_cast<std::size_t>(n), 0);
    std::vector<std::byte> data_out;
    for (int d = 0; d < naggr; ++d) {
      data_sdispls[static_cast<std::size_t>(d)] = data_out.size();
      // Pieces bound for my own domain never cross the wire: the disk phase
      // below writes them straight from user memory, so packing (a host
      // copy) and a self-send would both be pure overhead.
      if (d == comm_.rank()) continue;
      const auto& ps = out_pieces[static_cast<std::size_t>(d)];
      const auto& ms = out_mem[static_cast<std::size_t>(d)];
      for (std::size_t k = 0; k < ps.size(); ++k) {
        const std::size_t at = data_out.size();
        data_out.resize(at + ps[k].len);
        std::memcpy(data_out.data() + at, ms[k], ps[k].len);
      }
      data_scounts[static_cast<std::size_t>(d)] =
          data_out.size() - data_sdispls[static_cast<std::size_t>(d)];
      charge_copy(data_scounts[static_cast<std::size_t>(d)]);
    }
    // Data counts are derivable from the metadata on the receive side.
    std::vector<std::uint64_t> data_rcounts(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> data_rdispls(static_cast<std::size_t>(n), 0);
    std::uint64_t data_in_total = 0;
    for (int s = 0; s < n && aggregator; ++s) {
      const std::uint64_t nm = meta_rcounts[static_cast<std::size_t>(s)];
      std::uint64_t bytes = 0;
      const auto* pieces = reinterpret_cast<const Piece*>(
          meta_in.data() + meta_rdispls[static_cast<std::size_t>(s)]);
      for (std::uint64_t k = 0; k < nm / sizeof(Piece); ++k) {
        bytes += pieces[k].len;
      }
      // My own pieces stay in user memory (the pack loop skipped them).
      if (s == comm_.rank()) bytes = 0;
      data_rcounts[static_cast<std::size_t>(s)] = bytes;
      data_rdispls[static_cast<std::size_t>(s)] = data_in_total;
      data_in_total += bytes;
    }
    const sim::Time t_exchange = actor_now();
    std::vector<std::byte> data_in(data_in_total);
    comm_.alltoallv(data_out.data(), data_scounts, data_sdispls,
                    data_in.data(), data_rcounts, data_rdispls);
    record_phase("mpiio.twophase_exchange_ns", t_exchange);

    const sim::Time t_disk = actor_now();
    // A disk-phase failure is remembered, not returned: the exit below is
    // collective, so the other ranks must not be left waiting on a rank
    // that bailed out early.
    Err disk_st = Err::kOk;
    const bool have_self_pieces =
        aggregator &&
        !out_pieces[static_cast<std::size_t>(comm_.rank())].empty();
    if (aggregator && (data_in_total > 0 || have_self_pieces)) {
      // Assemble (off, len, src-bytes) triples, sort, coalesce and write.
      struct Item {
        std::uint64_t off;
        std::uint64_t len;
        const std::byte* data;
      };
      std::vector<Item> items;
      for (int s = 0; s < n; ++s) {
        if (s == comm_.rank()) {
          // My own pieces: straight out of the caller's buffers.
          const auto& ps = out_pieces[static_cast<std::size_t>(s)];
          const auto& ms = out_mem[static_cast<std::size_t>(s)];
          for (std::size_t k = 0; k < ps.size(); ++k) {
            items.push_back(Item{ps[k].off, ps[k].len, ms[k]});
          }
          continue;
        }
        const auto* pieces = reinterpret_cast<const Piece*>(
            meta_in.data() + meta_rdispls[static_cast<std::size_t>(s)]);
        const std::uint64_t np =
            meta_rcounts[static_cast<std::size_t>(s)] / sizeof(Piece);
        const std::byte* pd =
            data_in.data() + data_rdispls[static_cast<std::size_t>(s)];
        for (std::uint64_t k = 0; k < np; ++k) {
          items.push_back(Item{pieces[k].off, pieces[k].len, pd});
          pd += pieces[k].len;
        }
      }
      std::sort(items.begin(), items.end(),
                [](const Item& a, const Item& b) { return a.off < b.off; });
      std::vector<std::byte> stage;
      std::size_t i = 0;
      while (i < items.size()) {
        // Extent of the contiguous run starting at i, bounded by the
        // collective buffer (an over-sized piece forms a run of its own).
        std::uint64_t run_len = items[i].len;
        std::size_t j = i + 1;
        while (run_len <= cb_buffer && j < items.size() &&
               items[j].off == items[i].off + run_len &&
               run_len + items[j].len <= cb_buffer) {
          run_len += items[j].len;
          ++j;
        }
        if (j == i + 1) {
          // A single piece is already contiguous in its source buffer;
          // staging it would buy nothing but a host copy.
          auto r = driver_->pwrite(
              items[i].off,
              std::span<const std::byte>(items[i].data, items[i].len));
          if (!r.ok()) {
            disk_st = r.error();
            break;
          }
          i = j;
          continue;
        }
        stage.clear();
        for (std::size_t k = i; k < j; ++k) {
          stage.insert(stage.end(), items[k].data,
                       items[k].data + items[k].len);
        }
        charge_copy(stage.size());
        auto r = driver_->pwrite(items[i].off, stage);
        if (!r.ok()) {
          disk_st = r.error();
          break;
        }
        i = j;
      }
      comm_.world().fabric().stats().add("mpiio.twophase_writes");
      record_phase("mpiio.twophase_disk_ns", t_disk);
    }
    // Writes visible (and failures agreed on) before anyone proceeds.
    if (disk_st != Err::kOk) return finish_collective(disk_st);
    return finish_collective(total);
  }

  // Collective read: aggregators fetch and reply with piece data.
  std::vector<std::uint64_t> reply_scounts(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> reply_sdispls(static_cast<std::size_t>(n), 0);
  std::vector<std::byte> reply_out;
  const sim::Time t_disk = actor_now();
  // A failed read is remembered and the (partially zero-filled) reply still
  // flows through the alltoallv below — returning here would deadlock the
  // non-aggregator ranks already waiting in that exchange.
  Err disk_st = Err::kOk;
  if (aggregator && meta_in_total > 0) {
    struct Item {
      std::uint64_t off;
      std::uint64_t len;
      std::byte* dst;  // into reply_out
    };
    // First size the reply buffer: piece data goes back in (src, piece)
    // order.
    std::uint64_t out_total = 0;
    for (int s = 0; s < n; ++s) {
      const std::uint64_t nm = meta_rcounts[static_cast<std::size_t>(s)];
      const auto* pieces = reinterpret_cast<const Piece*>(
          meta_in.data() + meta_rdispls[static_cast<std::size_t>(s)]);
      reply_sdispls[static_cast<std::size_t>(s)] = out_total;
      std::uint64_t bytes = 0;
      for (std::uint64_t k = 0; k < nm / sizeof(Piece); ++k) {
        bytes += pieces[k].len;
      }
      reply_scounts[static_cast<std::size_t>(s)] = bytes;
      out_total += bytes;
    }
    reply_out.resize(out_total);
    std::vector<Item> items;
    for (int s = 0; s < n; ++s) {
      const auto* pieces = reinterpret_cast<const Piece*>(
          meta_in.data() + meta_rdispls[static_cast<std::size_t>(s)]);
      const std::uint64_t np =
          meta_rcounts[static_cast<std::size_t>(s)] / sizeof(Piece);
      std::byte* pd = reply_out.data() +
                      reply_sdispls[static_cast<std::size_t>(s)];
      for (std::uint64_t k = 0; k < np; ++k) {
        items.push_back(Item{pieces[k].off, pieces[k].len, pd});
        pd += pieces[k].len;
      }
    }
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.off < b.off; });
    // Read coalesced ranges through a cb-buffer-sized staging area.
    std::vector<std::byte> stage(cb_buffer);
    std::size_t i = 0;
    while (i < items.size()) {
      const std::uint64_t run_off = items[i].off;
      std::uint64_t run_len = 0;
      std::size_t j = i;
      while (j < items.size() && items[j].off < run_off + cb_buffer) {
        const std::uint64_t end = items[j].off + items[j].len - run_off;
        if (end > cb_buffer) break;
        run_len = std::max(run_len, end);
        ++j;
      }
      if (j == i) {  // giant piece: read it directly
        auto r = driver_->pread(items[i].off,
                                std::span(items[i].dst, items[i].len));
        if (!r.ok()) {
          disk_st = r.error();
          break;
        }
        ++i;
        continue;
      }
      auto r = driver_->pread(run_off, std::span(stage.data(), run_len));
      if (!r.ok()) {
        disk_st = r.error();
        break;
      }
      for (std::size_t k = i; k < j; ++k) {
        std::memcpy(items[k].dst, stage.data() + (items[k].off - run_off),
                    items[k].len);
        charge_copy(items[k].len);
      }
      i = j;
    }
    comm_.world().fabric().stats().add("mpiio.twophase_reads");
    record_phase("mpiio.twophase_disk_ns", t_disk);
  }
  // Reply counts mirror the request metadata; both sides can compute them.
  std::vector<std::uint64_t> reply_rcounts(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> reply_rdispls(static_cast<std::size_t>(n), 0);
  std::uint64_t reply_in_total = 0;
  for (int d = 0; d < n; ++d) {
    std::uint64_t bytes = 0;
    if (d < naggr) {
      for (const Piece& p : out_pieces[static_cast<std::size_t>(d)]) {
        bytes += p.len;
      }
    }
    reply_rcounts[static_cast<std::size_t>(d)] = bytes;
    reply_rdispls[static_cast<std::size_t>(d)] = reply_in_total;
    reply_in_total += bytes;
  }
  const sim::Time t_exchange = actor_now();
  std::vector<std::byte> reply_in(reply_in_total);
  comm_.alltoallv(reply_out.data(), reply_scounts, reply_sdispls,
                  reply_in.data(), reply_rcounts, reply_rdispls);
  record_phase("mpiio.twophase_exchange_ns", t_exchange);

  // Scatter the returned bytes into the user buffer, in the same piece
  // order they were generated.
  for (int d = 0; d < naggr; ++d) {
    const auto& ps = out_pieces[static_cast<std::size_t>(d)];
    const auto& ms = out_mem[static_cast<std::size_t>(d)];
    const std::byte* pd =
        reply_in.data() + reply_rdispls[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < ps.size(); ++k) {
      std::memcpy(ms[k], pd, ps[k].len);
      pd += ps[k].len;
    }
    charge_copy(reply_rcounts[static_cast<std::size_t>(d)]);
  }
  if (disk_st != Err::kOk) return finish_collective(disk_st);
  return finish_collective(total);
}

Result<std::uint64_t> File::read_at_all(std::uint64_t offset, void* buf,
                                        std::uint64_t count,
                                        const Datatype& type) {
  if (const Err st = check_readable(); st != Err::kOk) return st;
  std::optional<sim::SpanScope> root;
  if (trace_sampled()) {
    root.emplace(tracer(), "mpiio", "read_at_all", /*make_root=*/true);
    root->attr("rank", std::uint64_t{static_cast<unsigned>(comm_.rank())});
  }
  const sim::Time t0 = actor_now();
  auto r = collective_io(false, offset, buf, count, type);
  record_phase("mpiio.read_at_all_ns", t0);
  return r;
}

Result<std::uint64_t> File::write_at_all(std::uint64_t offset, const void* buf,
                                         std::uint64_t count,
                                         const Datatype& type) {
  if (const Err st = check_writable(); st != Err::kOk) return st;
  std::optional<sim::SpanScope> root;
  if (trace_sampled()) {
    root.emplace(tracer(), "mpiio", "write_at_all", /*make_root=*/true);
    root->attr("rank", std::uint64_t{static_cast<unsigned>(comm_.rank())});
  }
  const sim::Time t0 = actor_now();
  auto r = collective_io(true, offset, const_cast<void*>(buf), count, type);
  record_phase("mpiio.write_at_all_ns", t0);
  return r;
}

Result<std::uint64_t> File::read_all(void* buf, std::uint64_t count,
                                     const Datatype& type) {
  auto r = read_at_all(pos_, buf, count, type);
  if (r.ok()) pos_ += etypes_of(count, type);
  return r;
}

Result<std::uint64_t> File::write_all(const void* buf, std::uint64_t count,
                                      const Datatype& type) {
  auto r = write_at_all(pos_, buf, count, type);
  if (r.ok()) pos_ += etypes_of(count, type);
  return r;
}

// ---------------------------------------------------------------------------
// Shared file pointer
// ---------------------------------------------------------------------------

Result<std::uint64_t> File::read_shared(void* buf, std::uint64_t count,
                                        const Datatype& type) {
  if (!driver_->supports_counters()) return Err::kInval;
  const std::uint64_t n_etypes = etypes_of(count, type);
  auto base = driver_->counter_fetch_add(sfp_key_, n_etypes);
  if (!base.ok()) return base.error();
  return read_at(base.value(), buf, count, type);
}

Result<std::uint64_t> File::write_shared(const void* buf, std::uint64_t count,
                                         const Datatype& type) {
  if (!driver_->supports_counters()) return Err::kInval;
  const std::uint64_t n_etypes = etypes_of(count, type);
  auto base = driver_->counter_fetch_add(sfp_key_, n_etypes);
  if (!base.ok()) return base.error();
  return write_at(base.value(), buf, count, type);
}

Result<std::uint64_t> File::ordered_base(std::uint64_t total_etypes) {
  // Rank 0 advances the shared counter for everyone and broadcasts both the
  // base offset and the status: a failed fetch_add must surface on every
  // rank, not leave them all silently operating at offset 0 (matching the
  // error-broadcast discipline of seek_shared).
  struct Shared {
    std::uint64_t base;
    int code;
  } sh{0, static_cast<int>(Err::kOk)};
  if (comm_.rank() == 0) {
    auto r = driver_->counter_fetch_add(sfp_key_, total_etypes);
    if (r.ok()) {
      sh.base = r.value();
    } else {
      sh.code = static_cast<int>(r.error());
    }
  }
  comm_.bcast(&sh, sizeof(sh), Datatype::byte(), 0);
  if (static_cast<Err>(sh.code) != Err::kOk) return static_cast<Err>(sh.code);
  return sh.base;
}

Result<std::uint64_t> File::read_ordered(void* buf, std::uint64_t count,
                                         const Datatype& type) {
  if (!driver_->supports_counters()) return Err::kInval;
  const std::uint64_t mine = etypes_of(count, type);
  const std::uint64_t prefix = comm_.exscan_sum(mine);
  std::vector<std::uint64_t> tot = {mine};
  comm_.allreduce(std::span<std::uint64_t>(tot), mpi::Op::kSum);
  auto base = ordered_base(tot[0]);
  if (!base.ok()) return finish_collective(base.error());
  auto r = read_at(base.value() + prefix, buf, count, type);
  return finish_collective(std::move(r));
}

Result<std::uint64_t> File::write_ordered(const void* buf, std::uint64_t count,
                                          const Datatype& type) {
  if (!driver_->supports_counters()) return Err::kInval;
  const std::uint64_t mine = etypes_of(count, type);
  const std::uint64_t prefix = comm_.exscan_sum(mine);
  std::vector<std::uint64_t> tot = {mine};
  comm_.allreduce(std::span<std::uint64_t>(tot), mpi::Op::kSum);
  auto base = ordered_base(tot[0]);
  if (!base.ok()) return finish_collective(base.error());
  auto r = write_at(base.value() + prefix, buf, count, type);
  return finish_collective(std::move(r));
}

Err File::seek_shared(std::int64_t offset, Whence whence) {
  if (!driver_->supports_counters()) return Err::kInval;
  Err st = Err::kOk;
  if (comm_.rank() == 0) {
    std::int64_t target = offset;
    if (whence == Whence::kCur) {
      auto cur = driver_->counter_fetch_add(sfp_key_, 0);
      if (!cur.ok()) st = cur.error();
      target += cur.ok() ? static_cast<std::int64_t>(cur.value()) : 0;
    } else if (whence == Whence::kEnd) {
      auto size = driver_->size();
      if (!size.ok()) st = size.error();
      target += size.ok() ? static_cast<std::int64_t>(size.value() /
                                                      etype_.size())
                          : 0;
    }
    if (st == Err::kOk) {
      if (target < 0) {
        st = Err::kInval;
      } else {
        st = driver_->counter_set(sfp_key_, static_cast<std::uint64_t>(target));
      }
    }
  }
  int code = static_cast<int>(st);
  comm_.bcast(&code, sizeof(code), Datatype::byte(), 0);
  comm_.barrier();
  return static_cast<Err>(code);
}

Result<std::uint64_t> File::position_shared() {
  if (!driver_->supports_counters()) return Err::kInval;
  return driver_->counter_fetch_add(sfp_key_, 0);
}

// ---------------------------------------------------------------------------
// Nonblocking
// ---------------------------------------------------------------------------

Result<Request> File::iread_at(std::uint64_t offset, void* buf,
                               std::uint64_t count, const Datatype& type) {
  if (const Err st = check_readable(); st != Err::kOk) return st;
  std::uint64_t total = 0;
  auto segs = build_segs(offset, static_cast<std::byte*>(buf), count, type,
                         &total);
  Request req;
  if (segs.size() == 1) {
    auto h = driver_->submit_pread(segs[0].file_off,
                                   std::span(segs[0].mem, segs[0].len));
    if (!h.ok()) return h.error();
    req.kind = Request::Kind::kDriverAio;
    req.handle = h.value();
    return req;
  }
  // Noncontiguous: perform eagerly; the request is born complete.
  auto r = independent_io(false, offset, buf, count, type);
  req.kind = Request::Kind::kDone;
  req.status = r.ok() ? Err::kOk : r.error();
  req.bytes = r.ok() ? r.value() : 0;
  return req;
}

Result<Request> File::iwrite_at(std::uint64_t offset, const void* buf,
                                std::uint64_t count, const Datatype& type) {
  if (const Err st = check_writable(); st != Err::kOk) return st;
  std::uint64_t total = 0;
  auto segs = build_segs(offset, static_cast<std::byte*>(const_cast<void*>(buf)),
                         count, type, &total);
  Request req;
  if (segs.size() == 1) {
    auto h = driver_->submit_pwrite(
        segs[0].file_off, std::span<const std::byte>(segs[0].mem, segs[0].len));
    if (!h.ok()) return h.error();
    req.kind = Request::Kind::kDriverAio;
    req.handle = h.value();
    return req;
  }
  auto r = independent_io(true, offset, const_cast<void*>(buf), count, type);
  req.kind = Request::Kind::kDone;
  req.status = r.ok() ? Err::kOk : r.error();
  req.bytes = r.ok() ? r.value() : 0;
  return req;
}

Err File::wait(Request& req, std::uint64_t* bytes) {
  switch (req.kind) {
    case Request::Kind::kInvalid:
      return Err::kInval;
    case Request::Kind::kDone:
      if (bytes != nullptr) *bytes = req.bytes;
      req.kind = Request::Kind::kInvalid;
      return req.status;
    case Request::Kind::kDriverAio: {
      std::uint64_t got = 0;
      const Err st = driver_->aio_wait(req.handle, &got);
      if (bytes != nullptr) *bytes = got;
      req.kind = Request::Kind::kInvalid;
      return st;
    }
  }
  return Err::kInval;
}

// ---------------------------------------------------------------------------
// Split collectives
// ---------------------------------------------------------------------------

Err File::read_at_all_begin(std::uint64_t offset, void* buf,
                            std::uint64_t count, const mpi::Datatype& type) {
  if (split_state_ != SplitState::kNone) return Err::kInval;
  auto r = read_at_all(offset, buf, count, type);
  split_state_ = SplitState::kRead;
  split_buf_ = buf;
  split_err_ = r.ok() ? Err::kOk : r.error();
  split_bytes_ = r.ok() ? r.value() : 0;
  return Err::kOk;
}

Result<std::uint64_t> File::read_at_all_end(void* buf) {
  if (split_state_ != SplitState::kRead || buf != split_buf_) {
    return Err::kInval;
  }
  split_state_ = SplitState::kNone;
  if (split_err_ != Err::kOk) return split_err_;
  return split_bytes_;
}

Err File::write_at_all_begin(std::uint64_t offset, const void* buf,
                             std::uint64_t count, const mpi::Datatype& type) {
  if (split_state_ != SplitState::kNone) return Err::kInval;
  auto r = write_at_all(offset, buf, count, type);
  split_state_ = SplitState::kWrite;
  split_buf_ = buf;
  split_err_ = r.ok() ? Err::kOk : r.error();
  split_bytes_ = r.ok() ? r.value() : 0;
  return Err::kOk;
}

Result<std::uint64_t> File::write_at_all_end(const void* buf) {
  if (split_state_ != SplitState::kWrite || buf != split_buf_) {
    return Err::kInval;
  }
  split_state_ = SplitState::kNone;
  if (split_err_ != Err::kOk) return split_err_;
  return split_bytes_;
}

// ---------------------------------------------------------------------------
// Management
// ---------------------------------------------------------------------------

Result<std::uint64_t> File::get_size() { return driver_->size(); }

Err File::set_size(std::uint64_t size) {
  Err st = Err::kOk;
  if (comm_.rank() == 0) st = driver_->set_size(size);
  int code = static_cast<int>(st);
  comm_.bcast(&code, sizeof(code), Datatype::byte(), 0);
  comm_.barrier();
  return static_cast<Err>(code);
}

Err File::preallocate(std::uint64_t size) {
  // Collective: rank 0 decides whether growth is needed and broadcasts the
  // decision. Each rank deciding from its own getattr would race with
  // concurrent growth and leave ranks disagreeing about whether the
  // set_size collective below happens — deadlocking the communicator.
  struct Decision {
    int code;
    int need;
  } d{static_cast<int>(Err::kOk), 0};
  if (comm_.rank() == 0) {
    auto cur = driver_->size();
    if (!cur.ok()) {
      d.code = static_cast<int>(cur.error());
    } else {
      d.need = cur.value() < size ? 1 : 0;
    }
  }
  comm_.bcast(&d, sizeof(d), Datatype::byte(), 0);
  if (static_cast<Err>(d.code) != Err::kOk) return static_cast<Err>(d.code);
  if (!d.need) return Err::kOk;
  return set_size(size);
}

Err File::sync() { return driver_->sync(); }

Err File::set_atomicity(bool atomic) {
  if (atomic && !driver_->supports_locks()) return Err::kInval;
  atomic_ = atomic;
  return Err::kOk;
}

}  // namespace mpiio
