#include "mpiio/ad_dafs.hpp"

#include <vector>

namespace mpiio {

namespace {

/// DAFS batch requests carry the segment list in the request message; split
/// oversized lists so each request fits.
constexpr std::size_t kMaxSegsPerRequest = 400;

std::vector<dafs::IoVec> to_iovecs(std::span<const IoSeg> segs) {
  std::vector<dafs::IoVec> out;
  out.reserve(segs.size());
  for (const IoSeg& s : segs) {
    out.push_back(dafs::IoVec{s.file_off, s.mem, s.len});
  }
  return out;
}

}  // namespace

template <typename S>
Result<std::uint64_t> AdDafsT<S>::read_list(std::span<const IoSeg> segs) {
  // Small segments would each pay a direct-I/O registration; fall back to
  // the per-segment path (inline transfers) when everything is tiny.
  std::uint64_t total_len = 0;
  for (const IoSeg& s : segs) total_len += s.len;
  if (total_len < s_.config().direct_threshold) {
    return AdioDriver::read_list(segs);
  }
  std::uint64_t total = 0;
  auto iovs = to_iovecs(segs);
  for (std::size_t i = 0; i < iovs.size(); i += kMaxSegsPerRequest) {
    const std::size_t n = std::min(kMaxSegsPerRequest, iovs.size() - i);
    std::uint64_t want = 0;
    for (std::size_t k = i; k < i + n; ++k) want += iovs[k].len;
    auto r = s_.read_batch(fh_, std::span(iovs.data() + i, n));
    if (!r.ok()) return r;
    total += r.value();
    // A short batch means EOF inside it; later batches lie wholly past EOF,
    // and issuing them would over-report the transfer across the hole.
    if (r.value() < want) break;
  }
  return total;
}

template <typename S>
Result<std::uint64_t> AdDafsT<S>::write_list(std::span<const IoSeg> segs) {
  std::uint64_t total_len = 0;
  for (const IoSeg& s : segs) total_len += s.len;
  if (total_len < s_.config().direct_threshold) {
    return AdioDriver::write_list(segs);
  }
  std::uint64_t total = 0;
  auto iovs = to_iovecs(segs);
  for (std::size_t i = 0; i < iovs.size(); i += kMaxSegsPerRequest) {
    const std::size_t n = std::min(kMaxSegsPerRequest, iovs.size() - i);
    std::uint64_t want = 0;
    for (std::size_t k = i; k < i + n; ++k) want += iovs[k].len;
    auto r = s_.write_batch(fh_, std::span(iovs.data() + i, n));
    if (!r.ok()) return r;
    total += r.value();
    // Stop on a short batch: the device accepted less than asked, so
    // continuing would misstate how much of the list actually landed.
    if (r.value() < want) break;
  }
  return total;
}

template class AdDafsT<dafs::Session>;
template class AdDafsT<dafs::Client>;

}  // namespace mpiio
