#include "mpiio/adio.hpp"

namespace mpiio {

Result<std::uint64_t> AdioDriver::read_list(std::span<const IoSeg> segs) {
  std::uint64_t total = 0;
  for (const IoSeg& s : segs) {
    auto r = pread(s.file_off, std::span<std::byte>(s.mem, s.len));
    if (!r.ok()) return r;
    total += r.value();
    if (r.value() < s.len) break;  // EOF
  }
  return total;
}

Result<std::uint64_t> AdioDriver::write_list(std::span<const IoSeg> segs) {
  std::uint64_t total = 0;
  for (const IoSeg& s : segs) {
    auto r = pwrite(s.file_off, std::span<const std::byte>(s.mem, s.len));
    if (!r.ok()) return r;
    total += r.value();
  }
  return total;
}

Result<AioHandle> AdioDriver::submit_pread(std::uint64_t off,
                                           std::span<std::byte> out) {
  auto r = pread(off, out);
  SyncAio a;
  a.status = r.ok() ? Err::kOk : r.error();
  a.bytes = r.ok() ? r.value() : 0;
  sync_aio_.push_back(a);
  return static_cast<AioHandle>(sync_aio_.size() - 1);
}

Result<AioHandle> AdioDriver::submit_pwrite(std::uint64_t off,
                                            std::span<const std::byte> in) {
  auto r = pwrite(off, in);
  SyncAio a;
  a.status = r.ok() ? Err::kOk : r.error();
  a.bytes = r.ok() ? r.value() : 0;
  sync_aio_.push_back(a);
  return static_cast<AioHandle>(sync_aio_.size() - 1);
}

Err AdioDriver::aio_wait(AioHandle h, std::uint64_t* bytes) {
  if (h >= sync_aio_.size()) return Err::kInval;
  if (bytes != nullptr) *bytes = sync_aio_[h].bytes;
  return sync_aio_[h].status;
}

}  // namespace mpiio
