// E1 (paper Fig. 1, reconstructed): VIA round-trip latency vs message size,
// two-sided send/receive vs one-sided RDMA write. Expected shape: a few-µs
// floor dominated by doorbell + propagation + per-packet cost; RDMA slightly
// cheaper at size (no receive-descriptor handling); both grow linearly with
// serialization time.
#include <thread>

#include "bench/common.hpp"
#include "via/vi.hpp"

using namespace bench;

namespace {

struct Pair {
  sim::Fabric fabric;
  sim::NodeId na, nb;
  std::unique_ptr<via::Nic> nic_a, nic_b;
  std::unique_ptr<sim::Actor> actor_a, actor_b;
  std::unique_ptr<via::Vi> vi_a, vi_b;

  Pair() {
    na = fabric.add_node("a");
    nb = fabric.add_node("b");
    nic_a = std::make_unique<via::Nic>(fabric, na, "nicA");
    nic_b = std::make_unique<via::Nic>(fabric, nb, "nicB");
    actor_a = std::make_unique<sim::Actor>("a", &fabric.node(na));
    actor_b = std::make_unique<sim::Actor>("b", &fabric.node(nb));
    vi_a = std::make_unique<via::Vi>(*nic_a, via::ViAttrs{});
    vi_b = std::make_unique<via::Vi>(*nic_b, via::ViAttrs{});
    via::Listener lis(*nic_b, "svc");
    std::thread srv([&] {
      sim::ActorScope scope(*actor_b);
      require_ok(lis.accept(*vi_b, std::chrono::milliseconds(5000)),
                 "accept");
    });
    sim::ActorScope scope(*actor_a);
    require_ok(nic_a->connect(*vi_a, "svc", std::chrono::milliseconds(5000)),
               "connect");
    srv.join();
  }
};

/// Ping-pong with two-sided send/recv; B echoes. Returns avg one-way µs.
double sendrecv_latency(std::size_t size, int iters) {
  Pair p;
  auto buf_a = make_data(size ? size : 1, 1);
  auto buf_b = make_data(size ? size : 1, 2);
  const auto ha = p.nic_a->register_memory(buf_a.data(), buf_a.size(),
                                           p.nic_a->create_ptag(), {});
  const auto hb = p.nic_b->register_memory(buf_b.data(), buf_b.size(),
                                           p.nic_b->create_ptag(), {});
  // B: echo server thread.
  std::thread echo([&] {
    sim::ActorScope scope(*p.actor_b);
    for (int i = 0; i < iters; ++i) {
      via::Descriptor r;
      if (size) r.segs = {via::DataSegment{buf_b.data(), hb,
                                           static_cast<std::uint32_t>(size)}};
      require_ok(p.vi_b->post_recv(r), "post_recv");
      via::Descriptor* done = nullptr;
      require_ok(p.vi_b->recv_wait(done, std::chrono::milliseconds(5000)),
                 "recv_wait");
      via::Descriptor s;
      if (size) s.segs = {via::DataSegment{buf_b.data(), hb,
                                           static_cast<std::uint32_t>(size)}};
      require_ok(p.vi_b->post_send(s), "post_send");
      via::Descriptor* sd = nullptr;
      require_ok(p.vi_b->send_wait(sd, std::chrono::milliseconds(5000)),
                 "send_wait");
    }
  });
  sim::ActorScope scope(*p.actor_a);
  const sim::Time t0 = p.actor_a->now();
  for (int i = 0; i < iters; ++i) {
    via::Descriptor r;
    if (size) r.segs = {via::DataSegment{buf_a.data(), ha,
                                         static_cast<std::uint32_t>(size)}};
    require_ok(p.vi_a->post_recv(r), "post_recv");
    via::Descriptor s;
    if (size) s.segs = {via::DataSegment{buf_a.data(), ha,
                                         static_cast<std::uint32_t>(size)}};
    require_ok(p.vi_a->post_send(s), "post_send");
    via::Descriptor* sd = nullptr;
    require_ok(p.vi_a->send_wait(sd, std::chrono::milliseconds(5000)),
               "send_wait");
    via::Descriptor* done = nullptr;
    require_ok(p.vi_a->recv_wait(done, std::chrono::milliseconds(5000)),
               "recv_wait");
  }
  const sim::Time rtt = p.actor_a->now() - t0;
  echo.join();
  emit_metrics_json(p.fabric, "e1_via_latency",
                    "{\"mode\":\"sendrecv\",\"size\":" + std::to_string(size) +
                        "}");
  return sim::to_usec(rtt) / (2.0 * iters);
}

/// Ping-pong with RDMA write + immediate (notification consumes a zero-seg
/// receive). Returns avg one-way µs.
double rdma_latency(std::size_t size, int iters) {
  Pair p;
  auto buf_a = make_data(size ? size : 1, 3);
  auto buf_b = make_data(size ? size : 1, 4);
  via::MemAttrs rw;
  rw.enable_rdma_write = true;
  const auto ha = p.nic_a->register_memory(buf_a.data(), buf_a.size(),
                                           p.nic_a->create_ptag(), rw);
  const auto hb = p.nic_b->register_memory(buf_b.data(), buf_b.size(),
                                           p.nic_b->create_ptag(), rw);
  std::thread echo([&] {
    sim::ActorScope scope(*p.actor_b);
    for (int i = 0; i < iters; ++i) {
      via::Descriptor r;  // notification target
      require_ok(p.vi_b->post_recv(r), "post_recv");
      via::Descriptor* done = nullptr;
      require_ok(p.vi_b->recv_wait(done, std::chrono::milliseconds(5000)),
                 "recv_wait");
      via::Descriptor w;
      w.op = via::Opcode::kRdmaWrite;
      if (size) w.segs = {via::DataSegment{buf_b.data(), hb,
                                           static_cast<std::uint32_t>(size)}};
      w.remote = {reinterpret_cast<std::uint64_t>(buf_a.data()), ha};
      w.has_immediate = true;
      require_ok(p.vi_b->post_send(w), "post_send");
      via::Descriptor* sd = nullptr;
      require_ok(p.vi_b->send_wait(sd, std::chrono::milliseconds(5000)),
                 "send_wait");
    }
  });
  sim::ActorScope scope(*p.actor_a);
  const sim::Time t0 = p.actor_a->now();
  for (int i = 0; i < iters; ++i) {
    via::Descriptor r;
    require_ok(p.vi_a->post_recv(r), "post_recv");
    via::Descriptor w;
    w.op = via::Opcode::kRdmaWrite;
    if (size) w.segs = {via::DataSegment{buf_a.data(), ha,
                                         static_cast<std::uint32_t>(size)}};
    w.remote = {reinterpret_cast<std::uint64_t>(buf_b.data()), hb};
    w.has_immediate = true;
    require_ok(p.vi_a->post_send(w), "post_send");
    via::Descriptor* sd = nullptr;
    require_ok(p.vi_a->send_wait(sd, std::chrono::milliseconds(5000)),
               "send_wait");
    via::Descriptor* done = nullptr;
    require_ok(p.vi_a->recv_wait(done, std::chrono::milliseconds(5000)),
               "recv_wait");
  }
  const sim::Time rtt = p.actor_a->now() - t0;
  echo.join();
  emit_metrics_json(p.fabric, "e1_via_latency",
                    "{\"mode\":\"rdma_write\",\"size\":" +
                        std::to_string(size) + "}");
  return sim::to_usec(rtt) / (2.0 * iters);
}

}  // namespace

int main() {
  std::printf("E1 [reconstructed Fig.1]: VIA one-way latency vs message size\n");
  std::printf("(modeled time; Giganet cLAN-class parameters)\n\n");
  Table t({"size", "send/recv (us)", "RDMA write (us)"});
  constexpr int kIters = 50;
  for (std::size_t size : {std::size_t{4}, std::size_t{64}, std::size_t{256},
                           std::size_t{1024}, std::size_t{4096},
                           std::size_t{16384}, std::size_t{32768}}) {
    t.row({size_label(size), fmt(sendrecv_latency(size, kIters), 2),
           fmt(rdma_latency(size, kIters), 2)});
  }
  t.print();
  std::printf(
      "\nExpected shape: few-us floor; linear growth with serialization;\n"
      "RDMA write at or slightly below send/recv (no recv descriptor).\n");
  return 0;
}
