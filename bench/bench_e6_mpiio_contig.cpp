// E6 (paper Fig. 5, reconstructed): MPI-IO independent contiguous bandwidth
// vs request size, 4 ranks, ad_dafs vs ad_nfs. Each rank owns a disjoint
// region; aggregate bandwidth = total bytes / slowest rank's elapsed
// (modeled) time. Expected shape: the DAFS driver rides direct I/O toward
// the server wire limit; NFS saturates earlier on server CPU (copies) and
// the kernel path.
#include <atomic>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/ad_nfs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

constexpr int kNp = 4;
constexpr int kIters = 8;

struct Point {
  double read_mbps;
  double write_mbps;
};

Point run(bool use_dafs, std::size_t size) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server dserver(fabric, server_node);
  nfs::Server nserver(fabric, server_node == 0 ? fabric.add_node("nfs")
                                               : fabric.add_node("nfs"));
  dserver.start();
  nserver.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = kNp;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  std::atomic<std::uint64_t> read_ns{0}, write_ns{0};
  world.run([&](mpi::Comm& c) {
    std::unique_ptr<via::Nic> nic;
    std::unique_ptr<dafs::Session> session;
    std::unique_ptr<nfs::Client> client;
    std::unique_ptr<mpiio::AdioDriver> driver;
    if (use_dafs) {
      nic = std::make_unique<via::Nic>(fabric, world.node_of(c.rank()), "cli");
      session = std::move(dafs::Session::connect(*nic).value());
      driver = mpiio::dafs_driver(*session);
    } else {
      client = std::move(
          nfs::Client::connect(fabric, world.node_of(c.rank())).value());
      driver = mpiio::nfs_driver(*client);
    }
    auto f = std::move(mpiio::File::open(c, "/bench.dat",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{}, std::move(driver))
                           .value());
    auto data = make_data(size, 100 + c.rank());
    const std::uint64_t base =
        static_cast<std::uint64_t>(c.rank()) * size * kIters;

    bench::require(f->write_at(base, data.data(), size, mpi::Datatype::byte()),
                   "write_at");  // warm
    c.barrier();
    sim::Time t0 = c.actor().now();
    for (int i = 0; i < kIters; ++i) {
      bench::require(
          f->write_at(base + static_cast<std::uint64_t>(i) * size, data.data(),
                  size, mpi::Datatype::byte()),
          "write_at");
    }
    std::uint64_t w = c.actor().now() - t0;
    std::vector<std::uint64_t> wv = {w};
    c.allreduce(std::span<std::uint64_t>(wv), mpi::Op::kMax);

    std::vector<std::byte> back(size);
    c.barrier();
    t0 = c.actor().now();
    for (int i = 0; i < kIters; ++i) {
      bench::require(
          f->read_at(base + static_cast<std::uint64_t>(i) * size, back.data(),
                 size, mpi::Datatype::byte()),
          "read_at");
    }
    std::uint64_t r = c.actor().now() - t0;
    std::vector<std::uint64_t> rv = {r};
    c.allreduce(std::span<std::uint64_t>(rv), mpi::Op::kMax);

    if (c.rank() == 0) {
      write_ns.store(wv[0]);
      read_ns.store(rv[0]);
    }
    bench::require_ok(f->close(), "close");
  });

  emit_metrics_json(fabric, "e6_mpiio_contig",
                    std::string("{\"driver\":\"") +
                        (use_dafs ? "dafs" : "nfs") +
                        "\",\"size\":" + std::to_string(size) + "}");
  const std::uint64_t total =
      static_cast<std::uint64_t>(kNp) * kIters * size;
  return Point{mbps(total, read_ns.load()), mbps(total, write_ns.load())};
}

}  // namespace

int main() {
  std::printf(
      "E6 [reconstructed Fig.5]: MPI-IO independent contiguous bandwidth\n"
      "(np=4, per-rank disjoint regions, aggregate MB/s, modeled time)\n\n");
  Table t({"request", "DAFS rd", "NFS rd", "DAFS wr", "NFS wr"});
  for (std::size_t size :
       {std::size_t{4096}, std::size_t{16384}, std::size_t{65536},
        std::size_t{262144}, std::size_t{1048576}}) {
    const Point d = run(true, size);
    const Point n = run(false, size);
    t.row({size_label(size), fmt(d.read_mbps), fmt(n.read_mbps),
           fmt(d.write_mbps), fmt(n.write_mbps)});
  }
  t.print();
  std::printf(
      "\nExpected shape: both grow with request size; ad_dafs approaches the\n"
      "server link limit; ad_nfs saturates lower (server copies + kernel).\n");
  return 0;
}
