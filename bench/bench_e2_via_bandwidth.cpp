// E2 (paper Fig. 2, reconstructed): VIA streaming bandwidth vs message size,
// send/recv vs RDMA write, plus an MTU ablation. Expected shape: both modes
// climb toward the 125 MB/s wire limit; small messages limited by per-message
// overheads (doorbell, header, per-packet cost); smaller MTUs depress large-
// message bandwidth via per-packet overheads.
#include <thread>

#include "bench/common.hpp"
#include "via/vi.hpp"

using namespace bench;

namespace {

struct Bed {
  sim::Fabric fabric;
  sim::NodeId na, nb;
  std::unique_ptr<via::Nic> nic_a, nic_b;
  std::unique_ptr<sim::Actor> actor_a, actor_b;
  std::unique_ptr<via::Vi> vi_a, vi_b;

  static sim::CostModel with_mtu(std::uint32_t mtu) {
    sim::CostModel cm;
    cm.mtu = mtu;
    return cm;
  }

  explicit Bed(std::uint32_t mtu) : fabric(with_mtu(mtu)) {
    na = fabric.add_node("a");
    nb = fabric.add_node("b");
    nic_a = std::make_unique<via::Nic>(fabric, na, "nicA");
    nic_b = std::make_unique<via::Nic>(fabric, nb, "nicB");
    actor_a = std::make_unique<sim::Actor>("a", &fabric.node(na));
    actor_b = std::make_unique<sim::Actor>("b", &fabric.node(nb));
    vi_a = std::make_unique<via::Vi>(*nic_a, via::ViAttrs{});
    vi_b = std::make_unique<via::Vi>(*nic_b, via::ViAttrs{});
    via::Listener lis(*nic_b, "svc");
    std::thread srv([&] {
      sim::ActorScope scope(*actor_b);
      require_ok(lis.accept(*vi_b, std::chrono::milliseconds(5000)),
                 "accept");
    });
    sim::ActorScope scope(*actor_a);
    require_ok(nic_a->connect(*vi_a, "svc", std::chrono::milliseconds(5000)),
               "connect");
    srv.join();
  }
};

/// Stream `iters` messages of `size`; BW measured as bytes / (virtual time
/// from first post to last arrival at the receiver).
double stream_sendrecv(std::uint32_t mtu, std::size_t size, int iters) {
  Bed bed(mtu);
  auto src = make_data(size, 1);
  auto dst = make_data(size, 2);
  const auto hs = bed.nic_a->register_memory(src.data(), src.size(),
                                             bed.nic_a->create_ptag(), {});
  const auto hd = bed.nic_b->register_memory(dst.data(), dst.size(),
                                             bed.nic_b->create_ptag(), {});
  std::vector<via::Descriptor> recvs(static_cast<std::size_t>(iters));
  for (auto& r : recvs) {
    r.segs = {via::DataSegment{dst.data(), hd,
                               static_cast<std::uint32_t>(size)}};
    require_ok(bed.vi_b->post_recv(r), "post_recv");
  }
  sim::Time last_arrival = 0;
  {
    sim::ActorScope scope(*bed.actor_a);
    for (int i = 0; i < iters; ++i) {
      via::Descriptor s;
      s.segs = {via::DataSegment{src.data(), hs,
                                 static_cast<std::uint32_t>(size)}};
      require_ok(bed.vi_a->post_send(s), "post_send");
      via::Descriptor* done = nullptr;
      require_ok(bed.vi_a->send_wait(done, std::chrono::milliseconds(5000)),
                 "send_wait");
    }
  }
  {
    sim::ActorScope scope(*bed.actor_b);
    for (int i = 0; i < iters; ++i) {
      via::Descriptor* done = nullptr;
      require_ok(bed.vi_b->recv_wait(done, std::chrono::milliseconds(5000)),
                 "recv_wait");
      last_arrival = std::max(last_arrival, done->done_at);
    }
  }
  emit_metrics_json(bed.fabric, "e2_via_bandwidth",
                    "{\"mode\":\"sendrecv\",\"mtu\":" + std::to_string(mtu) +
                        ",\"size\":" + std::to_string(size) + "}");
  return mbps(static_cast<std::uint64_t>(iters) * size, last_arrival);
}

double stream_rdma(std::uint32_t mtu, std::size_t size, int iters) {
  Bed bed(mtu);
  auto src = make_data(size, 3);
  auto dst = make_data(size, 4);
  via::MemAttrs rw;
  rw.enable_rdma_write = true;
  const auto hs = bed.nic_a->register_memory(src.data(), src.size(),
                                             bed.nic_a->create_ptag(), {});
  const auto hd = bed.nic_b->register_memory(dst.data(), dst.size(),
                                             bed.nic_b->create_ptag(), rw);
  sim::Time last = 0;
  sim::ActorScope scope(*bed.actor_a);
  for (int i = 0; i < iters; ++i) {
    via::Descriptor w;
    w.op = via::Opcode::kRdmaWrite;
    w.segs = {via::DataSegment{src.data(), hs,
                               static_cast<std::uint32_t>(size)}};
    w.remote = {reinterpret_cast<std::uint64_t>(dst.data()), hd};
    require_ok(bed.vi_a->post_send(w), "post_send");
    via::Descriptor* done = nullptr;
    require_ok(bed.vi_a->send_wait(done, std::chrono::milliseconds(5000)),
               "send_wait");
    last = std::max(last, done->done_at + bed.fabric.cost().propagation);
  }
  emit_metrics_json(bed.fabric, "e2_via_bandwidth",
                    "{\"mode\":\"rdma_write\",\"mtu\":" + std::to_string(mtu) +
                        ",\"size\":" + std::to_string(size) + "}");
  return mbps(static_cast<std::uint64_t>(iters) * size, last);
}

}  // namespace

int main() {
  std::printf("E2 [reconstructed Fig.2]: VIA streaming bandwidth vs size\n\n");
  constexpr int kIters = 32;
  {
    Table t({"size", "send/recv MB/s", "RDMA write MB/s"});
    for (std::size_t size :
         {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
          std::size_t{16384}, std::size_t{65536}, std::size_t{262144}}) {
      t.row({size_label(size), fmt(stream_sendrecv(32 * 1024, size, kIters)),
             fmt(stream_rdma(32 * 1024, size, kIters))});
    }
    t.print();
  }
  std::printf("\nMTU ablation (256 KiB RDMA writes):\n");
  {
    Table t({"MTU", "RDMA write MB/s"});
    for (std::uint32_t mtu : {1500u, 4096u, 9000u, 16384u, 32768u, 65536u}) {
      t.row({size_label(mtu), fmt(stream_rdma(mtu, 262144, kIters))});
    }
    t.print();
  }
  std::printf(
      "\nExpected shape: both climb to the 125 MB/s link rate; small sizes\n"
      "pay fixed per-op costs; small MTUs depress peak via per-packet cost.\n");
  return 0;
}
