// E20 (live telemetry, beyond the paper): can the filer's in-band stats
// plane identify a misbehaving client *while* the data plane is shedding
// load? One greedy client floods async direct writes into a tiny admission
// limit alongside two well-behaved mixed clients; a fourth session polls
// kStatsQuery concurrently. Every poll must succeed (the stats plane
// bypasses admission control), and the final per-client attribution table
// must name the flooder: most bytes in, most kBusy sheds. The run also arms
// the fabric time-series sampler, so the closing metrics JSON carries a
// "timeseries" section with the queue-depth/shed history for plotting.
#include <cstring>

#include "bench/common.hpp"

using namespace bench;

namespace {

constexpr std::size_t kChunk = 32 * 1024;  // direct path
constexpr int kRounds = 6;
constexpr int kGreedyInflight = 8;
constexpr std::uint64_t kGreedyId = 101;
constexpr std::uint64_t kModestIdA = 102;
constexpr std::uint64_t kModestIdB = 103;
constexpr std::uint64_t kMonitorId = 104;

/// One client: its own node, NIC, actor and session (distinct client_id so
/// the server's attribution table keeps the rows apart).
struct Rig {
  sim::NodeId node;
  std::unique_ptr<via::Nic> nic;
  std::unique_ptr<sim::Actor> actor;
  std::unique_ptr<dafs::Session> session;

  Rig(sim::Fabric& fabric, const std::string& name, std::uint64_t client_id) {
    node = fabric.add_node(name);
    nic = std::make_unique<via::Nic>(fabric, node, name + "-nic");
    actor = std::make_unique<sim::Actor>(name, &fabric.node(node));
    dafs::MountSpec spec;
    spec.client.client_id = client_id;
    sim::ActorScope scope(*actor);
    session = std::move(dafs::Session::connect(*nic, spec).value());
  }
  ~Rig() {
    sim::ActorScope scope(*actor);
    session.reset();
  }
};

struct Poll {
  std::uint64_t now_ns = 0;
  std::uint64_t queue = 0;
  std::uint64_t busy_sheds = 0;
  std::uint64_t greedy_bytes_in = 0;
  std::uint64_t greedy_sheds = 0;
};

Poll record_poll(const dafs::StatsSnapshot& snap) {
  Poll p;
  p.now_ns = snap.header.now_ns;
  p.queue = snap.header.admission_queue_depth;
  p.busy_sheds = snap.header.busy_sheds;
  if (const auto* g = snap.find_client(kGreedyId)) {
    p.greedy_bytes_in = g->bytes_in;
    p.greedy_sheds = g->sheds;
  }
  return p;
}

}  // namespace

int main() {
  std::printf("E20 [telemetry]: one greedy client flooding %d x %zu KiB async "
              "writes into admission limit 2 beside two modest clients; a "
              "monitor session polls kStatsQuery through the overload\n\n",
              kGreedyInflight, kChunk / 1024);

  sim::Fabric fabric;
  // Sample the admission/shed history on the server's virtual clock; the
  // rings land in the metrics JSON as the "timeseries" section.
  sim::TimeSeriesConfig tscfg;
  tscfg.interval_ns = 20'000;  // 20 us virtual cadence
  tscfg.capacity = 512;
  tscfg.counters = {"dafs.requests", "dafs.busy_shed"};
  fabric.metrics().enable_timeseries(tscfg);

  const auto filer_node = fabric.add_node("filer");
  dafs::ServerConfig scfg;
  scfg.workers = 1;  // one worker: queue depth is load, not parallelism
  dafs::Server filer(fabric, filer_node, scfg);
  filer.start();

  Rig greedy(fabric, "greedy", kGreedyId);
  Rig modest_a(fabric, "modest-a", kModestIdA);
  Rig modest_b(fabric, "modest-b", kModestIdB);
  Rig monitor(fabric, "monitor", kMonitorId);

  const auto data = make_data(kChunk * kGreedyInflight, 20);

  // Warm-up: every workload client creates its file before the squeeze.
  dafs::Fh gfh, afh, bfh;
  {
    sim::ActorScope scope(*greedy.actor);
    gfh = require(greedy.session->open("/greedy.bin", dafs::kOpenCreate),
                  "open greedy");
  }
  {
    sim::ActorScope scope(*modest_a.actor);
    afh = require(modest_a.session->open("/a.bin", dafs::kOpenCreate),
                  "open a");
    require(modest_a.session->pwrite(afh, 0, std::span(data.data(), kChunk)),
            "seed a");
  }
  {
    sim::ActorScope scope(*modest_b.actor);
    bfh = require(modest_b.session->open("/b.bin", dafs::kOpenCreate),
                  "open b");
    require(modest_b.session->pwrite(bfh, 0, std::span(data.data(), kChunk)),
            "seed b");
  }

  // Overload: tiny admission limit; the greedy client keeps kGreedyInflight
  // async writes in flight while the monitor polls mid-flood.
  filer.set_admission_limit(2);
  std::vector<Poll> polls;
  int failed_polls = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<dafs::OpId> ops;
    {
      sim::ActorScope scope(*greedy.actor);
      for (int j = 0; j < kGreedyInflight; ++j) {
        auto h = greedy.session->submit_pwrite(
            gfh, static_cast<std::uint64_t>(j) * kChunk,
            std::span(data.data() + static_cast<std::size_t>(j) * kChunk,
                      kChunk));
        if (h.ok()) ops.push_back(h.value());
      }
    }
    // Poll while the flood is in flight and the queue is saturated.
    {
      sim::ActorScope scope(*monitor.actor);
      auto snap = monitor.session->query_stats();
      if (snap.ok()) {
        polls.push_back(record_poll(snap.value()));
      } else {
        ++failed_polls;
      }
    }
    // The modest clients stay modest: one read + one getattr per round.
    {
      sim::ActorScope scope(*modest_a.actor);
      std::vector<std::byte> back(kChunk);
      modest_a.session->pread(afh, 0, back);
      modest_a.session->getattr(afh);
    }
    {
      sim::ActorScope scope(*modest_b.actor);
      std::vector<std::byte> back(kChunk);
      modest_b.session->pread(bfh, 0, back);
      modest_b.session->getattr(bfh);
    }
    sim::ActorScope scope(*greedy.actor);
    require_ok(greedy.session->wait_all(ops), "greedy wait_all");
  }
  filer.set_admission_limit(scfg.admission_max_queue);

  // Final snapshot: the attribution table must name the flooder.
  sim::ActorScope scope(*monitor.actor);
  auto final_snap = require(monitor.session->query_stats(), "final stats");
  const auto* g = final_snap.find_client(kGreedyId);
  const auto* a = final_snap.find_client(kModestIdA);
  const auto* b = final_snap.find_client(kModestIdB);
  if (g == nullptr || a == nullptr || b == nullptr) {
    std::fprintf(stderr, "bench: attribution table missing a client\n");
    std::abort();
  }
  if (failed_polls != 0) {
    std::fprintf(stderr, "bench: %d stats polls failed under overload\n",
                 failed_polls);
    std::abort();
  }
  if (g->bytes_in <= a->bytes_in || g->bytes_in <= b->bytes_in) {
    std::fprintf(stderr, "bench: flooder does not lead bytes_in\n");
    std::abort();
  }
  if (g->sheds == 0 || g->sheds < a->sheds || g->sheds < b->sheds) {
    std::fprintf(stderr, "bench: flooder does not lead kBusy sheds\n");
    std::abort();
  }

  Table t({"client", "bytes_in", "bytes_out", "reads", "writes", "sheds",
           "retx"});
  for (const auto* c : {g, a, b}) {
    t.row({std::to_string(c->client_id), std::to_string(c->bytes_in),
           std::to_string(c->bytes_out), std::to_string(c->ops_read),
           std::to_string(c->ops_write), std::to_string(c->sheds),
           std::to_string(c->retransmits)});
  }
  t.print();
  std::printf("verdict: client %llu is the flooder (%llu bytes in, %llu "
              "sheds); %zu/%d mid-flood stats polls answered\n\n",
              static_cast<unsigned long long>(g->client_id),
              static_cast<unsigned long long>(g->bytes_in),
              static_cast<unsigned long long>(g->sheds), polls.size(),
              kRounds);

  // Poll timeline as one JSON line (distinct from the metrics document —
  // this is the monitor's external view, sampled in-band).
  std::printf("{\"timeline\":\"e20_polls\",\"polls\":[");
  for (std::size_t i = 0; i < polls.size(); ++i) {
    const Poll& p = polls[i];
    std::printf("%s{\"t_ns\":%llu,\"queue\":%llu,\"busy_sheds\":%llu,"
                "\"greedy_bytes_in\":%llu,\"greedy_sheds\":%llu}",
                i == 0 ? "" : ",",
                static_cast<unsigned long long>(p.now_ns),
                static_cast<unsigned long long>(p.queue),
                static_cast<unsigned long long>(p.busy_sheds),
                static_cast<unsigned long long>(p.greedy_bytes_in),
                static_cast<unsigned long long>(p.greedy_sheds));
  }
  std::printf("]}\n");

  emit_metrics_json(fabric, "e20_telemetry",
                    "{\"chunk\":32768,\"rounds\":6,\"greedy_inflight\":8,"
                    "\"admission_limit\":2,\"seed\":20}");
  return 0;
}
