// E13 (model-sensitivity ablation, beyond the paper): how do the headline
// results depend on the calibration? Sweeps host memcpy bandwidth (the
// copy-engine speed) and shows that the NFS plateau tracks it while DAFS
// direct I/O is indifferent — i.e., the paper's conclusion is a property of
// the *architecture* (copies on/off the data path), not of one calibration
// point. Also sweeps the link rate to show both scale with the wire once
// copies are off the path.
#include "bench/common.hpp"

using namespace bench;

namespace {

constexpr std::size_t kReq = 256 * 1024;
constexpr int kIters = 12;

double dafs_read_mbps(const sim::CostModel& cm) {
  dafs::ServerConfig scfg;
  scfg.store.memcpy_mbps = cm.memcpy_mbps;
  sim::Fabric fabric(cm);
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  sim::Actor actor("client", &fabric.node(node));
  sim::ActorScope scope(actor);
  via::Nic nic(fabric, node, "cli");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/f", dafs::kOpenCreate).value();
  auto data = make_data(kReq, 1);
  s->pwrite(fh, 0, data);
  std::vector<std::byte> back(kReq);
  const sim::Time t0 = actor.now();
  for (int i = 0; i < kIters; ++i) s->pread(fh, 0, back);
  const double out = mbps(static_cast<std::uint64_t>(kIters) * kReq,
                          actor.now() - t0);
  s.reset();
  emit_metrics_json(fabric, "e13_sensitivity",
                    "{\"driver\":\"dafs\",\"memcpy_mbps\":" +
                        fmt(cm.memcpy_mbps, 0) +
                        ",\"link_mbps\":" + fmt(cm.link_mbps, 1) + "}");
  return out;
}

double nfs_read_mbps(const sim::CostModel& cm) {
  nfs::ServerConfig scfg;
  scfg.store.memcpy_mbps = cm.memcpy_mbps;
  sim::Fabric fabric(cm);
  nfs::Server server(fabric, fabric.add_node("srv"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  sim::Actor actor("client", &fabric.node(node));
  sim::ActorScope scope(actor);
  auto c = std::move(nfs::Client::connect(fabric, node).value());
  auto ino = c->open("/f", nfs::kOpenCreate).value();
  auto data = make_data(kReq, 2);
  c->pwrite(ino, 0, data);
  std::vector<std::byte> back(kReq);
  const sim::Time t0 = actor.now();
  for (int i = 0; i < kIters; ++i) c->pread(ino, 0, back);
  emit_metrics_json(fabric, "e13_sensitivity",
                    "{\"driver\":\"nfs\",\"memcpy_mbps\":" +
                        fmt(cm.memcpy_mbps, 0) +
                        ",\"link_mbps\":" + fmt(cm.link_mbps, 1) + "}");
  return mbps(static_cast<std::uint64_t>(kIters) * kReq, actor.now() - t0);
}

}  // namespace

int main() {
  std::printf(
      "E13 [sensitivity ablation]: calibration sweeps, 256 KiB reads\n\n");
  {
    std::printf("Host copy-engine sweep (link fixed at 125 MB/s):\n");
    Table t({"memcpy MB/s", "DAFS MB/s", "NFS MB/s", "speedup"});
    for (double copy : {200.0, 400.0, 800.0, 1600.0}) {
      sim::CostModel cm;
      cm.memcpy_mbps = copy;
      const double d = dafs_read_mbps(cm);
      const double n = nfs_read_mbps(cm);
      t.row({fmt(copy, 0), fmt(d), fmt(n), fmt(d / n, 2) + "x"});
    }
    t.print();
  }
  {
    std::printf("\nLink-rate sweep (copies fixed at 400 MB/s):\n");
    Table t({"link MB/s", "DAFS MB/s", "NFS MB/s"});
    for (double link : {62.5, 125.0, 250.0, 500.0}) {
      sim::CostModel cm;
      cm.link_mbps = link;
      t.row({fmt(link, 1), fmt(dafs_read_mbps(cm)), fmt(nfs_read_mbps(cm))});
    }
    t.print();
  }
  std::printf(
      "\nExpected shape: the NFS plateau tracks the copy engine (its\n"
      "bottleneck); DAFS tracks the wire. As hosts get faster the gap\n"
      "narrows; as links get faster it widens — the VIA/DAFS architectural\n"
      "argument in one table.\n");
  return 0;
}
