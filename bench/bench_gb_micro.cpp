// Google-benchmark microbenchmarks of the emulation substrate itself (real
// host time, not modeled time): datatype flattening, resource arithmetic,
// and the fabric transfer computation. These guard against the cost engine
// itself becoming the bottleneck of large experiments.
#include <benchmark/benchmark.h>

#include <array>

#include "mpi/datatype.hpp"
#include "sim/fabric.hpp"
#include "sim/resource.hpp"

namespace {

void BM_ResourceOccupy(benchmark::State& state) {
  sim::Resource r;
  sim::Time t = 0;
  for (auto _ : state) {
    t = r.occupy(t, 100);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ResourceOccupy);

void BM_FabricTransfer(benchmark::State& state) {
  sim::Fabric f;
  const auto a = f.add_node("a");
  const auto b = f.add_node("b");
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  sim::Time t = 0;
  for (auto _ : state) {
    t = f.transfer(a, b, bytes, t);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FabricTransfer)->Arg(4096)->Arg(262144)->Arg(1 << 20);

void BM_DatatypeFlattenVector(benchmark::State& state) {
  const auto blocks = static_cast<std::uint32_t>(state.range(0));
  auto t = mpi::Datatype::vector(blocks, 16, 32, mpi::Datatype::int32());
  for (auto _ : state) {
    auto segs = t.flatten_n(4);
    benchmark::DoNotOptimize(segs.data());
  }
}
BENCHMARK(BM_DatatypeFlattenVector)->Arg(16)->Arg(256)->Arg(4096);

void BM_DatatypeSubarray2d(benchmark::State& state) {
  const std::array<std::uint32_t, 2> sizes = {1024, 1024};
  const std::array<std::uint32_t, 2> subsizes = {256, 256};
  const std::array<std::uint32_t, 2> starts = {128, 128};
  auto t =
      mpi::Datatype::subarray(sizes, subsizes, starts, mpi::Datatype::byte());
  for (auto _ : state) {
    std::vector<mpi::Segment> segs;
    t.flatten(segs);
    benchmark::DoNotOptimize(segs.data());
  }
}
BENCHMARK(BM_DatatypeSubarray2d);

void BM_DatatypePackStrided(benchmark::State& state) {
  auto t = mpi::Datatype::vector(64, 16, 32, mpi::Datatype::int32());
  std::vector<std::byte> src(1 << 20);
  std::vector<std::byte> out;
  for (auto _ : state) {
    t.pack(src.data(), 4, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_DatatypePackStrided);

}  // namespace

BENCHMARK_MAIN();
