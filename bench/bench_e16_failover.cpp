// E16 (failover, beyond the paper): the same crash fault plan hits two
// recovery designs and the bench times both end to end:
//   - restart-wait (PR 3): a single filer; the client's only option is to
//     poll the dead listener until the server's real-time restart delay
//     elapses, then reclaim its session on the reborn instance.
//   - failover (this PR): a replicated pair; the primary streams its journal
//     to a standby, the crash kills only the primary, the client probes
//     briefly and rotates to the promoted standby — no restart wait.
// The stream is driven through MPI-IO (write_at + per-window sync), so a
// traced run (DAFS_TRACE=...) shows the failover retries parented under the
// originating mpiio spans — scripts/check_trace.py --mpiio-rooted validates
// exactly that linkage in tier1.sh. Completion is compared in host
// wall-clock: the outage is a real-time phenomenon (the restart delay and
// the client's reconnect polling are real sleeps), so wall-clock is the
// honest ruler; virtual-time bandwidth is reported alongside. Acked-but-
// unsynced chunks may legally die with the primary on either path; the
// bench proves the loss is confined to the crash window, repairs it
// app-side, and verifies the file byte-exact before accepting the timing.
#include <chrono>
#include <cstring>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

constexpr std::size_t kChunk = 64 * 1024;   // direct path
constexpr int kChunks = 48;
constexpr int kWindow = 8;                   // chunks per sync checkpoint
constexpr std::uint64_t kCrashAfter = 12;    // admitted requests before crash
constexpr std::uint64_t kRestartMs = 150;    // real-time restart delay
constexpr std::uint64_t kSeed = 16;

struct RunResult {
  double wall_ms = 0;       // host wall-clock, stream start -> last sync
  double virt_mbps = 0;     // modeled bandwidth over the same interval
  int lost_chunks = 0;      // acked-unsynced chunks the crash devoured
  std::uint64_t crashes = 0;
  std::uint64_t failovers = 0;
};

/// Write the stream through MPI-IO with a sync checkpoint per window, then
/// verify/repair/verify. The crash lands mid-stream in both scenarios; every
/// write must eventually succeed (transparently recovered or retried).
RunResult run_world(sim::Fabric& fabric, mpi::World& world,
                    const dafs::MountSpec& mspec,
                    const std::vector<std::byte>& data) {
  RunResult out;
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic, mspec).value());
    auto f = std::move(mpiio::File::open(c, "/e16",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{},
                                         mpiio::dafs_driver(*session))
                           .value());
    const auto wall0 = std::chrono::steady_clock::now();
    const sim::Time t0 = c.actor().now();
    for (int i = 0; i < kChunks; ++i) {
      const std::uint64_t off = static_cast<std::uint64_t>(i) * kChunk;
      bool ok = false;
      for (int t = 0; t < 8 && !ok; ++t) {
        auto r = f->write_at(off, data.data() + off, kChunk,
                             mpi::Datatype::byte());
        ok = r.ok() && r.value() == kChunk;
      }
      if (!ok) {
        std::fprintf(stderr, "bench: write chunk %d failed\n", i);
        std::abort();
      }
      if ((i + 1) % kWindow == 0) require_ok(f->sync(), "sync");
    }
    out.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    out.virt_mbps = mbps(static_cast<std::uint64_t>(kChunks) * kChunk,
                         c.actor().now() - t0);

    // Verify; chunks acked after the last pre-crash checkpoint may have
    // legally vanished. They must be confined to one window — everything
    // checkpointed survives — and an app-level rewrite repairs them.
    std::vector<std::byte> back(data.size());
    auto rd = f->read_at(0, back.data(), back.size(), mpi::Datatype::byte());
    if (!rd.ok()) {
      std::fprintf(stderr, "bench: verify read failed\n");
      std::abort();
    }
    std::vector<int> lost;
    for (int i = 0; i < kChunks; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * kChunk;
      if (rd.value() < off + kChunk ||
          std::memcmp(back.data() + off, data.data() + off, kChunk) != 0) {
        lost.push_back(i);
      }
    }
    if (static_cast<int>(lost.size()) > kWindow ||
        (!lost.empty() && lost.back() - lost.front() >= kWindow)) {
      std::fprintf(stderr, "bench: lost chunks not confined to one window\n");
      std::abort();
    }
    out.lost_chunks = static_cast<int>(lost.size());
    for (int i : lost) {
      const std::size_t off = static_cast<std::size_t>(i) * kChunk;
      auto w =
          f->write_at(off, data.data() + off, kChunk, mpi::Datatype::byte());
      if (!w.ok() || w.value() != kChunk) {
        std::fprintf(stderr, "bench: repair write chunk %d failed\n", i);
        std::abort();
      }
    }
    require_ok(f->sync(), "repair sync");
    rd = f->read_at(0, back.data(), back.size(), mpi::Datatype::byte());
    if (!rd.ok() || rd.value() != back.size() ||
        std::memcmp(back.data(), data.data(), back.size()) != 0) {
      std::fprintf(stderr, "bench: file not byte-exact after repair\n");
      std::abort();
    }
    f->close();
  });
  out.crashes = fabric.stats().get("dafs.server_crashes");
  out.failovers = fabric.stats().get("dafs.failovers");
  if (out.crashes == 0) {
    std::fprintf(stderr, "bench: armed crash never fired\n");
    std::abort();
  }
  return out;
}

dafs::RetryPolicy retry_policy() {
  dafs::RetryPolicy retry;
  retry.attempts = 8;
  retry.backoff_ns = 100'000;
  retry.backoff_cap_ns = 10'000'000;
  retry.jitter_seed = kSeed;
  return retry;
}

/// PR 3 path: one filer, the client waits out the real restart delay.
RunResult run_restart_wait(const std::vector<std::byte>& data) {
  sim::Fabric fabric;
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 5;
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  mpi::World world(wcfg);
  fabric.faults().arm(kSeed);
  fabric.faults().crash_server_after_requests(kCrashAfter, kRestartMs);
  const RunResult r =
      run_world(fabric, world, dafs::single_mount("dafs", retry_policy()), data);
  fabric.faults().clear();
  server.stop();
  return r;
}

/// This PR's path: a replicated pair, the client rotates to the standby.
/// Same fault plan (same seed, same request count, same restart delay),
/// restricted to the primary's node.
RunResult run_failover(const std::vector<std::byte>& data) {
  sim::Fabric fabric;
  sim::NodeId primary_node = fabric.add_node("filer-a");
  sim::NodeId standby_node = fabric.add_node("filer-b");
  dafs::ServerConfig pcfg;
  pcfg.grace_period_ms = 5;
  pcfg.service = "dafs";
  pcfg.repl_peer = "dafs-repl";
  dafs::ServerConfig bcfg;
  bcfg.grace_period_ms = 5;
  bcfg.service = "dafs-b";
  bcfg.repl_listen = "dafs-repl";
  dafs::Server primary(fabric, primary_node, pcfg);
  dafs::Server standby(fabric, standby_node, bcfg);
  primary.start();
  standby.start();
  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  mpi::World world(wcfg);
  fabric.faults().arm(kSeed);
  fabric.faults().restrict_crash_to_node(primary_node);
  fabric.faults().crash_server_after_requests(kCrashAfter, kRestartMs);
  const RunResult r = run_world(
      fabric, world, dafs::failover_mount({"dafs", "dafs-b"}, retry_policy()),
      data);
  fabric.faults().clear();
  if (r.failovers == 0) {
    std::fprintf(stderr, "bench: failover run never rotated endpoints\n");
    std::abort();
  }
  // The replication-lag gauge, promotion/fencing counters and the
  // failover/reconnect latency histograms all ride in the unified metrics
  // document of THIS fabric (the interesting one).
  emit_metrics_json(fabric, "e16_failover",
                    "{\"chunk\":65536,\"chunks\":48,\"sync_every\":8,"
                    "\"crash_after\":12,\"restart_ms\":150,\"seed\":16}");
  standby.stop();
  primary.stop();
  return r;
}

}  // namespace

int main() {
  std::printf(
      "E16 [failover]: %d x 64 KiB MPI-IO writes, sync every %d chunks, "
      "filer killed after request %llu (restart %llu ms later). restart-wait "
      "= single filer, client polls through the outage; failover = "
      "journal-replicated pair, client rotates to the promoted standby.\n\n",
      kChunks, kWindow, static_cast<unsigned long long>(kCrashAfter),
      static_cast<unsigned long long>(kRestartMs));

  const auto data = make_data(static_cast<std::size_t>(kChunks) * kChunk, 16);

  const RunResult wait = run_restart_wait(data);
  const RunResult fo = run_failover(data);

  Table t({"scenario", "wall ms", "virt MB/s", "lost chunks", "crashes",
           "failovers"});
  t.row({"restart-wait", fmt(wait.wall_ms), fmt(wait.virt_mbps),
         std::to_string(wait.lost_chunks), std::to_string(wait.crashes),
         std::to_string(wait.failovers)});
  t.row({"failover", fmt(fo.wall_ms), fmt(fo.virt_mbps),
         std::to_string(fo.lost_chunks), std::to_string(fo.crashes),
         std::to_string(fo.failovers)});
  t.print();
  std::printf("outage advantage: failover finished in %.1f ms vs %.1f ms "
              "restart-wait (%.1fx)\n",
              fo.wall_ms, wait.wall_ms,
              wait.wall_ms / (fo.wall_ms > 0 ? fo.wall_ms : 1));

  // The acceptance bar: under the identical fault plan, failing over to the
  // standby must beat waiting out the primary's restart.
  if (fo.wall_ms >= wait.wall_ms) {
    std::fprintf(stderr,
                 "bench: failover (%.1f ms) not faster than restart-wait "
                 "(%.1f ms)\n",
                 fo.wall_ms, wait.wall_ms);
    std::abort();
  }
  return 0;
}
