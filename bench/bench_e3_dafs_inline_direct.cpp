// E3 (paper Fig. 3, reconstructed): DAFS inline vs direct transfer bandwidth
// vs request size, warm server cache. Expected shape: inline wins for small
// requests (one round trip, no registration, copy cost negligible); direct
// wins above a few KiB and approaches the wire rate; the crossover is the
// client's direct_threshold design point.
#include "bench/common.hpp"

using namespace bench;

namespace {

/// Measure client-side elapsed virtual time for `iters` preads/pwrites of
/// `size`, with the session forced to one transfer mode.
struct Point {
  double read_mbps;
  double write_mbps;
};

Point run_mode(bool force_inline, std::size_t size, int iters) {
  dafs::ClientConfig cfg;
  cfg.direct_threshold = force_inline ? SIZE_MAX : 0;
  DafsBed bed(cfg);
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/bench.dat", dafs::kOpenCreate).value();
  auto data = make_data(size, 42);

  // Warm the file (and the store slabs) before timing.
  bench::require(bed.session->pwrite(fh, 0, data), "pwrite");

  const sim::Time w0 = bed.client_actor->now();
  for (int i = 0; i < iters; ++i) {
    bench::require(bed.session->pwrite(fh, (static_cast<std::uint64_t>(i) % 8) * size, data), "pwrite");
  }
  const sim::Time wt = bed.client_actor->now() - w0;

  std::vector<std::byte> back(size);
  const sim::Time r0 = bed.client_actor->now();
  for (int i = 0; i < iters; ++i) {
    bench::require(bed.session->pread(fh, (static_cast<std::uint64_t>(i) % 8) * size, back), "pread");
  }
  const sim::Time rt = bed.client_actor->now() - r0;

  const std::uint64_t total = static_cast<std::uint64_t>(iters) * size;
  emit_metrics_json(bed.fabric, "e3_dafs_inline_direct",
                    std::string("{\"mode\":\"") +
                        (force_inline ? "inline" : "direct") +
                        "\",\"size\":" + std::to_string(size) + "}");
  return Point{mbps(total, rt), mbps(total, wt)};
}

}  // namespace

int main() {
  std::printf(
      "E3 [reconstructed Fig.3]: DAFS inline vs direct I/O bandwidth\n"
      "(warm cache, single client, modeled time)\n\n");
  Table t({"request", "inline rd MB/s", "direct rd MB/s", "inline wr MB/s",
           "direct wr MB/s"});
  constexpr int kIters = 20;
  for (std::size_t size :
       {std::size_t{512}, std::size_t{2048}, std::size_t{4096},
        std::size_t{8192}, std::size_t{16384}, std::size_t{65536},
        std::size_t{262144}, std::size_t{1048576}}) {
    const Point in = run_mode(true, size, kIters);
    const Point di = run_mode(false, size, kIters);
    t.row({size_label(size), fmt(in.read_mbps), fmt(di.read_mbps),
           fmt(in.write_mbps), fmt(di.write_mbps)});
  }
  t.print();
  std::printf(
      "\nExpected shape: inline competitive below ~4 KiB (single round trip,\n"
      "no registration); direct overtakes above and approaches the 125 MB/s\n"
      "wire rate while inline saturates at the copy-limited rate.\n");
  return 0;
}
