// E5 (paper Table 1, reconstructed): client CPU cost per megabyte moved —
// the headline zero-copy claim. DAFS direct I/O leaves the client CPU out of
// the data path entirely (protocol-only), while the NFS/TCP path pays a full
// user<->kernel copy, per-segment stack processing and interrupts per byte.
#include "bench/common.hpp"

using namespace bench;

namespace {

struct Cpu {
  double us_per_mb_total;
  double copy;
  double kernel_irq;
  double protocol_reg;
};

Cpu cpu_of(const sim::BusyBreakdown& b, std::uint64_t bytes) {
  const double mb = static_cast<double>(bytes) / 1e6;
  auto us = [&](sim::Time t) { return sim::to_usec(t) / mb; };
  return Cpu{
      us(b.total()),
      us(b[sim::CostKind::kCopy]),
      us(b[sim::CostKind::kKernel] + b[sim::CostKind::kInterrupt]),
      us(b[sim::CostKind::kProtocol] + b[sim::CostKind::kRegistration] +
         b[sim::CostKind::kDispatch]),
  };
}

Cpu dafs_case(std::size_t size, bool force_inline, bool reading) {
  dafs::ClientConfig cfg;
  cfg.direct_threshold = force_inline ? SIZE_MAX : 0;
  DafsBed bed(cfg);
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/f", dafs::kOpenCreate).value();
  auto data = make_data(size, 7);
  bench::require(bed.session->pwrite(fh, 0, data), "pwrite");  // warm
  constexpr int kIters = 16;
  bed.fabric.histograms().reset();  // measured loop only
  bed.client_actor->reset_busy();
  std::vector<std::byte> back(size);
  for (int i = 0; i < kIters; ++i) {
    if (reading) {
      bench::require(bed.session->pread(fh, 0, back), "pread");
    } else {
      bench::require(bed.session->pwrite(fh, 0, data), "pwrite");
    }
  }
  emit_metrics_json(
      bed.fabric, "e5_cpu_overhead",
      std::string("{\"path\":\"") + (force_inline ? "inline" : "direct") +
          "\",\"op\":\"" + (reading ? "read" : "write") +
          "\",\"size\":" + std::to_string(size) + "}");
  return cpu_of(bed.client_actor->busy(),
                static_cast<std::uint64_t>(kIters) * size);
}

Cpu nfs_case(std::size_t size, bool reading) {
  NfsBed bed;
  sim::ActorScope scope(*bed.client_actor);
  auto ino = bed.client->open("/f", nfs::kOpenCreate).value();
  auto data = make_data(size, 8);
  bed.client->pwrite(ino, 0, data);
  constexpr int kIters = 16;
  bed.client_actor->reset_busy();
  std::vector<std::byte> back(size);
  for (int i = 0; i < kIters; ++i) {
    if (reading) {
      bed.client->pread(ino, 0, back);
    } else {
      bed.client->pwrite(ino, 0, data);
    }
  }
  return cpu_of(bed.client_actor->busy(),
                static_cast<std::uint64_t>(kIters) * size);
}

void table_for(std::size_t size) {
  std::printf("\nTransfer size %s (client CPU us per MB moved):\n",
              size_label(size).c_str());
  Table t({"path", "op", "total us/MB", "copy", "kernel+irq", "proto+reg"});
  for (bool reading : {true, false}) {
    const char* op = reading ? "read" : "write";
    const Cpu dd = dafs_case(size, false, reading);
    const Cpu di = dafs_case(size, true, reading);
    const Cpu nn = nfs_case(size, reading);
    t.row({"DAFS direct", op, fmt(dd.us_per_mb_total), fmt(dd.copy),
           fmt(dd.kernel_irq), fmt(dd.protocol_reg)});
    t.row({"DAFS inline", op, fmt(di.us_per_mb_total), fmt(di.copy),
           fmt(di.kernel_irq), fmt(di.protocol_reg)});
    t.row({"NFS/TCP", op, fmt(nn.us_per_mb_total), fmt(nn.copy),
           fmt(nn.kernel_irq), fmt(nn.protocol_reg)});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf(
      "E5 [reconstructed Table 1]: client CPU overhead per MB\n"
      "(modeled CPU time attributed by category)\n");
  table_for(64 * 1024);
  table_for(1 << 20);
  std::printf(
      "\nExpected shape: DAFS direct ~protocol-only (order-of-magnitude\n"
      "below NFS); DAFS inline pays one copy; NFS pays copy + kernel +\n"
      "interrupts -> ~2500+ us/MB at a 400 MB/s copy engine.\n");
  return 0;
}
