// E10 (reconstructed ablation table): effect of the client registration
// cache on direct-I/O latency. Registration pins pages through the kernel
// (tens of microseconds) — paying it per operation erases much of the
// zero-copy win for medium transfers; caching amortizes it to ~zero for
// reused buffers.
#include "bench/common.hpp"

using namespace bench;

namespace {

double per_op_us(bool cache_on, std::size_t size) {
  dafs::ClientConfig cfg;
  cfg.direct_threshold = 0;  // always direct
  cfg.reg_cache = cache_on;
  DafsBed bed(cfg);
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/f", dafs::kOpenCreate).value();
  auto data = make_data(size, 3);
  bench::require(bed.session->pwrite(fh, 0, data), "pwrite");  // warm store + (maybe) cache
  constexpr int kIters = 20;
  const sim::Time t0 = bed.client_actor->now();
  for (int i = 0; i < kIters; ++i) bench::require(bed.session->pwrite(fh, 0, data), "pwrite");
  const double us = sim::to_usec(bed.client_actor->now() - t0) / kIters;
  emit_metrics_json(bed.fabric, "e10_regcache",
                    std::string("{\"reg_cache\":") +
                        (cache_on ? "true" : "false") +
                        ",\"size\":" + std::to_string(size) + "}");
  return us;
}

}  // namespace

int main() {
  std::printf(
      "E10 [reconstructed Table 3]: registration cache ablation\n"
      "(direct writes, reused buffer, per-op modeled microseconds)\n\n");
  Table t({"size", "cache on (us)", "cache off (us)", "penalty"});
  for (std::size_t size :
       {std::size_t{8192}, std::size_t{32768}, std::size_t{131072},
        std::size_t{524288}, std::size_t{1048576}}) {
    const double on = per_op_us(true, size);
    const double off = per_op_us(false, size);
    t.row({size_label(size), fmt(on), fmt(off), fmt(off - on) + " us"});
  }
  t.print();
  std::printf(
      "\nExpected shape: a roughly constant-plus-per-page registration\n"
      "penalty without the cache; relative impact largest for medium sizes\n"
      "where wire time does not yet dominate.\n");
  return 0;
}
