#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpi/runtime.hpp"
#include "nfs/client.hpp"
#include "nfs/server.hpp"
#include "sim/fabric.hpp"
#include "sim/rng.hpp"

/// \file common.hpp
/// Shared scaffolding for the figure/table reproduction binaries. All
/// reported times/bandwidths are **modeled (virtual) time** from the cost
/// engine — deterministic and calibrated to the paper-era hardware — never
/// host wall-clock.
namespace bench {

/// Abort loudly on an unexpected VIA failure — benches have no recovery
/// story, and a silent error would corrupt the reported numbers.
inline void require_ok(via::Status st, const char* what) {
  if (st != via::Status::kSuccess) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what, via::to_string(st));
    std::abort();
  }
}

/// Same contract for protocol statuses (mpiio::Err is dafs::PStatus).
inline void require_ok(dafs::PStatus st, const char* what) {
  if (st != dafs::PStatus::kOk) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what, dafs::to_string(st));
    std::abort();
  }
}

/// Unwrap a Result<T>, aborting loudly on error (timed loops must not
/// silently measure failed operations).
template <typename T>
inline T require(sim::Expected<T, dafs::PStatus> r, const char* what) {
  if (!r.ok()) require_ok(r.error(), what);
  return std::move(r).value();
}

/// MB/s (1 MB = 1e6 bytes) from bytes moved in virtual nanoseconds.
inline double mbps(std::uint64_t bytes, sim::Time ns) {
  if (ns == 0) return 0.0;
  return static_cast<double>(bytes) * 1'000.0 / static_cast<double>(ns);
}

inline std::vector<std::byte> make_data(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// Pretty size for row labels.
inline std::string size_label(std::uint64_t n) {
  char buf[32];
  if (n >= (1u << 20) && n % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMiB",
                  static_cast<unsigned long long>(n >> 20));
  } else if (n >= 1024 && n % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKiB",
                  static_cast<unsigned long long>(n >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

/// Simple aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < w.size(); ++i) {
        w[i] = std::max(w[i], r[i].size());
      }
    }
    auto line = [&] {
      std::printf("+");
      for (std::size_t i = 0; i < w.size(); ++i) {
        for (std::size_t k = 0; k < w[i] + 2; ++k) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    line();
    std::printf("|");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf(" %-*s |", static_cast<int>(w[i]), headers_[i].c_str());
    }
    std::printf("\n");
    line();
    for (const auto& r : rows_) {
      std::printf("|");
      for (std::size_t i = 0; i < r.size(); ++i) {
        std::printf(" %*s |", static_cast<int>(w[i]), r[i].c_str());
      }
      std::printf("\n");
    }
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Emit the fabric's unified metrics — Stats counters, registered gauges and
/// every histogram with at least one sample — as one single-line JSON object
/// next to the bench's human-readable tables. One schema, one writer, for
/// every bench (documented in EXPERIMENTS.md "Unified metrics JSON"):
///   {"bench": "<name>", "params": <object>,
///    "counters": {"<key>": u64, ...},
///    "gauges": {"<key>": u64, ...},
///    "histograms": {"<key>": {"count": u64, "sum": u64, "min": u64,
///                             "max": u64, "mean": f64, "p50": u64,
///                             "p95": u64, "p99": u64}, ...}}
/// Latency keys end in _ns (virtual nanoseconds), size keys in _bytes.
inline void emit_metrics_json(sim::Fabric& fabric, const std::string& bench,
                              const std::string& params_json = "{}") {
  std::printf("%s\n", fabric.metrics().to_json(bench, params_json).c_str());
}

/// A ready-to-use DAFS testbed: fabric, filer, one client node + session.
struct DafsBed {
  sim::Fabric fabric;
  sim::NodeId server_node;
  sim::NodeId client_node;
  std::unique_ptr<dafs::Server> server;
  std::unique_ptr<via::Nic> client_nic;
  std::unique_ptr<sim::Actor> client_actor;
  std::unique_ptr<dafs::Session> session;

  explicit DafsBed(dafs::MountSpec spec, dafs::ServerConfig scfg = {}) {
    server_node = fabric.add_node("filer");
    client_node = fabric.add_node("client0");
    server = std::make_unique<dafs::Server>(fabric, server_node, scfg);
    server->start();
    client_nic = std::make_unique<via::Nic>(fabric, client_node, "cli-nic");
    client_actor =
        std::make_unique<sim::Actor>("client0", &fabric.node(client_node));
    sim::ActorScope scope(*client_actor);
    session = std::move(dafs::Session::connect(*client_nic, spec).value());
  }

  /// Session-knob convenience: one default endpoint at ccfg.service.
  explicit DafsBed(dafs::ClientConfig ccfg = {}, dafs::ServerConfig scfg = {})
      : DafsBed(dafs::MountSpec{{}, std::move(ccfg)}, std::move(scfg)) {}

  ~DafsBed() {
    sim::ActorScope scope(*client_actor);
    session.reset();
  }
};

/// A replicated-pair testbed: primary filer + standby on its own node, the
/// journal streamed between them, and a client mounted on both endpoints in
/// failover order (E16, test_failover).
struct DafsPairBed {
  sim::Fabric fabric;
  sim::NodeId primary_node;
  sim::NodeId standby_node;
  sim::NodeId client_node;
  std::unique_ptr<dafs::Server> primary;
  std::unique_ptr<dafs::Server> standby;
  std::unique_ptr<via::Nic> client_nic;
  std::unique_ptr<sim::Actor> client_actor;
  std::unique_ptr<dafs::Session> session;

  explicit DafsPairBed(dafs::RetryPolicy retry = {},
                       dafs::ServerConfig base_scfg = {}) {
    primary_node = fabric.add_node("filer-a");
    standby_node = fabric.add_node("filer-b");
    client_node = fabric.add_node("client0");
    dafs::ServerConfig pcfg = base_scfg;
    pcfg.service = "dafs";
    pcfg.repl_peer = "dafs-repl";
    dafs::ServerConfig bcfg = base_scfg;
    bcfg.service = "dafs-b";
    bcfg.repl_listen = "dafs-repl";
    primary = std::make_unique<dafs::Server>(fabric, primary_node, pcfg);
    standby = std::make_unique<dafs::Server>(fabric, standby_node, bcfg);
    primary->start();
    standby->start();
    client_nic = std::make_unique<via::Nic>(fabric, client_node, "cli-nic");
    client_actor =
        std::make_unique<sim::Actor>("client0", &fabric.node(client_node));
    sim::ActorScope scope(*client_actor);
    session = std::move(
        dafs::Session::connect(*client_nic,
                               dafs::failover_mount({"dafs", "dafs-b"}, retry))
            .value());
  }

  ~DafsPairBed() {
    sim::ActorScope scope(*client_actor);
    session.reset();
    // Stop the standby first: tearing the primary down first looks exactly
    // like a crash and would promote the standby mid-teardown.
    standby->stop();
    primary->stop();
  }
};

/// An NFS testbed mirror.
struct NfsBed {
  sim::Fabric fabric;
  sim::NodeId server_node;
  sim::NodeId client_node;
  std::unique_ptr<nfs::Server> server;
  std::unique_ptr<sim::Actor> client_actor;
  std::unique_ptr<nfs::Client> client;

  explicit NfsBed(nfs::ClientConfig ccfg = {}) {
    server_node = fabric.add_node("nfs-server");
    client_node = fabric.add_node("client0");
    server = std::make_unique<nfs::Server>(fabric, server_node);
    server->start();
    client_actor =
        std::make_unique<sim::Actor>("client0", &fabric.node(client_node));
    sim::ActorScope scope(*client_actor);
    client = std::move(nfs::Client::connect(fabric, client_node, ccfg).value());
  }
};

}  // namespace bench
