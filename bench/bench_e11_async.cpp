// E11 (paper Fig. 8, reconstructed): asynchronous DAFS I/O — overlap benefit
// vs queue depth. With depth 1 every operation pays the full round trip
// serially; deeper pipelines overlap request processing, server time and
// wire transfer until a resource (the wire, for large requests) saturates.
#include "bench/common.hpp"

using namespace bench;

namespace {

double throughput(std::size_t size, int depth, int total_ops) {
  dafs::ClientConfig cfg;
  cfg.credits = 16;
  DafsBed bed(cfg);
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/f", dafs::kOpenCreate).value();
  auto data = make_data(size, 4);
  bench::require(bed.session->pwrite(fh, 0, data), "pwrite");  // warm
  std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(depth),
                                           std::vector<std::byte>(size));
  const sim::Time t0 = bed.client_actor->now();
  std::vector<dafs::OpId> inflight;
  int submitted = 0, completed = 0;
  while (completed < total_ops) {
    while (static_cast<int>(inflight.size()) < depth &&
           submitted < total_ops) {
      auto op = bed.session->submit_pread(
          fh, 0, bufs[static_cast<std::size_t>(submitted % depth)]);
      inflight.push_back(op.value());
      ++submitted;
    }
    bench::require_ok(bed.session->wait(inflight.front()), "wait");
    inflight.erase(inflight.begin());
    ++completed;
  }
  const double rate = mbps(static_cast<std::uint64_t>(total_ops) * size,
                           bed.client_actor->now() - t0);
  emit_metrics_json(bed.fabric, "e11_async",
                    "{\"size\":" + std::to_string(size) +
                        ",\"depth\":" + std::to_string(depth) + "}");
  return rate;
}

}  // namespace

int main() {
  std::printf(
      "E11 [reconstructed Fig.8]: async DAFS read throughput vs queue depth\n"
      "(modeled time, warm cache)\n\n");
  Table t({"depth", "64KiB MB/s", "256KiB MB/s"});
  for (int depth : {1, 2, 4, 8}) {
    t.row({std::to_string(depth), fmt(throughput(64 * 1024, depth, 24)),
           fmt(throughput(256 * 1024, depth, 24))});
  }
  t.print();
  std::printf(
      "\nExpected shape: depth 1 pays the full round trip per op; deeper\n"
      "queues overlap toward the wire limit, with diminishing returns once\n"
      "the link saturates.\n");
  return 0;
}
