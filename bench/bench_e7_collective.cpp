// E7 (paper Fig. 6, reconstructed): access-strategy comparison for the
// classic ROMIO strided (block-cyclic) pattern, on both drivers:
//   - independent: one request per strided piece (the naive pattern)
//   - native:      one noncontiguous request (DAFS -> batched direct list
//                  I/O; NFS -> data sieving for reads, per-piece writes)
//   - two-phase:   collective buffering via aggregators
// Expected shape: on NFS, two-phase rescues the pattern (orders of
// magnitude over naive); on DAFS, batched list-I/O already recovers most of
// the loss in ONE request, so two-phase's extra redistribution hop only
// pays off as piece size shrinks — exactly the trade-off an MPI-IO-on-DAFS
// implementation paper highlights.
#include <array>
#include <atomic>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/ad_nfs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

constexpr std::uint32_t kBlock = 1024;  // per-rank block in each tile
constexpr int kTiles = 64;

enum class Mode { kIndependent, kNative, kCollective };

double run(bool use_dafs, int np, Mode mode, bool writing) {
  sim::Fabric fabric;
  dafs::Server dserver(fabric, fabric.add_node("filer"));
  nfs::Server nserver(fabric, fabric.add_node("nfs-server"));
  dserver.start();
  nserver.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = np;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  std::atomic<std::uint64_t> elapsed{0};
  world.run([&](mpi::Comm& c) {
    std::unique_ptr<via::Nic> nic;
    std::unique_ptr<dafs::Session> session;
    std::unique_ptr<nfs::Client> client;
    auto make_driver = [&]() -> std::unique_ptr<mpiio::AdioDriver> {
      if (use_dafs) {
        if (!nic) {
          nic = std::make_unique<via::Nic>(fabric, world.node_of(c.rank()),
                                           "cli");
          session = std::move(dafs::Session::connect(*nic).value());
        }
        return mpiio::dafs_driver(*session);
      }
      if (!client) {
        client = std::move(
            nfs::Client::connect(fabric, world.node_of(c.rank())).value());
      }
      return mpiio::nfs_driver(*client);
    };

    auto f = std::move(mpiio::File::open(c, "/strided.dat",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{}, make_driver())
                           .value());
    // Block-cyclic view: rank r owns block r of each np-block tile.
    const std::array<std::uint32_t, 1> sizes = {
        kBlock * static_cast<std::uint32_t>(np)};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft =
        mpi::Datatype::subarray(sizes, subsizes, starts, mpi::Datatype::byte());
    bench::require_ok(f->set_view(0, mpi::Datatype::byte(), ft), "set_view");

    auto data = make_data(kBlock * kTiles, 10 + c.rank());
    bench::require(f->write_at_all(0, data.data(), data.size(), mpi::Datatype::byte()),
        "write_at_all");
    c.barrier();

    const sim::Time t0 = c.actor().now();
    std::vector<std::byte> back(data.size());
    switch (mode) {
      case Mode::kIndependent:
        for (int tile = 0; tile < kTiles; ++tile) {
          const std::uint64_t off = static_cast<std::uint64_t>(tile) * kBlock;
          if (writing) {
            bench::require(
                f->write_at(off, data.data() + tile * kBlock, kBlock,
                        mpi::Datatype::byte()),
                "write_at");
          } else {
            bench::require(
                f->read_at(off, back.data() + tile * kBlock, kBlock,
                       mpi::Datatype::byte()),
                "read_at");
          }
        }
        break;
      case Mode::kNative:
        if (writing) {
          bench::require(f->write_at(0, data.data(), data.size(), mpi::Datatype::byte()),
              "write_at");
        } else {
          bench::require(f->read_at(0, back.data(), back.size(), mpi::Datatype::byte()),
              "read_at");
        }
        break;
      case Mode::kCollective:
        if (writing) {
          bench::require(f->write_at_all(0, data.data(), data.size(), mpi::Datatype::byte()),
              "write_at_all");
        } else {
          bench::require(f->read_at_all(0, back.data(), back.size(), mpi::Datatype::byte()),
              "read_at_all");
        }
        break;
    }
    std::uint64_t dt = c.actor().now() - t0;
    std::vector<std::uint64_t> mv = {dt};
    c.allreduce(std::span<std::uint64_t>(mv), mpi::Op::kMax);
    if (c.rank() == 0) elapsed.store(mv[0]);
    bench::require_ok(f->close(), "close");
  });
  emit_metrics_json(
      fabric, "e7_collective",
      std::string("{\"driver\":\"") + (use_dafs ? "dafs" : "nfs") +
          "\",\"np\":" + std::to_string(np) + ",\"mode\":\"" +
          (mode == Mode::kIndependent
               ? "independent"
               : mode == Mode::kNative ? "native" : "two_phase") +
          "\",\"op\":\"" + (writing ? "write" : "read") + "\"}");
  return mbps(static_cast<std::uint64_t>(np) * kBlock * kTiles,
              elapsed.load());
}

}  // namespace

int main() {
  std::printf(
      "E7 [reconstructed Fig.6]: strided access strategies, both drivers\n"
      "(block-cyclic, %u B blocks, %d tiles, aggregate MB/s)\n\n",
      kBlock, kTiles);
  for (bool writing : {false, true}) {
    std::printf("%s:\n", writing ? "WRITE" : "READ");
    Table t({"np", "nfs indep", "nfs native", "nfs 2-phase", "dafs indep",
             "dafs list-io", "dafs 2-phase"});
    for (int np : {2, 4, 8}) {
      t.row({std::to_string(np), fmt(run(false, np, Mode::kIndependent, writing)),
             fmt(run(false, np, Mode::kNative, writing)),
             fmt(run(false, np, Mode::kCollective, writing)),
             fmt(run(true, np, Mode::kIndependent, writing)),
             fmt(run(true, np, Mode::kNative, writing)),
             fmt(run(true, np, Mode::kCollective, writing))});
    }
    t.print();
  }
  std::printf(
      "\nExpected shape: independent worst everywhere (per-piece requests).\n"
      "On NFS, two-phase is the big win (few large RPCs). On DAFS, batched\n"
      "list-I/O already collapses the pattern into one request, so it rivals\n"
      "or beats two-phase — the flexibility DAFS gives an MPI-IO driver.\n");
  return 0;
}
