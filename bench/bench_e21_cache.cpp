// E21 (client caching, beyond the paper): what a server-issued delegation
// buys small repeated I/O, swept through the typed MPI-IO hint set:
//   - off:         no dafs_cache_bytes hint — every record op is a full
//                  client/filer round trip (the paper-era DAFS fast path).
//   - after_write: write-through with delegated read caching — writes still
//                  pay the wire, repeated reads are local.
//   - after_close: write-back — dirty records buffer client-side and flush
//                  as batched extents at close/sync/recall; repeated reads
//                  and rewrites are both local.
//   - after_job:   after_close plus a delegation (and cache) that survives
//                  close, for open/close-heavy jobs.
// The headline is per-op latency of the repeated passes relative to "off";
// the after_close row is the acceptance bar (>= 5x lower per-op latency).
//
// A second client then stages the episode the lease machinery exists for: a
// conflicting open against a holder with buffered dirty bytes. The server
// starts a recall, sheds the intruder kBusy, and the holder's next renewal
// poll flushes the dirty extents and returns the delegation — leaving the
// dafs.deleg.recall span in a traced run (tier1.sh validates it via
// scripts/check_trace.py --require-span) and the dafs.cache.* counters in
// the unified metrics JSON (scripts/check_metrics.py).
#include <cstring>
#include <string>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "mpiio/info.hpp"

using namespace bench;

namespace {

constexpr std::size_t kRecord = 2 * 1024;
constexpr int kRecords = 32;
constexpr int kPasses = 8;
constexpr std::uint64_t kSeed = 21;

struct RunResult {
  std::uint64_t read_ns_per_op = 0;
  std::uint64_t write_ns_per_op = 0;
  std::uint64_t total_ns = 0;
};

/// One consistency level end to end through the MPI-IO hint path: populate
/// kRecords x kRecord, then kPasses of read-modify-write over every record.
/// Only the repeated passes are timed — the population pass is cold for
/// every mode.
RunResult run_level(const char* level) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server server(fabric, server_node, {});
  server.start();

  mpiio::Info info;
  if (level != nullptr) {
    info.set("dafs_consistency", level);
    info.set("dafs_cache_bytes", std::uint64_t{1} << 20);
  }
  const dafs::MountSpec mspec = mpiio::HintSet::parse(info).mount_spec();

  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  mpi::World world(wcfg);

  RunResult out;
  const auto data = make_data(static_cast<std::size_t>(kRecords) * kRecord,
                              kSeed);
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto client = std::move(dafs::Client::connect(nic, mspec).value());
    auto f = std::move(mpiio::File::open(c, "/e21",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         info, mpiio::dafs_driver(*client))
                           .value());
    for (int i = 0; i < kRecords; ++i) {
      const std::uint64_t off = static_cast<std::uint64_t>(i) * kRecord;
      const auto w = f->write_at(off, data.data() + off, kRecord,
                                 mpi::Datatype::byte());
      if (!w.ok() || w.value() != kRecord) {
        std::fprintf(stderr, "bench: populate record %d failed\n", i);
        std::abort();
      }
    }
    require_ok(f->sync(), "populate sync");

    std::vector<std::byte> rec(kRecord);
    std::uint64_t read_ns = 0;
    std::uint64_t write_ns = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (int i = 0; i < kRecords; ++i) {
        const std::uint64_t off = static_cast<std::uint64_t>(i) * kRecord;
        const sim::Time r0 = c.actor().now();
        const auto r = f->read_at(off, rec.data(), kRecord,
                                  mpi::Datatype::byte());
        read_ns += c.actor().now() - r0;
        if (!r.ok() || r.value() != kRecord ||
            std::memcmp(rec.data(), data.data() + off, kRecord) != 0) {
          std::fprintf(stderr, "bench: pass %d record %d read wrong\n", pass,
                       i);
          std::abort();
        }
        const sim::Time w0 = c.actor().now();
        const auto w = f->write_at(off, data.data() + off, kRecord,
                                   mpi::Datatype::byte());
        write_ns += c.actor().now() - w0;
        if (!w.ok() || w.value() != kRecord) {
          std::fprintf(stderr, "bench: pass %d record %d rewrite failed\n",
                       pass, i);
          std::abort();
        }
      }
    }
    const std::uint64_t ops =
        static_cast<std::uint64_t>(kPasses) * kRecords;
    out.read_ns_per_op = read_ns / ops;
    out.write_ns_per_op = write_ns / ops;
    out.total_ns = read_ns + write_ns;
    require_ok(f->close(), "close");
  });
  server.stop();
  return out;
}

/// The recall episode: a holder with buffered dirty bytes, a conflicting
/// opener shed kBusy while the server recalls, the holder's renewal poll
/// flushing and returning the delegation. Run last so a traced invocation's
/// dump carries the dafs.deleg.recall span, and emit the unified metrics
/// JSON from this fabric (grants, recalls, write-back bytes, the recall
/// latency histogram).
void run_recall() {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  const auto node_a = fabric.add_node("holder");
  const auto node_b = fabric.add_node("reader");
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 0;
  dafs::Server server(fabric, server_node, scfg);
  via::Nic nic_a(fabric, node_a, "nic-a");
  via::Nic nic_b(fabric, node_b, "nic-b");
  sim::Actor actor_a("holder", &fabric.node(node_a));
  sim::Actor actor_b("reader", &fabric.node(node_b));
  server.start();
  const std::uint64_t term_ns = dafs::ServerConfig{}.deleg_term_ns;

  dafs::RetryPolicy retry;
  retry.backoff_ns = 10'000;
  retry.backoff_cap_ns = 500'000;
  dafs::RetryPolicy retry_b = retry;
  retry_b.max_busy_retries = 2;

  const auto dirty = make_data(8 * 1024, kSeed + 1);
  {
    sim::ActorScope scope_a(actor_a);
    auto holder = std::move(
        dafs::Client::connect(nic_a, dafs::single_mount("dafs", retry))
            .value());
    dafs::OpenOptions o;
    o.flags = dafs::kOpenCreate;
    o.consistency = dafs::Consistency::kAfterClose;
    o.cache_bytes = 1 << 20;
    auto fh = require(holder->open("/recall.dat", o), "holder open");
    if (!holder->has_delegation(fh)) {
      std::fprintf(stderr, "bench: sole opener got no delegation\n");
      std::abort();
    }
    if (!holder->pwrite(fh, 0, dirty).ok()) {
      std::fprintf(stderr, "bench: buffered write failed\n");
      std::abort();
    }

    {
      sim::ActorScope scope_b(actor_b);
      auto reader = std::move(
          dafs::Session::connect(nic_b, dafs::single_mount("dafs", retry_b))
              .value());
      auto bo = reader->open("/recall.dat");
      if (bo.ok()) {
        std::fprintf(stderr, "bench: conflicting open was not shed\n");
        std::abort();
      }

      // Holder notices the recall at its renewal poll: flushes the dirty
      // extents, returns the delegation.
      {
        sim::ActorScope scope_a2(actor_a);
        actor_a.advance(term_ns * 3 / 4 + term_ns / 8);
        std::vector<std::byte> mine(dirty.size());
        if (!holder->pread(fh, 0, mine).ok()) {
          std::fprintf(stderr, "bench: holder read failed\n");
          std::abort();
        }
      }

      // The intruder's retry goes through and sees the flushed bytes.
      auto bfh = require(reader->open("/recall.dat"), "reader re-open");
      std::vector<std::byte> back(dirty.size());
      const auto r = reader->pread(bfh, 0, back);
      if (!r.ok() || r.value() != dirty.size() || back != dirty) {
        std::fprintf(stderr, "bench: reader missed the write-back\n");
        std::abort();
      }
    }
    sim::ActorScope scope_a3(actor_a);
    require_ok(holder->close(fh), "holder close");
  }

  if (fabric.stats().get("dafs.cache.recalls") == 0 ||
      fabric.stats().get("dafs.cache.recalls_serviced") == 0 ||
      fabric.stats().get("dafs.cache.writeback_bytes") < dirty.size()) {
    std::fprintf(stderr, "bench: recall episode left no recall behind\n");
    std::abort();
  }
  emit_metrics_json(fabric, "e21_cache",
                    "{\"record\":2048,\"records\":32,\"passes\":8,"
                    "\"dirty_bytes\":8192,\"seed\":21}");
  server.stop();
}

std::string speedup(std::uint64_t base, std::uint64_t v) {
  if (v == 0) return "-";
  return fmt(static_cast<double>(base) / static_cast<double>(v)) + "x";
}

}  // namespace

int main() {
  std::printf(
      "E21 [client cache]: %d passes of read-modify-write over %d x %zu B "
      "records per consistency level (dafs_consistency/dafs_cache_bytes "
      "hints). off = no cache, every op a filer round trip; after_write = "
      "write-through + read caching; after_close/after_job = write-back "
      "under a server-issued delegation. Then a conflicting open stages a "
      "recall: holder flushes and returns, intruder reads the write-back.\n\n",
      kPasses, kRecords, kRecord);

  const RunResult off = run_level(nullptr);
  const RunResult aw = run_level("after_write");
  const RunResult ac = run_level("after_close");
  const RunResult aj = run_level("after_job");

  Table t({"mode", "read ns/op", "write ns/op", "speedup"});
  t.row({"off", std::to_string(off.read_ns_per_op),
         std::to_string(off.write_ns_per_op), "-"});
  t.row({"after_write", std::to_string(aw.read_ns_per_op),
         std::to_string(aw.write_ns_per_op),
         speedup(off.total_ns, aw.total_ns)});
  t.row({"after_close", std::to_string(ac.read_ns_per_op),
         std::to_string(ac.write_ns_per_op),
         speedup(off.total_ns, ac.total_ns)});
  t.row({"after_job", std::to_string(aj.read_ns_per_op),
         std::to_string(aj.write_ns_per_op),
         speedup(off.total_ns, aj.total_ns)});
  t.print();

  // Acceptance bar: write-back caching must be >= 5x lower per-op latency
  // than the uncached path on this workload.
  if (ac.total_ns * 5 > off.total_ns) {
    std::fprintf(stderr,
                 "bench: after_close per-op latency not >=5x lower than "
                 "cache-off (%llu vs %llu total ns)\n",
                 static_cast<unsigned long long>(ac.total_ns),
                 static_cast<unsigned long long>(off.total_ns));
    std::abort();
  }
  std::printf(
      "cache effect: after_close runs %s faster per op than the uncached "
      "path on small repeated I/O; the recall episode below left "
      "dafs.cache.* counters and a dafs.deleg.recall span behind.\n\n",
      speedup(off.total_ns, ac.total_ns).c_str());

  run_recall();
  return 0;
}
