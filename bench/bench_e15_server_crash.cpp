// E15 (server crash, beyond the paper): bandwidth timeline of a steady DAFS
// write stream with per-window sync checkpoints across a full server
// crash/restart. The fault plan kills the filer after its Nth request and
// restarts it after a delay with ALL volatile state discarded; the
// write-ahead journal keeps every synced checkpoint durable, the client
// reclaims its session/handles through the lease protocol, and the stream
// resumes. Chunks acked after the last checkpoint but never synced legally
// vanish — the bench counts them, proves they are confined to the crash
// window, repairs them app-side (checkpoint-restart), and verifies the file
// byte-exact. A final overload phase saturates the admission queue to show
// kBusy shedding with bounded replay-cache memory. Ends with the one-line
// histogram JSON (including dafs.server_service_ns, whose p99 is the
// admitted-request latency) for the plotting pipeline.
#include <cstring>

#include "bench/common.hpp"

using namespace bench;

namespace {

constexpr std::size_t kChunk = 64 * 1024;  // direct path
constexpr int kChunks = 96;
constexpr int kWindow = 8;                   // chunks per checkpoint window
constexpr std::uint64_t kCrashAfter = 40;    // server requests before crash
constexpr std::uint64_t kRestartMs = 20;     // real-time restart delay

struct StreamResult {
  std::vector<double> window_mbps;  // one entry per kWindow chunks
  double total_mbps = 0;
};

/// Write kChunks chunks with a sync checkpoint after every window, recording
/// per-window bandwidth in virtual time. Aborts on any error: with recovery
/// on, every chunk must succeed even across the crash.
StreamResult run_stream(DafsBed& bed, const std::vector<std::byte>& data) {
  sim::ActorScope scope(*bed.client_actor);
  auto fh = require(bed.session->open("/e15", dafs::kOpenCreate), "open");
  StreamResult out;
  const sim::Time start = bed.client_actor->now();
  sim::Time window_t0 = start;
  for (int i = 0; i < kChunks; ++i) {
    auto r = bed.session->pwrite(
        fh, static_cast<std::uint64_t>(i) * kChunk,
        std::span(data.data() + static_cast<std::size_t>(i) * kChunk, kChunk));
    if (!r.ok() || r.value() != kChunk) {
      std::fprintf(stderr, "bench: pwrite chunk %d failed\n", i);
      std::abort();
    }
    if ((i + 1) % kWindow == 0) {
      // Checkpoint: everything up to chunk i is durable from here on.
      require_ok(bed.session->sync(fh), "sync");
      const sim::Time now = bed.client_actor->now();
      out.window_mbps.push_back(
          mbps(static_cast<std::uint64_t>(kWindow) * kChunk, now - window_t0));
      window_t0 = now;
    }
  }
  out.total_mbps = mbps(static_cast<std::uint64_t>(kChunks) * kChunk,
                        bed.client_actor->now() - start);
  return out;
}

/// Read the file back and return the indices of chunks that do not match the
/// written data (those acked after the last checkpoint before the crash).
std::vector<int> lost_chunks(DafsBed& bed, const std::vector<std::byte>& data) {
  sim::ActorScope scope(*bed.client_actor);
  auto fh = require(bed.session->open("/e15"), "open for verify");
  std::vector<std::byte> back(data.size());
  auto r = bed.session->pread(fh, 0, back);
  if (!r.ok()) {
    std::fprintf(stderr, "bench: verify pread failed\n");
    std::abort();
  }
  std::vector<int> lost;
  for (int i = 0; i < kChunks; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * kChunk;
    if (r.value() < off + kChunk ||
        std::memcmp(back.data() + off, data.data() + off, kChunk) != 0) {
      lost.push_back(i);
    }
  }
  return lost;
}

/// Rewrite the lost chunks and sync — the application-level restart step a
/// checkpointing workload would take — then require byte-exactness.
void repair_and_verify(DafsBed& bed, const std::vector<std::byte>& data,
                       const std::vector<int>& lost) {
  {
    sim::ActorScope scope(*bed.client_actor);
    auto fh = require(bed.session->open("/e15"), "open for repair");
    for (int i : lost) {
      const std::size_t off = static_cast<std::size_t>(i) * kChunk;
      auto w = bed.session->pwrite(fh, off, std::span(data.data() + off,
                                                      kChunk));
      if (!w.ok() || w.value() != kChunk) {
        std::fprintf(stderr, "bench: repair pwrite chunk %d failed\n", i);
        std::abort();
      }
    }
    require_ok(bed.session->sync(fh), "repair sync");
  }
  if (!lost_chunks(bed, data).empty()) {
    std::fprintf(stderr, "bench: file not byte-exact after repair\n");
    std::abort();
  }
}

/// Saturate the admission queue with concurrent async writes against a tiny
/// limit: excess requests are shed with kBusy, the client backs off and
/// retries, and the bounded replay cache keeps server memory flat.
void overload_phase(DafsBed& bed, const std::vector<std::byte>& data) {
  sim::ActorScope scope(*bed.client_actor);
  auto fh = require(bed.session->open("/e15"), "open for overload");
  bed.server->set_admission_limit(2);
  constexpr int kInflight = 8;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<dafs::OpId> ops;
    for (int j = 0; j < kInflight; ++j) {
      auto h = bed.session->submit_pwrite(
          fh, static_cast<std::uint64_t>(j) * kChunk,
          std::span(data.data(), kChunk));
      if (h.ok()) ops.push_back(h.value());
    }
    require_ok(bed.session->wait_all(ops), "overload wait_all");
  }
  bed.server->set_admission_limit(256);
}

}  // namespace

int main() {
  std::printf("E15 [server crash]: 96 x 64 KiB DAFS writes, sync every %d "
              "chunks, server killed after request %llu and restarted %llu ms "
              "later with volatile state discarded\n\n",
              kWindow, static_cast<unsigned long long>(kCrashAfter),
              static_cast<unsigned long long>(kRestartMs));

  const auto data = make_data(static_cast<std::size_t>(kChunks) * kChunk, 15);

  dafs::RetryPolicy retry;
  retry.attempts = 8;
  retry.backoff_ns = 100'000;
  retry.backoff_cap_ns = 10'000'000;
  retry.jitter_seed = 15;
  const dafs::MountSpec mspec = dafs::single_mount("dafs", retry);

  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 5;  // short grace so the bench stays quick

  DafsBed clean(mspec, scfg);
  const StreamResult base = run_stream(clean, data);

  DafsBed crashed(mspec, scfg);
  crashed.fabric.faults().arm(15);
  crashed.fabric.faults().crash_server_after_requests(kCrashAfter, kRestartMs);
  const StreamResult hurt = run_stream(crashed, data);
  crashed.fabric.faults().clear();

  const std::vector<int> lost = lost_chunks(crashed, data);
  // Un-synced loss must be confined to the single window the crash landed
  // in: every checkpointed chunk came back byte-exact.
  if (static_cast<int>(lost.size()) > kWindow ||
      (!lost.empty() && lost.back() - lost.front() >= kWindow)) {
    std::fprintf(stderr, "bench: lost chunks not confined to one window\n");
    std::abort();
  }
  repair_and_verify(crashed, data, lost);

  Table t({"window", "clean MB/s", "crashed MB/s", "ratio"});
  for (std::size_t w = 0; w < hurt.window_mbps.size(); ++w) {
    t.row({std::to_string(w * kWindow) + "-" +
               std::to_string((w + 1) * kWindow - 1),
           fmt(base.window_mbps[w]), fmt(hurt.window_mbps[w]),
           fmt(hurt.window_mbps[w] / base.window_mbps[w], 2)});
  }
  t.print();
  std::printf("total: clean %.1f MB/s, crashed %.1f MB/s\n", base.total_mbps,
              hurt.total_mbps);
  std::printf("un-synced chunks lost to the crash: %zu (confined to one "
              "%d-chunk window, repaired and re-synced)\n",
              lost.size(), kWindow);

  overload_phase(crashed, data);

  // Crash/recovery counters (dafs.server_crashes, session_reclaims,
  // retransmits, busy_shed, ...), the replay-cache gauge and the
  // service-latency percentiles all ride in the unified metrics document.
  emit_metrics_json(crashed.fabric, "e15_server_crash",
                    "{\"chunk\":65536,\"chunks\":96,\"sync_every\":8,"
                    "\"crash_after\":40,\"restart_ms\":20,\"seed\":15}");
  return 0;
}
