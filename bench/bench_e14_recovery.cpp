// E14 (recovery, beyond the paper): bandwidth timeline of a steady DAFS
// write stream across injected VI connection breaks. The fault plan breaks
// the "dafs" connection every N completions; the session layer reconnects
// with seeded jittered backoff, resumes, and retransmits the in-flight
// request, so the stream completes byte-identical — the cost shows up as a
// bandwidth dip in the window holding the break, quantified against a
// fault-free run of the same stream. Ends with the one-line histogram JSON
// (including dafs.reconnect_ns) for the plotting pipeline.
#include <cstring>

#include "bench/common.hpp"

using namespace bench;

namespace {

constexpr std::size_t kChunk = 64 * 1024;  // direct path
constexpr int kChunks = 96;
constexpr int kWindow = 8;              // chunks per timeline row
constexpr std::uint64_t kBreakEvery = 40;  // completions between breaks

struct StreamResult {
  std::vector<double> window_mbps;  // one entry per kWindow chunks
  double total_mbps = 0;
};

/// Write kChunks chunks of kChunk bytes and record per-window bandwidth in
/// virtual time. Aborts on any error: with recovery on, every chunk must
/// succeed even across breaks.
StreamResult run_stream(DafsBed& bed, const std::vector<std::byte>& data) {
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/e14", dafs::kOpenCreate);
  if (!fh.ok()) {
    std::fprintf(stderr, "bench: open failed\n");
    std::abort();
  }
  StreamResult out;
  const sim::Time start = bed.client_actor->now();
  sim::Time window_t0 = start;
  for (int i = 0; i < kChunks; ++i) {
    auto r = bed.session->pwrite(
        fh.value(), static_cast<std::uint64_t>(i) * kChunk,
        std::span(data.data() + static_cast<std::size_t>(i) * kChunk, kChunk));
    if (!r.ok() || r.value() != kChunk) {
      std::fprintf(stderr, "bench: pwrite chunk %d failed\n", i);
      std::abort();
    }
    if ((i + 1) % kWindow == 0) {
      const sim::Time now = bed.client_actor->now();
      out.window_mbps.push_back(
          mbps(static_cast<std::uint64_t>(kWindow) * kChunk, now - window_t0));
      window_t0 = now;
    }
  }
  out.total_mbps = mbps(static_cast<std::uint64_t>(kChunks) * kChunk,
                        bed.client_actor->now() - start);
  return out;
}

void verify_stream(DafsBed& bed, const std::vector<std::byte>& data) {
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/e14");
  std::vector<std::byte> back(data.size());
  auto r = bed.session->pread(fh.value(), 0, back);
  if (!r.ok() || r.value() != back.size() ||
      std::memcmp(back.data(), data.data(), back.size()) != 0) {
    std::fprintf(stderr, "bench: post-recovery readback mismatch\n");
    std::abort();
  }
}

}  // namespace

int main() {
  std::printf("E14 [recovery]: 96 x 64 KiB DAFS writes, VI break every %llu "
              "completions, session recovery on\n\n",
              static_cast<unsigned long long>(kBreakEvery));

  const auto data = make_data(static_cast<std::size_t>(kChunks) * kChunk, 14);

  dafs::RetryPolicy retry;
  retry.attempts = 8;
  retry.backoff_ns = 100'000;
  retry.backoff_cap_ns = 10'000'000;
  retry.jitter_seed = 14;
  const dafs::MountSpec mspec = dafs::single_mount("dafs", retry);

  DafsBed clean(mspec);
  const StreamResult base = run_stream(clean, data);

  DafsBed faulted(mspec);
  faulted.fabric.faults().arm(14);
  faulted.fabric.faults().break_conn_after("dafs", kBreakEvery,
                                           /*repeat=*/true);
  const StreamResult hurt = run_stream(faulted, data);
  faulted.fabric.faults().clear();
  verify_stream(faulted, data);

  Table t({"window", "clean MB/s", "faulted MB/s", "ratio"});
  for (std::size_t w = 0; w < hurt.window_mbps.size(); ++w) {
    t.row({std::to_string(w * kWindow) + "-" +
               std::to_string((w + 1) * kWindow - 1),
           fmt(base.window_mbps[w]), fmt(hurt.window_mbps[w]),
           fmt(hurt.window_mbps[w] / base.window_mbps[w], 2)});
  }
  t.print();
  std::printf("total: clean %.1f MB/s, faulted %.1f MB/s\n", base.total_mbps,
              hurt.total_mbps);

  // Recovery counters (fault.conn_breaks, dafs.recoveries, retransmits,
  // replay_hits, ...) ride in the unified metrics document.
  emit_metrics_json(faulted.fabric, "e14_recovery",
                    "{\"chunk\":65536,\"chunks\":96,\"break_every\":40,"
                    "\"seed\":14}");
  return 0;
}
