// E18 (quorum, beyond the paper): the same kill-the-leader fault plan hits
// both replication designs and the bench times the outage each one leaves:
//   - pair (PR 5): semi-sync journal shipping to one standby. The crash
//     kills the primary; the standby promotes itself when the replication
//     channel dies and the client rotates to it.
//   - quorum (this PR): a three-member Raft group. The crash kills the
//     leader; the survivors elect a successor (randomized 50-100 ms
//     timeouts), clients chase kNotLeader hints to it, and the rebooted
//     ex-leader rejoins as a follower and re-silvers its journal.
// The headline number is the worst single-write wall-clock stall — the
// window in which the stream was actually blocked — alongside end-to-end
// wall time. The outage is a real-time phenomenon (restart delay, election
// timeouts, reconnect polling are real sleeps), so wall-clock is the honest
// ruler; modeled bandwidth is reported for context. Acked-but-unsynced
// chunks may legally die with the killed node on either path; the bench
// proves the loss is confined to one sync window, repairs it app-side, and
// verifies the file byte-exact before accepting the timing. A traced run
// (DAFS_TRACE=...) must also record the election and the ex-leader's
// catch-up: tier1.sh validates raft.election / raft.resilver spans via
// scripts/check_trace.py --require-span.
#include <chrono>
#include <cstring>
#include <thread>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

constexpr std::size_t kChunk = 64 * 1024;   // direct path
constexpr int kChunks = 48;
constexpr int kWindow = 8;                   // chunks per sync checkpoint
constexpr std::uint64_t kCrashAfter = 12;    // admitted requests before crash
constexpr std::uint64_t kRestartMs = 150;    // real-time restart delay
constexpr std::uint64_t kSeed = 18;

struct RunResult {
  double wall_ms = 0;      // host wall-clock, stream start -> last sync
  double stall_ms = 0;     // worst single-write stall (the outage window)
  double virt_mbps = 0;    // modeled bandwidth over the same interval
  int lost_chunks = 0;     // acked-unsynced chunks the crash devoured
  std::uint64_t crashes = 0;
  std::uint64_t elections = 0;  // dafs.elections_won (0 on the pair path)
};

/// Write the stream through MPI-IO with a sync checkpoint per window, then
/// verify/repair/verify. The crash lands mid-stream in both scenarios; every
/// write must eventually succeed (transparently recovered or retried).
RunResult run_world(sim::Fabric& fabric, mpi::World& world,
                    const dafs::MountSpec& mspec,
                    const std::vector<std::byte>& data) {
  RunResult out;
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic, mspec).value());
    auto f = std::move(mpiio::File::open(c, "/e18",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{},
                                         mpiio::dafs_driver(*session))
                           .value());
    const auto wall0 = std::chrono::steady_clock::now();
    const sim::Time t0 = c.actor().now();
    for (int i = 0; i < kChunks; ++i) {
      const std::uint64_t off = static_cast<std::uint64_t>(i) * kChunk;
      const auto stall0 = std::chrono::steady_clock::now();
      bool ok = false;
      for (int t = 0; t < 16 && !ok; ++t) {
        auto r = f->write_at(off, data.data() + off, kChunk,
                             mpi::Datatype::byte());
        ok = r.ok() && r.value() == kChunk;
      }
      if (!ok) {
        std::fprintf(stderr, "bench: write chunk %d failed\n", i);
        std::abort();
      }
      const double stall =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - stall0)
              .count();
      if (stall > out.stall_ms) out.stall_ms = stall;
      if ((i + 1) % kWindow == 0) require_ok(f->sync(), "sync");
    }
    out.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    out.virt_mbps = mbps(static_cast<std::uint64_t>(kChunks) * kChunk,
                         c.actor().now() - t0);

    // Verify; chunks acked after the last pre-crash checkpoint may have
    // legally vanished. They must be confined to one window and an
    // app-level rewrite repairs them.
    std::vector<std::byte> back(data.size());
    auto rd = f->read_at(0, back.data(), back.size(), mpi::Datatype::byte());
    if (!rd.ok()) {
      std::fprintf(stderr, "bench: verify read failed\n");
      std::abort();
    }
    std::vector<int> lost;
    for (int i = 0; i < kChunks; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * kChunk;
      if (rd.value() < off + kChunk ||
          std::memcmp(back.data() + off, data.data() + off, kChunk) != 0) {
        lost.push_back(i);
      }
    }
    if (static_cast<int>(lost.size()) > kWindow ||
        (!lost.empty() && lost.back() - lost.front() >= kWindow)) {
      std::fprintf(stderr, "bench: lost chunks not confined to one window:");
      for (int i : lost) std::fprintf(stderr, " %d", i);
      std::fprintf(stderr, "\n");
      std::abort();
    }
    out.lost_chunks = static_cast<int>(lost.size());
    for (int i : lost) {
      const std::size_t off = static_cast<std::size_t>(i) * kChunk;
      auto w =
          f->write_at(off, data.data() + off, kChunk, mpi::Datatype::byte());
      if (!w.ok() || w.value() != kChunk) {
        std::fprintf(stderr, "bench: repair write chunk %d failed\n", i);
        std::abort();
      }
    }
    require_ok(f->sync(), "repair sync");
    rd = f->read_at(0, back.data(), back.size(), mpi::Datatype::byte());
    if (!rd.ok() || rd.value() != back.size() ||
        std::memcmp(back.data(), data.data(), back.size()) != 0) {
      std::fprintf(stderr, "bench: file not byte-exact after repair\n");
      std::abort();
    }
    f->close();
  });
  out.crashes = fabric.stats().get("dafs.server_crashes");
  out.elections = fabric.stats().get("dafs.elections_won");
  if (out.crashes == 0) {
    std::fprintf(stderr, "bench: armed crash never fired\n");
    std::abort();
  }
  return out;
}

dafs::RetryPolicy retry_policy() {
  dafs::RetryPolicy retry;
  retry.attempts = 8;
  retry.backoff_ns = 100'000;
  retry.backoff_cap_ns = 10'000'000;
  retry.jitter_seed = kSeed;
  return retry;
}

/// PR 5 path: semi-sync pair, the client rotates to the promoted standby.
RunResult run_pair(const std::vector<std::byte>& data) {
  sim::Fabric fabric;
  sim::NodeId primary_node = fabric.add_node("filer-a");
  sim::NodeId standby_node = fabric.add_node("filer-b");
  dafs::ServerConfig pcfg;
  pcfg.grace_period_ms = 5;
  pcfg.service = "dafs";
  pcfg.repl_peer = "dafs-repl";
  dafs::ServerConfig bcfg;
  bcfg.grace_period_ms = 5;
  bcfg.service = "dafs-b";
  bcfg.repl_listen = "dafs-repl";
  dafs::Server primary(fabric, primary_node, pcfg);
  dafs::Server standby(fabric, standby_node, bcfg);
  primary.start();
  standby.start();
  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  mpi::World world(wcfg);
  fabric.faults().arm(kSeed);
  fabric.faults().restrict_crash_to_node(primary_node);
  fabric.faults().crash_server_after_requests(kCrashAfter, kRestartMs);
  const RunResult r = run_world(
      fabric, world, dafs::failover_mount({"dafs", "dafs-b"}, retry_policy()),
      data);
  fabric.faults().clear();
  standby.stop();
  primary.stop();
  return r;
}

/// This PR's path: a three-member quorum group; the survivors elect a new
/// leader, the client chases kNotLeader hints, the rebooted ex-leader
/// re-silvers. Same fault plan, restricted to the incumbent leader's node.
RunResult run_quorum(const std::vector<std::byte>& data) {
  sim::Fabric fabric;
  constexpr std::size_t kMembers = 3;
  std::vector<std::string> group;
  std::vector<std::string> services;
  for (std::size_t i = 0; i < kMembers; ++i) {
    group.push_back("dafs-raft-" + std::to_string(i));
    services.push_back("dafs-q" + std::to_string(i));
  }
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<dafs::Server>> members;
  for (std::size_t i = 0; i < kMembers; ++i) {
    nodes.push_back(fabric.add_node("filer-" + std::to_string(i)));
    dafs::ServerConfig cfg;
    cfg.grace_period_ms = 5;
    cfg.service = services[i];
    cfg.quorum_group = group;
    cfg.member_id = static_cast<std::uint32_t>(i);
    // Commit-barrier deadline stays at the 200 ms default: each sync ships a
    // full window (~512 KiB of journal) to the followers, and a deadline
    // tighter than that round-trip turns healthy syncs into kNotLeader
    // rejections — the client then rotates away from a live leader and every
    // spurious failover costs another acked-unsynced window.
    cfg.repl_retry.jitter_seed = kSeed * 100 + i;
    members.push_back(std::make_unique<dafs::Server>(fabric, nodes[i], cfg));
  }
  for (auto& m : members) m->start();

  // The crash must land on the incumbent leader, so find it first.
  int leader = -1;
  for (int spin = 0; spin < 15000 && leader < 0; ++spin) {
    for (std::size_t i = 0; i < kMembers; ++i) {
      if (!members[i]->crashed() &&
          members[i]->role() == dafs::Server::Role::kPrimary) {
        leader = static_cast<int>(i);
      }
    }
    if (leader < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (leader < 0) {
    std::fprintf(stderr, "bench: quorum group never elected a leader\n");
    std::abort();
  }

  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  mpi::World world(wcfg);
  fabric.faults().arm(kSeed);
  fabric.faults().restrict_crash_to_node(nodes[static_cast<std::size_t>(leader)]);
  fabric.faults().crash_server_after_requests(kCrashAfter, kRestartMs);
  const RunResult r = run_world(
      fabric, world,
      dafs::quorum_mount(services, retry_policy(),
                         dafs::ClientConfig{},
                         static_cast<std::size_t>(leader)),
      data);
  fabric.faults().clear();

  // Wait for the rebooted ex-leader to finish re-silvering: its journal must
  // converge byte-identical with the successor's. This also closes the
  // raft.resilver span a traced run asserts on.
  const auto journal_of = [](dafs::Server& s) {
    return s.store().journal_log().read(0, static_cast<std::size_t>(-1));
  };
  int successor = -1;
  for (std::size_t i = 0; i < kMembers; ++i) {
    if (!members[i]->crashed() &&
        members[i]->role() == dafs::Server::Role::kPrimary) {
      successor = static_cast<int>(i);
    }
  }
  if (successor < 0) {
    std::fprintf(stderr, "bench: no leader after the kill\n");
    std::abort();
  }
  bool converged = false;
  for (int spin = 0; spin < 15000 && !converged; ++spin) {
    converged =
        !members[static_cast<std::size_t>(leader)]->crashed() &&
        journal_of(*members[static_cast<std::size_t>(leader)]) ==
            journal_of(*members[static_cast<std::size_t>(successor)]);
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!converged) {
    std::fprintf(stderr, "bench: deposed leader never re-silvered\n");
    std::abort();
  }
  if (r.elections < 2) {
    std::fprintf(stderr, "bench: kill did not force a new election\n");
    std::abort();
  }
  // Role/term gauges, election + re-silver counters and the client's
  // leader-hint stats all ride in this fabric's unified metrics document.
  emit_metrics_json(fabric, "e18_quorum",
                    "{\"chunk\":65536,\"chunks\":48,\"sync_every\":8,"
                    "\"crash_after\":12,\"restart_ms\":150,\"replicas\":3,"
                    "\"seed\":18}");
  for (auto it = members.rbegin(); it != members.rend(); ++it) (*it)->stop();
  return r;
}

}  // namespace

int main() {
  std::printf(
      "E18 [quorum]: %d x 64 KiB MPI-IO writes, sync every %d chunks, the "
      "replica holding the client's session killed after request %llu "
      "(restart %llu ms later). pair = PR5 semi-sync standby promotion; "
      "quorum = 3-member Raft group, majority-commit, leader election, "
      "kNotLeader redirection, automatic re-silvering.\n\n",
      kChunks, kWindow, static_cast<unsigned long long>(kCrashAfter),
      static_cast<unsigned long long>(kRestartMs));

  const auto data = make_data(static_cast<std::size_t>(kChunks) * kChunk, 18);

  const RunResult pair = run_pair(data);
  const RunResult quorum = run_quorum(data);

  Table t({"scenario", "wall ms", "outage ms", "virt MB/s", "lost chunks",
           "crashes", "elections"});
  t.row({"pair", fmt(pair.wall_ms), fmt(pair.stall_ms), fmt(pair.virt_mbps),
         std::to_string(pair.lost_chunks), std::to_string(pair.crashes),
         std::to_string(pair.elections)});
  t.row({"quorum", fmt(quorum.wall_ms), fmt(quorum.stall_ms),
         fmt(quorum.virt_mbps), std::to_string(quorum.lost_chunks),
         std::to_string(quorum.crashes), std::to_string(quorum.elections)});
  t.print();
  std::printf(
      "unavailability: quorum blocked %.1f ms at worst vs %.1f ms for the "
      "pair; both must beat the %llu ms restart-wait floor.\n",
      quorum.stall_ms, pair.stall_ms,
      static_cast<unsigned long long>(kRestartMs));

  // The acceptance bar: neither design may leave the stream blocked for the
  // whole restart delay — recovery must come from the surviving replicas,
  // not from waiting out the reboot. (The pair promotes one standby; the
  // quorum runs an election first, so its window may be modestly larger but
  // still decoupled from the restart clock.)
  const double floor_ms = static_cast<double>(kRestartMs);
  if (pair.stall_ms >= floor_ms || quorum.stall_ms >= floor_ms) {
    std::fprintf(stderr,
                 "bench: outage window not decoupled from restart "
                 "(pair %.1f ms, quorum %.1f ms, restart %.1f ms)\n",
                 pair.stall_ms, quorum.stall_ms, floor_ms);
    std::abort();
  }
  return 0;
}
