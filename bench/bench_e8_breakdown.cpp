// E8 (paper Table 2, reconstructed): latency breakdown of a single
// MPI_File_write_at on the DAFS driver — where does the time go?
// Components: client CPU (MPI-IO + uDAFS protocol, registration), server
// CPU (dispatch + fs), and the remainder (wire serialization, propagation
// and DMA — time nobody's CPU burns). Expected shape: small writes dominated
// by fixed per-op costs/round trip; large writes dominated by wire time with
// a near-constant CPU floor.
#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

struct Row {
  double total_us;
  double client_proto_us;
  double client_reg_us;
  double client_copy_us;
  double server_us;
  double wire_us;  // residual
};

Row run(std::size_t size) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server server(fabric, server_node);
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = 1;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  Row out{};
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(mpiio::File::open(c, "/f",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{},
                                         mpiio::dafs_driver(*session))
                           .value());
    auto data = make_data(size, 5);
    f->write_at(0, data.data(), size, mpi::Datatype::byte());  // warm + reg

    constexpr int kIters = 20;
    c.actor().reset_busy();
    const sim::BusyBreakdown server_before = server.worker_busy();
    const sim::Time t0 = c.actor().now();
    for (int i = 0; i < kIters; ++i) {
      f->write_at(0, data.data(), size, mpi::Datatype::byte());
    }
    const sim::Time total = c.actor().now() - t0;
    const auto& cb = c.actor().busy();
    const sim::BusyBreakdown server_after = server.worker_busy();

    const double n = kIters;
    out.total_us = sim::to_usec(total) / n;
    out.client_proto_us = sim::to_usec(cb[sim::CostKind::kProtocol]) / n;
    out.client_reg_us = sim::to_usec(cb[sim::CostKind::kRegistration]) / n;
    out.client_copy_us = sim::to_usec(cb[sim::CostKind::kCopy]) / n;
    out.server_us =
        sim::to_usec(server_after.total() - server_before.total()) / n;
    out.wire_us = out.total_us - out.client_proto_us - out.client_reg_us -
                  out.client_copy_us - out.server_us;
    f->close();
  });
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E8 [reconstructed Table 2]: MPI_File_write_at latency breakdown\n"
      "(DAFS driver, single rank, per-op modeled microseconds)\n\n");
  Table t({"size", "total us", "client proto", "client reg", "client copy",
           "server cpu", "wire+dma"});
  for (std::size_t size :
       {std::size_t{4096}, std::size_t{65536}, std::size_t{1048576}}) {
    const Row r = run(size);
    t.row({size_label(size), fmt(r.total_us), fmt(r.client_proto_us),
           fmt(r.client_reg_us), fmt(r.client_copy_us), fmt(r.server_us),
           fmt(r.wire_us)});
  }
  t.print();
  std::printf(
      "\nExpected shape: 4 KiB dominated by fixed round-trip costs; 1 MiB\n"
      "dominated by wire time (~8000 us at 125 MB/s) with a small, nearly\n"
      "size-independent CPU component (zero client copies on direct I/O).\n");
  return 0;
}
