// E8 (paper Table 2, reconstructed): latency breakdown of a single
// MPI_File_write_at on the DAFS driver — where does the time go?
// Components: client CPU (MPI-IO + uDAFS protocol, registration), server
// CPU (dispatch + fs), and the remainder (wire serialization, propagation
// and DMA — time nobody's CPU burns). Expected shape: small writes dominated
// by fixed per-op costs/round trip; large writes dominated by wire time with
// a near-constant CPU floor.
//
// Each configuration also emits a histogram-snapshot JSON line (see
// EXPERIMENTS.md, "Histogram JSON") with the per-layer latency
// distributions: VIA doorbell->completion, DAFS request RTT by procedure,
// and MPI-IO op/phase times.
#include <array>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

struct Row {
  double total_us;
  double client_proto_us;
  double client_reg_us;
  double client_copy_us;
  double server_us;
  double wire_us;  // residual
};

Row run(std::size_t size) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server server(fabric, server_node);
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = 1;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  Row out{};
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(mpiio::File::open(c, "/f",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{},
                                         mpiio::dafs_driver(*session))
                           .value());
    auto data = make_data(size, 5);
    bench::require(f->write_at(0, data.data(), size, mpi::Datatype::byte()),
        "write_at");  // warm + reg

    constexpr int kIters = 20;
    fabric.histograms().reset();  // distributions cover the measured loop only
    c.actor().reset_busy();
    const sim::BusyBreakdown server_before = server.worker_busy();
    const sim::Time t0 = c.actor().now();
    for (int i = 0; i < kIters; ++i) {
      bench::require(f->write_at(0, data.data(), size, mpi::Datatype::byte()),
          "write_at");
    }
    const sim::Time total = c.actor().now() - t0;
    const auto& cb = c.actor().busy();
    const sim::BusyBreakdown server_after = server.worker_busy();

    const double n = kIters;
    out.total_us = sim::to_usec(total) / n;
    out.client_proto_us = sim::to_usec(cb[sim::CostKind::kProtocol]) / n;
    out.client_reg_us = sim::to_usec(cb[sim::CostKind::kRegistration]) / n;
    out.client_copy_us = sim::to_usec(cb[sim::CostKind::kCopy]) / n;
    out.server_us =
        sim::to_usec(server_after.total() - server_before.total()) / n;
    out.wire_us = out.total_us - out.client_proto_us - out.client_reg_us -
                  out.client_copy_us - out.server_us;
    emit_metrics_json(fabric, "e8_breakdown",
                      "{\"op\":\"write_at\",\"size\":" +
                          std::to_string(size) + "}");
    bench::require_ok(f->close(), "close");
  });
  return out;
}

// Two-phase collective write on 4 ranks: populates the per-phase breakdown
// histograms (metadata exchange, data exchange, aggregator disk time) that
// a single-rank independent write cannot.
void collective_breakdown() {
  constexpr int kNp = 4;
  constexpr std::uint32_t kBlock = 4096;
  constexpr int kTiles = 32;

  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = kNp;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(mpiio::File::open(c, "/coll.dat",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         mpiio::Info{},
                                         mpiio::dafs_driver(*session))
                           .value());
    // Block-cyclic view: rank r owns block r of each kNp-block tile.
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft =
        mpi::Datatype::subarray(sizes, subsizes, starts, mpi::Datatype::byte());
    bench::require_ok(f->set_view(0, mpi::Datatype::byte(), ft), "set_view");

    auto data = make_data(kBlock * kTiles, 20 + c.rank());
    bench::require(f->write_at_all(0, data.data(), data.size(), mpi::Datatype::byte()),
        "write_at_all");
    c.barrier();
    if (c.rank() == 0) fabric.histograms().reset();
    c.barrier();

    bench::require(f->write_at_all(0, data.data(), data.size(), mpi::Datatype::byte()),

        "write_at_all");
    std::vector<std::byte> back(data.size());
    bench::require(f->read_at_all(0, back.data(), back.size(), mpi::Datatype::byte()),
        "read_at_all");
    c.barrier();
    if (c.rank() == 0) {
      const auto snaps = fabric.histograms().snapshot_all();
      Table t({"phase", "count", "mean us", "p50 us", "p95 us", "max us"});
      for (const char* key :
           {"mpiio.write_at_all_ns", "mpiio.read_at_all_ns",
            "mpiio.twophase_meta_ns", "mpiio.twophase_exchange_ns",
            "mpiio.twophase_disk_ns"}) {
        auto it = snaps.find(key);
        if (it == snaps.end()) continue;
        const auto& s = it->second;
        t.row({key, std::to_string(s.count), fmt(s.mean() / 1000.0),
               fmt(sim::to_usec(s.p50())), fmt(sim::to_usec(s.p95())),
               fmt(sim::to_usec(s.max))});
      }
      t.print();
      emit_metrics_json(fabric, "e8_breakdown",
                        "{\"op\":\"write_read_at_all\",\"nprocs\":4}");
    }
    bench::require_ok(f->close(), "close");
  });
}

}  // namespace

int main() {
  std::printf(
      "E8 [reconstructed Table 2]: MPI_File_write_at latency breakdown\n"
      "(DAFS driver, single rank, per-op modeled microseconds)\n\n");
  Table t({"size", "total us", "client proto", "client reg", "client copy",
           "server cpu", "wire+dma"});
  for (std::size_t size :
       {std::size_t{4096}, std::size_t{65536}, std::size_t{1048576}}) {
    const Row r = run(size);
    t.row({size_label(size), fmt(r.total_us), fmt(r.client_proto_us),
           fmt(r.client_reg_us), fmt(r.client_copy_us), fmt(r.server_us),
           fmt(r.wire_us)});
  }
  t.print();
  std::printf(
      "\nExpected shape: 4 KiB dominated by fixed round-trip costs; 1 MiB\n"
      "dominated by wire time (~8000 us at 125 MB/s) with a small, nearly\n"
      "size-independent CPU component (zero client copies on direct I/O).\n");
  std::printf(
      "\nTwo-phase collective breakdown (4 ranks, block-cyclic view):\n");
  collective_breakdown();
  return 0;
}
