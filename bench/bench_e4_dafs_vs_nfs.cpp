// E4 (paper Fig. 4, reconstructed): single-client file bandwidth vs request
// size — DAFS (user-level, direct I/O) against the NFS/TCP baseline.
// Expected shape: NFS plateaus at the kernel/copy-limited rate well below
// the wire; DAFS approaches wire rate for large requests: a 1.5-2.5x win.
#include "bench/common.hpp"

using namespace bench;

namespace {

struct Point {
  double read_mbps;
  double write_mbps;
};

Point run_dafs(std::size_t size, int iters) {
  DafsBed bed;
  sim::ActorScope scope(*bed.client_actor);
  auto fh = bed.session->open("/bench.dat", dafs::kOpenCreate).value();
  auto data = make_data(size, 1);
  bench::require(bed.session->pwrite(fh, 0, data), "pwrite");
  const sim::Time w0 = bed.client_actor->now();
  for (int i = 0; i < iters; ++i) {
    bench::require(bed.session->pwrite(fh, (static_cast<std::uint64_t>(i) % 8) * size, data), "pwrite");
  }
  const sim::Time wt = bed.client_actor->now() - w0;
  std::vector<std::byte> back(size);
  const sim::Time r0 = bed.client_actor->now();
  for (int i = 0; i < iters; ++i) {
    bench::require(bed.session->pread(fh, (static_cast<std::uint64_t>(i) % 8) * size, back), "pread");
  }
  const sim::Time rt = bed.client_actor->now() - r0;
  const std::uint64_t total = static_cast<std::uint64_t>(iters) * size;
  emit_metrics_json(bed.fabric, "e4_dafs_vs_nfs",
                    "{\"driver\":\"dafs\",\"size\":" + std::to_string(size) +
                        "}");
  return Point{mbps(total, rt), mbps(total, wt)};
}

Point run_nfs(std::size_t size, int iters) {
  NfsBed bed;
  sim::ActorScope scope(*bed.client_actor);
  auto ino = bed.client->open("/bench.dat", nfs::kOpenCreate).value();
  auto data = make_data(size, 2);
  bench::require(bed.client->pwrite(ino, 0, data), "pwrite");
  const sim::Time w0 = bed.client_actor->now();
  for (int i = 0; i < iters; ++i) {
    bench::require(bed.client->pwrite(ino, (static_cast<std::uint64_t>(i) % 8) * size, data), "pwrite");
  }
  const sim::Time wt = bed.client_actor->now() - w0;
  std::vector<std::byte> back(size);
  const sim::Time r0 = bed.client_actor->now();
  for (int i = 0; i < iters; ++i) {
    bench::require(bed.client->pread(ino, (static_cast<std::uint64_t>(i) % 8) * size, back), "pread");
  }
  const sim::Time rt = bed.client_actor->now() - r0;
  const std::uint64_t total = static_cast<std::uint64_t>(iters) * size;
  emit_metrics_json(bed.fabric, "e4_dafs_vs_nfs",
                    "{\"driver\":\"nfs\",\"size\":" + std::to_string(size) +
                        "}");
  return Point{mbps(total, rt), mbps(total, wt)};
}

}  // namespace

int main() {
  std::printf(
      "E4 [reconstructed Fig.4]: DAFS vs NFS/TCP bandwidth vs request size\n"
      "(single client, warm cache, modeled time)\n\n");
  Table t({"request", "DAFS rd", "NFS rd", "rd speedup", "DAFS wr", "NFS wr",
           "wr speedup"});
  constexpr int kIters = 16;
  for (std::size_t size :
       {std::size_t{4096}, std::size_t{16384}, std::size_t{65536},
        std::size_t{262144}, std::size_t{1048576}}) {
    const Point d = run_dafs(size, kIters);
    const Point n = run_nfs(size, kIters);
    t.row({size_label(size), fmt(d.read_mbps), fmt(n.read_mbps),
           fmt(d.read_mbps / n.read_mbps, 2) + "x", fmt(d.write_mbps),
           fmt(n.write_mbps), fmt(d.write_mbps / n.write_mbps, 2) + "x"});
  }
  t.print();
  std::printf(
      "\nExpected shape: NFS plateaus (copies+interrupts bound) well below\n"
      "wire; DAFS direct approaches 125 MB/s -> 1.5-2.5x at large sizes.\n");
  return 0;
}
