// E9 (paper Fig. 7, reconstructed): aggregate bandwidth vs number of
// concurrent clients, DAFS vs NFS, 256 KiB streaming reads from a warm
// server. Expected shape: DAFS scales until the server *link* saturates
// (~125 MB/s) and stays flat; NFS saturates earlier and lower because every
// byte also burns server CPU (copies + stack), which becomes the bottleneck.
#include <thread>

#include "bench/common.hpp"

using namespace bench;

namespace {

constexpr std::size_t kReq = 256 * 1024;
constexpr int kIters = 10;

double run_dafs(int nclients) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server server(fabric, server_node);
  server.start();

  std::vector<std::thread> threads;
  std::vector<sim::Time> done(static_cast<std::size_t>(nclients), 0);
  for (int i = 0; i < nclients; ++i) {
    threads.emplace_back([&, i] {
      const auto node = fabric.add_node("client" + std::to_string(i));
      sim::Actor actor("client" + std::to_string(i), &fabric.node(node));
      sim::ActorScope scope(actor);
      via::Nic nic(fabric, node, "cli");
      auto session = std::move(dafs::Session::connect(nic).value());
      auto fh = session
                    ->open("/f" + std::to_string(i), dafs::kOpenCreate)
                    .value();
      auto data = make_data(kReq, 20 + i);
      bench::require(session->pwrite(fh, 0, data), "pwrite");  // warm
      std::vector<std::byte> back(kReq);
      for (int k = 0; k < kIters; ++k) bench::require(session->pread(fh, 0, back), "pread");
      done[static_cast<std::size_t>(i)] = actor.now();
    });
  }
  for (auto& t : threads) t.join();
  emit_metrics_json(fabric, "e9_scaling",
                    "{\"driver\":\"dafs\",\"clients\":" +
                        std::to_string(nclients) + "}");
  sim::Time finish = 0;
  for (sim::Time t : done) finish = std::max(finish, t);
  return mbps(static_cast<std::uint64_t>(nclients) * kIters * kReq, finish);
}

double run_nfs(int nclients) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("nfs-server");
  nfs::Server server(fabric, server_node);
  server.start();

  std::vector<std::thread> threads;
  std::vector<sim::Time> done(static_cast<std::size_t>(nclients), 0);
  for (int i = 0; i < nclients; ++i) {
    threads.emplace_back([&, i] {
      const auto node = fabric.add_node("client" + std::to_string(i));
      sim::Actor actor("client" + std::to_string(i), &fabric.node(node));
      sim::ActorScope scope(actor);
      auto client = std::move(nfs::Client::connect(fabric, node).value());
      auto ino =
          client->open("/f" + std::to_string(i), nfs::kOpenCreate).value();
      auto data = make_data(kReq, 30 + i);
      bench::require(client->pwrite(ino, 0, data), "pwrite");
      std::vector<std::byte> back(kReq);
      for (int k = 0; k < kIters; ++k) bench::require(client->pread(ino, 0, back), "pread");
      done[static_cast<std::size_t>(i)] = actor.now();
    });
  }
  for (auto& t : threads) t.join();
  emit_metrics_json(fabric, "e9_scaling",
                    "{\"driver\":\"nfs\",\"clients\":" +
                        std::to_string(nclients) + "}");
  sim::Time finish = 0;
  for (sim::Time t : done) finish = std::max(finish, t);
  return mbps(static_cast<std::uint64_t>(nclients) * kIters * kReq, finish);
}

}  // namespace

int main() {
  std::printf(
      "E9 [reconstructed Fig.7]: aggregate read bandwidth vs client count\n"
      "(256 KiB requests, warm cache, modeled time)\n\n");
  Table t({"clients", "DAFS MB/s", "NFS MB/s", "speedup"});
  for (int n : {1, 2, 4, 6, 8}) {
    const double d = run_dafs(n);
    const double f = run_nfs(n);
    t.row({std::to_string(n), fmt(d), fmt(f), fmt(d / f, 2) + "x"});
  }
  t.print();
  std::printf(
      "\nExpected shape: DAFS climbs to the ~125 MB/s server link and\n"
      "flattens; NFS flattens earlier/lower (server CPU-bound on copies).\n");
  return 0;
}
