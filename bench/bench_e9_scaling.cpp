// E9 (paper Fig. 7, reconstructed): aggregate bandwidth vs number of
// concurrent clients, DAFS vs NFS, 256 KiB streaming reads from a warm
// server. Expected shape: DAFS scales until the server *link* saturates
// (~125 MB/s) and stays flat; NFS saturates earlier and lower because every
// byte also burns server CPU (copies + stack), which becomes the bottleneck.
// The striped addendum (E17): the same aggregate-bandwidth question asked of
// the *server* side — one filer vs a striped multi-filer mount. A 4-rank
// collective write lands on 1/2/4 data servers through dafs::Client; with
// one filer the server link is the ceiling, with N the stripes spread the
// bytes and aggregate bandwidth scales until the client links saturate.
#include <atomic>
#include <memory>
#include <thread>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

constexpr std::size_t kReq = 256 * 1024;
constexpr int kIters = 10;

double run_dafs(int nclients) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server server(fabric, server_node);
  server.start();

  std::vector<std::thread> threads;
  std::vector<sim::Time> done(static_cast<std::size_t>(nclients), 0);
  for (int i = 0; i < nclients; ++i) {
    threads.emplace_back([&, i] {
      const auto node = fabric.add_node("client" + std::to_string(i));
      sim::Actor actor("client" + std::to_string(i), &fabric.node(node));
      sim::ActorScope scope(actor);
      via::Nic nic(fabric, node, "cli");
      auto session = std::move(dafs::Session::connect(nic).value());
      auto fh = session
                    ->open("/f" + std::to_string(i), dafs::kOpenCreate)
                    .value();
      auto data = make_data(kReq, 20 + i);
      bench::require(session->pwrite(fh, 0, data), "pwrite");  // warm
      std::vector<std::byte> back(kReq);
      for (int k = 0; k < kIters; ++k) bench::require(session->pread(fh, 0, back), "pread");
      done[static_cast<std::size_t>(i)] = actor.now();
    });
  }
  for (auto& t : threads) t.join();
  emit_metrics_json(fabric, "e9_scaling",
                    "{\"driver\":\"dafs\",\"clients\":" +
                        std::to_string(nclients) + "}");
  sim::Time finish = 0;
  for (sim::Time t : done) finish = std::max(finish, t);
  return mbps(static_cast<std::uint64_t>(nclients) * kIters * kReq, finish);
}

double run_nfs(int nclients) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("nfs-server");
  nfs::Server server(fabric, server_node);
  server.start();

  std::vector<std::thread> threads;
  std::vector<sim::Time> done(static_cast<std::size_t>(nclients), 0);
  for (int i = 0; i < nclients; ++i) {
    threads.emplace_back([&, i] {
      const auto node = fabric.add_node("client" + std::to_string(i));
      sim::Actor actor("client" + std::to_string(i), &fabric.node(node));
      sim::ActorScope scope(actor);
      auto client = std::move(nfs::Client::connect(fabric, node).value());
      auto ino =
          client->open("/f" + std::to_string(i), nfs::kOpenCreate).value();
      auto data = make_data(kReq, 30 + i);
      bench::require(client->pwrite(ino, 0, data), "pwrite");
      std::vector<std::byte> back(kReq);
      for (int k = 0; k < kIters; ++k) bench::require(client->pread(ino, 0, back), "pread");
      done[static_cast<std::size_t>(i)] = actor.now();
    });
  }
  for (auto& t : threads) t.join();
  emit_metrics_json(fabric, "e9_scaling",
                    "{\"driver\":\"nfs\",\"clients\":" +
                        std::to_string(nclients) + "}");
  sim::Time finish = 0;
  for (sim::Time t : done) finish = std::max(finish, t);
  return mbps(static_cast<std::uint64_t>(nclients) * kIters * kReq, finish);
}

constexpr std::uint64_t kStripedChunk = 4u << 20;  // per-rank collective block
constexpr std::uint64_t kStripeSize = 256 * 1024;
constexpr int kStripedRanks = 4;
constexpr int kStripedIters = 2;

/// E17 leg: 4 ranks collectively write 1 MiB each to one shared file striped
/// across `nservers` filers (stripe 256 KiB, metadata on filer 0). Reported
/// bandwidth is aggregate over the timed iterations, modeled time.
double run_striped(int nservers) {
  sim::Fabric fabric;
  std::vector<std::unique_ptr<dafs::Server>> servers;
  std::vector<std::string> services;
  for (int i = 0; i < nservers; ++i) {
    services.push_back("dafs" + std::to_string(i));
    dafs::ServerConfig cfg;
    cfg.service = services.back();
    // One worker per rank: a blocked RDMA pull from one client must not
    // convoy the other aggregators' sub-transfers behind it (the link, not
    // the service loop, should be the contended resource at every width).
    cfg.workers = kStripedRanks;
    servers.push_back(std::make_unique<dafs::Server>(
        fabric, fabric.add_node("filer" + std::to_string(i)), cfg));
    servers.back()->start();
  }

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kStripedRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "e9-striped";
  mpi::World world(wcfg);
  std::atomic<std::uint64_t> elapsed{0};
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto client = std::move(
        dafs::Client::connect(nic, dafs::striped_mount(services, kStripeSize))
            .value());
    auto f = std::move(
        mpiio::File::open(c, "/striped.dat",
                          mpiio::kModeCreate | mpiio::kModeRdwr, mpiio::Info{},
                          mpiio::dafs_driver(*client))
            .value());
    auto data = make_data(kStripedChunk, 40 + c.rank());
    const std::uint64_t off =
        static_cast<std::uint64_t>(c.rank()) * kStripedChunk;
    bench::require(
        f->write_at_all(off, data.data(), data.size(), mpi::Datatype::byte()),
        "write_at_all");  // warm (subfiles created, registrations cached)
    c.barrier();
    const sim::Time t0 = c.actor().now();
    for (int k = 0; k < kStripedIters; ++k) {
      bench::require(
          f->write_at_all(off, data.data(), data.size(), mpi::Datatype::byte()),
          "write_at_all");
    }
    std::uint64_t dt = c.actor().now() - t0;
    std::vector<std::uint64_t> mv = {dt};
    c.allreduce(std::span<std::uint64_t>(mv), mpi::Op::kMax);
    if (c.rank() == 0) elapsed.store(mv[0]);
    bench::require_ok(f->close(), "close");
  });
  emit_metrics_json(fabric, "e9_scaling",
                    "{\"driver\":\"dafs-striped\",\"servers\":" +
                        std::to_string(nservers) + "}");
  return mbps(static_cast<std::uint64_t>(kStripedRanks) * kStripedIters *
                  kStripedChunk,
              elapsed.load());
}

}  // namespace

int main() {
  std::printf(
      "E9 [reconstructed Fig.7]: aggregate read bandwidth vs client count\n"
      "(256 KiB requests, warm cache, modeled time)\n\n");
  Table t({"clients", "DAFS MB/s", "NFS MB/s", "speedup"});
  for (int n : {1, 2, 4, 6, 8}) {
    const double d = run_dafs(n);
    const double f = run_nfs(n);
    t.row({std::to_string(n), fmt(d), fmt(f), fmt(d / f, 2) + "x"});
  }
  t.print();
  std::printf(
      "\nExpected shape: DAFS climbs to the ~125 MB/s server link and\n"
      "flattens; NFS flattens earlier/lower (server CPU-bound on copies).\n");

  // E17: the striped sweep runs last so a DAFS_TRACE of this binary ends on
  // the striped collective (the tier-1 trace leg validates that dump).
  std::printf(
      "\nE17: striped multi-filer collective writes (%d ranks, %s/rank,\n"
      "%s stripes, aggregate MB/s vs data-server count)\n\n",
      kStripedRanks, size_label(kStripedChunk).c_str(),
      size_label(kStripeSize).c_str());
  Table ts({"servers", "MB/s", "vs 1 filer"});
  double base = 0.0;
  for (int n : {1, 2, 4}) {
    const double bw = run_striped(n);
    if (n == 1) base = bw;
    ts.row({std::to_string(n), fmt(bw),
            fmt(base > 0 ? bw / base : 0.0, 2) + "x"});
  }
  ts.print();
  std::printf(
      "\nExpected shape: one filer pins the collective at its server link;\n"
      "striping spreads the stripes, so aggregate bandwidth scales with the\n"
      "server count until the client links saturate.\n");
  return 0;
}
