// E19 (integrity, beyond the paper): the price of end-to-end data integrity
// on the DAFS path, swept through the `dafs_integrity` MPI-IO hint:
//   - off:  the paper-era fast path — no payload CRC, no at-rest verify.
//   - wire: CRC-32C on every data payload (inline and direct), verified on
//           both sides of the transfer.
//   - full: wire + server-side at-rest verification on reads (the store
//           recomputes the block checksum before serving bytes).
// The background scrubber runs in every scenario, so the reported write/read
// bandwidths already include its steady-state interference. The headline is
// the modeled-bandwidth overhead of "wire" and "full" relative to "off".
//
// The "full" run then stages the failure the modes exist for: a seeded
// at-rest bit flip lands after a block's checksum was recorded, the
// verifying read demotes the block to MPI_ERR_IO instead of returning rotted
// bytes (a single filer has no replica to repair from), and an app-level
// rewrite heals it. A traced run (DAFS_TRACE=...) must record at least one
// completed scrubber pass: tier1.sh validates the scrub.pass span via
// scripts/check_trace.py --require-span.
#include <cstring>
#include <thread>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "mpiio/info.hpp"

using namespace bench;

namespace {

constexpr std::size_t kChunk = 64 * 1024;
constexpr int kChunks = 32;
constexpr std::uint64_t kSeed = 19;

struct RunResult {
  double write_mbps = 0;
  double read_mbps = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t read_ns = 0;
};

/// One integrity mode end to end: stream kChunks x kChunk through MPI-IO,
/// sync, read it back, and (in "full" mode) stage the rot episode.
RunResult run_mode(const char* mode, bool stage_rot) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::ServerConfig scfg;
  scfg.scrub_enabled = true;
  scfg.scrub_interval_ms = 2;
  scfg.scrub_chunks_per_step = 256;
  dafs::Server server(fabric, server_node, scfg);
  server.start();

  mpiio::Info info;
  info.set("dafs_integrity", mode);
  // A permanently rotted block on a single filer must fail fast, not ride
  // the full busy budget.
  info.set("dafs_busy_retries", std::uint64_t{3});
  const dafs::MountSpec mspec = mpiio::HintSet::parse(info).mount_spec();

  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  mpi::World world(wcfg);

  RunResult out;
  const auto data = make_data(static_cast<std::size_t>(kChunks) * kChunk,
                              kSeed);
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic, mspec).value());
    auto f = std::move(mpiio::File::open(c, "/e19",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         info, mpiio::dafs_driver(*session))
                           .value());
    const sim::Time w0 = c.actor().now();
    for (int i = 0; i < kChunks; ++i) {
      const std::uint64_t off = static_cast<std::uint64_t>(i) * kChunk;
      const auto r = f->write_at(off, data.data() + off, kChunk,
                                 mpi::Datatype::byte());
      if (!r.ok() || r.value() != kChunk) {
        std::fprintf(stderr, "bench: write chunk %d failed\n", i);
        std::abort();
      }
    }
    require_ok(f->sync(), "sync");
    out.write_ns = c.actor().now() - w0;

    std::vector<std::byte> back(data.size());
    const sim::Time r0 = c.actor().now();
    for (int i = 0; i < kChunks; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * kChunk;
      const auto r = f->read_at(off, back.data() + off, kChunk,
                                mpi::Datatype::byte());
      if (!r.ok() || r.value() != kChunk) {
        std::fprintf(stderr, "bench: read chunk %d failed\n", i);
        std::abort();
      }
    }
    out.read_ns = c.actor().now() - r0;
    if (std::memcmp(back.data(), data.data(), data.size()) != 0) {
      std::fprintf(stderr, "bench: read-back not byte-exact (%s)\n", mode);
      std::abort();
    }

    if (stage_rot) {
      // Silent at-rest rot: the flip lands after the rewrite's checksum was
      // recorded. The verifying read must demote the block to an I/O error —
      // never serve the rot — and an app-level rewrite heals it.
      fabric.faults().arm(kSeed * 977);
      fabric.faults().corrupt_fstore_block_after(0);
      const auto w = f->write_at(0, data.data(), kChunk,
                                 mpi::Datatype::byte());
      if (!w.ok() || w.value() != kChunk) {
        std::fprintf(stderr, "bench: rot-stage rewrite failed\n");
        std::abort();
      }
      require_ok(f->sync(), "rot-stage sync");
      fabric.faults().clear();
      const auto rot = f->read_at(0, back.data(), kChunk,
                                  mpi::Datatype::byte());
      if (rot.ok()) {
        std::fprintf(stderr,
                     "bench: verifying read served a rotted block\n");
        std::abort();
      }
      const auto heal = f->write_at(0, data.data(), kChunk,
                                    mpi::Datatype::byte());
      if (!heal.ok() || heal.value() != kChunk) {
        std::fprintf(stderr, "bench: healing rewrite failed\n");
        std::abort();
      }
      const auto again = f->read_at(0, back.data(), kChunk,
                                    mpi::Datatype::byte());
      if (!again.ok() || again.value() != kChunk ||
          std::memcmp(back.data(), data.data(), kChunk) != 0) {
        std::fprintf(stderr, "bench: block not byte-exact after heal\n");
        std::abort();
      }
    }
    require_ok(f->close(), "close");
  });

  // Let the scrubber finish at least one whole pass over the store so the
  // scrub gauges are meaningful — and, on a traced run, so the dump holds
  // the scrub.pass span tier1.sh asserts on.
  const std::uint64_t passes0 = server.scrub_passes();
  for (int spin = 0; spin < 15000 && server.scrub_passes() <= passes0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (server.scrub_passes() <= passes0) {
    std::fprintf(stderr, "bench: scrubber never completed a pass\n");
    std::abort();
  }
  if (stage_rot) {
    if (fabric.stats().get("dafs.scrub_corruptions") == 0) {
      std::fprintf(stderr, "bench: scrubber never saw the rotted block\n");
      std::abort();
    }
    emit_metrics_json(fabric, "e19_integrity",
                      "{\"chunk\":65536,\"chunks\":32,\"mode\":\"full\","
                      "\"scrub_interval_ms\":2,\"seed\":19}");
  }
  server.stop();

  const std::uint64_t bytes = static_cast<std::uint64_t>(kChunks) * kChunk;
  out.write_mbps = mbps(bytes, out.write_ns);
  out.read_mbps = mbps(bytes, out.read_ns);
  return out;
}

std::string overhead(std::uint64_t ns, std::uint64_t base_ns) {
  if (base_ns == 0) return "-";
  return fmt(100.0 * (static_cast<double>(ns) - static_cast<double>(base_ns)) /
                 static_cast<double>(base_ns)) +
         "%";
}

}  // namespace

int main() {
  std::printf(
      "E19 [integrity]: %d x 64 KiB MPI-IO writes + read-back per integrity "
      "mode (dafs_integrity hint), background scrubber always on. off = no "
      "checks; wire = CRC-32C on every data payload; full = wire + at-rest "
      "verify on reads. The full run then stages a seeded at-rest bit flip: "
      "the verifying read must fail, never serve rot.\n\n",
      kChunks);

  const RunResult off = run_mode("off", false);
  const RunResult wire = run_mode("wire", false);
  const RunResult full = run_mode("full", true);

  Table t({"mode", "write MB/s", "read MB/s", "write ovh", "read ovh"});
  t.row({"off", fmt(off.write_mbps), fmt(off.read_mbps), "-", "-"});
  t.row({"wire", fmt(wire.write_mbps), fmt(wire.read_mbps),
         overhead(wire.write_ns, off.write_ns),
         overhead(wire.read_ns, off.read_ns)});
  t.row({"full", fmt(full.write_mbps), fmt(full.read_mbps),
         overhead(full.write_ns, off.write_ns),
         overhead(full.read_ns, off.read_ns)});
  t.print();
  std::printf(
      "verify cost: full-mode write %s / read %s slower than off; the flip "
      "staged in the full run surfaced as a read error, not silent bytes.\n",
      overhead(full.write_ns, off.write_ns).c_str(),
      overhead(full.read_ns, off.read_ns).c_str());
  return 0;
}
