// E12 (reconstructed ablation): MPI-IO hint sweeps on the E7 strided
// workload — collective buffer size (cb_buffer_size), aggregator count
// (cb_nodes), and data-sieving toggles for independent access on the DAFS
// driver. Demonstrates that the defaults sit near the knee.
#include <array>
#include <atomic>

#include "bench/common.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

using namespace bench;

namespace {

constexpr int kNp = 4;
constexpr std::uint32_t kBlock = 4096;
constexpr int kTiles = 16;

double run_collective(const mpiio::Info& info) {
  sim::Fabric fabric;
  const auto server_node = fabric.add_node("filer");
  dafs::Server server(fabric, server_node);
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = kNp;
  cfg.fabric = &fabric;
  mpi::World world(cfg);
  std::atomic<std::uint64_t> elapsed{0};
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(mpiio::File::open(c, "/s.dat",
                                         mpiio::kModeCreate | mpiio::kModeRdwr,
                                         info, mpiio::dafs_driver(*session))
                           .value());
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft =
        mpi::Datatype::subarray(sizes, subsizes, starts, mpi::Datatype::byte());
    bench::require_ok(f->set_view(0, mpi::Datatype::byte(), ft), "set_view");
    auto data = make_data(kBlock * kTiles, 40 + c.rank());
    c.barrier();
    const sim::Time t0 = c.actor().now();
    bench::require(
        f->write_at_all(0, data.data(), data.size(), mpi::Datatype::byte()),
        "write_at_all");
    std::uint64_t dt = c.actor().now() - t0;
    std::vector<std::uint64_t> mv = {dt};
    c.allreduce(std::span<std::uint64_t>(mv), mpi::Op::kMax);
    if (c.rank() == 0) elapsed.store(mv[0]);
    bench::require_ok(f->close(), "close");
  });
  emit_metrics_json(
      fabric, "e12_hints",
      "{\"phase\":\"collective\",\"cb_buffer_size\":" +
          std::to_string(info.get_uint("cb_buffer_size", 0)) +
          ",\"cb_nodes\":" + std::to_string(info.get_uint("cb_nodes", 0)) +
          "}");
  return mbps(static_cast<std::uint64_t>(kNp) * kBlock * kTiles,
              elapsed.load());
}

double run_sieving(const char* ds_read) {
  DafsBed bed;
  sim::ActorScope scope(*bed.client_actor);
  // A single client reading 4 KiB of every 16 KiB out of 1 MiB.
  auto fh = bed.session->open("/sv.dat", dafs::kOpenCreate).value();
  auto data = make_data(1 << 20, 9);
  bench::require(bed.session->pwrite(fh, 0, data), "pwrite");

  // Drive through MPI-IO with np=1.
  mpi::WorldConfig cfg;
  cfg.nprocs = 1;
  cfg.fabric = &bed.fabric;
  mpi::World world(cfg);
  std::atomic<std::uint64_t> elapsed{0};
  world.run([&](mpi::Comm& c) {
    via::Nic nic(bed.fabric, world.node_of(0), "cli2");
    auto session = std::move(dafs::Session::connect(nic).value());
    mpiio::Info info;
    info.set("romio_ds_read", ds_read);
    auto f = std::move(mpiio::File::open(c, "/sv.dat", mpiio::kModeRdwr,
                                         info, mpiio::dafs_driver(*session))
                           .value());
    auto ft = mpi::Datatype::resized(
        mpi::Datatype::hvector(1, 4096, 16384, mpi::Datatype::byte()), 0,
        16384);
    bench::require_ok(f->set_view(0, mpi::Datatype::byte(), ft), "set_view");
    std::vector<std::byte> back(64 * 4096);
    const sim::Time t0 = c.actor().now();
    bench::require(
        f->read_at(0, back.data(), back.size(), mpi::Datatype::byte()),
        "read_at");
    elapsed.store(c.actor().now() - t0);
    bench::require_ok(f->close(), "close");
  });
  emit_metrics_json(bed.fabric, "e12_hints",
                    std::string("{\"phase\":\"sieving\",\"romio_ds_read\":\"") +
                        ds_read + "\"}");
  return mbps(64 * 4096, elapsed.load());
}

}  // namespace

int main() {
  std::printf("E12 [reconstructed ablations]: MPI-IO hint sweeps\n\n");
  {
    std::printf("cb_buffer_size sweep (collective strided write, np=4):\n");
    Table t({"cb_buffer_size", "MB/s"});
    for (std::uint64_t cb : {64ull << 10, 256ull << 10, 1ull << 20,
                             4ull << 20}) {
      mpiio::Info info;
      info.set("cb_buffer_size", cb);
      t.row({size_label(cb), fmt(run_collective(info))});
    }
    t.print();
  }
  {
    std::printf("\ncb_nodes (aggregator count) sweep:\n");
    Table t({"cb_nodes", "MB/s"});
    for (std::uint64_t n : {1ull, 2ull, 4ull}) {
      mpiio::Info info;
      info.set("cb_nodes", n);
      t.row({std::to_string(n), fmt(run_collective(info))});
    }
    t.print();
  }
  {
    std::printf("\ndata sieving vs list-I/O (independent strided read):\n");
    Table t({"romio_ds_read", "MB/s"});
    t.row({"disable (list-io)", fmt(run_sieving("disable"))});
    t.row({"enable (sieve)", fmt(run_sieving("enable"))});
    t.print();
  }
  std::printf(
      "\nExpected shape: larger cb buffers help until server accesses are\n"
      "already large; more aggregators help until the link saturates; on\n"
      "DAFS, batched list-I/O beats sieving (no wasted hole bytes).\n");
  return 0;
}
