#!/usr/bin/env python3
"""Validate the unified metrics JSON a bench emits (bench/common.hpp
emit_metrics_json; schema documented in EXPERIMENTS.md "Unified metrics
JSON").

The input file is a bench's captured stdout: human-readable tables mixed
with one (or more) single-line JSON documents. Every line that parses as a
JSON object with a "bench" key is validated:

  - required sections present: bench, params, counters, gauges, histograms
  - counter and gauge values are non-negative integers with dotted
    lowercase keys
  - histogram entries carry count/sum/min/max/mean/p50/p95/p99 with
    min <= p50 <= p95 <= p99 <= max and count >= 1
  - when a "timeseries" section is present: interval_ns > 0, a non-empty
    series map, per-series equal-length t/v arrays, t strictly increasing

With --require-timeseries, at least one document must carry a non-empty
timeseries section (used for the telemetry bench, which arms the sampler).

Usage: check_metrics.py [--require-timeseries] <bench-stdout-file>...
"""
import argparse
import json
import re
import sys

KEY_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
PERCENTILE_ORDER = ["min", "p50", "p95", "p99", "max"]
HIST_FIELDS = ["count", "sum", "min", "max", "mean", "p50", "p95", "p99"]


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_kv_section(doc_name, section, kv):
    if not isinstance(kv, dict):
        fail(f"{doc_name}: '{section}' is not an object")
    for key, value in kv.items():
        if not KEY_RE.match(key):
            fail(f"{doc_name}: {section} key {key!r} is not dotted lowercase")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"{doc_name}: {section}[{key!r}] = {value!r} is not a "
                 "non-negative integer")


def check_histograms(doc_name, hists):
    if not isinstance(hists, dict):
        fail(f"{doc_name}: 'histograms' is not an object")
    for key, h in hists.items():
        if not KEY_RE.match(key):
            fail(f"{doc_name}: histogram key {key!r} is not dotted lowercase")
        for f in HIST_FIELDS:
            if f not in h:
                fail(f"{doc_name}: histogram {key!r} missing field {f!r}")
        if h["count"] < 1:
            fail(f"{doc_name}: histogram {key!r} exported with count 0")
        vals = [h[f] for f in PERCENTILE_ORDER]
        for lo, hi, lo_n, hi_n in zip(vals, vals[1:], PERCENTILE_ORDER,
                                      PERCENTILE_ORDER[1:]):
            if lo > hi:
                fail(f"{doc_name}: histogram {key!r}: {lo_n}={lo} > "
                     f"{hi_n}={hi}")


def check_timeseries(doc_name, ts):
    if not isinstance(ts, dict):
        fail(f"{doc_name}: 'timeseries' is not an object")
    if ts.get("interval_ns", 0) <= 0:
        fail(f"{doc_name}: timeseries interval_ns must be > 0")
    series = ts.get("series")
    if not isinstance(series, dict) or not series:
        fail(f"{doc_name}: timeseries 'series' must be a non-empty object")
    for key, s in series.items():
        t, v = s.get("t"), s.get("v")
        if not isinstance(t, list) or not isinstance(v, list):
            fail(f"{doc_name}: series {key!r} needs 't' and 'v' arrays")
        if len(t) != len(v):
            fail(f"{doc_name}: series {key!r}: len(t)={len(t)} != "
                 f"len(v)={len(v)}")
        if not t:
            fail(f"{doc_name}: series {key!r} is empty")
        for a, b in zip(t, t[1:]):
            if a >= b:
                fail(f"{doc_name}: series {key!r} time regresses: "
                     f"{a} >= {b}")


def check_doc(doc):
    name = doc.get("bench")
    if not isinstance(name, str) or not name:
        fail("metrics document with empty 'bench' name")
    for section in ("params", "counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"{name}: missing required section {section!r}")
    if not isinstance(doc["params"], dict):
        fail(f"{name}: 'params' is not an object")
    check_kv_section(name, "counters", doc["counters"])
    check_kv_section(name, "gauges", doc["gauges"])
    check_histograms(name, doc["histograms"])
    if not doc["counters"]:
        fail(f"{name}: 'counters' is empty — the bench measured nothing")
    has_ts = "timeseries" in doc
    if has_ts:
        check_timeseries(name, doc["timeseries"])
    return name, has_ts


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--require-timeseries", action="store_true",
                    help="fail unless at least one document carries a "
                         "non-empty timeseries section")
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    docs = 0
    with_ts = 0
    for path in args.files:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(obj, dict) or "bench" not in obj:
                    continue
                name, has_ts = check_doc(obj)
                docs += 1
                with_ts += int(has_ts)
                print(f"check_metrics: {path}: '{name}' ok"
                      f"{' (+timeseries)' if has_ts else ''}")
    if docs == 0:
        fail("no metrics documents found in input")
    if args.require_timeseries and with_ts == 0:
        fail("no document carried a timeseries section "
             "(--require-timeseries)")
    print(f"check_metrics: PASS ({docs} document(s), {with_ts} with "
          "timeseries)")


if __name__ == "__main__":
    main()
