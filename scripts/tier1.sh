#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite, then an
# AddressSanitizer/UBSan build running the fault-injection slice (ctest -L
# fault), the server crash/restart chaos slice (ctest -L chaos) and the
# causal-tracing slice (ctest -L trace), which stress the recovery paths
# where lifetime bugs would hide. A final leg runs a traced end-to-end
# benchmark and validates the emitted Perfetto JSON (ids resolve, spans
# nest, no negative durations) with scripts/check_trace.py.
#
# Every ctest invocation runs under a per-test timeout so a hung recovery
# path (the exact bug class the chaos suite hunts) fails the gate instead of
# wedging it.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"
# Generous per-test watchdog (seconds); sanitizer runs are several times
# slower than the standard build.
TEST_TIMEOUT="${TEST_TIMEOUT:-300}"

echo "== tier1: standard build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" \
  --timeout "$TEST_TIMEOUT"

echo "== tier1: sanitizer leg (ASan+UBSan, fault + chaos + trace labels) =="
cmake -B "$ASAN_BUILD" -S . -DDAFS_SANITIZE=ON >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_fault \
  --target test_chaos --target test_trace
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS" \
  --timeout "$TEST_TIMEOUT" -L 'fault|chaos|trace'

echo "== tier1: trace-validation leg (traced bench -> check_trace.py) =="
TRACE_OUT="$BUILD/tier1_trace.json"
DAFS_TRACE="$TRACE_OUT" "$BUILD/bench/bench_e8_breakdown" >/dev/null
python3 scripts/check_trace.py "$TRACE_OUT"

echo "== tier1: all green =="
