#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite, then an
# AddressSanitizer/UBSan build running the fault-injection slice (ctest -L
# fault), the server crash/restart chaos slice (ctest -L chaos), the
# dual-filer failover slice (ctest -L failover), the causal-tracing
# slice (ctest -L trace), the striped-layout slice (ctest -L stripe), the
# quorum-replication slice (ctest -L raft), the data-integrity slice
# (ctest -L integrity), the live-telemetry slice (ctest -L telemetry) and
# the client-cache/delegation slice (ctest -L cache),
# which stress the recovery paths where lifetime bugs would hide. A final
# leg runs traced end-to-end
# benchmarks and validates the emitted Perfetto JSON (ids resolve, spans
# nest, no negative durations) with scripts/check_trace.py — including the
# --mpiio-rooted linkage check against the traced failover bench and the
# traced striped collective, and the --require-span check that the traced
# quorum bench actually recorded a leader election and a re-silver burst.
# A metrics-validation leg then replays the breakdown and telemetry benches
# with stdout captured and checks their unified metrics JSON (schema,
# dotted-lowercase keys, percentile ordering, monotone time series) with
# scripts/check_metrics.py.
#
# Every ctest invocation runs under a per-test timeout so a hung recovery
# path (the exact bug class the chaos suite hunts) fails the gate instead of
# wedging it.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"
# Generous per-test watchdog (seconds); sanitizer runs are several times
# slower than the standard build.
TEST_TIMEOUT="${TEST_TIMEOUT:-300}"

echo "== tier1: standard build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" \
  --timeout "$TEST_TIMEOUT"

echo "== tier1: sanitizer leg (ASan+UBSan, fault + chaos + failover + trace + stripe + raft + integrity + telemetry + cache labels) =="
cmake -B "$ASAN_BUILD" -S . -DDAFS_SANITIZE=ON >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_fault \
  --target test_chaos --target test_failover --target test_trace \
  --target test_stripe --target test_quorum --target test_integrity \
  --target test_telemetry --target test_cache
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS" \
  --timeout "$TEST_TIMEOUT" \
  -L 'fault|chaos|failover|trace|stripe|raft|integrity|telemetry|cache'

echo "== tier1: trace-validation leg (traced benches -> check_trace.py) =="
TRACE_OUT="$BUILD/tier1_trace.json"
DAFS_TRACE="$TRACE_OUT" "$BUILD/bench/bench_e8_breakdown" >/dev/null
python3 scripts/check_trace.py "$TRACE_OUT"
# Failover bench: besides the structural checks, require every dafs.client
# span — including the retries that crossed the crash and the endpoint
# rotation — to chain up to the mpiio span that issued it.
FAILOVER_TRACE="$BUILD/tier1_trace_failover.json"
DAFS_TRACE="$FAILOVER_TRACE" "$BUILD/bench/bench_e16_failover" >/dev/null
python3 scripts/check_trace.py --mpiio-rooted "$FAILOVER_TRACE"
# Striped bench: the E17 sweep runs last in bench_e9_scaling, so the dump is
# a traced striped collective — every per-server sub-transfer must chain up
# to the write_at_all that split it across the layout.
STRIPE_TRACE="$BUILD/tier1_trace_stripe.json"
DAFS_TRACE="$STRIPE_TRACE" "$BUILD/bench/bench_e9_scaling" >/dev/null
python3 scripts/check_trace.py --mpiio-rooted "$STRIPE_TRACE"
# Quorum bench: the kill-the-leader run must leave behind an election span
# (a successor won a term) and a re-silver span (the rebooted ex-leader
# caught its journal up) — proving the traced recovery actually exercised
# both halves of the consensus path, not just that the trace is well-formed.
QUORUM_TRACE="$BUILD/tier1_trace_quorum.json"
DAFS_TRACE="$QUORUM_TRACE" "$BUILD/bench/bench_e18_quorum" >/dev/null
python3 scripts/check_trace.py --require-span raft.election \
  --require-span raft.resilver "$QUORUM_TRACE"
# Integrity bench: the dafs_integrity sweep runs with the background
# scrubber on, so the traced dump must record at least one completed
# scrub pass over the store — proving the scrubber actually walked the
# blocks behind the reported verify-overhead numbers.
INTEGRITY_TRACE="$BUILD/tier1_trace_integrity.json"
DAFS_TRACE="$INTEGRITY_TRACE" "$BUILD/bench/bench_e19_integrity" >/dev/null
python3 scripts/check_trace.py --require-span scrub.pass "$INTEGRITY_TRACE"
# Cache bench: the recall episode runs last, so the traced dump must record
# a dafs.deleg.recall span — proving a conflicting open actually drove the
# server through recall-start, holder flush and delegation return.
CACHE_TRACE="$BUILD/tier1_trace_cache.json"
DAFS_TRACE="$CACHE_TRACE" "$BUILD/bench/bench_e21_cache" >/dev/null
python3 scripts/check_trace.py --require-span dafs.deleg.recall "$CACHE_TRACE"

echo "== tier1: metrics-validation leg (bench JSON -> check_metrics.py) =="
# The breakdown bench emits the plain schema (counters/gauges/histograms);
# the telemetry bench additionally arms the time-series sampler, so its
# document must carry a monotone, non-empty "timeseries" section.
METRICS_OUT="$BUILD/tier1_metrics_e8.txt"
"$BUILD/bench/bench_e8_breakdown" >"$METRICS_OUT"
python3 scripts/check_metrics.py "$METRICS_OUT"
TELEMETRY_OUT="$BUILD/tier1_metrics_e20.txt"
"$BUILD/bench/bench_e20_telemetry" >"$TELEMETRY_OUT"
python3 scripts/check_metrics.py --require-timeseries "$TELEMETRY_OUT"
CACHE_OUT="$BUILD/tier1_metrics_e21.txt"
"$BUILD/bench/bench_e21_cache" >"$CACHE_OUT"
python3 scripts/check_metrics.py "$CACHE_OUT"

echo "== tier1: all green =="
