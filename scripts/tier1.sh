#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite, then an
# AddressSanitizer/UBSan build running the fault-injection slice (ctest -L
# fault), which stresses the recovery paths where lifetime bugs would hide.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier1: standard build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== tier1: sanitizer leg (ASan+UBSan, fault label) =="
cmake -B "$ASAN_BUILD" -S . -DDAFS_SANITIZE=ON >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_fault
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS" -L fault

echo "== tier1: all green =="
