#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite, then an
# AddressSanitizer/UBSan build running the fault-injection slice (ctest -L
# fault), the server crash/restart chaos slice (ctest -L chaos), the
# dual-filer failover slice (ctest -L failover) and the causal-tracing
# slice (ctest -L trace), which stress the recovery paths where lifetime
# bugs would hide. A final leg runs traced end-to-end benchmarks and
# validates the emitted Perfetto JSON (ids resolve, spans nest, no negative
# durations) with scripts/check_trace.py — including the failover-retry
# linkage check (--mpiio-rooted) against the traced failover bench.
#
# Every ctest invocation runs under a per-test timeout so a hung recovery
# path (the exact bug class the chaos suite hunts) fails the gate instead of
# wedging it.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"
# Generous per-test watchdog (seconds); sanitizer runs are several times
# slower than the standard build.
TEST_TIMEOUT="${TEST_TIMEOUT:-300}"

echo "== tier1: standard build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" \
  --timeout "$TEST_TIMEOUT"

echo "== tier1: sanitizer leg (ASan+UBSan, fault + chaos + failover + trace labels) =="
cmake -B "$ASAN_BUILD" -S . -DDAFS_SANITIZE=ON >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_fault \
  --target test_chaos --target test_failover --target test_trace
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS" \
  --timeout "$TEST_TIMEOUT" -L 'fault|chaos|failover|trace'

echo "== tier1: trace-validation leg (traced benches -> check_trace.py) =="
TRACE_OUT="$BUILD/tier1_trace.json"
DAFS_TRACE="$TRACE_OUT" "$BUILD/bench/bench_e8_breakdown" >/dev/null
python3 scripts/check_trace.py "$TRACE_OUT"
# Failover bench: besides the structural checks, require every dafs.client
# span — including the retries that crossed the crash and the endpoint
# rotation — to chain up to the mpiio span that issued it.
FAILOVER_TRACE="$BUILD/tier1_trace_failover.json"
DAFS_TRACE="$FAILOVER_TRACE" "$BUILD/bench/bench_e16_failover" >/dev/null
python3 scripts/check_trace.py --mpiio-rooted "$FAILOVER_TRACE"

echo "== tier1: all green =="
