#!/usr/bin/env python3
"""Validate a Chrome-trace-event JSON file produced by sim::Tracer.

Checks (hard errors):
  - the file parses as JSON and has a non-empty `traceEvents` array
  - every complete ("X") event carries trace/span ids and a non-negative
    duration
  - whenever both ends of a parent/child edge are present and closed, the
    child's time range nests inside the parent's (up to a sub-microsecond
    formatting epsilon). VIA spans are exempt: a NIC completes its DMA
    asynchronously, so a send's wire completion can legitimately trail the
    span that posted it. Server-side service spans ("dafs.server") are
    exempt at the end only: the worker reaps its reply-send completion
    after the client has already received the reply, so the service span
    may trail its client-side parent but must still start inside it.

With --mpiio-rooted (hard errors, opt-in):
  - at least one "mpiio" root span is present
  - every "dafs.client" span chains up to a root whose category is "mpiio".
    This is the failover-retry linkage check: a client request that crossed
    a crash, reclaim or endpoint rotation keeps its original ids, so the
    retried attempt must still land under the MPI-IO operation that issued
    it. A chain broken by ring eviction is a warning, not an error.

Warnings (do not fail the check):
  - a span whose parent id does not resolve to any span in the file — the
    flight recorder's rings are bounded, so a long run can legitimately
    evict a parent while keeping its children
  - a file with events but no spans (a crash dump from a fabric that traced
    no requests)

With --require-span NAME (hard errors, opt-in, repeatable):
  - at least one span with that exact name is present in the file. The
    tier-1 gate uses this to prove the traced quorum bench actually
    recorded an election ("raft.election") and a catch-up burst
    ("raft.resilver"), not just that the trace is structurally sound.

Usage: check_trace.py [--mpiio-rooted] [--require-span NAME ...] \
    <trace.json> [more.json ...]
Exit status 0 when every file passes, 1 otherwise.
"""

import json
import sys

# Timestamps are virtual ns rendered as microseconds with three decimals;
# tolerate the round-trip error on exact shared boundaries.
EPSILON_US = 0.002


def check_mpiio_rooted(path, spans, errors, warnings):
    """Failover-retry linkage: every dafs.client span must chain up to an
    mpiio root span (retried attempts keep the original ids, so recovery
    never detaches a request from the operation that issued it)."""
    if not any(ev.get("cat") == "mpiio" for ev in spans.values()):
        errors.append(f"{path}: --mpiio-rooted: no mpiio root spans in file")
        return
    for span_id, ev in spans.items():
        if ev.get("cat") != "dafs.client":
            continue
        cur, hops = ev, 0
        while True:
            parent_id = cur["args"].get("parent_span_id", 0)
            if not parent_id:
                if cur.get("cat") != "mpiio":
                    errors.append(
                        f"{path}: --mpiio-rooted: span {span_id} "
                        f"({ev.get('name')}) roots at {cur.get('name')!r} "
                        f"[{cur.get('cat')}], not an mpiio span")
                break
            parent = spans.get(parent_id)
            if parent is None:
                warnings.append(
                    f"{path}: --mpiio-rooted: span {span_id} "
                    f"({ev.get('name')}): chain broken at evicted parent "
                    f"{parent_id}")
                break
            cur = parent
            hops += 1
            if hops > len(spans):
                errors.append(
                    f"{path}: --mpiio-rooted: span {span_id} "
                    f"({ev.get('name')}): parent cycle")
                break


def check(path, mpiio_rooted=False, require_spans=()):
    errors = []
    warnings = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"], []

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"], []

    spans = {}  # span_id -> event
    instants = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "i":
            instants += 1
            continue  # instant event (crash, deadline, fault)
        if ph != "X":
            errors.append(f"{path}: event {i}: unexpected phase {ph!r}")
            continue
        args = ev.get("args", {})
        trace_id = args.get("trace_id")
        span_id = args.get("span_id")
        if not trace_id:
            errors.append(f"{path}: event {i} ({ev.get('name')}): no trace id")
        if not span_id:
            errors.append(f"{path}: event {i} ({ev.get('name')}): no span id")
            continue
        if ev.get("dur", 0) < 0:
            errors.append(
                f"{path}: span {span_id} ({ev.get('name')}): "
                f"negative duration {ev['dur']}")
        spans[span_id] = ev

    for span_id, ev in spans.items():
        args = ev["args"]
        parent_id = args.get("parent_span_id", 0)
        if not parent_id:
            continue  # root
        parent = spans.get(parent_id)
        if parent is None:
            warnings.append(
                f"{path}: span {span_id} ({ev.get('name')}): parent "
                f"{parent_id} not in file (evicted from a bounded ring?)")
            continue
        if parent["args"].get("trace_id") != args.get("trace_id"):
            errors.append(
                f"{path}: span {span_id} ({ev.get('name')}): parent "
                f"{parent_id} belongs to a different trace")
        # Containment only when both spans closed (in-flight spans carry
        # dur 0 and an in_flight marker) and the child is not a NIC-async
        # VIA transfer, whose completion may trail the posting span.
        if args.get("in_flight") or parent["args"].get("in_flight"):
            continue
        if ev.get("cat") == "via":
            continue
        t0, t1 = ev["ts"], ev["ts"] + ev.get("dur", 0)
        p0, p1 = parent["ts"], parent["ts"] + parent.get("dur", 0)
        # A server-side service span closes only after the worker reaps the
        # completion of its reply *send*, which can trail the client's
        # receipt of that reply — i.e. the end of the client-side parent
        # span. Same asynchronous-hardware argument as the VIA exemption,
        # but only for the end: the service must still start inside the
        # request that triggered it.
        end_exempt = ev.get("cat") == "dafs.server"
        if t0 < p0 - EPSILON_US or (
                not end_exempt and t1 > p1 + EPSILON_US):
            errors.append(
                f"{path}: span {span_id} ({ev.get('name')}) "
                f"[{t0}, {t1}] escapes parent {parent_id} "
                f"({parent.get('name')}) [{p0}, {p1}]")

    if not spans and not instants:
        errors.append(f"{path}: empty trace (no spans, no events)")
    elif not spans:
        warnings.append(f"{path}: events only, no spans")
    if mpiio_rooted and spans:
        check_mpiio_rooted(path, spans, errors, warnings)
    present = {ev.get("name") for ev in spans.values()}
    for name in require_spans:
        if name not in present:
            errors.append(
                f"{path}: --require-span: no span named {name!r} in file")
    return errors, warnings


def main(argv):
    args = argv[1:]
    mpiio_rooted = "--mpiio-rooted" in args
    args = [a for a in args if a != "--mpiio-rooted"]
    require_spans = []
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--require-span":
            if i + 1 >= len(args):
                print("error: --require-span needs a name", file=sys.stderr)
                return 2
            require_spans.append(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    args = paths
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in args:
        errors, warnings = check(path, mpiio_rooted=mpiio_rooted,
                                 require_spans=require_spans)
        for w in warnings:
            print(f"warning: {w}", file=sys.stderr)
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
