// via_pingpong: the raw transport demo — two nodes, one VI pair, classic
// ping-pong over send/receive, printing modeled one-way latency per size.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "sim/actor.hpp"
#include "sim/fabric.hpp"
#include "via/vi.hpp"

using namespace std::chrono_literals;

namespace {
void require_ok(via::Status st, const char* what) {
  if (st != via::Status::kSuccess) {
    std::fprintf(stderr, "via_pingpong: %s failed: %s\n", what,
                 via::to_string(st));
    std::abort();
  }
}
}  // namespace

int main() {
  sim::Fabric fabric;
  const auto na = fabric.add_node("alpha");
  const auto nb = fabric.add_node("bravo");
  via::Nic nic_a(fabric, na, "nicA");
  via::Nic nic_b(fabric, nb, "nicB");
  sim::Actor actor_a("alpha", &fabric.node(na));
  sim::Actor actor_b("bravo", &fabric.node(nb));
  via::Vi vi_a(nic_a, {});
  via::Vi vi_b(nic_b, {});

  via::Listener listener(nic_b, "pingpong");
  std::thread acceptor([&] {
    sim::ActorScope scope(actor_b);
    require_ok(listener.accept(vi_b, 5000ms), "accept");
  });
  {
    sim::ActorScope scope(actor_a);
    require_ok(nic_a.connect(vi_a, "pingpong", 5000ms), "connect");
  }
  acceptor.join();
  std::printf("connected: two VIs over the simulated SAN\n\n");
  std::printf("%10s %14s\n", "size", "one-way (us)");

  for (std::size_t size : {4u, 64u, 1024u, 4096u, 16384u, 65536u}) {
    std::vector<std::byte> buf_a(size), buf_b(size);
    const auto ha =
        nic_a.register_memory(buf_a.data(), size, nic_a.create_ptag(), {});
    const auto hb =
        nic_b.register_memory(buf_b.data(), size, nic_b.create_ptag(), {});
    constexpr int kIters = 100;

    std::thread echo([&] {
      sim::ActorScope scope(actor_b);
      for (int i = 0; i < kIters; ++i) {
        via::Descriptor r;
        r.segs = {via::DataSegment{buf_b.data(), hb,
                                   static_cast<std::uint32_t>(size)}};
        require_ok(vi_b.post_recv(r), "post_recv");
        via::Descriptor* d = nullptr;
        require_ok(vi_b.recv_wait(d, 5000ms), "recv_wait");
        via::Descriptor s;
        s.segs = {via::DataSegment{buf_b.data(), hb,
                                   static_cast<std::uint32_t>(size)}};
        require_ok(vi_b.post_send(s), "post_send");
        via::Descriptor* sd = nullptr;
        require_ok(vi_b.send_wait(sd, 5000ms), "send_wait");
      }
    });

    sim::ActorScope scope(actor_a);
    const sim::Time t0 = actor_a.now();
    for (int i = 0; i < kIters; ++i) {
      via::Descriptor r;
      r.segs = {via::DataSegment{buf_a.data(), ha,
                                 static_cast<std::uint32_t>(size)}};
      require_ok(vi_a.post_recv(r), "post_recv");
      via::Descriptor s;
      s.segs = {via::DataSegment{buf_a.data(), ha,
                                 static_cast<std::uint32_t>(size)}};
      require_ok(vi_a.post_send(s), "post_send");
      via::Descriptor* sd = nullptr;
      require_ok(vi_a.send_wait(sd, 5000ms), "send_wait");
      via::Descriptor* d = nullptr;
      require_ok(vi_a.recv_wait(d, 5000ms), "recv_wait");
    }
    echo.join();
    const double oneway =
        sim::to_usec(actor_a.now() - t0) / (2.0 * kIters);
    std::printf("%10zu %14.2f\n", size, oneway);
  }
  return 0;
}
