// Checkpoint/restart of a block-distributed matrix — the canonical parallel
// I/O workload the paper's introduction motivates.
//
// A 1024x1024 double matrix is row-block distributed over 4 ranks. Each rank
// checkpoints its block into a single shared file through a subarray file
// view with *collective* writes (two-phase buffering), then the matrix is
// restored into a different decomposition (column blocks) using another
// view, demonstrating that views decouple in-memory and on-disk layouts.
#include <cmath>
#include <cstdio>
#include <vector>

#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

namespace {

constexpr std::uint32_t kN = 1024;  // matrix is kN x kN doubles
constexpr int kNp = 4;

double cell(std::uint32_t r, std::uint32_t c) {
  return std::sin(0.001 * r) * 1000.0 + c;
}

/// Fail loudly instead of silently reporting numbers from a failed op.
void expect_ok(mpiio::Err st, const char* what) {
  if (st != mpiio::Err::kOk) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 mpiio::to_string(mpiio::error_class(st)));
  }
}

}  // namespace

int main() {
  sim::Fabric fabric;
  dafs::Server filer(fabric, fabric.add_node("filer"));
  filer.start();

  mpi::WorldConfig cfg;
  cfg.nprocs = kNp;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  world.run([&](mpi::Comm& comm) {
    via::Nic nic(fabric, world.node_of(comm.rank()), "client-nic");
    auto session = std::move(dafs::Session::connect(nic).value());

    mpiio::Info info;
    info.set("cb_buffer_size", std::uint64_t{1} << 20);
    auto file = std::move(
        mpiio::File::open(comm, "/matrix.ckpt",
                          mpiio::kModeCreate | mpiio::kModeRdwr, info,
                          mpiio::dafs_driver(*session))
            .value());

    // ---- checkpoint: row-block decomposition ------------------------------
    constexpr std::uint32_t kRows = kN / kNp;
    std::vector<double> block(kRows * kN);
    const std::uint32_t row0 = comm.rank() * kRows;
    for (std::uint32_t r = 0; r < kRows; ++r) {
      for (std::uint32_t c = 0; c < kN; ++c) {
        block[r * kN + c] = cell(row0 + r, c);
      }
    }

    const std::array<std::uint32_t, 2> sizes = {kN, kN};
    const std::array<std::uint32_t, 2> row_sub = {kRows, kN};
    const std::array<std::uint32_t, 2> row_start = {row0, 0};
    auto row_view = mpi::Datatype::subarray(sizes, row_sub, row_start,
                                            mpi::Datatype::float64());
    expect_ok(file->set_view(0, mpi::Datatype::float64(), row_view),
              "set_view");

    const sim::Time t0 = comm.actor().now();
    auto wr = file->write_at_all(0, block.data(), block.size(),
                                 mpi::Datatype::float64());
    if (!wr.ok()) expect_ok(wr.error(), "write_at_all");
    const sim::Time t_ckpt = comm.actor().now() - t0;

    // ---- restart: column-block decomposition ------------------------------
    constexpr std::uint32_t kCols = kN / kNp;
    const std::uint32_t col0 = comm.rank() * kCols;
    const std::array<std::uint32_t, 2> col_sub = {kN, kCols};
    const std::array<std::uint32_t, 2> col_start = {0, col0};
    auto col_view = mpi::Datatype::subarray(sizes, col_sub, col_start,
                                            mpi::Datatype::float64());
    expect_ok(file->set_view(0, mpi::Datatype::float64(), col_view),
              "set_view");

    std::vector<double> cols(kN * kCols);
    const sim::Time t1 = comm.actor().now();
    auto rr = file->read_at_all(0, cols.data(), cols.size(),
                                mpi::Datatype::float64());
    if (!rr.ok()) expect_ok(rr.error(), "read_at_all");
    const sim::Time t_rest = comm.actor().now() - t1;

    // Verify the re-decomposed data.
    std::uint64_t bad = 0;
    for (std::uint32_t r = 0; r < kN; ++r) {
      for (std::uint32_t c = 0; c < kCols; ++c) {
        if (cols[r * kCols + c] != cell(r, col0 + c)) ++bad;
      }
    }
    const double mb =
        static_cast<double>(kRows) * kN * sizeof(double) / 1e6;
    std::printf(
        "rank %d: checkpoint %.1f MB in %.2f ms (%.1f MB/s), restore as "
        "column blocks in %.2f ms — %s\n",
        comm.rank(), mb, sim::to_msec(t_ckpt),
        mb * 1000.0 / sim::to_msec(t_ckpt), sim::to_msec(t_rest),
        bad == 0 ? "verified" : "CORRUPT");
    expect_ok(file->close(), "close");
  });
  return 0;
}
