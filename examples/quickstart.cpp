// Quickstart: the smallest end-to-end MPI-IO-on-DAFS program.
//
// Builds a simulated cluster (one DAFS filer + 4 compute nodes), runs 4 MPI
// ranks, and has each rank write and read back its slice of a shared file
// through the MPI-IO API over the DAFS driver. Reports modeled time.
#include <cstdio>
#include <numeric>
#include <vector>

#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

int main() {
  // 1. The cluster: a fabric with a DAFS filer on its own node.
  sim::Fabric fabric;
  dafs::Server filer(fabric, fabric.add_node("filer"));
  filer.start();

  // 2. An MPI world of 4 ranks (threads), one node each, same fabric.
  mpi::WorldConfig cfg;
  cfg.nprocs = 4;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  world.run([&](mpi::Comm& comm) {
    // 3. Each rank owns a uDAFS session to the filer.
    via::Nic nic(fabric, world.node_of(comm.rank()), "client-nic");
    auto session = std::move(dafs::Session::connect(nic).value());

    // 4. Collective open through MPI-IO.
    auto file = std::move(
        mpiio::File::open(comm, "/quickstart.dat",
                          mpiio::kModeCreate | mpiio::kModeRdwr, mpiio::Info{},
                          mpiio::dafs_driver(*session))
            .value());

    // 5. Write this rank's slice: 64 Ki int32 values.
    constexpr std::uint64_t kCount = 64 * 1024;
    std::vector<std::int32_t> mine(kCount);
    std::iota(mine.begin(), mine.end(), comm.rank() * 1'000'000);
    const std::uint64_t offset = comm.rank() * kCount * sizeof(std::int32_t);
    auto wr = file->write_at(offset, mine.data(), kCount,
                             mpi::Datatype::int32());
    if (!wr.ok()) {
      std::fprintf(stderr, "write_at failed: %s\n",
                   mpiio::to_string(mpiio::error_class(wr.error())));
    }
    comm.barrier();

    // 6. Read the next rank's slice and check it.
    const int next = (comm.rank() + 1) % comm.size();
    std::vector<std::int32_t> theirs(kCount);
    auto rr = file->read_at(next * kCount * sizeof(std::int32_t),
                            theirs.data(), kCount, mpi::Datatype::int32());
    bool ok = rr.ok();
    for (std::uint64_t i = 0; i < kCount; ++i) {
      if (theirs[i] != static_cast<std::int32_t>(next * 1'000'000 + i)) {
        ok = false;
        break;
      }
    }
    std::printf("rank %d: verified rank %d's slice: %s (modeled time %.2f ms)\n",
                comm.rank(), next, ok ? "OK" : "CORRUPT",
                sim::to_msec(comm.actor().now()));
    if (auto st = file->close(); st != mpiio::Err::kOk) {
      std::fprintf(stderr, "close failed: %s\n",
                   mpiio::to_string(mpiio::error_class(st)));
    }
  });

  const auto stats = fabric.stats().snapshot();
  std::printf("\nTransport summary:\n");
  std::printf("  direct (RDMA) bytes : %llu\n",
              static_cast<unsigned long long>(
                  fabric.stats().get("dafs.direct_read_bytes") +
                  fabric.stats().get("dafs.direct_write_bytes")));
  std::printf("  client copy bytes   : %llu  <- zero-copy data path\n",
              static_cast<unsigned long long>(
                  fabric.stats().get("dafs.client_copy_bytes")));
  std::printf("  DAFS requests       : %llu\n",
              static_cast<unsigned long long>(
                  fabric.stats().get("dafs.requests")));
  (void)stats;
  return 0;
}
